#!/usr/bin/env bash
# Format (or format-check) all first-party C++ sources with clang-format.
#
#   tools/format.sh                  reformat in place with `clang-format`
#   tools/format.sh --check          dry-run; non-zero exit on violations
#   tools/format.sh [--check] BIN    use BIN (e.g. clang-format-18, the
#                                    version CI pins)
set -euo pipefail

cd "$(dirname "$0")/.."

mode=format
if [[ "${1:-}" == "--check" ]]; then
  mode=check
  shift
fi
clang_format="${1:-clang-format}"

if ! command -v "$clang_format" >/dev/null 2>&1; then
  echo "error: $clang_format not found (install clang-format or pass a binary)" >&2
  exit 1
fi

mapfile -t files < <(find src tests bench examples \
  \( -name '*.cpp' -o -name '*.hpp' -o -name '*.h' -o -name '*.cc' \) \
  -type f | sort)

if [[ "$mode" == "check" ]]; then
  "$clang_format" --dry-run -Werror "${files[@]}"
  echo "format check: OK (${#files[@]} files)"
else
  "$clang_format" -i "${files[@]}"
  echo "formatted ${#files[@]} files"
fi

#!/usr/bin/env python3
"""ownsim_check: AST-level contract enforcement for the sim core.

The determinism and quiescence contracts (DESIGN.md §5e/§5h) have rules that
a compiler never sees: replay order must not depend on hash-table iteration
or pointer values, dormant components must pair eval() with is_idle(), model
APIs must carry units in the type system, and observability counters must
stay observational. This checker enforces them mechanically:

  unordered-iteration     No iteration over std::unordered_{map,set} in
                          src/sim, src/network, src/topology, src/fault.
                          Hash-table order is libstdc++-version- and
                          allocation-dependent; iterating one in replay-
                          ordered code silently breaks bit-identity.
                          Point lookups (find/at/count/erase-by-key) are
                          fine; iteration must use an ordered container or
                          an explicitly sorted snapshot.
  pointer-ordered-key     No std::{map,set,multimap,multiset} keyed by a
                          pointer in the same directories. Pointer order is
                          allocation order — different on every run. Key by
                          a stable id instead.
  clocked-idle-contract   Every Clocked subclass that overrides eval() must
                          also override is_idle() — either with a real
                          quiescence predicate or an explicit `return false`
                          that documents the component as always-active.
                          Silently inheriting the base default makes the
                          activity-driven kernel's contract invisible.
  raw-unit-double         Public model headers in src/rf, src/wireless,
                          src/photonic must not declare double/float
                          parameters or fields with unit-suffixed names
                          (gain_db, freq_hz, power_watts, ...). Use the
                          dimensioned types from common/quantity.hpp
                          (Decibels, DbmPower, Hertz, Watts, ...) so unit
                          errors are compile errors.
  obs-counter-discipline  obs::Counter / obs::Gauge members outside src/obs
                          must be named obs_* (greppable observational
                          surface), and simulation code (src/sim,
                          src/network, src/topology, src/fault, src/traffic)
                          must never read a counter via .value() — counters
                          are observational by contract; results must be
                          bit-identical with OWNSIM_OBS=OFF.

Backends:
  * libclang — clang.cindex over a compile_commands.json (--compile-commands)
    when the python clang module is importable. Precise: sees through
    typedefs and canonical types.
  * text — a comment-aware lexical backend with no dependencies beyond the
    standard library. This is what runs in environments without clang, and
    what the fixture self-tests pin down.
  --backend auto (default) prefers libclang and falls back to text.

Suppression: a finding on line N is suppressed by the marker
    // ownsim-check: allow(rule-id[, rule-id...])
on line N or line N-1. Use it for the rare, reviewed exception; the marker
is greppable.

Allowlist: --allowlist (default tools/ownsim_check_allow.json) maps rule id
-> [{"file": "repo/relative/path", "reason": "..."}]. Allowlisted files are
skipped for that rule. The shipped file is empty by policy: in particular
unordered-iteration and clocked-idle-contract must hold with zero entries.

Run:  python3 tools/ownsim_check.py                      (from the repo root)
      python3 tools/ownsim_check.py --list-rules
      python3 tools/ownsim_check.py --backend libclang \
          --compile-commands build/compile_commands.json
Exit: 0 clean, 1 findings, 2 usage/internal error.
"""
from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

DEFAULT_ROOT = Path(__file__).resolve().parent.parent

REPLAY_DIRS = ("src/sim/", "src/network/", "src/topology/", "src/fault/")
MODEL_DIRS = ("src/rf/", "src/wireless/", "src/photonic/")
OBS_READ_DIRS = REPLAY_DIRS + ("src/traffic/",)

UNIT_SUFFIXES = (
    "db", "dbm", "dbi", "hz", "khz", "mhz", "ghz", "thz",
    "watts", "milliwatts", "mw", "uw", "nw",
    "joules", "pj", "fj", "nj",
    "nm", "um", "mm", "meters",
)

SUPPRESS_RE = re.compile(r"//\s*ownsim-check:\s*allow\(([^)]*)\)")


@dataclass
class Rule:
    rule_id: str
    summary: str

    def applies_to(self, rel: str) -> bool:
        raise NotImplementedError


@dataclass
class Finding:
    rule_id: str
    rel: str
    line: int  # 1-based
    message: str
    snippet: str

    def render(self) -> str:
        return (f"{self.rel}:{self.line}: [{self.rule_id}] {self.message}\n"
                f"    {self.snippet.strip()}")


# ---------------------------------------------------------------------------
# Shared lexical helpers (used by the text backend and by suppression logic).

def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Lengths and newlines are kept so (line, column) positions in the result
    map 1:1 onto the original text.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def match_brace(text: str, open_index: int) -> int:
    """Index of the '}' matching the '{' at open_index, or -1.

    `text` must already have comments/strings blanked.
    """
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def line_of(text: str, index: int) -> int:
    return text.count("\n", 0, index) + 1


class SourceFile:
    """One scanned file: raw lines plus a comment/string-blanked view."""

    def __init__(self, path: Path, rel: str):
        self.path = path
        self.rel = rel
        self.raw = path.read_text(errors="replace")
        self.raw_lines = self.raw.splitlines()
        self.clean = strip_comments_and_strings(self.raw)
        self.clean_lines = self.clean.splitlines()

    def raw_line(self, line: int) -> str:
        if 1 <= line <= len(self.raw_lines):
            return self.raw_lines[line - 1]
        return ""

    def suppressed(self, line: int, rule_id: str) -> bool:
        for candidate in (line, line - 1):
            m = SUPPRESS_RE.search(self.raw_line(candidate))
            if m and rule_id in [s.strip() for s in m.group(1).split(",")]:
                return True
        return False


# ---------------------------------------------------------------------------
# Text backend rules.

UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
# `std::unordered_map<K, V> name` — capture the declared name. The template
# argument list is brace-matched separately; this regex finds the anchor.
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
ORDERED_PTR_KEY_RE = re.compile(
    r"std\s*::\s*(map|set|multimap|multiset)\s*<\s*(?:const\s+)?"
    r"[A-Za-z_][\w:<>\s]*?\*\s*[,>]")
CLASS_DECL_RE = re.compile(
    r"\b(class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?:\s*([^{;]*)\{")
EVAL_OVERRIDE_RE = re.compile(r"\beval\s*\([^)]*\)\s*(?:const\s*)?override\b")
IS_IDLE_RE = re.compile(r"\bis_idle\s*\(")
RAW_UNIT_RE = re.compile(
    r"\b(?:double|float)\s+([A-Za-z_]\w*_(?:%s)_?)\b"
    % "|".join(UNIT_SUFFIXES))
OBS_DECL_RE = re.compile(r"\bobs\s*::\s*(Counter|Gauge)\s+([A-Za-z_]\w*)")
OBS_VALUE_READ_RE = re.compile(r"\b(obs_\w*)\s*\.\s*value\s*\(")
IDENT_TAIL_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


def template_args_end(clean: str, lt_index: int) -> int:
    """Index just past the '>' closing the '<' at lt_index, or -1."""
    depth = 0
    i = lt_index
    while i < len(clean):
        c = clean[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            return -1
        i += 1
    return -1


def unordered_decl_names(src: SourceFile) -> set[str]:
    """Names of variables/members declared with an unordered container type."""
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(src.clean):
        lt = src.clean.find("<", m.start())
        end = template_args_end(src.clean, lt)
        if end < 0:
            continue
        tail = src.clean[end:end + 160]
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(]", tail)
        if dm:
            names.add(dm.group(1))
    return names


def check_unordered_iteration(src: SourceFile,
                              extra_names: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    names = unordered_decl_names(src) | extra_names
    clean = src.clean

    def add(index: int, message: str) -> None:
        line = line_of(clean, index)
        findings.append(Finding("unordered-iteration", src.rel, line, message,
                                src.raw_line(line)))

    # Range-for over a declared-unordered name or an inline unordered type.
    for m in RANGE_FOR_RE.finditer(clean):
        close = clean.find(")", m.end())
        # find the ':' separating decl from range expr at paren depth 1
        depth = 1
        colon = -1
        i = m.end()
        while i < len(clean) and depth > 0:
            c = clean[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                close = i
            elif c == ":" and depth == 1 and clean[i - 1] != ":" and \
                    (i + 1 >= len(clean) or clean[i + 1] != ":"):
                colon = i
            i += 1
        if colon < 0 or close < 0:
            continue
        range_expr = clean[colon + 1:close].strip()
        if "unordered_" in range_expr:
            add(m.start(), "range-for over an unordered container; "
                "iteration order is not replay-stable")
            continue
        tail = IDENT_TAIL_RE.search(
            range_expr.rstrip(")").rstrip())
        if tail and tail.group(1) in names:
            add(m.start(), f"range-for over unordered container "
                f"'{tail.group(1)}'; iteration order is not replay-stable")

    # Explicit iterator walks: name.begin() / name.cbegin().
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(", clean):
        if m.group(1) in names:
            add(m.start(), f"iterator over unordered container "
                f"'{m.group(1)}'; iteration order is not replay-stable")
    return findings


def check_pointer_ordered_key(src: SourceFile) -> list[Finding]:
    findings = []
    for m in ORDERED_PTR_KEY_RE.finditer(src.clean):
        line = line_of(src.clean, m.start())
        findings.append(Finding(
            "pointer-ordered-key", src.rel, line,
            f"std::{m.group(1)} keyed by a pointer orders by allocation "
            f"address, which differs run to run; key by a stable id",
            src.raw_line(line)))
    return findings


def check_clocked_idle_contract(src: SourceFile) -> list[Finding]:
    findings = []
    clean = src.clean
    for m in CLASS_DECL_RE.finditer(clean):
        bases = m.group(3)
        if not re.search(r"\bClocked\b", bases):
            continue
        open_brace = m.end() - 1
        close_brace = match_brace(clean, open_brace)
        if close_brace < 0:
            continue
        body = clean[open_brace:close_brace]
        if EVAL_OVERRIDE_RE.search(body) and not IS_IDLE_RE.search(body):
            line = line_of(clean, m.start())
            findings.append(Finding(
                "clocked-idle-contract", src.rel, line,
                f"{m.group(2)} overrides eval() without overriding "
                f"is_idle(); state the quiescence contract explicitly "
                f"(a predicate, or 'return false' for always-active)",
                src.raw_line(line)))
    return findings


def check_raw_unit_double(src: SourceFile) -> list[Finding]:
    findings = []
    for m in RAW_UNIT_RE.finditer(src.clean):
        line = line_of(src.clean, m.start())
        findings.append(Finding(
            "raw-unit-double", src.rel, line,
            f"'{m.group(1)}' encodes its unit in the name but not the type; "
            f"use the dimensioned types from common/quantity.hpp",
            src.raw_line(line)))
    return findings


def check_obs_counter_discipline(src: SourceFile) -> list[Finding]:
    findings = []
    for m in OBS_DECL_RE.finditer(src.clean):
        if not m.group(2).startswith("obs_"):
            line = line_of(src.clean, m.start())
            findings.append(Finding(
                "obs-counter-discipline", src.rel, line,
                f"obs::{m.group(1)} handle '{m.group(2)}' must be named "
                f"obs_* so the observational surface stays greppable",
                src.raw_line(line)))
    if src.rel.startswith(OBS_READ_DIRS):
        for m in OBS_VALUE_READ_RE.finditer(src.clean):
            line = line_of(src.clean, m.start())
            findings.append(Finding(
                "obs-counter-discipline", src.rel, line,
                f"simulation code reads counter '{m.group(1)}' via .value(); "
                f"counters are observational — results must be identical "
                f"with OWNSIM_OBS=OFF",
                src.raw_line(line)))
    return findings


class TextBackend:
    name = "text"

    def __init__(self, root: Path):
        self.root = root

    def collect_files(self) -> list[SourceFile]:
        files = []
        src = self.root / "src"
        if not src.is_dir():
            return files
        for path in sorted(src.rglob("*")):
            if path.suffix in {".hpp", ".h", ".cpp", ".cc"} and path.is_file():
                files.append(SourceFile(path, path.relative_to(
                    self.root).as_posix()))
        return files

    def run(self, rule_ids: set[str]) -> list[Finding]:
        files = self.collect_files()
        by_rel = {f.rel: f for f in files}
        findings: list[Finding] = []
        for src in files:
            rel = src.rel
            if rel.startswith(REPLAY_DIRS):
                if "unordered-iteration" in rule_ids:
                    # Members declared in the paired header are iterable from
                    # the .cpp: merge the header's declared names in.
                    extra: set[str] = set()
                    if rel.endswith((".cpp", ".cc")):
                        stem = rel.rsplit(".", 1)[0]
                        for ext in (".hpp", ".h"):
                            partner = by_rel.get(stem + ext)
                            if partner is not None:
                                extra |= unordered_decl_names(partner)
                    findings += check_unordered_iteration(src, extra)
                if "pointer-ordered-key" in rule_ids:
                    findings += check_pointer_ordered_key(src)
            if rel.startswith("src/") and "clocked-idle-contract" in rule_ids:
                findings += check_clocked_idle_contract(src)
            if rel.startswith(MODEL_DIRS) and rel.endswith((".hpp", ".h")) \
                    and "raw-unit-double" in rule_ids:
                findings += check_raw_unit_double(src)
            if rel.startswith("src/") and not rel.startswith("src/obs/") \
                    and "obs-counter-discipline" in rule_ids:
                findings += check_obs_counter_discipline(src)
        return [f for f in findings
                if not by_rel[f.rel].suppressed(f.line, f.rule_id)]


# ---------------------------------------------------------------------------
# libclang backend.

class LibclangBackend:
    """clang.cindex over compile_commands.json.

    Canonical types see through typedefs/aliases, so this backend catches
    e.g. `using FlitMap = std::unordered_map<...>` that the text backend
    cannot. Rule semantics are identical.
    """

    name = "libclang"

    def __init__(self, root: Path, compile_commands: Path):
        from clang import cindex  # noqa: import guarded by caller
        self.cindex = cindex
        self.root = root
        self.db = cindex.CompilationDatabase.fromDirectory(
            str(compile_commands.parent))
        self.index = cindex.Index.create()
        self._sources: dict[str, SourceFile] = {}

    def _source(self, rel: str) -> SourceFile:
        if rel not in self._sources:
            self._sources[rel] = SourceFile(self.root / rel, rel)
        return self._sources[rel]

    def _rel(self, cursor) -> str | None:
        loc = cursor.location
        if loc.file is None:
            return None
        try:
            return Path(loc.file.name).resolve().relative_to(
                self.root).as_posix()
        except ValueError:
            return None

    def run(self, rule_ids: set[str]) -> list[Finding]:
        findings: list[Finding] = []
        seen: set[tuple[str, str, int, str]] = set()
        for cmd in self.db.getAllCompileCommands():
            path = Path(cmd.filename)
            if not path.is_absolute():
                path = Path(cmd.directory) / path
            try:
                rel = path.resolve().relative_to(self.root).as_posix()
            except ValueError:
                continue
            if not rel.startswith("src/"):
                continue
            # Keep flags only: drop the compiler argv[0], -c, -o <target>,
            # and the source operand itself.
            args = []
            skip = False
            for a in list(cmd.arguments)[1:]:
                if skip:
                    skip = False
                    continue
                if a == "-c":
                    continue
                if a == "-o":
                    skip = True
                    continue
                if Path(a).name == path.name:
                    continue
                args.append(a)
            try:
                tu = self.index.parse(str(path), args=args)
            except self.cindex.TranslationUnitLoadError:
                continue
            for node in tu.cursor.walk_preorder():
                for f in self._check_node(node, rule_ids):
                    key = (f.rule_id, f.rel, f.line, f.message)
                    if key not in seen:
                        seen.add(key)
                        findings.append(f)
        return [f for f in findings
                if not self._source(f.rel).suppressed(f.line, f.rule_id)]

    def _mk(self, rule_id: str, cursor, message: str) -> Finding:
        rel = self._rel(cursor)
        line = cursor.location.line
        return Finding(rule_id, rel, line, message,
                       self._source(rel).raw_line(line))

    def _check_node(self, node, rule_ids: set[str]):
        ck = self.cindex.CursorKind
        rel = self._rel(node)
        if rel is None or not rel.startswith("src/"):
            return
        canon = ""
        if node.kind in (ck.CXX_FOR_RANGE_STMT, ck.FIELD_DECL, ck.VAR_DECL,
                         ck.PARM_DECL):
            try:
                canon = node.type.get_canonical().spelling
            except Exception:  # pragma: no cover - defensive
                canon = ""

        if "unordered-iteration" in rule_ids and rel.startswith(REPLAY_DIRS) \
                and node.kind == ck.CXX_FOR_RANGE_STMT:
            # The range initializer is the first non-loop-variable child.
            for child in node.get_children():
                if child.kind == ck.VAR_DECL:
                    continue
                range_type = child.type.get_canonical().spelling or ""
                if "unordered_" in range_type:
                    yield self._mk(
                        "unordered-iteration", node,
                        "range-for over an unordered container; iteration "
                        "order is not replay-stable")
                break

        if "pointer-ordered-key" in rule_ids and rel.startswith(REPLAY_DIRS) \
                and node.kind in (ck.FIELD_DECL, ck.VAR_DECL):
            if re.search(r"std::(map|set|multimap|multiset)<[^,<]*\*", canon):
                yield self._mk(
                    "pointer-ordered-key", node,
                    "ordered container keyed by a pointer orders by "
                    "allocation address; key by a stable id")

        if "clocked-idle-contract" in rule_ids and \
                node.kind in (ck.CLASS_DECL, ck.STRUCT_DECL) and \
                node.is_definition():
            bases = [c for c in node.get_children()
                     if c.kind == ck.CXX_BASE_SPECIFIER]
            if any("Clocked" in b.type.spelling for b in bases):
                methods = {c.spelling for c in node.get_children()
                           if c.kind == ck.CXX_METHOD}
                if "eval" in methods and "is_idle" not in methods:
                    yield self._mk(
                        "clocked-idle-contract", node,
                        f"{node.spelling} overrides eval() without "
                        f"overriding is_idle(); state the quiescence "
                        f"contract explicitly")

        if "raw-unit-double" in rule_ids and rel.startswith(MODEL_DIRS) \
                and node.kind in (ck.PARM_DECL, ck.FIELD_DECL):
            name = node.spelling or ""
            stripped = name.rstrip("_")
            if canon in ("double", "float") and "_" in stripped and \
                    stripped.rsplit("_", 1)[-1] in UNIT_SUFFIXES:
                yield self._mk(
                    "raw-unit-double", node,
                    f"'{name}' encodes its unit in the name but not the "
                    f"type; use the dimensioned types from "
                    f"common/quantity.hpp")

        if "obs-counter-discipline" in rule_ids and \
                not rel.startswith("src/obs/"):
            if node.kind in (ck.FIELD_DECL, ck.VAR_DECL) and \
                    re.search(r"\bobs::(Counter|Gauge)\b",
                              node.type.spelling or ""):
                if not (node.spelling or "").startswith("obs_"):
                    yield self._mk(
                        "obs-counter-discipline", node,
                        f"obs handle '{node.spelling}' must be named obs_*")
            if rel.startswith(OBS_READ_DIRS) and \
                    node.kind == ck.CALL_EXPR and node.spelling == "value":
                ref = next(iter(node.get_children()), None)
                base = next(iter(ref.get_children()), None) if ref else None
                base_name = (base.spelling if base else "") or ""
                if base_name.startswith("obs_"):
                    yield self._mk(
                        "obs-counter-discipline", node,
                        f"simulation code reads counter '{base_name}' via "
                        f".value(); counters are observational")


# ---------------------------------------------------------------------------
# Driver.

ALL_RULES = {
    "unordered-iteration":
        "no unordered-container iteration in replay-ordered code",
    "pointer-ordered-key":
        "no pointer-keyed ordered containers in replay-ordered code",
    "clocked-idle-contract":
        "eval() overrides must pair with an explicit is_idle()",
    "raw-unit-double":
        "model APIs carry units in types, not double names",
    "obs-counter-discipline":
        "obs handles named obs_*; sim code never reads counters",
}


def load_allowlist(path: Path) -> dict[str, set[str]]:
    if not path.is_file():
        return {}
    data = json.loads(path.read_text())
    allow: dict[str, set[str]] = {}
    for rule_id, entries in data.items():
        if rule_id.startswith("_"):
            continue  # comment keys
        if rule_id not in ALL_RULES:
            raise SystemExit(f"ownsim_check: allowlist references unknown "
                             f"rule '{rule_id}'")
        files = set()
        for entry in entries:
            if not isinstance(entry, dict) or "file" not in entry \
                    or "reason" not in entry:
                raise SystemExit(
                    "ownsim_check: allowlist entries must be objects with "
                    "'file' and 'reason' keys")
            files.add(entry["file"])
        allow[rule_id] = files
    return allow


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ownsim_check.py",
        description="AST-level contract checks for the ownsim tree")
    parser.add_argument("--root", type=Path, default=DEFAULT_ROOT,
                        help="repo root to scan (default: this repo)")
    parser.add_argument("--backend", choices=("auto", "text", "libclang"),
                        default="auto")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json for the libclang backend")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="per-rule allowlist JSON "
                             "(default: <root>/tools/ownsim_check_allow.json)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rule ids")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--stats-json", type=Path, default=None,
                        help="write per-rule hit counts to this file")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in ALL_RULES.items():
            print(f"{rule_id:24} {summary}")
        return 0

    rule_ids = set(ALL_RULES)
    if args.rules:
        rule_ids = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = rule_ids - set(ALL_RULES)
        if unknown:
            print(f"ownsim_check: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"ownsim_check: no src/ under {root}", file=sys.stderr)
        return 2

    allow_path = args.allowlist or (root / "tools" / "ownsim_check_allow.json")
    try:
        allowlist = load_allowlist(allow_path)
    except json.JSONDecodeError as e:
        print(f"ownsim_check: bad allowlist {allow_path}: {e}",
              file=sys.stderr)
        return 2

    backend = None
    backend_note = ""
    if args.backend in ("auto", "libclang"):
        cc = args.compile_commands
        try:
            import clang.cindex  # noqa: F401
            if cc is None or not cc.is_file():
                raise RuntimeError(
                    "libclang backend needs --compile-commands pointing at "
                    "an existing compile_commands.json")
            backend = LibclangBackend(root, cc.resolve())
        except Exception as e:  # ImportError, LibclangError, RuntimeError
            if args.backend == "libclang":
                print(f"ownsim_check: libclang backend unavailable: {e}",
                      file=sys.stderr)
                return 2
            backend_note = f" (libclang unavailable: {e})"
    if backend is None:
        backend = TextBackend(root)

    try:
        findings = backend.run(rule_ids)
    except Exception as e:
        if backend.name == "libclang" and args.backend == "auto":
            # A half-configured clang install must not wedge `auto` runs.
            print(f"ownsim_check: libclang backend failed ({e}); "
                  f"falling back to text backend", file=sys.stderr)
            backend = TextBackend(root)
            findings = backend.run(rule_ids)
        else:
            raise

    kept: list[Finding] = []
    waived = 0
    for f in findings:
        if f.rel in allowlist.get(f.rule_id, set()):
            waived += 1
        else:
            kept.append(f)
    kept.sort(key=lambda f: (f.rel, f.line, f.rule_id))

    counts = {rule_id: 0 for rule_id in sorted(rule_ids)}
    for f in kept:
        counts[f.rule_id] += 1
    if args.stats_json:
        stats = {
            "backend": backend.name,
            "rules": counts,
            "findings": len(kept),
            "allowlisted": waived,
        }
        args.stats_json.write_text(json.dumps(stats, indent=2,
                                              sort_keys=True) + "\n")

    if kept:
        print(f"ownsim_check [{backend.name}]{backend_note}: "
              f"{len(kept)} finding(s):\n")
        for f in kept:
            print(f.render())
        print("\nSuppress a reviewed exception with "
              "'// ownsim-check: allow(rule-id)' on or above the line, or "
              f"add an entry to {allow_path.name}.")
        return 1
    waived_note = f", {waived} allowlisted" if waived else ""
    print(f"ownsim_check [{backend.name}]{backend_note}: OK "
          f"({', '.join(sorted(rule_ids))}{waived_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Diff bench JSONL records against a stored baseline.

Usage:
  python3 tools/perf_compare.py BASELINE.json CURRENT.json [options]

Both files hold one JSON object per line (JSONL) in the schema emitted by
ownsim's emit_bench_json() (src/metrics/bench_json.hpp). Schema version 1
and 2 are both accepted; v2 added `kernel` and `threads` fields (v1 records
read as kernel="activity", threads=1). Records pair up on
(bench, config, kernel, threads); metrics pair up on name within a record.

Comparison rules, per metric:
  * deterministic metrics (simulated quantities) use --tol-deterministic
    (default 1e-6 relative): any larger drift is a reproducibility break and
    fails regardless of direction.
  * wall-clock metrics use --tol-wall (default 0.5, i.e. +/-50% relative) and
    only fail in the *worse* direction given the metric's "better" field
    ("lower" means an increase is a regression); "either" never fails.

Floors (--floor NAME=BOUND or --floor CONFIG:NAME=BOUND, repeatable) check
CURRENT values against an absolute bound, direction-aware via the metric's
"better" field: a better="higher" metric must be >= BOUND, a better="lower"
metric <= BOUND. The qualified form restricts the floor to records whose
`config` field equals CONFIG (a promise can hold in one regime only — e.g.
the parallel-kernel speedup on the saturated point but not the idle one).
A floor violation fails the run EVEN UNDER --advisory — floors encode hard
promises (e.g. "the parallel kernel is not slower than the sequential one"),
not noisy wall-clock baselines. A floor whose metric never appears in the
current file (within its CONFIG, if qualified) is itself a failure (the
promise was not measured).

Exit codes:
  0  no regressions (or --advisory with no floor violations)
  1  at least one regression / floor violation
  2  malformed input / schema mismatch
"""
from __future__ import annotations

import argparse
import json
import sys

SCHEMA_VERSION = 2
ACCEPTED_SCHEMA_VERSIONS = (1, 2)


class FormatError(Exception):
    pass


def load_records(path):
    """Parse a JSONL bench file -> {(bench, config, kernel, threads):
    {metric: dict}}."""
    records = {}
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as err:
        raise FormatError(f"{path}: {err}") from err
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as err:
            raise FormatError(f"{path}:{lineno}: invalid JSON: {err}") from err
        if not isinstance(obj, dict):
            raise FormatError(f"{path}:{lineno}: expected a JSON object")
        version = obj.get("schema_version")
        if version not in ACCEPTED_SCHEMA_VERSIONS:
            raise FormatError(
                f"{path}:{lineno}: schema_version {version!r}, "
                f"expected one of {sorted(ACCEPTED_SCHEMA_VERSIONS)}")
        for field in ("bench", "config", "metrics"):
            if field not in obj:
                raise FormatError(f"{path}:{lineno}: missing field {field!r}")
        # v1 records predate the kernel/threads fields; they were always
        # single-threaded activity-kernel runs.
        kernel = obj.get("kernel", "activity")
        threads = obj.get("threads", 1)
        if not isinstance(threads, int):
            raise FormatError(f"{path}:{lineno}: 'threads' is not an integer")
        key = (obj["bench"], obj["config"], kernel, threads)
        metrics = records.setdefault(key, {})
        for metric in obj["metrics"]:
            if not isinstance(metric, dict) or "name" not in metric \
                    or "value" not in metric:
                raise FormatError(
                    f"{path}:{lineno}: metric needs 'name' and 'value'")
            if not isinstance(metric["value"], (int, float)):
                raise FormatError(
                    f"{path}:{lineno}: metric {metric['name']!r} value "
                    f"is not a number")
            metrics[metric["name"]] = metric
    return records


def record_label(key):
    bench, config, kernel, threads = key
    label = f"{bench}[{config}]"
    if kernel != "activity" or threads != 1:
        label += f"[{kernel}/t{threads}]"
    return label


def relative_delta(baseline, current):
    if baseline == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return (current - baseline) / abs(baseline)


def compare(baseline, current, tol_deterministic, tol_wall):
    """Yields (severity, message); severity is 'regression' or 'info'."""
    for key in sorted(set(baseline) | set(current)):
        label = record_label(key)
        if key not in current:
            yield "info", f"{label}: present in baseline only (not rerun)"
            continue
        if key not in baseline:
            yield "info", f"{label}: new bench (no baseline yet)"
            continue
        base_metrics, cur_metrics = baseline[key], current[key]
        for name in sorted(set(base_metrics) | set(cur_metrics)):
            if name not in cur_metrics:
                yield "regression", f"{label}.{name}: metric disappeared"
                continue
            if name not in base_metrics:
                yield "info", f"{label}.{name}: new metric (no baseline)"
                continue
            base, cur = base_metrics[name], cur_metrics[name]
            deterministic = bool(base.get("deterministic", True))
            better = base.get("better", "either")
            delta = relative_delta(float(base["value"]), float(cur["value"]))
            detail = (f"{label}.{name}: {base['value']} -> {cur['value']} "
                      f"({delta:+.2%})")
            if deterministic:
                if abs(delta) > tol_deterministic:
                    yield "regression", detail + " [deterministic drift]"
                continue
            worse = (better == "lower" and delta > tol_wall) or \
                    (better == "higher" and delta < -tol_wall)
            if worse:
                yield "regression", detail + f" [worse than {tol_wall:.0%}]"
            elif abs(delta) > tol_wall:
                yield "info", detail + " (improved)"


def parse_floors(specs):
    """Parses repeated [CONFIG:]NAME=BOUND options -> {(config, name): bound};
    config is None for unqualified floors (all records)."""
    floors = {}
    for spec in specs:
        qualified, sep, bound = spec.partition("=")
        if not sep or not qualified:
            raise FormatError(f"--floor {spec!r}: expected [CONFIG:]NAME=BOUND")
        config, sep, name = qualified.rpartition(":")
        if not sep:
            config, name = None, qualified
        if not name or (sep and not config):
            raise FormatError(f"--floor {spec!r}: expected [CONFIG:]NAME=BOUND")
        try:
            floors[(config, name)] = float(bound)
        except ValueError as err:
            raise FormatError(
                f"--floor {spec!r}: bound is not a number") from err
    return floors


def check_floors(current, floors):
    """Yields (violated, message) per floor, direction-aware per metric."""
    def floor_label(config, name):
        return name if config is None else f"{config}:{name}"

    for config, name in sorted(floors, key=lambda k: (k[0] or "", k[1])):
        bound = floors[(config, name)]
        matches = [(key, metrics[name]) for key, metrics in sorted(
            current.items())
            if name in metrics and (config is None or key[1] == config)]
        if not matches:
            yield True, (f"floor {floor_label(config, name)}={bound}: metric "
                         f"not present in current results")
            continue
        for key, metric in matches:
            value = float(metric["value"])
            better = metric.get("better", "higher")
            if better == "lower":
                violated = value > bound
                op = "<="
            else:
                violated = value < bound
                op = ">="
            state = "VIOLATED" if violated else "ok"
            yield violated, (f"floor {record_label(key)}.{name} {op} {bound}: "
                             f"measured {value} [{state}]")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline JSONL file")
    parser.add_argument("current", help="freshly emitted JSONL file")
    parser.add_argument("--tol-deterministic", type=float, default=1e-6,
                        help="relative tolerance for deterministic metrics "
                             "(default 1e-6)")
    parser.add_argument("--tol-wall", type=float, default=0.5,
                        help="relative tolerance for wall-clock metrics "
                             "(default 0.5 = 50%%)")
    parser.add_argument("--floor", action="append", default=[],
                        metavar="[CONFIG:]NAME=BOUND",
                        help="absolute bound on a current metric (better="
                             "'higher': value must be >= BOUND; better="
                             "'lower': <= BOUND), optionally restricted to "
                             "records with a given config; violations fail "
                             "even under --advisory; repeatable")
    parser.add_argument("--advisory", action="store_true",
                        help="report baseline regressions but exit 0 for "
                             "them (shared-runner CI: wall time is noisy); "
                             "floor violations still fail")
    args = parser.parse_args(argv)

    try:
        floors = parse_floors(args.floor)
        baseline = load_records(args.baseline)
        current = load_records(args.current)
    except FormatError as err:
        print(f"perf_compare: format error: {err}", file=sys.stderr)
        return 2

    regressions = 0
    for severity, message in compare(baseline, current,
                                     args.tol_deterministic, args.tol_wall):
        prefix = "REGRESSION" if severity == "regression" else "info"
        print(f"[{prefix}] {message}")
        if severity == "regression":
            regressions += 1
    floor_violations = 0
    for violated, message in check_floors(current, floors):
        print(f"[{'FLOOR' if violated else 'info'}] {message}")
        if violated:
            floor_violations += 1
    total_metrics = sum(len(m) for m in current.values())
    print(f"perf_compare: {total_metrics} metric(s) across "
          f"{len(current)} bench(es); {regressions} regression(s); "
          f"{floor_violations} floor violation(s)")
    if floor_violations:
        return 1
    if regressions and args.advisory:
        print("perf_compare: advisory mode, not failing the build")
        return 0
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Diff bench JSONL records against a stored baseline.

Usage:
  python3 tools/perf_compare.py BASELINE.json CURRENT.json [options]

Both files hold one JSON object per line (JSONL) in the schema emitted by
ownsim's emit_bench_json() (src/metrics/bench_json.hpp, schema_version 1).
Records pair up on (bench, config); metrics pair up on name within a record.

Comparison rules, per metric:
  * deterministic metrics (simulated quantities) use --tol-deterministic
    (default 1e-6 relative): any larger drift is a reproducibility break and
    fails regardless of direction.
  * wall-clock metrics use --tol-wall (default 0.5, i.e. +/-50% relative) and
    only fail in the *worse* direction given the metric's "better" field
    ("lower" means an increase is a regression); "either" never fails.

Exit codes:
  0  no regressions (or --advisory)
  1  at least one regression
  2  malformed input / schema mismatch
"""
from __future__ import annotations

import argparse
import json
import sys

SCHEMA_VERSION = 1


class FormatError(Exception):
    pass


def load_records(path):
    """Parse a JSONL bench file -> {(bench, config): {metric: dict}}."""
    records = {}
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as err:
        raise FormatError(f"{path}: {err}") from err
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as err:
            raise FormatError(f"{path}:{lineno}: invalid JSON: {err}") from err
        if not isinstance(obj, dict):
            raise FormatError(f"{path}:{lineno}: expected a JSON object")
        version = obj.get("schema_version")
        if version != SCHEMA_VERSION:
            raise FormatError(
                f"{path}:{lineno}: schema_version {version!r}, "
                f"expected {SCHEMA_VERSION}")
        for field in ("bench", "config", "metrics"):
            if field not in obj:
                raise FormatError(f"{path}:{lineno}: missing field {field!r}")
        key = (obj["bench"], obj["config"])
        metrics = records.setdefault(key, {})
        for metric in obj["metrics"]:
            if not isinstance(metric, dict) or "name" not in metric \
                    or "value" not in metric:
                raise FormatError(
                    f"{path}:{lineno}: metric needs 'name' and 'value'")
            if not isinstance(metric["value"], (int, float)):
                raise FormatError(
                    f"{path}:{lineno}: metric {metric['name']!r} value "
                    f"is not a number")
            metrics[metric["name"]] = metric
    return records


def relative_delta(baseline, current):
    if baseline == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return (current - baseline) / abs(baseline)


def compare(baseline, current, tol_deterministic, tol_wall):
    """Yields (severity, message); severity is 'regression' or 'info'."""
    for key in sorted(set(baseline) | set(current)):
        bench, config = key
        label = f"{bench}[{config}]"
        if key not in current:
            yield "info", f"{label}: present in baseline only (not rerun)"
            continue
        if key not in baseline:
            yield "info", f"{label}: new bench (no baseline yet)"
            continue
        base_metrics, cur_metrics = baseline[key], current[key]
        for name in sorted(set(base_metrics) | set(cur_metrics)):
            if name not in cur_metrics:
                yield "regression", f"{label}.{name}: metric disappeared"
                continue
            if name not in base_metrics:
                yield "info", f"{label}.{name}: new metric (no baseline)"
                continue
            base, cur = base_metrics[name], cur_metrics[name]
            deterministic = bool(base.get("deterministic", True))
            better = base.get("better", "either")
            delta = relative_delta(float(base["value"]), float(cur["value"]))
            detail = (f"{label}.{name}: {base['value']} -> {cur['value']} "
                      f"({delta:+.2%})")
            if deterministic:
                if abs(delta) > tol_deterministic:
                    yield "regression", detail + " [deterministic drift]"
                continue
            worse = (better == "lower" and delta > tol_wall) or \
                    (better == "higher" and delta < -tol_wall)
            if worse:
                yield "regression", detail + f" [worse than {tol_wall:.0%}]"
            elif abs(delta) > tol_wall:
                yield "info", detail + " (improved)"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline JSONL file")
    parser.add_argument("current", help="freshly emitted JSONL file")
    parser.add_argument("--tol-deterministic", type=float, default=1e-6,
                        help="relative tolerance for deterministic metrics "
                             "(default 1e-6)")
    parser.add_argument("--tol-wall", type=float, default=0.5,
                        help="relative tolerance for wall-clock metrics "
                             "(default 0.5 = 50%%)")
    parser.add_argument("--advisory", action="store_true",
                        help="report regressions but always exit 0 "
                             "(shared-runner CI: wall time is noisy)")
    args = parser.parse_args(argv)

    try:
        baseline = load_records(args.baseline)
        current = load_records(args.current)
    except FormatError as err:
        print(f"perf_compare: format error: {err}", file=sys.stderr)
        return 2

    regressions = 0
    compared = 0
    for severity, message in compare(baseline, current,
                                     args.tol_deterministic, args.tol_wall):
        compared += 1
        prefix = "REGRESSION" if severity == "regression" else "info"
        print(f"[{prefix}] {message}")
        if severity == "regression":
            regressions += 1
    total_metrics = sum(len(m) for m in current.values())
    print(f"perf_compare: {total_metrics} metric(s) across "
          f"{len(current)} bench(es); {regressions} regression(s)")
    if regressions and args.advisory:
        print("perf_compare: advisory mode, not failing the build")
        return 0
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Run clang-tidy over every first-party translation unit listed in
# compile_commands.json. Usage:
#   tools/run_clang_tidy.sh [build-dir]
# The build dir must have been configured by CMake (compile_commands.json is
# exported unconditionally by the top-level CMakeLists).
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -f "$ROOT/$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found." >&2
  echo "Configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "error: $TIDY not found; install clang-tidy or set CLANG_TIDY." >&2
  exit 2
fi

RUNNER="$(command -v run-clang-tidy || true)"
cd "$ROOT"
FILES=$(python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if "/_deps/" in f or "/CMakeFiles/" in f:
        continue
    print(f)
EOF
)

if [[ -n "$RUNNER" ]]; then
  # shellcheck disable=SC2086
  "$RUNNER" -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet $FILES
else
  # shellcheck disable=SC2086
  "$TIDY" -p "$BUILD_DIR" --quiet $FILES
fi

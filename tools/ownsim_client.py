#!/usr/bin/env python3
"""Reference client for the ownsim_serve experiment daemon.

The daemon (examples/ownsim_serve.cpp) listens on an AF_UNIX socket and
speaks newline-delimited JSON: one request object per line in, a stream of
JSONL events out. This client wraps the verbs and adds a batch mode that
replays a config file (one `key=value ...` experiment per line) and waits
for every job to finish.

Examples:
    ownsim_client.py --socket /tmp/ownsim.sock ping
    ownsim_client.py submit topology=own cores=256 rate=0.004 measure=800
    ownsim_client.py batch sweep.conf --log events.jsonl --digests out.txt
    ownsim_client.py batch sweep.conf --expect-all-hits   # second pass
    ownsim_client.py stats
    ownsim_client.py shutdown

Exit codes: 0 success; 1 usage/connection error; 2 an expectation failed
(--expect-all-hits saw a fresh simulation, or a batch job failed).
"""

import argparse
import json
import shlex
import socket
import sys
import threading

TERMINAL_EVENTS = ("done", "cancelled", "failed", "rejected", "error")


def connect(path):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.connect(path)
    except OSError as e:
        sys.stderr.write("cannot connect to %s: %s\n" % (path, e))
        sys.exit(1)
    return sock


def send_request(sock, obj):
    sock.sendall((json.dumps(obj) + "\n").encode("utf-8"))


def read_events(sock):
    """Yields decoded JSON events from the socket until it closes."""
    reader = sock.makefile("r", encoding="utf-8")
    for line in reader:
        line = line.strip()
        if line:
            yield json.loads(line)


def parse_config_tokens(tokens):
    """['topology=own', 'rate=0.004'] -> {'topology': 'own', ...}."""
    config = {}
    for token in tokens:
        if "=" not in token:
            raise ValueError("expected key=value, got %r" % token)
        key, value = token.split("=", 1)
        config[key] = value
    return config


def one_shot(args, request):
    """Sends one request, prints the single reply event."""
    sock = connect(args.socket)
    send_request(sock, request)
    for event in read_events(sock):
        print(json.dumps(event, sort_keys=True))
        return 0 if event.get("event") != "error" else 1
    sys.stderr.write("connection closed without a reply\n")
    return 1


def cmd_ping(args):
    return one_shot(args, {"verb": "ping"})


def cmd_status(args):
    request = {"verb": "status"}
    if args.job:
        request["job"] = args.job
    return one_shot(args, request)


def cmd_result(args):
    return one_shot(args, {"verb": "result", "job": args.job})


def cmd_stats(args):
    return one_shot(args, {"verb": "stats"})


def cmd_cancel(args):
    return one_shot(args, {"verb": "cancel", "job": args.job})


def cmd_shutdown(args):
    return one_shot(args, {"verb": "shutdown", "drain": not args.no_drain})


def cmd_submit(args):
    config = parse_config_tokens(args.config)
    sock = connect(args.socket)
    send_request(sock, {"verb": "submit", "config": config,
                        "priority": args.priority, "stream": True})
    status = 1  # connection died before a terminal event
    for event in read_events(sock):
        print(json.dumps(event, sort_keys=True))
        kind = event.get("event")
        if kind in ("done",):
            status = 0
        if kind in TERMINAL_EVENTS:
            if kind in ("failed", "cancelled", "rejected", "error"):
                status = 2
            break
    sock.close()
    return status


def load_batch_file(path):
    """One experiment per non-comment line: 'key=value key2=value2 ...'."""
    configs = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                configs.append(parse_config_tokens(shlex.split(line)))
            except ValueError as e:
                raise ValueError("%s:%d: %s" % (path, lineno, e))
    return configs


def cmd_batch(args):
    try:
        configs = load_batch_file(args.file)
    except (OSError, ValueError) as e:
        sys.stderr.write("batch: %s\n" % e)
        return 1
    if not configs:
        sys.stderr.write("batch: no experiments in %s\n" % args.file)
        return 1

    sock = connect(args.socket)
    log = open(args.log, "w", encoding="utf-8") if args.log else None

    # Events arrive from daemon worker threads while we are still submitting,
    # so collect them on a reader thread.
    terminal = []      # terminal events, one expected per submission
    done_events = []   # the done subset (carry result_sha256 + cache_hit)
    lock = threading.Lock()
    finished = threading.Event()

    def reader():
        try:
            for event in read_events(sock):
                with lock:
                    if log:
                        log.write(json.dumps(event, sort_keys=True) + "\n")
                    kind = event.get("event")
                    if kind == "done":
                        done_events.append(event)
                    if kind in TERMINAL_EVENTS:
                        terminal.append(event)
                        if len(terminal) >= len(configs):
                            finished.set()
                            return
        finally:
            finished.set()

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    for config in configs:
        send_request(sock, {"verb": "submit", "config": config,
                            "priority": args.priority, "stream": True})
    finished.wait(timeout=args.timeout)
    thread.join(timeout=1.0)
    sock.close()
    if log:
        log.close()

    if len(terminal) < len(configs):
        sys.stderr.write("batch: %d of %d jobs finished before timeout\n"
                         % (len(terminal), len(configs)))
        return 1

    hits = sum(1 for e in done_events if e.get("cache_hit"))
    failures = [e for e in terminal if e.get("event") != "done"]
    print("batch: %d experiments, %d done (%d cache hits), %d failed"
          % (len(configs), len(done_events), hits, len(failures)))

    if args.digests:
        with open(args.digests, "w", encoding="utf-8") as f:
            for key, sha in sorted({(e["key"], e["result_sha256"])
                                    for e in done_events}):
                f.write("%s %s\n" % (key, sha))

    if failures:
        for event in failures:
            sys.stderr.write("batch: job did not complete: %s\n"
                             % json.dumps(event, sort_keys=True))
        return 2
    if args.expect_all_hits and hits < len(done_events):
        sys.stderr.write("batch: expected 100%% cache hits, got %d/%d\n"
                         % (hits, len(done_events)))
        return 2
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--socket", default="/tmp/ownsim.sock",
                        help="daemon AF_UNIX socket path")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ping").set_defaults(func=cmd_ping)

    p = sub.add_parser("submit", help="submit one experiment, stream events")
    p.add_argument("config", nargs="+", metavar="key=value")
    p.add_argument("--priority", type=int, default=0)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("batch", help="replay a config file of experiments")
    p.add_argument("file", help="one 'key=value ...' experiment per line")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--log", help="write every received event (JSONL)")
    p.add_argument("--digests",
                   help="write 'cache_key result_sha256' per done job")
    p.add_argument("--expect-all-hits", action="store_true",
                   help="fail unless every result came from the cache")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait for the batch [600]")
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser("status")
    p.add_argument("job", nargs="?", help="job id (omit for all jobs)")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("result")
    p.add_argument("job")
    p.set_defaults(func=cmd_result)

    sub.add_parser("stats").set_defaults(func=cmd_stats)

    p = sub.add_parser("cancel")
    p.add_argument("job")
    p.set_defaults(func=cmd_cancel)

    p = sub.add_parser("shutdown")
    p.add_argument("--no-drain", action="store_true",
                   help="cancel queued/running jobs instead of finishing them")
    p.set_defaults(func=cmd_shutdown)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()

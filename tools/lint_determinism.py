#!/usr/bin/env python3
"""Determinism lint: forbid nondeterministic randomness and wall-clock seeding.

The simulator's reproducibility contract (DESIGN.md) is that every random
decision flows from ownsim::Rng seeded via derive_seed(master, stream). This
lint fails if first-party code reintroduces a nondeterministic source:

  * C randomness:      rand(), srand()
  * C time seeding:    time(NULL)-style calls
  * <random> engines:  std::random_device, std::mt19937[_64],
                       std::default_random_engine, std::minstd_rand[0]
  * wall clocks:       std::chrono system_clock / high_resolution_clock

The absolute bans above apply to every scanned tree (src, tests, bench,
examples). Three further rules are path-scoped, with their scopes and
exemptions declared in the SCOPED_RULES table below: steady_clock is
telemetry-only (src/exec, src/metrics, src/serve), system_clock is
serve-daemon-only (protocol timestamps that never enter a simulated
result), and literal Rng seeds are banned not just in src/ but also in the
shipped drivers under bench/ and examples/ — a benchmark that pins a seed
literal correlates its streams exactly like library code would. Unit tests
keep the right to pin seeds on purpose.

Run:  python3 tools/lint_determinism.py        (from the repo root)
Exit: 0 clean, 1 violations found.
"""
from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ["src", "tests", "bench", "examples"]
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc"}

# Pattern -> human-readable rule. Patterns are matched per line after comment
# stripping.
FORBIDDEN: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"\bstd::rand\s*\(|(?<![\w:])rand\s*\(\s*\)"),
     "rand() is nondeterministic across platforms; use ownsim::Rng"),
    (re.compile(r"\bsrand\s*\("),
     "srand() reseeds global state; use derive_seed(master, stream)"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time() must not feed simulation state; seeds come from config"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device is nondeterministic; use ownsim::Rng"),
    (re.compile(r"\bstd::(mt19937(_64)?|default_random_engine|"
                r"minstd_rand0?|ranlux\w+|knuth_b)\b"),
     "std <random> engines are not part of the seed-derivation scheme; "
     "use ownsim::Rng"),
    (re.compile(r"\bstd::chrono::high_resolution_clock\b"),
     "high_resolution_clock is nondeterministic; steady_clock telemetry only"),
]

# Path-scoped rules: the pattern is forbidden wherever `applies_to` matches
# unless the file sits under an `allowed` prefix (or IS an allowed file).
# Keeping scope + exemptions declarative here means a new directory or a new
# exemption is one table edit, reviewable in isolation.
@dataclass(frozen=True)
class ScopedRule:
    pattern: re.Pattern[str]
    message: str
    applies_to: tuple[str, ...]  # path prefixes the rule covers
    allowed: tuple[str, ...] = ()  # prefixes or exact files exempt from it

    def violates(self, rel: str, line: str) -> bool:
        if not rel.startswith(self.applies_to):
            return False
        if rel.startswith(self.allowed):
            return False
        return bool(self.pattern.search(line))


SCOPED_RULES: tuple[ScopedRule, ...] = (
    # steady_clock measures elapsed wall time in telemetry paths only; it
    # must never reach code that computes a simulated result.
    ScopedRule(
        pattern=re.compile(r"\bstd::chrono::steady_clock\b"),
        message="steady_clock is only allowed in telemetry code under "
                "src/exec/, src/metrics/ or src/serve/ (and in the "
                "harnesses under tests/, bench/, examples/ that time "
                "themselves)",
        applies_to=("src/",),
        allowed=("src/exec/", "src/metrics/", "src/serve/"),
    ),
    # Wall-clock timestamps are allowed only in the serve daemon, where they
    # annotate protocol events and never touch a simulated result (the
    # result cache depends on results being a pure function of config +
    # code version).
    ScopedRule(
        pattern=re.compile(r"\bstd::chrono::system_clock\b"),
        message="system_clock is only allowed in the serve daemon "
                "(src/serve/), for protocol timestamps",
        applies_to=("src/", "tests/", "bench/", "examples/"),
        allowed=("src/serve/", "tests/test_serve"),
    ),
    # An Rng constructed from a literal would silently correlate streams;
    # first-party code AND the shipped drivers (bench/, examples/) must
    # derive seeds via derive_seed(master, stream). Unit tests may pin
    # literal seeds on purpose. rng.hpp itself declares the default arg.
    ScopedRule(
        pattern=re.compile(r"\bRng\s*[({]\s*\d"),
        message="Rng must be seeded via derive_seed(master, stream), "
                "not a literal (unit tests excepted)",
        applies_to=("src/", "bench/", "examples/"),
        allowed=("src/common/rng.hpp",),
    ),
)


def strip_comments(line: str, in_block: bool) -> tuple[str, bool]:
    """Remove // and /* */ comment text from one line."""
    out = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block = False
        elif line.startswith("//", i):
            break
        elif line.startswith("/*", i):
            in_block = True
            i += 2
        else:
            out.append(line[i])
            i += 1
    return "".join(out), in_block


def lint_file(path: Path) -> list[str]:
    rel = path.relative_to(ROOT).as_posix()
    errors = []
    in_block = False
    for lineno, raw in enumerate(path.read_text(errors="replace").splitlines(),
                                 start=1):
        line, in_block = strip_comments(raw, in_block)
        if "lint:allow-nondeterminism" in raw:
            continue
        for pattern, rule in FORBIDDEN:
            if pattern.search(line):
                errors.append(f"{rel}:{lineno}: {rule}\n    {raw.strip()}")
        for scoped in SCOPED_RULES:
            if scoped.violates(rel, line):
                errors.append(
                    f"{rel}:{lineno}: {scoped.message}\n    {raw.strip()}")
    return errors


def main() -> int:
    errors: list[str] = []
    scanned = 0
    for d in SCAN_DIRS:
        for path in sorted((ROOT / d).rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                scanned += 1
                errors.extend(lint_file(path))
    if errors:
        print(f"determinism lint: {len(errors)} violation(s) "
              f"in {scanned} files:\n")
        print("\n".join(errors))
        return 1
    print(f"determinism lint: OK ({scanned} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Determinism lint: forbid nondeterministic randomness and wall-clock seeding.

The simulator's reproducibility contract (DESIGN.md) is that every random
decision flows from ownsim::Rng seeded via derive_seed(master, stream). This
lint fails if first-party code reintroduces a nondeterministic source:

  * C randomness:      rand(), srand()
  * C time seeding:    time(NULL)-style calls
  * <random> engines:  std::random_device, std::mt19937[_64],
                       std::default_random_engine, std::minstd_rand[0]
  * wall clocks:       std::chrono system_clock / high_resolution_clock

steady_clock is allowed, but only in the telemetry paths (src/exec,
src/metrics, src/serve) where it measures elapsed wall time and never feeds
a seed or a simulated decision. system_clock is allowed only in src/serve,
which timestamps daemon events (job submission times, JSONL logs) — those
timestamps never enter a simulated result, whose bytes the serve cache
requires to be a pure function of (config, code version).

Run:  python3 tools/lint_determinism.py        (from the repo root)
Exit: 0 clean, 1 violations found.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ["src", "tests", "bench", "examples"]
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc"}

# Pattern -> human-readable rule. Patterns are matched per line after comment
# stripping.
FORBIDDEN: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"\bstd::rand\s*\(|(?<![\w:])rand\s*\(\s*\)"),
     "rand() is nondeterministic across platforms; use ownsim::Rng"),
    (re.compile(r"\bsrand\s*\("),
     "srand() reseeds global state; use derive_seed(master, stream)"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time() must not feed simulation state; seeds come from config"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device is nondeterministic; use ownsim::Rng"),
    (re.compile(r"\bstd::(mt19937(_64)?|default_random_engine|"
                r"minstd_rand0?|ranlux\w+|knuth_b)\b"),
     "std <random> engines are not part of the seed-derivation scheme; "
     "use ownsim::Rng"),
    (re.compile(r"\bstd::chrono::high_resolution_clock\b"),
     "high_resolution_clock is nondeterministic; steady_clock telemetry only"),
]

STEADY_CLOCK = re.compile(r"\bstd::chrono::steady_clock\b")
STEADY_CLOCK_ALLOWED_PREFIXES = ("src/exec/", "src/metrics/", "src/serve/")

# Wall-clock timestamps are allowed only in the serve daemon, where they
# annotate protocol events and never touch a simulated result (the result
# cache depends on results being a pure function of config + code version).
SYSTEM_CLOCK = re.compile(r"\bstd::chrono::system_clock\b")
SYSTEM_CLOCK_ALLOWED_PREFIXES = ("src/serve/",)

# An Rng constructed from a literal in src/ would silently correlate streams;
# require derive_seed (tests/bench may pin literal seeds on purpose).
RNG_LITERAL_SEED = re.compile(r"\bRng\s*[({]\s*\d")


def strip_comments(line: str, in_block: bool) -> tuple[str, bool]:
    """Remove // and /* */ comment text from one line."""
    out = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block = False
        elif line.startswith("//", i):
            break
        elif line.startswith("/*", i):
            in_block = True
            i += 2
        else:
            out.append(line[i])
            i += 1
    return "".join(out), in_block


def lint_file(path: Path) -> list[str]:
    rel = path.relative_to(ROOT).as_posix()
    errors = []
    in_block = False
    for lineno, raw in enumerate(path.read_text(errors="replace").splitlines(),
                                 start=1):
        line, in_block = strip_comments(raw, in_block)
        if "lint:allow-nondeterminism" in raw:
            continue
        for pattern, rule in FORBIDDEN:
            if pattern.search(line):
                errors.append(f"{rel}:{lineno}: {rule}\n    {raw.strip()}")
        if STEADY_CLOCK.search(line) and not rel.startswith(
                STEADY_CLOCK_ALLOWED_PREFIXES):
            errors.append(
                f"{rel}:{lineno}: steady_clock is only allowed in telemetry "
                f"code under src/exec/, src/metrics/ or src/serve/\n"
                f"    {raw.strip()}")
        if SYSTEM_CLOCK.search(line) and not rel.startswith(
                SYSTEM_CLOCK_ALLOWED_PREFIXES):
            errors.append(
                f"{rel}:{lineno}: system_clock is only allowed in the serve "
                f"daemon (src/serve/), for protocol timestamps\n"
                f"    {raw.strip()}")
        if rel.startswith("src/") and RNG_LITERAL_SEED.search(line):
            if "rng.hpp" not in rel:  # the default-arg declaration itself
                errors.append(
                    f"{rel}:{lineno}: Rng in src/ must be seeded via "
                    f"derive_seed(master, stream), not a literal\n"
                    f"    {raw.strip()}")
    return errors


def main() -> int:
    errors: list[str] = []
    scanned = 0
    for d in SCAN_DIRS:
        for path in sorted((ROOT / d).rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                scanned += 1
                errors.extend(lint_file(path))
    if errors:
        print(f"determinism lint: {len(errors)} violation(s) "
              f"in {scanned} files:\n")
        print("\n".join(errors))
        return 1
    print(f"determinism lint: OK ({scanned} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Regenerates paper Fig. 8: the 1024-core evaluation.
//  (a) accepted throughput on select synthetic traces for all topologies;
//  (b) average power per packet under uniform random traffic.
// Paper shape: throughput variation across architectures is small; OptXB is
// cheapest per packet but its radix adds considerable power at this scale
// (OWN ~ +30% over OptXB); OWN lands ~3% below wireless-CMESH; CMESH is the
// most expensive.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"

int main() {
  using namespace ownsim;

  bench::print_header("1024-core saturation throughput (flits/node/cycle)",
                      "Fig 8a");
  const std::vector<PatternKind> patterns = {
      PatternKind::kUniform, PatternKind::kBitReversal, PatternKind::kShuffle};
  std::vector<std::string> header = {"network"};
  for (PatternKind p : patterns) header.emplace_back(to_string(p));
  Table throughput(std::move(header));
  for (TopologyKind kind : paper_topologies()) {
    std::vector<std::string> row = {to_string(kind)};
    for (PatternKind pattern : patterns) {
      ExperimentConfig experiment = bench::base_experiment(kind, 1024);
      experiment.pattern = pattern;
      experiment.rate = bench::overdrive_rate(1024);
      experiment.phases.measure = 3000;
      experiment.phases.drain_limit = 3000;  // overdriven: no full drain
      const ExperimentResult result = run_experiment(experiment);
      row.push_back(Table::num(result.run.throughput, 5));
    }
    throughput.add_row(std::move(row));
  }
  throughput.print(std::cout);

  bench::print_header("1024-core average power per packet, uniform random",
                      "Fig 8b");
  Table power({"network", "total_W", "router_W", "photonic_W", "wireless_W",
               "electrical_W", "pJ/packet"});
  for (TopologyKind kind : paper_topologies()) {
    ExperimentConfig experiment = bench::base_experiment(kind, 1024);
    const ExperimentResult result = run_experiment(experiment);
    const PowerBreakdown& p = result.power;
    power.add_row({to_string(kind), Table::num(p.total_w(), 3),
                   Table::num(p.router_w(), 3), Table::num(p.photonic_w(), 3),
                   Table::num(p.wireless_w(), 3),
                   Table::num(p.electrical_link_w, 3),
                   Table::num(result.energy_per_packet_pj, 0)});
  }
  power.print(std::cout);
  std::cout << "\nOWN-1024 uses configuration 4 with all 16 SWMR channels\n"
               "(12 inter-group + 4 intra-group), as in Section V.C.\n";
  return 0;
}

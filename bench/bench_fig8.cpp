// Regenerates paper Fig. 8: the 1024-core evaluation.
//  (a) accepted throughput on select synthetic traces for all topologies;
//  (b) average power per packet under uniform random traffic.
// Paper shape: throughput variation across architectures is small; OptXB is
// cheapest per packet but its radix adds considerable power at this scale
// (OWN ~ +30% over OptXB); OWN lands ~3% below wireless-CMESH; CMESH is the
// most expensive.
//
// Every cell of both sections is an independent 1024-core experiment;
// they are mapped across the worker pool in index order, so the output is
// identical for any `OWNSIM_THREADS`.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/parallel_for.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/table_io.hpp"

int main() {
  using namespace ownsim;
  exec::ThreadPool pool;
  const std::vector<TopologyKind> topologies = paper_topologies();

  bench::print_header("1024-core saturation throughput (flits/node/cycle)",
                      "Fig 8a");
  const std::vector<PatternKind> patterns = {
      PatternKind::kUniform, PatternKind::kBitReversal, PatternKind::kShuffle};
  std::vector<std::string> header = {"network"};
  for (PatternKind p : patterns) header.emplace_back(to_string(p));
  Table throughput(std::move(header));

  const std::vector<double> cells = exec::parallel_map(
      pool, topologies.size() * patterns.size(), [&](std::size_t i) {
        ExperimentConfig experiment =
            bench::base_experiment(topologies[i / patterns.size()], 1024);
        experiment.pattern = patterns[i % patterns.size()];
        experiment.rate = bench::overdrive_rate(1024);
        experiment.phases.measure = 3000;
        experiment.phases.drain_limit = 3000;  // overdriven: no full drain
        return run_experiment(experiment).run.throughput;
      });
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    std::vector<std::string> row = {to_string(topologies[t])};
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      row.push_back(Table::num(cells[t * patterns.size() + p], 5));
    }
    throughput.add_row(std::move(row));
  }
  throughput.print(std::cout);

  bench::print_header("1024-core average power per packet, uniform random",
                      "Fig 8b");
  Table power({"network", "total_W", "router_W", "photonic_W", "wireless_W",
               "electrical_W", "pJ/packet"});
  const std::vector<ExperimentResult> results = exec::parallel_map(
      pool, topologies.size(), [&](std::size_t t) {
        return run_experiment(bench::base_experiment(topologies[t], 1024));
      });
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    const PowerBreakdown& p = results[t].power;
    power.add_row({to_string(topologies[t]), Table::num(p.total_w(), 3),
                   Table::num(p.router_w(), 3), Table::num(p.photonic_w(), 3),
                   Table::num(p.wireless_w(), 3),
                   Table::num(p.electrical_link_w, 3),
                   Table::num(results[t].energy_per_packet_pj, 0)});
  }
  power.print(std::cout);
  std::cout << "\nOWN-1024 uses configuration 4 with all 16 SWMR channels\n"
               "(12 inter-group + 4 intra-group), as in Section V.C.\n";
  return 0;
}

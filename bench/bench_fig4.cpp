// Regenerates paper Fig. 4: the CMOS transceiver building blocks.
//  (a) Colpitts oscillator: PSD around 90 GHz and phase noise at offsets
//      (paper anchor: ~-86 dBc/Hz at 1 MHz);
//  (b) class-AB PA: gain vs frequency, Pout vs Pin compression sweep
//      (anchors: 3.5 dB peak gain, ~20 GHz band at 2 dB, P1dB ~5 dBm,
//       14 mW DC);
//  (c) wideband LNA: 10 dB gain around 90 GHz.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"
#include "rf/lna.hpp"
#include "rf/oscillator.hpp"
#include "rf/pa.hpp"

int main() {
  using namespace ownsim;

  bench::print_header("Colpitts oscillator", "Fig 4a");
  const ColpittsOscillator osc;
  std::cout << "oscillation frequency: "
            << Table::num(osc.frequency_hz() / 1e9, 2) << " GHz  (C_eff = "
            << Table::num(osc.effective_capacitance_f() * 1e15, 1)
            << " fF, DC power " << Table::num(osc.dc_power_w() * 1e3, 1)
            << " mW)\n";
  Table phase_noise({"offset", "phase_noise_dBc_Hz"});
  for (double offset : {1e5, 3e5, 1e6, 3e6, 1e7, 3e7}) {
    phase_noise.add_row({Table::num(offset / 1e6, 1) + " MHz",
                         Table::num(osc.phase_noise_dbc_hz(offset), 1)});
  }
  phase_noise.print(std::cout);
  std::cout << "PSD sweep 85-95 GHz (dBc/Hz):\n";
  Table psd({"freq_GHz", "PSD_dBc_Hz"});
  for (const auto& [f, dbc] : osc.psd_sweep(85e9, 95e9, 11)) {
    psd.add_row({Table::num(f / 1e9, 1), Table::num(dbc, 1)});
  }
  psd.print(std::cout);

  bench::print_header("class-AB power amplifier", "Fig 4b");
  const ClassAbPa pa;
  std::cout << "peak gain " << Table::num(pa.gain_db(90e9), 2)
            << " dB at 90 GHz, 2-dB bandwidth "
            << Table::num(pa.bandwidth_hz(2.0) / 1e9, 1)
            << " GHz, P1dB " << Table::num(pa.p1db_dbm(), 2)
            << " dBm, DC " << Table::num(pa.params().dc_power_w * 1e3, 1)
            << " mW\n";
  Table compression({"Pin_dBm", "Pout_dBm", "gain_dB"});
  for (double pin = -15.0; pin <= 9.0; pin += 3.0) {
    const double pout = pa.output_dbm(pin, 90e9);
    compression.add_row({Table::num(pin, 0), Table::num(pout, 2),
                         Table::num(pout - pin, 2)});
  }
  compression.print(std::cout);
  Table pa_gain({"freq_GHz", "gain_dB"});
  for (double f = 78e9; f <= 102e9; f += 4e9) {
    pa_gain.add_row({Table::num(f / 1e9, 0), Table::num(pa.gain_db(f), 2)});
  }
  pa_gain.print(std::cout);

  bench::print_header("wideband LNA", "Fig 4c");
  const WidebandLna lna;
  Table lna_gain({"freq_GHz", "gain_dB"});
  for (double f = 70e9; f <= 110e9; f += 5e9) {
    lna_gain.add_row({Table::num(f / 1e9, 0), Table::num(lna.gain_db(f), 2)});
  }
  lna_gain.print(std::cout);
  std::cout << "NF " << Table::num(lna.noise_figure_db(), 1) << " dB, DC "
            << Table::num(lna.dc_power_w() * 1e3, 1) << " mW\n";
  return 0;
}

// Regenerates paper Fig. 4: the CMOS transceiver building blocks.
//  (a) Colpitts oscillator: PSD around 90 GHz and phase noise at offsets
//      (paper anchor: ~-86 dBc/Hz at 1 MHz);
//  (b) class-AB PA: gain vs frequency, Pout vs Pin compression sweep
//      (anchors: 3.5 dB peak gain, ~20 GHz band at 2 dB, P1dB ~5 dBm,
//       14 mW DC);
//  (c) wideband LNA: 10 dB gain around 90 GHz.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"
#include "rf/lna.hpp"
#include "rf/oscillator.hpp"
#include "rf/pa.hpp"

int main() {
  using namespace ownsim;

  bench::print_header("Colpitts oscillator", "Fig 4a");
  const ColpittsOscillator osc;
  std::cout << "oscillation frequency: "
            << Table::num(osc.frequency().in(1.0_ghz), 2) << " GHz  (C_eff = "
            << Table::num(osc.effective_capacitance().in(1.0_ff), 1)
            << " fF, DC power " << Table::num(osc.dc_power().in(1.0_mw), 1)
            << " mW)\n";
  Table phase_noise({"offset", "phase_noise_dBc_Hz"});
  for (double offset_mhz : {0.1, 0.3, 1.0, 3.0, 10.0, 30.0}) {
    const Frequency offset = offset_mhz * 1.0_mhz;
    phase_noise.add_row({Table::num(offset_mhz, 1) + " MHz",
                         Table::num(osc.phase_noise_dbc(offset).db(), 1)});
  }
  phase_noise.print(std::cout);
  std::cout << "PSD sweep 85-95 GHz (dBc/Hz):\n";
  Table psd({"freq_GHz", "PSD_dBc_Hz"});
  for (const auto& [f, dbc] : osc.psd_sweep(85.0_ghz, 95.0_ghz, 11)) {
    psd.add_row({Table::num(f.in(1.0_ghz), 1), Table::num(dbc.db(), 1)});
  }
  psd.print(std::cout);

  bench::print_header("class-AB power amplifier", "Fig 4b");
  const ClassAbPa pa;
  std::cout << "peak gain " << Table::num(pa.gain(90.0_ghz).db(), 2)
            << " dB at 90 GHz, 2-dB bandwidth "
            << Table::num(pa.bandwidth(2.0_db).in(1.0_ghz), 1)
            << " GHz, P1dB " << Table::num(pa.p1db().dbm(), 2)
            << " dBm, DC " << Table::num(pa.params().dc_power.in(1.0_mw), 1)
            << " mW\n";
  Table compression({"Pin_dBm", "Pout_dBm", "gain_dB"});
  for (double pin = -15.0; pin <= 9.0; pin += 3.0) {
    const DbmPower pout = pa.output(DbmPower{pin}, 90.0_ghz);
    compression.add_row({Table::num(pin, 0), Table::num(pout.dbm(), 2),
                         Table::num((pout - DbmPower{pin}).db(), 2)});
  }
  compression.print(std::cout);
  Table pa_gain({"freq_GHz", "gain_dB"});
  for (double f = 78.0; f <= 102.0; f += 4.0) {
    pa_gain.add_row(
        {Table::num(f, 0), Table::num(pa.gain(f * 1.0_ghz).db(), 2)});
  }
  pa_gain.print(std::cout);

  bench::print_header("wideband LNA", "Fig 4c");
  const WidebandLna lna;
  Table lna_gain({"freq_GHz", "gain_dB"});
  for (double f = 70.0; f <= 110.0; f += 5.0) {
    lna_gain.add_row(
        {Table::num(f, 0), Table::num(lna.gain(f * 1.0_ghz).db(), 2)});
  }
  lna_gain.print(std::cout);
  std::cout << "NF " << Table::num(lna.noise_figure().db(), 1) << " dB, DC "
            << Table::num(lna.dc_power().in(1.0_mw), 1) << " mW\n";
  return 0;
}

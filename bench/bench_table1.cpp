// Regenerates paper Table I: the OWN-256 wireless connection plan — channel
// endpoints (cluster/antenna), distance class, physical length and LD factor.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"
#include "wireless/channel_alloc.hpp"

int main() {
  using namespace ownsim;
  bench::print_header("OWN-256 wireless connections", "Table I");

  auto antenna_name = [](Antenna a, int cluster) {
    const char letter = static_cast<char>('A' + static_cast<int>(a));
    return letter + std::to_string(cluster);
  };

  Table table({"channel", "from", "to", "class", "distance_mm", "LD_factor"});
  for (const OwnChannel& ch : own256_channels()) {
    table.add_row({std::to_string(ch.id),
                   antenna_name(ch.src_antenna, ch.src_cluster),
                   antenna_name(ch.dst_antenna, ch.dst_cluster),
                   to_string(ch.distance),
                   Table::num(distance_of(ch.distance).in(1.0_mm), 0),
                   Table::num(ld_factor(ch.distance), 2)});
  }
  table.print(std::cout);

  std::cout << "\nSDM reuse sets (channels sharing a frequency, SectionV.B):\n";
  const auto groups = own256_sdm_groups();
  Table sdm({"channel", "reuse_set"});
  for (std::size_t id = 0; id < groups.size(); ++id) {
    sdm.add_row({std::to_string(id), std::to_string(groups[id])});
  }
  sdm.print(std::cout);
  std::cout << "12 channels -> 8 distinct frequencies with SDM.\n";
  return 0;
}

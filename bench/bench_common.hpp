// Shared presets for the per-figure/per-table bench binaries.
//
// Every binary prints the rows/series of one paper table or figure. The
// absolute numbers come from our simulator + power model, not the authors'
// testbed — the *shape* (who wins, by roughly what factor) is the
// reproduction target; EXPERIMENTS.md records paper-vs-measured per item.
#pragma once

#include <iostream>

#include "driver/simulate.hpp"
#include "metrics/bench_json.hpp"
#include "metrics/table_io.hpp"

namespace ownsim::bench {

/// Standard measurement phases for the simulation-backed figures: long
/// enough for tight averages, short enough that the whole harness runs in
/// minutes on a laptop. With OWNSIM_BENCH_QUICK set the phases shrink to a
/// CI-smoke preset — numbers shift (shorter averaging window) but stay
/// deterministic, so each preset diffs cleanly against its own baseline.
inline RunPhases default_phases() {
  RunPhases phases;
  if (bench_quick_mode()) {
    phases.warmup = 400;
    phases.measure = 1200;
    phases.drain_limit = 8000;
    return phases;
  }
  phases.warmup = 1500;
  phases.measure = 4000;
  phases.drain_limit = 30000;
  return phases;
}

/// Tag for BenchRecord::config so baselines for the two presets never mix.
inline const char* phase_preset_name() {
  return bench_quick_mode() ? "quick" : "full";
}

/// Baseline experiment at `cores` on `topology`, uniform traffic, a
/// comfortably sub-saturation load (the Fig 5/6 operating point).
inline ExperimentConfig base_experiment(TopologyKind topology, int cores) {
  ExperimentConfig config;
  config.topology = topology;
  config.options.num_cores = cores;
  config.rate = cores <= 256 ? 0.005 : 0.0016;
  config.phases = default_phases();
  return config;
}

/// Offered load clearly beyond saturation for accepted-throughput readings
/// (Fig 7a / Fig 8a).
inline double overdrive_rate(int cores) { return cores <= 256 ? 0.012 : 0.004; }

inline void print_header(const char* what, const char* paper_ref) {
  std::cout << "\n=== " << what << "  [" << paper_ref << "] ===\n";
}

}  // namespace ownsim::bench

// Placement study quantifying §III.A: "by isolating the four transceivers to
// the four corners, we balance the load imbalance as well as thermal impact
// within the cluster."
//
// Runs OWN-256 with the paper's corner placement and with the center-of-
// cluster strawman under uniform traffic, attributes the measured power to
// the floorplan, solves a thermal proxy, and reports hotspot and load
// balance for both. Emits a schema-v2 BenchRecord so perf_compare.py tracks
// the thermal numbers against bench/baselines/ci.json.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"
#include "power/thermal.hpp"
#include "topology/own.hpp"
#include "traffic/injector.hpp"

int main() {
  using namespace ownsim;
  const WallTimer timer;
  bench::print_header("antenna placement: corners vs cluster center",
                      "Section III.A");

  BenchRecord record;
  record.bench = "bench_thermal";
  record.paper_ref = "Section III.A";
  record.config = bench::phase_preset_name();
  const Cycle cycles = bench_quick_mode() ? 3000 : 8000;

  Table table({"placement", "peak_dC", "mean_dC", "stddev_dC", "hotspot_at",
               "max/mean router W"});
  for (AntennaPlacement placement :
       {AntennaPlacement::kCorners, AntennaPlacement::kCenter}) {
    TopologyOptions options;
    options.num_cores = 256;
    Network network(build_own256_placed(options, placement));
    TrafficPattern pattern(PatternKind::kUniform, 256);
    Injector::Params injector_params;
    injector_params.rate = 0.005;
    Injector injector(&network, pattern, injector_params);
    network.engine().add(&injector);
    network.engine().run(cycles);

    const ChannelEnergyModel channels(OwnConfig::kConfig4, Scenario::kIdeal);
    const std::vector<double> power =
        per_router_power(network, PowerParams{}, &channels);

    ThermalMap thermal;
    thermal.deposit(network.spec(), power);
    const ThermalStats stats = thermal.solve();

    const double max_power = *std::max_element(power.begin(), power.end());
    double mean_power = 0.0;
    for (double p : power) mean_power += p;
    mean_power /= static_cast<double>(power.size());

    table.add_row(
        {placement == AntennaPlacement::kCorners ? "corners (paper)"
                                                 : "cluster center",
         Table::num(stats.peak_c, 2), Table::num(stats.mean_c, 2),
         Table::num(stats.stddev_c, 2),
         '(' + Table::num(stats.peak_x.in(1.0_mm), 0) + ',' +
             Table::num(stats.peak_y.in(1.0_mm), 0) + ")mm",
         Table::num(max_power / mean_power, 2) + "x"});

    const std::string key =
        placement == AntennaPlacement::kCorners ? "corners" : "center";
    record.metrics.push_back({"peak_dC." + key, stats.peak_c, "degC",
                              /*deterministic=*/true, "lower"});
    record.metrics.push_back({"mean_dC." + key, stats.mean_c, "degC",
                              /*deterministic=*/true, "lower"});
    record.metrics.push_back({"stddev_dC." + key, stats.stddev_c, "degC",
                              /*deterministic=*/true, "lower"});
    record.metrics.push_back({"power_ratio." + key, max_power / mean_power,
                              "x", /*deterministic=*/true, "lower"});
  }
  table.print(std::cout);
  std::cout << "\nCenter placement funnels every inter-cluster packet through\n"
               "four adjacent tiles: expect a hotter peak, a larger spatial\n"
               "spread and a worse per-router load ratio — the paper's\n"
               "argument for corner isolation.\n";

  record.metrics.push_back(
      {"wall_seconds", timer.seconds(), "s", /*deterministic=*/false,
       "lower"});
  emit_bench_json(record);
  return 0;
}

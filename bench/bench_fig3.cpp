// Regenerates paper Fig. 3: the wireless link budget — required OOK transmit
// power vs distance at 32 Gb/s / 90 GHz for several antenna directivities,
// plus the conservative 16 Gb/s outlook. Anchor: >= 4 dBm at 50 mm with
// isotropic antennas.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rf/ber.hpp"
#include "metrics/table_io.hpp"
#include "rf/link_budget.hpp"

int main() {
  using namespace ownsim;
  bench::print_header("link budget: required TX power (dBm) vs distance",
                      "Fig 3");

  const std::vector<double> directivities = {0.0, 3.0, 6.0, 10.0};
  for (double rate_gbps : {32.0, 16.0}) {
    LinkBudget::Params params;
    params.data_rate = rate_gbps * 1.0_gbps;
    const LinkBudget budget(params);
    std::cout << "\n-- " << rate_gbps << " Gb/s OOK at 90 GHz (sensitivity "
              << Table::num(budget.sensitivity().dbm(), 1) << " dBm) --\n";
    std::vector<std::string> header = {"distance_mm"};
    for (double d : directivities) {
      header.push_back("G=" + Table::num(d, 0) + "dBi");
    }
    Table table(std::move(header));
    for (double mm = 5.0; mm <= 50.0; mm += 5.0) {
      std::vector<std::string> row = {Table::num(mm, 0)};
      for (double d : directivities) {
        const DbmPower tx =
            budget.required_tx(mm * 1.0_mm, Decibels{d}, Decibels{d});
        row.push_back(Table::num(tx.dbm(), 2));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  const LinkBudget anchor;
  std::cout << "\nPaper anchor: isotropic 50 mm at 32 Gb/s needs "
            << Table::num(anchor.required_tx(50.0_mm).dbm(), 2)
            << " dBm (paper: >= 4 dBm).\n";

  std::cout << "\nOOK BER vs link margin (design point BER 1e-12 at 0 dB):\n";
  Table ber({"margin_dB", "BER"});
  const Decibels required = required_snr(1e-12);
  for (double margin = -3.0; margin <= 3.0; margin += 1.0) {
    std::ostringstream value;
    value.precision(2);
    value << std::scientific << ber_at_margin(required, Decibels{margin});
    ber.add_row({Table::num(margin, 0), value.str()});
  }
  ber.print(std::cout);
  return 0;
}

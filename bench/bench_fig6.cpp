// Regenerates paper Fig. 6: total power under uniform-random traffic at 256
// cores, broken into photonic / wireless / electrical / router components,
// for OWN configurations 1-4 and the four baselines. Paper shape:
// OptXB < OWN-c4 (~2x OptXB) < wireless-CMESH (~OWN+7%) < CMESH (>= OWN+30%),
// with p-Clos slightly above OptXB.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"

int main() {
  using namespace ownsim;
  bench::print_header("256-core power breakdown, uniform random", "Fig 6");

  Table table({"network", "router_W", "electrical_W", "photonic_W",
               "wireless_W", "total_W", "vs OWN-c4"});
  double own_c4_total = 0.0;

  auto add = [&](const std::string& label, const ExperimentResult& result) {
    const PowerBreakdown& p = result.power;
    if (own_c4_total == 0.0) own_c4_total = p.total_w();
    table.add_row({label, Table::num(p.router_w(), 3),
                   Table::num(p.electrical_link_w, 3),
                   Table::num(p.photonic_w(), 3), Table::num(p.wireless_w(), 3),
                   Table::num(p.total_w(), 3),
                   Table::num(p.total_w() / own_c4_total, 2) + "x"});
  };

  // OWN configurations first (config 4 is the reference).
  for (OwnConfig config :
       {OwnConfig::kConfig4, OwnConfig::kConfig1, OwnConfig::kConfig2,
        OwnConfig::kConfig3}) {
    ExperimentConfig experiment = bench::base_experiment(TopologyKind::kOwn, 256);
    experiment.own_config = config;
    add(std::string("OWN-256 ") + to_string(config), run_experiment(experiment));
  }
  for (TopologyKind kind :
       {TopologyKind::kOptXB, TopologyKind::kPClos,
        TopologyKind::kWirelessCMesh, TopologyKind::kCMesh}) {
    add(to_string(kind), run_experiment(bench::base_experiment(kind, 256)));
  }
  table.print(std::cout);
  std::cout << "\nPaper ordering: OptXB least; OWN-c4 ~2x OptXB; p-Clos slightly\n"
               "above OptXB; wireless-CMESH ~7% above OWN; CMESH >= 30% above OWN\n"
               "with most of its power in the routers.\n";
  return 0;
}

// Regenerates paper Table II: OWN-1024 intra-group and inter-group SWMR
// wireless channel assignments (group 0 as source and all other pairs).
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"
#include "wireless/channel_alloc.hpp"

int main() {
  using namespace ownsim;
  bench::print_header("OWN-1024 SWMR wireless channels", "Table II");

  Table table({"channel", "src_group", "dst_group", "antenna", "mode",
               "class", "writers", "listeners"});
  for (const OwnGroupChannel& ch : own1024_channels()) {
    const char letter = static_cast<char>('A' + static_cast<int>(ch.antenna));
    table.add_row({std::to_string(ch.id), std::to_string(ch.src_group),
                   std::to_string(ch.dst_group), std::string(1, letter),
                   ch.intra_group() ? "intra-group" : "inter-group",
                   to_string(ch.distance), "4 (token)", "4 (multicast)"});
  }
  table.print(std::cout);
  std::cout << "\n16 channels total: 12 inter-group + 4 intra-group; every\n"
               "transmission is heard by all four clusters of the destination\n"
               "group and forwarded only by the intended one (SectionIII.B).\n";
  return 0;
}

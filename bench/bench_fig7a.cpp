// Regenerates paper Fig. 7(a): accepted throughput (flits/node/cycle) at a
// saturating offered load for the five synthetic patterns across all
// 256-core topologies. Paper shape: all topologies land close together
// (equalized bisection), with OWN 1-2 % above CMESH / wireless-CMESH and the
// photonic networks marginally better than OWN on some patterns.
//
// The (topology x pattern) grid is embarrassingly parallel: each cell is an
// independent experiment, mapped across the worker pool in index order so
// the printed table is identical regardless of thread count.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/parallel_for.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/table_io.hpp"

int main() {
  using namespace ownsim;
  bench::print_header("256-core saturation throughput (flits/node/cycle)",
                      "Fig 7a");
  const WallTimer timer;

  const std::vector<PatternKind> patterns = paper_patterns();
  const std::vector<TopologyKind> topologies = paper_topologies();
  std::vector<std::string> header = {"network"};
  for (PatternKind p : patterns) header.emplace_back(to_string(p));
  Table table(std::move(header));

  exec::ThreadPool pool;
  const std::vector<double> cells = exec::parallel_map(
      pool, topologies.size() * patterns.size(), [&](std::size_t i) {
        ExperimentConfig experiment =
            bench::base_experiment(topologies[i / patterns.size()], 256);
        experiment.pattern = patterns[i % patterns.size()];
        experiment.rate = bench::overdrive_rate(256);
        experiment.phases.drain_limit = 4000;  // overdriven: no full drain
        return run_experiment(experiment).run.throughput;
      });

  for (std::size_t t = 0; t < topologies.size(); ++t) {
    std::vector<std::string> row = {to_string(topologies[t])};
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      row.push_back(Table::num(cells[t * patterns.size() + p], 4));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nOffered load " << bench::overdrive_rate(256)
            << " flits/node/cycle (beyond saturation for every network).\n";

  BenchRecord record;
  record.bench = "bench_fig7a";
  record.paper_ref = "Fig 7a";
  record.config = bench::phase_preset_name();
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      record.metrics.push_back(
          {std::string("throughput.") + to_string(topologies[t]) + '.' +
               to_string(patterns[p]),
           cells[t * patterns.size() + p], "flits/node/cycle",
           /*deterministic=*/true, "higher"});
    }
  }
  record.metrics.push_back(
      {"wall_seconds", timer.seconds(), "s", /*deterministic=*/false,
       "lower"});
  emit_bench_json(record);
  return 0;
}

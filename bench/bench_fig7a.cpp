// Regenerates paper Fig. 7(a): accepted throughput (flits/node/cycle) at a
// saturating offered load for the five synthetic patterns across all
// 256-core topologies. Paper shape: all topologies land close together
// (equalized bisection), with OWN 1-2 % above CMESH / wireless-CMESH and the
// photonic networks marginally better than OWN on some patterns.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"

int main() {
  using namespace ownsim;
  bench::print_header("256-core saturation throughput (flits/node/cycle)",
                      "Fig 7a");

  const std::vector<PatternKind> patterns = paper_patterns();
  std::vector<std::string> header = {"network"};
  for (PatternKind p : patterns) header.emplace_back(to_string(p));
  Table table(std::move(header));

  for (TopologyKind kind : paper_topologies()) {
    std::vector<std::string> row = {to_string(kind)};
    for (PatternKind pattern : patterns) {
      ExperimentConfig experiment = bench::base_experiment(kind, 256);
      experiment.pattern = pattern;
      experiment.rate = bench::overdrive_rate(256);
      experiment.phases.drain_limit = 4000;  // overdriven: no full drain
      const ExperimentResult result = run_experiment(experiment);
      row.push_back(Table::num(result.run.throughput, 4));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nOffered load " << bench::overdrive_rate(256)
            << " flits/node/cycle (beyond saturation for every network).\n";
  return 0;
}

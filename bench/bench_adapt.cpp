// Headline study for the closed physical loop (DESIGN.md 5k): OWN-1024
// under a hot-spot workload with variation-stressed transceivers, comparing
//
//   off       adapt=0 — the loop disabled, links ideal (reference),
//   static    adapt=1, react=0 — thermal/variation-driven BER flows into
//             the CRC/retransmission path but nothing adapts,
//   adaptive  adapt=1, react=1 — rate backoff + trimming enabled.
//
// Under the stressed operating point the static links collapse into retry
// storms on the heated wireless media; the adaptive controller trades
// serialization (cycles-per-flit x (1+level)) for margin and keeps the
// channels clean. The bench asserts the headline: adaptive throughput at the
// saturated point must beat the static-link run under the same
// thermal-driven BER — exit code 1 if it ever stops winning.
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"

namespace {

/// The stressed operating point: end-of-life transceivers (base margin well
/// below the error knee) so the thermal rise of the hot-spot pushes the hot
/// media into the steep part of the BER curve, plus a fast refresh/sustain
/// so the loop converges within the warmup phase.
ownsim::adapt::AdaptConfig stressed_adapt() {
  ownsim::adapt::AdaptConfig adapt;
  adapt.enabled = true;
  adapt.refresh = 200;
  adapt.sustain = 1;
  adapt.thermal_alpha = 1.0;
  adapt.base_margin = ownsim::Decibels{-8.0};
  adapt.backoff_enter_db = -4.0;
  adapt.backoff_exit_db = -2.0;
  adapt.max_backoff = 3;
  return adapt;
}

}  // namespace

int main() {
  using namespace ownsim;
  const WallTimer timer;
  bench::print_header("OWN-1024 hot-spot: adaptive vs static links",
                      "extension (DESIGN.md 5k)");

  struct Mode {
    const char* label;
    const char* key;
    bool enabled;
    bool react;
  };
  const Mode modes[] = {
      {"loop off (ideal links)", "off", false, false},
      {"static links, live BER", "static", true, false},
      {"adaptive (backoff+trim)", "adaptive", true, true},
  };

  BenchRecord record;
  record.bench = "bench_adapt";
  record.paper_ref = "extension (DESIGN.md 5k)";
  record.config = bench::phase_preset_name();

  Table table({"mode", "throughput", "avg_latency", "pJ/packet", "backoffs",
               "trim_mW", "min_margin_dB", "drained"});
  double static_throughput = 0.0;
  double adaptive_throughput = 0.0;
  for (const Mode& mode : modes) {
    ExperimentConfig config;
    config.options.num_cores = 1024;
    config.pattern = PatternKind::kHotspot;
    config.rate = 0.0015;
    config.phases = bench::default_phases();
    config.adapt = stressed_adapt();
    config.adapt.enabled = mode.enabled;
    config.adapt.react = mode.react;
    const ExperimentResult result = run_experiment(config);

    table.add_row({mode.label, Table::num(result.run.throughput, 4),
                   Table::num(result.run.avg_latency, 1),
                   Table::num(result.energy_per_packet_pj, 0),
                   std::to_string(result.adapt.backoffs),
                   Table::num(result.adapt.trim_avg_mw, 1),
                   Table::num(result.adapt.min_margin_db, 2),
                   result.run.drained ? "yes" : "no"});
    const std::string key = mode.key;
    record.metrics.push_back({"throughput." + key, result.run.throughput,
                              "flits/node/cycle", /*deterministic=*/true,
                              "higher"});
    record.metrics.push_back({"avg_latency." + key, result.run.avg_latency,
                              "cycles", /*deterministic=*/true, "lower"});
    record.metrics.push_back({"energy_per_packet_pj." + key,
                              result.energy_per_packet_pj, "pJ",
                              /*deterministic=*/true, "lower"});
    if (mode.enabled) {
      record.metrics.push_back(
          {"crc_errors." + key,
           static_cast<double>(result.fault.crc_errors), "flits",
           /*deterministic=*/true, "either"});
      record.metrics.push_back({"min_margin_db." + key,
                                result.adapt.min_margin_db, "dB",
                                /*deterministic=*/true, "higher"});
    }
    if (mode.react) {
      record.metrics.push_back(
          {"backoffs." + key, static_cast<double>(result.adapt.backoffs),
           "events", /*deterministic=*/true, "either"});
      record.metrics.push_back({"reallocations." + key,
                                static_cast<double>(
                                    result.adapt.reallocations),
                                "events", /*deterministic=*/true, "either"});
      record.metrics.push_back({"trim_avg_mw." + key,
                                result.adapt.trim_avg_mw, "mW",
                                /*deterministic=*/true, "lower"});
      record.metrics.push_back({"peak_temp_c." + key,
                                result.adapt.peak_temp_c, "degC",
                                /*deterministic=*/true, "lower"});
    }
    if (std::string(mode.key) == "static") {
      static_throughput = result.run.throughput;
    }
    if (std::string(mode.key) == "adaptive") {
      adaptive_throughput = result.run.throughput;
    }
  }
  table.print(std::cout);
  std::cout << "\nStatic links sit in retry storms on the heated media;\n"
               "backoff spends cycles-per-flit to climb back above the BER\n"
               "knee and delivers more accepted throughput at the same\n"
               "offered load.\n";

  record.metrics.push_back(
      {"wall_seconds", timer.seconds(), "s", /*deterministic=*/false,
       "lower"});
  emit_bench_json(record);

  if (adaptive_throughput <= static_throughput) {
    std::cerr << "FAIL: adaptive throughput " << adaptive_throughput
              << " does not beat static " << static_throughput << "\n";
    return 1;
  }
  return 0;
}

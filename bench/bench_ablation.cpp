// Ablation studies for the design choices DESIGN.md calls out:
//  1. Ring thermal tuning: the paper's Fig 6 does not charge tuning power
//     (OptXB stays cheapest); what happens when a realistic 20 uW/ring is
//     charged to every structure?
//  2. LD-factor power scaling: how much of OWN's wireless saving comes from
//     distance-aware transmit power (Section IV "Distance Scaling")?
//  3. Conservative bandwidth scenario: OWN's latency/throughput when the
//     wireless channels only reach 16 GHz (serialization doubles).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/parallel_for.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/table_io.hpp"
#include "photonic/ring_budget.hpp"

int main() {
  using namespace ownsim;
  // The simulation-backed ablation grids below are independent experiments;
  // they fan out over this pool (OWNSIM_THREADS overrides the size).
  exec::ThreadPool pool;

  bench::print_header("ablation 1: ring thermal tuning power", "DESIGN.md");
  {
    // The paper's Fig 6 does not charge thermal tuning (OptXB stays
    // cheapest) and instead disqualifies OptXB on integration grounds. This
    // is what the *physical* ring budgets would cost at 20 uW/ring:
    Table table({"structure", "rings", "tuning_W_at_20uW"});
    auto row = [&](const char* name, const PhotonicBudget& budget) {
      table.add_row({name, std::to_string(budget.rings()),
                     Table::num(static_cast<double>(budget.rings()) * 20e-6,
                                2)});
    };
    row("OptXB-256 (64 rtr x 64 lambda x4)", mwsr_crossbar_budget(64, 64, 4));
    row("OptXB-1024 (256 rtr x 64 lambda x4)",
        mwsr_crossbar_budget(256, 64, 4));
    row("OWN-256 photonics (4 clusters)", own_photonic_budget(4, 8));
    row("OWN-1024 photonics (16 clusters)", own_photonic_budget(16, 8));
    table.print(std::cout);
    std::cout << "Full-DWDM OptXB would burn tens of watts just keeping rings\n"
                 "on resonance; OWN's decomposed per-cluster crossbars stay\n"
                 "under a watt — the integration argument of Section V.B.\n";
  }

  bench::print_header("ablation 2: LD-factor distance-aware TX power",
                      "Section IV");
  {
    // With LD scaling, short/edge channels radiate less; compare against a
    // hypothetical design that always radiates at C2C power. We emulate the
    // latter by pricing every channel at LD = 1 via the per-channel model.
    ExperimentConfig experiment = bench::base_experiment(TopologyKind::kOwn, 256);
    const ExperimentResult with_ld = run_experiment(experiment);
    const ChannelEnergyModel model(experiment.own_config, experiment.scenario);
    double scale_num = 0.0;
    double scale_den = 0.0;
    for (const auto& a : model.assignments()) {
      scale_num += (kTxEnergyShare * a.tech_epb + a.rx_epb).in(1.0_pj_per_bit);
      scale_den += (a.tx_epb + a.rx_epb).in(1.0_pj_per_bit);
    }
    const double no_ld_wireless =
        with_ld.power.wireless_link_w * (scale_num / scale_den);
    Table table({"variant", "wireless_link_mW"});
    table.add_row({"LD-scaled TX (paper)",
                   Table::num(with_ld.power.wireless_link_w * 1e3, 2)});
    table.add_row({"full C2C power everywhere",
                   Table::num(no_ld_wireless * 1e3, 2)});
    table.print(std::cout);
  }

  bench::print_header("ablation 2b: token vs ideal arbitration",
                      "Section V.B 'token transfer consumes a few extra cycles'");
  {
    Table table({"network", "arbitration", "zero-ish load latency",
                 "near-sat latency"});
    const std::vector<TopologyKind> kinds = {TopologyKind::kOptXB,
                                             TopologyKind::kOwn};
    const std::vector<double> rates = {0.001, 0.006};
    // Grid index = (kind, ideal, rate); all 8 cells run concurrently.
    const std::vector<double> latencies = exec::parallel_map(
        pool, kinds.size() * 2 * rates.size(), [&](std::size_t i) {
          ExperimentConfig experiment =
              bench::base_experiment(kinds[i / (2 * rates.size())], 256);
          experiment.options.ideal_arbitration = (i / rates.size()) % 2 == 1;
          experiment.rate = rates[i % rates.size()];
          return run_experiment(experiment).run.avg_latency;
        });
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      for (std::size_t ideal = 0; ideal < 2; ++ideal) {
        const std::size_t base = (k * 2 + ideal) * rates.size();
        table.add_row({to_string(kinds[k]),
                       ideal == 1 ? "ideal" : "token ring",
                       Table::num(latencies[base], 1),
                       Table::num(latencies[base + 1], 1)});
      }
    }
    table.print(std::cout);
    std::cout << "The 63-writer OptXB token ring adds ~30 cycles per packet;\n"
                 "OWN's 15-writer rings add under 10.\n";
  }

  bench::print_header("ablation 2c: CMesh XY DOR vs O1TURN",
                      "routing baseline strength check");
  {
    // The paper's CMESH uses XY DOR, which collapses on matrix transpose.
    // O1TURN shows how much of that gap is the routing function rather than
    // the topology.
    Table table({"routing", "MT throughput", "UN throughput"});
    const std::vector<PatternKind> patterns = {PatternKind::kTranspose,
                                               PatternKind::kUniform};
    // Grid index = (o1turn, pattern); all 4 cells run concurrently.
    const std::vector<double> cells = exec::parallel_map(
        pool, 2 * patterns.size(), [&](std::size_t i) {
          ExperimentConfig experiment =
              bench::base_experiment(TopologyKind::kCMesh, 256);
          experiment.options.cmesh_o1turn = i / patterns.size() == 1;
          experiment.pattern = patterns[i % patterns.size()];
          experiment.rate = bench::overdrive_rate(256);
          experiment.phases.drain_limit = 4000;
          return run_experiment(experiment).run.throughput;
        });
    for (std::size_t o1turn = 0; o1turn < 2; ++o1turn) {
      table.add_row({o1turn == 1 ? "O1TURN (XY+YX)" : "XY DOR (paper)",
                     Table::num(cells[o1turn * patterns.size()], 4),
                     Table::num(cells[o1turn * patterns.size() + 1], 4)});
    }
    table.print(std::cout);
  }

  bench::print_header("ablation 3: conservative 16 GHz wireless bandwidth",
                      "Table III scenarios");
  {
    Table table({"scenario", "wireless_cpf", "avg_latency", "throughput",
                 "wireless_mW"});
    for (Scenario scenario : {Scenario::kIdeal, Scenario::kConservative}) {
      ExperimentConfig experiment = bench::base_experiment(TopologyKind::kOwn, 256);
      experiment.scenario = scenario;
      // Conservative halves the channel rate: serialization doubles.
      experiment.options.wireless_cpf =
          scenario == Scenario::kIdeal ? 8 : 16;
      const ExperimentResult result = run_experiment(experiment);
      table.add_row({to_string(scenario),
                     std::to_string(experiment.options.wireless_cpf),
                     Table::num(result.run.avg_latency, 1),
                     Table::num(result.run.throughput, 4),
                     Table::num(result.power.wireless_link_w * 1e3, 2)});
    }
    table.print(std::cout);
  }
  return 0;
}

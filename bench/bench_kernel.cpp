// Three-way differential + timing comparison of the simulation kernels
// (DESIGN.md §5e/§5i): the same operating point is run under the lockstep
// baseline, the activity-driven kernel, and the partitioned parallel kernel.
// All simulated results must be bit-identical (the bench aborts otherwise —
// this is the differential check CI leans on); the wall-clock ratios are the
// idle skip-ahead speedup (lockstep / activity) and the parallel speedup
// (activity / parallel), which perf_compare.py tracks against
// bench/baselines/ci.json. Two points:
//
//   * OWN-256, uniform, rate 0.001 — the mostly-idle bottom of the Fig 7
//     sweep, where skip-ahead dominates (the original A/B point).
//   * OWN-1024, uniform, overdrive rate — the saturated Fig 7a point, where
//     nearly every component is active every cycle: the parallel kernel's
//     target regime (threads spread the per-cycle eval sweep).
//
// The parallel worker count comes from OWNSIM_THREADS (default: hardware
// concurrency, capped at 8 — the partition counts here don't feed more) and
// is recorded in the schema-v2 JSONL rows, so perf_compare's speedup floor
// can be applied per thread count.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/table_io.hpp"

namespace {

struct KernelTiming {
  ownsim::RunResult run;
  double wall_seconds = 0.0;
  ownsim::Engine::Stats stats;
};

const char* kernel_name(ownsim::KernelMode mode) {
  switch (mode) {
    case ownsim::KernelMode::kLockstep:
      return "lockstep";
    case ownsim::KernelMode::kActivity:
      return "activity";
    case ownsim::KernelMode::kParallel:
      return "parallel";
  }
  return "?";
}

/// Builds a fresh network, pins the kernel, and runs the given point. Fresh
/// state per mode keeps the runs independent and seeds identical.
KernelTiming run_point(const ownsim::ExperimentConfig& experiment,
                       ownsim::KernelMode mode, unsigned threads) {
  using namespace ownsim;
  const WallTimer timer;
  Network network(build_topology(experiment.topology, experiment.options));
  network.engine().set_mode(mode);
  if (mode == KernelMode::kParallel) network.configure_parallel(threads);
  TrafficPattern pattern(experiment.pattern, experiment.options.num_cores);
  Injector::Params params = experiment.injector;
  params.rate = experiment.rate;
  Injector injector(&network, pattern, params);
  network.engine().add(&injector);

  KernelTiming timing;
  timing.run = run_load_point(network, injector, experiment.phases);
  timing.wall_seconds = timer.seconds();
  timing.stats = network.engine().stats();
  return timing;
}

/// Runs one point under all three kernels, checks three-way bit-identity,
/// prints the table and emits one schema-v2 record per kernel. Returns false
/// when any kernel diverged from the lockstep baseline.
bool three_way(const char* label, const ownsim::ExperimentConfig& experiment,
               unsigned threads) {
  using namespace ownsim;
  const KernelMode modes[] = {KernelMode::kLockstep, KernelMode::kActivity,
                              KernelMode::kParallel};
  KernelTiming timing[3];
  for (int i = 0; i < 3; ++i) {
    timing[i] = run_point(experiment, modes[i], threads);
  }
  const KernelTiming& lockstep = timing[0];
  const KernelTiming& activity = timing[1];
  const KernelTiming& parallel = timing[2];

  bool identical = true;
  for (int i = 1; i < 3; ++i) {
    if (!deterministic_eq(lockstep.run, timing[i].run)) {
      std::fprintf(stderr,
                   "bench_kernel[%s]: %s kernel diverged from the lockstep "
                   "baseline — results are not bit-identical\n",
                   label, kernel_name(modes[i]));
      identical = false;
    }
  }

  const auto ratio = [](double num, double den) {
    return den > 0.0 ? num / den : 0.0;
  };
  const double skip_speedup =
      ratio(lockstep.wall_seconds, activity.wall_seconds);
  const double parallel_speedup =
      ratio(activity.wall_seconds, parallel.wall_seconds);

  Table table({"kernel", "wall s", "cycles", "evals", "skipped"});
  for (int i = 0; i < 3; ++i) {
    table.add_row({kernel_name(modes[i]),
                   Table::num(timing[i].wall_seconds, 4),
                   std::to_string(timing[i].run.cycles_simulated),
                   std::to_string(timing[i].stats.evals),
                   std::to_string(timing[i].stats.cycles_skipped)});
  }
  table.print(std::cout);
  std::cout << "bit-identical: " << (identical ? "yes" : "NO")
            << "   skip-ahead: " << Table::num(skip_speedup, 2)
            << "x (lockstep/activity)   parallel: "
            << Table::num(parallel_speedup, 2) << "x (activity/parallel, "
            << threads << " threads)\n";

  for (int i = 0; i < 3; ++i) {
    const KernelMode mode = modes[i];
    BenchRecord record;
    record.bench = "bench_kernel";
    record.paper_ref = "DESIGN.md 5e/5i";
    record.config = std::string(bench::phase_preset_name()) + "." + label;
    record.kernel = kernel_name(mode);
    record.threads =
        mode == KernelMode::kParallel ? static_cast<int>(threads) : 1;
    record.metrics.push_back({"throughput", timing[i].run.throughput,
                              "flits/node/cycle", /*deterministic=*/true,
                              "higher"});
    record.metrics.push_back({"avg_latency", timing[i].run.avg_latency,
                              "cycles", /*deterministic=*/true, "lower"});
    record.metrics.push_back(
        {"cycles_simulated",
         static_cast<double>(timing[i].run.cycles_simulated), "cycles",
         /*deterministic=*/true, "either"});
    record.metrics.push_back({"wall_seconds", timing[i].wall_seconds, "s",
                              /*deterministic=*/false, "lower"});
    if (mode == KernelMode::kActivity) {
      record.metrics.push_back(
          {"cycles_skipped",
           static_cast<double>(timing[i].stats.cycles_skipped), "cycles",
           /*deterministic=*/true, "higher"});
      record.metrics.push_back({"speedup_vs_lockstep", skip_speedup, "x",
                                /*deterministic=*/false, "higher"});
    }
    if (mode == KernelMode::kParallel) {
      record.metrics.push_back({"speedup_vs_activity", parallel_speedup, "x",
                                /*deterministic=*/false, "higher"});
    }
    emit_bench_json(record);
  }
  return identical;
}

}  // namespace

int main() {
  using namespace ownsim;
  const unsigned threads = std::min(8u, exec::default_threads());
  bench::print_header("simulation kernel A/B/C (lockstep/activity/parallel)",
                      "DESIGN.md 5e/5i");
  std::cout << "parallel worker threads: " << threads << "\n";

  // Point 1: mostly-idle OWN-256 (skip-ahead regime).
  ExperimentConfig idle = bench::base_experiment(TopologyKind::kOwn, 256);
  idle.rate = 0.001;
  std::cout << "\n-- own256-idle: OWN-256 uniform, rate 0.001 --\n";
  const bool ok_idle = three_way("own256-idle", idle, threads);

  // Point 2: saturated OWN-1024 (parallel-kernel regime).
  ExperimentConfig hot = bench::base_experiment(TopologyKind::kOwn, 1024);
  hot.rate = bench::overdrive_rate(1024);
  std::cout << "\n-- own1024-hot: OWN-1024 uniform, rate " << hot.rate
            << " --\n";
  const bool ok_hot = three_way("own1024-hot", hot, threads);

  return ok_idle && ok_hot ? 0 : 1;
}

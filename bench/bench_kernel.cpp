// A/B comparison of the two simulation kernels (DESIGN.md §5e): the same
// low-load OWN-256 point is run once under the lockstep baseline and once
// under the activity-driven kernel. The simulated results must be
// bit-identical (the bench aborts otherwise — this is the differential check
// CI leans on); the wall-clock ratio is the idle skip-ahead speedup, which
// perf_compare.py tracks against bench/baselines/ci.json (target >= 2x at
// this operating point).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"

namespace {

struct KernelTiming {
  ownsim::RunResult run;
  double wall_seconds = 0.0;
  ownsim::Engine::Stats stats;
};

/// Builds a fresh OWN-256 network, pins the kernel, and runs the shared
/// low-load point. Fresh state per mode keeps the two runs independent and
/// seeds identical.
KernelTiming run_point(ownsim::KernelMode mode) {
  using namespace ownsim;
  ExperimentConfig experiment = bench::base_experiment(TopologyKind::kOwn, 256);
  experiment.rate = 0.001;  // bottom of the Fig 7 sweep: mostly-idle network
  experiment.kernel = mode;

  const WallTimer timer;
  Network network(build_topology(experiment.topology, experiment.options));
  network.engine().set_mode(mode);
  TrafficPattern pattern(experiment.pattern, experiment.options.num_cores);
  Injector::Params params = experiment.injector;
  params.rate = experiment.rate;
  Injector injector(&network, pattern, params);
  network.engine().add(&injector);

  KernelTiming timing;
  timing.run = run_load_point(network, injector, experiment.phases);
  timing.wall_seconds = timer.seconds();
  timing.stats = network.engine().stats();
  return timing;
}

}  // namespace

int main() {
  using namespace ownsim;
  bench::print_header("simulation kernel A/B, OWN-256 uniform rate 0.001",
                      "DESIGN.md 5e");

  const KernelTiming lockstep = run_point(KernelMode::kLockstep);
  const KernelTiming activity = run_point(KernelMode::kActivity);

  if (!deterministic_eq(lockstep.run, activity.run)) {
    std::fprintf(stderr,
                 "bench_kernel: kernels diverged — activity-driven run is not "
                 "bit-identical to the lockstep baseline\n");
    return 1;
  }

  const double speedup =
      activity.wall_seconds > 0.0 ? lockstep.wall_seconds / activity.wall_seconds
                                  : 0.0;

  Table table({"kernel", "wall s", "cycles", "evals", "skipped"});
  table.add_row({"lockstep", Table::num(lockstep.wall_seconds, 4),
                 std::to_string(lockstep.run.cycles_simulated),
                 std::to_string(lockstep.stats.evals),
                 std::to_string(lockstep.stats.cycles_skipped)});
  table.add_row({"activity", Table::num(activity.wall_seconds, 4),
                 std::to_string(activity.run.cycles_simulated),
                 std::to_string(activity.stats.evals),
                 std::to_string(activity.stats.cycles_skipped)});
  table.print(std::cout);
  std::cout << "\nbit-identical: yes   speedup: " << Table::num(speedup, 2)
            << "x (lockstep / activity wall time)\n";

  BenchRecord record;
  record.bench = "bench_kernel";
  record.paper_ref = "DESIGN.md 5e";
  record.config = bench::phase_preset_name();
  record.metrics.push_back({"throughput", activity.run.throughput,
                            "flits/node/cycle", /*deterministic=*/true,
                            "higher"});
  record.metrics.push_back({"avg_latency", activity.run.avg_latency, "cycles",
                            /*deterministic=*/true, "lower"});
  record.metrics.push_back(
      {"cycles_simulated",
       static_cast<double>(activity.run.cycles_simulated), "cycles",
       /*deterministic=*/true, "either"});
  record.metrics.push_back(
      {"cycles_skipped", static_cast<double>(activity.stats.cycles_skipped),
       "cycles", /*deterministic=*/true, "higher"});
  record.metrics.push_back({"wall_seconds.lockstep", lockstep.wall_seconds,
                            "s", /*deterministic=*/false, "lower"});
  record.metrics.push_back({"wall_seconds.activity", activity.wall_seconds,
                            "s", /*deterministic=*/false, "lower"});
  record.metrics.push_back(
      {"speedup", speedup, "x", /*deterministic=*/false, "higher"});
  emit_bench_json(record);
  return 0;
}

// Regenerates paper Fig. 7(b,c): average packet latency vs offered load for
// uniform-random (b) and bit-reversal (c) traffic across the 256-core
// topologies. Paper shape: OWN saturates at the highest load; p-Clos ~10 %
// earlier; CMESH, wireless-CMESH and OptXB ~20 % earlier; OWN's zero-load
// latency is the lowest (3-hop worst case).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"

int main() {
  using namespace ownsim;
  const std::vector<double> rates = {0.001, 0.002, 0.003, 0.004,
                                     0.005, 0.006, 0.007, 0.008};

  for (PatternKind pattern :
       {PatternKind::kUniform, PatternKind::kBitReversal}) {
    bench::print_header(
        (std::string("256-core latency vs offered load, ") +
         to_string(pattern))
            .c_str(),
        pattern == PatternKind::kUniform ? "Fig 7b" : "Fig 7c");

    std::vector<std::string> header = {"network", "zero-load"};
    for (double r : rates) header.push_back(Table::num(r, 3));
    header.emplace_back("saturation");
    Table table(std::move(header));

    for (TopologyKind kind : paper_topologies()) {
      SweepOptions options;
      options.rates = rates;
      options.pattern = pattern;
      options.phases = bench::default_phases();
      options.stop_after_saturation = false;
      TopologyOptions topo;
      topo.num_cores = 256;
      const SweepResult sweep =
          latency_sweep(make_network_factory(kind, topo), options);

      std::vector<std::string> row = {to_string(kind),
                                      Table::num(sweep.zero_load_latency, 1)};
      for (const SweepPoint& point : sweep.points) {
        row.push_back(point.result.drained
                          ? Table::num(point.result.avg_latency, 1)
                          : "sat");
      }
      row.push_back(Table::num(sweep.saturation_rate, 3));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  std::cout << "\n'sat' = the measured population no longer drains; the\n"
               "saturation column is the highest load whose latency stayed\n"
               "under 3x zero-load.\n";
  return 0;
}

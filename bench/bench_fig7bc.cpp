// Regenerates paper Fig. 7(b,c): average packet latency vs offered load for
// uniform-random (b) and bit-reversal (c) traffic across the 256-core
// topologies. Paper shape: OWN saturates at the highest load; p-Clos ~10 %
// earlier; CMESH, wireless-CMESH and OptXB ~20 % earlier; OWN's zero-load
// latency is the lowest (3-hop worst case).
//
// Each topology's sweep fans its load points across the worker pool
// (`OWNSIM_THREADS` overrides the count). A final section measures the
// parallel speedup of one OWN-256 sweep — 1 thread vs 4 — and checks the
// results stayed bit-identical.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/report.hpp"
#include "metrics/table_io.hpp"

namespace {

/// The two sweeps of the speedup section must agree exactly — same points,
/// same latencies bit for bit — or the parallel dispatch is broken.
bool identical_sweeps(const ownsim::SweepResult& a,
                      const ownsim::SweepResult& b) {
  if (a.zero_load_latency != b.zero_load_latency) return false;
  if (a.saturation_rate != b.saturation_rate) return false;
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const ownsim::RunResult& x = a.points[i].result;
    const ownsim::RunResult& y = b.points[i].result;
    if (a.points[i].rate != b.points[i].rate) return false;
    if (x.avg_latency != y.avg_latency || x.throughput != y.throughput ||
        x.p99_latency != y.p99_latency ||
        x.measured_packets != y.measured_packets || x.drained != y.drained) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace ownsim;
  const std::vector<double> rates = {0.001, 0.002, 0.003, 0.004,
                                     0.005, 0.006, 0.007, 0.008};
  const unsigned threads = exec::default_threads();

  for (PatternKind pattern :
       {PatternKind::kUniform, PatternKind::kBitReversal}) {
    bench::print_header(
        (std::string("256-core latency vs offered load, ") +
         to_string(pattern))
            .c_str(),
        pattern == PatternKind::kUniform ? "Fig 7b" : "Fig 7c");

    std::vector<std::string> header = {"network", "zero-load"};
    for (double r : rates) header.push_back(Table::num(r, 3));
    header.emplace_back("saturation");
    Table table(std::move(header));

    for (TopologyKind kind : paper_topologies()) {
      SweepOptions options;
      options.rates = rates;
      options.pattern = pattern;
      options.phases = bench::default_phases();
      options.stop_after_saturation = false;
      options.threads = threads;
      TopologyOptions topo;
      topo.num_cores = 256;
      const SweepResult sweep =
          latency_sweep(make_network_factory(kind, topo), options);

      std::vector<std::string> row = {to_string(kind),
                                      Table::num(sweep.zero_load_latency, 1)};
      for (const SweepPoint& point : sweep.points) {
        row.push_back(point.result.drained
                          ? Table::num(point.result.avg_latency, 1)
                          : "sat");
      }
      row.push_back(Table::num(sweep.saturation_rate, 3));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  std::cout << "\n'sat' = the measured population no longer drains; the\n"
               "saturation column is the highest load whose latency stayed\n"
               "under 3x zero-load.\n";

  bench::print_header("parallel sweep speedup, OWN-256 uniform",
                      "exec subsystem");
  {
    SweepOptions options;
    options.rates = rates;
    options.pattern = PatternKind::kUniform;
    options.phases = bench::default_phases();
    options.stop_after_saturation = false;
    TopologyOptions topo;
    topo.num_cores = 256;
    const NetworkFactory factory =
        make_network_factory(TopologyKind::kOwn, topo);

    options.threads = 1;
    const SweepResult serial = latency_sweep(factory, options);
    options.threads = 4;
    const SweepResult parallel = latency_sweep(factory, options);

    const double speedup =
        serial.telemetry.wall_seconds / parallel.telemetry.wall_seconds;
    std::cout << "1 thread : " << sweep_telemetry_summary(serial.telemetry)
              << "\n4 threads: "
              << sweep_telemetry_summary(parallel.telemetry)
              << "\nspeedup at 4 threads: " << Table::num(speedup, 2)
              << "x (" << exec::hardware_threads()
              << " hardware threads available)\nbit-identical results: "
              << (identical_sweeps(serial, parallel) ? "yes" : "NO — BUG")
              << '\n';
  }
  return 0;
}

// Microbenchmarks (google-benchmark) for the simulator's hot paths: RNG,
// traffic pattern generation, router pipeline stepping, shared-medium token
// arbitration, and whole-network cycle throughput per topology.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "metrics/runner.hpp"
#include "network/network.hpp"
#include "sim/engine.hpp"
#include "topology/registry.hpp"
#include "traffic/injector.hpp"
#include "traffic/patterns.hpp"

namespace ownsim {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.below(1000));
}
BENCHMARK(BM_RngBelow);

void BM_PatternDest(benchmark::State& state) {
  const TrafficPattern pattern(static_cast<PatternKind>(state.range(0)), 1024);
  Rng rng(7);
  NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern.dest(src, rng));
    src = (src + 1) & 1023;
  }
}
BENCHMARK(BM_PatternDest)
    ->Arg(static_cast<int>(PatternKind::kUniform))
    ->Arg(static_cast<int>(PatternKind::kBitReversal))
    ->Arg(static_cast<int>(PatternKind::kTranspose));

/// Cost of one simulated cycle for a loaded network (items = cores).
void BM_NetworkCycle(benchmark::State& state) {
  const auto kind = static_cast<TopologyKind>(state.range(0));
  const int cores = static_cast<int>(state.range(1));
  TopologyOptions options;
  options.num_cores = cores;
  Network network(build_topology(kind, options));
  TrafficPattern pattern(PatternKind::kUniform, cores);
  Injector::Params params;
  params.rate = 0.004;
  Injector injector(&network, pattern, params);
  network.engine().add(&injector);
  network.engine().run(500);  // warm
  for (auto _ : state) network.engine().step();
  state.SetItemsProcessed(state.iterations() * cores);
}
BENCHMARK(BM_NetworkCycle)
    ->Args({static_cast<int>(TopologyKind::kCMesh), 256})
    ->Args({static_cast<int>(TopologyKind::kOwn), 256})
    ->Args({static_cast<int>(TopologyKind::kOptXB), 256})
    ->Args({static_cast<int>(TopologyKind::kOwn), 1024})
    ->Unit(benchmark::kMicrosecond);

/// Whole warmup/measure/drain load point under each simulation kernel at a
/// low load (the bottom of the Fig 7 sweep), where most components are idle
/// most cycles — the case the activity-driven kernel exists for. The ratio
/// of the two timings is the idle-skip speedup (target >= 2x, tracked in
/// bench/baselines/ci.json via bench_kernel).
void BM_LoadPointKernel(benchmark::State& state) {
  const auto mode = static_cast<KernelMode>(state.range(0));
  RunPhases phases;
  phases.warmup = 400;
  phases.measure = 1200;
  phases.drain_limit = 8000;
  for (auto _ : state) {
    // set_mode requires a pristine engine, so each iteration builds fresh.
    TopologyOptions options;
    options.num_cores = 256;
    Network network(build_topology(TopologyKind::kOwn, options));
    network.engine().set_mode(mode);
    TrafficPattern pattern(PatternKind::kUniform, 256);
    Injector::Params params;
    params.rate = 0.001;
    Injector injector(&network, pattern, params);
    network.engine().add(&injector);
    benchmark::DoNotOptimize(run_load_point(network, injector, phases));
  }
  state.SetLabel(mode == KernelMode::kLockstep ? "lockstep" : "activity");
}
BENCHMARK(BM_LoadPointKernel)
    ->Arg(static_cast<int>(KernelMode::kLockstep))
    ->Arg(static_cast<int>(KernelMode::kActivity))
    ->Unit(benchmark::kMillisecond);

void BM_NetworkConstruction(benchmark::State& state) {
  const auto kind = static_cast<TopologyKind>(state.range(0));
  TopologyOptions options;
  options.num_cores = 256;
  for (auto _ : state) {
    Network network(build_topology(kind, options));
    benchmark::DoNotOptimize(&network);
  }
  state.SetLabel(to_string(kind));
}
BENCHMARK(BM_NetworkConstruction)
    ->Arg(static_cast<int>(TopologyKind::kCMesh))
    ->Arg(static_cast<int>(TopologyKind::kOwn))
    ->Arg(static_cast<int>(TopologyKind::kOptXB))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ownsim

BENCHMARK_MAIN();

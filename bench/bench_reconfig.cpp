// Reconfiguration-channel study (band-plan links 13-16, Table III note):
// does adaptively adding the four spare D-antenna channels to the
// most-loaded cluster pairs improve OWN-256?
//
// Evaluated on the pattern where baseline OWN is weakest (perfect shuffle
// concentrates inter-cluster traffic on few pairs) and on uniform random.
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"
#include "topology/own_reconfig.hpp"

int main() {
  using namespace ownsim;
  bench::print_header("OWN-256 reconfiguration channels (links 13-16)",
                      "Table III note / extension");

  Table table({"pattern", "variant", "avg_latency", "throughput", "drained"});
  for (PatternKind pattern : {PatternKind::kShuffle, PatternKind::kUniform,
                              PatternKind::kTranspose}) {
    for (const bool reconfig : {false, true}) {
      TopologyOptions options;
      options.num_cores = 256;
      const ReconfigPlan plan = plan_reconfig(pattern);
      NetworkFactory factory =
          reconfig
              ? NetworkFactory([options, plan] {
                  return std::make_unique<Network>(
                      build_own256_reconfig(options, plan));
                })
              : make_network_factory(TopologyKind::kOwn, options);

      const RunResult result = saturation_throughput(
          factory, pattern, /*offered=*/0.009, bench::default_phases(),
          Injector::Params{});
      table.add_row({to_string(pattern),
                     reconfig ? "OWN + 4 reconfig ch" : "OWN baseline",
                     Table::num(result.avg_latency, 1),
                     Table::num(result.throughput, 4),
                     result.drained ? "yes" : "no"});
    }
  }
  table.print(std::cout);

  std::cout << "\nPlans chosen (most-loaded directed cluster pairs):\n";
  for (PatternKind pattern : {PatternKind::kShuffle, PatternKind::kUniform}) {
    const ReconfigPlan plan = plan_reconfig(pattern);
    std::cout << "  " << to_string(pattern) << ": ";
    for (const auto& [src, dst] : plan.pairs) {
      std::cout << src << "->" << dst << " ";
    }
    std::cout << "\n";
  }
  return 0;
}

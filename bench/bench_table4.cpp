// Regenerates paper Table IV: the four OWN wireless configurations (distance
// class -> technology) and, for each (config, scenario), the resolved
// channel-to-band assignment with per-channel energy figures.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"
#include "wireless/configurations.hpp"

int main() {
  using namespace ownsim;
  bench::print_header("OWN wireless configurations", "Table IV");
  Table table({"config", "long (C2C)", "medium (E2E)", "short (SR)"});
  for (OwnConfig config : all_configs()) {
    table.add_row({to_string(config),
                   to_string(config_tech(config, DistanceClass::kC2C)),
                   to_string(config_tech(config, DistanceClass::kE2E)),
                   to_string(config_tech(config, DistanceClass::kSR))});
  }
  table.print(std::cout);

  for (Scenario scenario : {Scenario::kIdeal, Scenario::kConservative}) {
    for (OwnConfig config : all_configs()) {
      std::cout << "\n--- " << to_string(config) << ", " << to_string(scenario)
                << " (OWN-256 channel assignment) ---\n";
      const ChannelEnergyModel model(config, scenario);
      Table rows({"channel", "class", "tech", "band", "freq_GHz", "E(f) pJ/b",
                  "TX pJ/b", "RX pJ/b"});
      for (const auto& a : model.assignments()) {
        rows.add_row({std::to_string(a.channel_id), to_string(a.distance),
                      to_string(a.tech), std::to_string(a.band_link + 1),
                      Table::num(a.freq.in(1.0_ghz), 0),
                      Table::num(a.tech_epb.in(1.0_pj_per_bit), 3),
                      Table::num(a.tx_epb.in(1.0_pj_per_bit), 3),
                      Table::num(a.rx_epb.in(1.0_pj_per_bit), 3)});
      }
      rows.print(std::cout);
    }
  }
  return 0;
}

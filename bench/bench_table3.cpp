// Regenerates paper Table III: the 16-link wireless band plan for both the
// ideal (32 GHz channels) and conservative (16 GHz) scenarios — center
// frequency, technology, bandwidth and energy/bit — plus the photonic
// component budgets the paper's Section I quotes as the scalability blocker.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"
#include "photonic/ring_budget.hpp"
#include "wireless/band_plan.hpp"

int main() {
  using namespace ownsim;
  const WallTimer timer;
  BenchRecord record;
  record.bench = "bench_table3";
  record.paper_ref = "Table III";
  record.config = "analytic";
  for (Scenario scenario : {Scenario::kIdeal, Scenario::kConservative}) {
    bench::print_header(
        (std::string("wireless band plan, ") + to_string(scenario)).c_str(),
        "Table III");
    const BandPlan plan(scenario);
    Table table({"link", "center_GHz", "BW_GHz", "tech", "pJ/bit", "role"});
    for (const BandPlanLink& link : plan.links()) {
      table.add_row({std::to_string(link.index + 1),
                     Table::num(link.center.in(1.0_ghz), 0),
                     Table::num(link.bandwidth.in(1.0_ghz), 0),
                     to_string(link.tech),
                     Table::num(link.energy_per_bit.in(1.0_pj_per_bit), 3),
                     link.reconfiguration ? "reconfig" : "data"});
    }
    table.print(std::cout);
    double mean_pj = 0.0;
    for (const BandPlanLink& link : plan.links()) {
      mean_pj += link.energy_per_bit.in(1.0_pj_per_bit);
    }
    mean_pj /= static_cast<double>(plan.links().size());
    record.metrics.push_back(
        {std::string("mean_energy_pj_per_bit.") + to_string(scenario), mean_pj,
         "pJ/bit", /*deterministic=*/true, "lower"});
  }

  bench::print_header("photonic component budgets", "Section I / Section V.B");
  Table budget({"structure", "waveguides", "modulators", "detectors", "rings"});
  auto row = [&](const char* name, const PhotonicBudget& b) {
    budget.add_row({name, std::to_string(b.waveguides),
                    std::to_string(b.modulators), std::to_string(b.detectors),
                    std::to_string(b.rings())});
  };
  row("SWMR crossbar 64x64 (paper: 448/7/28224)", swmr_crossbar_budget(64));
  row("SWMR crossbar 1024x1024 (paper: 7168/112/7.3M)",
      swmr_crossbar_budget(1024));
  row("OptXB MWSR 64 routers x 64 lambda x4 (paper: >1M rings)",
      mwsr_crossbar_budget(64, 64, 4));
  row("OWN-256 photonics (4 clusters, 4 lambda)", own_photonic_budget(4, 4));
  row("OWN-1024 photonics (16 clusters, 4 lambda)", own_photonic_budget(16, 4));
  budget.print(std::cout);

  record.metrics.push_back({"rings.own256",
                            static_cast<double>(own_photonic_budget(4, 4).rings()),
                            "rings", /*deterministic=*/true, "lower"});
  record.metrics.push_back(
      {"rings.own1024",
       static_cast<double>(own_photonic_budget(16, 4).rings()), "rings",
       /*deterministic=*/true, "lower"});
  record.metrics.push_back(
      {"wall_seconds", timer.seconds(), "s", /*deterministic=*/false,
       "lower"});
  emit_bench_json(record);
  return 0;
}

// Regenerates paper Fig. 5: average wireless link power on OWN-256 under
// uniform-random traffic for configurations 1-4 under both Table III
// scenarios. Paper shape: configs 1 and 3 (SiGe on the long links) burn the
// most; config 2 cuts config 1 by ~60 % (ideal) / ~47 % (conservative);
// config 4 by ~80 % / ~57 %.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"

int main() {
  using namespace ownsim;
  bench::print_header(
      "OWN-256 average wireless link power, uniform random traffic", "Fig 5");

  Table table({"scenario", "config", "wireless_link_mW", "vs config1"});
  for (Scenario scenario : {Scenario::kIdeal, Scenario::kConservative}) {
    double config1_mw = 0.0;
    for (OwnConfig config : all_configs()) {
      ExperimentConfig experiment =
          bench::base_experiment(TopologyKind::kOwn, 256);
      experiment.own_config = config;
      experiment.scenario = scenario;
      const ExperimentResult result = run_experiment(experiment);
      const double mw = result.power.wireless_link_w * 1e3;
      if (config == OwnConfig::kConfig1) config1_mw = mw;
      table.add_row({to_string(scenario), to_string(config),
                     Table::num(mw, 2),
                     Table::num(100.0 * (mw / config1_mw - 1.0), 1) + "%"});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: scenario ideal c2 -60% / c4 -80% vs c1; conservative\n"
               "c2 -47% / c4 -57%. SiGe-on-long configurations (1, 3) dominate\n"
               "the wireless power in both models.\n";
  return 0;
}

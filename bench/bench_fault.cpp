// Fault-tolerance study: OWN-256 under progressive wireless-channel failures
// (extension; the paper cites reconfiguration/fault-tolerance work [12] but
// does not evaluate failures).
//
// Failed channels are recovered by 2-wireless-hop rerouting through a
// transit cluster; the table tracks the latency/throughput cost as channels
// die.
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "metrics/table_io.hpp"
#include "topology/own_fault.hpp"

int main() {
  using namespace ownsim;
  bench::print_header("OWN-256 under wireless channel failures",
                      "extension (cf. [12])");

  struct Stage {
    const char* label;
    std::vector<std::pair<int, int>> failures;
  };
  const std::vector<Stage> stages = {
      {"healthy", {}},
      {"1 diagonal down (0->2)", {{0, 2}}},
      {"diagonal pair down (0<->2)", {{0, 2}, {2, 0}}},
      {"4 channels down", {{0, 2}, {2, 0}, {1, 0}, {3, 2}}},
  };

  Table table({"state", "channels", "avg_latency", "p99", "throughput",
               "drained"});
  for (const Stage& stage : stages) {
    TopologyOptions options;
    options.num_cores = 256;
    options.num_vcs = 5;  // degraded mode needs the extra class
    const FaultSet faults{stage.failures};
    NetworkFactory factory = [options, faults] {
      return std::make_unique<Network>(build_own256_faulted(options, faults));
    };
    const RunResult result =
        saturation_throughput(factory, PatternKind::kUniform, 0.004,
                              bench::default_phases(), Injector::Params{});
    table.add_row({stage.label, std::to_string(12 - stage.failures.size()),
                   Table::num(result.avg_latency, 1),
                   Table::num(result.p99_latency, 1),
                   Table::num(result.throughput, 4),
                   result.drained ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nEvery stage remains deadlock-free and functional; rerouted\n"
               "flows pay two wireless hops (up to 5 router traversals) and\n"
               "shared transit capacity.\n";
  return 0;
}

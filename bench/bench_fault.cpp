// Fault-tolerance study: OWN-256 under progressive wireless-channel failures
// (extension; the paper cites reconfiguration/fault-tolerance work [12] but
// does not evaluate failures).
//
// Part 1 (static): failed channels are recovered by 2-wireless-hop rerouting
// through a transit cluster; the table tracks the latency/throughput cost as
// channels die.
//
// Part 2 (runtime campaigns): the same network hit mid-run by the fault
// campaign of fault/campaign.hpp — transient corruption at a stressed link
// margin, a permanent channel death with online rerouting, and random
// channel flaps. Everything still delivers; the JSONL record tracks the
// latency/retransmission cost per scenario.
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "driver/simulate.hpp"
#include "metrics/table_io.hpp"
#include "topology/own_fault.hpp"

int main() {
  using namespace ownsim;
  const WallTimer timer;
  bench::print_header("OWN-256 under wireless channel failures",
                      "extension (cf. [12])");

  struct Stage {
    const char* label;
    std::vector<std::pair<int, int>> failures;
  };
  const std::vector<Stage> stages = {
      {"healthy", {}},
      {"1 diagonal down (0->2)", {{0, 2}}},
      {"diagonal pair down (0<->2)", {{0, 2}, {2, 0}}},
      {"4 channels down", {{0, 2}, {2, 0}, {1, 0}, {3, 2}}},
  };

  Table table({"state", "channels", "avg_latency", "p99", "throughput",
               "drained"});
  for (const Stage& stage : stages) {
    TopologyOptions options;
    options.num_cores = 256;
    options.num_vcs = 5;  // degraded mode needs the extra class
    const FaultSet faults{stage.failures};
    NetworkFactory factory = [options, faults] {
      return std::make_unique<Network>(build_own256_faulted(options, faults));
    };
    const RunResult result =
        saturation_throughput(factory, PatternKind::kUniform, 0.004,
                              bench::default_phases(), Injector::Params{});
    table.add_row({stage.label, std::to_string(12 - stage.failures.size()),
                   Table::num(result.avg_latency, 1),
                   Table::num(result.p99_latency, 1),
                   Table::num(result.throughput, 4),
                   result.drained ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nEvery stage remains deadlock-free and functional; rerouted\n"
               "flows pay two wireless hops (up to 5 router traversals) and\n"
               "shared transit capacity.\n";

  // ---- part 2: runtime fault campaigns ------------------------------------
  bench::print_header("OWN-256 runtime fault campaigns",
                      "extension (DESIGN.md 5f)");

  struct Campaign {
    const char* label;
    fault::CampaignConfig fault;
  };
  std::vector<Campaign> campaigns;
  {
    Campaign transient{"transient BER (margin -8 dB)", {}};
    transient.fault.margin = Decibels{-8.0};
    campaigns.push_back(transient);
  }
  {
    Campaign kill{"mid-run death 0->2", {}};
    kill.fault.ber = 0.0;
    fault::Event event;
    event.kind = fault::EventKind::kKill;
    event.at = 600;
    event.src_cluster = 0;
    event.dst_cluster = 2;
    kill.fault.events.push_back(event);
    campaigns.push_back(kill);
  }
  {
    Campaign flaps{"4 random flaps", {}};
    flaps.fault.ber = 0.0;
    flaps.fault.random_flaps = 4;
    flaps.fault.flap_down_cycles = 300;
    flaps.fault.horizon = bench::default_phases().measure;
    campaigns.push_back(flaps);
  }

  BenchRecord record;
  record.bench = "bench_fault";
  record.paper_ref = "extension (cf. [12])";
  record.config = bench::phase_preset_name();

  Table runtime_table({"campaign", "avg_latency", "crc_errors",
                       "retransmissions", "flows_degraded", "drained"});
  const char* keys[] = {"transient", "kill", "flaps"};
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    ExperimentConfig config;
    config.options.num_cores = 256;
    config.rate = 0.004;
    config.phases = bench::default_phases();
    config.fault = campaigns[i].fault;
    config.fault.enabled = true;
    const ExperimentResult result = run_experiment(config);
    runtime_table.add_row(
        {campaigns[i].label, Table::num(result.run.avg_latency, 1),
         std::to_string(result.fault.crc_errors),
         std::to_string(result.fault.retransmissions),
         std::to_string(result.fault.flows_degraded),
         result.run.drained ? "yes" : "no"});
    const std::string key = keys[i];
    record.metrics.push_back({"avg_latency." + key, result.run.avg_latency,
                              "cycles", /*deterministic=*/true, "lower"});
    record.metrics.push_back(
        {"crc_errors." + key, static_cast<double>(result.fault.crc_errors),
         "flits", /*deterministic=*/true, "either"});
    record.metrics.push_back({"retransmissions." + key,
                              static_cast<double>(
                                  result.fault.retransmissions),
                              "flits", /*deterministic=*/true, "either"});
    record.metrics.push_back({"flows_degraded." + key,
                              static_cast<double>(result.fault.flows_degraded),
                              "routes", /*deterministic=*/true, "either"});
    record.metrics.push_back({"drained." + key,
                              result.run.drained ? 1.0 : 0.0, "bool",
                              /*deterministic=*/true, "higher"});
  }
  runtime_table.print(std::cout);
  std::cout << "\nThe link-level NACK/retransmission protocol masks every\n"
               "transient; a permanent death converges onto degraded routes\n"
               "online with zero packets lost.\n";
  record.metrics.push_back(
      {"wall_seconds", timer.seconds(), "s", /*deterministic=*/false,
       "lower"});
  emit_bench_json(record);
  return 0;
}

// Remaining coverage: the logger, latency histograms, O1TURN class usage
// under live traffic, and trace injector measurement windows.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "common/units.hpp"
#include "helpers.hpp"
#include "metrics/runner.hpp"
#include "topology/cmesh.hpp"
#include "traffic/injector.hpp"
#include "traffic/trace.hpp"

namespace ownsim {
namespace {

TEST(Log, LevelGating) {
  const LogLevel old_level = Log::level();
  Log::set_level(LogLevel::kWarn);
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  EXPECT_TRUE(Log::enabled(LogLevel::kWarn));
  EXPECT_FALSE(Log::enabled(LogLevel::kInfo));
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
  Log::set_level(old_level);
}

TEST(Runner, LatencyHistogramMatchesStats) {
  Network net(testing::ring_spec(8));
  TrafficPattern pattern(PatternKind::kUniform, 8);
  Injector::Params params;
  params.rate = 0.05;
  Injector injector(&net, pattern, params);
  net.engine().add(&injector);
  RunPhases phases;
  phases.warmup = 500;
  phases.measure = 2000;
  const RunResult result = run_load_point(net, injector, phases);
  ASSERT_TRUE(result.drained);
  EXPECT_EQ(result.latency_histogram.total(), result.measured_packets);
  EXPECT_EQ(result.latency_histogram.underflow(), 0);
  // Median estimate from the histogram agrees with the exact p50.
  EXPECT_NEAR(result.latency_histogram.quantile(0.5), result.p50_latency,
              result.latency_histogram.bin_width() + 1.0);
  EXPECT_LE(result.p50_latency, result.p99_latency);
  EXPECT_LE(result.p99_latency, result.max_latency);
}

TEST(O1Turn, BothRoutingFunctionsCarryTraffic) {
  TopologyOptions options;
  options.num_cores = 256;
  options.cmesh_o1turn = true;
  Network net(build_cmesh(options));
  TrafficPattern pattern(PatternKind::kUniform, 256);
  Injector::Params params;
  params.rate = 0.004;
  Injector injector(&net, pattern, params);
  net.engine().add(&injector);
  net.engine().run(4000);
  // Compare flows on the two opposing first-hop links out of a corner: with
  // XY-only, corner router 0 never sends south toward a same-column
  // destination first... instead verify globally: roughly half the packets
  // were injected on each class by sampling the ejected population's hops
  // through E/W vs N/S first links. Simplest robust check: both VC classes
  // appear at an interior router's switch traffic.
  // (Classes are invisible post-ejection, so check channel usage symmetry:
  // under XY, column links near sources carry only Y-phase traffic; under
  // O1TURN they also carry first-phase traffic, raising their share.)
  std::int64_t row_flits = 0;
  std::int64_t col_flits = 0;
  for (std::size_t i = 0; i < net.num_network_channels(); ++i) {
    const Channel& channel = net.network_channel(i);
    const LinkSpec& link = net.spec().links[i];
    const bool row = (link.src_router / 8) == (link.dst_router / 8);
    (row ? row_flits : col_flits) += channel.counters().flits;
  }
  // Uniform + symmetric O1TURN: row and column links carry near-equal load.
  const double ratio = static_cast<double>(row_flits) /
                       static_cast<double>(col_flits);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(TraceInjector, MeasurementWindowTagsPackets) {
  Network net(testing::ring_spec(8));
  std::vector<TraceRecord> records;
  for (Cycle t = 0; t < 100; t += 10) {
    records.push_back({t, static_cast<NodeId>(t / 10 % 8),
                       static_cast<NodeId>((t / 10 + 3) % 8), 2});
  }
  TraceInjector injector(&net, Trace(records), 128, false);
  injector.set_measure_window(30, 70);
  net.engine().add(&injector);
  ASSERT_TRUE(net.engine().run_until(
      [&] { return injector.finished() && net.drained(); }, 5000));
  EXPECT_EQ(injector.packets_offered(), 10);
  EXPECT_EQ(injector.measured_offered(), 4);  // cycles 30,40,50,60
  int measured = 0;
  for (const auto& rec : net.nic().records()) measured += rec.measured;
  EXPECT_EQ(measured, 4);
}

TEST(Units, PowerConversionHelpers) {
  EXPECT_DOUBLE_EQ(units::epb_to_power_w(1e-12, 32e9), 0.032);
  EXPECT_NEAR(units::ratio_to_db(100.0), 20.0, 1e-12);
}

}  // namespace
}  // namespace ownsim

// Topology-file frontend (src/topofile/): exporter round-trips, generated
// routing equivalence against the hand-built tables, the deadlock checker
// on both the built-in topologies and deliberately cyclic files, the parser
// rejection corpus, and the content-addressed serve cache key.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

#include "driver/experiment_config.hpp"
#include "driver/simulate.hpp"
#include "topofile/routegen.hpp"
#include "topofile/topofile.hpp"
#include "topology/registry.hpp"

namespace ownsim {
namespace {

TopologyOptions options_for(int cores, int concentration = 4) {
  TopologyOptions options;
  options.num_cores = cores;
  options.concentration = concentration;
  return options;
}

NetworkSpec load_text(const std::string& text, int cores,
                      int concentration = 4) {
  TopologyOptions options = options_for(cores, concentration);
  options.topofile_text = text;
  return topofile::load_topofile(text, options);
}

/// Asserts full structural equality of two specs (select_reader compared by
/// behavior over every destination router).
void expect_specs_equal(const NetworkSpec& a, const NetworkSpec& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.num_vcs, b.num_vcs);
  EXPECT_EQ(a.buffer_depth, b.buffer_depth);
  ASSERT_EQ(a.routers.size(), b.routers.size());
  for (std::size_t r = 0; r < a.routers.size(); ++r) {
    EXPECT_EQ(a.routers[r].num_net_in, b.routers[r].num_net_in);
    EXPECT_EQ(a.routers[r].num_net_out, b.routers[r].num_net_out);
  }
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t n = 0; n < a.nodes.size(); ++n) {
    EXPECT_EQ(a.nodes[n].router, b.nodes[n].router);
  }
  ASSERT_EQ(a.router_xy.size(), b.router_xy.size());
  for (std::size_t r = 0; r < a.router_xy.size(); ++r) {
    EXPECT_EQ(a.router_xy[r].first.value(), b.router_xy[r].first.value());
    EXPECT_EQ(a.router_xy[r].second.value(), b.router_xy[r].second.value());
  }
  EXPECT_EQ(a.partition_hint, b.partition_hint);
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    const LinkSpec& x = a.links[i];
    const LinkSpec& y = b.links[i];
    EXPECT_EQ(x.src_router, y.src_router);
    EXPECT_EQ(x.src_port, y.src_port);
    EXPECT_EQ(x.dst_router, y.dst_router);
    EXPECT_EQ(x.dst_port, y.dst_port);
    EXPECT_EQ(x.medium, y.medium);
    EXPECT_EQ(x.latency, y.latency);
    EXPECT_EQ(x.cycles_per_flit, y.cycles_per_flit);
    EXPECT_EQ(x.distance.value(), y.distance.value());
    EXPECT_EQ(x.wireless_channel, y.wireless_channel);
    EXPECT_EQ(x.name, y.name);
  }
  ASSERT_EQ(a.media.size(), b.media.size());
  for (std::size_t i = 0; i < a.media.size(); ++i) {
    const MediumSpec& x = a.media[i];
    const MediumSpec& y = b.media[i];
    EXPECT_EQ(x.medium, y.medium);
    EXPECT_EQ(x.arbitration, y.arbitration);
    EXPECT_EQ(x.writers, y.writers);
    EXPECT_EQ(x.readers, y.readers);
    EXPECT_EQ(x.latency, y.latency);
    EXPECT_EQ(x.cycles_per_flit, y.cycles_per_flit);
    EXPECT_EQ(x.max_packet_flits, y.max_packet_flits);
    EXPECT_EQ(x.distance.value(), y.distance.value());
    EXPECT_EQ(x.multicast_rx, y.multicast_rx);
    EXPECT_EQ(x.wireless_channel, y.wireless_channel);
    EXPECT_EQ(x.name, y.name);
    if (x.readers.size() > 1) {
      ASSERT_TRUE(static_cast<bool>(x.select_reader));
      ASSERT_TRUE(static_cast<bool>(y.select_reader));
      for (int d = 0; d < a.num_routers(); ++d) {
        EXPECT_EQ(x.select_reader(0, d), y.select_reader(0, d))
            << "medium " << i << " reader choice for dst router " << d;
      }
    }
  }
  ASSERT_EQ(a.vc_classes.size(), b.vc_classes.size());
  for (std::size_t c = 0; c < a.vc_classes.size(); ++c) {
    EXPECT_EQ(a.vc_classes[c].first, b.vc_classes[c].first);
    EXPECT_EQ(a.vc_classes[c].count, b.vc_classes[c].count);
  }
  const auto expect_tables_equal =
      [&](const std::vector<std::vector<RouteEntry>>& ta,
          const std::vector<std::vector<RouteEntry>>& tb) {
        ASSERT_EQ(ta.size(), tb.size());
        for (std::size_t r = 0; r < ta.size(); ++r) {
          for (std::size_t d = 0; d < ta[r].size(); ++d) {
            if (r == d) continue;
            EXPECT_EQ(ta[r][d].out_port, tb[r][d].out_port)
                << "route " << r << " -> " << d;
            EXPECT_EQ(ta[r][d].vc_class, tb[r][d].vc_class)
                << "route " << r << " -> " << d;
          }
        }
      };
  expect_tables_equal(a.route_table, b.route_table);
  EXPECT_EQ(a.has_alt_routing(), b.has_alt_routing());
  if (a.has_alt_routing() && b.has_alt_routing()) {
    expect_tables_equal(a.route_table_alt, b.route_table_alt);
    EXPECT_EQ(a.alt_min_class, b.alt_min_class);
  }
}

topofile::ExportPolicy cmesh_policy(int cores, bool generated = true) {
  topofile::ExportPolicy policy;
  policy.emulates = "cmesh";
  policy.generated_routing = generated;
  policy.bisection["electrical"] = 2.0 * (cores == 1024 ? 16 : 8);
  return policy;
}

topofile::ExportPolicy own_policy() {
  topofile::ExportPolicy policy;
  policy.emulates = "own";
  policy.bisection["wireless"] = 8.0;
  return policy;
}

// ---------------------------------------------------------------------------
// Exporter round-trips: hand-built -> file -> parsed must reproduce the spec.

TEST(TopofileRoundTrip, Cmesh1024GeneratedRouting) {
  const TopologyOptions options = options_for(1024);
  const NetworkSpec hand = build_topology(TopologyKind::kCMesh, options);
  const std::string text =
      topofile::export_topofile(hand, options, cmesh_policy(1024));
  const NetworkSpec loaded = load_text(text, 1024);
  // Generated shortest-path routing with the lowest-port tie-break must
  // reproduce the hand-written XY DOR tables exactly.
  expect_specs_equal(hand, loaded);
}

TEST(TopofileRoundTrip, Own256ExplicitTables) {
  const TopologyOptions options = options_for(256);
  const NetworkSpec hand = build_topology(TopologyKind::kOwn, options);
  const std::string text =
      topofile::export_topofile(hand, options, own_policy());
  const NetworkSpec loaded = load_text(text, 256);
  expect_specs_equal(hand, loaded);
}

TEST(TopofileRoundTrip, CmeshO1TurnKeepsAltTable) {
  TopologyOptions options = options_for(256);
  options.cmesh_o1turn = true;
  const NetworkSpec hand = build_topology(TopologyKind::kCMesh, options);
  const std::string text = topofile::export_topofile(
      hand, options, cmesh_policy(256, /*generated=*/false));
  TopologyOptions reload = options;
  reload.topofile_text = text;
  const NetworkSpec loaded = topofile::load_topofile(text, reload);
  ASSERT_TRUE(loaded.has_alt_routing());
  expect_specs_equal(hand, loaded);
}

TEST(TopofileRoundTrip, GeneratedMatchesXYOnCmesh256) {
  const TopologyOptions options = options_for(256);
  const NetworkSpec hand = build_topology(TopologyKind::kCMesh, options);
  const NetworkSpec loaded = load_text(
      topofile::export_topofile(hand, options, cmesh_policy(256)), 256);
  ASSERT_EQ(loaded.vc_classes.size(), 1u);  // acyclic CDG: no escape classes
  expect_specs_equal(hand, loaded);
}

// The checked-in files must not drift from the builders that exported them.
TEST(TopofileRoundTrip, CheckedInFilesMatchBuilders) {
  const std::string dir =
      std::string(OWNSIM_SOURCE_DIR) + "/configs/topologies/";
  {
    const TopologyOptions options = options_for(1024);
    const NetworkSpec hand = build_topology(TopologyKind::kCMesh, options);
    EXPECT_EQ(topofile::export_topofile(hand, options, cmesh_policy(1024)),
              topofile::read_topofile(dir + "cmesh1024.topo.json"));
  }
  {
    const TopologyOptions options = options_for(256);
    const NetworkSpec hand = build_topology(TopologyKind::kOwn, options);
    EXPECT_EQ(topofile::export_topofile(hand, options, own_policy()),
              topofile::read_topofile(dir + "own256.topo.json"));
  }
}

// ---------------------------------------------------------------------------
// Report byte-identity: a file run must be indistinguishable from the
// hand-built topology it emulates, under all three kernels.

void expect_byte_identical_reports(TopologyKind kind, int cores,
                                   const std::string& text, double rate) {
  ExperimentConfig hand;
  hand.topology = kind;
  hand.options.num_cores = cores;
  hand.rate = rate;
  hand.phases.warmup = 100;
  hand.phases.measure = 200;

  ExperimentConfig file = hand;
  file.topology = TopologyKind::kFile;
  file.options.topofile_text = text;

  for (const KernelMode mode :
       {KernelMode::kLockstep, KernelMode::kActivity, KernelMode::kParallel}) {
    hand.kernel = mode;
    file.kernel = mode;
    const std::string hand_json =
        experiment_result_json(run_experiment(hand));
    const std::string file_json =
        experiment_result_json(run_experiment(file));
    EXPECT_EQ(hand_json, file_json)
        << "kernel " << static_cast<int>(mode) << " on " << to_string(kind);
  }
}

TEST(TopofileEquivalence, Own256ByteIdenticalAcrossKernels) {
  const TopologyOptions options = options_for(256);
  const std::string text = topofile::export_topofile(
      build_topology(TopologyKind::kOwn, options), options, own_policy());
  expect_byte_identical_reports(TopologyKind::kOwn, 256, text, 0.004);
}

TEST(TopofileEquivalence, Cmesh1024ByteIdenticalAcrossKernels) {
  const TopologyOptions options = options_for(1024);
  const std::string text = topofile::export_topofile(
      build_topology(TopologyKind::kCMesh, options), options,
      cmesh_policy(1024));
  expect_byte_identical_reports(TopologyKind::kCMesh, 1024, text, 0.002);
}

// ---------------------------------------------------------------------------
// Deadlock checker.

TEST(TopofileDeadlock, AcceptsAllBuiltinTopologies) {
  for (const TopologyKind kind : paper_topologies()) {
    const NetworkSpec spec = build_topology(kind, options_for(256));
    const topofile::DeadlockReport report = topofile::check_deadlock(spec);
    EXPECT_TRUE(report.deadlock_free) << to_string(kind);
  }
  const topofile::DeadlockReport own1024 = topofile::check_deadlock(
      build_topology(TopologyKind::kOwn, options_for(1024)));
  EXPECT_TRUE(own1024.deadlock_free);
}

TEST(TopofileDeadlock, CyclicTableRefusedWithCycleNamed) {
  // 3-ring with single-class clockwise routing: the classic credit cycle.
  const std::string text = R"({
    "topofile": 1, "name": "cyclic-3", "nodes": 3, "concentration": 1,
    "routers": [{"count": 3, "in": 1, "out": 1}],
    "links": [
      {"src": [0,0], "dst": [1,0], "medium": "electrical", "latency": 1,
       "cpf": 1, "name": "ring0"},
      {"src": [1,0], "dst": [2,0], "medium": "electrical", "latency": 1,
       "cpf": 1, "name": "ring1"},
      {"src": [2,0], "dst": [0,0], "medium": "electrical", "latency": 1,
       "cpf": 1, "name": "ring2"}
    ],
    "routing": {"mode": "table", "classes": [[0, "rest"]],
      "table": [
        [[-1,0],[0,0],[0,0]],
        [[0,0],[-1,0],[0,0]],
        [[0,0],[0,0],[-1,0]]
      ]}
  })";
  try {
    load_text(text, 3, 1);
    FAIL() << "cyclic topology must be refused at load time";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("channel-dependency cycle"), std::string::npos)
        << message;
    EXPECT_NE(message.find("ring0"), std::string::npos) << message;
  }
}

TEST(TopofileDeadlock, GeneratedRingEscalatesClasses) {
  // The checked-in demo ring: generation must break the cycle with a
  // second VC class and pass its own checker.
  const std::string text = topofile::read_topofile(
      std::string(OWNSIM_SOURCE_DIR) + "/configs/topologies/ring8.topo.json");
  const NetworkSpec spec = load_text(text, 8, 1);
  EXPECT_EQ(spec.vc_classes.size(), 2u);
  EXPECT_TRUE(topofile::check_deadlock(spec).deadlock_free);
  // Classes never decrease along any route.
  for (int r = 0; r < 8; ++r) {
    for (int d = 0; d < 8; ++d) {
      if (r == d) continue;
      const int next = (r + 1) % 8;
      if (next == d) continue;
      EXPECT_LE(spec.route_table[r][d].vc_class,
                spec.route_table[next][d].vc_class);
    }
  }
}

// ---------------------------------------------------------------------------
// Parser rejection corpus.

void expect_rejected(const std::string& text, const std::string& needle,
                     int cores = 2, int concentration = 1) {
  try {
    load_text(text, cores, concentration);
    FAIL() << "expected rejection mentioning '" << needle << "'";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

std::string two_router_text(const std::string& links,
                            const std::string& routing) {
  return std::string(R"({"topofile": 1, "name": "t", "nodes": 2,
    "concentration": 1, "routers": [{"count": 2, "in": 1, "out": 1}],
    "links": [)") +
         links + "], \"routing\": " + routing + "}";
}

constexpr char kLinkFwd[] =
    R"({"src": [0,0], "dst": [1,0], "medium": "electrical",
        "latency": 1, "cpf": 1})";
constexpr char kLinkRev[] =
    R"({"src": [1,0], "dst": [0,0], "medium": "electrical",
        "latency": 1, "cpf": 1})";
constexpr char kRoutingGenerated[] = R"({"mode": "generated"})";

TEST(TopofileParser, RejectionCorpus) {
  // Bad link medium name.
  expect_rejected(
      two_router_text(std::string(R"({"src": [0,0], "dst": [1,0],
          "medium": "optical", "latency": 1, "cpf": 1},)") +
                          kLinkRev,
                      kRoutingGenerated),
      "bad link medium");
  // Dangling link: destination router out of range.
  expect_rejected(
      two_router_text(std::string(R"({"src": [0,0], "dst": [5,0],
          "medium": "electrical", "latency": 1, "cpf": 1},)") +
                          kLinkRev,
                      kRoutingGenerated),
      "out of range");
  // Disconnected node: no route from router 1 back to router 0.
  expect_rejected(two_router_text(kLinkFwd, kRoutingGenerated),
                  "disconnected");
  // Explicit classes are meaningless under generated routing.
  expect_rejected(
      two_router_text(std::string(kLinkFwd) + "," + kLinkRev,
                      R"({"mode": "generated", "classes": [[0, "rest"]]})"),
      "unknown key 'classes'");
  // Unknown top-level key.
  expect_rejected(
      R"({"topofile": 1, "name": "t", "nodes": 2, "concentration": 1,
          "widgets": 3, "routers": [{"count": 2, "in": 1, "out": 1}],
          "routing": {"mode": "generated"}})",
      "unknown key 'widgets'");
  // Unsupported format version.
  expect_rejected(R"({"topofile": 99, "name": "t", "nodes": 2})",
                  "format version");
  // Node/core count mismatch names the fix.
  expect_rejected(
      two_router_text(std::string(kLinkFwd) + "," + kLinkRev,
                      kRoutingGenerated),
      "pass cores=2", /*cores=*/4, /*concentration=*/1);
  // MWSR photonic media have exactly one reader.
  expect_rejected(
      R"({"topofile": 1, "name": "t", "nodes": 2, "concentration": 1,
          "routers": [{"count": 2, "in": 1, "out": 1}],
          "media": [{"type": "photonic-mwsr", "writers": [[0,0],[1,0]],
                     "readers": [[0,0],[1,0]], "latency": 2, "cpf": 4,
                     "name": "wg"}],
          "routing": {"mode": "generated"}})",
      "exactly one reader");
}

// ---------------------------------------------------------------------------
// Serve cache key: content-addressed, path-independent, generator-versioned.

TEST(TopofileCacheKey, HashesContentNotPath) {
  const TopologyOptions options = options_for(256);
  const std::string text = topofile::export_topofile(
      build_topology(TopologyKind::kOwn, options), options, own_policy());

  ExperimentConfig a;
  a.topology = TopologyKind::kFile;
  a.options.num_cores = 256;
  a.options.topofile_path = "/some/where/own256.topo.json";
  a.options.topofile_text = text;

  ExperimentConfig b = a;
  b.options.topofile_path = "/else/where/copy.topo.json";
  // Same bytes, different path: same key (a moved file must still hit).
  EXPECT_EQ(experiment_cache_key(a), experiment_cache_key(b));

  // Mutated bytes, same path: different key (no stale hits, the PR-9 bug).
  ExperimentConfig c = a;
  c.options.topofile_text.insert(c.options.topofile_text.find("own-256"),
                                 "x");
  EXPECT_NE(experiment_cache_key(a), experiment_cache_key(c));

  // Non-file configs do not carry topofile keys at all.
  ExperimentConfig plain;
  plain.topology = TopologyKind::kOwn;
  EXPECT_EQ(canonical_config_json(plain).find("topofile"), std::string::npos);
}

TEST(TopofileCacheKey, CanonicalJsonRoundTripsViaSha) {
  const TopologyOptions options = options_for(256);
  ExperimentConfig config;
  config.topology = TopologyKind::kFile;
  config.options.num_cores = 256;
  config.options.topofile_text = topofile::export_topofile(
      build_topology(TopologyKind::kOwn, options), options, own_policy());

  const std::string canonical = canonical_config_json(config);
  EXPECT_NE(canonical.find("\"topofile.sha256\""), std::string::npos);
  EXPECT_NE(canonical.find("\"topofile.generator\""), std::string::npos);

  // The reconstructed config has no file text, only the carried hash — and
  // must still re-serialize (and therefore re-key) identically.
  const ExperimentConfig reloaded =
      experiment_config_from_canonical_json(canonical);
  EXPECT_TRUE(reloaded.options.topofile_text.empty());
  EXPECT_FALSE(reloaded.topofile_sha256.empty());
  EXPECT_EQ(canonical_config_json(reloaded), canonical);
  EXPECT_EQ(experiment_cache_key(reloaded), experiment_cache_key(config));
}

}  // namespace
}  // namespace ownsim

// Cross-cutting property tests: conservation and sanity invariants that must
// hold on EVERY topology under randomized traffic.
//
//  * packet conservation: everything created is ejected exactly once
//  * flit conservation: ejected flits == injected flits after drain
//  * credit restoration: all channel credits return to buffer depth
//  * hop bound: no packet exceeds the topology's worst-case hop count
//  * latency sanity: network latency <= total latency, hops >= 1
//  * determinism: two identical runs produce identical statistics
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "metrics/runner.hpp"
#include "topology/registry.hpp"
#include "traffic/injector.hpp"

namespace ownsim {
namespace {

struct InvariantCase {
  TopologyKind kind;
  int cores;
  int max_hops;  ///< router traversals bound = link hops + 1
};

class Invariants : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(Invariants, ConservationAfterRandomizedRun) {
  const auto& param = GetParam();
  TopologyOptions options;
  options.num_cores = param.cores;
  Network net(build_topology(param.kind, options));
  TrafficPattern pattern(PatternKind::kUniform, param.cores);
  Injector::Params injector_params;
  injector_params.rate = 0.003;
  injector_params.master_seed = 77;
  Injector injector(&net, pattern, injector_params);
  net.engine().add(&injector);
  RunPhases phases;
  phases.warmup = 800;
  phases.measure = 2000;
  phases.drain_limit = 60000;
  const RunResult result = run_load_point(net, injector, phases);
  ASSERT_TRUE(result.drained);

  // Stop offering and let the in-flight tail fully drain.
  injector.set_enabled(false);
  ASSERT_TRUE(
      net.engine().run_until([&] { return net.drained(); }, 60000));

  // Packet & flit conservation.
  EXPECT_EQ(net.nic().packets_created(), net.nic().packets_ejected());
  EXPECT_EQ(net.nic().flits_injected(), net.nic().flits_ejected());
  EXPECT_EQ(net.nic().queued_flits(), 0);
  for (RouterId r = 0; r < net.spec().num_routers(); ++r) {
    EXPECT_EQ(net.router(r).occupancy(), 0) << "router " << r;
  }

  // Credits fully restored on every network channel.
  for (std::size_t i = 0; i < net.num_network_channels(); ++i) {
    const Channel& channel = net.network_channel(i);
    for (VcId vc = 0; vc < channel.num_vcs(); ++vc) {
      EXPECT_EQ(channel.credits(vc), net.spec().buffer_depth)
          << channel.name() << " vc" << vc;
      EXPECT_FALSE(channel.vc_busy(vc)) << channel.name() << " vc" << vc;
    }
  }

  // Hop bound + latency sanity on every record.
  for (const auto& rec : net.nic().records()) {
    EXPECT_GE(rec.hops, 1);
    EXPECT_LE(rec.hops, param.max_hops) << rec.src << "->" << rec.dst;
    EXPECT_GE(rec.injected, rec.created);
    EXPECT_GT(rec.ejected, rec.injected);
  }
}

TEST_P(Invariants, DeterministicStatistics) {
  const auto& param = GetParam();
  auto run_once = [&] {
    TopologyOptions options;
    options.num_cores = param.cores;
    Network net(build_topology(param.kind, options));
    TrafficPattern pattern(PatternKind::kUniform, param.cores);
    Injector::Params injector_params;
    injector_params.rate = 0.003;
    Injector injector(&net, pattern, injector_params);
    net.engine().add(&injector);
    RunPhases phases;
    phases.warmup = 500;
    phases.measure = 1500;
    const RunResult r = run_load_point(net, injector, phases);
    return std::make_tuple(r.avg_latency, r.throughput, r.measured_packets);
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, Invariants,
    ::testing::Values(InvariantCase{TopologyKind::kCMesh, 256, 15},
                      InvariantCase{TopologyKind::kWirelessCMesh, 256, 9},
                      InvariantCase{TopologyKind::kOptXB, 256, 2},
                      InvariantCase{TopologyKind::kPClos, 256, 3},
                      InvariantCase{TopologyKind::kOwn, 256, 4},
                      InvariantCase{TopologyKind::kOwn, 1024, 4}),
    [](const ::testing::TestParamInfo<InvariantCase>& param_info) {
      std::string name = to_string(param_info.param.kind);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_" + std::to_string(param_info.param.cores);
    });

TEST(InvariantsOverload, OwnSurvivesSustainedOverloadWithoutDeadlock) {
  // Regression for the writer-port class-lane deadlock: drive OWN-256 well
  // past saturation for a long stretch; ejections must keep happening in
  // every window (forward progress), even though queues grow.
  TopologyOptions options;
  options.num_cores = 256;
  Network net(build_topology(TopologyKind::kOwn, options));
  TrafficPattern pattern(PatternKind::kUniform, 256);
  Injector::Params params;
  params.rate = 0.02;  // ~3x saturation
  Injector injector(&net, pattern, params);
  net.engine().add(&injector);
  net.engine().run(2000);
  for (int window = 0; window < 10; ++window) {
    const std::int64_t before = net.nic().packets_ejected();
    net.engine().run(1000);
    EXPECT_GT(net.nic().packets_ejected(), before) << "window " << window;
  }
}

TEST(InvariantsOverload, AllTopologiesKeepEjectingUnderOverload) {
  for (TopologyKind kind : paper_topologies()) {
    TopologyOptions options;
    options.num_cores = 256;
    Network net(build_topology(kind, options));
    TrafficPattern pattern(PatternKind::kTranspose, 256);
    Injector::Params params;
    params.rate = 0.02;
    Injector injector(&net, pattern, params);
    net.engine().add(&injector);
    net.engine().run(4000);
    const std::int64_t before = net.nic().packets_ejected();
    net.engine().run(2000);
    EXPECT_GT(net.nic().packets_ejected(), before) << to_string(kind);
  }
}

}  // namespace
}  // namespace ownsim

// Unit tests for the two-phase cycle engine: lockstep mechanics, the
// activity-driven kernel (idle retirement, wake wheel, skip-ahead), and
// paired lockstep-vs-activity runs that pin down the bit-identity contract
// of DESIGN.md §5e on real networks.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/simulate.hpp"
#include "metrics/report.hpp"
#include "metrics/runner.hpp"
#include "network/network.hpp"
#include "sim/engine.hpp"
#include "topology/own_fault.hpp"
#include "topology/registry.hpp"
#include "traffic/injector.hpp"
#include "traffic/patterns.hpp"

namespace ownsim {
namespace {

class Probe final : public Clocked {
 public:
  void eval(Cycle now) override { evals.push_back(now); }
  void commit(Cycle now) override { commits.push_back(now); }
  std::vector<Cycle> evals;
  std::vector<Cycle> commits;
};

TEST(Engine, StepAdvancesTime) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  Probe p;
  engine.add(&p);
  engine.run(3);
  EXPECT_EQ(engine.now(), 3);
  EXPECT_EQ(p.evals, (std::vector<Cycle>{0, 1, 2}));
  EXPECT_EQ(p.commits, (std::vector<Cycle>{0, 1, 2}));
}

TEST(Engine, EvalBeforeCommitAcrossComponents) {
  // Every eval of the cycle happens before any commit of that cycle.
  Engine engine;
  struct Recorder final : Clocked {
    explicit Recorder(std::vector<int>* log, int id) : log_(log), id_(id) {}
    void eval(Cycle) override { log_->push_back(id_); }
    void commit(Cycle) override { log_->push_back(-id_); }
    std::vector<int>* log_;
    int id_;
  };
  std::vector<int> log;
  Recorder a(&log, 1), b(&log, 2);
  engine.add(&a);
  engine.add(&b);
  engine.step();
  EXPECT_EQ(log, (std::vector<int>{1, 2, -1, -2}));
}

TEST(Engine, RunUntilStopsAtPredicate) {
  Engine engine;
  Probe p;
  engine.add(&p);
  const bool done =
      engine.run_until([&] { return engine.now() >= 5; }, 100);
  EXPECT_TRUE(done);
  EXPECT_EQ(engine.now(), 5);
}

TEST(Engine, RunUntilHonorsBudget) {
  Engine engine;
  const bool done = engine.run_until([] { return false; }, 17);
  EXPECT_FALSE(done);
  EXPECT_EQ(engine.now(), 17);
}

TEST(Engine, RejectsNullComponent) {
  Engine engine;
  EXPECT_THROW(engine.add(nullptr), std::invalid_argument);
}

TEST(Engine, SetModeOnlyBeforeFirstCycle) {
  Engine engine;
  engine.set_mode(KernelMode::kLockstep);
  engine.set_mode(KernelMode::kActivity);
  Probe p;
  engine.add(&p);
  engine.step();
  EXPECT_THROW(engine.set_mode(KernelMode::kLockstep), std::logic_error);
}

/// Idleness is togglable from the outside; evals are recorded.
struct Sleeper final : Clocked {
  bool idle = false;
  std::vector<Cycle> evals;
  void eval(Cycle now) override { evals.push_back(now); }
  void commit(Cycle) override {}
  bool is_idle() const override { return idle; }
};

TEST(Engine, IdleComponentRetiresAndGapIsSkipped) {
  Engine engine;
  engine.set_mode(KernelMode::kActivity);
  Sleeper s;
  engine.add(&s);
  engine.run(2);
  EXPECT_EQ(s.evals, (std::vector<Cycle>{0, 1}));
  EXPECT_EQ(engine.num_active(), 1u);

  // One more eval (cycle 2) observes the idleness, then the component
  // retires and the remaining budget is fast-forwarded in one jump.
  s.idle = true;
  engine.run(4);
  EXPECT_EQ(s.evals, (std::vector<Cycle>{0, 1, 2}));
  EXPECT_EQ(engine.num_active(), 0u);
  EXPECT_EQ(engine.now(), 6);
  EXPECT_GE(engine.stats().cycles_skipped, 3);
}

TEST(Engine, WakeReactivatesDormantComponent) {
  Engine engine;
  engine.set_mode(KernelMode::kActivity);
  Sleeper s;
  s.idle = true;
  engine.add(&s);
  engine.run(2);  // eval once at 0, then dormant
  EXPECT_EQ(s.evals, (std::vector<Cycle>{0}));

  s.request_wake(8);
  EXPECT_EQ(engine.next_wake(), 8);
  engine.run(10);  // deadline 12: skip 2..7, eval at 8, skip 9..11
  EXPECT_EQ(s.evals, (std::vector<Cycle>{0, 8}));
  EXPECT_EQ(engine.now(), 12);
  EXPECT_EQ(engine.num_active(), 0u);
}

TEST(Engine, MidEvalSelfWakeLandsOnRequestedCycle) {
  // A component that re-arms itself from inside eval() (the injector
  // pattern): always-idle, so only the wheel keeps it running.
  struct SelfWaker final : Clocked {
    int remaining = 3;
    std::vector<Cycle> evals;
    void eval(Cycle now) override {
      evals.push_back(now);
      if (--remaining > 0) request_wake(now + 5);
    }
    void commit(Cycle) override {}
    bool is_idle() const override { return true; }
  };
  Engine engine;
  engine.set_mode(KernelMode::kActivity);
  SelfWaker w;
  engine.add(&w);
  engine.run(20);
  EXPECT_EQ(w.evals, (std::vector<Cycle>{0, 5, 10}));
  EXPECT_EQ(engine.now(), 20);
  EXPECT_GT(engine.stats().cycles_skipped, 0);
  EXPECT_EQ(engine.stats().evals, 3);
}

TEST(Engine, StepNeverSkipsCycles) {
  Engine engine;
  engine.set_mode(KernelMode::kActivity);
  Sleeper s;
  s.idle = true;
  engine.add(&s);
  for (int i = 0; i < 5; ++i) engine.step();
  EXPECT_EQ(engine.now(), 5);
  EXPECT_EQ(engine.stats().cycles_skipped, 0);
}

// ---------------------------------------------------------------------------
// Paired lockstep-vs-activity runs on real networks (bit-identity contract).

/// Runs one OWN-256 load point under `mode` with tier1-sized phases.
RunResult own256_point(KernelMode mode, PatternKind pattern_kind, double rate,
                       Engine::Stats* stats_out = nullptr,
                       const NetworkSpec* spec_override = nullptr) {
  TopologyOptions options;
  options.num_cores = 256;
  Network network(spec_override != nullptr
                      ? *spec_override
                      : build_topology(TopologyKind::kOwn, options));
  network.engine().set_mode(mode);
  TrafficPattern pattern(pattern_kind, 256);
  Injector::Params params;
  params.rate = rate;
  Injector injector(&network, pattern, params);
  network.engine().add(&injector);
  RunPhases phases;
  phases.warmup = 300;
  phases.measure = 600;
  phases.drain_limit = 8000;
  const RunResult result = run_load_point(network, injector, phases);
  if (stats_out != nullptr) *stats_out = network.engine().stats();
  return result;
}

TEST(KernelParity, Own256Uniform) {
  const RunResult lockstep =
      own256_point(KernelMode::kLockstep, PatternKind::kUniform, 0.004);
  const RunResult activity =
      own256_point(KernelMode::kActivity, PatternKind::kUniform, 0.004);
  EXPECT_TRUE(lockstep.drained);
  EXPECT_TRUE(deterministic_eq(lockstep, activity));
}

TEST(KernelParity, Own256BitReversal) {
  const RunResult lockstep =
      own256_point(KernelMode::kLockstep, PatternKind::kBitReversal, 0.004);
  const RunResult activity =
      own256_point(KernelMode::kActivity, PatternKind::kBitReversal, 0.004);
  EXPECT_TRUE(lockstep.drained);
  EXPECT_TRUE(deterministic_eq(lockstep, activity));
}

TEST(KernelParity, Own256Faulted) {
  // A failed wireless channel reroutes traffic through transit clusters;
  // the kernels must still agree flit for flit.
  TopologyOptions options;
  options.num_cores = 256;
  options.num_vcs = 5;
  FaultSet faults;
  faults.fail(0, 2);
  const NetworkSpec spec = build_own256_faulted(options, faults);
  const RunResult lockstep = own256_point(KernelMode::kLockstep,
                                          PatternKind::kUniform, 0.004,
                                          nullptr, &spec);
  const RunResult activity = own256_point(KernelMode::kActivity,
                                          PatternKind::kUniform, 0.004,
                                          nullptr, &spec);
  EXPECT_TRUE(lockstep.drained);
  EXPECT_TRUE(deterministic_eq(lockstep, activity));
}

/// One OWN-256 load point with a runtime fault campaign under `mode`; the
/// report JSON doubles as a byte-exact digest of every counter.
struct FaultPoint {
  RunResult run;
  fault::Totals totals;
  std::string report_json;
};

FaultPoint own256_fault_point(KernelMode mode,
                              const fault::CampaignConfig& fault) {
  ExperimentConfig config;
  config.options.num_cores = 256;
  config.rate = 0.004;
  config.phases.warmup = 300;
  config.phases.measure = 800;
  config.phases.drain_limit = 15000;
  config.fault = fault;
  config.fault.enabled = true;
  Network network(build_experiment_spec(config));
  network.engine().set_mode(mode);
  TrafficPattern pattern(PatternKind::kUniform, 256);
  Injector::Params params;
  params.rate = config.rate;
  Injector injector(&network, pattern, params);
  network.engine().add(&injector);
  auto campaign = make_campaign(network, config);
  campaign->attach();
  FaultPoint point;
  point.run = run_load_point(network, injector, config.phases);
  point.totals = campaign->totals();
  std::ostringstream os;
  NetworkReport(network).write_json(os);
  point.report_json = os.str();
  return point;
}

TEST(KernelParity, Own256TransientCorruption) {
  // Mid-run NACK + retransmission perturbs arrival times out of FIFO order;
  // the kernels must agree byte for byte, counters included.
  fault::CampaignConfig fault;
  fault.margin = Decibels{-8.0};
  const FaultPoint lockstep =
      own256_fault_point(KernelMode::kLockstep, fault);
  const FaultPoint activity =
      own256_fault_point(KernelMode::kActivity, fault);
  EXPECT_TRUE(lockstep.run.drained);
  EXPECT_GT(lockstep.totals.crc_errors, 0);
  EXPECT_TRUE(deterministic_eq(lockstep.run, activity.run));
  EXPECT_EQ(lockstep.report_json, activity.report_json);
}

TEST(KernelParity, Own256MidRunDeath) {
  // A channel killed mid-run plus the detector's online route patch must
  // leave both kernels on the same trajectory.
  fault::CampaignConfig fault;
  fault.ber = 0.0;
  fault::Event kill;
  kill.kind = fault::EventKind::kKill;
  kill.at = 500;
  kill.src_cluster = 0;
  kill.dst_cluster = 2;
  fault.events.push_back(kill);
  const FaultPoint lockstep =
      own256_fault_point(KernelMode::kLockstep, fault);
  const FaultPoint activity =
      own256_fault_point(KernelMode::kActivity, fault);
  EXPECT_TRUE(lockstep.run.drained);
  EXPECT_EQ(lockstep.totals.flows_degraded, 256);
  EXPECT_EQ(activity.totals.flows_degraded, 256);
  EXPECT_TRUE(deterministic_eq(lockstep.run, activity.run));
  EXPECT_EQ(lockstep.report_json, activity.report_json);
}

TEST(KernelParity, DrainPhaseSkipsAhead) {
  // At a very low load the network is empty most cycles; the activity run
  // must actually exercise the skip-ahead path while staying bit-identical.
  Engine::Stats stats;
  const RunResult lockstep =
      own256_point(KernelMode::kLockstep, PatternKind::kUniform, 0.0005);
  const RunResult activity = own256_point(KernelMode::kActivity,
                                          PatternKind::kUniform, 0.0005,
                                          &stats);
  EXPECT_TRUE(lockstep.drained);
  EXPECT_TRUE(activity.drained);
  EXPECT_TRUE(deterministic_eq(lockstep, activity));
  EXPECT_GT(stats.cycles_skipped, 0);
  EXPECT_LT(stats.cycles_stepped, activity.cycles_simulated);
}

}  // namespace
}  // namespace ownsim

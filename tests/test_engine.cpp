// Unit tests for the two-phase cycle engine.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"

namespace ownsim {
namespace {

class Probe final : public Clocked {
 public:
  void eval(Cycle now) override { evals.push_back(now); }
  void commit(Cycle now) override { commits.push_back(now); }
  std::vector<Cycle> evals;
  std::vector<Cycle> commits;
};

TEST(Engine, StepAdvancesTime) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  Probe p;
  engine.add(&p);
  engine.run(3);
  EXPECT_EQ(engine.now(), 3);
  EXPECT_EQ(p.evals, (std::vector<Cycle>{0, 1, 2}));
  EXPECT_EQ(p.commits, (std::vector<Cycle>{0, 1, 2}));
}

TEST(Engine, EvalBeforeCommitAcrossComponents) {
  // Every eval of the cycle happens before any commit of that cycle.
  Engine engine;
  struct Recorder final : Clocked {
    explicit Recorder(std::vector<int>* log, int id) : log_(log), id_(id) {}
    void eval(Cycle) override { log_->push_back(id_); }
    void commit(Cycle) override { log_->push_back(-id_); }
    std::vector<int>* log_;
    int id_;
  };
  std::vector<int> log;
  Recorder a(&log, 1), b(&log, 2);
  engine.add(&a);
  engine.add(&b);
  engine.step();
  EXPECT_EQ(log, (std::vector<int>{1, 2, -1, -2}));
}

TEST(Engine, RunUntilStopsAtPredicate) {
  Engine engine;
  Probe p;
  engine.add(&p);
  const bool done =
      engine.run_until([&] { return engine.now() >= 5; }, 100);
  EXPECT_TRUE(done);
  EXPECT_EQ(engine.now(), 5);
}

TEST(Engine, RunUntilHonorsBudget) {
  Engine engine;
  const bool done = engine.run_until([] { return false; }, 17);
  EXPECT_FALSE(done);
  EXPECT_EQ(engine.now(), 17);
}

TEST(Engine, RejectsNullComponent) {
  Engine engine;
  EXPECT_THROW(engine.add(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace ownsim

// Edge-case tests for the router microarchitecture: asymmetric port counts,
// single-VC operation, construction errors, wiring errors, state dumps, and
// head-of-line behavior.
#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"
#include "network/network.hpp"

namespace ownsim {
namespace {

using testing::drain;
using testing::two_router_spec;

TEST(RouterEdge, RejectsBadConstruction) {
  std::vector<VcClassRange> classes = {{0, 4}};
  Router::Params params;
  params.num_inputs = 0;
  params.num_outputs = 1;
  struct DummyOracle final : RoutingOracle {
    RouteEntry route(RouterId, const Flit&) const override { return {}; }
  } oracle;
  EXPECT_THROW(Router(params, &classes, &oracle), std::invalid_argument);
  params.num_inputs = 1;
  EXPECT_THROW(Router(params, nullptr, &oracle), std::invalid_argument);
  EXPECT_THROW(Router(params, &classes, nullptr), std::invalid_argument);
}

TEST(RouterEdge, DoubleWiringThrows) {
  std::vector<VcClassRange> classes = {{0, 4}};
  Router::Params params;
  params.num_inputs = 1;
  params.num_outputs = 1;
  struct DummyOracle final : RoutingOracle {
    RouteEntry route(RouterId, const Flit&) const override { return {}; }
  } oracle;
  Router router(params, &classes, &oracle);
  Channel channel(MediumType::kElectrical, 1, 1, 4, 8, Length{}, &classes, "c");
  router.connect_input(0, channel.in());
  EXPECT_THROW(router.connect_input(0, channel.in()), std::logic_error);
  router.connect_output(0, channel.out());
  EXPECT_THROW(router.connect_output(0, channel.out()), std::logic_error);
  EXPECT_THROW(router.connect_input(9, channel.in()), std::out_of_range);
}

TEST(RouterEdge, SingleVcNetworkStillDelivers) {
  NetworkSpec spec = two_router_spec(/*num_vcs=*/1, /*buffer_depth=*/4);
  spec.vc_classes = {{0, 1}};
  Network net(std::move(spec));
  for (int i = 0; i < 20; ++i) {
    net.nic().enqueue_packet(0, 1, 1, 4, 128, 0, 0, true);
  }
  ASSERT_TRUE(drain(net, 5000));
  EXPECT_EQ(net.nic().records().size(), 20u);
}

TEST(RouterEdge, DeepPacketsLargerThanBuffers) {
  // 12-flit packets through 4-deep buffers: pure wormhole spill-over.
  NetworkSpec spec = two_router_spec(4, 4);
  Network net(std::move(spec));
  for (int i = 0; i < 8; ++i) {
    net.nic().enqueue_packet(0, 1, 1, 12, 128, 0, 0, true);
  }
  ASSERT_TRUE(drain(net, 5000));
  ASSERT_EQ(net.nic().records().size(), 8u);
  for (const auto& rec : net.nic().records()) {
    EXPECT_EQ(rec.size_flits, 12);
  }
}

TEST(RouterEdge, DumpStateListsActivePackets) {
  Network net(two_router_spec());
  for (int i = 0; i < 4; ++i) {
    net.nic().enqueue_packet(0, 1, 1, 8, 128, 0, 0, true);
  }
  net.engine().run(6);  // mid-flight
  std::ostringstream os;
  net.router(0).dump_state(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("router 0"), std::string::npos);
  EXPECT_NE(dump.find("pkt="), std::string::npos);
  ASSERT_TRUE(drain(net, 2000));
}

TEST(RouterEdge, CountersMonotone) {
  Network net(two_router_spec());
  net.nic().enqueue_packet(0, 1, 1, 4, 128, 0, 0, true);
  net.engine().run(5);
  const auto mid = net.router(0).counters();
  ASSERT_TRUE(drain(net, 1000));
  const auto end = net.router(0).counters();
  EXPECT_GE(end.buffer_writes, mid.buffer_writes);
  EXPECT_GE(end.crossbar_flits, mid.crossbar_flits);
  EXPECT_EQ(end.buffer_writes, end.buffer_reads);  // drained: in == out
}

TEST(RouterEdge, RadixReportsMaxOfInOut) {
  std::vector<VcClassRange> classes = {{0, 4}};
  Router::Params params;
  params.num_inputs = 3;
  params.num_outputs = 17;
  struct DummyOracle final : RoutingOracle {
    RouteEntry route(RouterId, const Flit&) const override { return {}; }
  } oracle;
  Router router(params, &classes, &oracle);
  EXPECT_EQ(router.radix(), 17);
  EXPECT_EQ(router.num_inputs(), 3);
  EXPECT_EQ(router.num_outputs(), 17);
}

TEST(ChannelEdge, ConstructionValidation) {
  std::vector<VcClassRange> classes = {{0, 4}};
  EXPECT_THROW(Channel(MediumType::kElectrical, 0, 1, 4, 8, Length{}, &classes, "x"),
               std::invalid_argument);
  EXPECT_THROW(Channel(MediumType::kElectrical, 1, 0, 4, 8, Length{}, &classes, "x"),
               std::invalid_argument);
  EXPECT_THROW(Channel(MediumType::kElectrical, 1, 1, 0, 8, Length{}, &classes, "x"),
               std::invalid_argument);
  EXPECT_THROW(Channel(MediumType::kElectrical, 1, 1, 4, 8, Length{}, nullptr, "x"),
               std::invalid_argument);
}

TEST(ChannelEdge, VcAllocationRoundRobinsWithinClass) {
  std::vector<VcClassRange> classes = {{0, 4}};
  Channel channel(MediumType::kElectrical, 1, 1, 4, 8, Length{}, &classes, "rr");
  // Allocate twice: distinct VCs while both packets are open.
  const VcId a = channel.out()->alloc_vc(0, 0);
  const VcId b = channel.out()->alloc_vc(0, 0);
  EXPECT_NE(a, b);
  EXPECT_TRUE(channel.vc_busy(a));
  EXPECT_TRUE(channel.vc_busy(b));
  // Exhausting the class returns kInvalidId.
  channel.out()->alloc_vc(0, 0);
  channel.out()->alloc_vc(0, 0);
  EXPECT_EQ(channel.out()->alloc_vc(0, 0), kInvalidId);
}

TEST(ChannelEdge, SerializationGatesAcceptance) {
  std::vector<VcClassRange> classes = {{0, 2}};
  Channel channel(MediumType::kElectrical, 1, 4, 2, 8, Length{}, &classes, "slow");
  Flit flit;
  flit.vc = channel.out()->alloc_vc(0, 0);
  flit.head = true;
  ASSERT_TRUE(channel.out()->can_accept(flit, 0));
  channel.out()->accept(flit, 0);
  EXPECT_FALSE(channel.out()->can_accept(flit, 1));  // busy until cycle 4
  EXPECT_FALSE(channel.out()->can_accept(flit, 3));
  EXPECT_TRUE(channel.out()->can_accept(flit, 4));
}

TEST(ChannelEdge, FlitArrivesAfterLatency) {
  std::vector<VcClassRange> classes = {{0, 2}};
  Channel channel(MediumType::kElectrical, 3, 1, 2, 8, Length{}, &classes, "lat");
  Flit flit;
  flit.vc = channel.out()->alloc_vc(0, 0);
  flit.head = true;
  flit.tail = true;
  channel.out()->accept(flit, 10);
  channel.commit(10);
  EXPECT_EQ(channel.in()->poll(12), nullptr);
  const Flit* arrived = channel.in()->poll(13);
  ASSERT_NE(arrived, nullptr);
  EXPECT_EQ(arrived->vc, flit.vc);
  channel.in()->pop(13);
  EXPECT_EQ(channel.in()->poll(14), nullptr);
}

TEST(ChannelEdge, CreditReturnsAfterOneCycle) {
  std::vector<VcClassRange> classes = {{0, 2}};
  Channel channel(MediumType::kElectrical, 1, 1, 2, 3, Length{}, &classes, "cr");
  EXPECT_EQ(channel.credits(0), 3);
  Flit flit;
  flit.vc = channel.out()->alloc_vc(0, 0);
  flit.head = true;
  flit.tail = true;
  channel.out()->accept(flit, 0);
  EXPECT_EQ(channel.credits(flit.vc), 2);
  channel.commit(0);
  channel.in()->pop(1);
  channel.in()->push_credit(flit.vc, 1);
  channel.commit(1);
  channel.eval(2);  // credit arrival at now=2
  EXPECT_EQ(channel.credits(flit.vc), 3);
}

}  // namespace
}  // namespace ownsim

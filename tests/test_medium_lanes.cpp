// Direct unit tests for SharedMedium's per-class writer lanes (the deadlock-
// critical structure), arbitration variants, and parameter validation.
#include <gtest/gtest.h>

#include "network/shared_medium.hpp"

namespace ownsim {
namespace {

SharedMedium::Params base_params() {
  SharedMedium::Params params;
  params.medium = MediumType::kPhotonic;
  params.num_writers = 3;
  params.num_readers = 1;
  params.num_vcs = 4;
  params.buffer_depth = 8;
  params.max_packet_flits = 8;
  params.name = "unit";
  return params;
}

Flit make_flit(PacketId packet, bool head, bool tail, VcId lane) {
  Flit flit;
  flit.packet = packet;
  flit.dst = 0;
  flit.dst_router = 0;
  flit.head = head;
  flit.tail = tail;
  flit.vc = lane;
  flit.size_bits = 128;
  return flit;
}

TEST(MediumLanes, ValidatesParams) {
  std::vector<VcClassRange> classes = {{0, 4}};
  auto params = base_params();
  params.num_writers = 0;
  EXPECT_THROW(SharedMedium(params, &classes), std::invalid_argument);
  params = base_params();
  params.latency = 0;
  EXPECT_THROW(SharedMedium(params, &classes), std::invalid_argument);
  params = base_params();
  params.num_readers = 2;  // multiple readers need select_reader
  EXPECT_THROW(SharedMedium(params, &classes), std::invalid_argument);
  EXPECT_THROW(SharedMedium(base_params(), nullptr), std::invalid_argument);
}

TEST(MediumLanes, PerClassLanesAreIndependent) {
  // A packet open (and stuck) on class 0 must not block class-1 admission on
  // the same writer port — the property that broke OWN before the fix.
  std::vector<VcClassRange> classes = {{0, 2}, {2, 2}};
  SharedMedium medium(base_params(), &classes);
  OutputEndpoint* writer = medium.writer(0);

  const VcId lane0 = writer->alloc_vc(0, 0);
  EXPECT_EQ(lane0, 0);
  // Class 0 now has an open packet; a second class-0 packet is refused...
  EXPECT_EQ(writer->alloc_vc(0, 0), kInvalidId);
  // ...but class 1 is granted independently.
  const VcId lane1 = writer->alloc_vc(1, 0);
  EXPECT_EQ(lane1, 1);

  // Stage a head on each lane; both are accepted (separate stagings).
  Flit head0 = make_flit(1, true, false, lane0);
  Flit head1 = make_flit(2, true, false, lane1);
  ASSERT_TRUE(writer->can_accept(head0, 0));
  writer->accept(head0, 0);
  ASSERT_TRUE(writer->can_accept(head1, 0));
  writer->accept(head1, 0);
}

TEST(MediumLanes, LaneClosesOnTailAndReopens) {
  std::vector<VcClassRange> classes = {{0, 4}};
  SharedMedium medium(base_params(), &classes);
  OutputEndpoint* writer = medium.writer(1);
  const VcId lane = writer->alloc_vc(0, 0);
  writer->accept(make_flit(1, true, false, lane), 0);
  writer->accept(make_flit(1, false, true, lane), 0);
  // Tail closes the packet: a new allocation succeeds immediately...
  EXPECT_NE(writer->alloc_vc(0, 1), kInvalidId);
  // ...but the new head cannot enter until the staging drains.
  EXPECT_FALSE(writer->can_accept(make_flit(2, true, false, lane), 1));
}

TEST(MediumLanes, TransmitsWholePacketThenAdvancesToken) {
  std::vector<VcClassRange> classes = {{0, 4}};
  SharedMedium medium(base_params(), &classes);
  OutputEndpoint* writer = medium.writer(0);
  const VcId lane = writer->alloc_vc(0, 0);
  writer->accept(make_flit(7, true, false, lane), 0);
  writer->accept(make_flit(7, false, true, lane), 0);
  medium.commit(0);

  // Step the medium until both flits are delivered.
  Cycle now = 1;
  InputEndpoint* reader = medium.reader(0);
  int delivered = 0;
  for (; now < 40 && delivered < 2; ++now) {
    medium.eval(now);
    medium.commit(now);
    while (const Flit* flit = reader->poll(now)) {
      EXPECT_EQ(flit->packet, 7);
      reader->pop(now);
      reader->push_credit(flit->vc, now);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(medium.counters().packets, 1);
  EXPECT_EQ(medium.counters().tx_bits, 2 * 128);
  EXPECT_FALSE(medium.transmitting());
}

TEST(MediumLanes, IdealArbitrationStartsFasterThanToken) {
  auto run = [&](ArbitrationKind arbitration) {
    std::vector<VcClassRange> classes = {{0, 4}};
    auto params = base_params();
    params.num_writers = 16;
    params.arbitration = arbitration;
    SharedMedium medium(params, &classes);
    // Writer 9 has a packet; measure cycles until transmission starts.
    OutputEndpoint* writer = medium.writer(9);
    const VcId lane = writer->alloc_vc(0, 0);
    writer->accept(make_flit(1, true, true, lane), 0);
    medium.commit(0);
    Cycle now = 1;
    for (; now < 100; ++now) {
      medium.eval(now);
      medium.commit(now);
      if (medium.transmitting() || medium.counters().flits > 0) break;
    }
    return now;
  };
  const Cycle token_start = run(ArbitrationKind::kTokenRing);
  const Cycle ideal_start = run(ArbitrationKind::kIdeal);
  EXPECT_LE(ideal_start, 2);
  EXPECT_GE(token_start, 9);  // token must walk to writer 9
}

TEST(MediumLanes, MulticastCountsEveryListener) {
  std::vector<VcClassRange> classes = {{0, 4}};
  auto params = base_params();
  params.num_writers = 2;
  params.num_readers = 3;
  params.multicast_rx = true;
  params.select_reader = [](NodeId, RouterId) { return 2; };
  SharedMedium medium(params, &classes);
  OutputEndpoint* writer = medium.writer(0);
  const VcId lane = writer->alloc_vc(0, 0);
  writer->accept(make_flit(1, true, true, lane), 0);
  medium.commit(0);
  for (Cycle now = 1; now < 20; ++now) {
    medium.eval(now);
    medium.commit(now);
  }
  EXPECT_EQ(medium.counters().tx_bits, 128);
  EXPECT_EQ(medium.counters().rx_bits, 3 * 128);
  // Delivery only at the intended reader.
  EXPECT_EQ(medium.reader(0)->poll(19), nullptr);
  EXPECT_EQ(medium.reader(1)->poll(19), nullptr);
  EXPECT_NE(medium.reader(2)->poll(19), nullptr);
}

}  // namespace
}  // namespace ownsim

#!/usr/bin/env python3
"""Self-tests for tools/ownsim_check.py.

Each fixture under tests/ownsim_check_fixtures/ is a miniature repo tree:
the *_bad trees must each trip exactly their target rule (nonzero exit, the
rule id in the report), the clean tree must pass, and the real repo tree
must pass with the shipped (empty) allowlist. Suppression markers and the
allowlist mechanics are exercised explicitly.

Run:  python3 tests/test_ownsim_check.py        (from anywhere)
Exit: 0 all checks pass, 1 otherwise.
"""
from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CHECKER = ROOT / "tools" / "ownsim_check.py"
FIXTURES = ROOT / "tests" / "ownsim_check_fixtures"

# fixture dir -> (rule id, expected finding count with the text backend)
BAD_FIXTURES = {
    "unordered_iteration_bad": ("unordered-iteration", 3),
    "pointer_key_bad": ("pointer-ordered-key", 2),
    "clocked_missing_idle_bad": ("clocked-idle-contract", 1),
    "raw_unit_double_bad": ("raw-unit-double", 3),
    "obs_discipline_bad": ("obs-counter-discipline", 2),
}

failures: list[str] = []


def fail(message: str) -> None:
    failures.append(message)
    print(f"FAIL: {message}")


def ok(message: str) -> None:
    print(f"ok: {message}")


def run_checker(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECKER), "--backend", "text", *args],
        capture_output=True, text=True)


def check_bad_fixtures() -> None:
    for name, (rule, count) in sorted(BAD_FIXTURES.items()):
        root = FIXTURES / name
        with tempfile.TemporaryDirectory() as tmp:
            stats = Path(tmp) / "stats.json"
            proc = run_checker("--root", str(root),
                               "--allowlist",
                               str(ROOT / "tools/ownsim_check_allow.json"),
                               "--stats-json", str(stats))
            if proc.returncode != 1:
                fail(f"{name}: expected exit 1, got {proc.returncode}\n"
                     f"{proc.stdout}{proc.stderr}")
                continue
            if f"[{rule}]" not in proc.stdout:
                fail(f"{name}: report does not mention [{rule}]:\n"
                     f"{proc.stdout}")
                continue
            counts = json.loads(stats.read_text())["rules"]
            if counts.get(rule) != count:
                fail(f"{name}: expected {count} {rule} finding(s), "
                     f"stats say {counts.get(rule)}")
                continue
            other = {r: c for r, c in counts.items() if r != rule and c}
            if other:
                fail(f"{name}: unexpected findings from other rules: {other}")
                continue
            ok(f"{name}: trips {rule} x{count} and nothing else")


def check_single_rule_selection() -> None:
    # --rules restricts the run: the unordered fixture is clean under a
    # rule set that excludes its violation.
    proc = run_checker("--root", str(FIXTURES / "unordered_iteration_bad"),
                       "--rules", "pointer-ordered-key")
    if proc.returncode != 0:
        fail(f"--rules subset should pass: {proc.stdout}{proc.stderr}")
    else:
        ok("--rules subsetting works")
    proc = run_checker("--root", str(FIXTURES / "clean"),
                       "--rules", "no-such-rule")
    if proc.returncode != 2:
        fail(f"unknown rule id should exit 2, got {proc.returncode}")
    else:
        ok("unknown rule id rejected with exit 2")


def check_clean_fixture() -> None:
    proc = run_checker("--root", str(FIXTURES / "clean"),
                       "--allowlist",
                       str(ROOT / "tools/ownsim_check_allow.json"))
    if proc.returncode != 0:
        fail(f"clean fixture should pass:\n{proc.stdout}{proc.stderr}")
    else:
        ok("clean fixture passes (incl. inline suppression marker)")


def check_suppression_is_rule_specific() -> None:
    # The clean fixture's marker names unordered-iteration; rewriting it to
    # name a different rule must bring the finding back.
    engine = (FIXTURES / "clean" / "src" / "sim" / "engine.hpp").read_text()
    with tempfile.TemporaryDirectory() as tmp:
        bad = Path(tmp) / "src" / "sim"
        bad.mkdir(parents=True)
        (bad / "engine.hpp").write_text(engine.replace(
            "allow(unordered-iteration)", "allow(pointer-ordered-key)"))
        proc = run_checker("--root", tmp)
        if proc.returncode != 1 or "[unordered-iteration]" not in proc.stdout:
            fail("suppression marker for the wrong rule must not suppress")
        else:
            ok("suppression markers are rule-specific")


def check_allowlist_mechanics() -> None:
    root = FIXTURES / "pointer_key_bad"
    with tempfile.TemporaryDirectory() as tmp:
        allow = Path(tmp) / "allow.json"
        allow.write_text(json.dumps({
            "pointer-ordered-key": [
                {"file": "src/network/routes.hpp",
                 "reason": "test waiver"}]}))
        stats = Path(tmp) / "stats.json"
        proc = run_checker("--root", str(root), "--allowlist", str(allow),
                           "--stats-json", str(stats))
        if proc.returncode != 0:
            fail(f"allowlisted fixture should pass:\n{proc.stdout}")
        elif json.loads(stats.read_text())["allowlisted"] != 2:
            fail("stats should count 2 allowlisted findings")
        else:
            ok("allowlist waives per (rule, file) and is counted in stats")

        # Malformed entries are a hard error, not a silent skip.
        allow.write_text(json.dumps({"pointer-ordered-key": ["routes.hpp"]}))
        proc = run_checker("--root", str(root), "--allowlist", str(allow))
        if proc.returncode == 0:
            fail("malformed allowlist entry must not pass")
        else:
            ok("malformed allowlist entries are rejected")


def check_shipped_allowlist_policy() -> None:
    # The determinism-critical rules must hold on the real tree with ZERO
    # allowlist entries (fix the code, not the list).
    shipped = json.loads(
        (ROOT / "tools" / "ownsim_check_allow.json").read_text())
    for rule in ("unordered-iteration", "clocked-idle-contract"):
        if shipped.get(rule):
            fail(f"shipped allowlist must stay empty for {rule}")
            return
    ok("shipped allowlist has zero entries for the determinism rules")


def check_real_tree() -> None:
    proc = run_checker("--root", str(ROOT))
    if proc.returncode != 0:
        fail(f"the real tree must pass ownsim_check:\n"
             f"{proc.stdout}{proc.stderr}")
    else:
        ok("real tree passes all rules")


def main() -> int:
    check_bad_fixtures()
    check_single_rule_selection()
    check_clean_fixture()
    check_suppression_is_rule_specific()
    check_allowlist_mechanics()
    check_shipped_allowlist_policy()
    check_real_tree()
    if failures:
        print(f"\ntest_ownsim_check: {len(failures)} failure(s)")
        return 1
    print("\ntest_ownsim_check: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Tests for the photonic component/loss models, anchored to the paper's §I
// scalability numbers.
#include <gtest/gtest.h>

#include "photonic/loss_budget.hpp"
#include "photonic/ring_budget.hpp"

namespace ownsim {
namespace {

TEST(RingBudget, PaperNumbersAt64Nodes) {
  // "a 64x64 crossbar using photonics will require 448 modulators,
  //  7 waveguides and 28224 photodetectors using SWMR".
  const PhotonicBudget budget = swmr_crossbar_budget(64);
  EXPECT_EQ(budget.modulators, 448);
  EXPECT_EQ(budget.waveguides, 7 * 64 / 64);
  EXPECT_EQ(budget.detectors, 28224);
}

TEST(RingBudget, PaperNumbersAt1024Nodes) {
  // "approximately 7168 modulators, 112 waveguides, and 7.3 million
  //  photodetectors which is prohibitive".
  const PhotonicBudget budget = swmr_crossbar_budget(1024);
  EXPECT_EQ(budget.modulators, 7168);
  EXPECT_EQ(budget.waveguides, 112);
  EXPECT_NEAR(static_cast<double>(budget.detectors), 7.3e6, 0.1e6);
}

TEST(RingBudget, OptXbExceedsMillionRings) {
  // §V.B: "designing optical snake-like waveguide interconnecting 64 routers
  // with 64 wavelengths will require more than a million ring resonators"
  // (Corona's 4-wide waveguide bundles).
  const PhotonicBudget budget = mwsr_crossbar_budget(64, 64, 4);
  EXPECT_GT(budget.rings(), 1'000'000);
}

TEST(RingBudget, OwnNeedsFarFewerRingsThanOptXb) {
  const PhotonicBudget own = own_photonic_budget(4, 4);
  const PhotonicBudget optxb = mwsr_crossbar_budget(64, 64, 4);
  EXPECT_LT(own.rings() * 100, optxb.rings());
  EXPECT_EQ(own.waveguides, 64);
}

TEST(RingBudget, RejectsDegenerateInputs) {
  EXPECT_THROW(swmr_crossbar_budget(1), std::invalid_argument);
  EXPECT_THROW(mwsr_crossbar_budget(4, 0), std::invalid_argument);
}

TEST(LossBudget, AccumulatesAllComponents) {
  LossBudget budget;
  const Decibels loss = budget.path_loss(2.5_cm, 60, 4);
  // 1 coupler + 2 splitter + 1.25 waveguide + 0.6 rings + 0.5 drop = 5.35 dB.
  EXPECT_NEAR(loss.db(), 5.35, 1e-9);
}

TEST(LossBudget, LaserPowerCoversLossAndWallplug) {
  LossBudget budget;
  const Power per_lambda = budget.laser_power_per_lambda(2.5_cm, 60, 4);
  // -17 dBm sensitivity + 5.35 dB loss = -11.65 dBm ~ 68 uW.
  EXPECT_NEAR(per_lambda.in(1.0_uw), 68.4, 1.0);
  EXPECT_NEAR(budget.laser_wallplug(2.5_cm, 60, 4, 4).value(),
              4.0 * per_lambda.value() / 0.3, 1e-9);
}

TEST(LossBudget, MoreRingsMoreLoss) {
  LossBudget budget;
  EXPECT_GT(budget.path_loss(5.0_cm, 4032, 6), budget.path_loss(5.0_cm, 63, 6));
}

}  // namespace
}  // namespace ownsim

// Integration tests for the router/channel/NIC core on tiny hand-built
// networks: delivery, latency, ordering, wormhole flow control, credits.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "network/network.hpp"

namespace ownsim {
namespace {

using testing::drain;
using testing::ring_spec;
using testing::two_router_spec;

void send(Network& net, NodeId src, NodeId dst, int flits = 4) {
  const int cls = net.injection_vc_class(src, dst);
  net.nic().enqueue_packet(src, dst, net.router_of(dst), flits, 128, cls,
                           net.engine().now(), true);
}

TEST(NetworkBasic, SinglePacketDelivered) {
  Network net(two_router_spec());
  send(net, 0, 1);
  ASSERT_TRUE(drain(net, 200));
  ASSERT_EQ(net.nic().records().size(), 1u);
  const PacketRecord& rec = net.nic().records()[0];
  EXPECT_EQ(rec.src, 0);
  EXPECT_EQ(rec.dst, 1);
  EXPECT_EQ(rec.size_flits, 4);
  EXPECT_EQ(rec.hops, 2);  // src router + dst router traversals
}

TEST(NetworkBasic, ZeroLoadLatencyMatchesPipelineModel) {
  // Hop anatomy: inject channel (1) + per-router ~4 stage cycles + link
  // latency. For 2 routers the total should land in a tight window.
  Network net(two_router_spec());
  send(net, 0, 1, 1);  // single-flit packet
  ASSERT_TRUE(drain(net, 200));
  const PacketRecord& rec = net.nic().records()[0];
  const Cycle lat = rec.total_latency();
  EXPECT_GE(lat, 8);
  EXPECT_LE(lat, 16);
}

TEST(NetworkBasic, SelfTrafficLoopsThroughLocalRouter) {
  Network net(two_router_spec());
  send(net, 0, 0);
  ASSERT_TRUE(drain(net, 200));
  ASSERT_EQ(net.nic().records().size(), 1u);
  EXPECT_EQ(net.nic().records()[0].hops, 1);
}

TEST(NetworkBasic, PacketsBetweenSamePairStayOrdered) {
  Network net(two_router_spec());
  for (int i = 0; i < 20; ++i) send(net, 0, 1);
  ASSERT_TRUE(drain(net, 2000));
  ASSERT_EQ(net.nic().records().size(), 20u);
  PacketId prev = -1;
  for (const auto& rec : net.nic().records()) {
    EXPECT_GT(rec.packet, prev);  // same source VC class: FIFO per pair
    prev = rec.packet;
  }
}

TEST(NetworkBasic, BidirectionalTrafficBothDelivered) {
  Network net(two_router_spec());
  for (int i = 0; i < 10; ++i) {
    send(net, 0, 1);
    send(net, 1, 0);
  }
  ASSERT_TRUE(drain(net, 2000));
  EXPECT_EQ(net.nic().records().size(), 20u);
}

TEST(NetworkBasic, SerializationDelaySlowsLink) {
  Network fast(two_router_spec(4, 8, 1, 1));
  Network slow(two_router_spec(4, 8, 1, 4));
  send(fast, 0, 1, 4);
  send(slow, 0, 1, 4);
  ASSERT_TRUE(drain(fast, 500));
  ASSERT_TRUE(drain(slow, 500));
  const Cycle f = fast.nic().records()[0].total_latency();
  const Cycle s = slow.nic().records()[0].total_latency();
  // 4 flits at 4 cycles/flit add ~3*3 extra serialization cycles.
  EXPECT_GE(s, f + 6);
}

TEST(NetworkBasic, LinkLatencyAddsUp) {
  Network near(two_router_spec(4, 8, 1, 1));
  Network far(two_router_spec(4, 8, 9, 1));
  send(near, 0, 1, 1);
  send(far, 0, 1, 1);
  ASSERT_TRUE(drain(near, 500));
  ASSERT_TRUE(drain(far, 500));
  EXPECT_EQ(far.nic().records()[0].total_latency(),
            near.nic().records()[0].total_latency() + 8);
}

TEST(NetworkBasic, CreditsRecoverAfterBurst) {
  Network net(two_router_spec(2, 2));  // tiny buffers force backpressure
  for (int i = 0; i < 50; ++i) send(net, 0, 1, 4);
  ASSERT_TRUE(drain(net, 20000));
  EXPECT_EQ(net.nic().records().size(), 50u);
  // After drain, sender-side credits must be fully restored.
  const Channel& fwd = net.network_channel(0);
  for (VcId vc = 0; vc < fwd.num_vcs(); ++vc) {
    EXPECT_EQ(fwd.credits(vc), 2) << "vc " << vc;
    EXPECT_FALSE(fwd.vc_busy(vc));
  }
}

TEST(NetworkBasic, RingAllToAllDelivers) {
  const int n = 8;
  Network net(ring_spec(n));
  int sent = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      send(net, s, d);
      ++sent;
    }
  }
  ASSERT_TRUE(drain(net, 50000));
  EXPECT_EQ(net.nic().records().size(), static_cast<std::size_t>(sent));
}

TEST(NetworkBasic, RingRandomStressDrains) {
  const int n = 6;
  Network net(ring_spec(n, 4, 4));
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<NodeId>(rng.below(n));
    const auto d = static_cast<NodeId>(rng.below(n));
    send(net, s, d, 1 + static_cast<int>(rng.below(6)));
  }
  ASSERT_TRUE(drain(net, 200000));
  EXPECT_EQ(net.nic().records().size(), 500u);
}

TEST(NetworkBasic, HopCountsMatchRingDistance) {
  const int n = 8;
  Network net(ring_spec(n));
  send(net, 1, 5, 1);
  ASSERT_TRUE(drain(net, 1000));
  // 1 -> 5 clockwise = 4 links = 5 router traversals.
  EXPECT_EQ(net.nic().records()[0].hops, 5);
}

TEST(NetworkBasic, CountersTrackTraffic) {
  Network net(two_router_spec());
  for (int i = 0; i < 5; ++i) send(net, 0, 1, 4);
  ASSERT_TRUE(drain(net, 2000));
  EXPECT_EQ(net.network_channel(0).counters().flits, 20);
  EXPECT_EQ(net.network_channel(0).counters().bits, 20 * 128);
  EXPECT_EQ(net.network_channel(1).counters().flits, 0);
  // Each flit is buffered and crosses the crossbar at both routers.
  EXPECT_EQ(net.router(0).counters().crossbar_flits, 20);
  EXPECT_EQ(net.router(1).counters().crossbar_flits, 20);
  EXPECT_EQ(net.router(0).counters().route_computations, 5);
}

TEST(NetworkBasic, ValidateRejectsBadSpecs) {
  {
    NetworkSpec spec = two_router_spec();
    spec.links[0].src_port = 7;  // out of range
    EXPECT_THROW(Network net(std::move(spec)), std::runtime_error);
  }
  {
    NetworkSpec spec = two_router_spec();
    spec.links.push_back(spec.links[0]);  // double-wired port
    EXPECT_THROW(Network net(std::move(spec)), std::runtime_error);
  }
  {
    NetworkSpec spec = two_router_spec();
    spec.route_table[0][1].out_port = 3;  // bad route target
    EXPECT_THROW(Network net(std::move(spec)), std::runtime_error);
  }
  {
    NetworkSpec spec = two_router_spec();
    spec.vc_classes = {{0, 9}};  // exceeds num_vcs
    EXPECT_THROW(Network net(std::move(spec)), std::runtime_error);
  }
}

}  // namespace
}  // namespace ownsim

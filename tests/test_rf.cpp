// Tests for the RF behavioral models against the paper's published anchors
// (Fig 3 link budget, Fig 4 oscillator / PA / LNA numbers).
#include <gtest/gtest.h>

#include "rf/ber.hpp"
#include "rf/link_budget.hpp"
#include "rf/lna.hpp"
#include "rf/oscillator.hpp"
#include "rf/pa.hpp"

namespace ownsim {
namespace {

// ---- Fig 3: link budget -------------------------------------------------------

TEST(LinkBudget, PaperAnchor32GbpsIsotropic50mm) {
  // "the maximum power required for an OOK transmitter is >= 4 dBm for a
  //  maximum distance of 50 mm" at 32 Gb/s, 90 GHz, 0 dB directivity.
  LinkBudget budget;
  const double tx = budget.required_tx_dbm(0.050);
  EXPECT_GE(tx, 4.0);
  EXPECT_LE(tx, 6.0);  // and not wildly above
}

TEST(LinkBudget, PowerGrowsWithDistance) {
  LinkBudget budget;
  double prev = -100;
  for (double mm = 5; mm <= 50; mm += 5) {
    const double tx = budget.required_tx_dbm(mm * 1e-3);
    EXPECT_GT(tx, prev);
    prev = tx;
  }
  // Free space: +6 dB per doubling.
  EXPECT_NEAR(budget.required_tx_dbm(0.040) - budget.required_tx_dbm(0.020),
              6.02, 0.01);
}

TEST(LinkBudget, DirectivityReducesRequiredPower) {
  LinkBudget budget;
  const double iso = budget.required_tx_dbm(0.050, 0.0, 0.0);
  const double directional = budget.required_tx_dbm(0.050, 3.0, 3.0);
  EXPECT_NEAR(iso - directional, 6.0, 1e-9);
}

TEST(LinkBudget, SensitivityScalesWithRate) {
  LinkBudget::Params p16;
  p16.data_rate_bps = 16e9;
  const double s32 = LinkBudget().sensitivity_dbm();
  const double s16 = LinkBudget(p16).sensitivity_dbm();
  EXPECT_NEAR(s32 - s16, 3.01, 0.01);  // half the rate = 3 dB more sensitive
}

TEST(LinkBudget, MarginClosesAtRequiredPower) {
  LinkBudget budget;
  const double tx = budget.required_tx_dbm(0.030);
  EXPECT_NEAR(budget.margin_db(tx, 0.030), 0.0, 1e-9);
  EXPECT_GT(budget.margin_db(tx + 2.0, 0.030), 1.9);
}

// ---- Fig 4a: Colpitts oscillator ------------------------------------------------

TEST(Oscillator, OscillatesAt90GHz) {
  ColpittsOscillator osc;
  EXPECT_NEAR(osc.frequency_hz() / 1e9, 90.0, 1.0);
}

TEST(Oscillator, PhaseNoiseMatchesPaperAnchor) {
  // "phase noise at 1 MHz offset is observed to be around -86 dBc/Hz".
  ColpittsOscillator osc;
  EXPECT_NEAR(osc.phase_noise_dbc_hz(1e6), -86.0, 2.0);
}

TEST(Oscillator, PhaseNoiseFallsWithOffset) {
  ColpittsOscillator osc;
  EXPECT_LT(osc.phase_noise_dbc_hz(10e6), osc.phase_noise_dbc_hz(1e6));
  // -20 dB/decade in the 1/f^2 region.
  EXPECT_NEAR(osc.phase_noise_dbc_hz(1e6) - osc.phase_noise_dbc_hz(10e6), 20.0,
              0.5);
}

TEST(Oscillator, PsdPeaksAtCarrier) {
  ColpittsOscillator osc;
  const auto sweep = osc.psd_sweep(80e9, 100e9, 201);
  double best_f = 0;
  double best = -1e9;
  for (const auto& [f, dbc] : sweep) {
    if (dbc > best) {
      best = dbc;
      best_f = f;
    }
  }
  EXPECT_NEAR(best_f / 1e9, 90.0, 0.2);
}

TEST(Oscillator, FrequencyFollowsTank) {
  ColpittsOscillator::Params params;
  params.inductance_h *= 4.0;  // f ~ 1/sqrt(LC): halve the frequency
  ColpittsOscillator slow(params);
  EXPECT_NEAR(slow.frequency_hz() / 1e9, 45.0, 1.0);
}

// ---- Fig 4b: class-AB PA --------------------------------------------------------

TEST(Pa, GainPeaksAt90GHzWith20GHzBand) {
  ClassAbPa pa;
  EXPECT_NEAR(pa.gain_db(90e9), 3.5, 1e-9);
  // ~20 GHz wide at 2 dB gain (i.e. 1.5 dB below peak... paper quotes the
  // band where gain >= 2 dB).
  EXPECT_NEAR(pa.gain_db(80e9), 2.0, 0.6);
  EXPECT_NEAR(pa.gain_db(100e9), 2.0, 0.6);
}

TEST(Pa, CompressionPointNearPaperValue) {
  // "1-dB compression point of ~5 dBm".
  ClassAbPa pa;
  EXPECT_NEAR(pa.p1db_dbm(), 5.0, 1.0);
}

TEST(Pa, DeliversRequiredRfPower) {
  // Link budget needs >= 4 dBm (~2.5 mW); saturated PA delivers it.
  ClassAbPa pa;
  const double saturated = pa.output_dbm(20.0, 90e9);
  EXPECT_GE(saturated, 4.0);
  // At 14 mW DC this is a plausible class-AB efficiency.
  EXPECT_GT(pa.efficiency(saturated), 0.15);
  EXPECT_LT(pa.efficiency(saturated), 0.5);
}

TEST(Pa, SmallSignalIsLinear) {
  ClassAbPa pa;
  const double g1 = pa.output_dbm(-20.0, 90e9) - (-20.0);
  const double g2 = pa.output_dbm(-30.0, 90e9) - (-30.0);
  EXPECT_NEAR(g1, g2, 0.05);
  EXPECT_NEAR(g1, 3.5, 0.1);
}

// ---- Fig 4c: LNA -----------------------------------------------------------------

TEST(Lna, TenDbGainAround90GHz) {
  WidebandLna lna;
  EXPECT_NEAR(lna.gain_db(90e9), 10.0, 1e-9);
  EXPECT_NEAR(lna.gain_db(90e9 + lna.bandwidth_3db_hz() / 2), 7.0, 0.01);
}

TEST(Lna, RejectsBadParams) {
  WidebandLna::Params params;
  params.gain_bw_hz = 0;
  EXPECT_THROW(WidebandLna{params}, std::invalid_argument);
}

// ---- OOK BER ---------------------------------------------------------------------

TEST(Ber, QFunctionKnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.1587, 1e-4);
  EXPECT_NEAR(q_function(3.0), 1.35e-3, 1e-5);
}

TEST(Ber, MonotoneInSnr) {
  double prev = 1.0;
  for (double snr = 0.0; snr <= 20.0; snr += 2.0) {
    const double ber = ook_ber(snr);
    EXPECT_LT(ber, prev);
    prev = ber;
  }
}

TEST(Ber, RequiredSnrMatchesLinkBudgetConstant) {
  // The link budget uses 17 dB for BER 1e-12; the BER model must agree.
  EXPECT_NEAR(required_snr_db(1e-12), 17.0, 0.3);
  EXPECT_NEAR(ook_ber(required_snr_db(1e-9)), 1e-9, 2e-10);
}

TEST(Ber, MarginImprovesBerSharply) {
  const double required = required_snr_db(1e-12);
  EXPECT_LT(ber_at_margin(required, 1.0), 1e-12);
  EXPECT_GT(ber_at_margin(required, -3.0), 1e-8);
}

TEST(Ber, RejectsBadTargets) {
  EXPECT_THROW(required_snr_db(0.0), std::invalid_argument);
  EXPECT_THROW(required_snr_db(0.7), std::invalid_argument);
}

}  // namespace
}  // namespace ownsim

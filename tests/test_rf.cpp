// Tests for the RF behavioral models against the paper's published anchors
// (Fig 3 link budget, Fig 4 oscillator / PA / LNA numbers).
#include <gtest/gtest.h>

#include "rf/ber.hpp"
#include "rf/link_budget.hpp"
#include "rf/lna.hpp"
#include "rf/oscillator.hpp"
#include "rf/pa.hpp"

namespace ownsim {
namespace {

// ---- Fig 3: link budget -------------------------------------------------------

TEST(LinkBudget, PaperAnchor32GbpsIsotropic50mm) {
  // "the maximum power required for an OOK transmitter is >= 4 dBm for a
  //  maximum distance of 50 mm" at 32 Gb/s, 90 GHz, 0 dB directivity.
  LinkBudget budget;
  const DbmPower tx = budget.required_tx(50.0_mm);
  EXPECT_GE(tx.dbm(), 4.0);
  EXPECT_LE(tx.dbm(), 6.0);  // and not wildly above
}

TEST(LinkBudget, PowerGrowsWithDistance) {
  LinkBudget budget;
  DbmPower prev{-100.0};
  for (double mm = 5; mm <= 50; mm += 5) {
    const DbmPower tx = budget.required_tx(mm * 1.0_mm);
    EXPECT_GT(tx.dbm(), prev.dbm());
    prev = tx;
  }
  // Free space: +6 dB per doubling.
  const Decibels doubling =
      budget.required_tx(40.0_mm) - budget.required_tx(20.0_mm);
  EXPECT_NEAR(doubling.db(), 6.02, 0.01);
}

TEST(LinkBudget, DirectivityReducesRequiredPower) {
  LinkBudget budget;
  const DbmPower iso = budget.required_tx(50.0_mm, Decibels{}, Decibels{});
  const DbmPower directional =
      budget.required_tx(50.0_mm, 3.0_dbi, 3.0_dbi);
  EXPECT_NEAR((iso - directional).db(), 6.0, 1e-9);
}

TEST(LinkBudget, SensitivityScalesWithRate) {
  LinkBudget::Params p16;
  p16.data_rate = 16.0_gbps;
  const DbmPower s32 = LinkBudget().sensitivity();
  const DbmPower s16 = LinkBudget(p16).sensitivity();
  EXPECT_NEAR((s32 - s16).db(), 3.01, 0.01);  // half the rate = 3 dB more sensitive
}

TEST(LinkBudget, MarginClosesAtRequiredPower) {
  LinkBudget budget;
  const DbmPower tx = budget.required_tx(30.0_mm);
  EXPECT_NEAR(budget.margin(tx, 30.0_mm).db(), 0.0, 1e-9);
  EXPECT_GT(budget.margin(tx + 2.0_db, 30.0_mm).db(), 1.9);
}

// ---- Fig 4a: Colpitts oscillator ------------------------------------------------

TEST(Oscillator, OscillatesAt90GHz) {
  ColpittsOscillator osc;
  EXPECT_NEAR(osc.frequency().in(1.0_ghz), 90.0, 1.0);
}

TEST(Oscillator, PhaseNoiseMatchesPaperAnchor) {
  // "phase noise at 1 MHz offset is observed to be around -86 dBc/Hz".
  ColpittsOscillator osc;
  EXPECT_NEAR(osc.phase_noise_dbc(1.0_mhz).db(), -86.0, 2.0);
}

TEST(Oscillator, PhaseNoiseFallsWithOffset) {
  ColpittsOscillator osc;
  EXPECT_LT(osc.phase_noise_dbc(10.0_mhz).db(), osc.phase_noise_dbc(1.0_mhz).db());
  // -20 dB/decade in the 1/f^2 region.
  const Decibels decade =
      osc.phase_noise_dbc(1.0_mhz) - osc.phase_noise_dbc(10.0_mhz);
  EXPECT_NEAR(decade.db(), 20.0, 0.5);
}

TEST(Oscillator, PsdPeaksAtCarrier) {
  ColpittsOscillator osc;
  const auto sweep = osc.psd_sweep(80.0_ghz, 100.0_ghz, 201);
  Frequency best_f;
  Decibels best{-1e9};
  for (const auto& [f, dbc] : sweep) {
    if (dbc > best) {
      best = dbc;
      best_f = f;
    }
  }
  EXPECT_NEAR(best_f.in(1.0_ghz), 90.0, 0.2);
}

TEST(Oscillator, FrequencyFollowsTank) {
  ColpittsOscillator::Params params;
  params.inductance *= 4.0;  // f ~ 1/sqrt(LC): halve the frequency
  ColpittsOscillator slow(params);
  EXPECT_NEAR(slow.frequency().in(1.0_ghz), 45.0, 1.0);
}

// ---- Fig 4b: class-AB PA --------------------------------------------------------

TEST(Pa, GainPeaksAt90GHzWith20GHzBand) {
  ClassAbPa pa;
  EXPECT_NEAR(pa.gain(90.0_ghz).db(), 3.5, 1e-9);
  // ~20 GHz wide at 2 dB gain (i.e. 1.5 dB below peak... paper quotes the
  // band where gain >= 2 dB).
  EXPECT_NEAR(pa.gain(80.0_ghz).db(), 2.0, 0.6);
  EXPECT_NEAR(pa.gain(100.0_ghz).db(), 2.0, 0.6);
}

TEST(Pa, CompressionPointNearPaperValue) {
  // "1-dB compression point of ~5 dBm".
  ClassAbPa pa;
  EXPECT_NEAR(pa.p1db().dbm(), 5.0, 1.0);
}

TEST(Pa, DeliversRequiredRfPower) {
  // Link budget needs >= 4 dBm (~2.5 mW); saturated PA delivers it.
  ClassAbPa pa;
  const DbmPower saturated = pa.output(20.0_dbm, 90.0_ghz);
  EXPECT_GE(saturated.dbm(), 4.0);
  // At 14 mW DC this is a plausible class-AB efficiency.
  EXPECT_GT(pa.efficiency(saturated), 0.15);
  EXPECT_LT(pa.efficiency(saturated), 0.5);
}

TEST(Pa, SmallSignalIsLinear) {
  ClassAbPa pa;
  const Decibels g1 = pa.output(-20.0_dbm, 90.0_ghz) - (-20.0_dbm);
  const Decibels g2 = pa.output(-30.0_dbm, 90.0_ghz) - (-30.0_dbm);
  EXPECT_NEAR(g1.db(), g2.db(), 0.05);
  EXPECT_NEAR(g1.db(), 3.5, 0.1);
}

// ---- Fig 4c: LNA -----------------------------------------------------------------

TEST(Lna, TenDbGainAround90GHz) {
  WidebandLna lna;
  EXPECT_NEAR(lna.gain(90.0_ghz).db(), 10.0, 1e-9);
  EXPECT_NEAR(lna.gain(90.0_ghz + lna.bandwidth_3db() / 2.0).db(), 7.0, 0.01);
}

TEST(Lna, RejectsBadParams) {
  WidebandLna::Params params;
  params.gain_bw = Frequency{};
  EXPECT_THROW(WidebandLna{params}, std::invalid_argument);
}

// ---- OOK BER ---------------------------------------------------------------------

TEST(Ber, QFunctionKnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.1587, 1e-4);
  EXPECT_NEAR(q_function(3.0), 1.35e-3, 1e-5);
}

TEST(Ber, MonotoneInSnr) {
  double prev = 1.0;
  for (double snr = 0.0; snr <= 20.0; snr += 2.0) {
    const double ber = ook_ber(Decibels{snr});
    EXPECT_LT(ber, prev);
    prev = ber;
  }
}

TEST(Ber, RequiredSnrMatchesLinkBudgetConstant) {
  // The link budget uses 17 dB for BER 1e-12; the BER model must agree.
  EXPECT_NEAR(required_snr(1e-12).db(), 17.0, 0.3);
  EXPECT_NEAR(ook_ber(required_snr(1e-9)), 1e-9, 2e-10);
}

TEST(Ber, MarginImprovesBerSharply) {
  const Decibels required = required_snr(1e-12);
  EXPECT_LT(ber_at_margin(required, 1.0_db), 1e-12);
  EXPECT_GT(ber_at_margin(required, -3.0_db), 1e-8);
}

TEST(Ber, RejectsBadTargets) {
  EXPECT_THROW(required_snr(0.0), std::invalid_argument);
  EXPECT_THROW(required_snr(0.7), std::invalid_argument);
}

TEST(Ber, RoundTripRequiredSnr) {
  // required_snr and ook_ber are exact inverses across the whole SNR range
  // the fault campaign draws operating points from.
  for (double db = 0.0; db <= 10.0; db += 0.5) {
    EXPECT_NEAR(required_snr(ook_ber(Decibels{db})).db(), db, 1e-6)
        << "snr " << db << " dB";
  }
}

TEST(Ber, MarginEdgeCases) {
  // Zero margin lands exactly on the design target of the 17 dB budget
  // point (BER 1e-12, cf. RequiredSnrMatchesLinkBudgetConstant).
  const Decibels required = required_snr(1e-12);
  EXPECT_NEAR(ber_at_margin(required, 0.0_db), 1e-12, 1e-13);
  // Negative margins worsen the BER monotonically but never past 1/2
  // (OOK noise floor) — the stress campaigns live on this branch.
  double prev = ber_at_margin(required, 0.0_db);
  for (double db = -1.0; db >= -12.0; db -= 1.0) {
    const double ber = ber_at_margin(required, Decibels{db});
    EXPECT_GT(ber, prev) << "margin " << db << " dB";
    EXPECT_LT(ber, 0.5) << "margin " << db << " dB";
    prev = ber;
  }
}

}  // namespace
}  // namespace ownsim

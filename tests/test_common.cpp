// Unit tests for src/common: RNG, statistics, ring buffer, config, units.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "common/config.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace ownsim {
namespace {

// ---- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42, 1);
  Rng b(42, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsAreDecorrelated) {
  Rng a(42, 0);
  Rng b(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  Rng rng(9);
  int counts[5] = {0, 0, 0, 0, 0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(3, 6));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(3) == 1 && seen.count(6) == 1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ---- RunningStat ------------------------------------------------------------

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a, b, all;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform() * 10;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

// ---- Histogram --------------------------------------------------------------

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(5.5);
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.counts()[0], 1);
  EXPECT_EQ(h.counts()[9], 1);
  EXPECT_EQ(h.counts()[5], 1);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// ---- RingBuffer -------------------------------------------------------------

TEST(RingBuffer, FifoOrderWithWraparound) {
  RingBuffer<int> rb(4);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) rb.push(round * 10 + i);
    EXPECT_TRUE(rb.full());
    for (int i = 0; i < 4; ++i) EXPECT_EQ(rb.pop(), round * 10 + i);
    EXPECT_TRUE(rb.empty());
  }
}

TEST(RingBuffer, AtIndexesFromFront) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.pop();
  rb.push(3);
  rb.push(4);  // wraps
  EXPECT_EQ(rb.at(0), 2);
  EXPECT_EQ(rb.at(1), 3);
  EXPECT_EQ(rb.at(2), 4);
  EXPECT_EQ(rb.free_slots(), 0u);
}

// ---- Config -----------------------------------------------------------------

TEST(Config, ParsesStringForms) {
  const Config c = Config::from_string("a=1, b = 2.5; name=own  flag=true");
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_DOUBLE_EQ(c.get_double("b", 0), 2.5);
  EXPECT_EQ(c.get_string("name", ""), "own");
  EXPECT_TRUE(c.get_bool("flag", false));
}

TEST(Config, FallbacksAndRequired) {
  const Config c = Config::from_string("x=3");
  EXPECT_EQ(c.get_int("missing", 42), 42);
  EXPECT_THROW(c.require_int("missing"), std::runtime_error);
  EXPECT_EQ(c.require_int("x"), 3);
}

TEST(Config, MalformedValuesThrow) {
  const Config c = Config::from_string("x=abc y=1.2.3 z=maybe");
  EXPECT_THROW(c.get_int("x", 0), std::runtime_error);
  EXPECT_THROW(c.get_double("y", 0), std::runtime_error);
  EXPECT_THROW(c.get_bool("z", false), std::runtime_error);
}

TEST(Config, MergeOverwrites) {
  Config a = Config::from_string("x=1 y=2");
  a.merge(Config::from_string("y=3 z=4"));
  EXPECT_EQ(a.get_int("y", 0), 3);
  EXPECT_EQ(a.get_int("z", 0), 4);
  EXPECT_EQ(a.to_string(), "x=1 y=3 z=4");
}

// ---- units ------------------------------------------------------------------

TEST(Units, DbmRoundTrip) {
  using namespace units;
  EXPECT_NEAR(watts_to_dbm(1e-3), 0.0, 1e-12);
  EXPECT_NEAR(watts_to_dbm(dbm_to_watts(7.0)), 7.0, 1e-9);
  EXPECT_NEAR(db_to_ratio(3.0103), 2.0, 1e-3);
}

TEST(Units, WavelengthAt90GHz) {
  EXPECT_NEAR(units::wavelength_m(90e9) * 1000.0, 3.33, 0.01);  // ~3.33 mm
}

}  // namespace
}  // namespace ownsim

// Tests for per-router power attribution and the thermal-proxy solver,
// including the §III.A corner-vs-center placement claim.
#include <gtest/gtest.h>

#include <numeric>

#include "power/thermal.hpp"
#include "topology/own.hpp"
#include "topology/registry.hpp"
#include "traffic/injector.hpp"

namespace ownsim {
namespace {

std::unique_ptr<Network> run_own(AntennaPlacement placement,
                                 double rate = 0.005, Cycle cycles = 6000) {
  TopologyOptions options;
  options.num_cores = 256;
  auto network =
      std::make_unique<Network>(build_own256_placed(options, placement));
  static std::vector<std::unique_ptr<Injector>> keepalive;
  TrafficPattern pattern(PatternKind::kUniform, 256);
  Injector::Params params;
  params.rate = rate;
  keepalive.push_back(
      std::make_unique<Injector>(network.get(), pattern, params));
  network->engine().add(keepalive.back().get());
  network->engine().run(cycles);
  return network;
}

TEST(PerRouterPower, SumsToModelTotalMinusOffChip) {
  auto network = run_own(AntennaPlacement::kCorners);
  const ChannelEnergyModel channels(OwnConfig::kConfig4, Scenario::kIdeal);
  const PowerParams params;
  const auto per_router = per_router_power(*network, params, &channels);
  const double sum =
      std::accumulate(per_router.begin(), per_router.end(), 0.0);
  EnergyModel model(params, channels);
  const PowerBreakdown breakdown = model.compute(*network);
  // Laser power is off-chip and deliberately excluded from the floorplan.
  EXPECT_NEAR(sum, breakdown.total_w() - breakdown.photonic_laser_w,
              1e-6 * breakdown.total_w());
}

TEST(PerRouterPower, GatewaysAreTheHottestRouters) {
  auto network = run_own(AntennaPlacement::kCorners);
  const ChannelEnergyModel channels(OwnConfig::kConfig4, Scenario::kIdeal);
  const auto power = per_router_power(*network, PowerParams{}, &channels);
  // The three hottest routers must be wireless gateways (tiles 0/3/12).
  std::vector<int> order(power.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                    [&](int a, int b) { return power[a] > power[b]; });
  for (int i = 0; i < 3; ++i) {
    const int tile = order[i] % 16;
    EXPECT_TRUE(own256_is_gateway_tile(tile)) << "tile " << tile;
  }
}

TEST(ThermalMap, PeakSitsAtTheSource) {
  ThermalMap::Params params;
  params.die = 50.0_mm;
  params.grid = 10;
  ThermalMap map(params);
  NetworkSpec spec;
  spec.routers.resize(2);
  spec.router_xy = {{5.0_mm, 5.0_mm}, {45.0_mm, 45.0_mm}};
  map.deposit(spec, {1.0, 0.1});
  const ThermalStats stats = map.solve();
  EXPECT_LT(stats.peak_x, 10.0_mm);
  EXPECT_LT(stats.peak_y, 10.0_mm);
  EXPECT_GT(stats.peak_c, stats.mean_c);
}

TEST(ThermalMap, AdjacentSourcesReinforce) {
  // The same total power concentrated in adjacent cells must yield a higher
  // peak than when spread to the die corners — the §III.A mechanism.
  ThermalMap::Params params;
  params.grid = 20;
  NetworkSpec spec;
  spec.routers.resize(4);

  ThermalMap spread(params);
  spec.router_xy = {{2.0_mm, 2.0_mm},
                    {48.0_mm, 2.0_mm},
                    {2.0_mm, 48.0_mm},
                    {48.0_mm, 48.0_mm}};
  spread.deposit(spec, {0.25, 0.25, 0.25, 0.25});

  ThermalMap packed(params);
  spec.router_xy = {{24.0_mm, 24.0_mm},
                    {26.0_mm, 24.0_mm},
                    {24.0_mm, 26.0_mm},
                    {26.0_mm, 26.0_mm}};
  packed.deposit(spec, {0.25, 0.25, 0.25, 0.25});

  EXPECT_GT(packed.solve().peak_c, 1.5 * spread.solve().peak_c);
}

TEST(ThermalMap, LinearInPower) {
  ThermalMap::Params params;
  params.grid = 8;
  NetworkSpec spec;
  spec.routers.resize(1);
  spec.router_xy = {{25.0_mm, 25.0_mm}};
  ThermalMap one(params);
  one.deposit(spec, {1.0});
  ThermalMap two(params);
  two.deposit(spec, {2.0});
  EXPECT_NEAR(two.solve().peak_c, 2.0 * one.solve().peak_c, 1e-9);
}

TEST(ThermalMap, RejectsBadInput) {
  ThermalMap::Params bad;
  bad.k_lateral = 0.3;  // 4k + leak >= 1
  EXPECT_THROW(ThermalMap{bad}, std::invalid_argument);

  ThermalMap map;
  NetworkSpec no_floorplan;
  no_floorplan.routers.resize(1);
  EXPECT_THROW(map.deposit(no_floorplan, {1.0}), std::invalid_argument);
}

TEST(Placement, CenterPlacementRunsAndIsHotter) {
  auto corners = run_own(AntennaPlacement::kCorners);
  auto center = run_own(AntennaPlacement::kCenter);
  EXPECT_GT(center->nic().packets_ejected(), 1000);  // functional

  const ChannelEnergyModel channels(OwnConfig::kConfig4, Scenario::kIdeal);
  auto stats_for = [&](Network& network) {
    ThermalMap map;
    map.deposit(network.spec(),
                per_router_power(network, PowerParams{}, &channels));
    return map.solve();
  };
  const ThermalStats corner_stats = stats_for(*corners);
  const ThermalStats center_stats = stats_for(*center);
  EXPECT_GT(center_stats.peak_c, corner_stats.peak_c);
  EXPECT_GT(center_stats.stddev_c, corner_stats.stddev_c);
}

}  // namespace
}  // namespace ownsim

// Negative-compilation cases for the quantity/dimension system.
//
// Each CASE_* macro selects one snippet that MUST fail to compile; CTest
// builds the matching object target and asserts failure (WILL_FAIL). CASE_OK
// is the positive control proving the harness itself builds — if it breaks,
// every WILL_FAIL case would "pass" vacuously.
#include "common/quantity.hpp"
#include "common/units.hpp"

using namespace ownsim;

#if defined(CASE_OK)

// Positive control: dimensionally sound arithmetic compiles.
constexpr Length d = 2.0 * 25.0_mm + 1.0_cm;
constexpr Frequency f = 60.0_ghz;
constexpr Length lambda = units::wavelength(f);
constexpr Decibels gain = 3.0_db + 2.0_dbi;
constexpr DbmPower tx = 4.0_dbm + gain;
constexpr Decibels delta = tx - 0.0_dbm;
constexpr double ratio = d / lambda;  // Dimensionless -> double is implicit
static_assert(ratio > 0.0);
static_assert(delta.db() > 0.0);

#elif defined(CASE_HZ_PLUS_METERS)

// Frequency + Length has no meaning; operator+ requires matching dimensions.
constexpr auto bad = 60.0_ghz + 5.0_mm;

#elif defined(CASE_DB_AS_LINEAR_RATIO)

// Decibels is log-domain; it must not scale a linear quantity directly.
constexpr Power bad = Power{1.0} * 3.0_db;

#elif defined(CASE_DBM_PLUS_DBM)

// Adding two absolute power levels is deleted (dBm + dBm is nonsense;
// dBm + dB is the sanctioned form).
constexpr auto bad = 4.0_dbm + 4.0_dbm;

#elif defined(CASE_QUANTITY_TO_DOUBLE)

// Dimensioned quantities never decay to double implicitly; call sites must
// pick a unit with .in(...) or take the SI value with .value().
constexpr double bad = 60.0_ghz;

#elif defined(CASE_LENGTH_FOR_FREQUENCY)

// wavelength() takes a Frequency; a Length argument must not convert.
constexpr Length bad = units::wavelength(5.0_mm);

#else
#error "compile_fail.cpp requires exactly one CASE_* macro"
#endif

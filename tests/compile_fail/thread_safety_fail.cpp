// Negative-compilation tests for the thread-safety annotations
// (common/thread_annotations.hpp). Compiled only under Clang with
// -Wthread-safety -Werror=thread-safety-analysis (see CMakeLists.txt):
// GCC expands the annotations to nothing, so it can neither check nor
// fail these cases.
//
//   CASE_TS_OK               positive control: disciplined code compiles.
//   CASE_TS_UNGUARDED_WRITE  writing a GUARDED_BY field without the lock
//                            must be rejected.
//   CASE_TS_REQUIRES_UNLOCKED calling an OWNSIM_REQUIRES(mu_) method
//                            without holding mu_ must be rejected.
//
// The analysis diagnoses a violation at the offending function DEFINITION,
// so each bad body exists only under its case macro — the OK control class
// is fully disciplined.

#include "common/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    ownsim::MutexLock lock(mu_);
    balance_ += amount;
  }

  void adjust_locked(int amount) OWNSIM_REQUIRES(mu_) { balance_ += amount; }

  void adjust_with_lock(int amount) {
    ownsim::MutexLock lock(mu_);
    adjust_locked(amount);
  }

#if defined(CASE_TS_UNGUARDED_WRITE)
  void deposit_unguarded(int amount) {
    balance_ += amount;  // BAD: guarded field written without mu_
  }
#endif

#if defined(CASE_TS_REQUIRES_UNLOCKED)
  void adjust_without_lock(int amount) {
    adjust_locked(amount);  // BAD: REQUIRES(mu_) callee, mu_ not held
  }
#endif

 private:
  ownsim::Mutex mu_;
  int balance_ OWNSIM_GUARDED_BY(mu_) = 0;
};

}  // namespace

#if defined(CASE_TS_OK) || defined(CASE_TS_UNGUARDED_WRITE) || \
    defined(CASE_TS_REQUIRES_UNLOCKED)
void compile_fail_probe() {
  Account account;
  account.deposit(1);
  account.adjust_with_lock(2);
#if defined(CASE_TS_UNGUARDED_WRITE)
  account.deposit_unguarded(3);
#endif
#if defined(CASE_TS_REQUIRES_UNLOCKED)
  account.adjust_without_lock(4);
#endif
}
#else
#error "define exactly one CASE_TS_* macro"
#endif

// Tests for trace-driven traffic: parsing, round-tripping, the bursty
// generator's statistics, and end-to-end replay through a live network.
#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"
#include "topology/registry.hpp"
#include "traffic/trace.hpp"

namespace ownsim {
namespace {

TEST(Trace, ParsesTextFormat) {
  std::istringstream in(
      "# demo trace\n"
      "0 1 2 4\n"
      "0 3 0 1\n"
      "5 2 1 8   # inline comment\n"
      "\n");
  const Trace trace = Trace::parse(in);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.records()[0].cycle, 0);
  EXPECT_EQ(trace.records()[2].cycle, 5);
  EXPECT_EQ(trace.records()[2].size_flits, 8);
  EXPECT_EQ(trace.max_node(), 4);
  EXPECT_EQ(trace.total_flits(), 13);
  EXPECT_EQ(trace.duration(), 6);
}

TEST(Trace, RejectsMalformedInput) {
  std::istringstream missing("3 1 2\n");
  EXPECT_THROW(Trace::parse(missing), std::runtime_error);
  std::istringstream negative("3 1 2 -1\n");
  EXPECT_THROW(Trace::parse(negative), std::runtime_error);
  std::istringstream unordered("5 1 2 4\n3 1 2 4\n");
  EXPECT_THROW(Trace::parse(unordered), std::runtime_error);
}

TEST(Trace, SaveParseRoundTrip) {
  BurstyTraceParams params;
  params.num_nodes = 8;
  params.duration = 500;
  const Trace original = generate_bursty_trace(params);
  std::stringstream buffer;
  original.save(buffer);
  const Trace reloaded = Trace::parse(buffer);
  ASSERT_EQ(reloaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reloaded.records()[i].cycle, original.records()[i].cycle);
    EXPECT_EQ(reloaded.records()[i].src, original.records()[i].src);
    EXPECT_EQ(reloaded.records()[i].dst, original.records()[i].dst);
  }
}

TEST(BurstyTrace, IsDeterministicPerSeed) {
  BurstyTraceParams params;
  params.num_nodes = 8;
  params.duration = 300;
  const Trace a = generate_bursty_trace(params);
  const Trace b = generate_bursty_trace(params);
  EXPECT_EQ(a.size(), b.size());
  params.seed = 2;
  const Trace c = generate_bursty_trace(params);
  EXPECT_NE(a.size(), c.size());  // overwhelmingly likely
}

TEST(BurstyTrace, IsBurstierThanPoisson) {
  // Over-dispersion shows in windowed counts: the on/off phases correlate
  // arrivals, so 100-cycle window counts have variance well above their
  // mean, while a Poisson process has var == mean at any window size.
  BurstyTraceParams params;
  params.num_nodes = 16;
  params.duration = 20000;
  const Trace trace = generate_bursty_trace(params);
  const Cycle window = 100;
  std::vector<int> per_window(
      static_cast<std::size_t>(params.duration / window), 0);
  for (const auto& rec : trace.records()) {
    ++per_window[static_cast<std::size_t>(rec.cycle / window)];
  }
  double mean = 0;
  for (int c : per_window) mean += c;
  mean /= static_cast<double>(per_window.size());
  double var = 0;
  for (int c : per_window) var += (c - mean) * (c - mean);
  var /= static_cast<double>(per_window.size());
  EXPECT_GT(var, 2.0 * mean);
}

TEST(BurstyTrace, LocalityBiasesDestinations) {
  BurstyTraceParams params;
  params.num_nodes = 64;
  params.duration = 4000;
  params.locality = 0.9;
  params.neighborhood = 4;
  const Trace trace = generate_bursty_trace(params);
  int local = 0;
  for (const auto& rec : trace.records()) {
    const int fwd = (rec.dst - rec.src + params.num_nodes) % params.num_nodes;
    if (fwd >= 1 && fwd <= params.neighborhood) ++local;
  }
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(trace.size()),
            0.8);
}

TEST(TraceInjector, ReplaysIntoNetwork) {
  Network net(testing::ring_spec(8));
  std::vector<TraceRecord> records = {
      {0, 0, 3, 4}, {10, 1, 5, 2}, {10, 2, 6, 1}, {50, 7, 0, 4}};
  TraceInjector injector(&net, Trace(records), 128, /*loop=*/false);
  net.engine().add(&injector);
  ASSERT_TRUE(net.engine().run_until([&] { return net.drained() &&
                                            injector.finished(); },
                                     5000));
  EXPECT_EQ(injector.packets_offered(), 4);
  EXPECT_EQ(net.nic().records().size(), 4u);
}

TEST(TraceInjector, LoopingRepeatsTheTrace) {
  Network net(testing::ring_spec(8));
  std::vector<TraceRecord> records = {{0, 0, 1, 1}, {9, 2, 3, 1}};
  TraceInjector injector(&net, Trace(records), 128, /*loop=*/true);
  net.engine().add(&injector);
  net.engine().run(100);  // duration 10 -> 10 full epochs
  EXPECT_EQ(injector.packets_offered(), 20);
}

TEST(TraceInjector, RejectsOversizedTrace) {
  Network net(testing::ring_spec(4));
  std::vector<TraceRecord> records = {{0, 0, 9, 1}};
  EXPECT_THROW(TraceInjector(&net, Trace(records), 128, false),
               std::invalid_argument);
}

TEST(TraceInjector, BurstyTraceDrainsOnOwn256) {
  TopologyOptions options;
  options.num_cores = 256;
  Network net(build_topology(TopologyKind::kOwn, options));
  BurstyTraceParams params;
  params.num_nodes = 256;
  params.duration = 2000;
  params.on_rate = 0.01;
  TraceInjector injector(&net, generate_bursty_trace(params), 128, false);
  net.engine().add(&injector);
  ASSERT_TRUE(net.engine().run_until(
      [&] { return injector.finished() && net.drained(); }, 100000));
  EXPECT_EQ(net.nic().packets_ejected(), injector.packets_offered());
}

}  // namespace
}  // namespace ownsim

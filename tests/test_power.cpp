// Tests for the energy model and the end-to-end experiment driver.
#include <gtest/gtest.h>

#include "driver/simulate.hpp"
#include "power/energy_model.hpp"

namespace ownsim {
namespace {

ExperimentConfig quick(TopologyKind topology, int cores = 256) {
  ExperimentConfig config;
  config.topology = topology;
  config.options.num_cores = cores;
  config.rate = 0.003;
  config.phases.warmup = 800;
  config.phases.measure = 2000;
  config.phases.drain_limit = 40000;
  return config;
}

TEST(EnergyModel, RequiresSimulatedNetwork) {
  Network net(build_topology(TopologyKind::kCMesh, TopologyOptions{}));
  EnergyModel model{PowerParams{}};
  EXPECT_THROW(model.compute(net), std::logic_error);
}

TEST(Driver, CmeshExperimentProducesFullReport) {
  const ExperimentResult r = run_experiment(quick(TopologyKind::kCMesh));
  EXPECT_TRUE(r.run.drained);
  EXPECT_GT(r.run.measured_packets, 100);
  EXPECT_GT(r.power.router_w(), 0.0);
  EXPECT_GT(r.power.electrical_link_w, 0.0);
  EXPECT_EQ(r.power.photonic_w(), 0.0);
  EXPECT_EQ(r.power.wireless_w(), 0.0);
  EXPECT_GT(r.energy_per_packet_pj, 0.0);
}

TEST(Driver, OwnExperimentUsesAllThreeMedia) {
  const ExperimentResult r = run_experiment(quick(TopologyKind::kOwn));
  EXPECT_TRUE(r.run.drained);
  EXPECT_GT(r.power.photonic_w(), 0.0);
  EXPECT_GT(r.power.wireless_w(), 0.0);
  EXPECT_EQ(r.power.electrical_link_w, 0.0);  // no electrical network links
}

TEST(Driver, OptXbIsAllPhotonic) {
  const ExperimentResult r = run_experiment(quick(TopologyKind::kOptXB));
  EXPECT_TRUE(r.run.drained);
  EXPECT_GT(r.power.photonic_w(), 0.0);
  EXPECT_EQ(r.power.wireless_w(), 0.0);
}

TEST(Driver, WirelessCmeshChargesLegacyWireless) {
  const ExperimentResult r = run_experiment(quick(TopologyKind::kWirelessCMesh));
  EXPECT_TRUE(r.run.drained);
  EXPECT_GT(r.power.wireless_w(), 0.0);
  EXPECT_GT(r.power.electrical_link_w, 0.0);
}

TEST(Driver, OwnConfigChangesOnlyWirelessPower) {
  ExperimentConfig base = quick(TopologyKind::kOwn);
  base.own_config = OwnConfig::kConfig1;
  const ExperimentResult c1 = run_experiment(base);
  base.own_config = OwnConfig::kConfig4;
  const ExperimentResult c4 = run_experiment(base);
  // Same traffic/seed: identical router and photonic power, cheaper wireless.
  EXPECT_NEAR(c1.power.router_w(), c4.power.router_w(), 1e-9);
  EXPECT_NEAR(c1.power.photonic_w(), c4.power.photonic_w(), 1e-9);
  EXPECT_GT(c1.power.wireless_link_w, c4.power.wireless_link_w);
}

TEST(Driver, DeterministicAcrossRuns) {
  const ExperimentResult a = run_experiment(quick(TopologyKind::kOwn));
  const ExperimentResult b = run_experiment(quick(TopologyKind::kOwn));
  EXPECT_DOUBLE_EQ(a.run.avg_latency, b.run.avg_latency);
  EXPECT_DOUBLE_EQ(a.power.total_w(), b.power.total_w());
}

TEST(Driver, RingTuningAblationRaisesPhotonicPower) {
  ExperimentConfig config = quick(TopologyKind::kOptXB);
  const ExperimentResult off = run_experiment(config);
  config.power.ring_tuning_uw = 20.0;
  const ExperimentResult on = run_experiment(config);
  EXPECT_GT(on.power.photonic_laser_w, off.power.photonic_laser_w);
}

}  // namespace
}  // namespace ownsim

// Tests for closed-loop request/reply traffic.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "topology/registry.hpp"
#include "traffic/request_reply.hpp"

namespace ownsim {
namespace {

TEST(RequestReply, TransactionsCompleteOnRing) {
  Network net(testing::ring_spec(8));
  TrafficPattern pattern(PatternKind::kUniform, 8);
  RequestReplyTraffic::Params params;
  params.request_rate = 0.01;
  RequestReplyTraffic traffic(&net, pattern, params);
  net.engine().add(&traffic);
  net.engine().run(5000);
  traffic.set_enabled(false);
  ASSERT_TRUE(net.engine().run_until(
      [&] { return traffic.outstanding() == 0; }, 20000));
  EXPECT_GT(traffic.requests_issued(), 100);
  EXPECT_EQ(traffic.replies_issued(), traffic.requests_issued());
  EXPECT_EQ(traffic.transactions_completed(), traffic.requests_issued());
}

TEST(RequestReply, RoundTripExceedsOneWayLatency) {
  Network net(testing::ring_spec(8));
  TrafficPattern pattern(PatternKind::kNeighbor, 8);
  RequestReplyTraffic::Params params;
  params.request_rate = 0.005;
  RequestReplyTraffic traffic(&net, pattern, params);
  net.engine().add(&traffic);
  net.engine().run(4000);
  traffic.set_enabled(false);
  ASSERT_TRUE(net.engine().run_until(
      [&] { return traffic.outstanding() == 0; }, 20000));
  ASSERT_GT(traffic.round_trip().count(), 50);
  // A neighbor hop one-way is ~10 cycles; the round trip includes two
  // traversals plus the reply's serialization.
  EXPECT_GT(traffic.round_trip().mean(), 20.0);
  EXPECT_LT(traffic.round_trip().mean(), 200.0);
}

TEST(RequestReply, WorksOnOwn256) {
  TopologyOptions options;
  options.num_cores = 256;
  Network net(build_topology(TopologyKind::kOwn, options));
  TrafficPattern pattern(PatternKind::kUniform, 256);
  RequestReplyTraffic::Params params;
  params.request_rate = 0.0005;
  RequestReplyTraffic traffic(&net, pattern, params);
  net.engine().add(&traffic);
  net.engine().run(6000);
  traffic.set_enabled(false);
  ASSERT_TRUE(net.engine().run_until(
      [&] { return traffic.outstanding() == 0; }, 50000));
  EXPECT_GT(traffic.transactions_completed(), 300);
  // Uniform round trips cross the wireless fabric twice on average.
  EXPECT_GT(traffic.round_trip().mean(), 80.0);
}

TEST(RequestReply, RejectsBadParams) {
  Network net(testing::ring_spec(4));
  TrafficPattern pattern(PatternKind::kUniform, 4);
  RequestReplyTraffic::Params params;
  params.reply_flits = 0;
  EXPECT_THROW(RequestReplyTraffic(&net, pattern, params),
               std::invalid_argument);
  TrafficPattern wrong(PatternKind::kUniform, 8);
  EXPECT_THROW(RequestReplyTraffic(&net, wrong, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ownsim

// Shared test utilities: tiny hand-built NetworkSpecs and traffic helpers.
#pragma once

#include <vector>

#include "network/network.hpp"
#include "network/spec.hpp"

namespace ownsim::testing {

/// Two routers, one node each, joined by a pair of opposing links.
///   node0 - R0 <-> R1 - node1
inline NetworkSpec two_router_spec(int num_vcs = 4, int buffer_depth = 8,
                                   int latency = 1, int cycles_per_flit = 1) {
  NetworkSpec spec;
  spec.name = "two-router";
  spec.num_nodes = 2;
  spec.num_vcs = num_vcs;
  spec.buffer_depth = buffer_depth;
  spec.routers = {{1, 1}, {1, 1}};
  spec.nodes = {{0}, {1}};
  spec.vc_classes = {{0, num_vcs}};
  LinkSpec fwd;
  fwd.src_router = 0;
  fwd.src_port = 0;
  fwd.dst_router = 1;
  fwd.dst_port = 0;
  fwd.latency = latency;
  fwd.cycles_per_flit = cycles_per_flit;
  fwd.name = "fwd";
  LinkSpec rev = fwd;
  rev.src_router = 1;
  rev.dst_router = 0;
  rev.name = "rev";
  spec.links = {fwd, rev};
  spec.route_table = {{{0, 0}, {0, 0}}, {{0, 0}, {0, 0}}};
  return spec;
}

/// Ring of `n` routers (clockwise links only), one node per router.
/// Deadlock-free for n <= buffer constraints in tests via 2 VC classes
/// (dateline at router 0): class 0 before crossing, class 1 after.
inline NetworkSpec ring_spec(int n, int num_vcs = 4, int buffer_depth = 8) {
  NetworkSpec spec;
  spec.name = "ring";
  spec.num_nodes = n;
  spec.num_vcs = num_vcs;
  spec.buffer_depth = buffer_depth;
  spec.routers.assign(n, {1, 1});
  spec.nodes.resize(n);
  for (int i = 0; i < n; ++i) spec.nodes[i] = {i};
  spec.vc_classes = {{0, num_vcs / 2}, {num_vcs / 2, num_vcs - num_vcs / 2}};
  for (int i = 0; i < n; ++i) {
    LinkSpec link;
    link.src_router = i;
    link.src_port = 0;
    link.dst_router = (i + 1) % n;
    link.dst_port = 0;
    link.name = "ring" + std::to_string(i);
    spec.links.push_back(link);
  }
  spec.route_table.assign(n, std::vector<RouteEntry>(n));
  for (int r = 0; r < n; ++r) {
    for (int d = 0; d < n; ++d) {
      if (d == r) continue;
      // Clockwise; cross the dateline (link n-1 -> 0) raises the class.
      const bool crosses = d < r;  // will pass through router 0
      spec.route_table[r][d] = {0, static_cast<std::int8_t>(crosses ? 1 : 0)};
    }
  }
  return spec;
}

/// Runs until all NIC-tracked packets eject (or `max_cycles`); returns true
/// if fully drained.
inline bool drain(Network& net, Cycle max_cycles = 100000) {
  return net.engine().run_until([&] { return net.drained(); }, max_cycles);
}

}  // namespace ownsim::testing

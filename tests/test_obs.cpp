// Tests for the observability layer: counter registry semantics, trace JSON
// well-formedness, the "tracing never perturbs simulated results" contract,
// the run self-profile, and machine-readable bench record emission.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "driver/simulate.hpp"
#include "metrics/bench_json.hpp"
#include "metrics/report.hpp"
#include "metrics/runner.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "topology/registry.hpp"
#include "traffic/injector.hpp"

namespace ownsim {
namespace {

// ---- counter registry -------------------------------------------------------

#if OWNSIM_OBS_ENABLED

TEST(ObsRegistry, CounterRegistersAndCounts) {
  obs::Registry registry;
  obs::Counter flits = registry.counter("router.0.flits");
  EXPECT_TRUE(flits.bound());
  EXPECT_EQ(registry.value("router.0.flits"), 0);
  flits.inc();
  flits.add(4);
  EXPECT_EQ(flits.value(), 5);
  EXPECT_EQ(registry.value("router.0.flits"), 5);
  EXPECT_TRUE(registry.contains("router.0.flits"));
  EXPECT_FALSE(registry.contains("router.0.nope"));
}

TEST(ObsRegistry, DuplicateRegistrationSharesSlot) {
  obs::Registry registry;
  obs::Counter a = registry.counter("shared");
  obs::Counter b = registry.counter("shared");
  a.inc();
  b.inc();
  EXPECT_EQ(registry.value("shared"), 2);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ObsRegistry, ResetZeroesButKeepsHandlesBound) {
  obs::Registry registry;
  obs::Counter counter = registry.counter("c");
  obs::Gauge gauge = registry.gauge("g");
  counter.add(7);
  gauge.observe_max(9);
  registry.reset();
  EXPECT_EQ(registry.value("c"), 0);
  EXPECT_EQ(registry.value("g"), 0);
  counter.inc();  // handle survived the reset
  EXPECT_EQ(registry.value("c"), 1);
}

TEST(ObsRegistry, GaugeKeepsMaximum) {
  obs::Registry registry;
  obs::Gauge gauge = registry.gauge("highwater");
  gauge.observe_max(3);
  gauge.observe_max(8);
  gauge.observe_max(5);
  EXPECT_EQ(gauge.value(), 8);
  gauge.set(2);  // set overwrites unconditionally
  EXPECT_EQ(gauge.value(), 2);
}

TEST(ObsRegistry, ForEachVisitsSorted) {
  obs::Registry registry;
  registry.counter("b").inc();
  registry.counter("a").add(2);
  std::vector<std::string> names;
  std::vector<std::int64_t> values;
  registry.for_each([&](const std::string& name, std::int64_t value) {
    names.push_back(name);
    values.push_back(value);
  });
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(values, (std::vector<std::int64_t>{2, 1}));
}

TEST(ObsRegistry, WriteJsonIsFlatObject) {
  obs::Registry registry;
  registry.counter("x.y").add(3);
  std::ostringstream os;
  registry.write_json(os);
  EXPECT_EQ(os.str(), "{\"x.y\": 3}");
}

TEST(ObsRegistry, NetworkRegistersComponentCounters) {
  TopologyOptions options;
  options.num_cores = 256;
  Network network(build_topology(TopologyKind::kOwn, options));
  EXPECT_TRUE(network.obs().contains("router.0.flits_forwarded"));
  EXPECT_TRUE(network.obs().contains("router.0.buffer_highwater"));
  EXPECT_TRUE(network.obs().contains("router.0.sa_retries"));
  EXPECT_GT(network.obs().size(), 0u);
}

#else  // compiled out: same API, no storage, no observable effect.

TEST(ObsRegistry, CompiledOutIsInertNoOp) {
  obs::Registry registry;
  obs::Counter counter = registry.counter("c");
  obs::Gauge gauge = registry.gauge("g");
  counter.inc();
  counter.add(10);
  gauge.observe_max(5);
  EXPECT_FALSE(counter.bound());
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(registry.value("c"), 0);
  EXPECT_FALSE(registry.contains("c"));
  EXPECT_EQ(registry.size(), 0u);
  std::ostringstream os;
  registry.write_json(os);
  EXPECT_EQ(os.str(), "{}");
}

#endif  // OWNSIM_OBS_ENABLED

TEST(ObsRegistry, UnboundHandlesDropUpdates) {
  obs::Counter counter;
  obs::Gauge gauge;
  counter.inc();
  counter.add(100);
  gauge.observe_max(100);
  gauge.set(7);
  EXPECT_FALSE(counter.bound());
  EXPECT_FALSE(gauge.bound());
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0);
}

// ---- trace writer -----------------------------------------------------------

TEST(ObsTrace, JsonEscapesControlCharacters) {
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(ObsTrace, EmitsBalancedSlices) {
  obs::TraceWriter trace;
  trace.begin("warmup", "phase", obs::TraceWriter::kPidRun, 1, 0);
  trace.end(obs::TraceWriter::kPidRun, 1, 100);
  trace.instant("grant", "token", obs::TraceWriter::kPidMedia, 0, 50);
  trace.complete("pkt", "medium", obs::TraceWriter::kPidMedia, 0, 50, 12);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.events()[0].phase, obs::TraceEvent::Phase::kBegin);
  EXPECT_EQ(trace.events()[1].phase, obs::TraceEvent::Phase::kEnd);
  EXPECT_EQ(trace.events()[3].dur, 12);
}

/// Structural validation of the serialized trace without a JSON library:
/// every line inside traceEvents must be a {...} object, and B/E events must
/// balance per (pid, tid) with non-decreasing timestamps.
void validate_trace_json(const obs::TraceWriter& trace) {
  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);

  // Brace/quote sanity over the whole document.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
    } else if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  // Event-level invariants straight from the buffer.
  std::map<std::pair<int, int>, int> open;
  std::map<std::pair<int, int>, std::int64_t> last_ts;
  for (const obs::TraceEvent& event : trace.events()) {
    EXPECT_GE(event.dur, 0);
    if (event.phase == obs::TraceEvent::Phase::kMetadata) continue;
    const auto key = std::make_pair(event.pid, event.tid);
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(event.ts, it->second);
    }
    last_ts[key] = event.ts;
    if (event.phase == obs::TraceEvent::Phase::kBegin) ++open[key];
    if (event.phase == obs::TraceEvent::Phase::kEnd) {
      EXPECT_GT(open[key], 0);
      --open[key];
    }
  }
  for (const auto& [key, count] : open) EXPECT_EQ(count, 0);
}

TEST(ObsTrace, RunProducesWellFormedTrace) {
  TopologyOptions options;
  options.num_cores = 256;
  Network network(build_topology(TopologyKind::kOwn, options));
  obs::TraceWriter trace;
  network.set_trace(&trace);

  TrafficPattern pattern(PatternKind::kUniform, 256);
  Injector::Params params;
  params.rate = 0.01;
  Injector injector(&network, pattern, params);
  network.engine().add(&injector);

  RunPhases phases;
  phases.warmup = 200;
  phases.measure = 400;
  phases.drain_limit = 5000;
  run_load_point(network, injector, phases);
  network.flush_trace();

  EXPECT_GT(trace.size(), 6u);  // 3 B/E phase pairs + traffic
  validate_trace_json(trace);
}

// ---- determinism guard ------------------------------------------------------

RunResult run_own256_point(obs::TraceWriter* trace) {
  TopologyOptions options;
  options.num_cores = 256;
  Network network(build_topology(TopologyKind::kOwn, options));
  if (trace != nullptr) network.set_trace(trace);
  TrafficPattern pattern(PatternKind::kUniform, 256);
  Injector::Params params;
  params.rate = 0.004;
  Injector injector(&network, pattern, params);
  network.engine().add(&injector);
  RunPhases phases;
  phases.warmup = 300;
  phases.measure = 800;
  phases.drain_limit = 10000;
  RunResult result = run_load_point(network, injector, phases);
  if (trace != nullptr) network.flush_trace();
  return result;
}

TEST(Obs, TraceDoesNotPerturbResults) {
  const RunResult plain = run_own256_point(nullptr);
  obs::TraceWriter trace;
  const RunResult traced = run_own256_point(&trace);
  EXPECT_GT(trace.size(), 0u);
  EXPECT_TRUE(deterministic_eq(plain, traced));
  // Spot-check the contract actually compares something.
  EXPECT_GT(plain.measured_packets, 0);
  EXPECT_DOUBLE_EQ(plain.avg_latency, traced.avg_latency);
}

TEST(Obs, DeterministicEqIgnoresProfile) {
  const RunResult a = run_own256_point(nullptr);
  RunResult b = a;
  b.profile.wall_seconds += 10.0;
  b.profile.peak_rss_bytes += 1 << 20;
  EXPECT_TRUE(deterministic_eq(a, b));
  b.measured_packets += 1;
  EXPECT_FALSE(deterministic_eq(a, b));
}

// ---- run self-profile -------------------------------------------------------

TEST(Obs, RunProfileIsPopulated) {
  const RunResult result = run_own256_point(nullptr);
  EXPECT_GT(result.profile.wall_seconds, 0.0);
  EXPECT_GT(result.profile.cycles_per_second, 0.0);
  EXPECT_GE(result.profile.warmup_seconds, 0.0);
  EXPECT_GE(result.profile.measure_seconds, 0.0);
  EXPECT_GE(result.profile.drain_seconds, 0.0);
  // Phases are measured as disjoint spans of the same wall interval.
  EXPECT_LE(result.profile.warmup_seconds + result.profile.measure_seconds +
                result.profile.drain_seconds,
            result.profile.wall_seconds + 1e-9);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(result.profile.peak_rss_bytes, 0);
#endif
  const std::string summary = run_profile_summary(result);
  EXPECT_NE(summary.find("cycles/s"), std::string::npos);
  std::ostringstream os;
  write_run_profile_json(os, result);
  EXPECT_NE(os.str().find("\"wall_seconds\""), std::string::npos);
}

// ---- bench JSON -------------------------------------------------------------

BenchRecord sample_record() {
  BenchRecord record;
  record.bench = "bench_unit";
  record.paper_ref = "Fig 0";
  record.config = "quick";
  record.metrics.push_back(
      {"throughput", 0.125, "flits/node/cycle", true, "higher"});
  record.metrics.push_back({"wall_seconds", 1.5, "s", false, "lower"});
  return record;
}

TEST(BenchJson, WritesSchemaVersionedRecord) {
  std::ostringstream os;
  write_bench_record_json(os, sample_record());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"bench_unit\""), std::string::npos);
  // Schema v2 context fields, with their defaults when the bench sets none.
  EXPECT_NE(json.find("\"threads\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"kernel\": \"activity\""), std::string::npos);
  EXPECT_NE(json.find("\"deterministic\": true"), std::string::npos);
  EXPECT_NE(json.find("\"better\": \"lower\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line (JSONL)
}

TEST(BenchJson, EmitHonorsEnvironment) {
  // Unset -> silent no-op.
  ::unsetenv("OWNSIM_BENCH_JSON");
  EXPECT_FALSE(emit_bench_json(sample_record()));

  const std::string path =
      ::testing::TempDir() + "ownsim_bench_emit_test.jsonl";
  std::remove(path.c_str());
  ::setenv("OWNSIM_BENCH_JSON", path.c_str(), 1);
  EXPECT_TRUE(emit_bench_json(sample_record()));
  EXPECT_TRUE(emit_bench_json(sample_record()));  // appends
  ::unsetenv("OWNSIM_BENCH_JSON");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.find("{\"schema_version\": 2"), 0u);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(BenchJson, QuickModeReadsEnvironment) {
  ::unsetenv("OWNSIM_BENCH_QUICK");
  EXPECT_FALSE(bench_quick_mode());
  ::setenv("OWNSIM_BENCH_QUICK", "1", 1);
  EXPECT_TRUE(bench_quick_mode());
  ::setenv("OWNSIM_BENCH_QUICK", "0", 1);
  EXPECT_FALSE(bench_quick_mode());
  ::unsetenv("OWNSIM_BENCH_QUICK");
}

TEST(BenchJson, WallTimerAdvances) {
  const WallTimer timer;
  double last = -1.0;
  for (int i = 0; i < 3; ++i) {
    const double now = timer.seconds();
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GE(last, 0.0);
}

// ---- NetworkReport counters snapshot ---------------------------------------

TEST(Obs, NetworkReportSnapshotsCounters) {
  TopologyOptions options;
  options.num_cores = 256;
  Network network(build_topology(TopologyKind::kOwn, options));
  TrafficPattern pattern(PatternKind::kUniform, 256);
  Injector::Params params;
  params.rate = 0.01;
  Injector injector(&network, pattern, params);
  network.engine().add(&injector);
  network.engine().run(500);

  const NetworkReport report(network);
  EXPECT_EQ(report.counters().size(), network.obs().size());
  std::ostringstream os;
  report.write_json(os);
  EXPECT_NE(os.str().find("\"counters\": {"), std::string::npos);
#if OWNSIM_OBS_ENABLED
  ASSERT_GT(report.counters().size(), 0u);
  std::int64_t offered = 0;
  for (const auto& [name, value] : report.counters()) {
    if (name == "injector.flits_offered") offered = value;
  }
  EXPECT_GT(offered, 0);
#endif
}

}  // namespace
}  // namespace ownsim

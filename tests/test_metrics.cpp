// Tests for the metrics layer: table rendering, load sweeps and the
// post-run utilization report.
#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"
#include "metrics/report.hpp"
#include "metrics/sweep.hpp"
#include "metrics/table_io.hpp"
#include "topology/registry.hpp"

namespace ownsim {
namespace {

// ---- Table -------------------------------------------------------------------

TEST(TableIo, AlignsColumns) {
  Table table({"a", "long_header"});
  table.add_row({"xxxxxx", "1"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a       long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxx  1"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableIo, CsvQuotesCommas) {
  Table table({"k", "v"});
  table.add_row({"a,b", "2"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "k,v\n\"a,b\",2\n");
}

TEST(TableIo, RejectsBadRows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableIo, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

// ---- sweep -------------------------------------------------------------------

TEST(Sweep, FindsRingSaturation) {
  NetworkFactory factory = [] {
    return std::make_unique<Network>(testing::ring_spec(8));
  };
  SweepOptions options;
  options.rates = {0.02, 0.05, 0.1, 0.2, 0.4, 0.8};
  options.phases.warmup = 500;
  options.phases.measure = 2000;
  options.phases.drain_limit = 20000;
  const SweepResult sweep = latency_sweep(factory, options);
  EXPECT_GT(sweep.zero_load_latency, 5.0);
  EXPECT_GT(sweep.saturation_rate, 0.0);
  EXPECT_LT(sweep.saturation_rate, 0.8);
  ASSERT_GE(sweep.points.size(), 2u);
  // Latency grows monotonically with load until saturation.
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    if (!sweep.points[i].result.drained) break;
    EXPECT_GE(sweep.points[i].result.avg_latency,
              sweep.points[i - 1].result.avg_latency * 0.95);
  }
}

TEST(Sweep, StopsAfterSaturationWhenAsked) {
  NetworkFactory factory = [] {
    return std::make_unique<Network>(testing::ring_spec(6));
  };
  SweepOptions options;
  options.rates = {0.05, 0.9, 0.95, 1.0};  // 0.9 certainly saturates
  options.phases.warmup = 300;
  options.phases.measure = 1000;
  options.phases.drain_limit = 5000;
  options.stop_after_saturation = true;
  const SweepResult sweep = latency_sweep(factory, options);
  EXPECT_LT(sweep.points.size(), 4u);
}

TEST(Sweep, RejectsEmptyRates) {
  NetworkFactory factory = [] {
    return std::make_unique<Network>(testing::ring_spec(4));
  };
  EXPECT_THROW(latency_sweep(factory, SweepOptions{}), std::invalid_argument);
}

// ---- NetworkReport -----------------------------------------------------------

class ReportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    TopologyOptions options;
    options.num_cores = 256;
    network_ = std::make_unique<Network>(
        build_topology(TopologyKind::kOwn, options));
    pattern_ = std::make_unique<TrafficPattern>(PatternKind::kUniform, 256);
    Injector::Params params;
    params.rate = 0.004;
    injector_ = std::make_unique<Injector>(network_.get(), *pattern_, params);
    network_->engine().add(injector_.get());
    network_->engine().run(4000);
  }
  std::unique_ptr<Network> network_;
  std::unique_ptr<TrafficPattern> pattern_;
  std::unique_ptr<Injector> injector_;
};

TEST_F(ReportFixture, UtilizationInUnitRange) {
  const NetworkReport report(*network_);
  ASSERT_FALSE(report.channels().empty());
  for (const auto& channel : report.channels()) {
    EXPECT_GE(channel.utilization, 0.0) << channel.name;
    EXPECT_LE(channel.utilization, 1.0 + 1e-9) << channel.name;
  }
}

TEST_F(ReportFixture, WirelessBusierThanPhotonicPerChannel) {
  // 12 wireless channels carry 3/4 of the traffic; 64 waveguides carry the
  // rest plus the funnel hops — per-channel wireless utilization dominates.
  const NetworkReport report(*network_);
  EXPECT_GT(report.mean_utilization(MediumType::kWireless),
            report.mean_utilization(MediumType::kPhotonic));
  EXPECT_GT(report.max_utilization(MediumType::kWireless), 0.2);
}

TEST_F(ReportFixture, HottestRouterIsAGateway) {
  const NetworkReport report(*network_);
  const RouterActivity& hot = report.hottest_router();
  const int tile = hot.id % 16;
  EXPECT_TRUE(tile == 0 || tile == 3 || tile == 12) << "tile " << tile;
}

TEST_F(ReportFixture, CsvAndJsonWellFormed) {
  const NetworkReport report(*network_);
  std::ostringstream csv;
  report.write_channels_csv(csv);
  EXPECT_NE(csv.str().find("name,medium"), std::string::npos);
  // One header + one line per channel.
  const std::string text = csv.str();
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(lines, 1 + static_cast<long>(report.channels().size()));

  std::ostringstream json;
  report.write_json(json);
  const std::string j = json.str();
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_NE(j.find("\"channels\""), std::string::npos);
  EXPECT_NE(j.find("\"routers\""), std::string::npos);
}

TEST(Report, RequiresSimulatedNetwork) {
  Network net(testing::ring_spec(4));
  EXPECT_THROW(NetworkReport{net}, std::logic_error);
}

}  // namespace
}  // namespace ownsim

// Edge-case tests for the NIC and file-based configuration.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config.hpp"
#include "helpers.hpp"
#include "network/nic.hpp"

namespace ownsim {
namespace {

TEST(NicEdge, RejectsBadWiring) {
  EXPECT_THROW(Nic(0), std::invalid_argument);
  Network net(testing::two_router_spec());
  // Nodes are wired by the Network constructor; double-wiring throws.
  std::vector<VcClassRange> classes = {{0, 4}};
  Channel channel(MediumType::kElectrical, 1, 1, 4, 8, Length{}, &classes, "x");
  EXPECT_THROW(net.nic().connect(0, channel.out(), channel.in()),
               std::logic_error);
}

TEST(NicEdge, SelfPacketSingleFlit) {
  Network net(testing::two_router_spec());
  net.nic().enqueue_packet(1, 1, 1, 1, 64, 0, 0, true);
  ASSERT_TRUE(testing::drain(net, 200));
  const PacketRecord& rec = net.nic().records()[0];
  EXPECT_EQ(rec.src, 1);
  EXPECT_EQ(rec.dst, 1);
  EXPECT_EQ(rec.size_flits, 1);
  EXPECT_EQ(net.nic().flits_injected(), 1);
  EXPECT_EQ(net.nic().flits_ejected(), 1);
}

TEST(NicEdge, InjectionIsOneFlitPerCycle) {
  Network net(testing::two_router_spec());
  // 10 packets x 4 flits: at one flit/node/cycle the source queue needs at
  // least 40 cycles to empty.
  for (int i = 0; i < 10; ++i) {
    net.nic().enqueue_packet(0, 1, 1, 4, 128, 0, 0, true);
  }
  net.engine().run(20);
  EXPECT_LE(net.nic().flits_injected(), 20);
  EXPECT_GT(net.nic().flits_injected(), 10);
  ASSERT_TRUE(testing::drain(net, 2000));
}

TEST(NicEdge, QueueBackpressureCounted) {
  Network net(testing::two_router_spec());
  for (int i = 0; i < 5; ++i) {
    net.nic().enqueue_packet(0, 1, 1, 4, 128, 0, 0, false);
  }
  EXPECT_EQ(net.nic().queued_flits(), 20);
  ASSERT_TRUE(testing::drain(net, 2000));
  EXPECT_EQ(net.nic().queued_flits(), 0);
}

TEST(ConfigFile, LoadsAndMerges) {
  const std::string path = ::testing::TempDir() + "/ownsim_test.conf";
  {
    std::ofstream out(path);
    out << "# comment line\n"
           "topology = own\n"
           "rate = 0.005   # trailing comment\n"
           "\n"
           "cores=256\n";
  }
  const Config config = Config::from_file(path);
  EXPECT_EQ(config.get_string("topology", ""), "own");
  EXPECT_DOUBLE_EQ(config.get_double("rate", 0), 0.005);
  EXPECT_EQ(config.get_int("cores", 0), 256);
  std::remove(path.c_str());
}

TEST(ConfigFile, MissingFileThrows) {
  EXPECT_THROW(Config::from_file("/nonexistent/path.conf"),
               std::runtime_error);
}

TEST(ConfigFile, RepositoryConfigsParse) {
  // The shipped experiment configs must stay loadable.
  const Config fig6 = Config::from_file(
      std::string(OWNSIM_SOURCE_DIR) + "/configs/own256_fig6.conf");
  EXPECT_EQ(fig6.get_string("topology", ""), "own");
  EXPECT_EQ(fig6.get_int("config", 0), 4);
  const Config cmesh = Config::from_file(
      std::string(OWNSIM_SOURCE_DIR) + "/configs/cmesh1024_saturation.conf");
  EXPECT_EQ(cmesh.get_int("cores", 0), 1024);
}

}  // namespace
}  // namespace ownsim

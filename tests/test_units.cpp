// Unit tests for common/units.hpp and the common/quantity.hpp dimension
// system: conversion round-trips, literal scaling, dimension arithmetic and
// the log-domain (Decibels / DbmPower) algebra.
#include <gtest/gtest.h>

#include <type_traits>

#include "common/quantity.hpp"
#include "common/units.hpp"

namespace ownsim {
namespace {

// ---- scalar conversion round-trips ----------------------------------------

TEST(UnitsTest, WattsDbmRoundTrip) {
  for (double watts : {1e-6, 1e-3, 0.5, 1.0, 25.0}) {
    EXPECT_NEAR(units::dbm_to_watts(units::watts_to_dbm(watts)), watts,
                1e-12 * watts);
  }
  for (double dbm : {-40.0, -10.0, 0.0, 4.0, 30.0}) {
    EXPECT_NEAR(units::watts_to_dbm(units::dbm_to_watts(dbm)), dbm, 1e-9);
  }
  EXPECT_NEAR(units::watts_to_dbm(1e-3), 0.0, 1e-12);  // 1 mW == 0 dBm
  EXPECT_NEAR(units::dbm_to_watts(30.0), 1.0, 1e-12);  // 30 dBm == 1 W
}

TEST(UnitsTest, DbRatioRoundTrip) {
  for (double ratio : {1e-3, 0.5, 1.0, 2.0, 1e6}) {
    EXPECT_NEAR(units::db_to_ratio(units::ratio_to_db(ratio)), ratio,
                1e-12 * ratio);
  }
  for (double db : {-30.0, -3.0, 0.0, 3.0, 20.0}) {
    EXPECT_NEAR(units::ratio_to_db(units::db_to_ratio(db)), db, 1e-9);
  }
  EXPECT_NEAR(units::db_to_ratio(3.0), 1.9953, 1e-4);
  EXPECT_NEAR(units::ratio_to_db(100.0), 20.0, 1e-12);
}

TEST(UnitsTest, WavelengthAt60GhzIsAbout5mm) {
  // The paper's mm-wave anchor: lambda(60 GHz) ~ 5 mm.
  EXPECT_NEAR(units::wavelength_m(60e9) * 1e3, 5.0, 0.01);
  const Length lambda = units::wavelength(60.0_ghz);
  EXPECT_NEAR(lambda.in(1.0_mm), 4.9965, 1e-3);
  // Typed and raw paths agree exactly.
  EXPECT_DOUBLE_EQ(lambda.value(), units::wavelength_m(60e9));
}

TEST(UnitsTest, TypedBridgesMatchScalarHelpers) {
  const DbmPower level = units::to_dbm(Power{2.5e-3});
  EXPECT_NEAR(level.dbm(), units::watts_to_dbm(2.5e-3), 1e-12);
  EXPECT_NEAR(units::to_watts(level).value(), 2.5e-3, 1e-15);
  EXPECT_NEAR(units::to_ratio(units::to_db(42.0)), 42.0, 1e-9);
}

// ---- literals --------------------------------------------------------------

TEST(QuantityTest, LiteralsScaleToSiBaseUnits) {
  EXPECT_DOUBLE_EQ((100.0_ghz).value(), 100e9);
  EXPECT_DOUBLE_EQ((2.4_mhz).value(), 2.4e6);
  EXPECT_DOUBLE_EQ((60.0_mm).value(), 0.060);
  EXPECT_DOUBLE_EQ((2.5_cm).value(), 0.025);
  EXPECT_DOUBLE_EQ((3.0_um).value(), 3.0e-6);
  EXPECT_DOUBLE_EQ((0.1_pj).value(), 0.1e-12);
  EXPECT_DOUBLE_EQ((14.0_mw).value(), 14e-3);
  EXPECT_DOUBLE_EQ((32.0_gbps).value(), 32e9);
  EXPECT_DOUBLE_EQ((1.23_pj_per_bit).value(), 1.23e-12);
  EXPECT_DOUBLE_EQ((3.0_db).db(), 3.0);
  EXPECT_DOUBLE_EQ((10.0_dbi).db(), 10.0);
  EXPECT_DOUBLE_EQ((4.0_dbm).dbm(), 4.0);
}

TEST(QuantityTest, InConvertsToRequestedUnit) {
  EXPECT_DOUBLE_EQ((90.0_ghz).in(1.0_ghz), 90.0);
  EXPECT_DOUBLE_EQ((90.0_ghz).in(1.0_mhz), 90e3);
  EXPECT_DOUBLE_EQ((50.0_mm).in(1.0_cm), 5.0);
  EXPECT_DOUBLE_EQ((0.5_pj).in(1.0_fj), 500.0);
}

// ---- dimension arithmetic --------------------------------------------------

TEST(QuantityTest, SameDimensionAddSub) {
  const Length d = 30.0_mm + 2.0_cm;
  EXPECT_DOUBLE_EQ(d.in(1.0_mm), 50.0);
  EXPECT_DOUBLE_EQ((d - 50.0_mm).value(), 0.0);
}

TEST(QuantityTest, MultiplicationComposesDimensions) {
  // E = P * t, P = E * f, v = d * f: static types below only compile if the
  // dimension algebra is right.
  const Energy e = 14.0_mw * 2.0_ns;
  EXPECT_NEAR(e.in(1.0_pj), 28.0, 1e-9);
  const Power p = 0.1_pj * 10.0_ghz;
  EXPECT_NEAR(p.in(1.0_mw), 1.0, 1e-12);
  const Speed v = 5.0_mm * 60.0_ghz;
  EXPECT_NEAR(v.value(), 3.0e8, 1e-4 * 3.0e8);
  const EnergyPerBit epb = 32.0_mw / 32.0_gbps;
  EXPECT_NEAR(epb.in(1.0_pj_per_bit), 1.0, 1e-12);
}

TEST(QuantityTest, DivisionOfSameDimensionIsDimensionless) {
  const Dimensionless ratio = 50.0_mm / 5.0_mm;
  const double as_double = ratio;  // implicit only for Dimensionless
  EXPECT_DOUBLE_EQ(as_double, 10.0);
  EXPECT_EQ(static_cast<int>(100.0_mm / 25.0_mm), 4);
  static_assert(!std::is_convertible_v<Length, double>,
                "dimensioned quantities must not decay to double");
  static_assert(!std::is_convertible_v<Frequency, double>,
                "dimensioned quantities must not decay to double");
}

TEST(QuantityTest, ScalarScalingAndComparison) {
  const Length hop = 100.0_mm / 8.0;
  EXPECT_DOUBLE_EQ(hop.in(1.0_mm), 12.5);
  EXPECT_DOUBLE_EQ((2.0 * hop).in(1.0_mm), 25.0);
  EXPECT_LT(5.0_mm, 1.0_cm);
  EXPECT_GT(300.0_ghz, 90.0_ghz);
  EXPECT_EQ(10.0_mm, 1.0_cm);
}

TEST(QuantityTest, ConstexprThroughout) {
  // The whole dimension system is usable at compile time.
  static_assert((60.0_ghz).in(1.0_mhz) == 60e3);
  static_assert((25.0_mm + 25.0_mm).value() == 0.05);
  static_assert(units::wavelength(60.0_ghz).value() > 0.0);
  static_assert((4.0_dbm + 3.0_db).dbm() == 7.0);
}

// ---- log-domain algebra ----------------------------------------------------

TEST(QuantityTest, DecibelsAlgebra) {
  const Decibels sum = 3.0_db + 2.0_db;
  EXPECT_DOUBLE_EQ(sum.db(), 5.0);
  EXPECT_DOUBLE_EQ((sum - 1.0_db).db(), 4.0);
  EXPECT_DOUBLE_EQ((-sum).db(), -5.0);
  EXPECT_DOUBLE_EQ((2.0 * 3.0_db).db(), 6.0);  // dB scale by pure number
  EXPECT_LT(3.0_db, 6.0_db);
}

TEST(QuantityTest, DbmPowerAlgebra) {
  const DbmPower tx = 4.0_dbm;
  EXPECT_DOUBLE_EQ((tx + 6.0_db).dbm(), 10.0);   // gain raises the level
  EXPECT_DOUBLE_EQ((tx - 10.0_db).dbm(), -6.0);  // loss lowers it
  const Decibels margin = 10.0_dbm - tx;         // level difference is dB
  EXPECT_DOUBLE_EQ(margin.db(), 6.0);
  EXPECT_LT(-40.0_dbm, tx);
}

TEST(QuantityTest, DecibelsPerLengthScalesWithDistance) {
  const DecibelsPerLength alpha = 1.0_db / 1.0_cm;
  const Decibels total = alpha * 5.0_cm;
  EXPECT_DOUBLE_EQ(total.db(), 5.0);
}

}  // namespace
}  // namespace ownsim

// Tests for traffic patterns and the Bernoulli injector, including
// property-style parameterized checks on permutation invariants.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "metrics/runner.hpp"
#include "traffic/injector.hpp"
#include "traffic/patterns.hpp"

namespace ownsim {
namespace {

TEST(Patterns, ParseAcceptsPaperNames) {
  EXPECT_EQ(parse_pattern("UN"), PatternKind::kUniform);
  EXPECT_EQ(parse_pattern("BR"), PatternKind::kBitReversal);
  EXPECT_EQ(parse_pattern("MT"), PatternKind::kTranspose);
  EXPECT_EQ(parse_pattern("PS"), PatternKind::kShuffle);
  EXPECT_EQ(parse_pattern("NBR"), PatternKind::kNeighbor);
  EXPECT_THROW(parse_pattern("nope"), std::invalid_argument);
}

TEST(Patterns, BitReversalKnownValues) {
  TrafficPattern p(PatternKind::kBitReversal, 256);
  Rng rng(1);
  EXPECT_EQ(p.dest(0, rng), 0);
  EXPECT_EQ(p.dest(1, rng), 128);    // 00000001 -> 10000000
  EXPECT_EQ(p.dest(0b10110001, rng), 0b10001101);
}

TEST(Patterns, TransposeKnownValues) {
  TrafficPattern p(PatternKind::kTranspose, 256);
  Rng rng(1);
  // (row, col) swap on a 16x16 grid: node 0x12 -> 0x21.
  EXPECT_EQ(p.dest(0x12, rng), 0x21);
  EXPECT_EQ(p.dest(0xF0, rng), 0x0F);
}

TEST(Patterns, ShuffleRotatesLeft) {
  TrafficPattern p(PatternKind::kShuffle, 8);
  Rng rng(1);
  EXPECT_EQ(p.dest(0b001, rng), 0b010);
  EXPECT_EQ(p.dest(0b100, rng), 0b001);
  EXPECT_EQ(p.dest(0b110, rng), 0b101);
}

TEST(Patterns, RejectsNonPow2ForBitPatterns) {
  EXPECT_THROW(TrafficPattern(PatternKind::kBitReversal, 100),
               std::invalid_argument);
  EXPECT_NO_THROW(TrafficPattern(PatternKind::kUniform, 100));
  EXPECT_NO_THROW(TrafficPattern(PatternKind::kNeighbor, 100));
}

TEST(Patterns, UniformCoversAllDestinations) {
  TrafficPattern p(PatternKind::kUniform, 16);
  Rng rng(3);
  std::set<NodeId> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(p.dest(0, rng));
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Patterns, HotspotSkewsToNodeZero) {
  TrafficPattern p(PatternKind::kHotspot, 64);
  Rng rng(4);
  int zero = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.dest(5, rng) == 0) ++zero;
  }
  // 20% targeted + 1/64 of the remaining uniform share.
  EXPECT_NEAR(static_cast<double>(zero) / n, 0.2 + 0.8 / 64, 0.02);
}

// Property: deterministic paper patterns are permutations (bijective).
class PermutationPattern
    : public ::testing::TestWithParam<std::tuple<PatternKind, int>> {};

TEST_P(PermutationPattern, IsBijective) {
  const auto [kind, n] = GetParam();
  TrafficPattern p(kind, n);
  Rng rng(1);
  std::set<NodeId> images;
  for (NodeId src = 0; src < n; ++src) {
    const NodeId d = p.dest(src, rng);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, n);
    images.insert(d);
  }
  EXPECT_EQ(images.size(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, PermutationPattern,
    ::testing::Combine(::testing::Values(PatternKind::kBitReversal,
                                         PatternKind::kTranspose,
                                         PatternKind::kShuffle,
                                         PatternKind::kNeighbor,
                                         PatternKind::kBitComplement,
                                         PatternKind::kTornado),
                       ::testing::Values(16, 64, 256, 1024)));

// ---- Injector ----------------------------------------------------------------

TEST(Injector, OfferedLoadMatchesRate) {
  Network net(testing::ring_spec(8));
  TrafficPattern pattern(PatternKind::kUniform, 8);
  Injector::Params params;
  params.rate = 0.2;
  params.packet_flits = 4;
  Injector injector(&net, pattern, params);
  net.engine().add(&injector);
  net.engine().run(20000);
  // Expected packets = nodes * cycles * rate / flits = 8*20000*0.05 = 8000.
  EXPECT_NEAR(static_cast<double>(injector.packets_offered()), 8000, 300);
}

TEST(Injector, DeterministicAcrossRuns) {
  auto run_once = [] {
    Network net(testing::ring_spec(8));
    TrafficPattern pattern(PatternKind::kUniform, 8);
    Injector::Params params;
    params.rate = 0.15;
    params.master_seed = 99;
    Injector injector(&net, pattern, params);
    net.engine().add(&injector);
    net.engine().run(5000);
    return std::make_pair(injector.packets_offered(),
                          net.nic().flits_ejected());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Injector, RejectsSizeMismatch) {
  Network net(testing::ring_spec(8));
  TrafficPattern pattern(PatternKind::kUniform, 16);
  EXPECT_THROW(Injector(&net, pattern, {}), std::invalid_argument);
}

TEST(Runner, LowLoadRunDrainsAndReportsSaneNumbers) {
  Network net(testing::ring_spec(8));
  TrafficPattern pattern(PatternKind::kUniform, 8);
  Injector::Params params;
  params.rate = 0.05;
  Injector injector(&net, pattern, params);
  net.engine().add(&injector);
  RunPhases phases;
  phases.warmup = 1000;
  phases.measure = 3000;
  const RunResult r = run_load_point(net, injector, phases);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.measured_packets, 50);
  EXPECT_GT(r.avg_latency, 5.0);
  EXPECT_LT(r.avg_latency, 100.0);
  EXPECT_NEAR(r.throughput, 0.05, 0.02);
  EXPECT_GE(r.p99_latency, r.avg_latency);
  EXPECT_GE(r.avg_net_latency, 5.0);
  EXPECT_LE(r.avg_net_latency, r.avg_latency);
}

}  // namespace
}  // namespace ownsim

#!/usr/bin/env python3
"""Unit tests for tools/perf_compare.py (run via ctest or directly)."""
from __future__ import annotations

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))
import perf_compare  # noqa: E402


def record(bench="bench_x", config="quick", metrics=None):
    return {
        "schema_version": perf_compare.SCHEMA_VERSION,
        "bench": bench,
        "paper_ref": "Fig 0",
        "config": config,
        "metrics": metrics if metrics is not None else [
            {"name": "throughput", "value": 0.125,
             "unit": "flits/node/cycle", "deterministic": True,
             "better": "higher"},
            {"name": "wall_seconds", "value": 2.0, "unit": "s",
             "deterministic": False, "better": "lower"},
        ],
    }


class PerfCompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, records):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            for obj in records:
                fh.write(json.dumps(obj) + "\n")
        return path

    def run_main(self, baseline, current, *extra):
        return perf_compare.main([baseline, current, *extra])

    def test_identical_passes(self):
        base = self.write("base.json", [record()])
        cur = self.write("cur.json", [record()])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_deterministic_drift_fails_both_directions(self):
        base = self.write("base.json", [record()])
        for value in (0.125 * 1.01, 0.125 * 0.99):
            drifted = record()
            drifted["metrics"][0]["value"] = value
            cur = self.write("cur.json", [drifted])
            self.assertEqual(self.run_main(base, cur), 1)

    def test_deterministic_within_tolerance_passes(self):
        base = self.write("base.json", [record()])
        nudged = record()
        nudged["metrics"][0]["value"] = 0.125 * (1 + 1e-9)
        cur = self.write("cur.json", [nudged])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_wall_regression_fails_only_when_worse(self):
        base = self.write("base.json", [record()])
        slower = record()
        slower["metrics"][1]["value"] = 2.0 * 1.6  # +60% > 50% tolerance
        cur = self.write("cur.json", [slower])
        self.assertEqual(self.run_main(base, cur), 1)
        faster = record()
        faster["metrics"][1]["value"] = 2.0 * 0.2  # big improvement: fine
        cur = self.write("cur2.json", [faster])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_advisory_never_fails(self):
        base = self.write("base.json", [record()])
        slower = record()
        slower["metrics"][0]["value"] = 99.0
        cur = self.write("cur.json", [slower])
        self.assertEqual(self.run_main(base, cur, "--advisory"), 0)

    def test_missing_metric_is_regression(self):
        base = self.write("base.json", [record()])
        cur = self.write("cur.json",
                         [record(metrics=[record()["metrics"][1]])])
        self.assertEqual(self.run_main(base, cur), 1)

    def test_new_bench_and_metric_are_informational(self):
        base = self.write("base.json", [record()])
        extra = record()
        extra["metrics"].append(
            {"name": "new_metric", "value": 1.0, "unit": "x",
             "deterministic": True, "better": "higher"})
        cur = self.write("cur.json", [extra, record(bench="bench_y")])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_malformed_json_exits_2(self):
        base = self.write("base.json", [record()])
        path = os.path.join(self.dir.name, "garbage.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json\n")
        self.assertEqual(self.run_main(base, path), 2)

    def test_schema_mismatch_exits_2(self):
        base = self.write("base.json", [record()])
        wrong = record()
        wrong["schema_version"] = 999
        cur = self.write("cur.json", [wrong])
        self.assertEqual(self.run_main(base, cur), 2)

    def test_missing_file_exits_2(self):
        base = self.write("base.json", [record()])
        missing = os.path.join(self.dir.name, "nope.json")
        self.assertEqual(self.run_main(base, missing), 2)

    def test_custom_tolerance(self):
        base = self.write("base.json", [record()])
        drifted = record()
        drifted["metrics"][0]["value"] = 0.125 * 1.01
        cur = self.write("cur.json", [drifted])
        self.assertEqual(
            self.run_main(base, cur, "--tol-deterministic", "0.05"), 0)


if __name__ == "__main__":
    unittest.main()

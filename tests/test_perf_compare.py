#!/usr/bin/env python3
"""Unit tests for tools/perf_compare.py (run via ctest or directly)."""
from __future__ import annotations

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))
import perf_compare  # noqa: E402


def record(bench="bench_x", config="quick", metrics=None):
    return {
        "schema_version": perf_compare.SCHEMA_VERSION,
        "bench": bench,
        "paper_ref": "Fig 0",
        "config": config,
        "metrics": metrics if metrics is not None else [
            {"name": "throughput", "value": 0.125,
             "unit": "flits/node/cycle", "deterministic": True,
             "better": "higher"},
            {"name": "wall_seconds", "value": 2.0, "unit": "s",
             "deterministic": False, "better": "lower"},
        ],
    }


class PerfCompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, records):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            for obj in records:
                fh.write(json.dumps(obj) + "\n")
        return path

    def run_main(self, baseline, current, *extra):
        return perf_compare.main([baseline, current, *extra])

    def test_identical_passes(self):
        base = self.write("base.json", [record()])
        cur = self.write("cur.json", [record()])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_deterministic_drift_fails_both_directions(self):
        base = self.write("base.json", [record()])
        for value in (0.125 * 1.01, 0.125 * 0.99):
            drifted = record()
            drifted["metrics"][0]["value"] = value
            cur = self.write("cur.json", [drifted])
            self.assertEqual(self.run_main(base, cur), 1)

    def test_deterministic_within_tolerance_passes(self):
        base = self.write("base.json", [record()])
        nudged = record()
        nudged["metrics"][0]["value"] = 0.125 * (1 + 1e-9)
        cur = self.write("cur.json", [nudged])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_wall_regression_fails_only_when_worse(self):
        base = self.write("base.json", [record()])
        slower = record()
        slower["metrics"][1]["value"] = 2.0 * 1.6  # +60% > 50% tolerance
        cur = self.write("cur.json", [slower])
        self.assertEqual(self.run_main(base, cur), 1)
        faster = record()
        faster["metrics"][1]["value"] = 2.0 * 0.2  # big improvement: fine
        cur = self.write("cur2.json", [faster])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_advisory_never_fails(self):
        base = self.write("base.json", [record()])
        slower = record()
        slower["metrics"][0]["value"] = 99.0
        cur = self.write("cur.json", [slower])
        self.assertEqual(self.run_main(base, cur, "--advisory"), 0)

    def test_missing_metric_is_regression(self):
        base = self.write("base.json", [record()])
        cur = self.write("cur.json",
                         [record(metrics=[record()["metrics"][1]])])
        self.assertEqual(self.run_main(base, cur), 1)

    def test_new_bench_and_metric_are_informational(self):
        base = self.write("base.json", [record()])
        extra = record()
        extra["metrics"].append(
            {"name": "new_metric", "value": 1.0, "unit": "x",
             "deterministic": True, "better": "higher"})
        cur = self.write("cur.json", [extra, record(bench="bench_y")])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_malformed_json_exits_2(self):
        base = self.write("base.json", [record()])
        path = os.path.join(self.dir.name, "garbage.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json\n")
        self.assertEqual(self.run_main(base, path), 2)

    def test_schema_mismatch_exits_2(self):
        base = self.write("base.json", [record()])
        wrong = record()
        wrong["schema_version"] = 999
        cur = self.write("cur.json", [wrong])
        self.assertEqual(self.run_main(base, cur), 2)

    def test_missing_file_exits_2(self):
        base = self.write("base.json", [record()])
        missing = os.path.join(self.dir.name, "nope.json")
        self.assertEqual(self.run_main(base, missing), 2)

    def test_custom_tolerance(self):
        base = self.write("base.json", [record()])
        drifted = record()
        drifted["metrics"][0]["value"] = 0.125 * 1.01
        cur = self.write("cur.json", [drifted])
        self.assertEqual(
            self.run_main(base, cur, "--tol-deterministic", "0.05"), 0)

    # ---- schema v2 (kernel/threads keys) + floors -------------------------

    def test_v1_baseline_pairs_with_v2_activity_record(self):
        v1 = record()
        v1["schema_version"] = 1
        v1.pop("kernel", None)
        v1.pop("threads", None)
        base = self.write("base.json", [v1])
        v2 = record()
        v2["kernel"] = "activity"
        v2["threads"] = 1
        cur = self.write("cur.json", [v2])
        self.assertEqual(self.run_main(base, cur), 0)
        # ...and a v1 record with drifted values still fails against v2.
        v2_drift = dict(v2)
        v2_drift["metrics"] = [dict(v2["metrics"][0], value=0.2),
                               v2["metrics"][1]]
        cur = self.write("cur2.json", [v2_drift])
        self.assertEqual(self.run_main(base, cur), 1)

    def test_kernel_and_threads_separate_records(self):
        # Same bench+config under two kernels: different keys, no pairing,
        # so wildly different wall times are fine.
        act = record()
        par = record()
        par["kernel"] = "parallel"
        par["threads"] = 8
        par["metrics"] = [dict(par["metrics"][0]),
                          dict(par["metrics"][1], value=0.25)]
        base = self.write("base.json", [act, par])
        cur = self.write("cur.json", [act, par])
        self.assertEqual(self.run_main(base, cur), 0)
        records = perf_compare.load_records(base)
        self.assertIn(("bench_x", "quick", "activity", 1), records)
        self.assertIn(("bench_x", "quick", "parallel", 8), records)

    def test_floor_passes_and_fails_higher_is_better(self):
        speedup = {"name": "speedup_vs_activity", "value": 2.5, "unit": "x",
                   "deterministic": False, "better": "higher"}
        rec = record(metrics=[speedup])
        base = self.write("base.json", [rec])
        cur = self.write("cur.json", [rec])
        self.assertEqual(
            self.run_main(base, cur, "--floor", "speedup_vs_activity=2.0"), 0)
        self.assertEqual(
            self.run_main(base, cur, "--floor", "speedup_vs_activity=3.0"), 1)

    def test_floor_direction_aware_lower_is_better(self):
        wall = {"name": "wall_seconds", "value": 2.0, "unit": "s",
                "deterministic": False, "better": "lower"}
        rec = record(metrics=[wall])
        base = self.write("base.json", [rec])
        cur = self.write("cur.json", [rec])
        # better="lower": the bound is a ceiling.
        self.assertEqual(
            self.run_main(base, cur, "--floor", "wall_seconds=5.0"), 0)
        self.assertEqual(
            self.run_main(base, cur, "--floor", "wall_seconds=1.0"), 1)

    def test_floor_violation_fails_even_under_advisory(self):
        speedup = {"name": "speedup_vs_activity", "value": 0.5, "unit": "x",
                   "deterministic": False, "better": "higher"}
        rec = record(metrics=[speedup])
        base = self.write("base.json", [rec])
        cur = self.write("cur.json", [rec])
        self.assertEqual(
            self.run_main(base, cur, "--advisory",
                          "--floor", "speedup_vs_activity=1.0"), 1)

    def test_floor_on_absent_metric_fails(self):
        base = self.write("base.json", [record()])
        cur = self.write("cur.json", [record()])
        self.assertEqual(
            self.run_main(base, cur, "--floor", "no_such_metric=1.0"), 1)

    def test_config_qualified_floor_targets_one_regime(self):
        # The parallel speedup promise holds on the saturated point only: a
        # CONFIG:NAME floor must gate that record and ignore the idle one.
        def speedup(value):
            return {"name": "speedup_vs_activity", "value": value, "unit": "x",
                    "deterministic": False, "better": "higher"}
        idle = record(metrics=[speedup(0.9)])
        idle["config"] = "quick.own256-idle"
        hot = record(metrics=[speedup(2.4)])
        hot["config"] = "quick.own1024-hot"
        base = self.write("base.json", [idle, hot])
        cur = self.write("cur.json", [idle, hot])
        self.assertEqual(
            self.run_main(base, cur, "--floor",
                          "quick.own1024-hot:speedup_vs_activity=1.0"), 0)
        # Unqualified, the sub-1.0 idle record violates the same bound.
        self.assertEqual(
            self.run_main(base, cur, "--floor", "speedup_vs_activity=1.0"), 1)
        # A qualified floor whose config never shows up was not measured.
        self.assertEqual(
            self.run_main(base, cur, "--floor",
                          "full.own1024-hot:speedup_vs_activity=1.0"), 1)

    def test_malformed_floor_exits_2(self):
        base = self.write("base.json", [record()])
        cur = self.write("cur.json", [record()])
        self.assertEqual(self.run_main(base, cur, "--floor", "junk"), 2)
        self.assertEqual(self.run_main(base, cur, "--floor", "x=notnum"), 2)
        self.assertEqual(self.run_main(base, cur, "--floor", ":x=1.0"), 2)


if __name__ == "__main__":
    unittest.main()

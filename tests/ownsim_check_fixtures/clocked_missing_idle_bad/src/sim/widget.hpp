// Fixture: trips clocked-idle-contract — overrides eval() but stays silent
// on is_idle(), hiding the quiescence contract behind the base default.
#pragma once

namespace fixture {

using Cycle = long long;

class Clocked {
 public:
  virtual ~Clocked() = default;
  virtual void eval(Cycle now) = 0;
  virtual void commit(Cycle now) = 0;
  virtual bool is_idle() const { return false; }
};

class Widget final : public Clocked {
 public:
  void eval(Cycle now) override;  // BAD: no is_idle() override in the class
  void commit(Cycle /*now*/) override {}

 private:
  int state_ = 0;
};

// Control within the fixture: pairing eval with is_idle is fine.
class GoodWidget final : public Clocked {
 public:
  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}
  bool is_idle() const override { return state_ == 0; }

 private:
  int state_ = 0;
};

}  // namespace fixture

// Fixture: trips obs-counter-discipline both ways — a handle without the
// obs_ prefix, and simulation code reading a counter value.
#pragma once

namespace obs {
class Counter {
 public:
  void inc() {}
  long long value() const { return 0; }
};
}  // namespace obs

namespace fixture {

class Port {
 public:
  void eval() {
    obs_flits_.inc();
    if (obs_flits_.value() > 100) {  // BAD: sim decision reads a counter
      throttle_ = true;
    }
  }

 private:
  obs::Counter obs_flits_;
  obs::Counter drops_;  // BAD: obs handle not named obs_*
  bool throttle_ = false;
};

}  // namespace fixture

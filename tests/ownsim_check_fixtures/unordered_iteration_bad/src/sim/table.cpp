// Fixture: iterates a member the paired header declares unordered — the
// checker must see the declaration across the .hpp/.cpp pair.
#include "table.hpp"

namespace fixture {

struct Scanner {
  std::unordered_map<std::uint64_t, std::int64_t> slots_;

  std::int64_t drain() {
    std::int64_t sum = 0;
    for (const auto& entry : slots_) {  // BAD: unordered iteration
      sum += entry.second;
    }
    slots_.clear();
    return sum;
  }
};

}  // namespace fixture

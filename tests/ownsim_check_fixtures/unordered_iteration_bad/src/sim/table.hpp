// Fixture: trips unordered-iteration three ways — a range-for over a member
// declared here, a range-for in the paired .cpp over the same member, and an
// explicit .begin() walk.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace fixture {

class FlitTable {
 public:
  void touch(std::uint64_t id) { slots_[id] += 1; }

  std::int64_t total() const {
    std::int64_t sum = 0;
    for (const auto& [id, count] : slots_) {  // BAD: unordered iteration
      sum += count;
    }
    return sum;
  }

  std::int64_t walk() const {
    std::int64_t sum = 0;
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {  // BAD
      sum += it->second;
    }
    return sum;
  }

 private:
  std::unordered_map<std::uint64_t, std::int64_t> slots_;
};

}  // namespace fixture

// Fixture: trips pointer-ordered-key — std::map/std::set keyed by pointers
// iterate in allocation order, which differs run to run.
#pragma once

#include <map>
#include <set>

namespace fixture {

class Router;

class RouteTable {
 private:
  std::map<Router*, int> next_hop_;  // BAD: pointer-keyed ordered map
  std::set<const Router*> visited_;  // BAD: pointer-keyed ordered set
};

}  // namespace fixture

// Fixture: trips raw-unit-double — a model API whose parameter and field
// carry units in their names instead of their types.
#pragma once

namespace fixture {

class Amplifier {
 public:
  // BAD: unit lives in the name, not the type.
  double output_power(double input_dbm, double gain_db) const;

 private:
  double bandwidth_ghz_ = 1.0;  // BAD: unit-suffixed raw double field
};

}  // namespace fixture

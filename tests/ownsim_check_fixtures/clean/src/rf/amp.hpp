// Fixture: clean model API — units carried by dimensioned wrapper types;
// the names stay descriptive but the suffix lives on the type.
#pragma once

namespace fixture {

struct Decibels {
  double value = 0.0;
};
struct DbmPower {
  double value = 0.0;
};

class Amplifier {
 public:
  DbmPower output_power(DbmPower input, Decibels gain) const;
  // OK: dimensionless double parameters are allowed.
  double compression_ratio(double backoff_fraction) const;
};

}  // namespace fixture

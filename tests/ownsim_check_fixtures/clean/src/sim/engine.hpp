// Fixture: clean control for every rule — unordered containers used for
// point lookups only, an ordered map iterated instead, a fully specified
// Clocked subclass, and a reviewed suppression marker.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

using Cycle = long long;

class Clocked {
 public:
  virtual ~Clocked() = default;
  virtual void eval(Cycle now) = 0;
  virtual void commit(Cycle now) = 0;
  virtual bool is_idle() const { return false; }
};

class Engine final : public Clocked {
 public:
  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}
  bool is_idle() const override { return wake_at_.empty(); }

  // OK: point lookups into an unordered map never observe its order.
  bool pending(std::uint64_t id) const {
    return lookup_.find(id) != lookup_.end();
  }
  void forget(std::uint64_t id) { lookup_.erase(id); }

  // OK: iteration happens over the ordered mirror.
  std::int64_t total() const {
    std::int64_t sum = 0;
    for (const auto& [at, count] : wake_at_) sum += count;
    return sum;
  }

  // A reviewed exception: order provably cannot leak (the sum is
  // commutative), kept as an example of the suppression syntax.
  std::int64_t checksum() const {
    std::int64_t sum = 0;
    // ownsim-check: allow(unordered-iteration)
    for (const auto& [id, count] : lookup_) sum += count;
    return sum;
  }

 private:
  std::unordered_map<std::uint64_t, std::int64_t> lookup_;
  std::map<Cycle, std::int64_t> wake_at_;
};

}  // namespace fixture

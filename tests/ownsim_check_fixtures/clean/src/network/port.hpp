// Fixture: clean obs-counter usage — obs_ naming, mutation-only in sim code
// — and id-keyed (not pointer-keyed) ordered containers.
#pragma once

#include <cstdint>
#include <map>

namespace obs {
class Counter {
 public:
  void inc() {}
  long long value() const { return 0; }
};
}  // namespace obs

namespace fixture {

class Port {
 public:
  void eval() {
    obs_flits_.inc();  // OK: mutation only; never read in sim code
  }

 private:
  obs::Counter obs_flits_;
  std::map<std::uint32_t, int> next_hop_by_id_;  // OK: stable-id key
};

}  // namespace fixture

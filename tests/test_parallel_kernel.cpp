// Tier-1 tests for the partitioned parallel kernel (DESIGN.md §5i):
// engine-level plan/lifecycle contracts plus the bit-identity guarantee —
// the report JSON of a parallel run must equal the activity kernel's
// byte-for-byte, for any partition count and thread count, clean and under
// fault campaigns. The epoch-boundary edge cases live here too: latency-1
// pipes crossing a partition cut (inject/eject channels always do), CRC
// retransmissions arriving non-monotonically at a boundary, and a watchdog
// trip mid-epoch from the serial lane.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/simulate.hpp"
#include "fault/campaign.hpp"
#include "metrics/report.hpp"
#include "network/network.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "topology/registry.hpp"

namespace ownsim {
namespace {

class Probe final : public Clocked {
 public:
  void eval(Cycle now) override { evals.push_back(now); }
  void commit(Cycle now) override { commits.push_back(now); }
  std::vector<Cycle> evals;
  std::vector<Cycle> commits;
};

/// Idleness togglable from the outside (mirrors test_engine.cpp).
struct Sleeper final : Clocked {
  bool idle = false;
  std::vector<Cycle> evals;
  void eval(Cycle now) override { evals.push_back(now); }
  void commit(Cycle) override {}
  bool is_idle() const override { return idle; }
};

ParallelPlan two_partition_plan(std::size_t num_components) {
  ParallelPlan plan;
  plan.num_partitions = 2;
  for (std::size_t i = 0; i < num_components; ++i) {
    plan.partition.push_back(static_cast<int>(i % 2));
    plan.wave.push_back(1);
  }
  return plan;
}

TEST(ParallelEngine, ConfigureRequiresParallelMode) {
  Engine engine;
  Probe p;
  engine.add(&p);
  EXPECT_THROW(engine.configure_parallel(two_partition_plan(1), 2),
               std::logic_error);
}

TEST(ParallelEngine, ConfigureRequiresColdStart) {
  Engine engine;
  engine.set_mode(KernelMode::kParallel);
  Probe p;
  engine.add(&p);
  engine.step();  // planless parallel runs on the activity path
  EXPECT_THROW(engine.configure_parallel(two_partition_plan(1), 2),
               std::logic_error);
}

TEST(ParallelEngine, PlanValidationRejectsBadPlans) {
  Engine engine;
  engine.set_mode(KernelMode::kParallel);
  Probe a, b;
  engine.add(&a);
  engine.add(&b);

  ParallelPlan mismatched = two_partition_plan(2);
  mismatched.wave.pop_back();
  EXPECT_THROW(engine.configure_parallel(mismatched, 2),
               std::invalid_argument);

  ParallelPlan oversized = two_partition_plan(3);  // covers 3, registered 2
  EXPECT_THROW(engine.configure_parallel(oversized, 2),
               std::invalid_argument);

  ParallelPlan bad_wave = two_partition_plan(2);
  bad_wave.wave[0] = 3;
  EXPECT_THROW(engine.configure_parallel(bad_wave, 2), std::invalid_argument);

  ParallelPlan bad_partition = two_partition_plan(2);
  bad_partition.partition[1] = 2;  // >= num_partitions
  EXPECT_THROW(engine.configure_parallel(bad_partition, 2),
               std::invalid_argument);

  ParallelPlan empty;
  EXPECT_THROW(engine.configure_parallel(empty, 2), std::invalid_argument);
}

TEST(ParallelEngine, PlanlessParallelBehavesLikeActivity) {
  Engine engine;
  engine.set_mode(KernelMode::kParallel);
  EXPECT_FALSE(engine.parallel_configured());
  Probe p;
  engine.add(&p);
  engine.run(3);
  EXPECT_EQ(p.evals, (std::vector<Cycle>{0, 1, 2}));
  EXPECT_EQ(p.commits, (std::vector<Cycle>{0, 1, 2}));
}

TEST(ParallelEngine, IdleRetirementAndSkipAheadAcrossPartitions) {
  Engine engine;
  engine.set_mode(KernelMode::kParallel);
  Sleeper a, b;
  engine.add(&a);
  engine.add(&b);
  engine.configure_parallel(two_partition_plan(2), 2);
  EXPECT_TRUE(engine.parallel_configured());

  engine.run(2);
  EXPECT_EQ(a.evals, (std::vector<Cycle>{0, 1}));
  EXPECT_EQ(b.evals, (std::vector<Cycle>{0, 1}));

  // One more eval observes the idleness, then both lanes drain and the
  // remaining budget is skipped in one jump — same schedule the activity
  // kernel produces in test_engine.cpp.
  a.idle = true;
  b.idle = true;
  engine.run(4);
  EXPECT_EQ(a.evals, (std::vector<Cycle>{0, 1, 2}));
  EXPECT_EQ(b.evals, (std::vector<Cycle>{0, 1, 2}));
  EXPECT_EQ(engine.now(), 6);
  EXPECT_GE(engine.stats().cycles_skipped, 3);
}

TEST(ParallelEngine, SetModeTearsDownRuntime) {
  Engine engine;
  engine.set_mode(KernelMode::kParallel);
  Probe p;
  engine.add(&p);
  engine.configure_parallel(two_partition_plan(1), 2);
  ASSERT_TRUE(engine.parallel_configured());
  engine.set_mode(KernelMode::kActivity);
  EXPECT_FALSE(engine.parallel_configured());
  engine.run(2);
  EXPECT_EQ(p.evals, (std::vector<Cycle>{0, 1}));
}

TEST(ParallelEngine, LateAddedComponentsJoinSerialLane) {
  // Components registered after configure_parallel (the driver extras:
  // injector, campaign, watchdog) have ids past the plan and must run in
  // the coordinator's serial lane with their sequential schedule intact.
  Engine engine;
  engine.set_mode(KernelMode::kParallel);
  Probe planned;
  engine.add(&planned);
  engine.configure_parallel(two_partition_plan(1), 2);
  Probe late;
  engine.add(&late);
  engine.run(3);
  EXPECT_EQ(planned.evals, (std::vector<Cycle>{0, 1, 2}));
  EXPECT_EQ(late.evals, (std::vector<Cycle>{0, 1, 2}));
  EXPECT_EQ(late.commits, (std::vector<Cycle>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Report-level bit-identity on real networks. experiment_result_json covers
// latency/throughput, the power breakdown, fault totals and every obs
// counter — a byte-equal string means the runs were indistinguishable.

struct ParityPoint {
  ExperimentResult result;
  std::string json;
};

ParityPoint run_point(ExperimentConfig config, KernelMode mode,
                      int threads = 0, int partitions = 0) {
  config.kernel = mode;
  config.threads = threads;
  config.partitions = partitions;
  ParityPoint point;
  point.result = run_experiment(config);
  point.json = experiment_result_json(point.result);
  return point;
}

/// OWN-256 at a sub-saturation load with short tier-1 phases.
ExperimentConfig own256_experiment() {
  ExperimentConfig config;
  config.options.num_cores = 256;
  config.rate = 0.004;
  config.phases.warmup = 300;
  config.phases.measure = 600;
  config.phases.drain_limit = 8000;
  return config;
}

TEST(ParallelParity, Own256ThreeWayReportsAreByteIdentical) {
  const ExperimentConfig config = own256_experiment();
  const ParityPoint activity = run_point(config, KernelMode::kActivity);
  const ParityPoint lockstep = run_point(config, KernelMode::kLockstep);
  const ParityPoint parallel =
      run_point(config, KernelMode::kParallel, /*threads=*/2);
  ASSERT_TRUE(activity.result.run.drained);
  EXPECT_EQ(activity.json, lockstep.json);
  EXPECT_EQ(activity.json, parallel.json);
}

TEST(ParallelParity, PartitionCountNeverChangesTheReport) {
  // Partition-count sweep including 7 — a count that does not divide the
  // 16 OWN-256 routers, so the contiguous cuts land mid-cluster and the
  // latency-1 inject/eject channels cross every cut into the NIC lane.
  const ExperimentConfig config = own256_experiment();
  const ParityPoint reference = run_point(config, KernelMode::kActivity);
  for (const int partitions : {1, 2, 4, 7}) {
    const ParityPoint parallel = run_point(config, KernelMode::kParallel,
                                           /*threads=*/2, partitions);
    EXPECT_EQ(reference.json, parallel.json)
        << "diverged at partitions=" << partitions;
  }
}

TEST(ParallelParity, ThreadCountNeverChangesTheReport) {
  const ExperimentConfig config = own256_experiment();
  const ParityPoint reference = run_point(config, KernelMode::kActivity);
  for (const int threads : {1, 8}) {
    const ParityPoint parallel =
        run_point(config, KernelMode::kParallel, threads);
    EXPECT_EQ(reference.json, parallel.json)
        << "diverged at threads=" << threads;
  }
}

TEST(ParallelParity, Cmesh1024UsesTheGenericPartitionFallback) {
  // CMESH publishes no partition hint, so the plan falls back to contiguous
  // router blocks; the wired-mesh pipes (latency >= 1 links) are the
  // boundary traffic here instead of the photonic/wireless media.
  ExperimentConfig config;
  config.topology = TopologyKind::kCMesh;
  config.options.num_cores = 1024;
  config.rate = 0.002;
  config.phases.warmup = 200;
  config.phases.measure = 400;
  config.phases.drain_limit = 6000;
  const ParityPoint activity = run_point(config, KernelMode::kActivity);
  const ParityPoint parallel =
      run_point(config, KernelMode::kParallel, /*threads=*/4);
  ASSERT_TRUE(activity.result.run.drained);
  EXPECT_EQ(activity.json, parallel.json);
}

/// OWN-256 with a fault campaign armed (campaign-capable build).
ExperimentConfig campaign_experiment(fault::CampaignConfig fault) {
  ExperimentConfig config = own256_experiment();
  config.phases.measure = 800;
  config.phases.drain_limit = 15000;
  fault.enabled = true;
  config.fault = fault;
  return config;
}

TEST(ParallelParity, TransientCorruptionCampaignIsByteIdentical) {
  // Stress BER: NACKed copies retransmit, so flits arrive at partition
  // boundaries out of send order (non-monotone cycles on one edge). The
  // staging-buffer merge must still reproduce the sequential wheel order.
  fault::CampaignConfig fault;
  fault.margin = Decibels{-8.0};
  const ExperimentConfig config = campaign_experiment(fault);
  const ParityPoint activity = run_point(config, KernelMode::kActivity);
  const ParityPoint parallel =
      run_point(config, KernelMode::kParallel, /*threads=*/4);
  EXPECT_GT(activity.result.fault.crc_errors, 0);
  EXPECT_GT(activity.result.fault.retransmissions, 0);
  EXPECT_EQ(activity.json, parallel.json);
}

TEST(ParallelParity, MidRunDeathReroutesIdentically) {
  // A permanent kill mid-run: the detector's reroute rewrites route state
  // across clusters while partitions are live. Both kernels must degrade
  // the same 16x16 flow set and report identical totals.
  fault::CampaignConfig fault;
  fault.ber = 0.0;
  fault::Event kill;
  kill.kind = fault::EventKind::kKill;
  kill.at = 500;
  kill.src_cluster = 0;
  kill.dst_cluster = 2;
  fault.events.push_back(kill);
  const ExperimentConfig config = campaign_experiment(fault);
  const ParityPoint activity = run_point(config, KernelMode::kActivity);
  const ParityPoint parallel =
      run_point(config, KernelMode::kParallel, /*threads=*/2);
  EXPECT_EQ(activity.result.fault.flows_degraded, 256);
  EXPECT_EQ(parallel.result.fault.flows_degraded, 256);
  EXPECT_EQ(activity.json, parallel.json);
}

/// Runs the token-deadlock watchdog scenario of test_fault.cpp under one
/// kernel and returns the trip cycle plus the full network report.
struct WatchdogOutcome {
  bool tripped = false;
  Cycle trip_now = 0;
  std::string report_json;
};

WatchdogOutcome run_watchdog_deadlock(KernelMode mode) {
  TopologyOptions options;
  options.num_cores = 256;
  Network net(build_topology(TopologyKind::kOwn, options));
  net.engine().set_mode(mode);
  if (mode == KernelMode::kParallel) net.configure_parallel(/*threads=*/2);

  fault::CampaignConfig config;
  config.enabled = true;
  config.ber = 0.0;
  fault::Event loss;
  loss.kind = fault::EventKind::kTokenLoss;
  loss.at = 1;
  loss.medium = 10;  // cluster 0's waveguide home tile 10
  loss.recovery = kNeverCycle;
  config.events.push_back(loss);
  config.watchdog = true;
  config.watchdog_window = 400;
  std::ostringstream diagnostics;  // keep the trip dump off stderr
  config.diagnostics = &diagnostics;
  fault::FaultCampaign campaign(&net, config);
  campaign.attach();  // campaign + watchdog join the serial lane

  // All traffic needs the lost token: deliveries stop, the watchdog trips
  // mid-epoch (its eval runs in the serial phase between the waves and the
  // commit of the same cycle).
  for (NodeId s = 0; s < 4; ++s) {
    const NodeId d = 40 + s;  // tile 10, same cluster
    net.nic().enqueue_packet(s, d, net.router_of(d), 4, 128,
                             net.injection_vc_class(s, d), 0, true);
  }
  net.engine().run_until(
      [&] { return campaign.watchdog_tripped() || net.drained(); }, 5000);

  WatchdogOutcome outcome;
  outcome.tripped = campaign.watchdog_tripped();
  outcome.trip_now = net.engine().now();
  std::ostringstream os;
  NetworkReport(net).write_json(os);
  outcome.report_json = os.str();
  return outcome;
}

TEST(ParallelParity, WatchdogTripMidEpochIsByteIdentical) {
  const WatchdogOutcome activity =
      run_watchdog_deadlock(KernelMode::kActivity);
  const WatchdogOutcome parallel =
      run_watchdog_deadlock(KernelMode::kParallel);
  ASSERT_TRUE(activity.tripped);
  ASSERT_TRUE(parallel.tripped);
  EXPECT_EQ(activity.trip_now, parallel.trip_now);
  EXPECT_EQ(activity.report_json, parallel.report_json);
}

}  // namespace
}  // namespace ownsim

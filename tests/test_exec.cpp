// Tests for the parallel execution subsystem (src/exec): thread pool
// lifecycle, exception propagation, cancellation, parallel_for/map,
// JobGraph batches — and the headline guarantee of the whole layer: a
// latency sweep is bit-identical for 1 and N threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/cancellation.hpp"
#include "exec/job_graph.hpp"
#include "exec/parallel_for.hpp"
#include "exec/thread_pool.hpp"
#include "driver/simulate.hpp"
#include "helpers.hpp"
#include "metrics/sweep.hpp"

namespace ownsim {
namespace {

// ---- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, StartupAndShutdownAreClean) {
  for (unsigned threads : {1u, 2u, 4u}) {
    exec::ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }  // destructor joins with an empty queue
}

TEST(ThreadPool, ClampsZeroThreadsToOne) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, RunsManyTasksAndReturnsValues) {
  exec::ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i, &ran] {
      ran.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  exec::ThreadPool pool(2);
  std::future<int> bad =
      pool.submit([]() -> int { throw std::runtime_error("task boom"); });
  std::future<int> good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    exec::ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
  }  // shutdown is graceful: everything queued still runs
  EXPECT_EQ(ran.load(), 32);
}

// ---- Cancellation ------------------------------------------------------------

TEST(Cancellation, DefaultTokenNeverCancels) {
  const exec::CancellationToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, TokenObservesSource) {
  exec::CancellationSource source;
  const exec::CancellationToken token = source.token();
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(source.cancel_requested());
  source.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancel_requested());
}

// ---- parallel_for / parallel_map ---------------------------------------------

TEST(ParallelFor, CoversEveryIndexOnce10k) {
  exec::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  const bool complete =
      parallel_for(pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_TRUE(complete);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  exec::ThreadPool pool(2);
  EXPECT_TRUE(parallel_for(pool, 0, [](std::size_t) { FAIL(); }));
}

TEST(ParallelFor, RethrowsFirstBodyException) {
  exec::ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 1000,
                            [](std::size_t i) {
                              if (i == 123) {
                                throw std::runtime_error("body boom");
                              }
                            }),
               std::runtime_error);
}

TEST(ParallelFor, PreCancelledTokenRunsNothing) {
  exec::ThreadPool pool(4);
  exec::CancellationSource source;
  source.request_cancel();
  std::atomic<int> ran{0};
  const bool complete = parallel_for(
      pool, 10000, [&](std::size_t) { ran.fetch_add(1); }, source.token());
  EXPECT_FALSE(complete);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelFor, MidFlightCancellationStopsEarly) {
  exec::ThreadPool pool(4);
  exec::CancellationSource source;
  std::atomic<int> ran{0};
  const bool complete = parallel_for(
      pool, 100000,
      [&](std::size_t) {
        if (ran.fetch_add(1) == 50) source.request_cancel();
      },
      source.token());
  EXPECT_FALSE(complete);
  // In-flight iterations finish but the bulk of the range is abandoned.
  EXPECT_LT(ran.load(), 10000);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  exec::ThreadPool pool(4);
  const std::vector<std::size_t> squares = exec::parallel_map(
      pool, 1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 1000u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    ASSERT_EQ(squares[i], i * i);
  }
}

TEST(ParallelMap, ThrowsCancelledWhenTokenFires) {
  exec::ThreadPool pool(2);
  exec::CancellationSource source;
  source.request_cancel();
  EXPECT_THROW(exec::parallel_map(
                   pool, 100, [](std::size_t i) { return i; },
                   source.token()),
               exec::Cancelled);
}

// ---- JobGraph ----------------------------------------------------------------

TEST(JobGraph, RunsAllIndependentJobs) {
  exec::ThreadPool pool(4);
  exec::JobGraph graph;
  std::vector<std::atomic<int>> ran(20);
  for (int i = 0; i < 20; ++i) {
    graph.add("job" + std::to_string(i), [&ran, i] { ran[i].fetch_add(1); });
  }
  const std::vector<exec::JobReport> reports = graph.run(pool);
  ASSERT_EQ(reports.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ran[i].load(), 1);
    EXPECT_TRUE(reports[i].ran);
    EXPECT_FALSE(reports[i].failed);
    EXPECT_GE(reports[i].wall_seconds, 0.0);
  }
}

TEST(JobGraph, RespectsDependencyOrder) {
  exec::ThreadPool pool(4);
  exec::JobGraph graph;
  std::mutex mu;
  std::vector<int> order;
  const auto record = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  const exec::JobId a = graph.add("a", [&] { record(0); });
  const exec::JobId b = graph.add("b", {a}, [&] { record(1); });
  graph.add("c", {b}, [&] { record(2); });
  graph.add("d", {a}, [&] { record(3); });
  graph.run(pool);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);  // a strictly first
  // b before c; d anywhere after a.
  const auto pos = [&](int id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(1), pos(2));
}

TEST(JobGraph, FailureSkipsTransitiveDependents) {
  exec::ThreadPool pool(2);
  exec::JobGraph graph;
  std::atomic<int> ran{0};
  const exec::JobId bad =
      graph.add("bad", [] { throw std::runtime_error("job boom"); });
  const exec::JobId child =
      graph.add("child", {bad}, [&] { ran.fetch_add(1); });
  graph.add("grandchild", {child}, [&] { ran.fetch_add(1); });
  graph.add("independent", [&] { ran.fetch_add(1); });
  const std::vector<exec::JobReport> reports = graph.run(pool);
  EXPECT_TRUE(reports[0].failed);
  EXPECT_NE(reports[0].error.find("job boom"), std::string::npos);
  EXPECT_FALSE(reports[1].ran);
  EXPECT_FALSE(reports[1].failed);
  EXPECT_FALSE(reports[2].ran);
  EXPECT_TRUE(reports[3].ran);
  EXPECT_EQ(ran.load(), 1);  // only the independent job
}

TEST(JobGraph, RejectsUnknownDependency) {
  exec::JobGraph graph;
  EXPECT_THROW(graph.add("x", {0}, [] {}), std::invalid_argument);
  const exec::JobId a = graph.add("a", [] {});
  EXPECT_THROW(graph.add("y", {a + 1}, [] {}), std::invalid_argument);
}

// ---- sweep determinism -------------------------------------------------------

void expect_identical(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.zero_load_latency, b.zero_load_latency);
  EXPECT_EQ(a.saturation_rate, b.saturation_rate);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    const RunResult& x = a.points[i].result;
    const RunResult& y = b.points[i].result;
    EXPECT_EQ(a.points[i].rate, b.points[i].rate);
    EXPECT_EQ(x.offered_rate, y.offered_rate);
    EXPECT_EQ(x.throughput, y.throughput);
    EXPECT_EQ(x.avg_latency, y.avg_latency);
    EXPECT_EQ(x.avg_net_latency, y.avg_net_latency);
    EXPECT_EQ(x.p50_latency, y.p50_latency);
    EXPECT_EQ(x.p99_latency, y.p99_latency);
    EXPECT_EQ(x.max_latency, y.max_latency);
    EXPECT_EQ(x.avg_hops, y.avg_hops);
    EXPECT_EQ(x.measured_packets, y.measured_packets);
    EXPECT_EQ(x.drained, y.drained);
    EXPECT_EQ(x.cycles_simulated, y.cycles_simulated);
    EXPECT_EQ(x.latency_histogram.total(), y.latency_histogram.total());
    EXPECT_EQ(x.latency_histogram.underflow(),
              y.latency_histogram.underflow());
    EXPECT_EQ(x.latency_histogram.overflow(), y.latency_histogram.overflow());
    EXPECT_EQ(x.latency_histogram.counts(), y.latency_histogram.counts());
  }
}

TEST(SweepDeterminism, Own256BitIdenticalAcrossThreadCounts) {
  TopologyOptions topo;
  topo.num_cores = 256;
  const NetworkFactory factory =
      make_network_factory(TopologyKind::kOwn, topo);

  SweepOptions options;
  options.rates = {0.002, 0.004, 0.006};
  options.phases.warmup = 300;
  options.phases.measure = 800;
  options.phases.drain_limit = 8000;
  options.stop_after_saturation = false;
  options.master_seed = 42;

  options.threads = 1;
  const SweepResult serial = latency_sweep(factory, options);
  EXPECT_EQ(serial.telemetry.threads, 1u);
  EXPECT_EQ(serial.telemetry.points_run, 4);  // 3 rates + probe
  EXPECT_GT(serial.telemetry.cycles_simulated, 0);

  options.threads = 4;
  const SweepResult parallel = latency_sweep(factory, options);
  EXPECT_EQ(parallel.telemetry.threads, 4u);

  expect_identical(serial, parallel);
}

TEST(SweepDeterminism, SpeculativeStopMatchesSerialStop) {
  // The ring saturates quickly, so the speculative tail past the knee gets
  // cancelled in the parallel run; the assembled result must still equal
  // the serial stop-at-saturation sweep.
  const NetworkFactory factory = [] {
    return std::make_unique<Network>(testing::ring_spec(8));
  };
  SweepOptions options;
  options.rates = {0.02, 0.05, 0.1, 0.3, 0.6, 0.8, 0.9, 1.0};
  options.phases.warmup = 300;
  options.phases.measure = 1000;
  options.phases.drain_limit = 8000;
  options.stop_after_saturation = true;
  options.master_seed = 7;

  options.threads = 1;
  const SweepResult serial = latency_sweep(factory, options);
  EXPECT_LT(serial.points.size(), options.rates.size());  // it did stop

  options.threads = 4;
  const SweepResult parallel = latency_sweep(factory, options);
  expect_identical(serial, parallel);
}

TEST(SweepDeterminism, MasterSeedSelectsDifferentStreams) {
  const NetworkFactory factory = [] {
    return std::make_unique<Network>(testing::ring_spec(8));
  };
  SweepOptions options;
  options.rates = {0.05};
  options.phases.warmup = 300;
  options.phases.measure = 1500;
  options.phases.drain_limit = 8000;
  options.stop_after_saturation = false;

  options.master_seed = 1;
  const SweepResult a = latency_sweep(factory, options);
  options.master_seed = 2;
  const SweepResult b = latency_sweep(factory, options);
  ASSERT_EQ(a.points.size(), 1u);
  ASSERT_EQ(b.points.size(), 1u);
  // Different master seeds must drive different Bernoulli streams: the
  // measured populations cannot coincide on every statistic.
  const RunResult& x = a.points[0].result;
  const RunResult& y = b.points[0].result;
  EXPECT_TRUE(x.measured_packets != y.measured_packets ||
              x.avg_latency != y.avg_latency ||
              x.max_latency != y.max_latency);
}

TEST(SweepDeterminism, ProgressCallbackSeesEveryPoint) {
  const NetworkFactory factory = [] {
    return std::make_unique<Network>(testing::ring_spec(6));
  };
  SweepOptions options;
  options.rates = {0.02, 0.05, 0.1};
  options.phases.warmup = 200;
  options.phases.measure = 500;
  options.phases.drain_limit = 5000;
  options.stop_after_saturation = false;
  options.threads = 2;
  std::mutex mu;
  std::vector<SweepProgress> snapshots;
  options.progress = [&](const SweepProgress& progress) {
    std::lock_guard<std::mutex> lock(mu);
    snapshots.push_back(progress);
  };
  const SweepResult sweep = latency_sweep(factory, options);
  ASSERT_EQ(snapshots.size(), 4u);  // 3 rates + probe
  for (const SweepProgress& snapshot : snapshots) {
    EXPECT_EQ(snapshot.total, 4);
    EXPECT_GT(snapshot.completed, 0);
    EXPECT_LE(snapshot.completed, 4);
    EXPECT_GT(snapshot.cycles_simulated, 0);
  }
  EXPECT_EQ(sweep.telemetry.points_run, 4);
  EXPECT_EQ(sweep.telemetry.cycles_simulated,
            snapshots.back().cycles_simulated);
}

}  // namespace
}  // namespace ownsim

// Deep structural tests for OWN-1024: per-hop VC-class discipline along
// every kind of route, SWMR reader selection, and multicast accounting at
// scale.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "topology/own.hpp"
#include "traffic/injector.hpp"

namespace ownsim {
namespace {

struct Hop {
  bool wireless = false;
  int vc_class = 0;
};

// Walks the route src_router -> dst_node, recording each hop's medium and
// class.
std::vector<Hop> walk(const NetworkSpec& spec, RouterId src, NodeId dst) {
  const RouterId dst_router = dst / 4;
  std::vector<Hop> hops;
  RouterId at = src;
  while (at != dst_router && hops.size() < 8) {
    const RouteEntry entry = spec.route_table[at][dst_router];
    Hop hop;
    hop.vc_class = entry.vc_class;
    RouterId next = kInvalidId;
    for (const auto& link : spec.links) {
      if (link.src_router == at && link.src_port == entry.out_port) {
        next = link.dst_router;
        hop.wireless = link.medium == MediumType::kWireless;
        break;
      }
    }
    if (next == kInvalidId) {
      for (const auto& medium : spec.media) {
        for (const auto& [wr, wp] : medium.writers) {
          if (wr == at && wp == entry.out_port) {
            const int reader = medium.readers.size() == 1
                                   ? 0
                                   : medium.select_reader(dst, dst_router);
            next = medium.readers[reader].first;
            hop.wireless = medium.medium == MediumType::kWireless;
            break;
          }
        }
        if (next != kInvalidId) break;
      }
    }
    hops.push_back(hop);
    at = next;
  }
  return hops;
}

class Own1024Routing : public ::testing::Test {
 protected:
  void SetUp() override {
    TopologyOptions options;
    options.num_cores = 1024;
    spec_ = build_own(options);
  }
  NetworkSpec spec_;
};

TEST_F(Own1024Routing, ClassDisciplineOnEveryRouteKind) {
  Rng rng(31);
  for (int sample = 0; sample < 3000; ++sample) {
    const auto src_router = static_cast<RouterId>(rng.below(256));
    const auto dst = static_cast<NodeId>(rng.below(1024));
    if (dst / 4 == src_router) continue;
    const auto hops = walk(spec_, src_router, dst);
    ASSERT_LE(hops.size(), 3u) << src_router << "->" << dst;
    int wireless_hops = 0;
    for (const Hop& hop : hops) wireless_hops += hop.wireless ? 1 : 0;
    EXPECT_LE(wireless_hops, 1);
    if (wireless_hops == 0) {
      // Same-cluster photonic: VC0 from plain tiles, VC1 from corner
      // routers (terminal either way).
      ASSERT_EQ(hops.size(), 1u);
      EXPECT_TRUE(hops[0].vc_class == 0 || hops[0].vc_class == 1);
    } else {
      bool seen_wireless = false;
      for (const Hop& hop : hops) {
        if (hop.wireless) {
          seen_wireless = true;
          // Wireless classes: 2 = intra-group, 3 = inter-group.
          EXPECT_TRUE(hop.vc_class == 2 || hop.vc_class == 3);
        } else if (!seen_wireless) {
          EXPECT_EQ(hop.vc_class, 0) << "pre-wireless photonic must ride VC0";
        } else {
          EXPECT_EQ(hop.vc_class, 1) << "post-wireless photonic must ride VC1";
        }
      }
    }
  }
}

TEST_F(Own1024Routing, IntraGroupUsesClass2InterGroupClass3) {
  // Same group, different cluster -> D antenna channel, class 2.
  const RouterId d_router = own_router(0, 0, antenna_tile(Antenna::kD));
  const NodeId same_group = own_router(0, 2, 5) * 4;
  EXPECT_EQ(spec_.route_table[d_router][same_group / 4].vc_class, 2);
  // Different group -> inter-group antenna, class 3.
  const auto& ch = own1024_channel(0, 2);
  const RouterId gate = own_router(0, 1, antenna_tile(ch.antenna));
  const NodeId other_group = own_router(2, 1, 5) * 4;
  EXPECT_EQ(spec_.route_table[gate][other_group / 4].vc_class, 3);
}

TEST_F(Own1024Routing, MulticastSelectsDestinationCluster) {
  for (const auto& medium : spec_.media) {
    if (medium.medium != MediumType::kWireless) continue;
    ASSERT_EQ(medium.readers.size(), 4u);
    for (int cluster = 0; cluster < 4; ++cluster) {
      // Any node of (dst_group, cluster) must map to reader index `cluster`.
      const RouterId reader_router = medium.readers[cluster].first;
      const int reader_cluster = (reader_router / 16) % 4;
      const NodeId probe = reader_router * 4;
      EXPECT_EQ(medium.select_reader(probe, reader_router), reader_cluster);
    }
  }
}

TEST_F(Own1024Routing, MulticastRxScalesWithListeners) {
  TopologyOptions options;
  options.num_cores = 1024;
  Network net(build_own(options));
  TrafficPattern pattern(PatternKind::kUniform, 1024);
  Injector::Params params;
  params.rate = 0.001;
  Injector injector(&net, pattern, params);
  net.engine().add(&injector);
  net.engine().run(4000);
  std::int64_t tx = 0;
  std::int64_t rx = 0;
  for (std::size_t i = 0; i < net.num_media(); ++i) {
    if (net.spec().media[i].medium != MediumType::kWireless) continue;
    tx += net.medium(i).counters().tx_bits;
    rx += net.medium(i).counters().rx_bits;
  }
  ASSERT_GT(tx, 0);
  EXPECT_EQ(rx, 4 * tx);  // all four clusters of the target group listen
}

}  // namespace
}  // namespace ownsim

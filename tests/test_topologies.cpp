// Structural and functional tests for all five topologies at both paper
// sizes. Includes a routing-reachability property check (every route table
// walk terminates at the destination within the topology's hop bound) and
// end-to-end delivery smoke tests through the live simulator.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "network/network.hpp"
#include "topology/cmesh.hpp"
#include "topology/optxb.hpp"
#include "topology/own.hpp"
#include "topology/pclos.hpp"
#include "topology/registry.hpp"
#include "topology/wireless_cmesh.hpp"

namespace ownsim {
namespace {

TopologyOptions options_for(int cores) {
  TopologyOptions opt;
  opt.num_cores = cores;
  return opt;
}

/// Follows route tables (and shared-medium reader selection) from router
/// `src` to `dst`, returning the number of router-to-router hops or -1 on a
/// loop / bound violation.
int walk_route(const NetworkSpec& spec, RouterId src, NodeId dst_node,
               int max_hops) {
  const RouterId dst = spec.nodes[dst_node].router;
  RouterId at = src;
  int hops = 0;
  while (at != dst) {
    if (++hops > max_hops) return -1;
    const RouteEntry entry = spec.route_table[at][dst];
    // Find what the out port connects to.
    RouterId next = kInvalidId;
    for (const auto& link : spec.links) {
      if (link.src_router == at && link.src_port == entry.out_port) {
        next = link.dst_router;
        break;
      }
    }
    if (next == kInvalidId) {
      for (const auto& medium : spec.media) {
        for (const auto& [wr, wp] : medium.writers) {
          if (wr == at && wp == entry.out_port) {
            const int reader =
                medium.readers.size() == 1
                    ? 0
                    : medium.select_reader(dst_node, dst);
            next = medium.readers[reader].first;
            break;
          }
        }
        if (next != kInvalidId) break;
      }
    }
    if (next == kInvalidId || next == at) return -1;
    at = next;
  }
  return hops;
}

struct TopoCase {
  TopologyKind kind;
  int cores;
  int max_hops;  ///< link hops bound (paper: OWN 3, OptXB 1, ...)
};

class Topologies : public ::testing::TestWithParam<TopoCase> {};

TEST_P(Topologies, SpecValidatesAndBuilds) {
  const auto& param = GetParam();
  const NetworkSpec spec = build_topology(param.kind, options_for(param.cores));
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.num_nodes, param.cores);
  Network net(build_topology(param.kind, options_for(param.cores)));
  EXPECT_GT(net.engine().num_components(), 0u);
}

TEST_P(Topologies, RoutesReachEveryDestinationWithinBound) {
  const auto& param = GetParam();
  const NetworkSpec spec = build_topology(param.kind, options_for(param.cores));
  Rng rng(321);
  // Exhaustive at 256, sampled at 1024 (keeps the test fast).
  const int samples = param.cores == 256 ? 0 : 4000;
  if (samples == 0) {
    for (NodeId s = 0; s < spec.num_nodes; s += 4) {  // one core per router
      for (NodeId d = 0; d < spec.num_nodes; d += 3) {
        const int hops = walk_route(spec, spec.nodes[s].router, d,
                                    param.max_hops);
        ASSERT_GE(hops, 0) << "unroutable " << s << "->" << d;
      }
    }
  } else {
    for (int i = 0; i < samples; ++i) {
      const auto s = static_cast<NodeId>(rng.below(spec.num_nodes));
      const auto d = static_cast<NodeId>(rng.below(spec.num_nodes));
      const int hops =
          walk_route(spec, spec.nodes[s].router, d, param.max_hops);
      ASSERT_GE(hops, 0) << "unroutable " << s << "->" << d;
    }
  }
}

TEST_P(Topologies, DeliversRandomTraffic) {
  const auto& param = GetParam();
  Network net(build_topology(param.kind, options_for(param.cores)));
  Rng rng(7);
  const int packets = 300;
  for (int i = 0; i < packets; ++i) {
    const auto s = static_cast<NodeId>(rng.below(param.cores));
    const auto d = static_cast<NodeId>(rng.below(param.cores));
    net.nic().enqueue_packet(s, d, net.router_of(d), 4, 128,
                             net.injection_vc_class(s, d), 0, true);
  }
  ASSERT_TRUE(ownsim::testing::drain(net, 400000));
  EXPECT_EQ(net.nic().records().size(), static_cast<std::size_t>(packets));
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Topologies,
    ::testing::Values(TopoCase{TopologyKind::kCMesh, 256, 14},
                      TopoCase{TopologyKind::kCMesh, 1024, 30},
                      TopoCase{TopologyKind::kWirelessCMesh, 256, 8},
                      TopoCase{TopologyKind::kWirelessCMesh, 1024, 16},
                      TopoCase{TopologyKind::kOptXB, 256, 1},
                      TopoCase{TopologyKind::kOptXB, 1024, 1},
                      TopoCase{TopologyKind::kPClos, 256, 2},
                      TopoCase{TopologyKind::kPClos, 1024, 2},
                      TopoCase{TopologyKind::kOwn, 256, 3},
                      TopoCase{TopologyKind::kOwn, 1024, 3}),
    [](const ::testing::TestParamInfo<TopoCase>& param_info) {
      std::string name = to_string(param_info.param.kind);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_" + std::to_string(param_info.param.cores);
    });

// ---- topology-specific structure checks --------------------------------------

TEST(CMeshStructure, RadixAndDiameterMatchPaper) {
  const NetworkSpec spec = build_cmesh(options_for(256));
  EXPECT_EQ(spec.num_routers(), 64);
  // Radix 8 = 4 mesh ports + 4 cores for interior routers; borders shrink.
  const int interior = 1 * 8 + 1;  // (1,1) on the 8x8 grid
  EXPECT_EQ(spec.routers[interior].num_net_in, 4);
  EXPECT_EQ(spec.routers[interior].num_net_out, 4);
  EXPECT_EQ(spec.routers[0].num_net_out, 2);  // corner
  // Max diameter 2(sqrt(n)-1) = 14 link hops: corner-to-corner walk.
  EXPECT_EQ(walk_route(spec, 0, 255, 14), 14);
}

TEST(OptXBStructure, RadixMatchesPaper) {
  const NetworkSpec spec = build_optxb(options_for(256));
  EXPECT_EQ(spec.num_routers(), 64);
  // 63 crossbar writer ports (+4 cores appended by the assembler) = radix 67.
  EXPECT_EQ(spec.routers[0].num_net_out, 63);
  EXPECT_EQ(spec.routers[0].num_net_in, 1);
  EXPECT_EQ(spec.media.size(), 64u);
  for (const auto& wg : spec.media) {
    EXPECT_EQ(wg.writers.size(), 63u);
    EXPECT_EQ(wg.readers.size(), 1u);
  }
}

TEST(WirelessCMeshStructure, RadixMatchesPaper) {
  const NetworkSpec spec = build_wireless_cmesh(options_for(256));
  EXPECT_EQ(spec.num_routers(), 64);
  // Interior wireless head: 3 electrical + 4 wireless (= radix 11 with 4
  // cores); border heads have fewer grid neighbors.
  const int interior_head = (1 * 4 + 1) * 4;  // cluster (1,1)
  EXPECT_EQ(spec.routers[interior_head].num_net_out, 7);
  EXPECT_EQ(spec.routers[0].num_net_out, 5);  // NW corner head
  // Plain cluster router: 3 electrical.
  EXPECT_EQ(spec.routers[1].num_net_out, 3);
  int wireless_links = 0;
  for (const auto& link : spec.links) {
    if (link.medium == MediumType::kWireless) ++wireless_links;
  }
  EXPECT_EQ(wireless_links, 2 * 2 * 4 * 3);  // 4x4 grid, 24 edges, 2 dirs
}

TEST(PClosStructure, TwoLinkHops) {
  const NetworkSpec spec = build_pclos(options_for(256));
  EXPECT_EQ(spec.num_routers(), 16);  // 8 leaves + 8 middles
  for (NodeId d = 0; d < 256; d += 17) {
    EXPECT_LE(walk_route(spec, 0, d, 2), 2);
  }
}

TEST(OwnStructure, RadixAndChannelCountsMatchPaper) {
  const NetworkSpec spec = build_own(options_for(256));
  EXPECT_EQ(spec.num_routers(), 64);
  // Gateway router: 15 photonic + 1 wireless out (radix 20 with 4 cores).
  EXPECT_EQ(spec.routers[own_router(0, 0, 0)].num_net_out, 16);
  // Plain tile: 15 photonic out (radix 19 with 4 cores).
  EXPECT_EQ(spec.routers[own_router(0, 0, 5)].num_net_out, 15);
  // 4 clusters x 16 home waveguides.
  EXPECT_EQ(spec.media.size(), 64u);
  // 12 wireless point-to-point channels.
  EXPECT_EQ(spec.links.size(), 12u);
}

TEST(OwnStructure, WorstCaseThreeHops) {
  const NetworkSpec spec = build_own(options_for(256));
  int worst = 0;
  for (NodeId s = 0; s < 256; s += 4) {
    for (NodeId d = 0; d < 256; d += 4) {
      if (spec.nodes[s].router == spec.nodes[d].router) continue;
      const int hops = walk_route(spec, spec.nodes[s].router, d, 3);
      ASSERT_GE(hops, 0);
      worst = std::max(worst, hops);
    }
  }
  EXPECT_EQ(worst, 3);
}

TEST(OwnStructure, Own1024UsesSixteenSwmrChannels) {
  const NetworkSpec spec = build_own(options_for(1024));
  EXPECT_EQ(spec.num_routers(), 256);
  int wireless_media = 0;
  for (const auto& medium : spec.media) {
    if (medium.medium == MediumType::kWireless) {
      ++wireless_media;
      EXPECT_EQ(medium.writers.size(), 4u);
      EXPECT_EQ(medium.readers.size(), 4u);
      EXPECT_TRUE(medium.multicast_rx);
    }
  }
  EXPECT_EQ(wireless_media, 16);
  // 4 groups x 4 clusters x 16 waveguides + 16 wireless.
  EXPECT_EQ(spec.media.size(), 16u * 16u + 16u);
}

TEST(OwnStructure, InterClusterPathUsesGatewayOfTableOne) {
  // Cluster 0 -> cluster 2 must leave through antenna A of cluster 0
  // (tile 0) and arrive at antenna B of cluster 2 (tile 3): Table I, A0-B2.
  const NetworkSpec spec = build_own(options_for(256));
  const RouterId src = own_router(0, 0, 9);  // interior tile of cluster 0
  const NodeId dst_node = (own_router(0, 2, 9)) * 4;
  const RouteEntry first = spec.route_table[src][spec.nodes[dst_node].router];
  // First hop: photonic writer toward tile 0 (gateway A).
  EXPECT_EQ(first.out_port, own_writer_port(9, 0));
  const RouterId gateway = own_router(0, 0, 0);
  const RouteEntry second =
      spec.route_table[gateway][spec.nodes[dst_node].router];
  EXPECT_EQ(second.out_port, 15);  // wireless transmitter
  // The wireless link lands on cluster 2's B corner (tile 3).
  const auto& link = spec.links[own256_channel(0, 2).id];
  EXPECT_EQ(link.dst_router, own_router(0, 2, 3));
}

TEST(CMeshO1Turn, ValidatesAndDelivers) {
  TopologyOptions options;
  options.num_cores = 256;
  options.cmesh_o1turn = true;
  Network net(build_cmesh(options));
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const auto s = static_cast<NodeId>(rng.below(256));
    const auto d = static_cast<NodeId>(rng.below(256));
    // Alternate the routing function per packet like the injector does.
    const bool alt = (i % 2) == 1;
    net.nic().enqueue_packet(s, d, net.router_of(d), 4, 128,
                             net.injection_vc_class(s, d, alt), 0, true);
  }
  ASSERT_TRUE(ownsim::testing::drain(net, 400000));
  EXPECT_EQ(net.nic().records().size(), 400u);
}

TEST(CMeshO1Turn, YxTableRoutesYFirst) {
  TopologyOptions options;
  options.num_cores = 256;
  options.cmesh_o1turn = true;
  const NetworkSpec spec = build_cmesh(options);
  ASSERT_TRUE(spec.has_alt_routing());
  // From router 0 (corner) to router 9 (x=1, y=1): XY goes east first, YX
  // goes south first.
  const RouteEntry xy = spec.route_table[0][9];
  const RouteEntry yx = spec.route_table_alt[0][9];
  EXPECT_NE(xy.out_port, yx.out_port);
  EXPECT_EQ(xy.vc_class, 0);
  EXPECT_EQ(yx.vc_class, 1);
}

TEST(CMeshO1Turn, RejectsSingleVc) {
  TopologyOptions options;
  options.num_cores = 256;
  options.cmesh_o1turn = true;
  options.num_vcs = 1;
  EXPECT_THROW(build_cmesh(options), std::invalid_argument);
}

TEST(Registry, ParsesAndLists) {
  EXPECT_EQ(parse_topology("OWN"), TopologyKind::kOwn);
  EXPECT_EQ(parse_topology("p-clos"), TopologyKind::kPClos);
  EXPECT_EQ(paper_topologies().size(), 5u);
  EXPECT_THROW(parse_topology("hypercube"), std::invalid_argument);
}

}  // namespace
}  // namespace ownsim

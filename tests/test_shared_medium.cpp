// Tests for token-arbitrated shared media: MWSR waveguide semantics (many
// writers, one home reader, token fairness, wormhole token hold) and SWMR
// wireless multicast semantics (reader selection, multicast RX energy).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "network/network.hpp"

namespace ownsim {
namespace {

using testing::drain;

// Star: routers 0..2 write an MWSR waveguide whose home is router 3; router 3
// has electrical return links to 0..2. One node per router.
NetworkSpec mwsr_star_spec(int cycles_per_flit = 1) {
  NetworkSpec spec;
  spec.name = "mwsr-star";
  spec.num_nodes = 4;
  spec.num_vcs = 4;
  spec.buffer_depth = 8;
  spec.routers = {{1, 1}, {1, 1}, {1, 1}, {1, 3}};
  spec.nodes = {{0}, {1}, {2}, {3}};
  spec.vc_classes = {{0, 4}};

  MediumSpec wg;
  wg.medium = MediumType::kPhotonic;
  wg.writers = {{0, 0}, {1, 0}, {2, 0}};
  wg.readers = {{3, 0}};
  wg.cycles_per_flit = cycles_per_flit;
  wg.name = "wg-home3";
  spec.media.push_back(std::move(wg));

  for (RouterId r = 0; r < 3; ++r) {
    LinkSpec link;
    link.src_router = 3;
    link.src_port = r;
    link.dst_router = r;
    link.dst_port = 0;
    link.name = "ret" + std::to_string(r);
    spec.links.push_back(link);
  }

  spec.route_table.assign(4, std::vector<RouteEntry>(4));
  for (RouterId r = 0; r < 3; ++r) {
    for (RouterId d = 0; d < 4; ++d) {
      if (d == r) continue;
      spec.route_table[r][d] = {0, 0};  // everything via the waveguide
    }
  }
  for (RouterId d = 0; d < 3; ++d) spec.route_table[3][d] = {d, 0};
  return spec;
}

// SWMR: routers 0,1 (group A) write one wireless channel heard by routers
// 2,3 (group B); the intended cluster forwards, the other discards.
NetworkSpec swmr_spec() {
  NetworkSpec spec;
  spec.name = "swmr";
  spec.num_nodes = 4;
  spec.num_vcs = 4;
  spec.buffer_depth = 8;
  spec.routers = {{1, 1}, {1, 1}, {1, 1}, {1, 1}};
  spec.nodes = {{0}, {1}, {2}, {3}};
  spec.vc_classes = {{0, 4}};

  MediumSpec ch;
  ch.medium = MediumType::kWireless;
  ch.writers = {{0, 0}, {1, 0}};
  ch.readers = {{2, 0}, {3, 0}};
  ch.multicast_rx = true;
  ch.select_reader = [](NodeId, RouterId dst_router) {
    return dst_router == 2 ? 0 : 1;
  };
  ch.name = "swmr-ab";
  spec.media.push_back(std::move(ch));

  MediumSpec back = spec.media[0];
  back.writers = {{2, 0}, {3, 0}};
  back.readers = {{0, 0}, {1, 0}};
  back.select_reader = [](NodeId, RouterId dst_router) {
    return dst_router == 0 ? 0 : 1;
  };
  back.name = "swmr-ba";
  spec.media.push_back(std::move(back));

  spec.route_table.assign(4, std::vector<RouteEntry>(4));
  for (RouterId r = 0; r < 4; ++r) {
    for (RouterId d = 0; d < 4; ++d) {
      if (d != r) spec.route_table[r][d] = {0, 0};
    }
  }
  return spec;
}

void send(Network& net, NodeId src, NodeId dst, int flits = 4) {
  net.nic().enqueue_packet(src, dst, net.router_of(dst), flits, 128,
                           net.injection_vc_class(src, dst),
                           net.engine().now(), true);
}

TEST(MwsrMedium, SingleWriterDelivers) {
  Network net(mwsr_star_spec());
  send(net, 0, 3);
  ASSERT_TRUE(drain(net, 500));
  ASSERT_EQ(net.nic().records().size(), 1u);
  EXPECT_EQ(net.nic().records()[0].hops, 2);
  EXPECT_EQ(net.medium(0).counters().packets, 1);
  EXPECT_EQ(net.medium(0).counters().flits, 4);
  EXPECT_EQ(net.medium(0).counters().tx_bits, 4 * 128);
  EXPECT_EQ(net.medium(0).counters().rx_bits, 4 * 128);  // single reader
}

TEST(MwsrMedium, ThreeWritersAllDeliverWithoutInterleaving) {
  Network net(mwsr_star_spec());
  for (int i = 0; i < 10; ++i) {
    send(net, 0, 3);
    send(net, 1, 3);
    send(net, 2, 3);
  }
  ASSERT_TRUE(drain(net, 10000));
  EXPECT_EQ(net.nic().records().size(), 30u);
  EXPECT_EQ(net.medium(0).counters().packets, 30);
}

TEST(MwsrMedium, TokenRoundRobinIsFair) {
  Network net(mwsr_star_spec());
  for (int i = 0; i < 30; ++i) {
    send(net, 0, 3);
    send(net, 1, 3);
    send(net, 2, 3);
  }
  ASSERT_TRUE(drain(net, 50000));
  // Count per-source packets among the first 15 ejections: every writer
  // should appear several times (no starvation under saturation).
  int per_src[3] = {0, 0, 0};
  for (std::size_t i = 0; i < 15; ++i) {
    ++per_src[net.nic().records()[i].src];
  }
  for (int s = 0; s < 3; ++s) EXPECT_GE(per_src[s], 2) << "src " << s;
}

TEST(MwsrMedium, MultiHopThroughHomeRouter) {
  Network net(mwsr_star_spec());
  send(net, 0, 2);  // 0 -> waveguide -> router 3 -> electrical -> router 2
  ASSERT_TRUE(drain(net, 500));
  ASSERT_EQ(net.nic().records().size(), 1u);
  EXPECT_EQ(net.nic().records()[0].hops, 3);
}

TEST(MwsrMedium, SerializationThrottlesBus) {
  Network fast(mwsr_star_spec(1));
  Network slow(mwsr_star_spec(8));
  send(fast, 0, 3);
  send(slow, 0, 3);
  ASSERT_TRUE(drain(fast, 2000));
  ASSERT_TRUE(drain(slow, 2000));
  const Cycle f = fast.nic().records()[0].total_latency();
  const Cycle s = slow.nic().records()[0].total_latency();
  // 3 extra flit slots at +7 cycles each, minus the slack the staging buffer
  // already hides while the router forwards body flits.
  EXPECT_GE(s, f + 15);
}

TEST(MwsrMedium, RandomStressDrains) {
  Network net(mwsr_star_spec());
  Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    const auto s = static_cast<NodeId>(rng.below(4));
    auto d = static_cast<NodeId>(rng.below(4));
    send(net, s, d, 1 + static_cast<int>(rng.below(6)));
  }
  ASSERT_TRUE(drain(net, 200000));
  EXPECT_EQ(net.nic().records().size(), 300u);
}

TEST(SwmrMedium, DeliversToIntendedReaderOnly) {
  Network net(swmr_spec());
  send(net, 0, 2);
  send(net, 1, 3);
  ASSERT_TRUE(drain(net, 1000));
  ASSERT_EQ(net.nic().records().size(), 2u);
  for (const auto& rec : net.nic().records()) {
    EXPECT_EQ(rec.hops, 2);
  }
}

TEST(SwmrMedium, MulticastChargesAllListeners) {
  Network net(swmr_spec());
  send(net, 0, 2, 4);
  ASSERT_TRUE(drain(net, 1000));
  const auto& counters = net.medium(0).counters();
  EXPECT_EQ(counters.tx_bits, 4 * 128);
  EXPECT_EQ(counters.rx_bits, 2 * 4 * 128);  // both group-B clusters listen
}

TEST(SwmrMedium, TokenSharedBetweenWriters) {
  Network net(swmr_spec());
  for (int i = 0; i < 20; ++i) {
    send(net, 0, 2);
    send(net, 1, 3);
  }
  ASSERT_TRUE(drain(net, 20000));
  EXPECT_EQ(net.nic().records().size(), 40u);
  EXPECT_EQ(net.medium(0).counters().packets, 40);
  // Bidirectional media: reverse channel untouched.
  EXPECT_EQ(net.medium(1).counters().packets, 0);
}

TEST(SwmrMedium, BidirectionalTraffic) {
  Network net(swmr_spec());
  for (int i = 0; i < 10; ++i) {
    send(net, 0, 3);
    send(net, 3, 0);
    send(net, 2, 1);
  }
  ASSERT_TRUE(drain(net, 20000));
  EXPECT_EQ(net.nic().records().size(), 30u);
  EXPECT_EQ(net.medium(0).counters().packets, 10);
  EXPECT_EQ(net.medium(1).counters().packets, 20);
}

}  // namespace
}  // namespace ownsim

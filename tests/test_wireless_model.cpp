// Tests for the wireless technology model: Table III band plan, Table I/II
// channel allocation, Table IV configurations, SDM reuse.
#include <gtest/gtest.h>

#include <set>

#include "wireless/band_plan.hpp"
#include "wireless/channel_alloc.hpp"
#include "wireless/configurations.hpp"
#include "wireless/technology.hpp"

namespace ownsim {
namespace {

// ---- technology -----------------------------------------------------------------

TEST(Technology, BaseEfficienciesFromPaper) {
  EXPECT_DOUBLE_EQ(base_efficiency(WirelessTech::kCmos).in(1.0_pj_per_bit), 0.1);
  EXPECT_DOUBLE_EQ(base_efficiency(WirelessTech::kSiGeHbt).in(1.0_pj_per_bit), 0.5);
  EXPECT_DOUBLE_EQ(base_efficiency(WirelessTech::kBiCmos).in(1.0_pj_per_bit), 0.3);
}

TEST(Technology, RampsFromPaper) {
  const auto ramp_pj = [](WirelessTech tech, Scenario scenario) {
    return efficiency_ramp(tech, scenario).in(1.0_pj_per_bit);
  };
  EXPECT_DOUBLE_EQ(ramp_pj(WirelessTech::kCmos, Scenario::kIdeal), 0.05);
  EXPECT_DOUBLE_EQ(ramp_pj(WirelessTech::kBiCmos, Scenario::kIdeal), 0.07);
  EXPECT_DOUBLE_EQ(ramp_pj(WirelessTech::kSiGeHbt, Scenario::kIdeal), 0.10);
  EXPECT_DOUBLE_EQ(ramp_pj(WirelessTech::kSiGeHbt, Scenario::kConservative),
                   0.07);
}

TEST(Technology, EnergyRampsWithFrequency) {
  const EnergyPerBit at100 =
      energy_per_bit(WirelessTech::kCmos, Scenario::kIdeal, 100.0_ghz);
  const EnergyPerBit at200 =
      energy_per_bit(WirelessTech::kCmos, Scenario::kIdeal, 200.0_ghz);
  EXPECT_DOUBLE_EQ(at100.in(1.0_pj_per_bit), 0.1);
  EXPECT_DOUBLE_EQ(at200.in(1.0_pj_per_bit), 0.15);
}

TEST(Technology, ScenarioBandwidths) {
  EXPECT_DOUBLE_EQ(channel_bandwidth(Scenario::kIdeal).in(1.0_ghz), 32.0);
  EXPECT_DOUBLE_EQ(channel_bandwidth(Scenario::kConservative).in(1.0_ghz), 16.0);
  EXPECT_DOUBLE_EQ(guard_band(Scenario::kIdeal).in(1.0_ghz), 8.0);
  EXPECT_DOUBLE_EQ(guard_band(Scenario::kConservative).in(1.0_ghz), 4.0);
}

// ---- band plan (Table III) --------------------------------------------------------

class BandPlanTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(BandPlanTest, SixteenIsolatedChannels) {
  const BandPlan plan(GetParam());
  ASSERT_EQ(plan.links().size(), 16u);
  const Frequency guard = guard_band(GetParam());
  for (int i = 1; i < 16; ++i) {
    const auto& a = plan.link(i - 1);
    const auto& b = plan.link(i);
    const Frequency gap =
        (b.center - b.bandwidth / 2.0) - (a.center + a.bandwidth / 2.0);
    EXPECT_NEAR(gap.in(1.0_ghz), guard.in(1.0_ghz), 1e-9) << "link " << i;
  }
}

TEST_P(BandPlanTest, ExactlyFourCmosChannels) {
  // §V.B: "Table III shows only four channels with CMOS".
  const BandPlan plan(GetParam());
  EXPECT_EQ(plan.links_of(WirelessTech::kCmos).size(), 4u);
}

TEST_P(BandPlanTest, HbtOnlyAboveAbout300GHz) {
  const BandPlan plan(GetParam());
  for (const auto& link : plan.links()) {
    if (link.center > 300.0_ghz) {
      EXPECT_EQ(link.tech, WirelessTech::kSiGeHbt) << link.center;
    } else {
      EXPECT_NE(link.tech, WirelessTech::kSiGeHbt) << link.center;
    }
  }
}

TEST_P(BandPlanTest, EnergyIncreasesWithFrequencyWithinTech) {
  const BandPlan plan(GetParam());
  for (WirelessTech tech : {WirelessTech::kCmos, WirelessTech::kBiCmos,
                            WirelessTech::kSiGeHbt}) {
    EnergyPerBit prev{-1.0};
    for (int index : plan.links_of(tech)) {
      EXPECT_GT(plan.link(index).energy_per_bit, prev);
      prev = plan.link(index).energy_per_bit;
    }
  }
}

TEST_P(BandPlanTest, FourReconfigurationLinks) {
  const BandPlan plan(GetParam());
  int reconf = 0;
  for (const auto& link : plan.links()) reconf += link.reconfiguration ? 1 : 0;
  EXPECT_EQ(reconf, 4);  // links 13-16 of Table III
}

INSTANTIATE_TEST_SUITE_P(BothScenarios, BandPlanTest,
                         ::testing::Values(Scenario::kIdeal,
                                           Scenario::kConservative),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(BandPlan, IdealSpans100To700GHz) {
  const BandPlan plan(Scenario::kIdeal);
  EXPECT_DOUBLE_EQ(plan.link(0).center.in(1.0_ghz), 100.0);
  EXPECT_DOUBLE_EQ(plan.link(15).center.in(1.0_ghz), 700.0);
  const BandPlan cons(Scenario::kConservative);
  EXPECT_DOUBLE_EQ(cons.link(15).center.in(1.0_ghz), 400.0);
}

// ---- channel allocation (Tables I, II) ----------------------------------------------

TEST(ChannelAlloc, TwelveChannelsCoverAllClusterPairs) {
  const auto& channels = own256_channels();
  ASSERT_EQ(channels.size(), 12u);
  std::set<std::pair<int, int>> pairs;
  for (const auto& ch : channels) {
    EXPECT_NE(ch.src_cluster, ch.dst_cluster);
    pairs.insert({ch.src_cluster, ch.dst_cluster});
  }
  EXPECT_EQ(pairs.size(), 12u);  // every ordered pair exactly once
}

TEST(ChannelAlloc, DistanceClassesMatchTableOne) {
  // Diagonals: 0<->2 and 1<->3; edges: 0<->1 and 2<->3; short: 0<->3, 1<->2.
  EXPECT_EQ(own256_channel(0, 2).distance, DistanceClass::kC2C);
  EXPECT_EQ(own256_channel(3, 1).distance, DistanceClass::kC2C);
  EXPECT_EQ(own256_channel(0, 1).distance, DistanceClass::kE2E);
  EXPECT_EQ(own256_channel(2, 3).distance, DistanceClass::kE2E);
  EXPECT_EQ(own256_channel(0, 3).distance, DistanceClass::kSR);
  EXPECT_EQ(own256_channel(1, 2).distance, DistanceClass::kSR);
}

TEST(ChannelAlloc, LdFactorsAndDistancesMatchPaper) {
  EXPECT_DOUBLE_EQ(ld_factor(DistanceClass::kC2C), 1.0);
  EXPECT_DOUBLE_EQ(ld_factor(DistanceClass::kE2E), 0.5);
  EXPECT_DOUBLE_EQ(ld_factor(DistanceClass::kSR), 0.15);
  EXPECT_DOUBLE_EQ(distance_of(DistanceClass::kC2C).in(1.0_mm), 60.0);
  EXPECT_DOUBLE_EQ(distance_of(DistanceClass::kE2E).in(1.0_mm), 30.0);
  EXPECT_DOUBLE_EQ(distance_of(DistanceClass::kSR).in(1.0_mm), 10.0);
}

TEST(ChannelAlloc, ShortRangeUsesCAntennas) {
  const OwnChannel& ch = own256_channel(0, 3);
  EXPECT_EQ(ch.src_antenna, Antenna::kC);
  EXPECT_EQ(ch.dst_antenna, Antenna::kC);
}

TEST(ChannelAlloc, SdmReuseNeedsEightFrequencies) {
  // §V.B: with SDM the 12 channels fit in 8 frequencies (diagonals cannot
  // be reused; edge/short pairs can).
  const auto groups = own256_sdm_groups();
  EXPECT_EQ(std::set<int>(groups.begin(), groups.end()).size(), 8u);
}

TEST(ChannelAlloc, Own1024SixteenChannels) {
  const auto& channels = own1024_channels();
  ASSERT_EQ(channels.size(), 16u);
  int intra = 0;
  for (const auto& ch : channels) intra += ch.intra_group() ? 1 : 0;
  EXPECT_EQ(intra, 4);
  EXPECT_EQ(own1024_channel(2, 2).antenna, Antenna::kD);
  EXPECT_EQ(own1024_channel(0, 2).distance, DistanceClass::kC2C);
}

// ---- configurations (Table IV) + Fig 5 energy ordering ------------------------------

TEST(Configurations, TableFourMapping) {
  EXPECT_EQ(config_tech(OwnConfig::kConfig1, DistanceClass::kC2C),
            WirelessTech::kSiGeHbt);
  EXPECT_EQ(config_tech(OwnConfig::kConfig2, DistanceClass::kC2C),
            WirelessTech::kCmos);
  EXPECT_EQ(config_tech(OwnConfig::kConfig3, DistanceClass::kE2E),
            WirelessTech::kBiCmos);
  EXPECT_EQ(config_tech(OwnConfig::kConfig4, DistanceClass::kSR),
            WirelessTech::kBiCmos);
}

TEST(Configurations, AssignsTwelveChannelsBothScenarios) {
  for (Scenario scenario : {Scenario::kIdeal, Scenario::kConservative}) {
    for (OwnConfig config : all_configs()) {
      ChannelEnergyModel model(config, scenario);
      EXPECT_EQ(model.assignments().size(), 12u);
      for (const auto& a : model.assignments()) {
        EXPECT_GT(a.tx_epb.value(), 0.0);
        EXPECT_GT(a.rx_epb.value(), 0.0);
      }
    }
  }
}

TEST(Configurations, AssignedLinkTechMatchesConfig) {
  ChannelEnergyModel model(OwnConfig::kConfig2, Scenario::kIdeal);
  const BandPlan plan(Scenario::kIdeal);
  for (const auto& a : model.assignments()) {
    EXPECT_EQ(plan.link(a.band_link).tech, a.tech);
    EXPECT_EQ(a.tech, config_tech(OwnConfig::kConfig2, a.distance));
  }
}

double mean_epb(const ChannelEnergyModel& model) {
  double sum = 0;
  for (const auto& a : model.assignments()) {
    sum += model.epb(a.channel_id).in(1.0_pj_per_bit);
  }
  return sum / static_cast<double>(model.assignments().size());
}

TEST(Configurations, Fig5OrderingCmosConfigsCheapest) {
  // Fig 5: configs 1 and 3 (SiGe on the long links) burn significantly more
  // than 2, and config 4 (no SiGe anywhere) is cheapest.
  for (Scenario scenario : {Scenario::kIdeal, Scenario::kConservative}) {
    const double c1 = mean_epb(ChannelEnergyModel(OwnConfig::kConfig1, scenario));
    const double c2 = mean_epb(ChannelEnergyModel(OwnConfig::kConfig2, scenario));
    const double c3 = mean_epb(ChannelEnergyModel(OwnConfig::kConfig3, scenario));
    const double c4 = mean_epb(ChannelEnergyModel(OwnConfig::kConfig4, scenario));
    EXPECT_GT(c1, c2) << to_string(scenario);
    EXPECT_GT(c3, c2) << to_string(scenario);
    EXPECT_GT(c2, c4) << to_string(scenario);
  }
}

TEST(Configurations, LdFactorScalesTxOnly) {
  ChannelEnergyModel model(OwnConfig::kConfig1, Scenario::kIdeal);
  for (const auto& a : model.assignments()) {
    EXPECT_NEAR(a.tx_epb.in(1.0_pj_per_bit),
                (kTxEnergyShare * ld_factor(a.distance) * a.tech_epb)
                    .in(1.0_pj_per_bit),
                1e-12);
    EXPECT_NEAR(a.rx_epb.in(1.0_pj_per_bit),
                ((1.0 - kTxEnergyShare) * a.tech_epb).in(1.0_pj_per_bit),
                1e-12);
  }
}

TEST(Configurations, SixteenChannelModelForOwn1024) {
  ChannelEnergyModel model(OwnConfig::kConfig4, Scenario::kIdeal, 16);
  EXPECT_EQ(model.assignments().size(), 16u);
}

}  // namespace
}  // namespace ownsim

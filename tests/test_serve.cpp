// Serve subsystem: canonical JSON, cache keys, the content-addressed result
// store, and the ExperimentService scheduling/memoization contract
// (DESIGN.md §5g). The headline properties under test:
//
//   * canonical_config_json is byte-stable and round-trips exactly;
//   * the store NEVER serves bytes that fail verification (truncation, bit
//     flips, header mismatches all reject + recompute);
//   * a cache hit is bit-identical to a fresh run;
//   * N concurrent identical submissions simulate exactly once.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/numfmt.hpp"
#include "common/sha256.hpp"
#include "driver/experiment_config.hpp"
#include "driver/simulate.hpp"
#include "serve/json.hpp"
#include "serve/result_store.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace ownsim {
namespace {

using serve::Json;

std::filesystem::path fresh_temp_dir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("ownsim_serve_test_" + tag + "_" + format_int(::getpid()) + "_" +
       format_int(++counter));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A tiny OWN-256 point that still exercises warmup/measure/drain.
ExperimentConfig small_config(std::uint64_t seed = 7) {
  ExperimentConfig config = parse_experiment_config(Config::from_string(
      "topology=own cores=256 pattern=UN rate=0.004 warmup=100 measure=200"));
  config.injector.master_seed = seed;
  return config;
}

// ---------------------------------------------------------------------------
// SHA-256

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                       "nopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 hasher;
  hasher.update("hello ");
  hasher.update("world");
  EXPECT_EQ(hasher.hex_digest(), sha256_hex("hello world"));
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
  const std::string block(1000, 'a');
  Sha256 hasher;
  for (int i = 0; i < 1000; ++i) hasher.update(block);
  // NIST vector: one million 'a'.
  EXPECT_EQ(hasher.hex_digest(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// ---------------------------------------------------------------------------
// numfmt

TEST(NumFmt, ShortestRoundTrip) {
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.004), "0.004");
  EXPECT_EQ(format_double(-1.0), "-1");
  EXPECT_EQ(std::stod(format_double(0.1)), 0.1);
  EXPECT_EQ(std::stod(format_double(1e300)), 1e300);
  EXPECT_EQ(format_int(-42), "-42");
  EXPECT_EQ(format_uint(std::uint64_t{18446744073709551615ull}),
            "18446744073709551615");
}

TEST(NumFmt, NonFiniteThrows) {
  EXPECT_THROW(format_double(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(format_double(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// serve::Json

TEST(ServeJson, CanonicalDumpSortsKeys) {
  Json::Object o;
  o["zebra"] = Json(1);
  o["alpha"] = Json(true);
  o["mid"] = Json("x");
  EXPECT_EQ(Json(std::move(o)).dump(),
            "{\"alpha\":true,\"mid\":\"x\",\"zebra\":1}");
}

TEST(ServeJson, ParseDumpIsIdentityOnCanonicalText) {
  const std::string canonical =
      "{\"a\":[1,2.5,\"s\",null,false],\"b\":{\"n\":-3},\"c\":\"\\\"q\\\\\"}";
  EXPECT_EQ(Json::parse(canonical).dump(), canonical);
}

TEST(ServeJson, Int64SurvivesRoundTrip) {
  const std::string text = "{\"seed\":9223372036854775807}";
  const Json parsed = Json::parse(text);
  EXPECT_TRUE(parsed.find("seed")->is_int());
  EXPECT_EQ(parsed.find("seed")->as_int(), 9223372036854775807LL);
  EXPECT_EQ(parsed.dump(), text);
}

TEST(ServeJson, EscapesAndUnicode) {
  const Json parsed = Json::parse("\"a\\u0041\\n\\t\\u00e9\"");
  EXPECT_EQ(parsed.as_string(), "aA\n\t\xc3\xa9");
}

TEST(ServeJson, MalformedInputThrows) {
  EXPECT_THROW(Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::invalid_argument);
  EXPECT_THROW(Json::parse("nul"), std::invalid_argument);
  EXPECT_THROW(Json::parse(""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Canonical config + cache keys

TEST(CanonicalConfig, ByteStableAcrossCalls) {
  const ExperimentConfig config = small_config();
  EXPECT_EQ(canonical_config_json(config), canonical_config_json(config));
}

TEST(CanonicalConfig, RoundTripsExactly) {
  ExperimentConfig config = parse_experiment_config(Config::from_string(
      "topology=own cores=256 pattern=BR rate=0.006 config=3 "
      "scenario=conservative warmup=500 measure=1000 seed=42 fault=1 "
      "fault_ber=1e-9 fault_kill=1:5@700 watchdog=5000"));
  const std::string first = canonical_config_json(config);
  const ExperimentConfig reparsed =
      experiment_config_from_canonical_json(first);
  EXPECT_EQ(canonical_config_json(reparsed), first);
  // parse -> dump through the generic Json layer is also a no-op.
  EXPECT_EQ(Json::parse(first).dump(), first);
}

TEST(CanonicalConfig, UnknownKeyThrows) {
  EXPECT_THROW(experiment_config_from_canonical_json("{\"not_a_field\":1}"),
               std::invalid_argument);
}

TEST(CacheKey, KernelChoiceSharesOneEntry) {
  // activity vs lockstep is bit-identical by the §5e contract, so both
  // kernels may share a cache entry: the kernel is not part of the key.
  ExperimentConfig activity = small_config();
  activity.kernel = KernelMode::kActivity;
  ExperimentConfig lockstep = small_config();
  lockstep.kernel = KernelMode::kLockstep;
  EXPECT_EQ(experiment_cache_key(activity), experiment_cache_key(lockstep));
}

TEST(CacheKey, SeedRateAndVersionSeparateEntries) {
  const ExperimentConfig base = small_config(7);
  EXPECT_NE(experiment_cache_key(base), experiment_cache_key(small_config(8)));
  ExperimentConfig faster = small_config(7);
  faster.rate = 0.005;
  EXPECT_NE(experiment_cache_key(base), experiment_cache_key(faster));
  EXPECT_NE(experiment_cache_key(base, "other-version"),
            experiment_cache_key(base));
  EXPECT_EQ(experiment_cache_key(base),
            experiment_cache_key(base, code_version()));
}

TEST(ParseExperimentConfig, ValidatesInput) {
  EXPECT_THROW(parse_experiment_config(Config::from_string("config=5")),
               std::invalid_argument);
  EXPECT_THROW(parse_experiment_config(Config::from_string("scenario=bogus")),
               std::invalid_argument);
  EXPECT_THROW(parse_experiment_config(Config::from_string("kernel=bogus")),
               std::invalid_argument);
  EXPECT_THROW(
      parse_experiment_config(Config::from_string("fault_kill=oops")),
      std::invalid_argument);
  const ExperimentConfig config = parse_experiment_config(
      Config::from_string("watchdog=1234 fault_token_loss=0@50:never"));
  EXPECT_TRUE(config.fault.watchdog);
  EXPECT_EQ(config.fault.watchdog_window, 1234);
  ASSERT_EQ(config.fault.events.size(), 1u);
  EXPECT_EQ(config.fault.events[0].recovery, kNeverCycle);
}

// ---------------------------------------------------------------------------
// ResultStore

TEST(ResultStore, PutLoadRoundTrip) {
  serve::ResultStore store(fresh_temp_dir("store"));
  const std::string key(64, 'a');
  const std::string payload = "{\"answer\":42}";
  EXPECT_FALSE(store.load(key).has_value());
  store.put(key, payload);
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.writes, 1);
  EXPECT_EQ(stats.corrupt_rejected, 0);
}

TEST(ResultStore, RejectsBadKeys) {
  serve::ResultStore store(fresh_temp_dir("badkey"));
  EXPECT_THROW(store.load("short"), std::invalid_argument);
  EXPECT_THROW(store.load(std::string(64, 'G')), std::invalid_argument);
}

TEST(ResultStore, SecondPutOfValidEntryIsANoOp) {
  serve::ResultStore store(fresh_temp_dir("noop"));
  const std::string key(64, 'b');
  store.put(key, "payload");
  store.put(key, "payload");
  EXPECT_EQ(store.stats().writes, 1);
}

TEST(ResultStore, TruncatedEntryRejectedAndRecomputable) {
  serve::ResultStore store(fresh_temp_dir("trunc"));
  const std::string key(64, 'c');
  store.put(key, "a payload long enough to truncate meaningfully");
  std::filesystem::resize_file(store.entry_path(key), 40);
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.stats().corrupt_rejected, 1);
  // The bad entry is gone; a recompute can publish cleanly and serve again.
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(key)));
  store.put(key, "a payload long enough to truncate meaningfully");
  EXPECT_TRUE(store.load(key).has_value());
}

TEST(ResultStore, BitFlipRejected) {
  serve::ResultStore store(fresh_temp_dir("flip"));
  const std::string key(64, 'd');
  store.put(key, "the quick brown fox jumps over the lazy dog");
  const std::filesystem::path path = store.entry_path(key);
  // Flip one byte inside the payload (past the ~170-byte header).
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  file.seekp(size - 5);
  file.put('X');
  file.close();
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.stats().corrupt_rejected, 1);
}

TEST(ResultStore, TrailingGarbageRejected) {
  serve::ResultStore store(fresh_temp_dir("garbage"));
  const std::string key(64, 'e');
  store.put(key, "payload");
  std::ofstream(store.entry_path(key), std::ios::app) << "extra";
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.stats().corrupt_rejected, 1);
}

TEST(ResultStore, WrongKeyInHeaderRejected) {
  serve::ResultStore store(fresh_temp_dir("miskey"));
  const std::string key_a(64, '1');
  const std::string key_b(64, '2');
  store.put(key_a, "payload");
  std::filesystem::create_directories(store.entry_path(key_b).parent_path());
  std::filesystem::copy_file(store.entry_path(key_a),
                             store.entry_path(key_b));
  EXPECT_FALSE(store.load(key_b).has_value());  // header says key_a
  EXPECT_EQ(store.stats().corrupt_rejected, 1);
  EXPECT_TRUE(store.load(key_a).has_value());
}

TEST(ResultStore, ConcurrentSameKeyWriters) {
  serve::ResultStore store(fresh_temp_dir("race"));
  const std::string key(64, 'f');
  const std::string payload(8192, 'x');
  std::vector<std::thread> writers;
  writers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    writers.emplace_back([&store, &key, &payload] {
      for (int j = 0; j < 4; ++j) store.put(key, payload);
    });
  }
  for (std::thread& t : writers) t.join();
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
  EXPECT_EQ(store.stats().corrupt_rejected, 0);
  // No temp droppings left behind.
  int files = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(store.root())) {
    if (entry.is_regular_file()) ++files;
  }
  EXPECT_EQ(files, 1);
}

// ---------------------------------------------------------------------------
// ExperimentService

/// Collects events from one subscription and answers "has a terminal event
/// for job X arrived?" queries.
class EventLog {
 public:
  serve::ExperimentService::EventFn subscriber() {
    return [this](const Json& event) {
      std::lock_guard<std::mutex> lock(mu_);
      events_.push_back(event);
      cv_.notify_all();
    };
  }

  /// Blocks until `count` events with `kind` have arrived (any job);
  /// returns the first of them.
  Json wait_for(const std::string& kind, int count = 1,
                int timeout_ms = 30000) {
    std::unique_lock<std::mutex> lock(mu_);
    Json found;
    const bool ok = cv_.wait_for(
        lock, std::chrono::milliseconds(timeout_ms), [&] {
          int seen = 0;
          for (const Json& event : events_) {
            const Json* field = event.find("event");
            if (field != nullptr && field->as_string() == kind) {
              if (seen == 0) found = event;
              ++seen;
            }
          }
          return seen >= count;
        });
    if (!ok) {
      std::string received;
      for (const Json& event : events_) received += "  " + event.dump() + "\n";
      ADD_FAILURE() << "timed out waiting for event: " << kind
                    << "\nreceived so far:\n" << received;
    }
    return found;
  }

  std::vector<Json> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  int count(const std::string& kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const Json& event : events_) {
      const Json* field = event.find("event");
      if (field != nullptr && field->as_string() == kind) ++n;
    }
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Json> events_;
};

TEST(ExperimentService, CacheHitIsBitIdenticalToFreshRun) {
  serve::ServiceOptions options;
  options.store_dir = fresh_temp_dir("svc_hit");
  options.threads = 2;
  serve::ExperimentService service(options);
  const ExperimentConfig config = small_config();

  EventLog first;
  const auto outcome1 = service.submit(config, 0, first.subscriber());
  EXPECT_FALSE(outcome1.cache_hit);
  const Json done1 = first.wait_for("done");
  EXPECT_FALSE(done1.find("cache_hit")->as_bool());
  const std::string sha1 = done1.find("result_sha256")->as_string();
  const std::string result1 = done1.find("result")->dump();

  EventLog second;
  const auto outcome2 = service.submit(config, 0, second.subscriber());
  EXPECT_TRUE(outcome2.cache_hit);
  EXPECT_EQ(outcome2.cache_key, outcome1.cache_key);
  const Json done2 = second.wait_for("done");
  EXPECT_TRUE(done2.find("cache_hit")->as_bool());
  EXPECT_EQ(done2.find("result_sha256")->as_string(), sha1);
  EXPECT_EQ(done2.find("result")->dump(), result1);

  // The served bytes equal a fresh, independent simulation of the config.
  const std::string fresh = experiment_result_json(run_experiment(config));
  EXPECT_EQ(sha256_hex(fresh), sha1);

  const auto loaded = service.store().load(outcome1.cache_key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, fresh);
  service.shutdown(true);
}

TEST(ExperimentService, ConcurrentIdenticalSubmissionsSimulateOnce) {
  serve::ServiceOptions options;
  options.store_dir = fresh_temp_dir("svc_dedupe");
  options.threads = 1;
  serve::ExperimentService service(options);

  // Larger phases keep the point in flight while the duplicates arrive
  // (submission is microseconds; the run is many milliseconds).
  ExperimentConfig config = small_config();
  config.phases.warmup = 1000;
  config.phases.measure = 4000;

  constexpr int kSubmissions = 4;
  EventLog log;
  std::string job_id;
  for (int i = 0; i < kSubmissions; ++i) {
    const auto outcome = service.submit(config, 0, log.subscriber());
    if (i == 0) {
      job_id = outcome.job_id;
      EXPECT_FALSE(outcome.attached);
    } else {
      EXPECT_TRUE(outcome.attached) << "duplicate " << i;
      EXPECT_EQ(outcome.job_id, job_id);
    }
  }
  // Every subscriber of the shared job sees the done event.
  log.wait_for("done", kSubmissions);
  EXPECT_EQ(log.count("done"), kSubmissions);

  const Json stats = service.stats();
  EXPECT_EQ(stats.find("accepted")->as_int(), kSubmissions);
  EXPECT_EQ(stats.find("inflight_dedup")->as_int(), kSubmissions - 1);
  EXPECT_EQ(stats.find("computed")->as_int(), 1);
  EXPECT_EQ(stats.find("store")->find("writes")->as_int(), 1);
  service.shutdown(true);
}

TEST(ExperimentService, PriorityOrdersQueuedJobs) {
  serve::ServiceOptions options;
  options.store_dir = fresh_temp_dir("svc_prio");
  options.threads = 1;
  serve::ExperimentService service(options);

  // Occupy the single worker, then queue low before high: the high-priority
  // point must start first anyway.
  ExperimentConfig blocker = small_config(100);
  blocker.phases.warmup = 1000;
  blocker.phases.measure = 4000;
  EventLog blocker_log;
  service.submit(blocker, 0, blocker_log.subscriber());

  std::mutex order_mu;
  std::vector<std::string> started_order;
  const auto track = [&](const std::string& tag) {
    return [&, tag](const Json& event) {
      if (event.find("event")->as_string() == "started") {
        std::lock_guard<std::mutex> lock(order_mu);
        started_order.push_back(tag);
      }
    };
  };
  EventLog low_log;
  const auto low = service.submit(small_config(101), 0, track("low"));
  const auto high = service.submit(small_config(102), 5, track("high"));
  EXPECT_NE(low.job_id, high.job_id);

  service.shutdown(true);  // drains the queue
  std::lock_guard<std::mutex> lock(order_mu);
  ASSERT_EQ(started_order.size(), 2u);
  EXPECT_EQ(started_order[0], "high");
  EXPECT_EQ(started_order[1], "low");
}

TEST(ExperimentService, CancelQueuedJobNeverSimulates) {
  serve::ServiceOptions options;
  options.store_dir = fresh_temp_dir("svc_cancel");
  options.threads = 1;
  serve::ExperimentService service(options);

  ExperimentConfig blocker = small_config(200);
  blocker.phases.warmup = 1000;
  blocker.phases.measure = 4000;
  EventLog blocker_log;
  service.submit(blocker, 0, blocker_log.subscriber());

  EventLog log;
  const auto queued = service.submit(small_config(201), 0, log.subscriber());
  EXPECT_TRUE(service.cancel(queued.job_id));
  const Json cancelled = log.wait_for("cancelled");
  EXPECT_EQ(cancelled.find("reason")->as_string(), "client_cancel");
  EXPECT_FALSE(service.cancel(queued.job_id));  // already terminal

  service.shutdown(true);
  EXPECT_FALSE(service.store().load(queued.cache_key).has_value());
  EXPECT_EQ(service.stats().find("cancelled")->as_int(), 1);
}

TEST(ExperimentService, ShutdownWithoutDrainCancelsRunningJobs) {
  serve::ServiceOptions options;
  options.store_dir = fresh_temp_dir("svc_abort");
  options.threads = 1;
  serve::ExperimentService service(options);

  ExperimentConfig longrun = small_config(300);
  longrun.phases.warmup = 50000;
  longrun.phases.measure = 200000;
  EventLog log;
  const auto outcome = service.submit(longrun, 0, log.subscriber());
  log.wait_for("started");
  service.shutdown(false);
  const Json cancelled = log.wait_for("cancelled");
  EXPECT_EQ(cancelled.find("reason")->as_string(), "shutdown");
  // Aborted runs are never cached.
  EXPECT_FALSE(service.store().load(outcome.cache_key).has_value());
  // Submissions after shutdown are rejected.
  EXPECT_TRUE(service.submit(small_config(301)).rejected);
}

// Regression: shutdown() must block until terminal events have been
// DELIVERED, not merely until jobs are terminal. The old finish_job released
// the job from active_ (waking shutdown) before emitting the done event, so
// ServeDaemon::stop could close client sockets while a subscriber was still
// mid-send — a use-after-close on the fd. A slow subscriber makes the window
// deterministic: if shutdown can return before delivery, the flag check
// fails every time.
TEST(ExperimentService, ShutdownDrainWaitsForDoneDelivery) {
  serve::ServiceOptions options;
  options.store_dir = fresh_temp_dir("svc_drain_deliver");
  options.threads = 1;
  serve::ExperimentService service(options);

  std::atomic<bool> done_delivered{false};
  service.submit(small_config(500), 0, [&](const Json& event) {
    if (event.find("event")->as_string() == "done") {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      done_delivered.store(true);
    }
  });
  service.shutdown(true);
  EXPECT_TRUE(done_delivered.load())
      << "shutdown(drain) returned before the done event was delivered";
}

TEST(ExperimentService, ShutdownNoDrainWaitsForCancelledDelivery) {
  serve::ServiceOptions options;
  options.store_dir = fresh_temp_dir("svc_abort_deliver");
  options.threads = 1;
  serve::ExperimentService service(options);

  ExperimentConfig longrun = small_config(501);
  longrun.phases.warmup = 50000;
  longrun.phases.measure = 200000;
  std::atomic<bool> cancelled_delivered{false};
  service.submit(longrun, 0, [&](const Json& event) {
    if (event.find("event")->as_string() == "cancelled") {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      cancelled_delivered.store(true);
    }
  });
  service.shutdown(false);
  EXPECT_TRUE(cancelled_delivered.load())
      << "shutdown(no drain) returned before the cancelled event was "
         "delivered";
}

TEST(ExperimentService, CorruptStoreEntryRecomputedNotServed) {
  serve::ServiceOptions options;
  options.store_dir = fresh_temp_dir("svc_corrupt");
  options.threads = 1;
  const ExperimentConfig config = small_config(400);
  std::string key;
  {
    serve::ExperimentService service(options);
    EventLog log;
    key = service.submit(config, 0, log.subscriber()).cache_key;
    log.wait_for("done");
    service.shutdown(true);
  }
  // Corrupt the entry on disk between daemon lifetimes.
  serve::ResultStore probe(options.store_dir);
  std::filesystem::resize_file(probe.entry_path(key), 60);
  {
    serve::ExperimentService service(options);
    EventLog log;
    const auto outcome = service.submit(config, 0, log.subscriber());
    EXPECT_FALSE(outcome.cache_hit);  // corrupt entry must not hit
    const Json done = log.wait_for("done");
    EXPECT_FALSE(done.find("cache_hit")->as_bool());
    const Json stats = service.stats();
    EXPECT_EQ(stats.find("store")->find("corrupt_rejected")->as_int(), 1);
    EXPECT_EQ(stats.find("computed")->as_int(), 1);
    service.shutdown(true);
  }
}

// ---------------------------------------------------------------------------
// End-to-end over the AF_UNIX socket

/// Minimal blocking JSONL client for the daemon protocol.
class LineClient {
 public:
  /// Throws on connect failure (gtest reports the exception as a failure).
  explicit LineClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      throw std::runtime_error("connect(" + path +
                               "): " + std::strerror(errno));
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd_, framed.data(), framed.size(), 0),
              static_cast<ssize_t>(framed.size()));
  }

  /// Reads one newline-terminated JSON event.
  Json read_event() {
    std::size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed while waiting for an event";
        return Json(nullptr);
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return Json::parse(line);
  }

  /// Reads events until one with kind `kind` arrives; returns it.
  Json read_until(const std::string& kind) {
    for (int i = 0; i < 1000; ++i) {
      const Json event = read_event();
      if (event.is_null()) return event;
      const Json* field = event.find("event");
      if (field != nullptr && field->as_string() == kind) return event;
    }
    ADD_FAILURE() << "no " << kind << " event within 1000 events";
    return Json(nullptr);
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(ServeDaemon, EndToEndSubmitCacheAndShutdown) {
  const std::filesystem::path dir = fresh_temp_dir("daemon");
  serve::ServerOptions options;
  options.socket_path = (dir / "sock").string();
  options.service.store_dir = dir / "store";
  options.service.threads = 2;
  serve::ServeDaemon daemon(options);
  std::thread waiter([&daemon] { daemon.wait_for_shutdown(); });

  const std::string submit_line =
      "{\"verb\":\"submit\",\"config\":{\"topology\":\"own\",\"cores\":256,"
      "\"rate\":0.004,\"warmup\":100,\"measure\":200,\"seed\":11}}";
  std::string sha1;
  {
    LineClient client(options.socket_path);
    client.send_line("{\"verb\":\"ping\"}");
    const Json pong = client.read_event();
    EXPECT_EQ(pong.find("event")->as_string(), "pong");
    EXPECT_EQ(pong.find("code_version")->as_string(), code_version());

    client.send_line(submit_line);
    const Json accepted = client.read_until("accepted");
    EXPECT_FALSE(accepted.find("cache_hit")->as_bool());
    const Json done = client.read_until("done");
    EXPECT_FALSE(done.find("cache_hit")->as_bool());
    sha1 = done.find("result_sha256")->as_string();

    // Unknown verbs and bad JSON produce error events, not disconnects.
    client.send_line("{\"verb\":\"frobnicate\"}");
    EXPECT_EQ(client.read_event().find("event")->as_string(), "error");
    client.send_line("not json at all");
    EXPECT_EQ(client.read_event().find("event")->as_string(), "error");
  }
  {
    // Second submission on a fresh connection: served from the cache,
    // byte-identical.
    LineClient client(options.socket_path);
    client.send_line(submit_line);
    const Json accepted = client.read_until("accepted");
    EXPECT_TRUE(accepted.find("cache_hit")->as_bool());
    const Json done = client.read_until("done");
    EXPECT_TRUE(done.find("cache_hit")->as_bool());
    EXPECT_EQ(done.find("result_sha256")->as_string(), sha1);

    client.send_line("{\"verb\":\"stats\"}");
    const Json stats = client.read_until("stats");
    EXPECT_EQ(stats.find("accepted")->as_int(), 2);
    EXPECT_EQ(stats.find("cache_hits")->as_int(), 1);
    EXPECT_EQ(stats.find("computed")->as_int(), 1);

    client.send_line("{\"verb\":\"shutdown\",\"drain\":true}");
    EXPECT_EQ(client.read_until("shutdown_ack").find("drain")->as_bool(),
              true);
  }
  waiter.join();  // wait_for_shutdown returned -> clean teardown
  EXPECT_FALSE(std::filesystem::exists(options.socket_path));
}

}  // namespace
}  // namespace ownsim

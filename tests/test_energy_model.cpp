// Closed-form verification of the energy model: drive a tiny network with a
// known flit count and check every component of the breakdown against hand
// computation.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "helpers.hpp"
#include "power/energy_model.hpp"

namespace ownsim {
namespace {

// Two routers joined by one electrical link pair; send exactly N packets of
// F flits 0 -> 1, drain, and account by hand.
struct TwoRouterRun {
  static constexpr int kPackets = 10;
  static constexpr int kFlits = 4;
  static constexpr int kBits = 128;

  TwoRouterRun() : net(testing::two_router_spec()) {
    for (int i = 0; i < kPackets; ++i) {
      net.nic().enqueue_packet(0, 1, 1, kFlits, kBits, 0, 0, true);
    }
    drained = testing::drain(net, 5000);
  }
  Network net;
  bool drained = false;
};

TEST(EnergyModelExact, ElectricalLinkEnergy) {
  TwoRouterRun s;
  ASSERT_TRUE(s.drained);
  PowerParams params;
  EnergyModel model(params);
  const PowerBreakdown breakdown = model.compute(s.net);

  const double seconds = static_cast<double>(s.net.engine().now()) / 2e9;
  // All 40 flits crossed the single forward link; distance is 0 in the test
  // spec, so electrical link energy is 0 with any wire constant.
  EXPECT_DOUBLE_EQ(breakdown.electrical_link_w, 0.0);
  EXPECT_EQ(breakdown.photonic_w(), 0.0);
  EXPECT_EQ(breakdown.wireless_w(), 0.0);

  // Router dynamic: every flit is written+read+crossed at both routers.
  const double bits = TwoRouterRun::kPackets * TwoRouterRun::kFlits * TwoRouterRun::kBits;
  const double radix0 = s.net.router(0).radix();  // same for router 1
  double expected_pj = 0.0;
  expected_pj += 2 * bits * params.buffer_write_pj_per_bit;
  expected_pj += 2 * bits * params.buffer_read_pj_per_bit;
  expected_pj += 2 * bits * (params.xbar_base_pj_per_bit +
                             params.xbar_radix_slope_pj_per_bit * radix0);
  const auto& c0 = s.net.router(0).counters();
  const auto& c1 = s.net.router(1).counters();
  expected_pj += params.alloc_pj_per_op *
                 static_cast<double>(c0.vc_allocations + c0.switch_allocations +
                                     c1.vc_allocations + c1.switch_allocations);
  EXPECT_NEAR(breakdown.router_dynamic_w, expected_pj * 1e-12 / seconds,
              1e-12);
}

TEST(EnergyModelExact, RouterStaticFromPortCounts) {
  TwoRouterRun s;
  PowerParams params;
  EnergyModel model(params);
  const PowerBreakdown breakdown = model.compute(s.net);
  // Each router: 1 net in + 1 node in = 2 inputs; 1 net out + 1 node out = 2.
  const double per_router =
      params.leak_mw_per_input_port * 2 * units::kMilli +
      params.leak_mw_per_output_port * 2 * units::kMilli +
      params.leak_uw_per_crosspoint * 4 * units::kMicro;
  EXPECT_NEAR(breakdown.router_static_w, 2 * per_router, 1e-12);
}

TEST(EnergyModelExact, EnergyPerPacketConsistent) {
  TwoRouterRun s;
  EnergyModel model{PowerParams{}};
  const PowerBreakdown breakdown = model.compute(s.net);
  const double seconds = static_cast<double>(s.net.engine().now()) / 2e9;
  const double expected =
      breakdown.total_w() * seconds / TwoRouterRun::kPackets / units::kPico;
  EXPECT_NEAR(model.energy_per_packet_pj(s.net), expected, 1e-9);
}

TEST(EnergyModelExact, WirelessChannelTagging) {
  // Build a two-router spec whose link is a tagged wireless channel and
  // check the per-channel energy is applied.
  NetworkSpec spec = testing::two_router_spec();
  spec.links[0].medium = MediumType::kWireless;
  spec.links[0].wireless_channel = 0;  // Table I channel 0: C2C diagonal
  Network net(std::move(spec));
  for (int i = 0; i < 5; ++i) {
    net.nic().enqueue_packet(0, 1, 1, 4, 128, 0, 0, true);
  }
  ASSERT_TRUE(testing::drain(net, 2000));

  PowerParams params;
  params.wireless_static_mw_per_channel = 0.0;  // isolate the dynamic part
  const ChannelEnergyModel channels(OwnConfig::kConfig4, Scenario::kIdeal);
  EnergyModel model(params, channels);
  const PowerBreakdown breakdown = model.compute(net);
  const double seconds = static_cast<double>(net.engine().now()) / 2e9;
  const double bits = 5.0 * 4 * 128;
  const double expected_w =
      bits * channels.epb(0).in(1.0_pj_per_bit) * units::kPico / seconds;
  EXPECT_NEAR(breakdown.wireless_link_w, expected_w, 1e-12);
}

TEST(EnergyModelExact, LegacyWirelessFallback) {
  NetworkSpec spec = testing::two_router_spec();
  spec.links[0].medium = MediumType::kWireless;  // untagged (-1)
  Network net(std::move(spec));
  net.nic().enqueue_packet(0, 1, 1, 4, 128, 0, 0, true);
  ASSERT_TRUE(testing::drain(net, 2000));

  PowerParams params;
  params.wireless_static_mw_per_channel = 0.0;
  EnergyModel model(params);  // no channel model at all
  const PowerBreakdown breakdown = model.compute(net);
  const double seconds = static_cast<double>(net.engine().now()) / 2e9;
  const double bits = 4.0 * 128;
  EXPECT_NEAR(breakdown.wireless_link_w,
              bits * params.legacy_wireless_pj_per_bit * units::kPico / seconds,
              1e-12);
}

TEST(EnergyModelExact, PhotonicLinkDynamicAndLaser) {
  NetworkSpec spec = testing::two_router_spec();
  spec.links[0].medium = MediumType::kPhotonic;
  spec.links[0].cycles_per_flit = 32;  // 8 Gb/s -> 1 lambda
  spec.links[0].distance = 50.0_mm;
  Network net(std::move(spec));
  net.nic().enqueue_packet(0, 1, 1, 4, 128, 0, 0, true);
  ASSERT_TRUE(testing::drain(net, 3000));

  PowerParams params;
  EnergyModel model(params);
  const PowerBreakdown breakdown = model.compute(net);
  const double seconds = static_cast<double>(net.engine().now()) / 2e9;
  EXPECT_NEAR(breakdown.photonic_link_w,
              4.0 * 128 * params.photonic_dynamic_pj_per_bit * units::kPico /
                  seconds,
              1e-12);
  // Laser: 5 cm path, 1 lambda, 3 splitter stages.
  LossBudget loss;
  EXPECT_NEAR(breakdown.photonic_laser_w,
              loss.laser_wallplug(50.0_mm, 1, 3, 1).value(), 1e-12);
}

}  // namespace
}  // namespace ownsim

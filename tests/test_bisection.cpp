// Tests for the equal-bisection normalization rules.
#include <gtest/gtest.h>

#include "topology/bisection.hpp"
#include "topology/registry.hpp"

namespace ownsim {
namespace {

TEST(Bisection, TargetIsOwnWirelessBisection) {
  // 8 crossing channels x 32 Gb/s.
  EXPECT_DOUBLE_EQ(bisection_target_gbps(), 256.0);
}

TEST(Bisection, KnownRates) {
  TopologyOptions options;  // 128-bit flits at 2 GHz = 256 Gb/s full rate
  // OWN wireless: 8 crossing -> 32 Gb/s -> cpf 8.
  EXPECT_EQ(cycles_per_flit_for_bisection(8.0, options), 8);
  // CMesh-256: 16 crossing -> 16 Gb/s -> cpf 16.
  EXPECT_EQ(cycles_per_flit_for_bisection(16.0, options), 16);
  // OptXB-256: 32 effective -> 8 Gb/s -> cpf 32.
  EXPECT_EQ(cycles_per_flit_for_bisection(32.0, options), 32);
}

TEST(Bisection, ClampsToSaneRange) {
  TopologyOptions options;
  EXPECT_EQ(cycles_per_flit_for_bisection(1e6, options), 128);  // upper clamp
  EXPECT_EQ(cycles_per_flit_for_bisection(1e-6, options), 1);   // lower clamp
  EXPECT_THROW(cycles_per_flit_for_bisection(0.0, options),
               std::invalid_argument);
}

TEST(Bisection, OverrideWins) {
  TopologyOptions options;
  EXPECT_EQ(resolve_cpf(5, 16.0, options), 5);
  EXPECT_EQ(resolve_cpf(0, 16.0, options), 16);
}

TEST(Bisection, ScalesWithClockAndFlitWidth) {
  TopologyOptions options;
  options.clock_ghz = 1.0;  // half the full rate -> half the cpf
  EXPECT_EQ(cycles_per_flit_for_bisection(16.0, options), 8);
  options.clock_ghz = 2.0;
  options.flit_bits = 256;
  EXPECT_EQ(cycles_per_flit_for_bisection(16.0, options), 32);
}

TEST(Bisection, AllTopologiesPresentComparableBisection) {
  // Structural check: for every 256-core topology, sum the bandwidth of the
  // bisection-crossing channels as built and verify it is within 2x of the
  // target (exact equality is impossible with integer serialization and the
  // half-weight MWSR rule).
  TopologyOptions options;
  options.num_cores = 256;
  for (TopologyKind kind : paper_topologies()) {
    const NetworkSpec spec = build_topology(kind, options);
    // Crossing = endpoints on opposite sides of the vertical mid-line.
    double crossing_gbps = 0.0;
    const double full = options.flit_bits * options.clock_ghz;  // Gb/s
    auto side = [&](RouterId r) {
      if (!spec.router_xy.empty()) {
        return spec.router_xy[static_cast<std::size_t>(r)].first < 25.0_mm ? 0
                                                                           : 1;
      }
      // Fallback: split router ids in half (valid for the row-major grids
      // and for p-Clos leaves).
      return r < spec.num_routers() / 2 ? 0 : 1;
    };
    for (const auto& link : spec.links) {
      if (side(link.src_router) != side(link.dst_router)) {
        crossing_gbps += full / link.cycles_per_flit;
      }
    }
    for (const auto& medium : spec.media) {
      // MWSR/SWMR: count at half weight if any writer is on the other side
      // of every reader (the effective-crossing rule).
      bool crosses = false;
      for (const auto& [wr, wp] : medium.writers) {
        for (const auto& [rr, rp] : medium.readers) {
          if (side(wr) != side(rr)) crosses = true;
        }
      }
      if (crosses) crossing_gbps += 0.5 * full / medium.cycles_per_flit;
    }
    EXPECT_GT(crossing_gbps, bisection_target_gbps() / 2.0)
        << to_string(kind);
    EXPECT_LT(crossing_gbps, bisection_target_gbps() * 2.5)
        << to_string(kind);
  }
}

}  // namespace
}  // namespace ownsim

// Tests for the thermal/variation-driven adaptive link layer (DESIGN.md
// §5k): variation sampling determinism, the hysteresis governor, kernel
// bit-identity of the closed loop, live-BER accounting, OWN-256 wireless
// re-allocation, the adaptive-vs-static headline, and the canonical config
// round-trip of the adapt knobs.
#include <gtest/gtest.h>

#include <string>

#include "adapt/governor.hpp"
#include "adapt/variation.hpp"
#include "driver/experiment_config.hpp"
#include "driver/simulate.hpp"

namespace ownsim {
namespace {

// ---------------------------------------------------------------------------
// Per-die variation sampling (adapt/variation.hpp).

TEST(Variation, DeterministicPerStream) {
  const adapt::VariationSample a =
      adapt::draw_variation(42, adapt::kStreamLinkBase + 3, 0.5, 1.0);
  const adapt::VariationSample b =
      adapt::draw_variation(42, adapt::kStreamLinkBase + 3, 0.5, 1.0);
  EXPECT_EQ(a.gain_offset_db, b.gain_offset_db);
  EXPECT_EQ(a.ring_detune_c, b.ring_detune_c);
  // A different stream (another entity on the same die) gets its own draw.
  const adapt::VariationSample c =
      adapt::draw_variation(42, adapt::kStreamLinkBase + 4, 0.5, 1.0);
  EXPECT_NE(a.gain_offset_db, c.gain_offset_db);
  // And a different die re-rolls the same entity.
  const adapt::VariationSample d =
      adapt::draw_variation(43, adapt::kStreamLinkBase + 3, 0.5, 1.0);
  EXPECT_NE(a.gain_offset_db, d.gain_offset_db);
}

TEST(Variation, SigmaScalesTheSpread) {
  const adapt::VariationSample zero =
      adapt::draw_variation(7, adapt::kStreamMediumBase, 0.0, 0.0);
  EXPECT_EQ(zero.gain_offset_db, 0.0);
  EXPECT_EQ(zero.ring_detune_c, 0.0);
  const adapt::VariationSample one =
      adapt::draw_variation(7, adapt::kStreamMediumBase, 1.0, 1.0);
  const adapt::VariationSample two =
      adapt::draw_variation(7, adapt::kStreamMediumBase, 2.0, 2.0);
  EXPECT_NEAR(two.gain_offset_db, 2.0 * one.gain_offset_db, 1e-12);
  EXPECT_NEAR(two.ring_detune_c, 2.0 * one.ring_detune_c, 1e-12);
  // Irwin-Hall is bounded: 12 uniforms minus 6 stays within +/- 6 sigma.
  EXPECT_LE(std::abs(one.gain_offset_db), 6.0);
}

// ---------------------------------------------------------------------------
// Hysteresis governor (adapt/governor.hpp).

adapt::Governor::Params governor_params() {
  adapt::Governor::Params p;
  p.enter_db = 1.0;
  p.exit_db = 2.0;
  p.gain_db = 3.0;
  p.max_level = 2;
  p.sustain = 2;
  return p;
}

TEST(Governor, EntersAfterSustainedLowMargin) {
  adapt::Governor governor(governor_params());
  // First low refresh only builds the streak; the second transitions.
  EXPECT_FALSE(governor.observe(0.0));
  EXPECT_EQ(governor.level(), 0);
  EXPECT_TRUE(governor.observe(0.0));
  EXPECT_EQ(governor.level(), 1);
  // With one level of gain the effective margin (0 + 3) clears the band:
  // no further escalation.
  EXPECT_FALSE(governor.observe(0.0));
  EXPECT_FALSE(governor.observe(0.0));
  EXPECT_EQ(governor.level(), 1);
}

TEST(Governor, SaturatesAtMaxLevel) {
  adapt::Governor governor(governor_params());
  for (int i = 0; i < 10; ++i) governor.observe(-10.0);
  EXPECT_EQ(governor.level(), 2);
  EXPECT_NEAR(governor.effective_db(-10.0), -4.0, 1e-12);
}

TEST(Governor, ReleaseNeedsTheExitBand) {
  adapt::Governor governor(governor_params());
  ASSERT_FALSE(governor.observe(-3.0));
  ASSERT_TRUE(governor.observe(-3.0));   // level 1, effective 0... still low
  ASSERT_FALSE(governor.observe(-3.0));  // transitions reset the streak
  ASSERT_TRUE(governor.observe(-3.0));   // second sustained vote: level 2
  ASSERT_EQ(governor.level(), 2);
  // Raw -1.5 at level 2: effective 4.5 is healthy, but stepping down would
  // leave 1.5 < exit (2.0) — the governor must hold, forever, not flap.
  for (int i = 0; i < 6; ++i) EXPECT_FALSE(governor.observe(-1.5));
  EXPECT_EQ(governor.level(), 2);
  // A real recovery (post-release margin 3 + 2 > exit) releases after the
  // sustain streak...
  EXPECT_FALSE(governor.observe(2.0));
  EXPECT_TRUE(governor.observe(2.0));
  EXPECT_EQ(governor.level(), 1);
  // ...and any dissenting refresh resets the streak. (2.0 is NOT above the
  // exit band once the remaining level's gain is gone — it takes 2.5 raw to
  // vote for the last release.)
  EXPECT_FALSE(governor.observe(2.5));
  EXPECT_FALSE(governor.observe(-1.5));  // dissent: streak back to zero
  EXPECT_FALSE(governor.observe(2.5));
  EXPECT_TRUE(governor.observe(2.5));
  EXPECT_EQ(governor.level(), 0);
}

// ---------------------------------------------------------------------------
// The closed loop end to end (driver/simulate.hpp).

/// OWN-256 experiment with the loop armed at a fast-converging operating
/// point: refresh well inside the warmup, no smoothing memory, single-vote
/// hysteresis.
ExperimentConfig adapt_experiment() {
  ExperimentConfig config;
  config.options.num_cores = 256;
  config.rate = 0.004;
  config.phases.warmup = 300;
  config.phases.measure = 1200;
  config.phases.drain_limit = 20000;
  config.adapt.enabled = true;
  config.adapt.refresh = 100;
  config.adapt.sustain = 1;
  config.adapt.thermal_alpha = 1.0;
  return config;
}

TEST(AdaptRun, DisabledKnobsAreInert) {
  // adapt=0 must be byte-identical to today no matter how the other knobs
  // are scrambled: the controller is never built, the result JSON carries
  // no adapt block and no adapt.* counters.
  ExperimentConfig plain;
  plain.options.num_cores = 256;
  plain.rate = 0.004;
  plain.phases = adapt_experiment().phases;

  ExperimentConfig scrambled = plain;
  scrambled.adapt = adapt_experiment().adapt;
  scrambled.adapt.enabled = false;
  scrambled.adapt.base_margin = Decibels{-8.0};
  scrambled.adapt.temp_coeff_db_per_c = 5.0;

  const std::string a = experiment_result_json(run_experiment(plain));
  const std::string b = experiment_result_json(run_experiment(scrambled));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("\"adapt\""), std::string::npos);
  EXPECT_EQ(a.find("adapt."), std::string::npos);
}

TEST(AdaptRun, KernelsBitIdentical) {
  // The full loop — live BER, backoff, re-allocation — must produce the
  // same bytes in every kernel for any thread/partition count (§5k): the
  // controller registers last and mutates only between cycles.
  ExperimentConfig config = adapt_experiment();
  config.pattern = PatternKind::kHotspot;
  config.rate = 0.002;
  config.phases.warmup = 400;
  config.phases.measure = 1600;
  config.adapt.refresh = 200;
  config.adapt.temp_coeff_db_per_c = 1.0;  // hot-spot heating moves margins
  config.adapt.max_backoff = 2;

  config.kernel = KernelMode::kActivity;
  const std::string activity = experiment_result_json(run_experiment(config));
  config.kernel = KernelMode::kLockstep;
  const std::string lockstep = experiment_result_json(run_experiment(config));
  EXPECT_EQ(activity, lockstep);

  config.kernel = KernelMode::kParallel;
  config.threads = 2;
  config.partitions = 7;
  EXPECT_EQ(activity, experiment_result_json(run_experiment(config)));
  config.threads = 4;
  config.partitions = 0;  // topology's own partition hint
  EXPECT_EQ(activity, experiment_result_json(run_experiment(config)));
}

TEST(AdaptRun, LiveBerFeedsTheReliabilityPath) {
  // A degraded die (base margin on the steep side of the BER knee) must
  // corrupt flits through the live-BER path even with reactions off, and an
  // adapt-only run (no campaign) must fold those counters into the result.
  ExperimentConfig config = adapt_experiment();
  config.adapt.react = false;
  config.adapt.base_margin = Decibels{-8.0};
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.run.drained);
  EXPECT_GT(result.fault.crc_errors, 0);
  // Nearly every corruption NACKs a relaunch; the exceptions are the rare
  // flits whose max_attempts-th copy is the corrupted one (forced through),
  // so retransmissions tracks crc_errors without strictly dominating it.
  EXPECT_GT(result.fault.retransmissions, result.fault.crc_errors / 2);
  EXPECT_GT(result.adapt.refreshes, 0);
  EXPECT_EQ(result.adapt.backoffs, 0);  // react=0: nothing adapts
  EXPECT_LT(result.adapt.min_margin_db, -7.0);

  // The result JSON gains the adapt block (and only then).
  const std::string json = experiment_result_json(result);
  EXPECT_NE(json.find("\"adapt\":{\"backoffs\":"), std::string::npos);
}

TEST(AdaptRun, SameConfigIsBitIdentical) {
  ExperimentConfig config = adapt_experiment();
  config.adapt.base_margin = Decibels{-6.0};  // measurable BER, active loop
  const std::string a = experiment_result_json(run_experiment(config));
  const std::string b = experiment_result_json(run_experiment(config));
  EXPECT_EQ(a, b);
}

TEST(AdaptRun, HotspotTriggersReallocation) {
  // Strong thermal coupling under hot-spot traffic collapses the margins of
  // the channels into the hot cluster past the deepest backoff: the
  // controller must route those cluster pairs around on the degraded paths.
  ExperimentConfig config = adapt_experiment();
  config.pattern = PatternKind::kHotspot;
  config.rate = 0.002;
  config.phases.warmup = 400;
  config.phases.measure = 1600;
  config.adapt.refresh = 200;
  config.adapt.temp_coeff_db_per_c = 1.0;
  config.adapt.max_backoff = 2;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.adapt.reallocations, 0);
  EXPECT_GT(result.adapt.backoffs, 0);
  EXPECT_GT(result.adapt.peak_temp_c, 0.0);
  EXPECT_GT(result.adapt.refreshes, 0);
}

TEST(AdaptRun, AdaptiveBeatsStaticOnStressedHotspot) {
  // The acceptance headline (also asserted by bench_adapt at full phases):
  // on OWN-1024 with end-of-life transceivers under hot-spot heating, rate
  // backoff must deliver more accepted throughput than the static links,
  // which sit in retry storms on the hot media.
  ExperimentConfig config;
  config.options.num_cores = 1024;
  config.pattern = PatternKind::kHotspot;
  config.rate = 0.0015;
  config.phases.warmup = 400;
  config.phases.measure = 1200;
  config.phases.drain_limit = 8000;
  config.adapt.enabled = true;
  config.adapt.refresh = 200;
  config.adapt.sustain = 1;
  config.adapt.thermal_alpha = 1.0;
  config.adapt.base_margin = Decibels{-8.0};
  config.adapt.backoff_enter_db = -4.0;
  config.adapt.backoff_exit_db = -2.0;
  config.adapt.max_backoff = 3;

  config.adapt.react = false;
  const ExperimentResult static_links = run_experiment(config);
  config.adapt.react = true;
  const ExperimentResult adaptive = run_experiment(config);

  EXPECT_GT(adaptive.run.throughput, static_links.run.throughput);
  EXPECT_GT(adaptive.adapt.backoffs, 0);
  // Backoff buys margin: the adaptive run's worst margin sits above the
  // static one's.
  EXPECT_GT(adaptive.adapt.min_margin_db, static_links.adapt.min_margin_db);
}

// ---------------------------------------------------------------------------
// Canonical config JSON (driver/experiment_config.hpp).

TEST(AdaptConfigJson, CanonicalRoundTrip) {
  ExperimentConfig config;
  config.adapt.enabled = true;
  config.adapt.react = false;
  config.adapt.refresh = 250;
  config.adapt.variation_seed = 9;
  config.adapt.variation_sigma_db = 0.75;
  config.adapt.ring_sigma_c = 2.0;
  config.adapt.snr_required = Decibels{16.5};
  config.adapt.base_margin = Decibels{-8.0};
  config.adapt.temp_coeff_db_per_c = 0.25;
  config.adapt.thermal_alpha = 1.0;
  config.adapt.thermal_iterations = 200;
  config.adapt.backoff_enter_db = -4.0;
  config.adapt.backoff_exit_db = -2.0;
  config.adapt.backoff_gain_db = 2.5;
  config.adapt.max_backoff = 3;
  config.adapt.sustain = 1;
  config.adapt.realloc_enter_db = -1.0;
  config.adapt.realloc_exit_db = 0.5;
  config.adapt.trim_uw_per_c = 75.0;

  const std::string canonical = canonical_config_json(config);
  EXPECT_NE(canonical.find("\"adapt.enabled\":true"), std::string::npos);
  EXPECT_NE(canonical.find("\"adapt.base_margin_db\":-8"), std::string::npos);
  const ExperimentConfig reloaded =
      experiment_config_from_canonical_json(canonical);
  EXPECT_EQ(canonical_config_json(reloaded), canonical);
  EXPECT_EQ(reloaded.adapt.max_backoff, 3);
  EXPECT_EQ(reloaded.adapt.react, false);

  // Different adapt knobs must key differently in the serve cache.
  ExperimentConfig other = config;
  other.adapt.max_backoff = 2;
  EXPECT_NE(canonical_config_json(other), canonical);
}

}  // namespace
}  // namespace ownsim

// Tests for the OWN-256 reconfiguration-channel extension (band-plan links
// 13-16, D antennas): planning, structure, routing, delivery and the
// 16-channel energy model.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "topology/own.hpp"
#include "topology/own_reconfig.hpp"
#include "wireless/configurations.hpp"

namespace ownsim {
namespace {

TEST(ReconfigPlan, IsADerangementOfClusters) {
  for (PatternKind pattern : paper_patterns()) {
    const ReconfigPlan plan = plan_reconfig(pattern);
    std::set<int> sources;
    std::set<int> destinations;
    for (const auto& [src, dst] : plan.pairs) {
      EXPECT_NE(src, dst);
      sources.insert(src);
      destinations.insert(dst);
    }
    EXPECT_EQ(sources.size(), 4u) << to_string(pattern);
    EXPECT_EQ(destinations.size(), 4u) << to_string(pattern);
  }
}

TEST(ReconfigPlan, UniformPrefersDiagonals) {
  // All pairs equally loaded -> tie-break picks the C2C-heavy derangement.
  const ReconfigPlan plan = plan_reconfig(PatternKind::kUniform);
  int diagonals = 0;
  for (const auto& [src, dst] : plan.pairs) {
    diagonals += ((src ^ dst) == 2) ? 1 : 0;
  }
  EXPECT_EQ(diagonals, 4);
}

TEST(ReconfigPlan, FollowsPatternLoad) {
  // Perfect shuffle concentrates inter-cluster traffic on specific pairs;
  // the plan must cover the most-loaded directed pairs.
  const ReconfigPlan plan = plan_reconfig(PatternKind::kShuffle);
  TrafficPattern traffic(PatternKind::kShuffle, 256);
  Rng rng(1);
  double counts[4][4] = {};
  for (NodeId src = 0; src < 256; ++src) {
    const NodeId dst = traffic.dest(src, rng);
    if (src / 64 != dst / 64) counts[src / 64][dst / 64] += 1;
  }
  double covered = 0;
  double total = 0;
  std::set<std::pair<int, int>> chosen(plan.pairs.begin(), plan.pairs.end());
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      total += counts[a][b];
      if (chosen.count({a, b})) covered += counts[a][b];
    }
  }
  EXPECT_GT(covered / total, 0.4);  // 4 of 12 pairs carry >40% of the load
}

TEST(ReconfigBuild, StructureValidatesAndAddsFourChannels) {
  TopologyOptions options;
  options.num_cores = 256;
  const ReconfigPlan plan = plan_reconfig(PatternKind::kUniform);
  const NetworkSpec spec = build_own256_reconfig(options, plan);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.links.size(), 16u);  // 12 + 4 reconfiguration
  std::set<int> channels;
  for (const auto& link : spec.links) channels.insert(link.wireless_channel);
  for (int id = 0; id < 16; ++id) EXPECT_TRUE(channels.count(id)) << id;
}

TEST(ReconfigBuild, OddColumnTilesUseTheDChannel) {
  TopologyOptions options;
  options.num_cores = 256;
  const ReconfigPlan plan = plan_reconfig(PatternKind::kUniform);
  const NetworkSpec spec = build_own256_reconfig(options, plan);
  const auto& [src_cluster, dst_cluster] = plan.pairs[0];
  const RouterId dst_router = own_router(0, dst_cluster, 5);
  // Odd tile 9 routes toward the D corner (tile 15)...
  const RouteEntry odd =
      spec.route_table[own_router(0, src_cluster, 9)][dst_router];
  EXPECT_EQ(odd.out_port, own_writer_port(9, 15));
  // ...while even tile 6 keeps the primary gateway.
  const int primary =
      antenna_tile(own256_channel(src_cluster, dst_cluster).src_antenna);
  const RouteEntry even =
      spec.route_table[own_router(0, src_cluster, 6)][dst_router];
  EXPECT_EQ(even.out_port, own_writer_port(6, primary));
}

TEST(ReconfigBuild, DeliversRandomTraffic) {
  TopologyOptions options;
  options.num_cores = 256;
  Network net(
      build_own256_reconfig(options, plan_reconfig(PatternKind::kUniform)));
  Rng rng(99);
  for (int i = 0; i < 400; ++i) {
    const auto s = static_cast<NodeId>(rng.below(256));
    const auto d = static_cast<NodeId>(rng.below(256));
    net.nic().enqueue_packet(s, d, net.router_of(d), 4, 128,
                             net.injection_vc_class(s, d), 0, true);
  }
  ASSERT_TRUE(testing::drain(net, 400000));
  EXPECT_EQ(net.nic().records().size(), 400u);
}

TEST(ReconfigEnergy, SixteenChannelModelResolves) {
  const ReconfigPlan plan = plan_reconfig(PatternKind::kUniform);
  const ChannelEnergyModel model(OwnConfig::kConfig4, Scenario::kIdeal,
                                 reconfig_channel_distances(plan),
                                 reconfig_sdm_groups());
  EXPECT_EQ(model.assignments().size(), 16u);
  for (int id = 12; id < 16; ++id) {
    EXPECT_GT(model.epb(id).value(), 0.0);
  }
}

TEST(ReconfigEnergy, DistancesMatchPlanPairs) {
  const ReconfigPlan plan = plan_reconfig(PatternKind::kUniform);
  const auto distances = reconfig_channel_distances(plan);
  ASSERT_EQ(distances.size(), 16u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(distances[12 + k], reconfig_distance(plan.pairs[k]));
  }
}

}  // namespace
}  // namespace ownsim

// Tests for OWN-256 wireless fault tolerance: transit selection, degraded
// routing structure, delivery under failures, and graceful-degradation
// latency behavior.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "metrics/runner.hpp"
#include "topology/own.hpp"
#include "topology/own_fault.hpp"
#include "traffic/injector.hpp"

namespace ownsim {
namespace {

TopologyOptions fault_options() {
  TopologyOptions options;
  options.num_cores = 256;
  options.num_vcs = 5;
  return options;
}

TEST(FaultSet, BasicOperations) {
  FaultSet faults;
  EXPECT_FALSE(faults.is_failed(0, 2));
  faults.fail(0, 2);
  EXPECT_TRUE(faults.is_failed(0, 2));
  EXPECT_FALSE(faults.is_failed(2, 0));  // directions are independent
  faults.fail(0, 2);                     // idempotent
  EXPECT_EQ(faults.size(), 1u);
  EXPECT_THROW(faults.fail(1, 1), std::invalid_argument);
}

TEST(FaultSet, TransitAvoidsFailedLegs) {
  FaultSet faults;
  faults.fail(0, 2);
  EXPECT_EQ(faults.transit_for(0, 2), 1);  // 0->1 and 1->2 alive
  faults.fail(0, 1);
  EXPECT_EQ(faults.transit_for(0, 2), 3);  // must go around the other way
  faults.fail(0, 3);
  EXPECT_EQ(faults.transit_for(0, 2), -1);  // cluster 0 cannot transmit
}

TEST(FaultBuild, HealthySetMatchesBaselineBehavior) {
  const NetworkSpec spec = build_own256_faulted(fault_options(), FaultSet{});
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.links.size(), 12u);  // all channels alive
}

TEST(FaultBuild, FailedChannelRemovedFromSpec) {
  FaultSet faults;
  faults.fail(0, 2);
  const NetworkSpec spec = build_own256_faulted(fault_options(), faults);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.links.size(), 11u);
  for (const auto& link : spec.links) {
    EXPECT_NE(link.wireless_channel, own256_channel(0, 2).id);
  }
}

TEST(FaultBuild, RejectsUnrecoverableSets) {
  FaultSet faults;
  faults.fail(0, 1);
  faults.fail(0, 2);
  faults.fail(0, 3);  // cluster 0 fully cut off
  EXPECT_THROW(build_own256_faulted(fault_options(), faults),
               std::invalid_argument);
}

TEST(FaultBuild, RejectsTooFewVcs) {
  TopologyOptions options = fault_options();
  options.num_vcs = 4;
  EXPECT_THROW(build_own256_faulted(options, FaultSet{}),
               std::invalid_argument);
}

void send_all_pairs(Network& net, int stride) {
  for (NodeId s = 0; s < 256; s += stride) {
    for (NodeId d = 3; d < 256; d += stride) {
      net.nic().enqueue_packet(s, d, net.router_of(d), 4, 128,
                               net.injection_vc_class(s, d), 0, true);
    }
  }
}

TEST(FaultBuild, DeliversAcrossTheFailedPair) {
  FaultSet faults;
  faults.fail(0, 2);
  faults.fail(2, 0);  // both directions of the diagonal die
  Network net(build_own256_faulted(fault_options(), faults));
  send_all_pairs(net, 16);
  ASSERT_TRUE(testing::drain(net, 400000));
  // Rerouted packets take up to 6 router traversals (5 link hops);
  // everything else takes at most 4 (the healthy 3-link worst case).
  int rerouted = 0;
  for (const auto& rec : net.nic().records()) {
    EXPECT_LE(rec.hops, 6);
    if (rec.hops > 4) ++rerouted;
  }
  EXPECT_GT(rerouted, 0);
}

TEST(FaultBuild, RandomTrafficSurvivesThreeFailures) {
  FaultSet faults;
  faults.fail(0, 2);
  faults.fail(1, 3);
  faults.fail(3, 2);
  Network net(build_own256_faulted(fault_options(), faults));
  Rng rng(4242);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<NodeId>(rng.below(256));
    const auto d = static_cast<NodeId>(rng.below(256));
    net.nic().enqueue_packet(s, d, net.router_of(d), 4, 128,
                             net.injection_vc_class(s, d), 0, true);
  }
  ASSERT_TRUE(testing::drain(net, 400000));
  EXPECT_EQ(net.nic().records().size(), 500u);
}

TEST(FaultBuild, GracefulDegradationUnderLoad) {
  auto run = [&](const FaultSet& faults) {
    Network net(build_own256_faulted(fault_options(), faults));
    TrafficPattern pattern(PatternKind::kUniform, 256);
    Injector::Params params;
    params.rate = 0.003;
    Injector injector(&net, pattern, params);
    net.engine().add(&injector);
    RunPhases phases;
    phases.warmup = 1000;
    phases.measure = 3000;
    const RunResult result = run_load_point(net, injector, phases);
    EXPECT_TRUE(result.drained);
    return result.avg_latency;
  };
  const double healthy = run(FaultSet{});
  FaultSet one;
  one.fail(0, 2);
  const double degraded = run(one);
  // Losing a diagonal costs latency, but the network stays functional and
  // the penalty is bounded (rerouted flows are 1/16 of the traffic).
  EXPECT_GT(degraded, healthy);
  EXPECT_LT(degraded, 3.0 * healthy);
}

TEST(FaultBuild, OverloadStillMakesProgress) {
  FaultSet faults;
  faults.fail(1, 3);
  faults.fail(3, 1);
  Network net(build_own256_faulted(fault_options(), faults));
  TrafficPattern pattern(PatternKind::kUniform, 256);
  Injector::Params params;
  params.rate = 0.02;  // far beyond saturation
  Injector injector(&net, pattern, params);
  net.engine().add(&injector);
  net.engine().run(3000);
  for (int window = 0; window < 5; ++window) {
    const auto before = net.nic().packets_ejected();
    net.engine().run(1000);
    EXPECT_GT(net.nic().packets_ejected(), before) << "window " << window;
  }
}

}  // namespace
}  // namespace ownsim

// Tests for OWN-256 wireless fault tolerance: transit selection, degraded
// routing structure, delivery under failures, graceful-degradation latency
// behavior, and the runtime fault campaign (injection, retransmission,
// online rerouting, watchdog).
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "driver/simulate.hpp"
#include "fault/campaign.hpp"
#include "helpers.hpp"
#include "metrics/runner.hpp"
#include "topology/own.hpp"
#include "topology/own_fault.hpp"
#include "traffic/injector.hpp"

namespace ownsim {
namespace {

TopologyOptions fault_options() {
  TopologyOptions options;
  options.num_cores = 256;
  options.num_vcs = 5;
  return options;
}

TEST(FaultSet, BasicOperations) {
  FaultSet faults;
  EXPECT_FALSE(faults.is_failed(0, 2));
  faults.fail(0, 2);
  EXPECT_TRUE(faults.is_failed(0, 2));
  EXPECT_FALSE(faults.is_failed(2, 0));  // directions are independent
  faults.fail(0, 2);                     // idempotent
  EXPECT_EQ(faults.size(), 1u);
  EXPECT_THROW(faults.fail(1, 1), std::invalid_argument);
}

TEST(FaultSet, TransitAvoidsFailedLegs) {
  FaultSet faults;
  faults.fail(0, 2);
  EXPECT_EQ(faults.transit_for(0, 2), 1);  // 0->1 and 1->2 alive
  faults.fail(0, 1);
  EXPECT_EQ(faults.transit_for(0, 2), 3);  // must go around the other way
  faults.fail(0, 3);
  EXPECT_EQ(faults.transit_for(0, 2), -1);  // cluster 0 cannot transmit
}

TEST(FaultBuild, HealthySetMatchesBaselineBehavior) {
  const NetworkSpec spec = build_own256_faulted(fault_options(), FaultSet{});
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.links.size(), 12u);  // all channels alive
}

TEST(FaultBuild, FailedChannelRemovedFromSpec) {
  FaultSet faults;
  faults.fail(0, 2);
  const NetworkSpec spec = build_own256_faulted(fault_options(), faults);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.links.size(), 11u);
  for (const auto& link : spec.links) {
    EXPECT_NE(link.wireless_channel, own256_channel(0, 2).id);
  }
}

TEST(FaultBuild, RejectsUnrecoverableSets) {
  FaultSet faults;
  faults.fail(0, 1);
  faults.fail(0, 2);
  faults.fail(0, 3);  // cluster 0 fully cut off
  EXPECT_THROW(build_own256_faulted(fault_options(), faults),
               std::invalid_argument);
}

TEST(FaultBuild, RejectsTooFewVcs) {
  TopologyOptions options = fault_options();
  options.num_vcs = 4;
  EXPECT_THROW(build_own256_faulted(options, FaultSet{}),
               std::invalid_argument);
}

void send_all_pairs(Network& net, int stride) {
  for (NodeId s = 0; s < 256; s += stride) {
    for (NodeId d = 3; d < 256; d += stride) {
      net.nic().enqueue_packet(s, d, net.router_of(d), 4, 128,
                               net.injection_vc_class(s, d), 0, true);
    }
  }
}

TEST(FaultBuild, DeliversAcrossTheFailedPair) {
  FaultSet faults;
  faults.fail(0, 2);
  faults.fail(2, 0);  // both directions of the diagonal die
  Network net(build_own256_faulted(fault_options(), faults));
  send_all_pairs(net, 16);
  ASSERT_TRUE(testing::drain(net, 400000));
  // Rerouted packets take up to 6 router traversals (5 link hops);
  // everything else takes at most 4 (the healthy 3-link worst case).
  int rerouted = 0;
  for (const auto& rec : net.nic().records()) {
    EXPECT_LE(rec.hops, 6);
    if (rec.hops > 4) ++rerouted;
  }
  EXPECT_GT(rerouted, 0);
}

TEST(FaultBuild, RandomTrafficSurvivesThreeFailures) {
  FaultSet faults;
  faults.fail(0, 2);
  faults.fail(1, 3);
  faults.fail(3, 2);
  Network net(build_own256_faulted(fault_options(), faults));
  Rng rng(4242);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<NodeId>(rng.below(256));
    const auto d = static_cast<NodeId>(rng.below(256));
    net.nic().enqueue_packet(s, d, net.router_of(d), 4, 128,
                             net.injection_vc_class(s, d), 0, true);
  }
  ASSERT_TRUE(testing::drain(net, 400000));
  EXPECT_EQ(net.nic().records().size(), 500u);
}

TEST(FaultBuild, GracefulDegradationUnderLoad) {
  auto run = [&](const FaultSet& faults) {
    Network net(build_own256_faulted(fault_options(), faults));
    TrafficPattern pattern(PatternKind::kUniform, 256);
    Injector::Params params;
    params.rate = 0.003;
    Injector injector(&net, pattern, params);
    net.engine().add(&injector);
    RunPhases phases;
    phases.warmup = 1000;
    phases.measure = 3000;
    const RunResult result = run_load_point(net, injector, phases);
    EXPECT_TRUE(result.drained);
    return result.avg_latency;
  };
  const double healthy = run(FaultSet{});
  FaultSet one;
  one.fail(0, 2);
  const double degraded = run(one);
  // Losing a diagonal costs latency, but the network stays functional and
  // the penalty is bounded (rerouted flows are 1/16 of the traffic).
  EXPECT_GT(degraded, healthy);
  EXPECT_LT(degraded, 3.0 * healthy);
}

// ---------------------------------------------------------------------------
// Runtime fault campaign (fault/campaign.hpp).

/// OWN-256 experiment at a sub-saturation load with `fault` armed.
ExperimentConfig campaign_experiment(fault::CampaignConfig fault) {
  ExperimentConfig config;
  config.options.num_cores = 256;
  config.rate = 0.004;
  config.phases.warmup = 300;
  config.phases.measure = 1500;
  config.phases.drain_limit = 20000;
  fault.enabled = true;
  config.fault = fault;
  return config;
}

TEST(FaultCampaign, TransientBerDeliversEverything) {
  fault::CampaignConfig fault;
  fault.margin = Decibels{-8.0};  // stress operating point: measurable BER
  const ExperimentResult result = run_experiment(campaign_experiment(fault));
  // The reliability protocol masks every corruption: nothing is dropped,
  // the NACKed copies just pay backoff latency.
  EXPECT_TRUE(result.run.drained);
  EXPECT_GT(result.fault.crc_errors, 0);
  EXPECT_GT(result.fault.retransmissions, 0);
  EXPECT_GE(result.fault.retransmissions, result.fault.crc_errors);
  EXPECT_EQ(result.fault.flows_degraded, 0);
}

TEST(FaultCampaign, MidRunKillConvergesToDegradedRoutes) {
  fault::CampaignConfig fault;
  fault.ber = 0.0;  // isolate the permanent-death path
  fault::Event kill;
  kill.kind = fault::EventKind::kKill;
  kill.at = 600;
  kill.src_cluster = 0;
  kill.dst_cluster = 2;
  fault.events.push_back(kill);
  const ExperimentResult result = run_experiment(campaign_experiment(fault));
  // Zero packets lost: flits caught on the dying channel pay the exhausted
  // backoff but still deliver, and post-detection traffic takes the
  // 2-wireless-hop degraded routes.
  EXPECT_TRUE(result.run.drained);
  // One dead pair patches every (router in cluster 0) x (tile in cluster 2)
  // entry: 16 x 16.
  EXPECT_EQ(result.fault.flows_degraded, 256);
  // Copies stranded on the dying channel retransmit to exhaustion.
  EXPECT_GT(result.fault.retransmissions, 0);
}

TEST(FaultCampaign, FlapDelaysButDelivers) {
  fault::CampaignConfig fault;
  fault.ber = 0.0;
  fault::Event flap;
  flap.kind = fault::EventKind::kFlap;
  flap.at = 600;
  flap.src_cluster = 0;
  flap.dst_cluster = 2;
  flap.down_cycles = 400;
  fault.events.push_back(flap);
  const ExperimentResult result = run_experiment(campaign_experiment(fault));
  EXPECT_TRUE(result.run.drained);
  EXPECT_EQ(result.fault.crc_errors, 0);  // outages NACK nothing, BER is 0
  EXPECT_EQ(result.fault.flows_degraded, 0);  // transient: no reroute
}

TEST(FaultCampaign, TokenLossRecovers) {
  fault::CampaignConfig fault;
  fault.ber = 0.0;
  fault::Event loss;
  loss.kind = fault::EventKind::kTokenLoss;
  loss.at = 500;
  loss.medium = 0;
  loss.recovery = 64;
  fault.events.push_back(loss);
  const ExperimentResult result = run_experiment(campaign_experiment(fault));
  EXPECT_TRUE(result.run.drained);
  EXPECT_EQ(result.fault.token_recoveries, 1);
  EXPECT_EQ(result.fault.watchdog_trips, 0);
}

TEST(FaultCampaign, SameSeedIsBitIdentical) {
  fault::CampaignConfig fault;
  fault.seed = 99;
  fault.margin = Decibels{-8.0};
  fault.random_flaps = 2;
  const ExperimentResult a = run_experiment(campaign_experiment(fault));
  const ExperimentResult b = run_experiment(campaign_experiment(fault));
  EXPECT_TRUE(deterministic_eq(a.run, b.run));
  EXPECT_EQ(a.fault.crc_errors, b.fault.crc_errors);
  EXPECT_EQ(a.fault.retransmissions, b.fault.retransmissions);
}

TEST(FaultCampaign, WatchdogQuietOnHealthyRun) {
  fault::CampaignConfig fault;
  fault.margin = Decibels{-8.0};
  fault.watchdog = true;
  fault.watchdog_window = 2000;
  std::ostringstream diagnostics;
  fault.diagnostics = &diagnostics;
  const ExperimentResult result = run_experiment(campaign_experiment(fault));
  EXPECT_TRUE(result.run.drained);
  EXPECT_FALSE(result.watchdog_tripped);
  EXPECT_TRUE(diagnostics.str().empty());
}

TEST(FaultCampaign, TokenDeadlockTripsWatchdogWithinBound) {
  // A token lost forever wedges every writer on that waveguide. With only
  // those packets outstanding, deliveries stop entirely and the watchdog
  // must convert the hang into a diagnosed abort within two windows.
  TopologyOptions options;
  options.num_cores = 256;
  Network net(build_topology(TopologyKind::kOwn, options));

  fault::CampaignConfig config;
  config.enabled = true;
  config.ber = 0.0;
  fault::Event loss;
  loss.kind = fault::EventKind::kTokenLoss;
  loss.at = 1;      // before anything launches
  loss.medium = 10;  // cluster 0's waveguide home tile 10 (MWSR reader)
  loss.recovery = kNeverCycle;
  config.events.push_back(loss);
  config.watchdog = true;
  config.watchdog_window = 400;
  std::ostringstream diagnostics;
  config.diagnostics = &diagnostics;
  fault::FaultCampaign campaign(&net, config);
  campaign.attach();

  // All traffic targets the wedged waveguide's home tile (tile 10 of
  // cluster 0), so every packet needs the lost token to make progress.
  for (NodeId s = 0; s < 4; ++s) {
    const NodeId d = 40 + s;  // tile 10, same cluster
    net.nic().enqueue_packet(s, d, net.router_of(d), 4, 128,
                             net.injection_vc_class(s, d), 0, true);
  }
  ASSERT_NE(campaign.watchdog(), nullptr);
  net.engine().run_until(
      [&] { return campaign.watchdog_tripped() || net.drained(); }, 5000);
  EXPECT_TRUE(campaign.watchdog_tripped());
  EXPECT_FALSE(net.drained());
  EXPECT_EQ(campaign.totals().watchdog_trips, 1);
  // Stall starts at cycle 1; the first no-progress sample lands within one
  // window and the trip on the next — at most 2W (+1) later.
  EXPECT_LE(net.engine().now(), 1 + 2 * config.watchdog_window + 1);
  // The dump names the wedged state well enough to debug from.
  EXPECT_NE(diagnostics.str().find("watchdog"), std::string::npos);
  EXPECT_NE(diagnostics.str().find("in flight"), std::string::npos);
}

TEST(FaultCampaign, RejectsInvalidEvents) {
  TopologyOptions options;
  options.num_cores = 256;
  Network net(build_topology(TopologyKind::kOwn, options));
  {
    fault::CampaignConfig config;
    fault::Event kill;
    kill.kind = fault::EventKind::kKill;
    kill.at = 100;
    kill.src_cluster = 0;
    kill.dst_cluster = 2;
    config.events.push_back(kill);
    // Kill events demand the 5-class degraded scheme; the plain build
    // cannot reroute online.
    EXPECT_THROW(fault::FaultCampaign(&net, config), std::invalid_argument);
  }
  {
    fault::CampaignConfig config;
    fault::Event loss;
    loss.kind = fault::EventKind::kTokenLoss;
    loss.at = 100;
    loss.medium = 1 << 20;
    config.events.push_back(loss);
    EXPECT_THROW(fault::FaultCampaign(&net, config), std::invalid_argument);
  }
  {
    fault::CampaignConfig config;
    fault::Event flap;
    flap.at = 0;  // events start at cycle 1
    config.events.push_back(flap);
    EXPECT_THROW(fault::FaultCampaign(&net, config), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Campaigns on file topologies (topology=file:). Transient BER and the
// link-index event forms work on any topology with wireless links; only the
// cluster-pair kill (which needs the online reroute) stays OWN-256-only.

/// OWN-256 loaded back from the checked-in export, campaign armed.
ExperimentConfig file_own256_experiment() {
  ExperimentConfig config;
  config.topology = TopologyKind::kFile;
  config.options.num_cores = 256;
  config.options.topofile_path =
      std::string(OWNSIM_SOURCE_DIR) + "/configs/topologies/own256.topo.json";
  config.rate = 0.004;
  config.phases.warmup = 300;
  config.phases.measure = 1500;
  config.phases.drain_limit = 20000;
  config.fault.enabled = true;
  return config;
}

TEST(FaultCampaign, FileTopologyTransientBerDelivers) {
  ExperimentConfig config = file_own256_experiment();
  config.fault.margin = Decibels{-8.0};
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.run.drained);
  EXPECT_GT(result.fault.crc_errors, 0);
  EXPECT_GE(result.fault.retransmissions, result.fault.crc_errors);
  EXPECT_EQ(result.fault.flows_degraded, 0);
}

TEST(FaultCampaign, FileTopologyLinkIndexKillDrains) {
  ExperimentConfig config = file_own256_experiment();
  config.rate = 0.002;
  config.phases.measure = 600;
  config.phases.drain_limit = 300000;
  config.fault.ber = 0.0;  // isolate the kill path

  // Kill the first wireless link of the loaded spec mid-measure. No reroute
  // exists in the link-index form: every flit routed over the dead link pays
  // the exhausted backoff — slow, but nothing may be lost.
  const NetworkSpec spec = build_topology(TopologyKind::kFile, config.options);
  int victim = -1;
  for (std::size_t i = 0; i < spec.links.size(); ++i) {
    if (spec.links[i].medium == MediumType::kWireless) {
      victim = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(victim, 0);
  fault::Event kill;
  kill.kind = fault::EventKind::kKill;
  kill.at = 600;
  kill.link = victim;
  config.fault.events.push_back(kill);

  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.run.drained);
  // Copies stranded on the dead link retransmit to exhaustion; no detector
  // runs, so no flow is rerouted.
  EXPECT_GT(result.fault.retransmissions, 0);
  EXPECT_EQ(result.fault.flows_degraded, 0);
}

TEST(FaultCampaign, FileTopologyClusterKillStillRejected) {
  // The cluster-pair kill needs the 5-class degraded route scheme, which
  // only build_own256_faulted produces — a loaded file cannot reroute.
  ExperimentConfig config = file_own256_experiment();
  fault::Event kill;
  kill.kind = fault::EventKind::kKill;
  kill.at = 600;
  kill.src_cluster = 0;
  kill.dst_cluster = 2;
  config.fault.events.push_back(kill);
  EXPECT_THROW(run_experiment(config), std::invalid_argument);
}

TEST(FaultBuild, OverloadStillMakesProgress) {
  FaultSet faults;
  faults.fail(1, 3);
  faults.fail(3, 1);
  Network net(build_own256_faulted(fault_options(), faults));
  TrafficPattern pattern(PatternKind::kUniform, 256);
  Injector::Params params;
  params.rate = 0.02;  // far beyond saturation
  Injector injector(&net, pattern, params);
  net.engine().add(&injector);
  net.engine().run(3000);
  for (int window = 0; window < 5; ++window) {
    const auto before = net.nic().packets_ejected();
    net.engine().run(1000);
    EXPECT_GT(net.nic().packets_ejected(), before) << "window " << window;
  }
}

}  // namespace
}  // namespace ownsim

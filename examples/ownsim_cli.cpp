// Full command-line front end for the simulator.
//
//   ./ownsim_cli topology=own cores=256 pattern=UN rate=0.004
//                config=4 scenario=ideal warmup=1500 measure=4000
//                report=json seed=1 packet_flits=4   (one line in practice)
//
// Any subset of keys may be given (defaults shown above); `report=csv|json`
// additionally dumps per-channel utilization to stdout after the summary.
// `sweep=r1:r2:...` switches to a latency sweep over those offered loads,
// fanned across `threads` workers (also accepted as `--threads N`).
// Run with `help=1` for the key list.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "driver/simulate.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/report.hpp"
#include "metrics/table_io.hpp"
#include "obs/trace.hpp"

namespace {

void print_help() {
  std::cout <<
      "ownsim_cli key=value ...\n"
      "  topology   own | cmesh | wcmesh | optxb | pclos      [own]\n"
      "  cores      256 | 1024 (others where the topology allows) [256]\n"
      "  pattern    UN | BR | MT | PS | NBR | tornado | hotspot  [UN]\n"
      "  rate       offered load, flits/node/cycle             [0.004]\n"
      "  config     1..4 (Table IV, OWN only)                  [4]\n"
      "  scenario   ideal | conservative (Table III)           [ideal]\n"
      "  warmup, measure, drain   phase lengths in cycles      [1500/4000/30000]\n"
      "  packet_flits, seed                                    [4 / 1]\n"
      "  report     none | csv | json (channel utilization)    [none]\n"
      "  sweep      colon-separated rates (e.g. 0.002:0.004): run a\n"
      "             latency sweep instead of a single point\n"
      "             (seed becomes the sweep master seed)\n"
      "  threads    workers for the sweep (--threads N also accepted)\n"
      "             [hardware concurrency]\n"
      "  progress   1: print per-point progress lines to stderr  [0]\n"
      "  trace_out  write a Chrome trace_event JSON of the run to this\n"
      "             path (single-point mode; load in ui.perfetto.dev;\n"
      "             --trace-out PATH also accepted)\n"
      "  counters   1: dump the obs counter registry as JSON after the\n"
      "             summary (single-point mode)  [0]\n"
      "  profile    1: print the run's wall-clock self-profile  [0]\n"
      "fault campaign (single-point mode; see DESIGN.md 5f):\n"
      "  fault      1: enable the runtime fault campaign          [0]\n"
      "  fault_seed campaign master seed                          [seed]\n"
      "  fault_ber  per-bit error rate on wireless hops; negative derives\n"
      "             it from the link budget operating point       [-1]\n"
      "  fault_margin_db   link margin for the derived BER (negative\n"
      "             values stress the links)                      [2.5]\n"
      "  fault_flaps       randomly placed wireless-link flaps    [0]\n"
      "  fault_flap_down   flap outage length, cycles             [200]\n"
      "  fault_horizon     random events land in [1, horizon]     [4000]\n"
      "  fault_kill        src:dst@cycle — kill the wireless channel\n"
      "             between those clusters mid-run (OWN-256)\n"
      "  fault_token_loss  medium@cycle:recovery — lose the token of\n"
      "             medium index at cycle; recovery is cycles until the\n"
      "             token regenerates, or 'never'\n"
      "  watchdog   no-progress window in cycles, 0 = off; a trip dumps\n"
      "             diagnostics to stderr and exits with code 3   [0]\n";
}

/// Parses "0.001:0.002:0.004" into rates; throws on junk.
std::vector<double> parse_rates(const std::string& csv) {
  std::vector<double> rates;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ':')) {
    if (item.empty()) continue;
    std::size_t used = 0;
    try {
      rates.push_back(std::stod(item, &used));
    } catch (const std::exception&) {
      used = std::string::npos;  // not a number at all
    }
    if (used != item.size()) {
      throw std::invalid_argument("bad rate in sweep list: " + item);
    }
  }
  if (rates.empty()) throw std::invalid_argument("sweep: no rates given");
  return rates;
}

/// Parses "src:dst@cycle" into a kill event.
ownsim::fault::Event parse_kill(const std::string& s) {
  ownsim::fault::Event event;
  event.kind = ownsim::fault::EventKind::kKill;
  const std::size_t colon = s.find(':');
  const std::size_t at = s.find('@');
  if (colon == std::string::npos || at == std::string::npos || at < colon) {
    throw std::invalid_argument("fault_kill: want src:dst@cycle");
  }
  event.src_cluster = std::stoi(s.substr(0, colon));
  event.dst_cluster = std::stoi(s.substr(colon + 1, at - colon - 1));
  event.at = std::stoll(s.substr(at + 1));
  return event;
}

/// Parses "medium@cycle:recovery" (recovery in cycles, or "never").
ownsim::fault::Event parse_token_loss(const std::string& s) {
  ownsim::fault::Event event;
  event.kind = ownsim::fault::EventKind::kTokenLoss;
  const std::size_t at = s.find('@');
  const std::size_t colon = at == std::string::npos ? at : s.find(':', at);
  if (at == std::string::npos || colon == std::string::npos) {
    throw std::invalid_argument(
        "fault_token_loss: want medium@cycle:recovery");
  }
  event.medium = std::stoi(s.substr(0, at));
  event.at = std::stoll(s.substr(at + 1, colon - at - 1));
  const std::string recovery = s.substr(colon + 1);
  event.recovery =
      recovery == "never" ? ownsim::kNeverCycle : std::stoll(recovery);
  return event;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ownsim;
  std::ostringstream joined;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // GNU-style convenience: "--threads 4" and "--threads=4" become
    // "threads=4" for the key=value parser.
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      if (arg.find('=') == std::string::npos && i + 1 < argc) {
        arg += '=';
        arg += argv[++i];
      }
      // "--trace-out=x" -> "trace_out=x": keys use underscores internally.
      for (std::size_t k = 0; k < arg.size() && arg[k] != '='; ++k) {
        if (arg[k] == '-') arg[k] = '_';
      }
    }
    joined << arg << ' ';
  }
  Config args;
  try {
    args = Config::from_string(joined.str());
  } catch (const std::exception& e) {
    std::cerr << "bad arguments: " << e.what() << "\n";
    print_help();
    return 1;
  }
  if (args.get_bool("help", false)) {
    print_help();
    return 0;
  }
  // `file=path` loads defaults from a config file; command-line keys win.
  if (args.contains("file")) {
    try {
      Config from_file = Config::from_file(args.require_string("file"));
      from_file.merge(args);
      args = from_file;
    } catch (const std::exception& e) {
      std::cerr << "cannot load config file: " << e.what() << "\n";
      return 1;
    }
  }

  try {
    ExperimentConfig config;
    config.topology = parse_topology(args.get_string("topology", "own"));
    config.pattern = parse_pattern(args.get_string("pattern", "UN"));
    config.options.num_cores = static_cast<int>(args.get_int("cores", 256));
    config.rate = args.get_double("rate", 0.004);
    config.own_config =
        static_cast<OwnConfig>(args.get_int("config", 4));
    config.scenario = args.get_string("scenario", "ideal") == "conservative"
                          ? Scenario::kConservative
                          : Scenario::kIdeal;
    config.phases.warmup = args.get_int("warmup", 1500);
    config.phases.measure = args.get_int("measure", 4000);
    config.phases.drain_limit = args.get_int("drain", 30000);
    config.injector.packet_flits =
        static_cast<int>(args.get_int("packet_flits", 4));
    config.injector.master_seed =
        static_cast<std::uint64_t>(args.get_int("seed", 1));

    config.fault.enabled = args.get_bool("fault", false);
    config.fault.seed = static_cast<std::uint64_t>(
        args.get_int("fault_seed",
                     static_cast<std::int64_t>(config.injector.master_seed)));
    config.fault.ber = args.get_double("fault_ber", -1.0);
    config.fault.margin = Decibels{args.get_double("fault_margin_db", 2.5)};
    config.fault.random_flaps =
        static_cast<int>(args.get_int("fault_flaps", 0));
    config.fault.flap_down_cycles = args.get_int("fault_flap_down", 200);
    config.fault.horizon = args.get_int("fault_horizon", 4000);
    if (args.contains("fault_kill")) {
      config.fault.events.push_back(
          parse_kill(args.require_string("fault_kill")));
    }
    if (args.contains("fault_token_loss")) {
      config.fault.events.push_back(
          parse_token_loss(args.require_string("fault_token_loss")));
    }
    const Cycle watchdog_window = args.get_int("watchdog", 0);
    config.fault.watchdog = watchdog_window > 0;
    config.fault.watchdog_window =
        config.fault.watchdog ? watchdog_window : Cycle{20000};

    // Sweep mode: fan one fresh network per load point across the pool.
    if (args.contains("sweep")) {
      if (config.fault.enabled) {
        throw std::invalid_argument(
            "fault campaigns run in single-point mode, not sweep mode");
      }
      SweepOptions sweep_options;
      sweep_options.rates = parse_rates(args.require_string("sweep"));
      sweep_options.pattern = config.pattern;
      sweep_options.phases = config.phases;
      sweep_options.injector = config.injector;
      sweep_options.master_seed = config.injector.master_seed;
      sweep_options.threads = static_cast<unsigned>(
          args.get_int("threads", exec::default_threads()));
      sweep_options.stop_after_saturation = false;
      if (args.get_bool("progress", false)) {
        sweep_options.progress = [](const SweepProgress& p) {
          std::cerr << sweep_progress_line(p) << '\n';
        };
      }
      const SweepResult sweep = latency_sweep(
          make_network_factory(config.topology, config.options),
          sweep_options);

      Table table({"offered", "avg_latency", "p99", "throughput", "drained"});
      for (const SweepPoint& point : sweep.points) {
        table.add_row({Table::num(point.rate, 4),
                       Table::num(point.result.avg_latency, 1),
                       Table::num(point.result.p99_latency, 1),
                       Table::num(point.result.throughput, 4),
                       point.result.drained ? "yes" : "no"});
      }
      table.print(std::cout);
      std::cout << "\nzero-load latency : " << sweep.zero_load_latency
                << " cycles\nsaturation load   : " << sweep.saturation_rate
                << " flits/node/cycle\nexecution         : "
                << sweep_telemetry_summary(sweep.telemetry) << '\n';
      return 0;
    }

    // Rebuild the network here (rather than via run_experiment) so the
    // utilization report can inspect it afterwards.
    Network network(build_experiment_spec(config));
    TrafficPattern pattern(config.pattern, config.options.num_cores);
    Injector::Params injector_params = config.injector;
    injector_params.rate = config.rate;
    Injector injector(&network, pattern, injector_params);
    network.engine().add(&injector);

    std::unique_ptr<fault::FaultCampaign> campaign =
        make_campaign(network, config);
    exec::CancellationToken cancel_token;
    if (campaign != nullptr) {
      campaign->attach();
      if (campaign->watchdog() != nullptr) {
        cancel_token = campaign->watchdog()->token();
      }
    }

    // Tracing is runtime-opt-in: attaching the writer must not (and does
    // not — test_obs asserts it) change any simulated result.
    std::unique_ptr<obs::TraceWriter> trace;
    const std::string trace_out = args.get_string("trace_out", "");
    if (!trace_out.empty()) {
      trace = std::make_unique<obs::TraceWriter>();
      network.set_trace(trace.get());
    }

    const RunResult run =
        run_load_point(network, injector, config.phases, cancel_token);

    if (trace) {
      network.flush_trace();
      std::ofstream out(trace_out);
      if (!out) {
        std::cerr << "cannot open trace output: " << trace_out << "\n";
        return 1;
      }
      trace->write_json(out);
      std::cout << "trace: " << trace->size() << " events -> " << trace_out
                << " (load in ui.perfetto.dev)\n";
    }
    EnergyModel energy(config.power,
                       own_channel_energy(config.topology,
                                          config.options.num_cores,
                                          config.own_config, config.scenario));
    const PowerBreakdown power = energy.compute(network);

    Table summary({"metric", "value"});
    summary.add_row({"network", network.spec().name});
    summary.add_row({"pattern", to_string(config.pattern)});
    summary.add_row({"offered (flits/node/cyc)", Table::num(config.rate, 4)});
    summary.add_row({"throughput", Table::num(run.throughput, 4)});
    summary.add_row({"avg latency (cyc)", Table::num(run.avg_latency, 1)});
    summary.add_row({"p99 latency (cyc)", Table::num(run.p99_latency, 1)});
    summary.add_row({"avg hops", Table::num(run.avg_hops, 2)});
    summary.add_row({"drained", run.drained ? "yes" : "no"});
    summary.add_row({"router power (W)", Table::num(power.router_w(), 3)});
    summary.add_row({"photonic power (W)", Table::num(power.photonic_w(), 3)});
    summary.add_row({"wireless power (W)", Table::num(power.wireless_w(), 3)});
    summary.add_row(
        {"electrical power (W)", Table::num(power.electrical_link_w, 3)});
    summary.add_row({"total power (W)", Table::num(power.total_w(), 3)});
    summary.add_row(
        {"energy/packet (pJ)",
         Table::num(energy.energy_per_packet_pj(network), 0)});
    if (campaign != nullptr) {
      const fault::Totals fault = campaign->totals();
      summary.add_row({"fault ber",
                       Table::num(campaign->protocol().ber, 12)});
      summary.add_row({"crc errors", std::to_string(fault.crc_errors)});
      summary.add_row(
          {"retransmissions", std::to_string(fault.retransmissions)});
      summary.add_row(
          {"token recoveries", std::to_string(fault.token_recoveries)});
      summary.add_row(
          {"flows degraded", std::to_string(fault.flows_degraded)});
      if (campaign->watchdog() != nullptr) {
        summary.add_row(
            {"watchdog", campaign->watchdog_tripped() ? "TRIPPED" : "ok"});
      }
    }
    summary.print(std::cout);

    if (args.get_bool("profile", false)) {
      std::cout << "\nprofile: " << run_profile_summary(run) << '\n';
    }
    if (args.get_bool("counters", false)) {
      std::cout << "\ncounters:\n";
      network.obs().write_json(std::cout);
    }

    const std::string report = args.get_string("report", "none");
    if (report != "none") {
      const NetworkReport network_report(network);
      std::cout << '\n';
      if (report == "csv") {
        network_report.write_channels_csv(std::cout);
      } else if (report == "json") {
        network_report.write_json(std::cout);
      } else {
        std::cerr << "unknown report format: " << report << "\n";
        return 1;
      }
    }
    if (campaign != nullptr && campaign->watchdog_tripped()) {
      std::cerr << "watchdog tripped: run aborted (diagnostics above)\n";
      return 3;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

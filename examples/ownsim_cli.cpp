// Full command-line front end for the simulator.
//
//   ./ownsim_cli topology=own cores=256 pattern=UN rate=0.004
//                config=4 scenario=ideal warmup=1500 measure=4000
//                report=json seed=1 packet_flits=4   (one line in practice)
//
// Any subset of keys may be given (defaults shown above); `report=csv|json`
// additionally dumps per-channel utilization to stdout after the summary.
// `sweep=r1:r2:...` switches to a latency sweep over those offered loads,
// fanned across `threads` workers (also accepted as `--threads N`).
// Run with `help=1` for the key list.
//
// The CLI is a thin client of the shared config -> run -> report path
// (driver/experiment_config.hpp + run_experiment): the same key=value
// vocabulary submitted to the ownsim_serve daemon means the same experiment
// here.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "driver/experiment_config.hpp"
#include "driver/simulate.hpp"
#include "exec/thread_pool.hpp"
#include "fault/campaign.hpp"
#include "metrics/report.hpp"
#include "metrics/table_io.hpp"
#include "obs/trace.hpp"

namespace {

void print_help() {
  std::cout <<
      "ownsim_cli key=value ...\n"
      "  topology   own | cmesh | wcmesh | optxb | pclos | file:PATH [own]\n"
      "             file:PATH loads a declarative .topo.json topology\n"
      "             (docs/TOPOLOGY_FORMAT.md; deadlock-checked at load)\n"
      "  cores      256 | 1024 (others where the topology allows) [256;\n"
      "             file topologies default to the file's node count]\n"
      "  pattern    UN | BR | MT | PS | NBR | tornado | hotspot  [UN]\n"
      "  rate       offered load, flits/node/cycle             [0.004]\n"
      "  config     1..4 (Table IV, OWN only)                  [4]\n"
      "  scenario   ideal | conservative (Table III)           [ideal]\n"
      "  warmup, measure, drain   phase lengths (cycles)  [1500/4000/30000]\n"
      "  packet_flits, seed                                    [4 / 1]\n"
      "  kernel     activity | lockstep | parallel; all bit-identical\n"
      "             (parallel partitions one run across threads) [activity]\n"
      "  partitions parallel-kernel partition override, 0 = topology\n"
      "             hint (result-neutral)                       [0]\n"
      "  report     none | csv | json (channel utilization)    [none]\n"
      "  sweep      colon-separated rates (e.g. 0.002:0.004): run a\n"
      "             latency sweep instead of a single point\n"
      "             (seed becomes the sweep master seed)\n"
      "  threads    workers for the sweep, or for the parallel kernel in\n"
      "             single-point mode (--threads N also accepted)\n"
      "             [hardware concurrency]\n"
      "  progress   1: print per-point progress lines to stderr  [0]\n"
      "  trace_out  write a Chrome trace_event JSON of the run to this\n"
      "             path (single-point mode; load in ui.perfetto.dev;\n"
      "             --trace-out PATH also accepted)\n"
      "  counters   1: dump the obs counter registry as JSON after the\n"
      "             summary (single-point mode)  [0]\n"
      "  profile    1: print the run's wall-clock self-profile  [0]\n"
      "fault campaign (single-point mode; see DESIGN.md 5f):\n"
      "  fault      1: enable the runtime fault campaign          [0]\n"
      "  fault_seed campaign master seed                          [seed]\n"
      "  fault_ber  per-bit error rate on wireless hops; negative derives\n"
      "             it from the link budget operating point       [-1]\n"
      "  fault_margin_db   link margin for the derived BER (negative\n"
      "             values stress the links)                      [2.5]\n"
      "  fault_flaps       randomly placed wireless-link flaps    [0]\n"
      "  fault_flap_down   flap outage length, cycles             [200]\n"
      "  fault_horizon     random events land in [1, horizon]     [4000]\n"
      "  fault_kill        src:dst@cycle — kill the wireless channel\n"
      "             between those clusters mid-run (OWN-256, rerouted\n"
      "             online); or link:IDX@cycle — kill wireless link index\n"
      "             IDX on any topology (file: included; no reroute)\n"
      "  fault_token_loss  medium@cycle:recovery — lose the token of\n"
      "             medium index at cycle; recovery is cycles until the\n"
      "             token regenerates, or 'never'\n"
      "  watchdog   no-progress window in cycles, 0 = off; a trip dumps\n"
      "             diagnostics to stderr and exits with code 3   [0]\n"
      "adaptive link layer (single-point mode; see DESIGN.md 5k):\n"
      "  adapt      1: close the thermal/variation physical loop    [0]\n"
      "  adapt_react        0: physical state only (static links)   [1]\n"
      "  adapt_refresh      physical-state refresh period, cycles   [1000]\n"
      "  adapt_seed         per-die variation sample seed           [1]\n"
      "  adapt_sigma_db     transceiver gain spread, std dev dB     [0.5]\n"
      "  adapt_ring_sigma_c ring detuning spread, degC              [1.0]\n"
      "  adapt_snr_required_db, adapt_margin_db   operating point   [17/2.5]\n"
      "  adapt_temp_coeff   margin lost per degC of heating         [0.05]\n"
      "  adapt_alpha        temperature smoothing (1 = no memory)   [0.5]\n"
      "  adapt_iterations   online thermal relaxation iterations    [400]\n"
      "  adapt_backoff_enter/exit/gain   rate-backoff hysteresis\n"
      "             band and dB bought per level               [1/2/3]\n"
      "  adapt_max_backoff  deepest backoff level                   [2]\n"
      "  adapt_sustain      refreshes before a reaction latches     [2]\n"
      "  adapt_realloc_enter/exit   OWN-256 re-allocation band      [0/1]\n"
      "  adapt_trim_uw      ring trimming power, uW per degC        [50]\n";
}

/// Parses "0.001:0.002:0.004" into rates; throws on junk.
std::vector<double> parse_rates(const std::string& csv) {
  std::vector<double> rates;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ':')) {
    if (item.empty()) continue;
    std::size_t used = 0;
    try {
      rates.push_back(std::stod(item, &used));
    } catch (const std::exception&) {
      used = std::string::npos;  // not a number at all
    }
    if (used != item.size()) {
      throw std::invalid_argument("bad rate in sweep list: " + item);
    }
  }
  if (rates.empty()) throw std::invalid_argument("sweep: no rates given");
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ownsim;
  std::ostringstream joined;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // GNU-style convenience: "--threads 4" and "--threads=4" become
    // "threads=4" for the key=value parser.
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      if (arg.find('=') == std::string::npos && i + 1 < argc) {
        arg += '=';
        arg += argv[++i];
      }
      // "--trace-out=x" -> "trace_out=x": keys use underscores internally.
      for (std::size_t k = 0; k < arg.size() && arg[k] != '='; ++k) {
        if (arg[k] == '-') arg[k] = '_';
      }
    }
    joined << arg << ' ';
  }
  Config args;
  try {
    args = Config::from_string(joined.str());
  } catch (const std::exception& e) {
    std::cerr << "bad arguments: " << e.what() << "\n";
    print_help();
    return 1;
  }
  if (args.get_bool("help", false)) {
    print_help();
    return 0;
  }
  // `file=path` loads defaults from a config file; command-line keys win.
  if (args.contains("file")) {
    try {
      Config from_file = Config::from_file(args.require_string("file"));
      from_file.merge(args);
      args = from_file;
    } catch (const std::exception& e) {
      std::cerr << "cannot load config file: " << e.what() << "\n";
      return 1;
    }
  }

  try {
    const ExperimentConfig config = parse_experiment_config(args);

    // Sweep mode: fan one fresh network per load point across the pool.
    if (args.contains("sweep")) {
      if (config.fault.enabled) {
        throw std::invalid_argument(
            "fault campaigns run in single-point mode, not sweep mode");
      }
      if (config.adapt.enabled) {
        throw std::invalid_argument(
            "the adaptive link layer runs in single-point mode, not sweep "
            "mode");
      }
      SweepOptions sweep_options;
      sweep_options.rates = parse_rates(args.require_string("sweep"));
      sweep_options.pattern = config.pattern;
      sweep_options.phases = config.phases;
      sweep_options.injector = config.injector;
      sweep_options.master_seed = config.injector.master_seed;
      sweep_options.threads = static_cast<unsigned>(
          args.get_int("threads", exec::default_threads()));
      sweep_options.stop_after_saturation = false;
      if (args.get_bool("progress", false)) {
        sweep_options.progress = [](const SweepProgress& p) {
          std::cerr << sweep_progress_line(p) << '\n';
        };
      }
      const SweepResult sweep = latency_sweep(
          make_network_factory(config.topology, config.options),
          sweep_options);

      Table table({"offered", "avg_latency", "p99", "throughput", "drained"});
      for (const SweepPoint& point : sweep.points) {
        table.add_row({Table::num(point.rate, 4),
                       Table::num(point.result.avg_latency, 1),
                       Table::num(point.result.p99_latency, 1),
                       Table::num(point.result.throughput, 4),
                       point.result.drained ? "yes" : "no"});
      }
      table.print(std::cout);
      std::cout << "\nzero-load latency : " << sweep.zero_load_latency
                << " cycles\nsaturation load   : " << sweep.saturation_rate
                << " flits/node/cycle\nexecution         : "
                << sweep_telemetry_summary(sweep.telemetry) << '\n';
      return 0;
    }

    // Single-point mode rides the shared run_experiment path; everything the
    // report needs from the live Network (spec name, counter registry,
    // channel utilization, trace flush) is captured by the after_run hook.
    const std::string trace_out = args.get_string("trace_out", "");
    const bool want_counters = args.get_bool("counters", false);
    const std::string report = args.get_string("report", "none");
    if (report != "none" && report != "csv" && report != "json") {
      std::cerr << "unknown report format: " << report << "\n";
      return 1;
    }

    // Tracing is runtime-opt-in: attaching the writer must not (and does
    // not — test_obs asserts it) change any simulated result.
    std::unique_ptr<obs::TraceWriter> trace;
    RunHooks hooks;
    if (!trace_out.empty()) {
      trace = std::make_unique<obs::TraceWriter>();
      hooks.before_run = [&trace](Network& network) {
        network.set_trace(trace.get());
      };
    }

    std::string network_name;
    std::string trace_line;
    bool trace_failed = false;
    std::ostringstream counters_text;
    std::ostringstream report_text;
    hooks.after_run = [&](Network& network, const ExperimentResult&) {
      network_name = network.spec().name;
      if (trace) {
        network.flush_trace();
        std::ofstream out(trace_out);
        if (!out) {
          trace_failed = true;
        } else {
          trace->write_json(out);
          std::ostringstream line;
          line << "trace: " << trace->size() << " events -> " << trace_out
               << " (load in ui.perfetto.dev)\n";
          trace_line = line.str();
        }
      }
      if (want_counters) network.obs().write_json(counters_text);
      if (report == "csv") {
        NetworkReport(network).write_channels_csv(report_text);
      } else if (report == "json") {
        NetworkReport(network).write_json(report_text);
      }
    };

    const ExperimentResult result = run_experiment(config, hooks);
    const RunResult& run = result.run;
    if (trace_failed) {
      std::cerr << "cannot open trace output: " << trace_out << "\n";
      return 1;
    }
    std::cout << trace_line;

    Table summary({"metric", "value"});
    summary.add_row({"network", network_name});
    summary.add_row({"pattern", to_string(config.pattern)});
    summary.add_row({"offered (flits/node/cyc)", Table::num(config.rate, 4)});
    summary.add_row({"throughput", Table::num(run.throughput, 4)});
    summary.add_row({"avg latency (cyc)", Table::num(run.avg_latency, 1)});
    summary.add_row({"p99 latency (cyc)", Table::num(run.p99_latency, 1)});
    summary.add_row({"avg hops", Table::num(run.avg_hops, 2)});
    summary.add_row({"drained", run.drained ? "yes" : "no"});
    summary.add_row(
        {"router power (W)", Table::num(result.power.router_w(), 3)});
    summary.add_row(
        {"photonic power (W)", Table::num(result.power.photonic_w(), 3)});
    summary.add_row(
        {"wireless power (W)", Table::num(result.power.wireless_w(), 3)});
    summary.add_row({"electrical power (W)",
                     Table::num(result.power.electrical_link_w, 3)});
    summary.add_row({"total power (W)", Table::num(result.power.total_w(), 3)});
    summary.add_row({"energy/packet (pJ)",
                     Table::num(result.energy_per_packet_pj, 0)});
    if (config.fault.enabled) {
      summary.add_row(
          {"fault ber", Table::num(fault::resolve_ber(config.fault), 12)});
      summary.add_row(
          {"crc errors", std::to_string(result.fault.crc_errors)});
      summary.add_row(
          {"retransmissions", std::to_string(result.fault.retransmissions)});
      summary.add_row(
          {"token recoveries", std::to_string(result.fault.token_recoveries)});
      summary.add_row(
          {"flows degraded", std::to_string(result.fault.flows_degraded)});
      if (config.fault.watchdog) {
        summary.add_row(
            {"watchdog", result.watchdog_tripped ? "TRIPPED" : "ok"});
      }
    }
    if (config.adapt.enabled) {
      if (!config.fault.enabled) {
        summary.add_row(
            {"crc errors", std::to_string(result.fault.crc_errors)});
        summary.add_row(
            {"retransmissions", std::to_string(result.fault.retransmissions)});
      }
      summary.add_row(
          {"adapt refreshes", std::to_string(result.adapt.refreshes)});
      summary.add_row(
          {"adapt backoffs", std::to_string(result.adapt.backoffs)});
      summary.add_row({"adapt reallocations",
                       std::to_string(result.adapt.reallocations)});
      summary.add_row(
          {"peak temp rise (C)", Table::num(result.adapt.peak_temp_c, 2)});
      summary.add_row(
          {"min margin (dB)", Table::num(result.adapt.min_margin_db, 2)});
      summary.add_row(
          {"trim power (mW)", Table::num(result.adapt.trim_avg_mw, 3)});
    }
    summary.print(std::cout);

    if (args.get_bool("profile", false)) {
      std::cout << "\nprofile: " << run_profile_summary(run) << '\n';
    }
    if (want_counters) {
      std::cout << "\ncounters:\n" << counters_text.str();
    }
    if (report != "none") {
      std::cout << '\n' << report_text.str();
    }
    if (config.fault.enabled && result.watchdog_tripped) {
      std::cerr << "watchdog tripped: run aborted (diagnostics above)\n";
      return 3;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

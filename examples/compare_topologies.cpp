// Side-by-side comparison of all five topologies at one operating point —
// the "which network should I use" view a downstream user wants first.
//
//   ./compare_topologies [cores=256] [rate=0.004] [pattern=UN]
#include <cstdlib>
#include <iostream>

#include "driver/simulate.hpp"
#include "metrics/table_io.hpp"

int main(int argc, char** argv) {
  using namespace ownsim;
  const int cores = argc > 1 ? std::atoi(argv[1]) : 256;
  const double rate = argc > 2 ? std::atof(argv[2]) : 0.004;
  const PatternKind pattern = parse_pattern(argc > 3 ? argv[3] : "UN");

  std::cout << "Comparing topologies at " << cores << " cores, "
            << to_string(pattern) << " traffic, offered load " << rate
            << " flits/node/cycle\n\n";

  Table table({"network", "avg_lat", "p50", "p99", "thruput", "hops",
               "router_W", "links_W", "total_W", "pJ/pkt"});
  for (TopologyKind kind : paper_topologies()) {
    ExperimentConfig config;
    config.topology = kind;
    config.options.num_cores = cores;
    config.pattern = pattern;
    config.rate = rate;
    config.phases.warmup = 1500;
    config.phases.measure = 4000;
    const ExperimentResult r = run_experiment(config);
    const double links_w = r.power.electrical_link_w + r.power.photonic_w() +
                           r.power.wireless_w();
    table.add_row({to_string(kind), Table::num(r.run.avg_latency, 1),
                   Table::num(r.run.p50_latency, 1),
                   Table::num(r.run.p99_latency, 1),
                   Table::num(r.run.throughput, 4),
                   Table::num(r.run.avg_hops, 2),
                   Table::num(r.power.router_w(), 3), Table::num(links_w, 3),
                   Table::num(r.power.total_w(), 3),
                   Table::num(r.energy_per_packet_pj, 0)});
  }
  table.print(std::cout);
  std::cout << "\nOWN trades a slightly busier router microarchitecture for\n"
               "3-hop worst-case paths and cheap links; see EXPERIMENTS.md\n"
               "for the full figure-by-figure reproduction.\n";
  return 0;
}

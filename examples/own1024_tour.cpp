// A guided tour of the OWN-1024 architecture: the (g, c, t, p) addressing,
// the SWMR channel plan, example routes at every distance, and a short
// simulation demonstrating multicast receive accounting.
//
//   ./own1024_tour
#include <iostream>

#include "driver/simulate.hpp"
#include "metrics/table_io.hpp"
#include "network/network.hpp"
#include "topology/own.hpp"

namespace {

using namespace ownsim;

void show_route(const NetworkSpec& spec, int sg, int sc, int st, int dg,
                int dc, int dt) {
  const RouterId src = own_router(sg, sc, st);
  const RouterId dst = own_router(dg, dc, dt);
  std::cout << "  (" << sg << "," << sc << "," << st << ") -> (" << dg << ","
            << dc << "," << dt << "): ";
  RouterId at = src;
  int hops = 0;
  while (at != dst && hops < 5) {
    const RouteEntry entry = spec.route_table[at][dst];
    const bool wireless = entry.out_port == 15;
    std::cout << (wireless ? "[wireless ch, VC class "
                           : "[photonic wg, VC class ")
              << static_cast<int>(entry.vc_class) << "] ";
    // Follow the hop (same walk as the tests use).
    RouterId next = kInvalidId;
    for (const auto& link : spec.links) {
      if (link.src_router == at && link.src_port == entry.out_port) {
        next = link.dst_router;
        break;
      }
    }
    if (next == kInvalidId) {
      for (const auto& medium : spec.media) {
        for (const auto& [wr, wp] : medium.writers) {
          if (wr == at && wp == entry.out_port) {
            const int reader = medium.readers.size() == 1
                                   ? 0
                                   : medium.select_reader(dst * 4, dst);
            next = medium.readers[reader].first;
            break;
          }
        }
        if (next != kInvalidId) break;
      }
    }
    at = next;
    ++hops;
  }
  std::cout << "=> " << hops << " hop" << (hops == 1 ? "" : "s") << "\n";
}

}  // namespace

int main() {
  using namespace ownsim;
  std::cout << "OWN-1024: 4 groups x 4 clusters x 16 tiles x 4 cores\n\n";

  std::cout << "SWMR wireless channels (Table II):\n";
  Table channels({"id", "src", "dst", "antenna", "distance"});
  for (const OwnGroupChannel& ch : own1024_channels()) {
    channels.add_row(
        {std::to_string(ch.id),
         ch.intra_group() ? "group " + std::to_string(ch.src_group)
                          : 'g' + std::to_string(ch.src_group),
         ch.intra_group() ? std::string("(intra)")
                          : 'g' + std::to_string(ch.dst_group),
         std::string(1, static_cast<char>('A' + static_cast<int>(ch.antenna))),
         to_string(ch.distance)});
  }
  channels.print(std::cout);

  TopologyOptions options;
  options.num_cores = 1024;
  const NetworkSpec spec = build_own(options);

  std::cout << "\nExample routes (worst case is 3 hops):\n";
  show_route(spec, 0, 0, 5, 0, 0, 9);   // same cluster
  show_route(spec, 0, 0, 5, 0, 2, 9);   // same group, different cluster
  show_route(spec, 0, 0, 5, 3, 2, 9);   // different group (diagonal)
  show_route(spec, 1, 3, 15, 2, 1, 0);  // gateway-to-gateway

  std::cout << "\nShort simulation (uniform random, multicast accounting):\n";
  ExperimentConfig config;
  config.topology = TopologyKind::kOwn;
  config.options = options;
  config.rate = 0.0015;
  config.phases.warmup = 1000;
  config.phases.measure = 2500;
  const ExperimentResult result = run_experiment(config);
  std::cout << "  avg latency " << result.run.avg_latency
            << " cycles, throughput " << result.run.throughput
            << " flits/node/cycle\n  wireless power "
            << result.power.wireless_w() * 1e3
            << " mW (every inter-group transmission is heard — and paid\n"
               "  for — by all four clusters of the destination group)\n";
  return 0;
}

// Latency-vs-load study for any topology/pattern pair (the Fig 7b,c
// methodology as a reusable tool):
//
//   ./latency_sweep [topology=own] [pattern=UN] [cores=256] [threads=hw]
//
// Sweeps offered load until saturation and prints the latency curve, the
// zero-load latency and the saturation point. Load points are independent
// simulations and fan out across `threads` workers; results are
// bit-identical for any thread count (per-point RNG streams derive from the
// sweep master seed).
#include <cstdlib>
#include <iostream>
#include <string>

#include "driver/simulate.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/report.hpp"
#include "metrics/table_io.hpp"

int main(int argc, char** argv) {
  using namespace ownsim;

  const TopologyKind topology = parse_topology(argc > 1 ? argv[1] : "own");
  const PatternKind pattern = parse_pattern(argc > 2 ? argv[2] : "UN");
  TopologyOptions options;
  options.num_cores = argc > 3 ? std::atoi(argv[3]) : 256;
  const unsigned threads = argc > 4
                               ? static_cast<unsigned>(std::atoi(argv[4]))
                               : exec::default_threads();

  SweepOptions sweep_options;
  const double step = options.num_cores <= 256 ? 0.001 : 0.00033;
  for (int i = 1; i <= 12; ++i) sweep_options.rates.push_back(step * i);
  sweep_options.pattern = pattern;
  sweep_options.phases.warmup = 1500;
  sweep_options.phases.measure = 4000;
  sweep_options.stop_after_saturation = true;
  sweep_options.threads = threads;
  sweep_options.progress = [](const SweepProgress& progress) {
    std::cerr << sweep_progress_line(progress) << '\n';
  };

  std::cout << "Sweeping " << to_string(topology) << "-" << options.num_cores
            << " under " << to_string(pattern) << " traffic ("
            << threads << " threads)...\n\n";
  const SweepResult sweep =
      latency_sweep(make_network_factory(topology, options), sweep_options);

  Table table({"offered", "avg_latency", "p99", "throughput", "drained"});
  for (const SweepPoint& point : sweep.points) {
    table.add_row({Table::num(point.rate, 4),
                   Table::num(point.result.avg_latency, 1),
                   Table::num(point.result.p99_latency, 1),
                   Table::num(point.result.throughput, 4),
                   point.result.drained ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nzero-load latency : " << sweep.zero_load_latency
            << " cycles\nsaturation load   : " << sweep.saturation_rate
            << " flits/node/cycle (latency knee at 3x zero-load)\n"
            << "execution         : "
            << sweep_telemetry_summary(sweep.telemetry) << '\n';
  return 0;
}

// Wireless design-space explorer: reproduces the Section V.B reasoning that
// selects configuration 4.
//
//   ./design_space
//
// For every (Table IV configuration x Table III scenario) point it resolves
// the channel-to-band assignment, prints per-distance-class energy figures,
// and simulates OWN-256 to report the resulting wireless and total power —
// then names the winner. The eight simulation points are independent, so
// they run as one `exec::JobGraph` batch fanned across the worker pool
// (`OWNSIM_THREADS` overrides the worker count).
#include <algorithm>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "driver/simulate.hpp"
#include "exec/job_graph.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/table_io.hpp"

int main() {
  using namespace ownsim;

  std::cout << "OWN-256 wireless design space (Table III x Table IV)\n";

  struct DesignPoint {
    Scenario scenario;
    OwnConfig config;
    double mean_epb = 0.0;
    ExperimentResult result;
  };
  std::vector<DesignPoint> points;
  for (Scenario scenario : {Scenario::kIdeal, Scenario::kConservative}) {
    for (OwnConfig config : all_configs()) {
      points.push_back({scenario, config, 0.0, {}});
    }
  }

  exec::ThreadPool pool;
  exec::JobGraph batch;
  for (DesignPoint& point : points) {
    batch.add(std::string(to_string(point.config)) + "/" +
                  to_string(point.scenario),
              [&point] {
                const ChannelEnergyModel model(point.config, point.scenario);
                double mean_epb = 0.0;
                for (const auto& a : model.assignments()) {
                  mean_epb += model.epb(a.channel_id).in(1.0_pj_per_bit);
                }
                point.mean_epb =
                    mean_epb / static_cast<double>(model.assignments().size());

                ExperimentConfig experiment;
                experiment.topology = TopologyKind::kOwn;
                experiment.options.num_cores = 256;
                experiment.rate = 0.005;
                experiment.own_config = point.config;
                experiment.scenario = point.scenario;
                experiment.phases.warmup = 1500;
                experiment.phases.measure = 4000;
                point.result = run_experiment(experiment);
              });
  }
  const std::vector<exec::JobReport> reports = batch.run(pool);
  double batch_wall = 0.0;
  for (const exec::JobReport& report : reports) {
    if (report.failed) {
      std::cerr << "design point " << report.name << " failed: "
                << report.error << '\n';
      return 1;
    }
    batch_wall = std::max(batch_wall, report.wall_seconds);
  }

  Table table({"scenario", "config", "C2C tech", "E2E tech", "SR tech",
               "mean pJ/bit", "wireless_mW", "total_W"});
  std::string best_name;
  double best_total = std::numeric_limits<double>::max();
  for (const DesignPoint& point : points) {
    table.add_row({to_string(point.scenario), to_string(point.config),
                   to_string(config_tech(point.config, DistanceClass::kC2C)),
                   to_string(config_tech(point.config, DistanceClass::kE2E)),
                   to_string(config_tech(point.config, DistanceClass::kSR)),
                   Table::num(point.mean_epb, 3),
                   Table::num(point.result.power.wireless_link_w * 1e3, 2),
                   Table::num(point.result.power.total_w(), 3)});
    if (point.result.power.total_w() < best_total) {
      best_total = point.result.power.total_w();
      best_name = std::string(to_string(point.config)) + " / " +
                  to_string(point.scenario);
    }
  }
  table.print(std::cout);
  std::cout << "\nMost power-efficient point: " << best_name << " ("
            << Table::num(best_total, 3)
            << " W total). The paper reaches the same conclusion: CMOS on the\n"
               "long/medium links with BiCMOS short-range (config 4), enabled\n"
               "by SDM frequency reuse (Section V.B).\n"
            << reports.size() << " design points on " << pool.size()
            << " threads; slowest point " << Table::num(batch_wall, 2)
            << " s.\n";
  return 0;
}

// Wireless design-space explorer: reproduces the Section V.B reasoning that
// selects configuration 4.
//
//   ./design_space
//
// For every (Table IV configuration x Table III scenario) point it resolves
// the channel-to-band assignment, prints per-distance-class energy figures,
// and simulates OWN-256 to report the resulting wireless and total power —
// then names the winner.
#include <iostream>
#include <limits>
#include <string>

#include "driver/simulate.hpp"
#include "metrics/table_io.hpp"

int main() {
  using namespace ownsim;

  std::cout << "OWN-256 wireless design space (Table III x Table IV)\n";

  Table table({"scenario", "config", "C2C tech", "E2E tech", "SR tech",
               "mean pJ/bit", "wireless_mW", "total_W"});
  std::string best_name;
  double best_total = std::numeric_limits<double>::max();

  for (Scenario scenario : {Scenario::kIdeal, Scenario::kConservative}) {
    for (OwnConfig config : all_configs()) {
      const ChannelEnergyModel model(config, scenario);
      double mean_epb = 0.0;
      for (const auto& a : model.assignments()) {
        mean_epb += model.epb_pj(a.channel_id);
      }
      mean_epb /= static_cast<double>(model.assignments().size());

      ExperimentConfig experiment;
      experiment.topology = TopologyKind::kOwn;
      experiment.options.num_cores = 256;
      experiment.rate = 0.005;
      experiment.own_config = config;
      experiment.scenario = scenario;
      experiment.phases.warmup = 1500;
      experiment.phases.measure = 4000;
      const ExperimentResult result = run_experiment(experiment);

      table.add_row({to_string(scenario), to_string(config),
                     to_string(config_tech(config, DistanceClass::kC2C)),
                     to_string(config_tech(config, DistanceClass::kE2E)),
                     to_string(config_tech(config, DistanceClass::kSR)),
                     Table::num(mean_epb, 3),
                     Table::num(result.power.wireless_link_w * 1e3, 2),
                     Table::num(result.power.total_w(), 3)});
      if (result.power.total_w() < best_total) {
        best_total = result.power.total_w();
        best_name = std::string(to_string(config)) + " / " +
                    to_string(scenario);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nMost power-efficient point: " << best_name << " ("
            << Table::num(best_total, 3)
            << " W total). The paper reaches the same conclusion: CMOS on the\n"
               "long/medium links with BiCMOS short-range (config 4), enabled\n"
               "by SDM frequency reuse (Section V.B).\n";
  return 0;
}

// Experiment service daemon: ownsim as a long-lived local server.
//
//   ./ownsim_serve socket=/tmp/ownsim.sock store=/tmp/ownsim-store
//
// Clients speak newline-delimited JSON over the AF_UNIX socket (verbs:
// submit/status/result/cancel/stats/shutdown — see src/serve/server.hpp, or
// tools/ownsim_client.py for a reference client). Results are memoized in a
// content-addressed on-disk store, so a sweep submitted twice simulates
// once. The process runs until a `shutdown` verb arrives (or SIGINT/SIGTERM,
// which behaves like `shutdown` with drain=false).
#include <csignal>
#include <iostream>
#include <sstream>
#include <string>

#include "common/config.hpp"
#include "driver/experiment_config.hpp"
#include "serve/server.hpp"

namespace {

void print_help() {
  std::cout <<
      "ownsim_serve key=value ...\n"
      "  socket     AF_UNIX socket path to listen on   [/tmp/ownsim.sock]\n"
      "  store      result store directory             [./ownsim-store]\n"
      "  threads    simulation workers (0 = hardware)  [0]\n"
      "  progress_interval  min simulated cycles between streamed\n"
      "             progress events per job            [4096]\n"
      "  verbose    1: log connections/submissions to stderr  [0]\n";
}

ownsim::serve::ServeDaemon* g_daemon = nullptr;

extern "C" void handle_signal(int) {
  // async-signal-safe enough for a test/dev daemon: the flag flip inside
  // request-shutdown is what we need; abort-on-second-signal is the escape
  // hatch.
  if (g_daemon != nullptr) {
    ownsim::serve::ServeDaemon* daemon = g_daemon;
    g_daemon = nullptr;
    daemon->stop(/*drain=*/false);
    std::_Exit(0);
  }
  std::_Exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ownsim;
  std::ostringstream joined;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      if (arg.find('=') == std::string::npos && i + 1 < argc) {
        arg += '=';
        arg += argv[++i];
      }
      for (std::size_t k = 0; k < arg.size() && arg[k] != '='; ++k) {
        if (arg[k] == '-') arg[k] = '_';
      }
    }
    joined << arg << ' ';
  }

  try {
    const Config args = Config::from_string(joined.str());
    if (args.get_bool("help", false)) {
      print_help();
      return 0;
    }
    serve::ServerOptions options;
    options.socket_path = args.get_string("socket", "/tmp/ownsim.sock");
    options.service.store_dir = args.get_string("store", "./ownsim-store");
    options.service.threads =
        static_cast<unsigned>(args.get_int("threads", 0));
    options.service.progress_interval = args.get_int("progress_interval", 4096);
    options.verbose = args.get_bool("verbose", false);

    serve::ServeDaemon daemon(options);
    g_daemon = &daemon;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::cout << "ownsim_serve " << code_version() << " listening on "
              << daemon.socket_path() << " (" << daemon.service().threads()
              << " workers, store " << options.service.store_dir.string()
              << ")" << std::endl;
    daemon.wait_for_shutdown();
    g_daemon = nullptr;
    std::cout << "ownsim_serve: clean shutdown" << std::endl;
  } catch (const std::exception& e) {
    std::cerr << "ownsim_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

// Quickstart: build OWN-256, drive uniform-random traffic at a moderate
// load, and print latency, throughput and the power breakdown.
//
//   ./quickstart [rate=0.004] [cores=256]
//
// This is the five-minute tour of the public API: TopologyOptions ->
// ExperimentConfig -> run_experiment -> {RunResult, PowerBreakdown}.
#include <cstdlib>
#include <iostream>

#include "driver/simulate.hpp"

int main(int argc, char** argv) {
  using namespace ownsim;

  ExperimentConfig config;
  config.topology = TopologyKind::kOwn;
  config.options.num_cores = 256;
  config.rate = argc > 1 ? std::atof(argv[1]) : 0.004;
  if (argc > 2) config.options.num_cores = std::atoi(argv[2]);
  config.pattern = PatternKind::kUniform;
  config.own_config = OwnConfig::kConfig4;   // Table IV's best configuration
  config.scenario = Scenario::kIdeal;        // 32 GHz wireless channels

  std::cout << "Simulating " << config.options.num_cores
            << "-core OWN at offered load " << config.rate
            << " flits/node/cycle...\n";
  const ExperimentResult result = run_experiment(config);

  std::cout << "\n" << result.name << "\n"
            << "  measured packets    : " << result.run.measured_packets << "\n"
            << "  avg packet latency  : " << result.run.avg_latency
            << " cycles (network-only " << result.run.avg_net_latency << ")\n"
            << "  p99 latency         : " << result.run.p99_latency << " cycles\n"
            << "  accepted throughput : " << result.run.throughput
            << " flits/node/cycle\n"
            << "  avg hops            : " << result.run.avg_hops << "\n"
            << "  drained cleanly     : " << (result.run.drained ? "yes" : "no")
            << "\n\nPower breakdown:\n"
            << "  router        : " << result.power.router_w() << " W\n"
            << "  photonic      : " << result.power.photonic_w() << " W\n"
            << "  wireless      : " << result.power.wireless_w() << " W\n"
            << "  electrical    : " << result.power.electrical_link_w << " W\n"
            << "  total         : " << result.power.total_w() << " W\n"
            << "  energy/packet : " << result.energy_per_packet_pj << " pJ\n";
  return 0;
}

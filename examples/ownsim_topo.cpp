// Topology-file toolbox (docs/TOPOLOGY_FORMAT.md).
//
//   ./ownsim_topo export topology=cmesh cores=1024 out=cmesh1024.topo.json
//   ./ownsim_topo export topology=own cores=256 out=own256.topo.json
//   ./ownsim_topo check configs/topologies/*.topo.json [vcs=4]
//   ./ownsim_topo info some.topo.json
//
// `export` serializes a built-in topology to the declarative format;
// `check` parses + validates + deadlock-checks files (the CI leg runs it
// over configs/topologies/); `info` prints a file's header probe.
//
// Export policy per topology: CMesh emits `"routing": {"mode": "generated"}`
// (the generator provably reproduces XY DOR; o1turn keeps its explicit
// tables) and `"cpf": "bisection"` on electrical links; OWN keeps its
// explicit class-annotated tables, defers wireless serialization to the
// bisection rule, and tags `"emulates": "own"` so reports and the energy
// model treat the file run as the real thing. Override with
// routing=generated|table and emulates=NAME.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "topofile/routegen.hpp"
#include "topofile/topofile.hpp"
#include "topology/registry.hpp"

namespace {

using namespace ownsim;

int usage() {
  std::cout <<
      "ownsim_topo <command> ...\n"
      "  export topology=NAME out=PATH [cores=N] [concentration=N] [vcs=N]\n"
      "         [routing=generated|table] [emulates=NAME] [o1turn=1] ...\n"
      "         serialize a built-in topology to a .topo.json file\n"
      "  check  FILE... [vcs=N] [buffer_depth=N]\n"
      "         parse + validate + deadlock-check each file (exit 1 on the\n"
      "         first failure, naming the offending cycle)\n"
      "  info   FILE\n"
      "         print the file's name, node count and emulates tag\n";
  return 2;
}

TopologyOptions options_from(const Config& args, int default_cores) {
  TopologyOptions options;
  options.num_cores =
      static_cast<int>(args.get_int("cores", default_cores));
  options.concentration = static_cast<int>(
      args.get_int("concentration", options.concentration));
  options.num_vcs = static_cast<int>(args.get_int("vcs", options.num_vcs));
  options.buffer_depth = static_cast<int>(
      args.get_int("buffer_depth", options.buffer_depth));
  options.clock_ghz = args.get_double("clock_ghz", options.clock_ghz);
  options.flit_bits =
      static_cast<int>(args.get_int("flit_bits", options.flit_bits));
  options.ideal_arbitration =
      args.get_bool("ideal_arbitration", options.ideal_arbitration);
  options.cmesh_o1turn = args.get_bool("o1turn", options.cmesh_o1turn);
  return options;
}

int run_export(const Config& args) {
  const TopologyKind kind = parse_topology(args.require_string("topology"));
  if (kind == TopologyKind::kFile) {
    throw std::invalid_argument("export: already a file topology");
  }
  const std::string out_path = args.require_string("out");
  const TopologyOptions options = options_from(args, 256);
  const NetworkSpec spec = build_topology(kind, options);

  topofile::ExportPolicy policy;
  switch (kind) {
    case TopologyKind::kCMesh: {
      // Generated routing reproduces XY DOR; O1TURN's dual tables do not
      // fit the generator, so they stay explicit.
      policy.generated_routing = !options.cmesh_o1turn;
      policy.emulates = "cmesh";
      const int k = static_cast<int>(std::lround(
          std::sqrt(options.num_cores / options.concentration)));
      policy.bisection["electrical"] = 2.0 * k;
      break;
    }
    case TopologyKind::kOwn:
      policy.emulates = "own";
      policy.bisection["wireless"] = 8.0;  // own.cpp's crossing count
      break;
    default:
      policy.emulates = args.require_string("topology");
      break;
  }
  if (args.contains("emulates")) {
    policy.emulates = args.require_string("emulates");
  }
  if (args.contains("routing")) {
    const std::string routing = args.require_string("routing");
    if (routing != "generated" && routing != "table") {
      throw std::invalid_argument("routing: want generated|table");
    }
    policy.generated_routing = routing == "generated";
  }

  const std::string text = topofile::export_topofile(spec, options, policy);
  // Round-trip before writing: the exported file must load back into a
  // valid, deadlock-free spec under the same options.
  TopologyOptions reload = options;
  reload.topofile_text = text;
  const NetworkSpec loaded = topofile::load_topofile(text, reload);

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open output file: " + out_path);
  }
  out << text;
  std::cout << out_path << ": " << loaded.name << ", "
            << loaded.num_nodes << " nodes, " << loaded.num_routers()
            << " routers, " << loaded.links.size() << " links, "
            << loaded.media.size() << " media, "
            << loaded.vc_classes.size() << " vc classes\n";
  return 0;
}

int run_check(const std::vector<std::string>& files, const Config& args) {
  if (files.empty()) {
    std::cerr << "check: no files given\n";
    return 2;
  }
  for (const std::string& path : files) {
    const std::string text = topofile::read_topofile(path);
    TopologyOptions options = options_from(args, 0);
    options.num_cores = topofile::probe_topofile(text).num_nodes;
    options.topofile_path = path;
    options.topofile_text = text;
    // load_topofile = parse + spec.validate() + deadlock check; any failure
    // throws with the offending detail (cycle named by channel).
    const NetworkSpec spec = topofile::load_topofile(text, options);
    std::cout << path << ": OK (" << spec.name << ", "
              << spec.num_nodes << " nodes, " << spec.num_routers()
              << " routers, " << spec.vc_classes.size()
              << " vc classes, deadlock-free)\n";
  }
  return 0;
}

int run_info(const std::vector<std::string>& files) {
  if (files.size() != 1) {
    std::cerr << "info: want exactly one file\n";
    return 2;
  }
  const topofile::TopofileInfo info =
      topofile::probe_topofile(topofile::read_topofile(files[0]));
  std::cout << "name:     " << info.name << "\n"
            << "nodes:    " << info.num_nodes << "\n"
            << "emulates: " << (info.emulates.empty() ? "-" : info.emulates)
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> files;
  std::ostringstream joined;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.find('=') == std::string::npos) {
      files.push_back(arg);
    } else {
      joined << arg << ' ';
    }
  }
  try {
    const Config args = Config::from_string(joined.str());
    if (command == "export") return run_export(args);
    if (command == "check") return run_check(files, args);
    if (command == "info") return run_info(files);
    std::cerr << "unknown command: " << command << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

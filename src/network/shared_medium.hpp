// Token-arbitrated shared medium.
//
// Models the two shared-channel structures of the OWN architecture (and of
// the OptXB baseline):
//
//  * Photonic MWSR waveguide — many writers, ONE reader (the "home" tile).
//    A token circulates among the writers; the holder transmits one whole
//    packet (wormhole on the bus: the token is held until the tail flit is
//    launched), then the token moves on, one writer position per cycle.
//
//  * Wireless SWMR channel (OWN-1024) — several writers (one per cluster of
//    the transmitting group) sharing a token, and several readers (every
//    cluster of the destination group). The signal is *multicast*: only the
//    intended reader's input port receives the flits, but every listening
//    reader pays receive energy (`multicast_rx = true`), exactly as §III.B
//    describes ("the rest will discard it ... receiver power is consumed").
//
// Reader-side VC assignment and buffer credits are owned by the medium: the
// medium is the only writer into its reader ports, so it can account
// occupancy exactly; routers return credits through the reader endpoint.
// Writer ports expose `OutputEndpoint` with packet-granular admission (a new
// head is admitted only once the previous packet fully drained), which models
// the per-packet token arbitration of the paper.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "network/channel.hpp"  // VcClassRange, LinkCounters
#include "network/endpoints.hpp"
#include "network/flit.hpp"
#include "obs/counters.hpp"
#include "sim/clocked.hpp"

namespace ownsim {

namespace obs {
class TraceWriter;
}

/// Counters specific to shared media (token behavior, multicast RX cost).
struct MediumCounters {
  std::int64_t packets = 0;
  std::int64_t flits = 0;
  std::int64_t tx_bits = 0;
  std::int64_t rx_bits = 0;          ///< includes discarded multicast copies
  std::int64_t token_wait_cycles = 0;///< cycles a pending head waited for the token
  /// SWMR multicast: flit copies received-and-discarded by the non-target
  /// readers (§III.B "the rest will discard it"); 0 on MWSR media.
  std::int64_t multicast_discard_flits = 0;
  // Reliability-protocol counters (fault/protocol.hpp); plain integers so the
  // fault campaign's acceptance logic never depends on the obs registry.
  std::int64_t crc_errors = 0;       ///< receptions that failed the CRC
  std::int64_t retransmissions = 0;  ///< flit copies re-sent on a NACK
  std::int64_t token_recoveries = 0; ///< tokens regenerated after a loss
};

/// How writers are granted the medium.
///  kTokenRing — the paper's scheme: a token circulates one writer position
///               per cycle and is held for a whole packet ("token transfer
///               consumes a few extra cycles").
///  kIdeal     — zero-cost arbitration: any pending writer may start the
///               cycle the bus frees (round-robin fairness). Ablation
///               baseline isolating the token's latency cost.
enum class ArbitrationKind { kTokenRing, kIdeal };

class SharedMedium final : public Clocked {
 public:
  struct Params {
    MediumType medium = MediumType::kPhotonic;
    ArbitrationKind arbitration = ArbitrationKind::kTokenRing;
    int num_writers = 1;
    int num_readers = 1;
    int latency = 1;             ///< propagation, cycles
    int cycles_per_flit = 1;     ///< serialization on the medium
    int num_vcs = 4;             ///< per reader input port
    int buffer_depth = 8;        ///< per reader VC
    int max_packet_flits = 8;    ///< writer staging capacity
    Length distance;
    bool multicast_rx = false;   ///< SWMR: every reader pays RX energy
    std::string name;
    /// Given a flit's destination, which reader index receives it.
    std::function<int(NodeId dst, RouterId dst_router)> select_reader;
  };

  SharedMedium(Params params, const std::vector<VcClassRange>* classes);

  OutputEndpoint* writer(int index);
  InputEndpoint* reader(int index);

  void eval(Cycle now) override;
  void commit(Cycle now) override;

  /// Dormant when no transmission is active and no writer has flits staged.
  /// Pending reader credits are absorbed lazily (credits are only *read* by
  /// try_start / the active-transmission path, which run when non-idle), and
  /// the free-running token position is reconstructed in closed form at the
  /// next eval — both lockstep-identical (DESIGN.md §5e). A lost token forces
  /// per-cycle evals: the closed-form catch-up assumes a *rotating* token, so
  /// both kernels must observe the frozen token the same way (§5f).
  bool is_idle() const override {
    return !active_ && nonempty_stagings_ == 0 && !token_loss_pending_;
  }

  /// Component to wake when a delivery reaches reader `index` (the router
  /// polling that reader endpoint). Wired once by the Network assembler.
  void set_reader_sink(int index, Clocked* sink) {
    readers_.at(static_cast<std::size_t>(index)).sink = sink;
  }

  const MediumCounters& counters() const { return counters_; }
  const Params& params() const { return params_; }
  int token_position() const { return token_; }
  bool transmitting() const { return active_; }

  /// Registers this medium's counters with `registry` (handles resolved
  /// once). Names: "medium.<name>.{packets,flits,token_wait_cycles,
  /// arb_retries,multicast_discard_flits}".
  void bind_obs(obs::Registry& registry);

  /// Attaches a trace writer: token grants become instant events and
  /// per-packet bus occupancy complete events on (kPidMedia, `tid`).
  void set_trace(obs::TraceWriter* trace, int tid);

  // ---- runtime fault model (fault/campaign.*) -------------------------------
  /// Arms the reliability protocol: each launched flit corrupts independently
  /// with the protocol's per-flit error rate, and the writer retries while
  /// holding the token — arrival and the next transmit slot slide by the
  /// summed backoff. `registry` may be null (no obs counters).
  void set_fault_model(const fault::Protocol* protocol, Rng rng,
                       obs::Registry* registry);

  /// MAC-level token loss: from the next cycle the token is frozen — no
  /// rotation, no new grants (the active transmission, if any, completes).
  /// At `recover_at` the recovery protocol regenerates the token at writer 0;
  /// `kNeverCycle` means it is never recovered (deadlock — watchdog fodder).
  /// Token-ring media only. The caller must post a wake (campaign does).
  void lose_token(Cycle now, Cycle recover_at);
  bool token_lost() const { return token_loss_pending_; }

  // ---- online adaptation hooks (adapt/controller.hpp) -----------------------
  /// Overrides the armed protocol's static `ber` for this medium's
  /// corruption draws with a live, thermally-driven value; timing parameters
  /// still come from the protocol. Negative restores the static point.
  void set_live_ber(double ber) { live_ber_ = ber; }
  double live_ber() const { return live_ber_; }

  /// Changes the serialization constraint for future launches (rate
  /// backoff). The active transmission keeps its already-reserved slots.
  void set_cycles_per_flit(int cycles_per_flit);

 private:
  // Writers stage packets per VC class. This is load-bearing for deadlock
  // freedom: in OWN, pre-wireless (class 0) and post-wireless (class 1)
  // packets share photonic writer ports, and a single shared staging buffer
  // would let a blocked class-0 packet stall class-1 behind it, closing a
  // class-0 -> wireless -> class-1 -> class-0 dependency cycle.
  struct ClassStaging {
    RingBuffer<Flit> staging{1};
    std::vector<Flit> staged_in;  // becomes visible to the medium at commit
    int staged_count = 0;         // staging.size() + staged_in.size()
    bool packet_open = false;     // a packet has been VCA'd and not yet fully
                                  // accepted (head..tail) on this class
  };

  struct Writer final : OutputEndpoint {
    VcId alloc_vc(int vc_class, Cycle now) override;
    bool can_accept(const Flit& flit, Cycle now) const override;
    void accept(const Flit& flit, Cycle now) override;

    SharedMedium* medium = nullptr;
    int index = 0;
    std::vector<ClassStaging> per_class;
    int rr_class = 0;  ///< round-robin among classes with pending heads
  };

  struct Reader final : InputEndpoint {
    const Flit* poll(Cycle now) override;
    void pop(Cycle now) override;
    void push_credit(VcId vc, Cycle now) override;

    SharedMedium* medium = nullptr;
    int index = 0;
    struct Timed {
      Flit flit;
      Cycle arrival;
    };
    std::deque<Timed> delivery;
    struct TimedCredit {
      VcId vc;
      Cycle arrival;
    };
    std::deque<TimedCredit> credit_pipe;
    std::vector<TimedCredit> staged_credits;
    std::vector<int> credits;      // per VC
    std::vector<bool> vc_busy;     // per VC, owned by the medium
    Clocked* sink = nullptr;       // woken at delivery arrivals
  };

  /// Attempts to start transmitting a staged head packet of writer `w`
  /// (round-robin among its per-class stagings).
  bool try_start(int w, Cycle now);

  Params params_;
  const std::vector<VcClassRange>* classes_;
  std::vector<Writer> writers_;
  std::vector<Reader> readers_;
  std::vector<int> rr_vc_next_;  // per-class RR pointer for reader VC choice

  int token_ = 0;
  Cycle last_eval_ = -1;  ///< for token catch-up across skipped cycles
  bool active_ = false;
  int active_writer_ = 0;
  int active_class_ = 0;
  int active_reader_ = 0;
  VcId active_vc_ = kInvalidId;
  Cycle next_tx_slot_ = 0;

  // Dirty lists so eval/commit cost scales with activity, not endpoint count
  // (an OptXB-1024 waveguide has 255 writers; scanning them per cycle would
  // dominate runtime). Under the parallel kernel routers from different
  // partitions push into them concurrently during wave 1, hence the mutex;
  // the commit-time merge is membership-order-independent (each endpoint
  // appears at most once per cycle, and the merge folds per-endpoint state),
  // so results stay bit-identical for any arrival order.
  mutable Mutex dirty_mu_;
  std::vector<int> dirty_writers_ OWNSIM_GUARDED_BY(dirty_mu_);
  std::vector<int> dirty_readers_ OWNSIM_GUARDED_BY(dirty_mu_);
  int nonempty_stagings_ = 0;  ///< writers with flits staged (token-wait stat)

  // Fault-model state (null protocol = healthy medium, zero overhead).
  const fault::Protocol* fault_ = nullptr;
  Rng fault_rng_{};
  double live_ber_ = -1.0;  ///< < 0: use the protocol's static ber
  bool token_loss_pending_ = false;
  Cycle token_lost_until_ = kNeverCycle;

  MediumCounters counters_;
  obs::Counter obs_packets_;
  obs::Counter obs_flits_;
  obs::Counter obs_token_wait_;
  obs::Counter obs_arb_retries_;
  obs::Counter obs_discards_;
  obs::Counter obs_crc_errors_;
  obs::Counter obs_retransmissions_;
  obs::Counter obs_token_recoveries_;

  // Trace state (observational only).
  obs::TraceWriter* trace_ = nullptr;
  int trace_tid_ = 0;
  Cycle active_start_ = 0;  ///< grant cycle of the active transmission
};

}  // namespace ownsim

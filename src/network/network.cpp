#include "network/network.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "exec/thread_pool.hpp"
#include "obs/trace.hpp"

namespace ownsim {

RouteEntry Network::SpecOracle::route(RouterId at, const Flit& head) const {
  const Network& net = *network_;
  if (head.dst_router == at) {
    // Ejection: ports for attached nodes follow the network output ports.
    const int base = net.spec_.routers[at].num_net_out;
    const int local = net.local_index_[head.dst];
    return RouteEntry{static_cast<PortId>(base + local), 0};
  }
  // Classful multi-path routing (O1TURN-style): packets travelling in the
  // alternate class set follow the alternate routing function.
  if (net.spec_.has_alt_routing() &&
      head.vc_class >= net.spec_.alt_min_class) {
    return net.spec_.route_table_alt[at][head.dst_router];
  }
  return net.spec_.route_table[at][head.dst_router];
}

Network::Network(NetworkSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  const int nr = spec_.num_routers();

  // Node attachment bookkeeping.
  attached_.resize(static_cast<std::size_t>(nr));
  local_index_.resize(static_cast<std::size_t>(spec_.num_nodes));
  for (NodeId n = 0; n < spec_.num_nodes; ++n) {
    const RouterId r = spec_.nodes[n].router;
    local_index_[n] = static_cast<int>(attached_[r].size());
    attached_[r].push_back(n);
  }

  // Routers (network ports + one in/out pair per attached node).
  routers_.reserve(static_cast<std::size_t>(nr));
  for (RouterId r = 0; r < nr; ++r) {
    Router::Params params;
    params.id = r;
    params.num_inputs =
        spec_.routers[r].num_net_in + static_cast<int>(attached_[r].size());
    params.num_outputs =
        spec_.routers[r].num_net_out + static_cast<int>(attached_[r].size());
    params.num_vcs = spec_.num_vcs;
    params.buffer_depth = spec_.buffer_depth;
    routers_.push_back(
        std::make_unique<Router>(params, &spec_.vc_classes, &oracle_));
  }

  // Point-to-point links.
  channels_.reserve(spec_.links.size());
  for (const LinkSpec& link : spec_.links) {
    auto channel = std::make_unique<Channel>(
        link.medium, link.latency, link.cycles_per_flit, spec_.num_vcs,
        spec_.buffer_depth, link.distance, &spec_.vc_classes, link.name);
    routers_[link.src_router]->connect_output(link.src_port, channel->out());
    routers_[link.dst_router]->connect_input(link.dst_port, channel->in());
    channel->set_sink(routers_[link.dst_router].get());
    channels_.push_back(std::move(channel));
  }

  // Shared media.
  media_.reserve(spec_.media.size());
  for (const MediumSpec& ms : spec_.media) {
    SharedMedium::Params params;
    params.medium = ms.medium;
    params.num_writers = static_cast<int>(ms.writers.size());
    params.num_readers = static_cast<int>(ms.readers.size());
    params.latency = ms.latency;
    params.cycles_per_flit = ms.cycles_per_flit;
    params.num_vcs = spec_.num_vcs;
    params.buffer_depth = spec_.buffer_depth;
    params.max_packet_flits = ms.max_packet_flits;
    params.distance = ms.distance;
    params.multicast_rx = ms.multicast_rx;
    params.arbitration = ms.arbitration;
    params.name = ms.name;
    params.select_reader = ms.select_reader;
    auto medium = std::make_unique<SharedMedium>(params, &spec_.vc_classes);
    for (std::size_t w = 0; w < ms.writers.size(); ++w) {
      const auto& [r, p] = ms.writers[w];
      routers_[r]->connect_output(p, medium->writer(static_cast<int>(w)));
    }
    for (std::size_t rd = 0; rd < ms.readers.size(); ++rd) {
      const auto& [r, p] = ms.readers[rd];
      routers_[r]->connect_input(p, medium->reader(static_cast<int>(rd)));
      medium->set_reader_sink(static_cast<int>(rd), routers_[r].get());
    }
    media_.push_back(std::move(medium));
  }

  // NIC and per-node injection/ejection channels.
  nic_ = std::make_unique<Nic>(spec_.num_nodes);
  node_channels_.reserve(2 * static_cast<std::size_t>(spec_.num_nodes));
  for (NodeId n = 0; n < spec_.num_nodes; ++n) {
    const RouterId r = spec_.nodes[n].router;
    const int local = local_index_[n];
    const PortId in_port =
        static_cast<PortId>(spec_.routers[r].num_net_in + local);
    const PortId out_port =
        static_cast<PortId>(spec_.routers[r].num_net_out + local);

    auto inject = std::make_unique<Channel>(
        MediumType::kElectrical, 1, 1, spec_.num_vcs, spec_.buffer_depth,
        Length{}, &spec_.vc_classes, "inj" + std::to_string(n));
    routers_[r]->connect_input(in_port, inject->in());
    inject->set_sink(routers_[r].get());
    auto eject = std::make_unique<Channel>(
        MediumType::kElectrical, 1, 1, spec_.num_vcs, spec_.buffer_depth,
        Length{}, &spec_.vc_classes, "ej" + std::to_string(n));
    routers_[r]->connect_output(out_port, eject->out());
    eject->set_sink(nic_.get());
    nic_->connect(n, inject->out(), eject->in());
    node_channels_.push_back(std::move(inject));
    node_channels_.push_back(std::move(eject));
  }

  // Registration order is fixed (determinism): NIC, routers, media, channels.
  engine_.add(nic_.get());
  for (auto& r : routers_) engine_.add(r.get());
  for (auto& m : media_) engine_.add(m.get());
  for (auto& c : channels_) engine_.add(c.get());
  for (auto& c : node_channels_) engine_.add(c.get());

  // Observability: resolve counter handles once, after all components exist.
  for (auto& r : routers_) r->bind_obs(obs_);
  for (auto& m : media_) m->bind_obs(obs_);
  for (auto& c : channels_) c->bind_obs(obs_);

  // OWNSIM_PDES=1 put the engine in kParallel at construction; install the
  // default plan right away so even driverless users (tests, examples) get
  // the parallel kernel without extra wiring. The driver re-configures with
  // explicit threads/partitions knobs when the config asks for them.
  if (engine_.mode() == KernelMode::kParallel) {
    configure_parallel(exec::default_threads());
  }
}

ParallelPlan Network::build_partition_plan(int partitions) const {
  const int nr = spec_.num_routers();
  // Per-router partition labels: topology hint (densified in label order so
  // arbitrary label values work) unless empty or an override forces the
  // generic contiguous-block fallback.
  std::vector<int> router_part(static_cast<std::size_t>(nr), 0);
  int num_router_parts = 1;
  if (partitions <= 0 &&
      spec_.partition_hint.size() == static_cast<std::size_t>(nr)) {
    std::map<int, int> dense;
    for (const int label : spec_.partition_hint) dense.emplace(label, 0);
    int next = 0;
    for (auto& [label, id] : dense) id = next++;
    for (int r = 0; r < nr; ++r) {
      router_part[static_cast<std::size_t>(r)] =
          dense[spec_.partition_hint[static_cast<std::size_t>(r)]];
    }
    num_router_parts = next;
  } else {
    const int want = partitions > 0 ? partitions : std::min(8, nr);
    const int p = std::clamp(want, 1, nr);
    const int block = (nr + p - 1) / p;
    for (int r = 0; r < nr; ++r) {
      router_part[static_cast<std::size_t>(r)] = r / block;
    }
    num_router_parts = (nr + block - 1) / block;
  }

  ParallelPlan plan;
  // The NIC touches every node's inject/eject channel, so it gets a
  // partition of its own rather than serializing one router partition.
  const int nic_part = num_router_parts;
  plan.num_partitions = num_router_parts + 1;
  plan.partition.reserve(engine_.num_components());
  plan.wave.reserve(engine_.num_components());
  const auto push = [&plan](int part, std::uint8_t wave) {
    plan.partition.push_back(part);
    plan.wave.push_back(wave);
  };
  // Mirror the registration order above exactly: NIC, routers, media,
  // network links, node channels. Producers (NIC + routers) evaluate in
  // wave 1, pipes (media + every channel) in wave 2; pipes join the
  // partition of their receiving side so a delivery wake stays lane-local.
  push(nic_part, 1);
  for (int r = 0; r < nr; ++r) {
    push(router_part[static_cast<std::size_t>(r)], 1);
  }
  for (const MediumSpec& ms : spec_.media) {
    push(router_part[static_cast<std::size_t>(ms.readers.at(0).first)], 2);
  }
  for (const LinkSpec& link : spec_.links) {
    push(router_part[static_cast<std::size_t>(link.dst_router)], 2);
  }
  for (NodeId n = 0; n < spec_.num_nodes; ++n) {
    const int part =
        router_part[static_cast<std::size_t>(spec_.nodes[n].router)];
    push(part, 2);  // inject channel (read by the node's router)
    push(part, 2);  // eject channel (read by the NIC, delivered cross-lane)
  }
  return plan;
}

void Network::configure_parallel(unsigned threads, int partitions) {
  if (engine_.mode() != KernelMode::kParallel) {
    engine_.set_mode(KernelMode::kParallel);
  }
  engine_.configure_parallel(build_partition_plan(partitions), threads);
}

void Network::set_trace(obs::TraceWriter* trace) {
  trace_ = trace;
  if (trace != nullptr) {
    trace->set_process_name(obs::TraceWriter::kPidRun, "run phases");
    trace->set_process_name(obs::TraceWriter::kPidMedia, "shared media");
    trace->set_process_name(obs::TraceWriter::kPidLinks, "links");
  }
  for (std::size_t i = 0; i < media_.size(); ++i) {
    media_[i]->set_trace(trace, static_cast<int>(i));
    if (trace != nullptr) {
      trace->set_thread_name(obs::TraceWriter::kPidMedia, static_cast<int>(i),
                             media_[i]->params().name);
    }
  }
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    channels_[i]->set_trace(trace, static_cast<int>(i));
    if (trace != nullptr) {
      trace->set_thread_name(obs::TraceWriter::kPidLinks, static_cast<int>(i),
                             channels_[i]->name());
    }
  }
}

void Network::flush_trace() {
  for (auto& c : channels_) c->flush_trace();
}

}  // namespace ownsim

#include "network/flit.hpp"

namespace ownsim {

const char* to_string(MediumType medium) {
  switch (medium) {
    case MediumType::kElectrical: return "electrical";
    case MediumType::kPhotonic: return "photonic";
    case MediumType::kWireless: return "wireless";
  }
  return "?";
}

}  // namespace ownsim

#include "network/shared_medium.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "fault/protocol.hpp"
#include "obs/trace.hpp"

namespace ownsim {

SharedMedium::SharedMedium(Params params, const std::vector<VcClassRange>* classes)
    : params_(std::move(params)), classes_(classes) {
  if (classes_ == nullptr) {
    throw std::invalid_argument("SharedMedium: classes must not be null");
  }
  if (params_.num_writers < 1 || params_.num_readers < 1) {
    throw std::invalid_argument("SharedMedium: need >=1 writer and reader");
  }
  if (params_.latency < 1 || params_.cycles_per_flit < 1) {
    throw std::invalid_argument("SharedMedium: latency/serialization >= 1");
  }
  if (!params_.select_reader) {
    if (params_.num_readers == 1) {
      params_.select_reader = [](NodeId, RouterId) { return 0; };
    } else {
      throw std::invalid_argument(
          "SharedMedium: select_reader required with multiple readers");
    }
  }
  writers_.resize(static_cast<std::size_t>(params_.num_writers));
  int windex = 0;
  for (auto& w : writers_) {
    w.medium = this;
    w.index = windex++;
    w.per_class.resize(classes_->size());
    for (auto& cls : w.per_class) {
      cls.staging =
          RingBuffer<Flit>(static_cast<std::size_t>(params_.max_packet_flits));
    }
  }
  readers_.resize(static_cast<std::size_t>(params_.num_readers));
  int index = 0;
  for (auto& r : readers_) {
    r.medium = this;
    r.index = index++;
    r.credits.assign(static_cast<std::size_t>(params_.num_vcs),
                     params_.buffer_depth);
    r.vc_busy.assign(static_cast<std::size_t>(params_.num_vcs), false);
  }
  rr_vc_next_.assign(classes_->size(), 0);
}

OutputEndpoint* SharedMedium::writer(int index) {
  return &writers_.at(static_cast<std::size_t>(index));
}

InputEndpoint* SharedMedium::reader(int index) {
  return &readers_.at(static_cast<std::size_t>(index));
}

void SharedMedium::bind_obs(obs::Registry& registry) {
  const std::string prefix = "medium." + params_.name + ".";
  obs_packets_ = registry.counter(prefix + "packets");
  obs_flits_ = registry.counter(prefix + "flits");
  obs_token_wait_ = registry.counter(prefix + "token_wait_cycles");
  obs_arb_retries_ = registry.counter(prefix + "arb_retries");
  obs_discards_ = registry.counter(prefix + "multicast_discard_flits");
}

void SharedMedium::set_trace(obs::TraceWriter* trace, int tid) {
  trace_ = trace;
  trace_tid_ = tid;
}

void SharedMedium::set_fault_model(const fault::Protocol* protocol, Rng rng,
                                   obs::Registry* registry) {
  fault_ = protocol;
  fault_rng_ = rng;
  if (registry != nullptr) {
    // Shared aggregate slots across all faulty channels and media
    // (registration is idempotent; see obs/counters.hpp).
    obs_crc_errors_ = registry->counter("fault.crc_errors");
    obs_retransmissions_ = registry->counter("fault.retransmissions");
    obs_token_recoveries_ = registry->counter("fault.token_recoveries");
  }
}

void SharedMedium::set_cycles_per_flit(int cycles_per_flit) {
  if (cycles_per_flit < 1) {
    throw std::invalid_argument(
        "SharedMedium: cycles_per_flit must be >= 1");
  }
  params_.cycles_per_flit = cycles_per_flit;
}

void SharedMedium::lose_token(Cycle now, Cycle recover_at) {
  if (params_.arbitration != ArbitrationKind::kTokenRing) {
    throw std::logic_error("SharedMedium::lose_token: medium has no token");
  }
  if (recover_at != kNeverCycle && recover_at <= now) {
    throw std::invalid_argument(
        "SharedMedium::lose_token: recovery must be in the future");
  }
  token_loss_pending_ = true;
  token_lost_until_ = recover_at;
}

// ---- Writer endpoint --------------------------------------------------------

VcId SharedMedium::Writer::alloc_vc(int vc_class, Cycle /*now*/) {
  // The medium assigns the real reader VC at transmission start; the sending
  // router only needs exclusivity over this writer port's class lane.
  ClassStaging& lane = per_class.at(static_cast<std::size_t>(vc_class));
  if (lane.packet_open) return kInvalidId;
  lane.packet_open = true;
  // Return the class id as a pseudo-VC; it rides along in flit.vc so both
  // this endpoint and the medium know the packet's lane.
  return static_cast<VcId>(vc_class);
}

bool SharedMedium::Writer::can_accept(const Flit& flit, Cycle /*now*/) const {
  const ClassStaging& lane = per_class.at(static_cast<std::size_t>(flit.vc));
  if (flit.head) {
    // A head may enter only once the lane fully drained, so a lane never
    // interleaves packets.
    return lane.staged_count == 0;
  }
  return lane.staged_count < static_cast<int>(lane.staging.capacity());
}

void SharedMedium::Writer::accept(const Flit& flit, Cycle now) {
  assert(can_accept(flit, now));
  (void)now;
  ClassStaging& lane = per_class[static_cast<std::size_t>(flit.vc)];
  if (lane.staged_in.empty()) {
    MutexLock lock(medium->dirty_mu_);
    medium->dirty_writers_.push_back(index);
  }
  lane.staged_in.push_back(flit);
  ++lane.staged_count;
  if (flit.tail) lane.packet_open = false;
  // Latch this cycle even if the medium is dormant; the merged staging then
  // leaves it non-idle, so it arbitrates from now+1 — when a lockstep medium
  // would first see the flit too.
  medium->request_commit();
}

// ---- Reader endpoint --------------------------------------------------------

const Flit* SharedMedium::Reader::poll(Cycle now) {
  if (delivery.empty() || delivery.front().arrival > now) return nullptr;
  return &delivery.front().flit;
}

void SharedMedium::Reader::pop(Cycle /*now*/) {
  assert(!delivery.empty());
  delivery.pop_front();
}

void SharedMedium::Reader::push_credit(VcId vc, Cycle now) {
  if (staged_credits.empty()) {
    MutexLock lock(medium->dirty_mu_);
    medium->dirty_readers_.push_back(index);
  }
  staged_credits.push_back({vc, now + 1});
  // Latch this cycle. No wake: a dormant medium has nothing to spend credits
  // on, and every non-idle eval absorbs all credits due by then first.
  medium->request_commit();
}

// ---- Medium core ------------------------------------------------------------

bool SharedMedium::try_start(int w, Cycle now) {
  Writer& writer = writers_[static_cast<std::size_t>(w)];
  const int num_classes = static_cast<int>(writer.per_class.size());
  for (int k = 0; k < num_classes; ++k) {
    const int cls_idx = (writer.rr_class + k) % num_classes;
    ClassStaging& lane = writer.per_class[static_cast<std::size_t>(cls_idx)];
    if (lane.staging.empty()) continue;
    const Flit& head = lane.staging.front();
    assert(head.head && "SharedMedium lane must start with a head flit");

    const int reader_idx = params_.select_reader(head.dst, head.dst_router);
    Reader& reader = readers_.at(static_cast<std::size_t>(reader_idx));

    const VcClassRange& cls = classes_->at(static_cast<std::size_t>(cls_idx));
    int& rr = rr_vc_next_[static_cast<std::size_t>(cls_idx)];
    for (int i = 0; i < cls.count; ++i) {
      const VcId vc = cls.first + (rr + i) % cls.count;
      if (!reader.vc_busy[vc] && reader.credits[vc] > 0) {
        reader.vc_busy[vc] = true;
        rr = (rr + i + 1) % cls.count;
        active_ = true;
        active_writer_ = w;
        active_class_ = cls_idx;
        active_reader_ = reader_idx;
        active_vc_ = vc;
        // Serialization carries across packets: the bus is one physical
        // channel, so the next flit slot is whatever the previous
        // transmission left behind, never earlier.
        next_tx_slot_ = std::max(next_tx_slot_, now);
        writer.rr_class = (cls_idx + 1) % num_classes;
        ++counters_.packets;
        obs_packets_.inc();
        if (trace_ != nullptr) {
          active_start_ = now;
          trace_->instant("grant", "token", obs::TraceWriter::kPidMedia,
                          trace_tid_, now,
                          {{"writer", std::to_string(w)},
                           {"reader", std::to_string(reader_idx)},
                           {"vc", std::to_string(vc)}});
        }
        return true;
      }
    }
  }
  return false;
}

void SharedMedium::eval(Cycle now) {
  // 0. Token catch-up (activity kernel): each cycle skipped while dormant
  //    would have failed try_start (nothing staged) and moved the token one
  //    writer position, without touching the token-wait/retry counters
  //    (those are gated on nonempty_stagings_ > 0). Reconstruct that in
  //    closed form. Gated on scheduled() so manually driven media (unit
  //    tests) keep per-call semantics; under lockstep the gap is always 0.
  if (scheduled()) {
    const Cycle gap = now - last_eval_ - 1;
    if (gap > 0 && params_.arbitration == ArbitrationKind::kTokenRing) {
      token_ = static_cast<int>((token_ + gap % params_.num_writers) %
                                params_.num_writers);
    }
    last_eval_ = now;
  }

  // 0b. Token-loss recovery: the MAC regenerates the token at writer 0 once
  //     the recovery protocol completes. Runs before arbitration so the
  //     recovery cycle itself can grant — identically in both kernels, since
  //     a pending loss forces per-cycle evals (is_idle is false).
  if (token_loss_pending_ && token_lost_until_ != kNeverCycle &&
      now >= token_lost_until_) {
    token_loss_pending_ = false;
    token_ = 0;
    ++counters_.token_recoveries;
    obs_token_recoveries_.inc();
  }

  // 1. Absorb credits returned by reader routers (1-cycle reverse latency).
  for (auto& reader : readers_) {
    while (!reader.credit_pipe.empty() &&
           reader.credit_pipe.front().arrival <= now) {
      ++reader.credits[reader.credit_pipe.front().vc];
      reader.credit_pipe.pop_front();
    }
  }

  // 2. Drive the active transmission: one flit per `cycles_per_flit`,
  //    stalling (token held) when the writer hasn't staged the next flit yet
  //    or the reader is out of credits.
  if (active_) {
    Writer& writer = writers_[static_cast<std::size_t>(active_writer_)];
    ClassStaging& lane =
        writer.per_class[static_cast<std::size_t>(active_class_)];
    Reader& reader = readers_[static_cast<std::size_t>(active_reader_)];
    if (now >= next_tx_slot_ && !lane.staging.empty() &&
        reader.credits[active_vc_] > 0) {
      Flit flit = lane.staging.pop();
      --lane.staged_count;
      if (lane.staging.empty()) --nonempty_stagings_;
      flit.vc = active_vc_;
      // Fault model: the copy may corrupt in transit; the writer retries
      // while holding the token (bus occupied through the NACK round trips),
      // so both the arrival and the next transmit slot slide by the summed
      // backoff. After max_attempts the reception is forced clean — a noisy
      // medium only costs latency, never a flit.
      Cycle retry_delay = 0;
      if (fault_ != nullptr) {
        const double p_flit =
            live_ber_ >= 0.0 ? fault::flit_error_rate(live_ber_, flit.size_bits)
                             : fault_->flit_error_rate(flit.size_bits);
        int attempt = 0;
        while (attempt < fault_->max_attempts &&
               fault_rng_.uniform() < p_flit) {
          retry_delay += fault_->backoff_delay(attempt);
          ++attempt;
        }
        if (attempt > 0) {
          counters_.crc_errors += attempt;
          counters_.retransmissions += attempt;
          obs_crc_errors_.add(attempt);
          obs_retransmissions_.add(attempt);
        }
      }
      const Cycle arrival = now + retry_delay + params_.latency;
      reader.delivery.push_back({flit, arrival});
      if (reader.sink != nullptr) {
        reader.sink->request_wake(arrival);
      }
      --reader.credits[active_vc_];
      next_tx_slot_ = now + retry_delay + params_.cycles_per_flit;
      ++counters_.flits;
      counters_.tx_bits += flit.size_bits;
      counters_.rx_bits += static_cast<std::int64_t>(flit.size_bits) *
                           (params_.multicast_rx ? params_.num_readers : 1);
      obs_flits_.inc();
      if (params_.multicast_rx) {
        // Every listening reader pays RX energy; all but the target throw
        // the copy away (Table II's SWMR discard path).
        counters_.multicast_discard_flits += params_.num_readers - 1;
        obs_discards_.add(params_.num_readers - 1);
      }
      if (flit.tail) {
        // Release: the reader VC frees at tail launch; deliveries are FIFO
        // per reader, so a follow-up packet on the same VC cannot overtake.
        reader.vc_busy[active_vc_] = false;
        active_ = false;
        // A lost token cannot be passed on; it reappears at writer 0 at
        // recovery (see eval step 0b).
        if (!token_loss_pending_) {
          token_ = (token_ + 1) % params_.num_writers;
        }
        if (trace_ != nullptr) {
          trace_->complete(
              "pkt w" + std::to_string(active_writer_) + "->r" +
                  std::to_string(active_reader_),
              "medium", obs::TraceWriter::kPidMedia, trace_tid_, active_start_,
              now + params_.cycles_per_flit - active_start_);
        }
      }
    }
  } else if (params_.arbitration == ArbitrationKind::kTokenRing) {
    // 3a. Token arbitration: the current holder starts if it has a complete
    //     head staged and a reader VC is available; otherwise the token
    //     moves one writer per cycle (this is the "few extra cycles" of
    //     token transfer the paper charges against OptXB throughput).
    //     While the token is lost there is no holder and no rotation —
    //     staged packets just accrue token-wait cycles.
    if (!token_loss_pending_ && !try_start(token_, now)) {
      token_ = (token_ + 1) % params_.num_writers;
      // A staged head exists but this cycle's holder could not launch it:
      // the token moves on and the packet retries under a later holder.
      if (nonempty_stagings_ > 0) obs_arb_retries_.inc();
    }
    // "Some packet is waiting for the token" cycles, not per-writer.
    if (nonempty_stagings_ > 0) {
      ++counters_.token_wait_cycles;
      obs_token_wait_.inc();
    }
  } else {
    // 3b. Ideal arbitration: grant the first pending writer round-robin
    //     from the pointer, all in one cycle.
    for (int k = 0; k < params_.num_writers; ++k) {
      const int writer = (token_ + k) % params_.num_writers;
      if (try_start(writer, now)) {
        token_ = writer;  // tail launch advances past the granted writer
        break;
      }
    }
  }
}

void SharedMedium::commit(Cycle /*now*/) {
  MutexLock lock(dirty_mu_);
  for (const int w : dirty_writers_) {
    Writer& writer = writers_[static_cast<std::size_t>(w)];
    for (auto& lane : writer.per_class) {
      if (lane.staged_in.empty()) continue;
      if (lane.staging.empty()) ++nonempty_stagings_;
      for (auto& flit : lane.staged_in) lane.staging.push(flit);
      lane.staged_in.clear();
    }
  }
  dirty_writers_.clear();
  for (const int r : dirty_readers_) {
    Reader& reader = readers_[static_cast<std::size_t>(r)];
    for (const auto& credit : reader.staged_credits) {
      reader.credit_pipe.push_back(credit);
    }
    reader.staged_credits.clear();
  }
  dirty_readers_.clear();
}

}  // namespace ownsim

#include "network/channel.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace ownsim {

Channel::Channel(MediumType medium, int latency, int cycles_per_flit,
                 int num_vcs, int buffer_depth, Length distance,
                 const std::vector<VcClassRange>* classes, std::string name)
    : medium_(medium),
      latency_(latency),
      cycles_per_flit_(cycles_per_flit),
      distance_(distance),
      classes_(classes),
      name_(std::move(name)),
      credits_(static_cast<std::size_t>(num_vcs), buffer_depth),
      vc_busy_(static_cast<std::size_t>(num_vcs), false),
      rr_next_(classes != nullptr ? classes->size() : 1, 0) {
  if (latency < 1) throw std::invalid_argument("Channel: latency must be >= 1");
  if (cycles_per_flit < 1) {
    throw std::invalid_argument("Channel: cycles_per_flit must be >= 1");
  }
  if (num_vcs < 1 || buffer_depth < 1) {
    throw std::invalid_argument("Channel: need >=1 VC and >=1 buffer slot");
  }
  if (classes_ == nullptr) {
    throw std::invalid_argument("Channel: classes must not be null");
  }
}

VcId Channel::Sender::alloc_vc(int vc_class, Cycle /*now*/) {
  auto& ch = *channel;
  const auto& cls = (*ch.classes_).at(static_cast<std::size_t>(vc_class));
  // Round-robin over the class's VC range for fairness across packets.
  int& rr = ch.rr_next_[static_cast<std::size_t>(vc_class)];
  for (int i = 0; i < cls.count; ++i) {
    const VcId vc = cls.first + (rr + i) % cls.count;
    if (!ch.vc_busy_[vc]) {
      ch.vc_busy_[vc] = true;
      rr = (rr + i + 1) % cls.count;
      return vc;
    }
  }
  return kInvalidId;
}

bool Channel::Sender::can_accept(const Flit& flit, Cycle now) const {
  const auto& ch = *channel;
  assert(flit.vc >= 0 && flit.vc < ch.num_vcs());
  return now >= ch.next_free_ && ch.credits_[flit.vc] > 0;
}

void Channel::Sender::accept(const Flit& flit, Cycle now) {
  auto& ch = *channel;
  assert(can_accept(flit, now));
  ch.staged_flits_.push_back({flit, now + ch.latency_});
  // Quiescence contract: the staged flit must latch this cycle even if the
  // channel is dormant, and whoever polls the far end must be awake when the
  // flit completes the pipe.
  ch.request_commit();
  if (ch.sink_ != nullptr) ch.sink_->request_wake(now + ch.latency_);
  ch.next_free_ = now + ch.cycles_per_flit_;
  --ch.credits_[flit.vc];
  if (flit.tail) ch.vc_busy_[flit.vc] = false;
  ++ch.counters_.flits;
  ch.counters_.bits += flit.size_bits;
  ch.obs_flits_.inc();
  if (ch.trace_ != nullptr) ch.note_busy(now);
}

void Channel::bind_obs(obs::Registry& registry) {
  obs_flits_ = registry.counter("link." + name_ + ".flits");
}

void Channel::set_trace(obs::TraceWriter* trace, int tid) {
  trace_ = trace;
  trace_tid_ = tid;
  busy_start_ = -1;
  busy_end_ = 0;
}

void Channel::note_busy(Cycle now) {
  if (busy_start_ < 0) {
    busy_start_ = now;
  } else if (now > busy_end_) {
    trace_->complete("busy", "link", obs::TraceWriter::kPidLinks, trace_tid_,
                     busy_start_, busy_end_ - busy_start_);
    busy_start_ = now;
  }
  busy_end_ = now + cycles_per_flit_;
}

void Channel::flush_trace() {
  if (trace_ == nullptr || busy_start_ < 0) return;
  trace_->complete("busy", "link", obs::TraceWriter::kPidLinks, trace_tid_,
                   busy_start_, busy_end_ - busy_start_);
  busy_start_ = -1;
}

const Flit* Channel::Receiver::poll(Cycle now) {
  auto& ch = *channel;
  if (ch.flit_pipe_.empty() || ch.flit_pipe_.front().arrival > now) {
    return nullptr;
  }
  return &ch.flit_pipe_.front().flit;
}

void Channel::Receiver::pop(Cycle /*now*/) {
  assert(!channel->flit_pipe_.empty());
  channel->flit_pipe_.pop_front();
}

void Channel::Receiver::push_credit(VcId vc, Cycle now) {
  channel->staged_credits_.push_back({vc, now + 1});
  // Latch this cycle; the non-empty credit pipe then keeps the channel active
  // until the credit is absorbed at its arrival cycle (no sink wake needed).
  channel->request_commit();
}

void Channel::eval(Cycle now) {
  // Apply credits that have completed their reverse-pipe trip. Doing this in
  // eval (against last cycle's commits) keeps results order-independent.
  while (!credit_pipe_.empty() && credit_pipe_.front().arrival <= now) {
    ++credits_[credit_pipe_.front().vc];
    credit_pipe_.pop_front();
  }
}

void Channel::commit(Cycle /*now*/) {
  for (auto& t : staged_flits_) flit_pipe_.push_back(std::move(t));
  staged_flits_.clear();
  for (auto& c : staged_credits_) credit_pipe_.push_back(c);
  staged_credits_.clear();
}

}  // namespace ownsim

#include "network/channel.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "fault/protocol.hpp"
#include "obs/trace.hpp"

namespace ownsim {

Channel::Channel(MediumType medium, int latency, int cycles_per_flit,
                 int num_vcs, int buffer_depth, Length distance,
                 const std::vector<VcClassRange>* classes, std::string name)
    : medium_(medium),
      latency_(latency),
      cycles_per_flit_(cycles_per_flit),
      distance_(distance),
      classes_(classes),
      name_(std::move(name)),
      credits_(static_cast<std::size_t>(num_vcs), buffer_depth),
      vc_busy_(static_cast<std::size_t>(num_vcs), false),
      rr_next_(classes != nullptr ? classes->size() : 1, 0) {
  if (latency < 1) throw std::invalid_argument("Channel: latency must be >= 1");
  if (cycles_per_flit < 1) {
    throw std::invalid_argument("Channel: cycles_per_flit must be >= 1");
  }
  if (num_vcs < 1 || buffer_depth < 1) {
    throw std::invalid_argument("Channel: need >=1 VC and >=1 buffer slot");
  }
  if (classes_ == nullptr) {
    throw std::invalid_argument("Channel: classes must not be null");
  }
}

VcId Channel::Sender::alloc_vc(int vc_class, Cycle /*now*/) {
  auto& ch = *channel;
  const auto& cls = (*ch.classes_).at(static_cast<std::size_t>(vc_class));
  // Round-robin over the class's VC range for fairness across packets.
  int& rr = ch.rr_next_[static_cast<std::size_t>(vc_class)];
  for (int i = 0; i < cls.count; ++i) {
    const VcId vc = cls.first + (rr + i) % cls.count;
    if (!ch.vc_busy_[vc]) {
      ch.vc_busy_[vc] = true;
      rr = (rr + i + 1) % cls.count;
      return vc;
    }
  }
  return kInvalidId;
}

bool Channel::Sender::can_accept(const Flit& flit, Cycle now) const {
  const auto& ch = *channel;
  assert(flit.vc >= 0 && flit.vc < ch.num_vcs());
  return now >= ch.next_free_ && ch.credits_[flit.vc] > 0;
}

void Channel::Sender::accept(const Flit& flit, Cycle now) {
  auto& ch = *channel;
  assert(can_accept(flit, now));
  Timed timed{flit, now + ch.latency_};
  if (ch.fault_ != nullptr) ch.apply_fault_on_accept(timed);
  ch.staged_flits_.push_back(timed);
  // Quiescence contract: the staged flit must latch this cycle even if the
  // channel is dormant, and whoever polls the far end must be awake when the
  // flit completes the pipe.
  ch.request_commit();
  if (ch.sink_ != nullptr) ch.sink_->request_wake(timed.arrival);
  ch.next_free_ = now + ch.cycles_per_flit_;
  --ch.credits_[flit.vc];
  if (flit.tail) ch.vc_busy_[flit.vc] = false;
  ++ch.counters_.flits;
  ch.counters_.bits += flit.size_bits;
  ch.obs_flits_.inc();
  if (ch.trace_ != nullptr) ch.note_busy(now);
}

void Channel::bind_obs(obs::Registry& registry) {
  obs_flits_ = registry.counter("link." + name_ + ".flits");
}

// ---- runtime fault model ----------------------------------------------------

void Channel::set_fault_model(const fault::Protocol* protocol, Rng rng,
                              obs::Registry* registry) {
  if (protocol != nullptr && latency_ < 2) {
    // The CRC interception window (eval at arrival-1, see eval()) needs the
    // channel evaluating at least one full cycle before the receiver polls.
    throw std::invalid_argument(
        "Channel::set_fault_model: fault-protected links need latency >= 2");
  }
  if (protocol != nullptr && protocol->ack_timeout < 2) {
    throw std::invalid_argument(
        "Channel::set_fault_model: ack_timeout must cover a round trip (>=2)");
  }
  fault_ = protocol;
  fault_rng_ = rng;
  if (registry != nullptr) {
    // Registry names are shared across channels on purpose: the slots
    // aggregate network-wide (obs registration is idempotent).
    obs_crc_errors_ = registry->counter("fault.crc_errors");
    obs_retransmissions_ = registry->counter("fault.retransmissions");
  }
}

void Channel::set_cycles_per_flit(int cycles_per_flit) {
  if (cycles_per_flit < 1) {
    throw std::invalid_argument("Channel: cycles_per_flit must be >= 1");
  }
  cycles_per_flit_ = cycles_per_flit;
}

double Channel::flit_error_p(std::uint32_t bits) const {
  if (live_ber_ >= 0.0) return fault::flit_error_rate(live_ber_, bits);
  return fault_->flit_error_rate(bits);
}

void Channel::apply_fault_on_accept(Timed& timed) {
  if (dying_) {
    // Every copy on a dead channel is lost; the flit completes only after
    // the exhausted retransmission sequence (never dropped: wormhole bodies
    // must follow their head, and "zero packets lost" is the contract the
    // persistent-failure detector builds on).
    timed.arrival += fault_->exhausted_delay();
    timed.attempts = fault_->max_attempts;
    fault_counters_.crc_errors += fault_->max_attempts;
    fault_counters_.retransmissions += fault_->max_attempts;
    obs_crc_errors_.add(fault_->max_attempts);
    obs_retransmissions_.add(fault_->max_attempts);
    return;
  }
  if (fault_rng_.uniform() < flit_error_p(timed.flit.size_bits)) {
    timed.flit.crc_error = true;
    ++fault_counters_.crc_errors;
    obs_crc_errors_.inc();
  }
}

void Channel::set_outage(Cycle until, Cycle now) {
  if (until <= now) return;
  // Sender side: nothing launches before the channel comes back up.
  next_free_ = std::max(next_free_, until);
  // Copies in flight are lost to the outage and retransmitted once the
  // channel restores: first re-arrival a full pipe latency after `until`,
  // then FIFO serialization spacing. Copies the receiver already latched
  // (arrival <= now) are untouched.
  Cycle next_arrival = until + latency_;
  const auto push_out = [&](Timed& t) {
    if (t.arrival > now && t.arrival < next_arrival) {
      t.arrival = next_arrival;
      ++fault_counters_.retransmissions;
      obs_retransmissions_.inc();
      if (sink_ != nullptr) sink_->request_wake(t.arrival);
    }
    next_arrival = std::max(next_arrival, t.arrival + cycles_per_flit_);
  };
  for (auto& t : flit_pipe_) push_out(t);
  for (auto& t : staged_flits_) push_out(t);
}

void Channel::set_dying(Cycle now) {
  if (fault_ == nullptr) {
    throw std::logic_error("Channel::set_dying: no fault model attached");
  }
  if (dying_) return;
  dying_ = true;
  const Cycle penalty = fault_->exhausted_delay();
  const auto strand = [&](Timed& t) {
    if (t.arrival <= now) return;  // already latched by the receiver
    t.arrival += penalty;
    t.attempts = fault_->max_attempts;
    t.flit.crc_error = false;  // the penalty is final; no further NACK loop
    fault_counters_.crc_errors += fault_->max_attempts;
    fault_counters_.retransmissions += fault_->max_attempts;
    obs_crc_errors_.add(fault_->max_attempts);
    obs_retransmissions_.add(fault_->max_attempts);
    if (sink_ != nullptr) sink_->request_wake(t.arrival);
  };
  for (auto& t : flit_pipe_) strand(t);
  for (auto& t : staged_flits_) strand(t);
}

void Channel::dump_state(std::ostream& os) const {
  const auto line = [&](const Timed& t, const char* where) {
    os << "link " << name_ << ' ' << where << " pkt=" << t.flit.packet
       << " seq=" << t.flit.seq << " arrival=" << t.arrival
       << " attempts=" << t.attempts << (t.flit.crc_error ? " CRC" : "")
       << '\n';
  };
  for (const Timed& t : flit_pipe_) line(t, "pipe");
  for (const Timed& t : staged_flits_) line(t, "staged");
  for (const TimedCredit& c : credit_pipe_) {
    os << "link " << name_ << " credit vc=" << c.vc << " arrival=" << c.arrival
       << '\n';
  }
}

void Channel::set_trace(obs::TraceWriter* trace, int tid) {
  trace_ = trace;
  trace_tid_ = tid;
  busy_start_ = -1;
  busy_end_ = 0;
}

void Channel::note_busy(Cycle now) {
  if (busy_start_ < 0) {
    busy_start_ = now;
  } else if (now > busy_end_) {
    trace_->complete("busy", "link", obs::TraceWriter::kPidLinks, trace_tid_,
                     busy_start_, busy_end_ - busy_start_);
    busy_start_ = now;
  }
  busy_end_ = now + cycles_per_flit_;
}

void Channel::flush_trace() {
  if (trace_ == nullptr || busy_start_ < 0) return;
  trace_->complete("busy", "link", obs::TraceWriter::kPidLinks, trace_tid_,
                   busy_start_, busy_end_ - busy_start_);
  busy_start_ = -1;
}

const Flit* Channel::Receiver::poll(Cycle now) {
  auto& ch = *channel;
  if (ch.flit_pipe_.empty() || ch.flit_pipe_.front().arrival > now) {
    return nullptr;
  }
  return &ch.flit_pipe_.front().flit;
}

void Channel::Receiver::pop(Cycle now) {
  auto& ch = *channel;
  assert(!ch.flit_pipe_.empty());
  ch.flit_pipe_.pop_front();
  // Retransmission pushes arrivals out of FIFO order, so a follower can be
  // past due behind the popped front — its accept-time wake already fired
  // while the front still blocked the pipe. Re-arm the sink, or the activity
  // kernel strands the flit until an unrelated wake (lockstep polls every
  // cycle regardless, so this keeps the kernels bit-identical).
  if (ch.sink_ != nullptr && !ch.flit_pipe_.empty() &&
      ch.flit_pipe_.front().arrival <= now) {
    ch.sink_->request_wake(now + 1);
  }
}

void Channel::Receiver::push_credit(VcId vc, Cycle now) {
  channel->staged_credits_.push_back({vc, now + 1});
  // Latch this cycle; the non-empty credit pipe then keeps the channel active
  // until the credit is absorbed at its arrival cycle (no sink wake needed).
  channel->request_commit();
}

void Channel::eval(Cycle now) {
  // Apply credits that have completed their reverse-pipe trip. Doing this in
  // eval (against last cycle's commits) keeps results order-independent.
  while (!credit_pipe_.empty() && credit_pipe_.front().arrival <= now) {
    ++credits_[credit_pipe_.front().vc];
    credit_pipe_.pop_front();
  }
  if (fault_ != nullptr) {
    // Receiver-side CRC check, one cycle before each corrupt copy would
    // become pollable: NACK + bounded-backoff retransmission pushes the
    // arrival out and redraws the corruption for the new copy. Scans the
    // whole pipe (not just the front) — a pushed-back front must not strand
    // a corrupt follower with an earlier arrival. The channel is active on
    // every cycle while the pipe is non-empty, so no window is ever missed.
    for (auto& t : flit_pipe_) {
      if (!t.flit.crc_error || t.arrival > now + 1) continue;
      t.arrival = now + 1 + fault_->backoff_delay(t.attempts);
      ++t.attempts;
      ++fault_counters_.retransmissions;
      obs_retransmissions_.inc();
      t.flit.crc_error = t.attempts < fault_->max_attempts &&
                         fault_rng_.uniform() < flit_error_p(t.flit.size_bits);
      if (t.flit.crc_error) {
        ++fault_counters_.crc_errors;
        obs_crc_errors_.inc();
      }
      if (sink_ != nullptr) sink_->request_wake(t.arrival);
    }
  }
}

void Channel::commit(Cycle /*now*/) {
  for (auto& t : staged_flits_) flit_pipe_.push_back(std::move(t));
  staged_flits_.clear();
  for (auto& c : staged_credits_) credit_pipe_.push_back(c);
  staged_credits_.clear();
}

}  // namespace ownsim

// Network interface controller.
//
// One `Nic` instance serves every core: it owns per-node source queues,
// injects flits through each node's injection channel (respecting VC
// allocation and credits, exactly like a router output), and drains each
// node's ejection channel, assembling `PacketRecord`s when tail flits land.
//
// Source queues are unbounded so that offered load beyond saturation is
// measurable (accepted throughput flattens while queues grow) — the standard
// open-loop methodology for latency/throughput curves (Fig 7b,c).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "network/endpoints.hpp"
#include "network/flit.hpp"
#include "sim/clocked.hpp"

namespace ownsim {

class Nic final : public Clocked {
 public:
  explicit Nic(int num_nodes);

  /// Wiring (once per node, before the first cycle).
  void connect(NodeId node, OutputEndpoint* inject, InputEndpoint* eject);

  /// Queues a `size_flits`-flit packet for injection. `vc_class` is the
  /// deadlock class of the packet's first hop out of the source router.
  /// Returns the packet's id (unique per simulation).
  PacketId enqueue_packet(NodeId src, NodeId dst, RouterId dst_router,
                          int size_flits, std::uint32_t flit_bits,
                          int vc_class, Cycle now, bool measured);

  /// Invoked at every tail-flit ejection, after the record is stored.
  /// Used by closed-loop traffic (request/reply) to react to arrivals.
  using EjectCallback = std::function<void(const PacketRecord&, Cycle now)>;
  void set_eject_callback(EjectCallback callback) {
    on_eject_ = std::move(callback);
  }

  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}

  /// Dormant when every source queue is empty (an open VC implies the rest
  /// of that packet is still queued, so queued_flits_ == 0 is a complete
  /// test). Ejection work is covered by the eject channels' sink wakes;
  /// `enqueue_packet` posts a self-wake.
  bool is_idle() const override { return queued_flits_ == 0; }

  /// Packets fully ejected so far (records kept in ejection order).
  const std::vector<PacketRecord>& records() const { return records_; }
  /// Drops accumulated records (e.g. after warmup).
  void clear_records() { records_.clear(); }

  /// Flits waiting in source queues (offered-but-not-injected backlog).
  std::int64_t queued_flits() const { return queued_flits_; }
  /// Packets created / injected / ejected since construction.
  std::int64_t packets_created() const { return packets_created_; }
  std::int64_t packets_ejected() const { return packets_ejected_; }
  /// Measured packets fully ejected (drain detection for the runner).
  std::int64_t measured_ejected() const { return measured_ejected_; }
  std::int64_t flits_injected() const { return flits_injected_; }
  std::int64_t flits_ejected() const { return flits_ejected_; }
  /// Packets in flight (created but not fully ejected).
  std::int64_t packets_in_flight() const {
    return packets_created_ - packets_ejected_;
  }

 private:
  struct Port {
    OutputEndpoint* inject = nullptr;
    InputEndpoint* eject = nullptr;
    std::deque<Flit> queue;
    VcId open_vc = kInvalidId;  ///< VC of the packet currently injecting
  };

  std::vector<Port> ports_;
  std::vector<PacketRecord> records_;
  EjectCallback on_eject_;
  PacketId next_packet_ = 0;
  std::int64_t queued_flits_ = 0;
  std::int64_t packets_created_ = 0;
  std::int64_t packets_ejected_ = 0;
  std::int64_t measured_ejected_ = 0;
  std::int64_t flits_injected_ = 0;
  std::int64_t flits_ejected_ = 0;
};

}  // namespace ownsim

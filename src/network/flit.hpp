// Flit and packet-level types.
//
// Packets are wormhole-switched as sequences of flits. The head flit carries
// routing metadata; every flit carries enough bookkeeping for latency and
// energy accounting. Flits are passed by value (the struct is small and
// trivially copyable).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ownsim {

/// Physical medium a link or shared channel is built from. Drives both the
/// timing normalization (serialization factor) and the energy model category.
enum class MediumType : std::uint8_t { kElectrical, kPhotonic, kWireless };

const char* to_string(MediumType medium);

struct Flit {
  PacketId packet = -1;
  NodeId src = kInvalidId;
  NodeId dst = kInvalidId;
  RouterId dst_router = kInvalidId;

  bool head = false;
  bool tail = false;
  std::int16_t seq = 0;        ///< flit index within its packet
  std::int16_t packet_size = 1;///< flits in the packet

  VcId vc = kInvalidId;        ///< VC on the link currently being traversed
  std::int8_t vc_class = 0;    ///< deadlock class required at the next hop

  Cycle created = 0;           ///< cycle the packet entered its source queue
  Cycle injected = kNeverCycle;///< cycle the head flit entered the network
  std::int16_t hops = 0;       ///< router traversals so far
  bool measured = false;       ///< counts toward measurement-window stats

  /// Modeled CRC failure of the in-flight copy (fault/protocol.hpp). Set by
  /// a faulty channel when the copy corrupts in transit; the receiver NACKs
  /// and the sender retransmits, so a flit with this flag set is never
  /// delivered to a router — the flag clears when a retransmission survives.
  bool crc_error = false;

  std::uint32_t size_bits = 128;  ///< payload bits (for energy accounting)
};

/// Per-packet record produced at ejection; consumed by the metrics layer.
struct PacketRecord {
  PacketId packet = -1;
  NodeId src = kInvalidId;
  NodeId dst = kInvalidId;
  Cycle created = 0;
  Cycle injected = 0;
  Cycle ejected = 0;
  std::int16_t hops = 0;
  std::int16_t size_flits = 1;
  bool measured = false;

  /// Queue + network latency, creation to tail ejection.
  Cycle total_latency() const { return ejected - created; }
  /// Network-only latency, head injection to tail ejection.
  Cycle network_latency() const { return ejected - injected; }
};

}  // namespace ownsim

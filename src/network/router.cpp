#include "network/router.hpp"

#include <cassert>
#include <ostream>
#include <stdexcept>
#include <string>

namespace ownsim {

Router::Router(Params params, const std::vector<VcClassRange>* classes,
               const RoutingOracle* oracle)
    : params_(params), classes_(classes), oracle_(oracle) {
  if (params_.num_inputs < 1 || params_.num_outputs < 1) {
    throw std::invalid_argument("Router: needs >=1 input and output port");
  }
  if (classes_ == nullptr || oracle_ == nullptr) {
    throw std::invalid_argument("Router: classes and oracle must not be null");
  }
  inputs_.resize(static_cast<std::size_t>(params_.num_inputs));
  for (auto& port : inputs_) {
    port.vcs.resize(static_cast<std::size_t>(params_.num_vcs));
    for (auto& vc : port.vcs) {
      vc.buffer = RingBuffer<Flit>(static_cast<std::size_t>(params_.buffer_depth));
    }
  }
  outputs_.resize(static_cast<std::size_t>(params_.num_outputs));
  sa_request_.assign(inputs_.size(), -1);
  sa_winners_.reserve(inputs_.size());
  grant_key_.assign(outputs_.size(), -1);
  grant_input_.assign(outputs_.size(), -1);
  granted_outputs_.reserve(outputs_.size());
}

void Router::bind_obs(obs::Registry& registry) {
  const std::string prefix = "router." + std::to_string(params_.id) + ".";
  obs_flits_forwarded_ = registry.counter(prefix + "flits_forwarded");
  obs_sa_retries_ = registry.counter(prefix + "sa_retries");
  obs_buffer_highwater_ = registry.gauge(prefix + "buffer_highwater");
}

void Router::connect_input(PortId port, InputEndpoint* endpoint) {
  auto& slot = inputs_.at(static_cast<std::size_t>(port)).endpoint;
  if (slot != nullptr) throw std::logic_error("Router: input port double-wired");
  slot = endpoint;
}

void Router::connect_output(PortId port, OutputEndpoint* endpoint) {
  auto& slot = outputs_.at(static_cast<std::size_t>(port)).endpoint;
  if (slot != nullptr) throw std::logic_error("Router: output port double-wired");
  slot = endpoint;
}

void Router::eval(Cycle now) {
  // Activity kernel: the lockstep loop rotates vca_rr_ by num_vcs every
  // cycle unconditionally. Cycles skipped while dormant are caught up in
  // closed form so VCA arbitration stays bit-identical to lockstep. Gated on
  // scheduled(): manually driven routers (unit tests) keep per-call
  // semantics, and under a lockstep engine the gap is always zero.
  if (scheduled()) {
    const Cycle gap = now - last_eval_ - 1;
    if (gap > 0) {
      const int total = static_cast<int>(inputs_.size()) * params_.num_vcs;
      const Cycle advance =
          (vca_rr_ + static_cast<Cycle>(params_.num_vcs) * gap) %
          std::max(1, total);
      vca_rr_ = static_cast<int>(advance);
    }
    last_eval_ = now;
  }
  // Order implements pipelining: SA consumes last cycle's VCA grants, VCA
  // consumes last cycle's RC results, and so on. Intake runs first so an
  // arriving head is detected the same cycle and enters RC the next.
  stage_intake(now);
  stage_switch(now);
  stage_vca(now);
  stage_rc(now);
  stage_detect(now);
}

void Router::stage_intake(Cycle now) {
  for (auto& port : inputs_) {
    if (port.endpoint == nullptr) continue;
    const Flit* flit = port.endpoint->poll(now);
    if (flit == nullptr) continue;
    auto& vc = port.vcs.at(static_cast<std::size_t>(flit->vc));
    assert(!vc.buffer.full() && "credit protocol violated");
    vc.buffer.push(*flit);
    port.endpoint->pop(now);
    ++occupancy_;
    ++counters_.buffer_writes;
    obs_buffer_highwater_.observe_max(occupancy_);
  }
}

void Router::stage_switch(Cycle now) {
  // SA stage 1: each input port nominates one ACTIVE VC with a sendable flit.
  sa_winners_.clear();
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    auto& port = inputs_[i];
    sa_request_[i] = -1;
    const int nvc = static_cast<int>(port.vcs.size());
    for (int k = 0; k < nvc; ++k) {
      const int v = (port.rr_vc + k) % nvc;
      auto& vc = port.vcs[static_cast<std::size_t>(v)];
      if (vc.state != VcState::kActive || vc.buffer.empty()) continue;
      Flit flit = vc.buffer.front();
      flit.vc = vc.out_vc;
      auto* out = outputs_[static_cast<std::size_t>(vc.route.out_port)].endpoint;
      if (out != nullptr && out->can_accept(flit, now)) {
        sa_request_[i] = v;
        sa_winners_.push_back(static_cast<int>(i));
        break;
      }
    }
  }

  // SA stage 2: each contended output grants the requesting input with the
  // smallest round-robin distance from its pointer (equivalent to scanning
  // inputs from rr_input, but O(#requests) instead of O(inputs x outputs)).
  const int n_in = static_cast<int>(inputs_.size());
  for (int i : sa_winners_) {
    const int v = sa_request_[static_cast<std::size_t>(i)];
    const auto& vc =
        inputs_[static_cast<std::size_t>(i)].vcs[static_cast<std::size_t>(v)];
    const auto o = static_cast<std::size_t>(vc.route.out_port);
    const int key = (i - outputs_[o].rr_input + n_in) % n_in;
    if (grant_key_[o] < 0) granted_outputs_.push_back(static_cast<int>(o));
    if (grant_key_[o] < 0 || key < grant_key_[o]) {
      grant_key_[o] = key;
      grant_input_[o] = i;
    }
  }

  // ST + LT launch for every granted (input, output) pair.
  for (const int o : granted_outputs_) {
    auto& out = outputs_[static_cast<std::size_t>(o)];
    const int i = grant_input_[static_cast<std::size_t>(o)];
    grant_key_[static_cast<std::size_t>(o)] = -1;
    auto& port = inputs_[static_cast<std::size_t>(i)];
    const int v = sa_request_[static_cast<std::size_t>(i)];
    auto& vc = port.vcs[static_cast<std::size_t>(v)];

    Flit flit = vc.buffer.pop();
    --occupancy_;
    const VcId arrived_vc = flit.vc;  // VC on the upstream link (for credit)
    flit.vc = vc.out_vc;
    ++flit.hops;
    out.endpoint->accept(flit, now);
    port.endpoint->push_credit(arrived_vc, now);

    ++counters_.buffer_reads;
    ++counters_.crossbar_flits;
    counters_.crossbar_bits += flit.size_bits;
    ++counters_.switch_allocations;
    obs_flits_forwarded_.inc();

    port.rr_vc = (v + 1) % static_cast<int>(port.vcs.size());
    out.rr_input = (i + 1) % n_in;

    if (flit.tail) {
      vc.state = VcState::kIdle;
      vc.out_vc = kInvalidId;
    }
  }
  // Inputs that nominated a VC this cycle but lost stage-2 arbitration
  // retry next cycle — the switch-contention signal.
  obs_sa_retries_.add(static_cast<std::int64_t>(sa_winners_.size()) -
                      static_cast<std::int64_t>(granted_outputs_.size()));
  granted_outputs_.clear();
}

void Router::stage_vca(Cycle now) {
  // Separable VCA: walk input VCs starting from a rotating offset; each
  // requester asks its output endpoint for a downstream VC of the packet's
  // class. Endpoints grant first-come within a cycle, so the rotation
  // provides fairness across ports.
  const int total = static_cast<int>(inputs_.size()) * params_.num_vcs;
  for (int k = 0; k < total; ++k) {
    const int idx = (vca_rr_ + k) % total;
    const int i = idx / params_.num_vcs;
    const int v = idx % params_.num_vcs;
    auto& vc = inputs_[static_cast<std::size_t>(i)].vcs[static_cast<std::size_t>(v)];
    if (vc.state != VcState::kVca) continue;
    auto* out = outputs_[static_cast<std::size_t>(vc.route.out_port)].endpoint;
    if (out == nullptr) continue;
    const VcId granted = out->alloc_vc(vc.route.vc_class, now);
    if (granted != kInvalidId) {
      vc.out_vc = granted;
      vc.state = VcState::kActive;
      ++counters_.vc_allocations;
    }
  }
  vca_rr_ = (vca_rr_ + params_.num_vcs) % std::max(1, total);
}

void Router::stage_rc(Cycle now) {
  (void)now;
  for (auto& port : inputs_) {
    for (auto& vc : port.vcs) {
      if (vc.state != VcState::kRouting) continue;
      assert(!vc.buffer.empty() && vc.buffer.front().head);
      Flit& head = vc.buffer.front();
      vc.route = oracle_->route(params_.id, head);
      assert(vc.route.out_port >= 0 &&
             vc.route.out_port < static_cast<PortId>(outputs_.size()));
      head.vc_class = vc.route.vc_class;
      vc.state = VcState::kVca;
      ++counters_.route_computations;
    }
  }
}

void Router::dump_state(std::ostream& os) const {
  static const char* kStateNames[] = {"IDLE", "ROUTING", "VCA", "ACTIVE"};
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const auto& port = inputs_[i];
    for (std::size_t v = 0; v < port.vcs.size(); ++v) {
      const auto& vc = port.vcs[v];
      if (vc.state == VcState::kIdle && vc.buffer.empty()) continue;
      os << "router " << params_.id << " in" << i << " vc" << v << " state="
         << kStateNames[static_cast<int>(vc.state)] << " buffered="
         << vc.buffer.size();
      if (!vc.buffer.empty()) {
        const Flit& f = vc.buffer.front();
        os << " front={pkt=" << f.packet << " seq=" << f.seq
           << (f.head ? " H" : "") << (f.tail ? " T" : "") << " src=" << f.src
           << " dst=" << f.dst << " cls=" << static_cast<int>(f.vc_class)
           << "}";
      }
      os << " route.port=" << vc.route.out_port << " out_vc=" << vc.out_vc
         << '\n';
    }
  }
}

void Router::stage_detect(Cycle now) {
  (void)now;
  for (auto& port : inputs_) {
    for (auto& vc : port.vcs) {
      if (vc.state == VcState::kIdle && !vc.buffer.empty()) {
        assert(vc.buffer.front().head && "body flit at idle VC head");
        vc.state = VcState::kRouting;
      }
    }
  }
}

}  // namespace ownsim

// Declarative network description.
//
// A topology builder (src/topology/*) produces a `NetworkSpec`: routers with
// network-port counts, node attachments, point-to-point links, shared media,
// a table-based routing function and the VC class map. The `Network`
// assembler turns it into live simulation components. Injection/ejection
// ports are NOT part of the spec's port counts — the assembler appends one
// in/out port pair per attached node after the network ports.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/quantity.hpp"
#include "common/types.hpp"
#include "network/flit.hpp"
#include "network/router.hpp"
#include "network/shared_medium.hpp"  // ArbitrationKind

namespace ownsim {

struct RouterSpec {
  int num_net_in = 0;   ///< network input ports (links/media terminating here)
  int num_net_out = 0;  ///< network output ports
};

struct NodeAttach {
  RouterId router = kInvalidId;
};

struct LinkSpec {
  RouterId src_router = kInvalidId;
  PortId src_port = kInvalidId;  ///< network output port on src_router
  RouterId dst_router = kInvalidId;
  PortId dst_port = kInvalidId;  ///< network input port on dst_router
  MediumType medium = MediumType::kElectrical;
  int latency = 1;
  int cycles_per_flit = 1;
  Length distance;
  /// For wireless point-to-point links: index into the wireless band plan
  /// (Table III) used by the energy model. -1 for non-wireless links.
  int wireless_channel = -1;
  std::string name;
};

struct MediumSpec {
  MediumType medium = MediumType::kPhotonic;
  ArbitrationKind arbitration = ArbitrationKind::kTokenRing;
  std::vector<std::pair<RouterId, PortId>> writers;  ///< (router, out port)
  std::vector<std::pair<RouterId, PortId>> readers;  ///< (router, in port)
  int latency = 1;
  int cycles_per_flit = 1;
  int max_packet_flits = 8;
  Length distance;
  bool multicast_rx = false;
  /// Which reader index receives a flit headed to (dst, dst_router).
  /// May be empty when there is exactly one reader.
  std::function<int(NodeId dst, RouterId dst_router)> select_reader;
  /// Wireless band-plan channel for the energy model; -1 for photonic.
  int wireless_channel = -1;
  std::string name;
};

struct NetworkSpec {
  std::string name;
  int num_nodes = 0;
  int num_vcs = 4;
  int buffer_depth = 8;

  std::vector<RouterSpec> routers;
  /// Optional die coordinates per router; empty when the builder does
  /// not provide a floorplan. Used by the thermal model (power/thermal.*).
  std::vector<std::pair<Length, Length>> router_xy;
  std::vector<NodeAttach> nodes;       ///< size == num_nodes
  std::vector<LinkSpec> links;
  std::vector<MediumSpec> media;
  std::vector<VcClassRange> vc_classes;
  /// route_table[router][dst_router]; the [r][r] diagonal is unused
  /// (ejection is resolved from node attachments).
  std::vector<std::vector<RouteEntry>> route_table;

  /// Optional second routing function for classful multi-path routing
  /// (e.g. O1TURN: XY in the primary table, YX here). Packets whose current
  /// vc_class >= `alt_min_class` are routed by this table; the table's own
  /// vc_class entries keep them in the alternate class set. Empty = unused.
  std::vector<std::vector<RouteEntry>> route_table_alt;
  int alt_min_class = -1;

  /// Optional parallel-kernel partition hint: per-router partition label
  /// (any integers; Network densifies them). Topology builders set it to the
  /// natural cluster/group structure so a partition cut follows the physical
  /// hierarchy — boundary traffic then rides the high-latency inter-cluster
  /// media, minimizing the per-epoch exchange. Empty = Network falls back to
  /// contiguous router blocks. Ignored by every kernel except kParallel.
  std::vector<int> partition_hint;

  int num_routers() const { return static_cast<int>(routers.size()); }
  bool has_alt_routing() const { return !route_table_alt.empty(); }

  /// Deadlock class of a packet's first hop (used when injecting).
  /// `use_alt` selects the alternate routing function when present.
  int injection_vc_class(RouterId src_router, RouterId dst_router,
                         bool use_alt = false) const {
    if (src_router == dst_router) return 0;
    const auto& table =
        (use_alt && has_alt_routing()) ? route_table_alt : route_table;
    return table[static_cast<std::size_t>(src_router)]
                [static_cast<std::size_t>(dst_router)].vc_class;
  }

  /// Structural consistency check; throws std::runtime_error on violations
  /// (port out of range, port double-driven or undriven, bad route targets,
  /// malformed VC classes).
  void validate() const;
};

}  // namespace ownsim

#include "network/spec.hpp"

#include <sstream>
#include <stdexcept>

namespace ownsim {
namespace {

[[noreturn]] void fail(const std::string& network, const std::string& what) {
  throw std::runtime_error("NetworkSpec '" + network + "': " + what);
}

}  // namespace

void NetworkSpec::validate() const {
  const int nr = num_routers();
  if (nr == 0) fail(name, "no routers");
  if (static_cast<int>(nodes.size()) != num_nodes) {
    fail(name, "nodes.size() != num_nodes");
  }
  if (num_vcs < 1 || buffer_depth < 1) fail(name, "bad num_vcs/buffer_depth");

  // VC classes must partition prefix ranges inside [0, num_vcs).
  if (vc_classes.empty()) fail(name, "no VC classes");
  for (const auto& cls : vc_classes) {
    if (cls.first < 0 || cls.count < 1 || cls.first + cls.count > num_vcs) {
      fail(name, "VC class out of range");
    }
  }

  for (const auto& attach : nodes) {
    if (attach.router < 0 || attach.router >= nr) {
      fail(name, "node attached to missing router");
    }
  }
  if (!router_xy.empty() && static_cast<int>(router_xy.size()) != nr) {
    fail(name, "router_xy size mismatch");
  }

  // Every network port must be driven/consumed by exactly one link or medium
  // endpoint.
  std::vector<std::vector<int>> out_used(static_cast<std::size_t>(nr));
  std::vector<std::vector<int>> in_used(static_cast<std::size_t>(nr));
  for (int r = 0; r < nr; ++r) {
    out_used[r].assign(static_cast<std::size_t>(routers[r].num_net_out), 0);
    in_used[r].assign(static_cast<std::size_t>(routers[r].num_net_in), 0);
  }
  auto use_out = [&](RouterId r, PortId p, const std::string& who) {
    if (r < 0 || r >= nr) fail(name, who + ": bad src router");
    if (p < 0 || p >= static_cast<PortId>(out_used[r].size())) {
      fail(name, who + ": src port out of range");
    }
    ++out_used[r][p];
  };
  auto use_in = [&](RouterId r, PortId p, const std::string& who) {
    if (r < 0 || r >= nr) fail(name, who + ": bad dst router");
    if (p < 0 || p >= static_cast<PortId>(in_used[r].size())) {
      fail(name, who + ": dst port out of range");
    }
    ++in_used[r][p];
  };
  for (const auto& link : links) {
    use_out(link.src_router, link.src_port, "link " + link.name);
    use_in(link.dst_router, link.dst_port, "link " + link.name);
    if (link.latency < 1 || link.cycles_per_flit < 1) {
      fail(name, "link " + link.name + ": latency/serialization must be >= 1");
    }
  }
  for (const auto& medium : media) {
    if (medium.writers.empty() || medium.readers.empty()) {
      fail(name, "medium " + medium.name + ": needs writers and readers");
    }
    if (medium.readers.size() > 1 && !medium.select_reader) {
      fail(name, "medium " + medium.name + ": select_reader required");
    }
    for (const auto& [r, p] : medium.writers) {
      use_out(r, p, "medium " + medium.name);
    }
    for (const auto& [r, p] : medium.readers) {
      use_in(r, p, "medium " + medium.name);
    }
  }
  for (int r = 0; r < nr; ++r) {
    for (std::size_t p = 0; p < out_used[r].size(); ++p) {
      if (out_used[r][p] != 1) {
        std::ostringstream os;
        os << "router " << r << " out port " << p << " wired "
           << out_used[r][p] << " times";
        fail(name, os.str());
      }
    }
    for (std::size_t p = 0; p < in_used[r].size(); ++p) {
      if (in_used[r][p] != 1) {
        std::ostringstream os;
        os << "router " << r << " in port " << p << " wired " << in_used[r][p]
           << " times";
        fail(name, os.str());
      }
    }
  }

  // Route table shape + targets.
  auto check_table = [&](const std::vector<std::vector<RouteEntry>>& table,
                         const char* which) {
    if (static_cast<int>(table.size()) != nr) {
      fail(name, std::string(which) + " has wrong router count");
    }
    for (int r = 0; r < nr; ++r) {
      if (static_cast<int>(table[r].size()) != nr) {
        fail(name, std::string(which) + " row has wrong size");
      }
      for (int d = 0; d < nr; ++d) {
        if (d == r) continue;
        const RouteEntry& e = table[r][d];
        if (e.out_port < 0 || e.out_port >= routers[r].num_net_out) {
          std::ostringstream os;
          os << which << " " << r << "->" << d << " uses bad out port "
             << e.out_port;
          fail(name, os.str());
        }
        if (e.vc_class < 0 ||
            e.vc_class >= static_cast<int>(vc_classes.size())) {
          fail(name, std::string(which) + " with bad vc_class");
        }
      }
    }
  };
  check_table(route_table, "route_table");
  if (has_alt_routing()) {
    check_table(route_table_alt, "route_table_alt");
    if (alt_min_class < 0 ||
        alt_min_class >= static_cast<int>(vc_classes.size())) {
      fail(name, "alt routing requires a valid alt_min_class");
    }
  }
}

}  // namespace ownsim

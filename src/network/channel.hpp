// Point-to-point link with credit-based flow control.
//
// A `Channel` joins one upstream output port to one downstream input port.
// It bundles:
//   * a forward flit pipe with `latency` cycles of delay and a serialization
//     constraint of `cycles_per_flit` (bandwidth normalization — see
//     topology/bisection.*), and
//   * a reverse credit pipe (fixed 1-cycle latency) so the sender tracks the
//     downstream buffer occupancy per VC.
//
// The sender side implements `OutputEndpoint` (VC allocation against the
// downstream input port, credit checks); the receiver side implements
// `InputEndpoint`. Both latencies are >= 1, so component eval order never
// affects results.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/quantity.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "network/endpoints.hpp"
#include "network/flit.hpp"
#include "obs/counters.hpp"
#include "sim/clocked.hpp"

namespace ownsim {

namespace obs {
class Registry;
class TraceWriter;
}

namespace fault {
struct Protocol;
}

/// Maps a deadlock class to a contiguous range of VC ids.
struct VcClassRange {
  VcId first = 0;
  int count = 1;
};

/// Traffic counters for energy accounting (read post-run by the power model).
struct LinkCounters {
  std::int64_t flits = 0;
  std::int64_t bits = 0;
};

/// Reliability-protocol counters of one channel (fault/protocol.hpp); plain
/// integers so the fault campaign's acceptance logic never depends on the
/// (compile-time removable) obs registry.
struct LinkFaultCounters {
  std::int64_t crc_errors = 0;       ///< receptions that failed the CRC
  std::int64_t retransmissions = 0;  ///< flit copies re-sent (NACK or outage)
};

class Channel final : public Clocked {
 public:
  /// `num_vcs`/`buffer_depth` describe the downstream input port;
  /// `classes` maps vc_class -> VC range (shared network-wide).
  Channel(MediumType medium, int latency, int cycles_per_flit, int num_vcs,
          int buffer_depth, Length distance,
          const std::vector<VcClassRange>* classes, std::string name);

  OutputEndpoint* out() { return &sender_; }
  InputEndpoint* in() { return &receiver_; }

  void eval(Cycle now) override;
  void commit(Cycle now) override;

  /// Dormant once both pipes and both staging buffers are empty. While any
  /// flit or credit is in flight the channel stays active so arrivals are
  /// absorbed at exactly their arrival cycle (lockstep-identical timing).
  bool is_idle() const override {
    return flit_pipe_.empty() && credit_pipe_.empty() &&
           staged_flits_.empty() && staged_credits_.empty();
  }

  /// Component to wake when a flit completes the forward pipe (the router or
  /// NIC polling `in()`). Wired once by the Network assembler; optional —
  /// unwired channels (unit tests) simply post no wakes.
  void set_sink(Clocked* sink) { sink_ = sink; }

  MediumType medium() const { return medium_; }
  int latency() const { return latency_; }
  int cycles_per_flit() const { return cycles_per_flit_; }
  Length distance() const { return distance_; }
  const std::string& name() const { return name_; }
  const LinkCounters& counters() const { return counters_; }
  int num_vcs() const { return static_cast<int>(credits_.size()); }

  /// Sender-visible credits for `vc` (mainly for tests).
  int credits(VcId vc) const { return credits_[vc]; }
  bool vc_busy(VcId vc) const { return vc_busy_[vc]; }

  /// Registers this channel's counters with `registry` (handles resolved
  /// once; see obs/counters.hpp). Names: "link.<name>.flits".
  void bind_obs(obs::Registry& registry);

  /// Attaches a trace writer; busy intervals are emitted as complete events
  /// on track (TraceWriter::kPidLinks, `tid`). Null detaches.
  void set_trace(obs::TraceWriter* trace, int tid);

  /// Emits the still-open busy interval, if any (called at end of run).
  void flush_trace();

  // ---- runtime fault model (fault/campaign.*) -------------------------------
  /// Arms the link-level reliability protocol on this channel: accepted flits
  /// corrupt independently with the protocol's per-flit error rate (drawn
  /// from `rng`, one deterministic stream per channel), and corrupt arrivals
  /// are NACKed + retransmitted with bounded exponential backoff. Requires
  /// latency >= 2 so a corrupt front flit is always intercepted one cycle
  /// before the receiving router could poll it (kernel bit-identity; see
  /// DESIGN.md §5f). `registry` may be null (no obs counters).
  void set_fault_model(const fault::Protocol* protocol, Rng rng,
                       obs::Registry* registry);

  /// Channel flap: the sender cannot launch before `until`, and in-flight
  /// copies are lost to the outage — they retransmit after restoration
  /// (arrivals pushed past `until`, FIFO spacing preserved).
  void set_outage(Cycle until, Cycle now);

  /// Permanent mid-run death: the channel keeps accepting (wormhole bodies
  /// must follow their head) but every flit pays the exhausted-backoff
  /// penalty, in-flight copies included. No flit is ever dropped; the
  /// persistent-failure detector reroutes new traffic away (see campaign).
  void set_dying(Cycle now);
  bool dying() const { return dying_; }

  const LinkFaultCounters& fault_counters() const { return fault_counters_; }

  // ---- online adaptation hooks (adapt/controller.hpp) -----------------------
  /// Overrides the armed protocol's static `ber` for this channel's
  /// corruption draws with a live, thermally-driven value; the protocol
  /// keeps providing the timing parameters (ack_timeout, backoff, attempt
  /// bound). Negative restores the static operating point.
  void set_live_ber(double ber) { live_ber_ = ber; }
  double live_ber() const { return live_ber_; }

  /// Changes the serialization constraint for future accepts (per-link rate
  /// backoff: slower symbols, more margin). In-flight flits are unaffected.
  void set_cycles_per_flit(int cycles_per_flit);

  /// One line per in-flight/staged flit and pending credit (empty channel:
  /// no output). Diagnostic aid for the watchdog dump and parity debugging.
  void dump_state(std::ostream& os) const;

 private:
  /// Coalesces per-flit serialization slots into contiguous busy intervals:
  /// a gap (now past the previous slot's end) flushes the open interval.
  void note_busy(Cycle now);
  struct Timed;
  /// Draws the transit-corruption outcome for a just-accepted flit (or the
  /// exhausted penalty when the channel is dying). Called from accept only
  /// when a fault model is attached.
  void apply_fault_on_accept(Timed& timed);
  struct Sender final : OutputEndpoint {
    explicit Sender(Channel* ch) : channel(ch) {}
    VcId alloc_vc(int vc_class, Cycle now) override;
    bool can_accept(const Flit& flit, Cycle now) const override;
    void accept(const Flit& flit, Cycle now) override;
    Channel* channel;
  };

  struct Receiver final : InputEndpoint {
    explicit Receiver(Channel* ch) : channel(ch) {}
    const Flit* poll(Cycle now) override;
    void pop(Cycle now) override;
    void push_credit(VcId vc, Cycle now) override;
    Channel* channel;
  };

  struct Timed {
    Flit flit;
    Cycle arrival;
    int attempts = 0;  ///< failed receptions so far (fault model only)
  };
  struct TimedCredit {
    VcId vc;
    Cycle arrival;
  };

  MediumType medium_;
  int latency_;
  int cycles_per_flit_;
  Length distance_;
  const std::vector<VcClassRange>* classes_;
  std::string name_;

  // Sender state (touched only by the upstream component's eval).
  std::vector<int> credits_;
  std::vector<bool> vc_busy_;
  std::vector<int> rr_next_;  // per-class round-robin VC pointer
  Cycle next_free_ = 0;

  // Pipes. `staged_*` filled during eval, merged in commit.
  std::deque<Timed> flit_pipe_;
  std::vector<Timed> staged_flits_;
  std::deque<TimedCredit> credit_pipe_;
  std::vector<TimedCredit> staged_credits_;

  Clocked* sink_ = nullptr;  ///< woken at forward-pipe arrivals

  LinkCounters counters_;
  obs::Counter obs_flits_;

  /// Per-flit corruption probability honoring a live-BER override.
  double flit_error_p(std::uint32_t bits) const;

  // Fault-model state (null protocol = healthy channel, zero overhead).
  const fault::Protocol* fault_ = nullptr;
  Rng fault_rng_{};
  double live_ber_ = -1.0;  ///< < 0: use the protocol's static ber
  bool dying_ = false;
  LinkFaultCounters fault_counters_;
  obs::Counter obs_crc_errors_;
  obs::Counter obs_retransmissions_;

  // Trace state (observational only; see obs/trace.hpp).
  obs::TraceWriter* trace_ = nullptr;
  int trace_tid_ = 0;
  Cycle busy_start_ = -1;  ///< -1: no interval open
  Cycle busy_end_ = 0;     ///< end of the last occupied serialization slot

  Sender sender_{this};
  Receiver receiver_{this};
};

}  // namespace ownsim

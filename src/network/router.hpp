// Input-buffered virtual-channel router with the paper's 5-stage pipeline:
// RC (route computation) -> VCA (virtual-channel allocation) -> SA (switch
// allocation) -> ST (switch traversal) -> LT (link traversal).
//
// Each input VC advances through a per-packet state machine
// (IDLE -> ROUTING -> VCA -> ACTIVE) one stage per cycle; body flits reuse
// the packet's allocation and only contend for the switch. Switch allocation
// is separable input-first with round-robin priority at both stages. Flow
// control is credit-based wormhole; credits return through the upstream
// endpoint as buffer slots free.
//
// Port counts are asymmetric (e.g. an OWN photonic router reads ONE home
// waveguide but writes 15), so inputs and outputs are configured separately.
// Injection/ejection ports are plain ports wired to NIC channels by the
// Network assembler.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "network/channel.hpp"  // VcClassRange
#include "network/endpoints.hpp"
#include "network/flit.hpp"
#include "obs/counters.hpp"
#include "sim/clocked.hpp"

namespace ownsim {

/// Next-hop decision for a head flit at some router.
struct RouteEntry {
  PortId out_port = kInvalidId;
  std::int8_t vc_class = 0;
};

/// Supplies routing decisions. `route` is called once per packet per hop
/// (during RC); when `at == flit.dst_router` it must return the ejection port.
class RoutingOracle {
 public:
  virtual ~RoutingOracle() = default;
  virtual RouteEntry route(RouterId at, const Flit& head) const = 0;
};

/// Activity counters consumed by the power model.
struct RouterCounters {
  std::int64_t buffer_writes = 0;   ///< flits written into input VCs
  std::int64_t buffer_reads = 0;    ///< flits read out at switch traversal
  std::int64_t crossbar_flits = 0;  ///< flits through the crossbar
  std::int64_t crossbar_bits = 0;
  std::int64_t route_computations = 0;
  std::int64_t vc_allocations = 0;
  std::int64_t switch_allocations = 0;  ///< granted SA requests
};

class Router final : public Clocked {
 public:
  struct Params {
    RouterId id = 0;
    int num_inputs = 0;   ///< total, including injection ports
    int num_outputs = 0;  ///< total, including ejection ports
    int num_vcs = 4;
    int buffer_depth = 8;
  };

  Router(Params params, const std::vector<VcClassRange>* classes,
         const RoutingOracle* oracle);

  /// Wiring (done once by the Network assembler before the first cycle).
  void connect_input(PortId port, InputEndpoint* endpoint);
  void connect_output(PortId port, OutputEndpoint* endpoint);

  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}

  /// Dormant when no flit is buffered: every pipeline stage needs a buffered
  /// flit to do anything (ROUTING/VCA imply a buffered head; ACTIVE with an
  /// empty buffer just waits for upstream). Arrivals re-activate the router
  /// via the source channel/medium's sink wake. The only per-cycle state a
  /// dormant router would have touched — the VCA rotation pointer — is
  /// reconstructed in closed form at the next eval (see stage_vca).
  bool is_idle() const override { return occupancy_ == 0; }

  RouterId id() const { return params_.id; }
  int num_inputs() const { return params_.num_inputs; }
  int num_outputs() const { return params_.num_outputs; }
  int radix() const { return std::max(params_.num_inputs, params_.num_outputs); }
  const RouterCounters& counters() const { return counters_; }

  /// Total flits currently buffered (used for drain detection).
  int occupancy() const { return occupancy_; }

  /// Registers this router's counters with `registry` (handles resolved
  /// once). Names: "router.<id>.{flits_forwarded,sa_retries,
  /// buffer_highwater}".
  void bind_obs(obs::Registry& registry);

  /// Writes a human-readable dump of every non-idle input VC (debug aid).
  void dump_state(std::ostream& os) const;

 private:
  enum class VcState : std::uint8_t { kIdle, kRouting, kVca, kActive };

  struct InputVc {
    VcState state = VcState::kIdle;
    RingBuffer<Flit> buffer{1};
    RouteEntry route;
    VcId out_vc = kInvalidId;
  };

  struct InputPort {
    InputEndpoint* endpoint = nullptr;
    std::vector<InputVc> vcs;
    int rr_vc = 0;  ///< SA stage-1 round-robin pointer
  };

  struct OutputPort {
    OutputEndpoint* endpoint = nullptr;
    int rr_input = 0;  ///< SA stage-2 round-robin pointer
  };

  void stage_intake(Cycle now);
  void stage_switch(Cycle now);  // SA + ST + LT launch
  void stage_vca(Cycle now);
  void stage_rc(Cycle now);
  void stage_detect(Cycle now);

  Params params_;
  const std::vector<VcClassRange>* classes_;
  const RoutingOracle* oracle_;
  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;
  int vca_rr_ = 0;  ///< round-robin start for VCA request order
  int occupancy_ = 0;
  Cycle last_eval_ = -1;  ///< for vca_rr_ catch-up across skipped cycles
  RouterCounters counters_;
  obs::Counter obs_flits_forwarded_;
  obs::Counter obs_sa_retries_;
  obs::Gauge obs_buffer_highwater_;

  // Scratch for SA (persistent to avoid per-cycle allocation).
  std::vector<int> sa_request_;   ///< per input: winning VC index or -1
  std::vector<int> sa_winners_;   ///< inputs that nominated a VC this cycle
  std::vector<int> grant_key_;    ///< per output: RR distance of best request
  std::vector<int> grant_input_;  ///< per output: input holding best request
  std::vector<int> granted_outputs_;
};

}  // namespace ownsim

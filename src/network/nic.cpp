#include "network/nic.hpp"

#include <cassert>
#include <stdexcept>

namespace ownsim {

Nic::Nic(int num_nodes) {
  if (num_nodes < 1) throw std::invalid_argument("Nic: num_nodes must be >= 1");
  ports_.resize(static_cast<std::size_t>(num_nodes));
}

void Nic::connect(NodeId node, OutputEndpoint* inject, InputEndpoint* eject) {
  auto& port = ports_.at(static_cast<std::size_t>(node));
  if (port.inject != nullptr || port.eject != nullptr) {
    throw std::logic_error("Nic: node double-wired");
  }
  port.inject = inject;
  port.eject = eject;
}

PacketId Nic::enqueue_packet(NodeId src, NodeId dst, RouterId dst_router,
                             int size_flits, std::uint32_t flit_bits,
                             int vc_class, Cycle now, bool measured) {
  assert(size_flits >= 1);
  auto& port = ports_.at(static_cast<std::size_t>(src));
  const PacketId id = next_packet_++;
  for (int s = 0; s < size_flits; ++s) {
    Flit flit;
    flit.packet = id;
    flit.src = src;
    flit.dst = dst;
    flit.dst_router = dst_router;
    flit.head = (s == 0);
    flit.tail = (s == size_flits - 1);
    flit.seq = static_cast<std::int16_t>(s);
    flit.packet_size = static_cast<std::int16_t>(size_flits);
    flit.vc_class = static_cast<std::int8_t>(vc_class);
    flit.created = now;
    flit.measured = measured;
    flit.size_bits = flit_bits;
    port.queue.push_back(flit);
  }
  queued_flits_ += size_flits;
  ++packets_created_;
  // Callers enqueue either mid-eval (injector, eject callbacks) — where the
  // NIC's eval slot for `now` has already passed, so the engine clamps the
  // wake to now+1 (matching lockstep: the NIC is registered before every
  // traffic source) — or between steps, where cycle `now` is still upcoming
  // and the wake lands on it.
  request_wake(now);
  return id;
}

void Nic::eval(Cycle now) {
  for (auto& port : ports_) {
    // ---- Injection: at most one flit per node per cycle. -------------------
    if (port.inject != nullptr && !port.queue.empty()) {
      Flit& flit = port.queue.front();
      if (flit.head && port.open_vc == kInvalidId) {
        port.open_vc = port.inject->alloc_vc(flit.vc_class, now);
      }
      if (port.open_vc != kInvalidId) {
        flit.vc = port.open_vc;
        if (port.inject->can_accept(flit, now)) {
          if (flit.head) {
            // Stamp the whole packet (its flits are contiguous at the queue
            // front) so the tail flit carries the injection time to ejection.
            for (std::size_t k = 0;
                 k < port.queue.size() &&
                 port.queue[k].packet == flit.packet;
                 ++k) {
              port.queue[k].injected = now;
            }
          }
          const bool tail = flit.tail;
          port.inject->accept(flit, now);
          port.queue.pop_front();
          --queued_flits_;
          ++flits_injected_;
          if (tail) port.open_vc = kInvalidId;
        }
      }
    }

    // ---- Ejection: at most one flit per node per cycle. --------------------
    if (port.eject != nullptr) {
      const Flit* flit = port.eject->poll(now);
      if (flit != nullptr) {
        ++flits_ejected_;
        if (flit->tail) {
          PacketRecord rec;
          rec.packet = flit->packet;
          rec.src = flit->src;
          rec.dst = flit->dst;
          rec.created = flit->created;
          rec.injected = flit->injected;
          rec.ejected = now;
          rec.hops = flit->hops;
          rec.size_flits = flit->packet_size;
          rec.measured = flit->measured;
          records_.push_back(rec);
          ++packets_ejected_;
          if (rec.measured) ++measured_ejected_;
          if (on_eject_) on_eject_(records_.back(), now);
        }
        const VcId vc = flit->vc;
        port.eject->pop(now);
        port.eject->push_credit(vc, now);
      }
    }
  }
}

}  // namespace ownsim

// Network assembler: turns a `NetworkSpec` into live components.
//
// Owns the routers, channels, shared media and the NIC; registers everything
// with an internal `Engine`. Traffic generators (src/traffic) enqueue packets
// into the NIC and are registered with the same engine by the driver.
#pragma once

#include <memory>
#include <vector>

#include "network/channel.hpp"
#include "network/nic.hpp"
#include "network/router.hpp"
#include "network/shared_medium.hpp"
#include "network/spec.hpp"
#include "obs/counters.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"

namespace ownsim {

namespace obs {
class TraceWriter;
}

class Network {
 public:
  /// Validates the spec and builds all components. Throws on malformed specs.
  explicit Network(NetworkSpec spec);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  Nic& nic() { return *nic_; }
  const Nic& nic() const { return *nic_; }
  const NetworkSpec& spec() const { return spec_; }

  /// Router id serving node `n`.
  RouterId router_of(NodeId n) const { return spec_.nodes[n].router; }

  /// Deadlock class for injecting a packet src -> dst (NIC needs this).
  /// `use_alt` starts the packet on the alternate routing function when the
  /// topology provides one (O1TURN-style multi-path).
  int injection_vc_class(NodeId src, NodeId dst, bool use_alt = false) const {
    return spec_.injection_vc_class(router_of(src), router_of(dst), use_alt);
  }

  // ---- component access (tests / power model) -------------------------------
  const Router& router(RouterId r) const { return *routers_.at(r); }
  /// Channels in spec order (spec_.links[i] <-> network_channel(i)).
  const Channel& network_channel(std::size_t i) const { return *channels_.at(i); }
  std::size_t num_network_channels() const { return channels_.size(); }
  const SharedMedium& medium(std::size_t i) const { return *media_.at(i); }
  std::size_t num_media() const { return media_.size(); }

  // ---- runtime fault hooks (fault/campaign.*) -------------------------------
  /// Mutable component access for the fault campaign: arming fault models and
  /// injecting mid-run events (outages, death, token loss).
  Channel& network_channel_mut(std::size_t i) { return *channels_.at(i); }
  SharedMedium& medium_mut(std::size_t i) { return *media_.at(i); }

  /// Online route patch: replaces the spec route entry for (`at`, `dst`).
  /// The routing oracle reads the live table, so the new entry applies from
  /// the next route computation; packets already routed keep their old path.
  void set_route(RouterId at, RouterId dst, RouteEntry entry) {
    spec_.route_table.at(static_cast<std::size_t>(at))
        .at(static_cast<std::size_t>(dst)) = entry;
  }

  /// True when no packet is anywhere in flight (queues, routers, links).
  bool drained() const { return nic_->packets_in_flight() == 0; }

  // ---- parallel kernel (sim/parallel.hpp, DESIGN.md §5i) --------------------
  /// Maps every registered component to a partition + wave. Routers follow
  /// `spec().partition_hint` (labels densified) or, when the hint is empty or
  /// `partitions` > 0 forces it, contiguous router blocks. Media/links/node
  /// channels join the partition of their receiving router; the NIC gets a
  /// dedicated partition of its own (it touches every node's channels).
  ParallelPlan build_partition_plan(int partitions = 0) const;

  /// Builds the plan and installs it on the engine with `threads` workers
  /// (`engine().set_mode(kParallel)` first if needed; now() must be 0).
  /// The Network constructor calls this automatically with
  /// `exec::default_threads()` when OWNSIM_PDES=1 put the engine in
  /// kParallel; the driver calls it explicitly for `kernel=parallel` runs.
  void configure_parallel(unsigned threads, int partitions = 0);

  // ---- observability --------------------------------------------------------
  /// Counter registry for this network's components (routers, media, network
  /// links, plus any Injector built against this network). Node inject/eject
  /// stub channels are not registered — their traffic is the NIC's counters.
  obs::Registry& obs() { return obs_; }
  const obs::Registry& obs() const { return obs_; }

  /// Attaches (or, with nullptr, detaches) a trace writer to every shared
  /// medium and network link and remembers it for the measurement driver's
  /// phase slices (`run_load_point` reads `trace()`). Purely observational:
  /// simulated results are bit-identical with tracing on or off.
  void set_trace(obs::TraceWriter* trace);
  obs::TraceWriter* trace() const { return trace_; }

  /// Emits any still-open channel busy intervals (call once, end of run).
  void flush_trace();

 private:
  /// Route lookups against the spec's tables + node attachments.
  class SpecOracle final : public RoutingOracle {
   public:
    explicit SpecOracle(const Network* network) : network_(network) {}
    RouteEntry route(RouterId at, const Flit& head) const override;

   private:
    const Network* network_;
  };

  NetworkSpec spec_;
  Engine engine_;
  SpecOracle oracle_{this};
  obs::Registry obs_;
  obs::TraceWriter* trace_ = nullptr;

  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Channel>> channels_;       ///< network links
  std::vector<std::unique_ptr<Channel>> node_channels_;  ///< inject+eject
  std::vector<std::unique_ptr<SharedMedium>> media_;
  std::unique_ptr<Nic> nic_;

  /// Per router: attached nodes in attachment order (ejection port order).
  std::vector<std::vector<NodeId>> attached_;
  /// Per node: index within its router's attachment list.
  std::vector<int> local_index_;
};

}  // namespace ownsim

// Port endpoint interfaces.
//
// A router (or NIC) sees each of its ports through one of two narrow
// interfaces, so point-to-point channels and token-arbitrated shared media
// (photonic MWSR waveguides, wireless SWMR channels) plug in uniformly:
//
//  * `InputEndpoint`  — where flits arrive; the consumer polls, pops, and
//    returns credits as buffer slots free up.
//  * `OutputEndpoint` — where flits depart; supports downstream-VC allocation
//    (VCA) and per-cycle acceptance checks (SA/ST).
//
// For a `Channel` the downstream VC is a real VC of the next router's input
// port and credits are tracked per VC at the sender. For a shared medium the
// "VC" returned by `alloc_vc` is just the class id: the medium performs the
// real reader-VC assignment and credit check at transmission time, which
// models packet-granular token arbitration.
#pragma once

#include "common/types.hpp"
#include "network/flit.hpp"

namespace ownsim {

class InputEndpoint {
 public:
  virtual ~InputEndpoint() = default;

  /// Flit arriving this cycle, or nullptr. Stable until pop() or next cycle.
  virtual const Flit* poll(Cycle now) = 0;

  /// Consumes the flit returned by poll().
  virtual void pop(Cycle now) = 0;

  /// Returns one credit for `vc` to the upstream side (latency >= 1).
  virtual void push_credit(VcId vc, Cycle now) = 0;
};

class OutputEndpoint {
 public:
  virtual ~OutputEndpoint() = default;

  /// Tries to allocate a downstream VC for a new packet of `vc_class`.
  /// Returns kInvalidId when none is available this cycle.
  virtual VcId alloc_vc(int vc_class, Cycle now) = 0;

  /// True if `flit` (already VC-allocated) can be accepted this cycle:
  /// serialization slot free and a buffer credit available.
  virtual bool can_accept(const Flit& flit, Cycle now) const = 0;

  /// Hands the flit to the link/medium. Caller must have checked can_accept.
  virtual void accept(const Flit& flit, Cycle now) = 0;
};

}  // namespace ownsim

// Fixed-size worker pool with a FIFO task queue and future-based results.
//
// The simulator's outer loops (load sweeps, design-space grids, bench
// harness figures) are embarrassingly parallel: every job builds its own
// Network and shares nothing mutable. The pool is therefore deliberately
// simple — N workers, one locked queue, `submit` returning a `std::future`
// that carries the task's value or exception. Determinism is the caller's
// contract: jobs must not communicate except through their return values.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.hpp"

namespace ownsim::exec {

/// std::thread::hardware_concurrency clamped to >= 1.
unsigned hardware_threads();

/// Worker count for tools that take no explicit thread option: the
/// `OWNSIM_THREADS` environment variable when set (clamped to >= 1),
/// otherwise `hardware_threads()`.
unsigned default_threads();

class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned threads = default_threads());

  /// Drains nothing: pending tasks still in the queue are executed before
  /// the workers exit (shutdown is graceful, not abortive).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Tasks queued but not yet picked up by a worker.
  std::size_t pending() const;

  /// Enqueues `fn` and returns the future for its result. An exception
  /// thrown by `fn` is captured and rethrown from `future.get()`.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  mutable Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ OWNSIM_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  ///< written only in ctor/dtor
  bool stopping_ OWNSIM_GUARDED_BY(mu_) = false;
};

}  // namespace ownsim::exec

// JobGraph-lite: a batch runner for a DAG of named jobs.
//
// Dependencies must name previously added jobs, which makes the graph
// acyclic by construction (no cycle detection needed). `run` executes the
// DAG level by level: each wave of mutually independent jobs fans out over
// the pool via `parallel_for`, and failures propagate at the barriers. It
// returns per-job telemetry (ran / failed / wall time). A failing job does
// not abort the batch — its transitive dependents are skipped and marked
// `ran = false` instead.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"

namespace ownsim::exec {

using JobId = std::size_t;

/// Outcome + telemetry of one job after JobGraph::run.
struct JobReport {
  std::string name;
  bool ran = false;     ///< body executed to completion without throwing
  bool failed = false;  ///< body threw
  std::string error;    ///< what() of the exception when `failed`
  double wall_seconds = 0.0;
};

class JobGraph {
 public:
  using JobFn = std::function<void()>;
  /// Fires once per settled job, serialized, possibly from worker threads.
  using ProgressFn = std::function<void(const JobReport&)>;

  /// Adds an independent job.
  JobId add(std::string name, JobFn fn);

  /// Adds a job that starts only after every job in `deps` succeeded.
  /// Throws std::invalid_argument if a dep id was not previously added.
  JobId add(std::string name, std::vector<JobId> deps, JobFn fn);

  std::size_t size() const { return jobs_.size(); }

  /// Executes the whole batch on `pool`; blocks until every job settled
  /// (ran, failed, or was skipped). Reports are indexed by JobId. The
  /// graph is reusable: `run` keeps its bookkeeping local.
  std::vector<JobReport> run(ThreadPool& pool, ProgressFn progress = {}) const;

 private:
  struct Job {
    std::string name;
    JobFn fn;
    std::vector<JobId> deps;
    std::vector<JobId> dependents;
  };
  std::vector<Job> jobs_;
};

}  // namespace ownsim::exec

#include "exec/job_graph.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/thread_annotations.hpp"
#include "exec/parallel_for.hpp"

namespace ownsim::exec {

JobId JobGraph::add(std::string name, JobFn fn) {
  return add(std::move(name), {}, std::move(fn));
}

JobId JobGraph::add(std::string name, std::vector<JobId> deps, JobFn fn) {
  if (!fn) throw std::invalid_argument("JobGraph: null job body");
  const JobId id = jobs_.size();
  for (const JobId dep : deps) {
    if (dep >= id) {
      throw std::invalid_argument("JobGraph: dependency on unknown job");
    }
  }
  for (const JobId dep : deps) jobs_[dep].dependents.push_back(id);
  jobs_.push_back({std::move(name), std::move(fn), std::move(deps), {}});
  return id;
}

std::vector<JobReport> JobGraph::run(ThreadPool& pool,
                                     ProgressFn progress) const {
  const std::size_t n = jobs_.size();
  std::vector<JobReport> reports(n);
  for (std::size_t i = 0; i < n; ++i) reports[i].name = jobs_[i].name;
  if (n == 0) return reports;

  // Deps reference earlier ids only, so one forward pass computes each
  // job's level (longest dependency chain below it). Jobs of one level are
  // mutually independent and run as one parallel wave; the barrier between
  // waves is where failures propagate to dependents.
  std::vector<std::size_t> level(n, 0);
  std::size_t num_levels = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (const JobId dep : jobs_[i].deps) {
      level[i] = std::max(level[i], level[dep] + 1);
    }
    num_levels = std::max(num_levels, level[i] + 1);
  }

  std::vector<char> skip(n, 0);
  Mutex progress_mu;
  for (std::size_t wave = 0; wave < num_levels; ++wave) {
    std::vector<JobId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      if (level[i] != wave) continue;
      for (const JobId dep : jobs_[i].deps) {
        if (skip[dep] || reports[dep].failed) skip[i] = 1;
      }
      if (skip[i]) {
        if (progress) progress(reports[i]);  // settled without running
      } else {
        ids.push_back(i);
      }
    }
    parallel_for(pool, ids.size(), [&](std::size_t k) {
      const JobId id = ids[k];
      JobReport& report = reports[id];
      const auto start = std::chrono::steady_clock::now();
      try {
        jobs_[id].fn();
        report.ran = true;
      } catch (const std::exception& e) {
        report.failed = true;
        report.error = e.what();
      } catch (...) {
        report.failed = true;
        report.error = "unknown exception";
      }
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;
      report.wall_seconds = wall.count();
      if (progress) {
        MutexLock lock(progress_mu);
        progress(report);
      }
    });
  }
  return reports;
}

}  // namespace ownsim::exec

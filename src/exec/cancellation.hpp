// Cooperative cancellation: a source flips a shared flag, tokens observe it.
//
// Cancellation is advisory — a running job keeps its partial state private
// and simply stops at its next check point, so cancelling never corrupts
// shared results. A default-constructed token is never cancelled (the cheap
// "no cancellation" case needs no allocation).
#pragma once

#include <atomic>
#include <memory>
#include <utility>

namespace ownsim::exec {

class CancellationSource;

class CancellationToken {
 public:
  /// A token that can never be cancelled.
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Idempotent; safe from any thread.
  void request_cancel() { flag_->store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_acquire);
  }

  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace ownsim::exec

// Cooperative cancellation: a source flips a shared flag, tokens observe it.
//
// Cancellation is advisory — a running job keeps its partial state private
// and simply stops at its next check point, so cancelling never corrupts
// shared results. A default-constructed token is never cancelled (the cheap
// "no cancellation" case needs no allocation).
#pragma once

#include <atomic>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace ownsim::exec {

class CancellationSource;

class CancellationToken {
 public:
  /// A token that can never be cancelled.
  CancellationToken() = default;

  bool cancelled() const {
    for (const auto& flag : flags_) {
      if (flag->load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  /// Token cancelled when ANY of `tokens` is (e.g. a job's own cancel source
  /// combined with its watchdog's). Never-cancellable inputs contribute
  /// nothing, so `any_of(token, {})` behaves exactly like `token`.
  static CancellationToken any_of(
      std::initializer_list<CancellationToken> tokens) {
    CancellationToken combined;
    for (const CancellationToken& token : tokens) {
      for (const auto& flag : token.flags_) combined.flags_.push_back(flag);
    }
    return combined;
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag) {
    flags_.push_back(std::move(flag));
  }

  // Empty: never cancelled (the cheap default). Usually holds one flag; the
  // `any_of` combinator concatenates.
  std::vector<std::shared_ptr<const std::atomic<bool>>> flags_;
};

class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Idempotent; safe from any thread.
  void request_cancel() { flag_->store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_acquire);
  }

  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace ownsim::exec

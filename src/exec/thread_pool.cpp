#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace ownsim::exec {

unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned default_threads() {
  if (const char* env = std::getenv("OWNSIM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(parsed);
    return 1;
  }
  return hardware_threads();
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::pending() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace ownsim::exec

#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace ownsim::exec {

unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned default_threads() {
  if (const char* env = std::getenv("OWNSIM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(parsed);
    return 1;
  }
  return hardware_threads();
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace ownsim::exec

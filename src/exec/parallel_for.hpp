// Data-parallel helpers over a ThreadPool.
//
// `parallel_for(pool, n, fn)` runs fn(0..n-1) with dynamic (atomic-counter)
// scheduling; the calling thread participates, so a busy or single-worker
// pool still makes progress. `parallel_map` additionally collects results
// in index order. Neither helper may be called from inside a pool task of
// the same pool — the caller blocks on futures and would deadlock a fully
// occupied pool.
//
// Iterations must be independent: writes to distinct indices of a caller
// vector are fine, shared mutable state is the caller's problem.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <future>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "exec/cancellation.hpp"
#include "exec/thread_pool.hpp"

namespace ownsim::exec {

/// Thrown by `parallel_map` when its token fires before the map completes.
struct Cancelled : std::runtime_error {
  Cancelled() : std::runtime_error("parallel operation cancelled") {}
};

/// Calls fn(i) for each i in [0, n). Returns true when every iteration ran;
/// false when `token` fired first (in-flight iterations finish, queued ones
/// are abandoned). The first exception thrown by `fn` stops issuing new
/// iterations and is rethrown here once all workers have settled.
template <typename Fn>
bool parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn,
                  CancellationToken token = {}) {
  if (n == 0) return true;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  Mutex error_mu;

  const auto body = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed) || token.cancelled()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
        completed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        MutexLock lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // One helper per worker (capped by the iteration count); the caller is
  // the extra participant and drains whatever the helpers do not reach.
  const std::size_t helpers_wanted = std::min<std::size_t>(pool.size(), n) - 1;
  std::vector<std::future<void>> helpers;
  helpers.reserve(helpers_wanted);
  for (std::size_t w = 0; w < helpers_wanted; ++w) {
    helpers.push_back(pool.submit(body));
  }
  body();
  for (std::future<void>& helper : helpers) helper.get();

  if (error) std::rethrow_exception(error);
  return completed.load(std::memory_order_relaxed) == n;
}

/// Maps fn over [0, n) and returns the results in index order. Throws
/// `Cancelled` if the token fires before every element is produced;
/// rethrows `fn`'s first exception.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn,
                  CancellationToken token = {})
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<std::optional<R>> slots(n);
  const bool complete = parallel_for(
      pool, n, [&](std::size_t i) { slots[i].emplace(fn(i)); },
      std::move(token));
  if (!complete) throw Cancelled();
  std::vector<R> out;
  out.reserve(n);
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace ownsim::exec

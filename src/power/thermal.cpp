#include "power/thermal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

std::vector<double> per_router_dynamic_pj(
    const Network& network, const PowerParams& params,
    const ChannelEnergyModel* own_channels) {
  const NetworkSpec& spec = network.spec();
  const int flit_bits = 128;
  std::vector<double> pj(static_cast<std::size_t>(spec.num_routers()), 0.0);

  // Router-local switching (same formulas as EnergyModel::compute).
  for (RouterId r = 0; r < spec.num_routers(); ++r) {
    const Router& router = network.router(r);
    const RouterCounters& c = router.counters();
    double dynamic_pj = 0.0;
    dynamic_pj += params.buffer_write_pj_per_bit *
                  static_cast<double>(c.buffer_writes) * flit_bits;
    dynamic_pj += params.buffer_read_pj_per_bit *
                  static_cast<double>(c.buffer_reads) * flit_bits;
    dynamic_pj += (params.xbar_base_pj_per_bit +
                   params.xbar_radix_slope_pj_per_bit * router.radix()) *
                  static_cast<double>(c.crossbar_bits);
    dynamic_pj += params.alloc_pj_per_op *
                  static_cast<double>(c.vc_allocations + c.switch_allocations);
    pj[r] += dynamic_pj;
  }

  // Link energy lands at the endpoints: TX at the source, RX at the sink;
  // electrical wire dissipation split evenly.
  for (std::size_t i = 0; i < network.num_network_channels(); ++i) {
    const Channel& channel = network.network_channel(i);
    const LinkSpec& link = spec.links[i];
    const double bits = static_cast<double>(channel.counters().bits);
    if (channel.medium() == MediumType::kElectrical) {
      const double e = bits * params.wire_pj_per_bit_mm *
                       channel.distance().in(1.0_mm);
      pj[link.src_router] += e / 2;
      pj[link.dst_router] += e / 2;
    } else if (channel.medium() == MediumType::kPhotonic) {
      const double e = bits * params.photonic_dynamic_pj_per_bit;
      pj[link.src_router] += e / 2;  // modulator side
      pj[link.dst_router] += e / 2;  // detector side
    } else {
      double tx_epb = kTxEnergyShare * params.legacy_wireless_pj_per_bit;
      double rx_epb = (1.0 - kTxEnergyShare) * params.legacy_wireless_pj_per_bit;
      if (link.wireless_channel >= 0 && own_channels != nullptr) {
        tx_epb = own_channels->tx_epb(link.wireless_channel).in(1.0_pj_per_bit);
        rx_epb = own_channels->rx_epb(link.wireless_channel).in(1.0_pj_per_bit);
      }
      pj[link.src_router] += bits * tx_epb;
      pj[link.dst_router] += bits * rx_epb;
    }
  }

  // Shared media: modulation at the writers (weighted by what they sent is
  // unavailable per-writer, so split evenly), detection/RX at the readers.
  for (std::size_t i = 0; i < network.num_media(); ++i) {
    const SharedMedium& medium = network.medium(i);
    const MediumSpec& ms = spec.media[i];
    const MediumCounters& c = medium.counters();
    double tx_epb = 0.5 * params.photonic_dynamic_pj_per_bit;
    double rx_epb = 0.5 * params.photonic_dynamic_pj_per_bit;
    if (ms.medium != MediumType::kPhotonic) {
      tx_epb = kTxEnergyShare * params.legacy_wireless_pj_per_bit;
      rx_epb = (1.0 - kTxEnergyShare) * params.legacy_wireless_pj_per_bit;
      if (ms.wireless_channel >= 0 && own_channels != nullptr) {
        tx_epb = own_channels->tx_epb(ms.wireless_channel).in(1.0_pj_per_bit);
        rx_epb = own_channels->rx_epb(ms.wireless_channel).in(1.0_pj_per_bit);
      }
    }
    const double tx_e = static_cast<double>(c.tx_bits) * tx_epb;
    const double rx_e = static_cast<double>(c.rx_bits) * rx_epb;
    for (const auto& [wr, wp] : ms.writers) {
      pj[wr] += tx_e / static_cast<double>(ms.writers.size());
    }
    for (const auto& [rr, rp] : ms.readers) {
      pj[rr] += rx_e / static_cast<double>(ms.readers.size());
    }
  }
  return pj;
}

std::vector<double> per_router_static_w(const Network& network,
                                        const PowerParams& params) {
  const NetworkSpec& spec = network.spec();
  std::vector<double> power(static_cast<std::size_t>(spec.num_routers()), 0.0);
  for (RouterId r = 0; r < spec.num_routers(); ++r) {
    const Router& router = network.router(r);
    power[r] +=
        (params.leak_mw_per_input_port * router.num_inputs() +
         params.leak_mw_per_output_port * router.num_outputs()) *
            units::kMilli +
        params.leak_uw_per_crosspoint * router.num_inputs() *
            router.num_outputs() * units::kMicro;
  }
  const double half_static =
      params.wireless_static_mw_per_channel * units::kMilli / 2.0;
  for (std::size_t i = 0; i < network.num_network_channels(); ++i) {
    const Channel& channel = network.network_channel(i);
    if (channel.medium() != MediumType::kElectrical &&
        channel.medium() != MediumType::kPhotonic) {
      power[spec.links[i].src_router] += half_static;
      power[spec.links[i].dst_router] += half_static;
    }
  }
  for (std::size_t i = 0; i < network.num_media(); ++i) {
    const MediumSpec& ms = spec.media[i];
    if (ms.medium == MediumType::kPhotonic) continue;
    for (const auto& [wr, wp] : ms.writers) {
      power[wr] += half_static / static_cast<double>(ms.writers.size());
    }
    for (const auto& [rr, rp] : ms.readers) {
      power[rr] += half_static / static_cast<double>(ms.readers.size());
    }
  }
  return power;
}

std::vector<double> per_router_power(const Network& network,
                                     const PowerParams& params,
                                     const ChannelEnergyModel* own_channels,
                                     double clock_ghz) {
  const Cycle elapsed = network.engine().now();
  if (elapsed <= 0) {
    throw std::logic_error("per_router_power: network has not simulated yet");
  }
  const double seconds = static_cast<double>(elapsed) / (clock_ghz * 1e9);
  std::vector<double> power =
      per_router_dynamic_pj(network, params, own_channels);
  const std::vector<double> static_w = per_router_static_w(network, params);
  for (std::size_t r = 0; r < power.size(); ++r) {
    power[r] = power[r] * units::kPico / seconds + static_w[r];
  }
  return power;
}

ThermalMap::ThermalMap(Params params) : params_(params) {
  if (params_.grid < 2 || params_.die.value() <= 0 || params_.iterations < 1 ||
      params_.k_lateral <= 0 || params_.sink_leak <= 0 ||
      4.0 * params_.k_lateral + params_.sink_leak >= 1.0 ||
      params_.source_gain_c_per_w <= 0) {
    throw std::invalid_argument("ThermalMap: bad parameters");
  }
  source_w_.assign(static_cast<std::size_t>(params_.grid) * params_.grid, 0.0);
}

void ThermalMap::deposit(const NetworkSpec& spec,
                         const std::vector<double>& power_w) {
  if (spec.router_xy.empty()) {
    throw std::invalid_argument("ThermalMap: spec has no floorplan");
  }
  if (power_w.size() != spec.router_xy.size()) {
    throw std::invalid_argument("ThermalMap: power/floorplan size mismatch");
  }
  const Length cell = params_.die / static_cast<double>(params_.grid);
  for (std::size_t r = 0; r < power_w.size(); ++r) {
    const auto [x, y] = spec.router_xy[r];
    const int cx = std::clamp(static_cast<int>(x / cell), 0, params_.grid - 1);
    const int cy = std::clamp(static_cast<int>(y / cell), 0, params_.grid - 1);
    source_w_[static_cast<std::size_t>(cy) * params_.grid + cx] += power_w[r];
  }
}

void ThermalMap::clear() {
  std::fill(source_w_.begin(), source_w_.end(), 0.0);
}

double ThermalMap::value_at(const std::vector<double>& field, Length x,
                            Length y) const {
  if (field.size() != source_w_.size()) {
    throw std::invalid_argument("ThermalMap::value_at: wrong field size");
  }
  const Length cell = params_.die / static_cast<double>(params_.grid);
  const int cx = std::clamp(static_cast<int>(x / cell), 0, params_.grid - 1);
  const int cy = std::clamp(static_cast<int>(y / cell), 0, params_.grid - 1);
  return field[static_cast<std::size_t>(cy) * params_.grid + cx];
}

std::vector<double> ThermalMap::field() const {
  const int n = params_.grid;
  std::vector<double> temp(source_w_.size(), 0.0);
  std::vector<double> next(source_w_.size(), 0.0);
  const double k = params_.k_lateral;
  for (int it = 0; it < params_.iterations; ++it) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const std::size_t idx = static_cast<std::size_t>(y) * n + x;
        // Neighbors at ambient (0) beyond the die edge.
        const double up = y > 0 ? temp[idx - n] : 0.0;
        const double down = y + 1 < n ? temp[idx + n] : 0.0;
        const double left = x > 0 ? temp[idx - 1] : 0.0;
        const double right = x + 1 < n ? temp[idx + 1] : 0.0;
        next[idx] = (1.0 - 4.0 * k - params_.sink_leak) * temp[idx] +
                    k * (up + down + left + right) +
                    params_.source_gain_c_per_w * source_w_[idx];
      }
    }
    temp.swap(next);
  }
  return temp;
}

ThermalStats ThermalMap::solve() const {
  const std::vector<double> temp = field();
  ThermalStats stats;
  const int n = params_.grid;
  double sum = 0.0;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const double t = temp[static_cast<std::size_t>(y) * n + x];
      sum += t;
      if (t > stats.peak_c) {
        stats.peak_c = t;
        stats.peak_x = (x + 0.5) * params_.die / static_cast<double>(n);
        stats.peak_y = (y + 0.5) * params_.die / static_cast<double>(n);
      }
    }
  }
  stats.mean_c = sum / static_cast<double>(temp.size());
  double var = 0.0;
  for (double t : temp) var += (t - stats.mean_c) * (t - stats.mean_c);
  stats.stddev_c = std::sqrt(var / static_cast<double>(temp.size()));
  return stats;
}

}  // namespace ownsim

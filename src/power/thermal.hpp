// Spatial power / thermal-proxy model (§III.A).
//
// The paper justifies the corner placement of OWN's wireless transceivers by
// load and *thermal* balance: concentrating the transceivers at the cluster
// center would pull all inter-cluster traffic — and its dissipation — into
// one spot. This module quantifies that argument:
//
//  1. `per_router_power` attributes the simulated power to individual
//     routers: router dynamic + leakage at the router itself, wireless TX at
//     the transmitting router and RX at each listening router, photonic
//     modulation/detection split across a medium's participants (laser power
//     is off-chip and excluded).
//  2. `ThermalMap` deposits those sources on a die grid (positions from
//     NetworkSpec::router_xy) and relaxes a discrete steady-state heat
//     equation with an ambient boundary, yielding a temperature-rise proxy.
//     It is a lumped-RC style estimate, not a calibrated thermal solver —
//     adequate for *comparing placements*, which is all §III.A needs.
#pragma once

#include <vector>

#include "common/quantity.hpp"
#include "network/network.hpp"
#include "power/energy_model.hpp"
#include "power/params.hpp"
#include "wireless/configurations.hpp"

namespace ownsim {

/// Cumulative dynamic energy (pJ) attributed to each router since cycle 0:
/// router-local switching at the router itself, link TX at the source and RX
/// at the sink, shared-medium modulation/detection split across participants
/// (laser power is off-chip and excluded). Differencing two snapshots gives
/// the dynamic energy of a window — the adaptive physical-state loop
/// (adapt/controller.hpp) uses exactly that.
std::vector<double> per_router_dynamic_pj(const Network& network,
                                          const PowerParams& params,
                                          const ChannelEnergyModel* own_channels);

/// Static (time-independent) watts attributed to each router: router leakage
/// plus the wireless transceiver static power halved across link endpoints.
std::vector<double> per_router_static_w(const Network& network,
                                        const PowerParams& params);

/// Watts attributed to each router (same model/params as EnergyModel):
/// dynamic_pj / elapsed + static_w.
std::vector<double> per_router_power(const Network& network,
                                     const PowerParams& params,
                                     const ChannelEnergyModel* own_channels,
                                     double clock_ghz = 2.0);

struct ThermalStats {
  double peak_c = 0.0;    ///< hottest cell, degC above ambient
  double mean_c = 0.0;
  double stddev_c = 0.0;  ///< spatial imbalance
  Length peak_x;
  Length peak_y;
};

class ThermalMap {
 public:
  struct Params {
    Length die = 50.0_mm;     ///< square die edge
    int grid = 32;            ///< cells per edge
    double k_lateral = 0.20;  ///< inter-cell conduction weight
    double sink_leak = 0.05;  ///< per-step fraction lost to the heat sink
    double source_gain_c_per_w = 200.0;  ///< degC injected per W per step
    int iterations = 2000;    ///< Jacobi relaxation steps
  };

  ThermalMap() : ThermalMap(Params{}) {}
  explicit ThermalMap(Params params);

  /// Deposits `power_w[r]` at the position of router r. The spec must carry
  /// a floorplan (`router_xy`), else std::invalid_argument.
  void deposit(const NetworkSpec& spec, const std::vector<double>& power_w);

  /// Relaxes to steady state and returns the temperature-rise field
  /// statistics.
  ThermalStats solve() const;

  /// Raw temperature field after solve (row-major, grid x grid), for dumps.
  std::vector<double> field() const;

  /// Re-zeroes the deposited sources so the map can be reused for the next
  /// power window without reconstructing it.
  void clear();

  /// Samples a field returned by `field()` at die position (x, y), clamped
  /// to the grid (same cell mapping as deposit).
  double value_at(const std::vector<double>& field, Length x, Length y) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
  std::vector<double> source_w_;  // per cell
};

}  // namespace ownsim

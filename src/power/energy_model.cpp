#include "power/energy_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {
namespace {

/// Wavelengths needed to sustain a channel of `cycles_per_flit` serialization
/// given the flit/clock parameters (32 Gb/s at cpf 8 -> 4 lambdas at 8 Gb/s).
int lambdas_for(int cycles_per_flit, double lambda_rate_gbps,
                double clock_ghz, int flit_bits) {
  const double rate_gbps = flit_bits * clock_ghz / cycles_per_flit;
  return std::max(1, static_cast<int>(std::lround(rate_gbps / lambda_rate_gbps)));
}

}  // namespace

EnergyModel::EnergyModel(PowerParams params,
                         std::optional<ChannelEnergyModel> own_channels)
    : params_(params), own_channels_(std::move(own_channels)) {}

PowerBreakdown EnergyModel::compute(const Network& network, double clock_ghz,
                                    double extra_photonic_static_w) const {
  const Cycle elapsed = network.engine().now();
  if (elapsed <= 0) {
    throw std::logic_error("EnergyModel: network has not simulated yet");
  }
  const double seconds = static_cast<double>(elapsed) / (clock_ghz * 1e9);
  const NetworkSpec& spec = network.spec();
  const int flit_bits = 128;  // energy scales with counted bits anyway

  PowerBreakdown breakdown;

  // ---- routers ---------------------------------------------------------------
  for (RouterId r = 0; r < spec.num_routers(); ++r) {
    const Router& router = network.router(r);
    const RouterCounters& c = router.counters();
    const double radix = router.radix();
    double dynamic_pj = 0.0;
    dynamic_pj += params_.buffer_write_pj_per_bit *
                  static_cast<double>(c.buffer_writes) * flit_bits;
    dynamic_pj += params_.buffer_read_pj_per_bit *
                  static_cast<double>(c.buffer_reads) * flit_bits;
    dynamic_pj += (params_.xbar_base_pj_per_bit +
                   params_.xbar_radix_slope_pj_per_bit * radix) *
                  static_cast<double>(c.crossbar_bits);
    dynamic_pj += params_.alloc_pj_per_op *
                  static_cast<double>(c.vc_allocations + c.switch_allocations);
    breakdown.router_dynamic_w += dynamic_pj * units::kPico / seconds;

    breakdown.router_static_w +=
        (params_.leak_mw_per_input_port * router.num_inputs() +
         params_.leak_mw_per_output_port * router.num_outputs()) *
            units::kMilli +
        params_.leak_uw_per_crosspoint * router.num_inputs() *
            router.num_outputs() * units::kMicro;
  }

  // ---- point-to-point links ----------------------------------------------------
  for (std::size_t i = 0; i < network.num_network_channels(); ++i) {
    const Channel& channel = network.network_channel(i);
    const LinkSpec& link = spec.links[i];
    const double bits = static_cast<double>(channel.counters().bits);
    switch (channel.medium()) {
      case MediumType::kElectrical:
        breakdown.electrical_link_w += bits * params_.wire_pj_per_bit_mm *
                                       channel.distance().in(1.0_mm) *
                                       units::kPico / seconds;
        break;
      case MediumType::kPhotonic: {
        breakdown.photonic_link_w +=
            bits * params_.photonic_dynamic_pj_per_bit * units::kPico / seconds;
        const int lambdas =
            lambdas_for(channel.cycles_per_flit(), params_.lambda_rate_gbps,
                        clock_ghz, flit_bits);
        breakdown.photonic_laser_w +=
            loss_budget_
                .laser_wallplug(channel.distance(), lambdas, 3, lambdas)
                .value();
        breakdown.photonic_laser_w +=
            params_.ring_tuning_uw * 2.0 * lambdas * units::kMicro;
        break;
      }
      case MediumType::kWireless: {
        double tx_epb;
        double rx_epb;
        if (link.wireless_channel >= 0 && own_channels_.has_value()) {
          tx_epb = own_channels_->tx_epb(link.wireless_channel).in(1.0_pj_per_bit);
          rx_epb = own_channels_->rx_epb(link.wireless_channel).in(1.0_pj_per_bit);
        } else {
          tx_epb = kTxEnergyShare * params_.legacy_wireless_pj_per_bit;
          rx_epb = (1.0 - kTxEnergyShare) * params_.legacy_wireless_pj_per_bit;
        }
        breakdown.wireless_link_w +=
            bits * (tx_epb + rx_epb) * units::kPico / seconds;
        breakdown.wireless_static_w +=
            params_.wireless_static_mw_per_channel * units::kMilli;
        break;
      }
    }
  }

  // ---- shared media --------------------------------------------------------------
  for (std::size_t i = 0; i < network.num_media(); ++i) {
    const SharedMedium& medium = network.medium(i);
    const MediumSpec& ms = spec.media[i];
    const MediumCounters& c = medium.counters();
    if (ms.medium == MediumType::kPhotonic) {
      // Modulation charged on TX bits, detection on RX bits.
      breakdown.photonic_link_w +=
          (static_cast<double>(c.tx_bits) + static_cast<double>(c.rx_bits)) *
          0.5 * params_.photonic_dynamic_pj_per_bit * units::kPico / seconds;
      const int lambdas =
          lambdas_for(ms.cycles_per_flit, params_.lambda_rate_gbps, clock_ghz,
                      flit_bits);
      const int rings_passed =
          static_cast<int>(ms.writers.size()) * lambdas;  // off-resonance
      breakdown.photonic_laser_w +=
          loss_budget_
              .laser_wallplug(ms.distance, rings_passed,
                              /*splitter_stages=*/4, lambdas)
              .value();
      breakdown.photonic_laser_w += params_.ring_tuning_uw *
                                    (rings_passed + lambdas) * units::kMicro;
    } else if (ms.medium == MediumType::kWireless) {
      double tx_epb;
      double rx_epb;
      if (ms.wireless_channel >= 0 && own_channels_.has_value()) {
        tx_epb = own_channels_->tx_epb(ms.wireless_channel).in(1.0_pj_per_bit);
        rx_epb = own_channels_->rx_epb(ms.wireless_channel).in(1.0_pj_per_bit);
      } else {
        tx_epb = kTxEnergyShare * params_.legacy_wireless_pj_per_bit;
        rx_epb = (1.0 - kTxEnergyShare) * params_.legacy_wireless_pj_per_bit;
      }
      // rx_bits already includes every listening cluster's copy (SWMR).
      breakdown.wireless_link_w +=
          (static_cast<double>(c.tx_bits) * tx_epb +
           static_cast<double>(c.rx_bits) * rx_epb) *
          units::kPico / seconds;
      breakdown.wireless_static_w +=
          params_.wireless_static_mw_per_channel * units::kMilli;
    }
  }

  breakdown.photonic_laser_w += extra_photonic_static_w;
  return breakdown;
}

double EnergyModel::energy_per_packet_pj(const Network& network,
                                         double clock_ghz,
                                         double extra_photonic_static_w) const {
  const PowerBreakdown breakdown =
      compute(network, clock_ghz, extra_photonic_static_w);
  const double seconds =
      static_cast<double>(network.engine().now()) / (clock_ghz * 1e9);
  const double packets =
      static_cast<double>(network.nic().packets_ejected());
  if (packets <= 0) return 0.0;
  return breakdown.total_w() * seconds / packets / units::kPico;
}

}  // namespace ownsim

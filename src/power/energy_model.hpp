// Post-run power aggregation (Figs. 5, 6, 8b).
//
// Reads the activity counters accumulated by routers, channels and shared
// media during a simulation, applies the PowerParams per-event energies plus
// static components (router leakage, photonic laser, ring tuning, wireless
// bias), and reports average power over the elapsed cycles, broken down into
// the paper's four categories: router microarchitecture, electrical links,
// photonic links and wireless links.
#pragma once

#include <optional>

#include "network/network.hpp"
#include "photonic/loss_budget.hpp"
#include "power/params.hpp"
#include "wireless/configurations.hpp"

namespace ownsim {

struct PowerBreakdown {
  double router_dynamic_w = 0.0;
  double router_static_w = 0.0;
  double electrical_link_w = 0.0;
  double photonic_link_w = 0.0;   ///< dynamic modulation/detection
  double photonic_laser_w = 0.0;  ///< static laser + ring tuning
  double wireless_link_w = 0.0;   ///< TX + RX (incl. multicast listeners)
  double wireless_static_w = 0.0;

  double router_w() const { return router_dynamic_w + router_static_w; }
  double photonic_w() const { return photonic_link_w + photonic_laser_w; }
  double wireless_w() const { return wireless_link_w + wireless_static_w; }
  double total_w() const {
    return router_w() + electrical_link_w + photonic_w() + wireless_w();
  }
};

class EnergyModel {
 public:
  /// `own_channels` supplies per-channel pJ/bit for wireless links tagged
  /// with a band-plan channel (OWN); untagged wireless links fall back to
  /// the legacy transceiver figure (wireless-CMESH).
  EnergyModel(PowerParams params,
              std::optional<ChannelEnergyModel> own_channels = std::nullopt);

  /// Average power over everything the network has simulated so far
  /// (elapsed = network.engine().now() cycles at `clock_ghz`).
  /// `extra_photonic_static_w` adds into the laser/tuning bucket — the
  /// adaptive controller charges its time-averaged ring trimming power here
  /// (zero, the default, leaves the breakdown untouched).
  PowerBreakdown compute(const Network& network, double clock_ghz = 2.0,
                         double extra_photonic_static_w = 0.0) const;

  /// Average energy per ejected packet, in pJ (Fig 8b metric).
  double energy_per_packet_pj(const Network& network, double clock_ghz = 2.0,
                              double extra_photonic_static_w = 0.0) const;

  const PowerParams& params() const { return params_; }

 private:
  PowerParams params_;
  std::optional<ChannelEnergyModel> own_channels_;
  LossBudget loss_budget_;
};

}  // namespace ownsim

// Power-model constants (DSENT-lite substitution, see DESIGN.md §4.1).
//
// The paper fed link/router activity into DSENT v0.91 at bulk 45 nm LVT. We
// replace it with an analytic per-event model whose constants are plausible
// for 45 nm and — more importantly — whose *scaling* matches DSENT's:
// buffer energy per bit, crossbar energy growing with radix, leakage
// dominated by input buffering, and wire energy linear in distance.
//
// Defaults were calibrated once so that the Fig 6 ordering emerges from the
// structure (hop counts x radix), not from per-topology fudge factors; see
// EXPERIMENTS.md for the calibration notes.
#pragma once

namespace ownsim {

struct PowerParams {
  // ---- electrical router (per event) ---------------------------------------
  double buffer_write_pj_per_bit = 0.100;
  double buffer_read_pj_per_bit = 0.060;
  double xbar_base_pj_per_bit = 0.060;
  double xbar_radix_slope_pj_per_bit = 0.0002;  ///< x max(inputs, outputs)
  double alloc_pj_per_op = 0.50;               ///< VCA/SA grant

  // ---- electrical router (leakage) -----------------------------------------
  double leak_mw_per_input_port = 0.25;  ///< includes the port's VC buffers
  double leak_mw_per_output_port = 0.002; ///< drivers only
  double leak_uw_per_crosspoint = 0.5;   ///< inputs x outputs

  // ---- electrical links -----------------------------------------------------
  double wire_pj_per_bit_mm = 0.04;  ///< low-swing global wire at 45 nm

  // ---- photonic --------------------------------------------------------------
  double photonic_dynamic_pj_per_bit = 0.30;  ///< modulator+driver+TIA/RX
  double lambda_rate_gbps = 8.0;              ///< per-wavelength line rate
  /// Thermal ring tuning, per ring. The paper's Fig 6 keeps OptXB cheapest,
  /// i.e. it does not charge tuning power (integration is called out as the
  /// blocker instead); default 0 matches that, and bench_ablation shows the
  /// effect of turning it on.
  double ring_tuning_uw = 0.0;

  // ---- wireless ---------------------------------------------------------------
  /// Transceiver energy for wireless links outside the OWN band plan
  /// (wireless-CMESH's grid links). Its hops are short (~12.5 mm) and built
  /// in the same mm-wave CMOS class as OWN's SR/E2E channels, so the figure
  /// sits near the low end of the Table III model rather than at the
  /// multi-pJ/bit WiNoC-era numbers.
  double legacy_wireless_pj_per_bit = 0.25;
  /// Idle bias (oscillator + LNA) per transceiver pair.
  double wireless_static_mw_per_channel = 1.0;
};

}  // namespace ownsim

// Deterministic, seeded runtime fault campaign.
//
// A `FaultCampaign` wires the link-level reliability protocol
// (fault/protocol.hpp) into a live network and injects mid-run fault events
// through the engine's wake wheel, so lockstep and activity kernels stay
// bit-identical under faults (DESIGN.md §5f):
//
//  * transient flit corruption — every wireless channel and wireless shared
//    medium corrupts flits independently with the per-flit error rate of the
//    campaign BER (by default the link-budget operating point,
//    ber_at_margin(snr_required, margin); see rf/ber.hpp);
//  * channel flaps — a wireless point-to-point link goes down for N cycles:
//    no new launches, in-flight copies retransmit after restoration;
//  * mid-run permanent channel death — the link keeps accepting (wormhole)
//    but every flit pays the exhausted-backoff penalty; after the time K
//    consecutive timeouts take, the persistent-failure detector marks the
//    cluster pair failed and patches the live route table onto the
//    2-wireless-hop degraded paths (topology/own_fault.*) — no rebuild, zero
//    packets lost;
//  * token loss — a shared medium's token freezes (optionally forever); the
//    MAC recovery regenerates it at writer 0 after the configured delay.
//
// The campaign itself is a wake-driven `Clocked`: it evaluates only at event
// and detection cycles, is registered after every network component (its
// mutations at cycle T happen after all component evals of T, identically in
// both kernels), and derives every random stream from the campaign seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/quantity.hpp"
#include "common/types.hpp"
#include "fault/protocol.hpp"
#include "fault/watchdog.hpp"
#include "obs/counters.hpp"
#include "sim/clocked.hpp"
#include "topology/own_fault.hpp"

namespace ownsim {
class Network;
}

namespace ownsim::fault {

/// Campaign-wide fault totals, summed over all channels and media. Plain
/// integers (not obs counters) so acceptance logic works with OWNSIM_OBS=OFF.
struct Totals {
  std::int64_t crc_errors = 0;
  std::int64_t retransmissions = 0;
  std::int64_t token_recoveries = 0;
  std::int64_t flows_degraded = 0;  ///< route-table entries patched online
  std::int64_t watchdog_trips = 0;
};

enum class EventKind : std::uint8_t {
  kFlap,      ///< wireless link down for `down_cycles`, then restored
  kKill,      ///< wireless link dies permanently; detector reroutes
  kTokenLoss  ///< shared medium loses its token until `recovery`
};

/// One scheduled fault event. kFlap and kKill target either a spec link
/// index (`link`, any wireless link on any topology — file: included) or an
/// OWN-256 cluster pair; only the cluster-pair kill form gets the detector's
/// online reroute (it is cluster-level, and needs the 5-class degraded
/// scheme) — a link-index kill leaves the exhausted-backoff rate as the
/// delivered service. kTokenLoss targets a medium.
struct Event {
  Cycle at = 0;  ///< injection cycle (>= 1)
  EventKind kind = EventKind::kFlap;
  int link = -1;         ///< kFlap: spec link index, or -1 to use the pair
  int src_cluster = -1;  ///< kFlap/kKill: OWN-256 source cluster
  int dst_cluster = -1;  ///< kFlap/kKill: OWN-256 destination cluster
  Cycle down_cycles = 200;  ///< kFlap: outage length
  int medium = 0;           ///< kTokenLoss: medium index
  Cycle recovery = 64;      ///< kTokenLoss: cycles until the token
                            ///< regenerates; kNeverCycle = never (deadlock)
};

struct CampaignConfig {
  bool enabled = false;
  std::uint64_t seed = 1;  ///< master seed; all campaign streams derive from it

  /// Per-bit error probability on wireless hops. Negative (default) derives
  /// it from the link-budget operating point: ber_at_margin(snr_required,
  /// margin). Stress campaigns use a negative margin for measurable rates.
  double ber = -1.0;
  Decibels snr_required{17.0};
  Decibels margin{2.5};

  // Reliability-protocol knobs (see fault/protocol.hpp).
  int ack_timeout = 8;
  int max_backoff_exp = 4;
  int max_attempts = 8;
  /// Consecutive timeouts on one channel before the persistent-failure
  /// detector declares it dead and reroutes (clamped to max_attempts).
  int detect_timeouts = 4;

  // Randomly placed events (drawn from `seed`, independent of `events`).
  int random_flaps = 0;          ///< flaps on random wireless links
  Cycle flap_down_cycles = 200;  ///< outage length of random flaps
  Cycle horizon = 4000;          ///< random event cycles drawn from [1, horizon]

  std::vector<Event> events;  ///< scripted events (any order; sorted by `at`)

  bool watchdog = false;
  Cycle watchdog_window = 20000;
  std::ostream* diagnostics = nullptr;  ///< watchdog dump target (null: cerr)
};

/// The campaign's effective per-bit error probability (explicit `ber`, or
/// the link-budget operating point when negative).
double resolve_ber(const CampaignConfig& config);

class FaultCampaign final : public Clocked {
 public:
  /// Validates the config against `network`'s spec and pre-computes the
  /// event schedule. Throws std::invalid_argument on events the topology
  /// cannot express (cluster-pair events without an OWN-256 wireless plan,
  /// kill events without the 5-class degraded route scheme, token loss on a
  /// medium without token arbitration, out-of-range indices).
  FaultCampaign(Network* network, CampaignConfig config);

  /// Arms the fault models on every wireless channel/medium and registers
  /// the campaign (and watchdog, if enabled) with the network's engine.
  /// Call once, after all other components are registered and before the
  /// first cycle.
  void attach();

  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}

  /// Purely wake-driven: dormant between event/detection cycles.
  bool is_idle() const override { return true; }

  /// Sums fault counters over all channels and media, plus campaign state.
  Totals totals() const;

  const Protocol& protocol() const { return protocol_; }
  const FaultSet& faults() const { return faults_; }
  Watchdog* watchdog() { return watchdog_.get(); }
  bool watchdog_tripped() const {
    return watchdog_ != nullptr && watchdog_->tripped();
  }

 private:
  struct PendingDetection {
    Cycle at;
    int src_cluster;
    int dst_cluster;
  };

  std::size_t channel_for(int src_cluster, int dst_cluster) const;
  void apply(const Event& event, Cycle now);
  void detect(int src_cluster, int dst_cluster);
  void arm_wake(Cycle now);

  Network* network_;
  CampaignConfig config_;
  Protocol protocol_;
  std::vector<std::size_t> wireless_links_;  ///< spec indices, kWireless
  bool own256_mode_ = false;  ///< cluster-pair events resolvable
  std::size_t pair_link_[4][4];  ///< cluster pair -> spec link index
  std::vector<Event> events_;    ///< sorted by `at` (stable)
  std::size_t next_event_ = 0;
  std::vector<PendingDetection> detections_;
  FaultSet faults_;
  std::int64_t flows_degraded_ = 0;
  obs::Counter obs_flows_degraded_;
  std::unique_ptr<Watchdog> watchdog_;
  bool attached_ = false;
};

}  // namespace ownsim::fault

#include "fault/watchdog.hpp"

#include <iostream>
#include <stdexcept>

#include "network/network.hpp"

namespace ownsim::fault {

Watchdog::Watchdog(Network* network, Cycle window, std::ostream* diagnostics)
    : network_(network), window_(window), diagnostics_(diagnostics) {
  if (network_ == nullptr) {
    throw std::invalid_argument("Watchdog: network must not be null");
  }
  if (window_ < 1) {
    throw std::invalid_argument("Watchdog: window must be >= 1");
  }
  obs_trips_ = network_->obs().counter("fault.watchdog_trips");
}

void Watchdog::eval(Cycle now) {
  // Sampling cycles form a deterministic sequence; under lockstep the evals
  // between samples fall through here, matching the activity kernel's
  // dormancy exactly.
  if (tripped_ || now < next_check_) return;
  const std::int64_t ejected = network_->nic().flits_ejected();
  if (last_ejected_ >= 0 && network_->nic().packets_in_flight() > 0 &&
      ejected == last_ejected_) {
    trip(now);
    return;
  }
  last_ejected_ = ejected;
  next_check_ = now + window_;
  request_wake(next_check_);
}

void Watchdog::trip(Cycle now) {
  ++trips_;
  obs_trips_.inc();
  tripped_ = true;
  std::ostream& os = diagnostics_ != nullptr ? *diagnostics_ : std::cerr;
  const Engine& engine = network_->engine();
  os << "=== watchdog trip @ cycle " << now << " ===\n"
     << "no flit ejected for " << window_ << " cycles with "
     << network_->nic().packets_in_flight() << " packet(s) in flight\n"
     << "engine: stepped=" << engine.stats().cycles_stepped
     << " skipped=" << engine.stats().cycles_skipped
     << " evals=" << engine.stats().evals
     << " wakes=" << engine.stats().wakes << "\n"
     << "nic: injected=" << network_->nic().flits_injected()
     << " ejected=" << network_->nic().flits_ejected() << "\n";
  const int num_routers = network_->spec().num_routers();
  for (RouterId r = 0; r < num_routers; ++r) {
    const Router& router = network_->router(r);
    if (router.occupancy() == 0) continue;
    os << "router " << r << " (occupancy " << router.occupancy() << "):\n";
    router.dump_state(os);
  }
  for (std::size_t i = 0; i < network_->num_network_channels(); ++i) {
    network_->network_channel(i).dump_state(os);  // silent when empty
  }
  os << "obs: ";
  network_->obs().write_json(os);
  os << "\n=== end watchdog dump ===" << std::endl;
  source_.request_cancel();
}

}  // namespace ownsim::fault

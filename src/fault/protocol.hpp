// Link-level reliability protocol parameters (modeled CRC + ACK/NACK).
//
// Wireless hops carry a per-flit error-detecting code. The receiver checks
// it on arrival; a failed check NACKs the flit and the sender retransmits
// from its retransmit buffer after a bounded-exponential backoff:
//
//   delay(attempt) = ack_timeout << min(attempt, max_backoff_exp)
//
// `ack_timeout` covers detection + the NACK's return trip, so it must be at
// least the channel round trip (enforced as >= 2 cycles by the attach
// points). After `max_attempts` failed receptions the model forces a clean
// reception — retransmit-until-success with a bounded total delay — so a
// transiently noisy channel never loses a flit, it only pays latency. A
// *dead* channel charges the full exhausted-backoff penalty per flit until
// the persistent-failure detector reroutes around it (fault/campaign.*).
//
// The per-bit error probability comes from the link-budget operating point:
// ber_at_margin(snr_required, margin) — see rf/ber.hpp. Per-flit error
// probability follows from independent bit errors.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/types.hpp"

namespace ownsim::fault {

/// Probability that a `bits`-bit flit fails its CRC (>= 1 bit flipped) at a
/// given per-bit error probability. Free so a hop with a *live* BER — the
/// thermal/variation adaptation loop overrides the protocol's static
/// operating point per channel (adapt/controller.hpp) — shares the exact
/// formula with the static path.
inline double flit_error_rate(double ber, std::uint32_t bits) {
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  // 1 - (1-ber)^bits, computed in log space for tiny BERs.
  return -std::expm1(static_cast<double>(bits) * std::log1p(-ber));
}

struct Protocol {
  double ber = 0.0;         ///< per-bit error probability on protected hops
  int ack_timeout = 8;      ///< cycles per NACK round trip (>= 2)
  int max_backoff_exp = 4;  ///< backoff growth cap: delay <= ack_timeout<<exp
  int max_attempts = 8;     ///< forced-success bound (retransmit-until-success)

  /// Probability that a `bits`-bit flit fails its CRC (>= 1 bit flipped).
  double flit_error_rate(std::uint32_t bits) const {
    return fault::flit_error_rate(ber, bits);
  }

  /// Extra delivery delay charged for failed reception number `attempt`
  /// (0-based): NACK round trip plus bounded exponential backoff.
  Cycle backoff_delay(int attempt) const {
    const int exp = std::min(attempt, max_backoff_exp);
    return static_cast<Cycle>(ack_timeout) << exp;
  }

  /// Total delay of an exhausted retransmission sequence (a dead channel's
  /// per-flit penalty): sum of backoff_delay over all max_attempts rounds.
  Cycle exhausted_delay() const {
    Cycle total = 0;
    for (int i = 0; i < max_attempts; ++i) total += backoff_delay(i);
    return total;
  }
};

}  // namespace ownsim::fault

#include "fault/campaign.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "network/network.hpp"
#include "rf/ber.hpp"
#include "topology/own.hpp"
#include "wireless/channel_alloc.hpp"

namespace ownsim::fault {
namespace {

constexpr std::size_t kUnmapped = static_cast<std::size_t>(-1);

// Sub-stream ids carved out of the campaign seed (common/rng.hpp
// derive_seed). Channels and media get disjoint blocks; 7 feeds the
// random-event placement.
constexpr std::uint64_t kStreamEvents = 7;
constexpr std::uint64_t kStreamChannels = 100;
constexpr std::uint64_t kStreamMedia = 100000;

}  // namespace

double resolve_ber(const CampaignConfig& config) {
  if (config.ber >= 0.0) return config.ber;
  return ber_at_margin(config.snr_required, config.margin);
}

FaultCampaign::FaultCampaign(Network* network, CampaignConfig config)
    : network_(network), config_(std::move(config)) {
  if (network_ == nullptr) {
    throw std::invalid_argument("FaultCampaign: network must not be null");
  }
  if (config_.ack_timeout < 2 || config_.max_backoff_exp < 0 ||
      config_.max_attempts < 1 || config_.detect_timeouts < 1) {
    throw std::invalid_argument("FaultCampaign: bad protocol knobs");
  }
  protocol_.ber = resolve_ber(config_);
  protocol_.ack_timeout = config_.ack_timeout;
  protocol_.max_backoff_exp = config_.max_backoff_exp;
  protocol_.max_attempts = config_.max_attempts;

  for (auto& row : pair_link_) {
    for (auto& slot : row) slot = kUnmapped;
  }
  const NetworkSpec& spec = network_->spec();
  for (std::size_t i = 0; i < spec.links.size(); ++i) {
    if (spec.links[i].medium != MediumType::kWireless) continue;
    wireless_links_.push_back(i);
    if (spec.num_routers() != 64 || spec.links[i].wireless_channel < 0) {
      continue;
    }
    // OWN-256: LinkSpec::wireless_channel is the Table I channel id, which
    // identifies the cluster pair.
    for (const OwnChannel& ch : own256_channels()) {
      if (ch.id == spec.links[i].wireless_channel) {
        pair_link_[ch.src_cluster][ch.dst_cluster] = i;
        own256_mode_ = true;
        break;
      }
    }
  }

  events_ = config_.events;
  for (const Event& event : events_) {
    if (event.at < 1) {
      throw std::invalid_argument("FaultCampaign: events start at cycle 1");
    }
    switch (event.kind) {
      case EventKind::kFlap:
        if (event.down_cycles < 1) {
          throw std::invalid_argument("FaultCampaign: flap needs >=1 cycle");
        }
        if (event.link >= 0) {
          if (static_cast<std::size_t>(event.link) >= spec.links.size() ||
              spec.links[static_cast<std::size_t>(event.link)].medium !=
                  MediumType::kWireless) {
            throw std::invalid_argument(
                "FaultCampaign: flap link is not a wireless link");
          }
        } else {
          (void)channel_for(event.src_cluster, event.dst_cluster);
        }
        break;
      case EventKind::kKill:
        if (event.link >= 0) {
          // Link-index form: kills any wireless point-to-point link on any
          // topology (file: included). No reroute — the exhausted-backoff
          // rate is the delivered service; detection/rerouting stays an
          // OWN-256 cluster-pair feature.
          if (static_cast<std::size_t>(event.link) >= spec.links.size() ||
              spec.links[static_cast<std::size_t>(event.link)].medium !=
                  MediumType::kWireless) {
            throw std::invalid_argument(
                "FaultCampaign: kill link is not a wireless link");
          }
        } else {
          (void)channel_for(event.src_cluster, event.dst_cluster);
          if (spec.vc_classes.size() != 5) {
            throw std::invalid_argument(
                "FaultCampaign: cluster-pair kill events need the degraded "
                "5-class route scheme (build the network with "
                "build_own256_faulted)");
          }
        }
        break;
      case EventKind::kTokenLoss:
        if (event.medium < 0 ||
            static_cast<std::size_t>(event.medium) >= network_->num_media()) {
          throw std::invalid_argument(
              "FaultCampaign: token-loss medium index out of range");
        }
        if (network_->medium(static_cast<std::size_t>(event.medium))
                .params()
                .arbitration != ArbitrationKind::kTokenRing) {
          throw std::invalid_argument(
              "FaultCampaign: token loss needs token-ring arbitration");
        }
        if (event.recovery != kNeverCycle && event.recovery < 1) {
          throw std::invalid_argument(
              "FaultCampaign: token recovery must be >= 1 or kNeverCycle");
        }
        break;
    }
  }

  if (config_.random_flaps > 0) {
    if (wireless_links_.empty()) {
      throw std::invalid_argument(
          "FaultCampaign: random flaps need wireless links in the topology");
    }
    if (config_.horizon < 1 || config_.flap_down_cycles < 1) {
      throw std::invalid_argument("FaultCampaign: bad random-flap window");
    }
    Rng rng(derive_seed(config_.seed, kStreamEvents));
    for (int i = 0; i < config_.random_flaps; ++i) {
      Event event;
      event.kind = EventKind::kFlap;
      event.link = static_cast<int>(
          wireless_links_[rng.below(wireless_links_.size())]);
      event.at = 1 + static_cast<Cycle>(
                         rng.below(static_cast<std::uint64_t>(config_.horizon)));
      event.down_cycles = config_.flap_down_cycles;
      events_.push_back(event);
    }
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
}

void FaultCampaign::attach() {
  if (attached_) {
    throw std::logic_error("FaultCampaign::attach: already attached");
  }
  attached_ = true;
  obs::Registry& registry = network_->obs();
  for (const std::size_t i : wireless_links_) {
    network_->network_channel_mut(i).set_fault_model(
        &protocol_, Rng(derive_seed(config_.seed, kStreamChannels + i)),
        &registry);
  }
  for (std::size_t m = 0; m < network_->num_media(); ++m) {
    SharedMedium& medium = network_->medium_mut(m);
    // Transit corruption models the wireless hops; photonic media still get
    // the registry binding (token loss counts recoveries on any medium).
    const bool wireless = medium.params().medium == MediumType::kWireless;
    medium.set_fault_model(wireless ? &protocol_ : nullptr,
                           Rng(derive_seed(config_.seed, kStreamMedia + m)),
                           &registry);
  }
  obs_flows_degraded_ = registry.counter("fault.flows_degraded");
  network_->engine().add(this);
  if (config_.watchdog) {
    watchdog_ = std::make_unique<Watchdog>(network_, config_.watchdog_window,
                                           config_.diagnostics);
    network_->engine().add(watchdog_.get());
  }
  arm_wake(network_->engine().now());
}

void FaultCampaign::eval(Cycle now) {
  while (next_event_ < events_.size() && events_[next_event_].at <= now) {
    apply(events_[next_event_], now);
    ++next_event_;
  }
  for (std::size_t i = 0; i < detections_.size();) {
    if (detections_[i].at <= now) {
      const PendingDetection due = detections_[i];
      detections_[i] = detections_.back();
      detections_.pop_back();
      detect(due.src_cluster, due.dst_cluster);
    } else {
      ++i;
    }
  }
  arm_wake(now);
}

std::size_t FaultCampaign::channel_for(int src_cluster,
                                       int dst_cluster) const {
  if (src_cluster < 0 || src_cluster > 3 || dst_cluster < 0 ||
      dst_cluster > 3 || src_cluster == dst_cluster || !own256_mode_ ||
      pair_link_[src_cluster][dst_cluster] == kUnmapped) {
    throw std::invalid_argument(
        "FaultCampaign: no wireless channel for cluster pair " +
        std::to_string(src_cluster) + "->" + std::to_string(dst_cluster));
  }
  return pair_link_[src_cluster][dst_cluster];
}

void FaultCampaign::apply(const Event& event, Cycle now) {
  switch (event.kind) {
    case EventKind::kFlap: {
      const std::size_t link =
          event.link >= 0 ? static_cast<std::size_t>(event.link)
                          : channel_for(event.src_cluster, event.dst_cluster);
      network_->network_channel_mut(link).set_outage(now + event.down_cycles,
                                                     now);
      break;
    }
    case EventKind::kKill: {
      if (event.link >= 0) {
        network_->network_channel_mut(static_cast<std::size_t>(event.link))
            .set_dying(now);
        break;
      }
      const std::size_t link =
          channel_for(event.src_cluster, event.dst_cluster);
      network_->network_channel_mut(link).set_dying(now);
      // The detector sees the channel as dead after K consecutive timeouts,
      // which is the time the first post-death flit spends in its first K
      // retransmission rounds.
      Cycle delay = 0;
      const int k = std::min(config_.detect_timeouts, protocol_.max_attempts);
      for (int i = 0; i < k; ++i) delay += protocol_.backoff_delay(i);
      detections_.push_back({now + delay, event.src_cluster,
                             event.dst_cluster});
      break;
    }
    case EventKind::kTokenLoss: {
      SharedMedium& medium =
          network_->medium_mut(static_cast<std::size_t>(event.medium));
      const Cycle recover_at = event.recovery == kNeverCycle
                                   ? kNeverCycle
                                   : now + event.recovery;
      medium.lose_token(now, recover_at);
      // The loss takes effect from the medium's next eval; force it into the
      // active set (it may be dormant right now).
      medium.request_wake(now + 1);
      break;
    }
  }
}

void FaultCampaign::detect(int src_cluster, int dst_cluster) {
  if (faults_.is_failed(src_cluster, dst_cluster)) return;
  faults_.fail(src_cluster, dst_cluster);
  // Online route patch: recompute every (router, destination) entry under
  // the updated fault set and write back only the changes. The routing
  // oracle reads the live table, so rerouting takes effect at the next
  // route computation; in-network packets keep their already-computed path
  // (they still drain — a dying channel never drops flits).
  const int num_routers = network_->spec().num_routers();
  std::int64_t changed = 0;
  for (RouterId r = 0; r < num_routers; ++r) {
    for (RouterId d = 0; d < num_routers; ++d) {
      if (d == r) continue;
      const int rc = r / kOwnTilesPerCluster;
      const int dc = d / kOwnTilesPerCluster;
      if (rc != dc && faults_.is_failed(rc, dc) &&
          faults_.transit_for(rc, dc) < 0) {
        // Unrecoverable pair (no alive transit): keep the stale route; the
        // dying channel still delivers, just at the exhausted-backoff rate.
        continue;
      }
      const RouteEntry fresh = own256_fault_route_entry(r, d, faults_);
      const RouteEntry& current =
          network_->spec().route_table[static_cast<std::size_t>(r)]
                                      [static_cast<std::size_t>(d)];
      if (current.out_port != fresh.out_port ||
          current.vc_class != fresh.vc_class) {
        network_->set_route(r, d, fresh);
        ++changed;
      }
    }
  }
  flows_degraded_ += changed;
  obs_flows_degraded_.add(changed);
}

void FaultCampaign::arm_wake(Cycle now) {
  Cycle at = kNeverCycle;
  if (next_event_ < events_.size()) at = std::min(at, events_[next_event_].at);
  for (const PendingDetection& pending : detections_) {
    at = std::min(at, pending.at);
  }
  if (at == kNeverCycle) return;
  request_wake(std::max(at, now + 1));
}

Totals FaultCampaign::totals() const {
  Totals t;
  for (std::size_t i = 0; i < network_->num_network_channels(); ++i) {
    const LinkFaultCounters& fc = network_->network_channel(i).fault_counters();
    t.crc_errors += fc.crc_errors;
    t.retransmissions += fc.retransmissions;
  }
  for (std::size_t m = 0; m < network_->num_media(); ++m) {
    const MediumCounters& mc = network_->medium(m).counters();
    t.crc_errors += mc.crc_errors;
    t.retransmissions += mc.retransmissions;
    t.token_recoveries += mc.token_recoveries;
  }
  t.flows_degraded = flows_degraded_;
  t.watchdog_trips = watchdog_ != nullptr ? watchdog_->trips() : 0;
  return t;
}

}  // namespace ownsim::fault

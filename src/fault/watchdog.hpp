// No-progress watchdog: converts a hung simulation into diagnostics + abort.
//
// Fault injection creates states a healthy simulator never reaches (a lost
// token that is never recovered deadlocks every writer on that medium). The
// watchdog samples total deliveries every `window` cycles; if packets are in
// flight and *zero* flits were ejected over a whole window, it dumps a
// diagnostic snapshot (engine stats, NIC totals, per-router occupancy, obs
// counters) and requests cooperative cancellation, which the measurement
// runner's existing token path turns into an aborted — not hanging — run.
//
// Semantics: the watchdog detects a TOTAL delivery stall. A network that is
// merely congested (some deliveries per window) never trips; distinguishing
// "slow" from "stuck" per-flow is out of scope (DESIGN.md §5f).
//
// Trip bound: a stall starting at cycle t is caught by the first sample at
// least one full window after it, i.e. within t + 2*window (+ the runner's
// cancellation poll period). Both kernels trip at the same cycle: sampling
// cycles are a deterministic arithmetic sequence, enforced by `next_check_`
// so lockstep's extra evals are no-ops.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "common/types.hpp"
#include "exec/cancellation.hpp"
#include "obs/counters.hpp"
#include "sim/clocked.hpp"

namespace ownsim {
class Network;
}

namespace ownsim::fault {

class Watchdog final : public Clocked {
 public:
  /// Samples progress every `window` cycles (>= 1). `diagnostics` receives
  /// the dump on a trip; null means std::cerr.
  Watchdog(Network* network, Cycle window, std::ostream* diagnostics);

  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}

  /// Purely wake-driven: dormant between samples, woken by its own
  /// `request_wake(next_check_)`.
  bool is_idle() const override { return true; }

  bool tripped() const { return tripped_; }
  int trips() const { return trips_; }

  /// Cancellation token for the measurement runner: set as the run's
  /// cancellation so a trip aborts the run at the next poll.
  exec::CancellationToken token() const { return source_.token(); }

 private:
  void trip(Cycle now);

  Network* network_;
  Cycle window_;
  std::ostream* diagnostics_;
  exec::CancellationSource source_;
  Cycle next_check_ = 0;
  std::int64_t last_ejected_ = -1;  ///< -1: no baseline sample yet
  bool tripped_ = false;
  int trips_ = 0;
  obs::Counter obs_trips_;
};

}  // namespace ownsim::fault

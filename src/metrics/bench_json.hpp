// Machine-readable bench output: schema-versioned JSONL records that
// tools/perf_compare.py diffs against bench/baselines/*.json.
//
// Each bench binary builds one (or a few) BenchRecord values and calls
// emit_bench_json(). Emission is opt-in via the environment:
//
//   OWNSIM_BENCH_JSON=<path>   append one JSON object per record (JSONL)
//   OWNSIM_BENCH_QUICK=1      run the reduced "quick" phase preset (CI)
//
// Metrics carry a `deterministic` flag: simulated quantities (throughput,
// latency, counters) must be bit-stable across runs and are compared with a
// tight tolerance, while wall-clock metrics (seconds) get a loose one.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ownsim {

/// Bump when the record layout changes; perf_compare.py accepts v1 and v2
/// (v2 added `threads` + `kernel` so one bench can record per-kernel rows).
inline constexpr int kBenchSchemaVersion = 2;

struct BenchMetric {
  std::string name;               ///< unique within the record
  double value = 0.0;
  std::string unit;               ///< "flits/node/cycle", "s", "cycles", ...
  bool deterministic = true;      ///< simulated quantity vs wall-clock
  std::string better = "higher";  ///< "higher" | "lower" | "either"
};

struct BenchRecord {
  std::string bench;      ///< binary name, e.g. "bench_fig7a"
  std::string paper_ref;  ///< figure/table the bench reproduces
  std::string config;     ///< phase preset: "quick" or "full"
  /// Schema v2: execution context of the record. Part of the baseline key
  /// (bench, config, kernel, threads), so the same bench can record one row
  /// per kernel/thread-count without the rows clobbering each other.
  int threads = 1;               ///< simulation worker threads
  std::string kernel = "activity";  ///< "activity" | "lockstep" | "parallel"
  std::vector<BenchMetric> metrics;
};

/// True when OWNSIM_BENCH_QUICK is set (and not "0"): benches should use the
/// reduced phase preset so CI smoke runs finish in seconds.
bool bench_quick_mode();

/// Writes `record` as a single-line JSON object (no trailing newline).
void write_bench_record_json(std::ostream& os, const BenchRecord& record);

/// Appends `record` as one JSONL line to the file named by OWNSIM_BENCH_JSON.
/// Returns false (and stays silent) when the variable is unset; throws
/// std::runtime_error when the file cannot be opened.
bool emit_bench_json(const BenchRecord& record);

/// Wall-clock stopwatch for bench telemetry. Lives here (src/metrics) so
/// bench binaries get elapsed seconds without touching std::chrono clocks
/// directly, which the determinism lint forbids outside telemetry paths.
class WallTimer {
 public:
  WallTimer();
  /// Seconds since construction (monotonic).
  double seconds() const;

 private:
  std::int64_t start_ns_ = 0;
};

}  // namespace ownsim

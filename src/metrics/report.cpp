#include "metrics/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/numfmt.hpp"

namespace ownsim {
namespace {

/// "1234" -> "1.2k", "1234567" -> "1.2M": compact cycle counts for one-line
/// telemetry output.
std::string compact_count(std::int64_t value) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  const double v = static_cast<double>(value);
  if (value >= 1000000000) {
    os << v / 1e9 << 'G';
  } else if (value >= 1000000) {
    os << v / 1e6 << 'M';
  } else if (value >= 1000) {
    os << v / 1e3 << 'k';
  } else {
    os << value;
  }
  return os.str();
}

}  // namespace

NetworkReport::NetworkReport(const Network& network) {
  elapsed_ = network.engine().now();
  if (elapsed_ <= 0) {
    throw std::logic_error("NetworkReport: network has not simulated yet");
  }
  const double cycles = static_cast<double>(elapsed_);

  channels_.reserve(network.num_network_channels() + network.num_media());
  for (std::size_t i = 0; i < network.num_network_channels(); ++i) {
    const Channel& channel = network.network_channel(i);
    ChannelUtilization util;
    util.name = channel.name();
    util.medium = channel.medium();
    util.shared = false;
    util.flits = channel.counters().flits;
    util.utilization = static_cast<double>(util.flits) /
                       (cycles / channel.cycles_per_flit());
    channels_.push_back(std::move(util));
  }
  for (std::size_t i = 0; i < network.num_media(); ++i) {
    const SharedMedium& medium = network.medium(i);
    ChannelUtilization util;
    util.name = medium.params().name;
    util.medium = medium.params().medium;
    util.shared = true;
    util.flits = medium.counters().flits;
    util.utilization = static_cast<double>(util.flits) /
                       (cycles / medium.params().cycles_per_flit);
    util.token_wait_share =
        static_cast<double>(medium.counters().token_wait_cycles) / cycles;
    channels_.push_back(std::move(util));
  }

  routers_.reserve(static_cast<std::size_t>(network.spec().num_routers()));
  for (RouterId r = 0; r < network.spec().num_routers(); ++r) {
    RouterActivity activity;
    activity.id = r;
    activity.crossbar_flits = network.router(r).counters().crossbar_flits;
    activity.crossbar_load =
        static_cast<double>(activity.crossbar_flits) / cycles;
    routers_.push_back(activity);
  }

  counters_.reserve(network.obs().size());
  network.obs().for_each([this](const std::string& name, std::int64_t value) {
    counters_.emplace_back(name, value);
  });
}

const ChannelUtilization& NetworkReport::hottest_channel() const {
  return *std::max_element(channels_.begin(), channels_.end(),
                           [](const auto& a, const auto& b) {
                             return a.utilization < b.utilization;
                           });
}

const RouterActivity& NetworkReport::hottest_router() const {
  return *std::max_element(routers_.begin(), routers_.end(),
                           [](const auto& a, const auto& b) {
                             return a.crossbar_load < b.crossbar_load;
                           });
}

double NetworkReport::mean_utilization(MediumType medium) const {
  double sum = 0.0;
  int count = 0;
  for (const auto& channel : channels_) {
    if (channel.medium != medium) continue;
    sum += channel.utilization;
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

double NetworkReport::max_utilization(MediumType medium) const {
  double max = 0.0;
  for (const auto& channel : channels_) {
    if (channel.medium == medium) max = std::max(max, channel.utilization);
  }
  return max;
}

void NetworkReport::write_channels_csv(std::ostream& os) const {
  os << "name,medium,shared,flits,utilization,token_wait_share\n";
  for (const auto& c : channels_) {
    os << c.name << ',' << to_string(c.medium) << ',' << (c.shared ? 1 : 0)
       << ',' << c.flits << ',' << c.utilization << ',' << c.token_wait_share
       << '\n';
  }
}

void NetworkReport::write_routers_csv(std::ostream& os) const {
  os << "router,crossbar_flits,crossbar_load\n";
  for (const auto& r : routers_) {
    os << r.id << ',' << r.crossbar_flits << ',' << r.crossbar_load << '\n';
  }
}

void NetworkReport::write_json(std::ostream& os) const {
  os << "{\n  \"elapsed_cycles\": " << elapsed_ << ",\n  \"channels\": [";
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const auto& c = channels_[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << c.name
       << "\", \"medium\": \"" << to_string(c.medium)
       << "\", \"shared\": " << (c.shared ? "true" : "false")
       << ", \"flits\": " << c.flits << ", \"utilization\": " << c.utilization
       << ", \"token_wait_share\": " << c.token_wait_share << "}";
  }
  os << "\n  ],\n  \"routers\": [";
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    const auto& r = routers_[i];
    os << (i == 0 ? "" : ",") << "\n    {\"id\": " << r.id
       << ", \"crossbar_flits\": " << r.crossbar_flits
       << ", \"crossbar_load\": " << r.crossbar_load << "}";
  }
  os << "\n  ],\n  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\n    \"" << counters_[i].first
       << "\": " << counters_[i].second;
  }
  os << "\n  }\n}\n";
}

std::string sweep_telemetry_summary(const SweepTelemetry& telemetry) {
  std::ostringstream os;
  os << telemetry.points_run << " points";
  if (telemetry.points_cancelled > 0) {
    os << " (" << telemetry.points_cancelled << " cancelled)";
  }
  os << " on " << telemetry.threads
     << (telemetry.threads == 1 ? " thread: " : " threads: ")
     << compact_count(telemetry.cycles_simulated) << " cycles in "
     << std::fixed << std::setprecision(2) << telemetry.wall_seconds << " s";
  return os.str();
}

void write_sweep_telemetry_json(std::ostream& os,
                                const SweepTelemetry& telemetry) {
  os << "{\"threads\": " << telemetry.threads
     << ", \"points_run\": " << telemetry.points_run
     << ", \"points_cancelled\": " << telemetry.points_cancelled
     << ", \"cycles_simulated\": " << telemetry.cycles_simulated
     << ", \"wall_seconds\": " << telemetry.wall_seconds << "}\n";
}

std::string run_profile_summary(const RunResult& result) {
  const RunProfile& p = result.profile;
  std::ostringstream os;
  os << compact_count(result.cycles_simulated) << " cycles in " << std::fixed
     << std::setprecision(2) << p.wall_seconds << " s ("
     << compact_count(static_cast<std::int64_t>(p.cycles_per_second))
     << " cycles/s)";
  if (p.peak_rss_bytes > 0) {
    os << ", peak RSS " << std::setprecision(1)
       << static_cast<double>(p.peak_rss_bytes) / (1024.0 * 1024.0) << " MB";
  }
  os << " [warmup " << std::setprecision(2) << p.warmup_seconds
     << " / measure " << p.measure_seconds << " / drain " << p.drain_seconds
     << " s]";
  return os.str();
}

void write_run_profile_json(std::ostream& os, const RunResult& result) {
  const RunProfile& p = result.profile;
  os << "{\"wall_seconds\": " << p.wall_seconds
     << ", \"warmup_seconds\": " << p.warmup_seconds
     << ", \"measure_seconds\": " << p.measure_seconds
     << ", \"drain_seconds\": " << p.drain_seconds
     << ", \"cycles_simulated\": " << result.cycles_simulated
     << ", \"cycles_per_second\": " << p.cycles_per_second
     << ", \"peak_rss_bytes\": " << p.peak_rss_bytes << "}\n";
}

void append_run_result_canonical_json(std::string& out,
                                      const RunResult& result) {
  // Keys in sorted order so a parse -> dump round trip through the serve
  // JSON layer (sorted std::map) reproduces these bytes exactly.
  out += "{\"avg_hops\":";
  out += format_double(result.avg_hops);
  out += ",\"avg_latency\":";
  out += format_double(result.avg_latency);
  out += ",\"avg_net_latency\":";
  out += format_double(result.avg_net_latency);
  out += ",\"cancelled\":";
  out += result.cancelled ? "true" : "false";
  out += ",\"cycles_simulated\":";
  out += format_int(result.cycles_simulated);
  out += ",\"drained\":";
  out += result.drained ? "true" : "false";
  out += ",\"latency_histogram\":{\"bin_width\":";
  out += format_double(result.latency_histogram.bin_width());
  // Sparse nonzero bins as [index, count] pairs: an ARRAY, not an object
  // with numeric-string keys, so the ascending-index order survives a parse
  // -> dump round trip (JSON object keys would re-sort lexicographically).
  out += ",\"bins\":[";
  const auto& counts = result.latency_histogram.counts();
  bool first = true;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "[";
    out += format_uint(i);
    out += ",";
    out += format_int(counts[i]);
    out += "]";
  }
  out += "],\"lo\":";
  out += format_double(result.latency_histogram.bin_lo(0));
  out += ",\"overflow\":";
  out += format_int(result.latency_histogram.overflow());
  out += ",\"total\":";
  out += format_int(result.latency_histogram.total());
  out += ",\"underflow\":";
  out += format_int(result.latency_histogram.underflow());
  out += "},\"max_latency\":";
  out += format_double(result.max_latency);
  out += ",\"measured_packets\":";
  out += format_int(result.measured_packets);
  out += ",\"offered_rate\":";
  out += format_double(result.offered_rate);
  out += ",\"p50_latency\":";
  out += format_double(result.p50_latency);
  out += ",\"p99_latency\":";
  out += format_double(result.p99_latency);
  out += ",\"throughput\":";
  out += format_double(result.throughput);
  out += "}";
}

std::string sweep_progress_line(const SweepProgress& progress) {
  std::ostringstream os;
  os << '[' << std::setw(2) << progress.completed << '/' << progress.total
     << "] ";
  if (progress.rate < 0.0) {
    os << "zero-load probe";
  } else {
    os << "rate " << std::fixed << std::setprecision(4) << progress.rate;
  }
  os << "  " << compact_count(progress.cycles_simulated) << " cycles  "
     << std::fixed << std::setprecision(2) << progress.wall_seconds << " s";
  return os.str();
}

}  // namespace ownsim

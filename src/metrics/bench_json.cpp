#include "metrics/bench_json.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "obs/trace.hpp"  // json_escape

namespace ownsim {
namespace {

/// Round-trippable double: enough digits that Python's json.loads sees the
/// exact value the bench computed (deterministic metrics diff at ~1e-9).
std::string json_number(double value) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
  return os.str();
}

}  // namespace

bool bench_quick_mode() {
  const char* quick = std::getenv("OWNSIM_BENCH_QUICK");
  return quick != nullptr && *quick != '\0' &&
         std::string_view(quick) != "0";
}

void write_bench_record_json(std::ostream& os, const BenchRecord& record) {
  os << "{\"schema_version\": " << kBenchSchemaVersion << ", \"bench\": \""
     << obs::json_escape(record.bench) << "\", \"paper_ref\": \""
     << obs::json_escape(record.paper_ref) << "\", \"config\": \""
     << obs::json_escape(record.config) << "\", \"threads\": "
     << record.threads << ", \"kernel\": \""
     << obs::json_escape(record.kernel) << "\", \"metrics\": [";
  for (std::size_t i = 0; i < record.metrics.size(); ++i) {
    const BenchMetric& m = record.metrics[i];
    os << (i == 0 ? "" : ", ") << "{\"name\": \"" << obs::json_escape(m.name)
       << "\", \"value\": " << json_number(m.value) << ", \"unit\": \""
       << obs::json_escape(m.unit)
       << "\", \"deterministic\": " << (m.deterministic ? "true" : "false")
       << ", \"better\": \"" << obs::json_escape(m.better) << "\"}";
  }
  os << "]}";
}

bool emit_bench_json(const BenchRecord& record) {
  const char* path = std::getenv("OWNSIM_BENCH_JSON");
  if (path == nullptr || *path == '\0') return false;
  std::ofstream out(path, std::ios::app);
  if (!out) {
    throw std::runtime_error(std::string("emit_bench_json: cannot open ") +
                             path);
  }
  write_bench_record_json(out, record);
  out << '\n';
  return true;
}

WallTimer::WallTimer()
    : start_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

double WallTimer::seconds() const {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now_ns - start_ns_) * 1e-9;
}

}  // namespace ownsim

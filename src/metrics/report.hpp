// Post-run reporting: per-link/medium utilization, per-router activity and
// machine-readable exports (CSV / JSON) for downstream analysis or plotting.
//
// Utilization of a channel = flit-slots used / flit-slots available
// (elapsed / cycles_per_flit), i.e. 1.0 means the serialization budget was
// fully consumed — the quantity the bisection normalization reasons about.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "metrics/sweep.hpp"
#include "network/network.hpp"

namespace ownsim {

struct ChannelUtilization {
  std::string name;
  MediumType medium = MediumType::kElectrical;
  bool shared = false;        ///< SharedMedium vs point-to-point link
  std::int64_t flits = 0;
  double utilization = 0.0;   ///< [0, 1]
  double token_wait_share = 0.0;  ///< shared media: waiting cycles / elapsed
};

struct RouterActivity {
  RouterId id = 0;
  std::int64_t crossbar_flits = 0;
  double crossbar_load = 0.0;  ///< flits per cycle through the crossbar
};

class NetworkReport {
 public:
  /// Snapshots utilization/activity after (part of) a simulation.
  explicit NetworkReport(const Network& network);

  const std::vector<ChannelUtilization>& channels() const { return channels_; }
  const std::vector<RouterActivity>& routers() const { return routers_; }
  /// Snapshot of the network's obs counter registry (name-sorted; empty when
  /// the registry is compiled out with OWNSIM_OBS=OFF).
  const std::vector<std::pair<std::string, std::int64_t>>& counters() const {
    return counters_;
  }

  /// Most-utilized channel (the bottleneck candidate).
  const ChannelUtilization& hottest_channel() const;
  /// Busiest router by crossbar load.
  const RouterActivity& hottest_router() const;

  /// Mean/max utilization over channels of one medium type.
  double mean_utilization(MediumType medium) const;
  double max_utilization(MediumType medium) const;

  /// Exports (one row per channel / router).
  void write_channels_csv(std::ostream& os) const;
  void write_routers_csv(std::ostream& os) const;
  /// Whole report as a JSON object.
  void write_json(std::ostream& os) const;

 private:
  Cycle elapsed_ = 0;
  std::vector<ChannelUtilization> channels_;
  std::vector<RouterActivity> routers_;
  std::vector<std::pair<std::string, std::int64_t>> counters_;
};

/// One-line human summary of a sweep's execution telemetry, e.g.
/// "9 points (1 cancelled) on 4 threads: 1.2M cycles in 0.84 s".
std::string sweep_telemetry_summary(const SweepTelemetry& telemetry);

/// Telemetry as a flat JSON object (threads, points, cycles, wall time).
void write_sweep_telemetry_json(std::ostream& os,
                                const SweepTelemetry& telemetry);

/// One-line progress report for `SweepOptions::progress` callbacks, e.g.
/// "[ 3/9] rate 0.0030  1.2M cycles  0.84 s".
std::string sweep_progress_line(const SweepProgress& progress);

/// One-line human summary of a run's self-profile, e.g.
/// "11.5k cycles in 0.21 s (54.8k cycles/s), peak RSS 38.1 MB
///  [warmup 0.04 / measure 0.11 / drain 0.06 s]".
std::string run_profile_summary(const RunResult& result);

/// Profile as a flat JSON object (per-phase wall seconds, cycles/sec, RSS).
void write_run_profile_json(std::ostream& os, const RunResult& result);

/// Appends the deterministic fields of `result` as a canonical JSON object:
/// sorted keys, shortest-round-trip number forms (common/numfmt), the
/// latency histogram as sparse nonzero bins — and NOT the wall-clock
/// `profile`. Exactly the fields `deterministic_eq` compares, so the bytes
/// are stable across reruns, thread counts, kernels, and tracing. Feeds the
/// serve result cache payload (driver/simulate: experiment_result_json).
void append_run_result_canonical_json(std::string& out,
                                      const RunResult& result);

}  // namespace ownsim

#include "metrics/runner.hpp"

#include <algorithm>
#include <vector>

#include "common/stats.hpp"

namespace ownsim {
namespace {

/// How often a cancellable run polls its token. Slicing `engine.run(n)` into
/// fixed chunks is behaviour-neutral (the engine just steps), so results are
/// bit-identical whether or not a token is attached.
constexpr Cycle kCancelPollInterval = 256;

/// Advances `cycles` cycles, polling the token between slices. Returns false
/// when the token fired before the phase completed.
bool run_phase(Engine& engine, Cycle cycles,
               const exec::CancellationToken& token) {
  while (cycles > 0) {
    if (token.cancelled()) return false;
    const Cycle slice = std::min(cycles, kCancelPollInterval);
    engine.run(slice);
    cycles -= slice;
  }
  return true;
}

}  // namespace

RunResult run_load_point(Network& network, Injector& injector,
                         const RunPhases& phases,
                         exec::CancellationToken token) {
  Engine& engine = network.engine();
  Nic& nic = network.nic();
  const Cycle start_cycle = engine.now();

  RunResult result;
  result.offered_rate = injector.params().rate;

  const auto cancelled_result = [&] {
    result.cancelled = true;
    result.cycles_simulated = engine.now() - start_cycle;
    return result;
  };

  if (!run_phase(engine, phases.warmup, token)) return cancelled_result();

  const Cycle begin = engine.now();
  const Cycle end = begin + phases.measure;
  injector.set_measure_window(begin, end);
  nic.clear_records();
  const std::int64_t ejected_before = nic.flits_ejected();
  // Snapshot BEFORE the window: measured packets ejected inside the window
  // must count toward drain completion too.
  const std::int64_t measured_base = nic.measured_ejected();

  if (!run_phase(engine, phases.measure, token)) return cancelled_result();
  const std::int64_t ejected_in_window = nic.flits_ejected() - ejected_before;
  const auto measured_done = [&] {
    return nic.measured_ejected() - measured_base >=
           injector.measured_offered();
  };
  // The drain predicate also observes the token so an overdriven point that
  // would burn the whole drain budget can be abandoned promptly.
  const bool drained =
      measured_done() ||
      (engine.run_until([&] { return measured_done() || token.cancelled(); },
                        phases.drain_limit) &&
       measured_done());
  if (!drained && token.cancelled()) return cancelled_result();

  result.drained = drained;
  result.cycles_simulated = engine.now() - start_cycle;
  result.throughput =
      static_cast<double>(ejected_in_window) /
      (static_cast<double>(network.spec().num_nodes) *
       static_cast<double>(phases.measure));

  RunningStat total;
  RunningStat net;
  RunningStat hops;
  std::vector<double> latencies;
  for (const auto& rec : nic.records()) {
    if (!rec.measured) continue;
    const auto latency = static_cast<double>(rec.total_latency());
    total.add(latency);
    net.add(static_cast<double>(rec.network_latency()));
    hops.add(static_cast<double>(rec.hops));
    latencies.push_back(latency);
    result.latency_histogram.add(latency);
  }
  result.measured_packets = total.count();
  result.avg_latency = total.mean();
  result.avg_net_latency = net.mean();
  result.max_latency = total.max();
  result.avg_hops = hops.mean();
  if (!latencies.empty()) {
    const auto p99 = static_cast<std::size_t>(
        0.99 * static_cast<double>(latencies.size() - 1));
    std::nth_element(latencies.begin(), latencies.begin() + p99,
                     latencies.end());
    result.p99_latency = latencies[p99];
    const auto p50 = latencies.size() / 2;
    std::nth_element(latencies.begin(), latencies.begin() + p50,
                     latencies.end());
    result.p50_latency = latencies[p50];
  }
  return result;
}

}  // namespace ownsim

#include "metrics/runner.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/stats.hpp"
#include "obs/trace.hpp"

namespace ownsim {
namespace {

/// How often a cancellable run polls its token. Slicing `engine.run(n)` into
/// fixed chunks is behaviour-neutral (the engine just steps), so results are
/// bit-identical whether or not a token is attached.
constexpr Cycle kCancelPollInterval = 256;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Process peak resident set size; 0 where the platform offers no cheap way.
std::int64_t peak_rss_bytes() {
#if defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::int64_t>(usage.ru_maxrss);  // bytes on macOS
#elif defined(__unix__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#else
  return 0;
#endif
}

/// Advances `cycles` cycles, polling the token (and reporting progress)
/// between slices. Returns false when the token fired before the phase
/// completed.
bool run_phase(Engine& engine, Cycle cycles,
               const exec::CancellationToken& token, const char* phase,
               Cycle phase_total_start, const RunProgressFn* progress) {
  Cycle done = 0;
  while (cycles > 0) {
    if (token.cancelled()) return false;
    const Cycle slice = std::min(cycles, kCancelPollInterval);
    engine.run(slice);
    cycles -= slice;
    done += slice;
    if (progress != nullptr && *progress) {
      (*progress)(RunProgress{phase, done, phase_total_start + done});
    }
  }
  return true;
}

}  // namespace

bool deterministic_eq(const RunResult& a, const RunResult& b) {
  return a.offered_rate == b.offered_rate && a.throughput == b.throughput &&
         a.avg_latency == b.avg_latency &&
         a.avg_net_latency == b.avg_net_latency &&
         a.p50_latency == b.p50_latency && a.p99_latency == b.p99_latency &&
         a.max_latency == b.max_latency && a.avg_hops == b.avg_hops &&
         a.measured_packets == b.measured_packets && a.drained == b.drained &&
         a.cancelled == b.cancelled &&
         a.cycles_simulated == b.cycles_simulated &&
         a.latency_histogram.total() == b.latency_histogram.total() &&
         a.latency_histogram.underflow() == b.latency_histogram.underflow() &&
         a.latency_histogram.overflow() == b.latency_histogram.overflow() &&
         a.latency_histogram.counts() == b.latency_histogram.counts();
}

RunResult run_load_point(Network& network, Injector& injector,
                         const RunPhases& phases,
                         exec::CancellationToken token,
                         const RunProgressFn* progress) {
  Engine& engine = network.engine();
  Nic& nic = network.nic();
  obs::TraceWriter* trace = network.trace();
  const Cycle start_cycle = engine.now();
  const auto wall_start = Clock::now();

  RunResult result;
  result.offered_rate = injector.params().rate;

  const auto finish_profile = [&] {
    result.profile.wall_seconds = seconds_since(wall_start);
    result.profile.peak_rss_bytes = peak_rss_bytes();
    if (result.profile.wall_seconds > 0.0) {
      result.profile.cycles_per_second =
          static_cast<double>(result.cycles_simulated) /
          result.profile.wall_seconds;
    }
  };
  const auto cancelled_result = [&] {
    result.cancelled = true;
    result.cycles_simulated = engine.now() - start_cycle;
    finish_profile();
    return result;
  };

  // Phase slices land on the run track (pid kPidRun) so a trace shows at a
  // glance where simulated time went; the matching wall-clock split lives in
  // `result.profile`.
  if (trace != nullptr) {
    trace->begin("warmup", "phase", obs::TraceWriter::kPidRun, 1,
                 engine.now());
  }
  const bool warmup_ok =
      run_phase(engine, phases.warmup, token, "warmup", 0, progress);
  if (trace != nullptr) trace->end(obs::TraceWriter::kPidRun, 1, engine.now());
  result.profile.warmup_seconds = seconds_since(wall_start);
  if (!warmup_ok) return cancelled_result();

  const Cycle begin = engine.now();
  const Cycle end = begin + phases.measure;
  injector.set_measure_window(begin, end);
  nic.clear_records();
  const std::int64_t ejected_before = nic.flits_ejected();
  // Snapshot BEFORE the window: measured packets ejected inside the window
  // must count toward drain completion too.
  const std::int64_t measured_base = nic.measured_ejected();

  if (trace != nullptr) {
    trace->begin("measure", "phase", obs::TraceWriter::kPidRun, 1,
                 engine.now());
  }
  const bool measure_ok = run_phase(engine, phases.measure, token, "measure",
                                    phases.warmup, progress);
  if (trace != nullptr) trace->end(obs::TraceWriter::kPidRun, 1, engine.now());
  result.profile.measure_seconds =
      seconds_since(wall_start) - result.profile.warmup_seconds;
  if (!measure_ok) return cancelled_result();
  const std::int64_t ejected_in_window = nic.flits_ejected() - ejected_before;
  const auto measured_done = [&] {
    return nic.measured_ejected() - measured_base >=
           injector.measured_offered();
  };
  // The drain predicate also observes the token so an overdriven point that
  // would burn the whole drain budget can be abandoned promptly.
  if (trace != nullptr) {
    trace->begin("drain", "phase", obs::TraceWriter::kPidRun, 1, engine.now());
  }
  const Cycle drain_start = engine.now() - start_cycle;
  if (progress != nullptr && *progress) {
    (*progress)(RunProgress{"drain", 0, drain_start});
  }
  const bool drained =
      measured_done() ||
      (engine.run_until([&] { return measured_done() || token.cancelled(); },
                        phases.drain_limit) &&
       measured_done());
  if (trace != nullptr) trace->end(obs::TraceWriter::kPidRun, 1, engine.now());
  if (progress != nullptr && *progress) {
    const Cycle total = engine.now() - start_cycle;
    (*progress)(RunProgress{"drain", total - drain_start, total});
  }
  result.profile.drain_seconds = seconds_since(wall_start) -
                                 result.profile.warmup_seconds -
                                 result.profile.measure_seconds;
  if (!drained && token.cancelled()) return cancelled_result();

  result.drained = drained;
  result.cycles_simulated = engine.now() - start_cycle;
  result.throughput =
      static_cast<double>(ejected_in_window) /
      (static_cast<double>(network.spec().num_nodes) *
       static_cast<double>(phases.measure));

  RunningStat total;
  RunningStat net;
  RunningStat hops;
  std::vector<double> latencies;
  for (const auto& rec : nic.records()) {
    if (!rec.measured) continue;
    const auto latency = static_cast<double>(rec.total_latency());
    total.add(latency);
    net.add(static_cast<double>(rec.network_latency()));
    hops.add(static_cast<double>(rec.hops));
    latencies.push_back(latency);
    result.latency_histogram.add(latency);
  }
  result.measured_packets = total.count();
  result.avg_latency = total.mean();
  result.avg_net_latency = net.mean();
  result.max_latency = total.max();
  result.avg_hops = hops.mean();
  if (!latencies.empty()) {
    const auto p99 = static_cast<std::size_t>(
        0.99 * static_cast<double>(latencies.size() - 1));
    std::nth_element(latencies.begin(), latencies.begin() + p99,
                     latencies.end());
    result.p99_latency = latencies[p99];
    const auto p50 = latencies.size() / 2;
    std::nth_element(latencies.begin(), latencies.begin() + p50,
                     latencies.end());
    result.p50_latency = latencies[p50];
  }
  finish_profile();
  return result;
}

}  // namespace ownsim

#include "metrics/runner.hpp"

#include <algorithm>
#include <vector>

#include "common/stats.hpp"

namespace ownsim {

RunResult run_load_point(Network& network, Injector& injector,
                         const RunPhases& phases) {
  Engine& engine = network.engine();
  Nic& nic = network.nic();

  engine.run(phases.warmup);

  const Cycle begin = engine.now();
  const Cycle end = begin + phases.measure;
  injector.set_measure_window(begin, end);
  nic.clear_records();
  const std::int64_t ejected_before = nic.flits_ejected();
  // Snapshot BEFORE the window: measured packets ejected inside the window
  // must count toward drain completion too.
  const std::int64_t measured_base = nic.measured_ejected();

  engine.run(phases.measure);
  const std::int64_t ejected_in_window = nic.flits_ejected() - ejected_before;
  const auto measured_done = [&] {
    return nic.measured_ejected() - measured_base >=
           injector.measured_offered();
  };
  const bool drained =
      measured_done() || engine.run_until(measured_done, phases.drain_limit);

  RunResult result;
  result.offered_rate = injector.params().rate;
  result.drained = drained;
  result.throughput =
      static_cast<double>(ejected_in_window) /
      (static_cast<double>(network.spec().num_nodes) *
       static_cast<double>(phases.measure));

  RunningStat total;
  RunningStat net;
  RunningStat hops;
  std::vector<double> latencies;
  for (const auto& rec : nic.records()) {
    if (!rec.measured) continue;
    const auto latency = static_cast<double>(rec.total_latency());
    total.add(latency);
    net.add(static_cast<double>(rec.network_latency()));
    hops.add(static_cast<double>(rec.hops));
    latencies.push_back(latency);
    result.latency_histogram.add(latency);
  }
  result.measured_packets = total.count();
  result.avg_latency = total.mean();
  result.avg_net_latency = net.mean();
  result.max_latency = total.max();
  result.avg_hops = hops.mean();
  if (!latencies.empty()) {
    const auto p99 = static_cast<std::size_t>(
        0.99 * static_cast<double>(latencies.size() - 1));
    std::nth_element(latencies.begin(), latencies.begin() + p99,
                     latencies.end());
    result.p99_latency = latencies[p99];
    const auto p50 = latencies.size() / 2;
    std::nth_element(latencies.begin(), latencies.begin() + p50,
                     latencies.end());
    result.p50_latency = latencies[p50];
  }
  return result;
}

}  // namespace ownsim

// Fixed-width ASCII table / CSV emitters for the bench harness.
//
// Every bench binary prints the rows/series the corresponding paper table or
// figure reports; `Table` keeps that output aligned and greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ownsim {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double value, int precision = 3);

  /// Renders with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Comma-separated (quotes cells containing commas).
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ownsim

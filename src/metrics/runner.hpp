// Measurement driver: warmup / measure / drain phases over one network.
//
// Methodology (standard open-loop NoC evaluation, matching §V):
//  1. warm the network at the offered load,
//  2. tag packets created during the measurement window,
//  3. keep simulating until every tagged packet ejects (or the drain budget
//     runs out, which marks the point as saturated/undrained).
//
// Latency is reported creation -> tail ejection (includes source queueing,
// so it diverges sharply at saturation, producing the Fig 7(b,c) knees).
// Accepted throughput is ejected flits per node per cycle over the window.
//
// A load point can be cancelled cooperatively (speculative sweep points past
// saturation): the run checks its token between simulation slices and bails
// out with `cancelled = true`; such partial results must be discarded.
#pragma once

#include <cstdint>
#include <functional>

#include "common/stats.hpp"
#include "exec/cancellation.hpp"
#include "network/network.hpp"
#include "traffic/injector.hpp"

namespace ownsim {

struct RunPhases {
  Cycle warmup = 2000;
  Cycle measure = 5000;
  Cycle drain_limit = 60000;  ///< extra cycles allowed after the window
};

/// Wall-clock self-profile of one load point. NOT part of the deterministic
/// result (wall time and RSS vary run to run); `deterministic_eq` ignores it.
struct RunProfile {
  double wall_seconds = 0.0;
  double warmup_seconds = 0.0;
  double measure_seconds = 0.0;
  double drain_seconds = 0.0;
  double cycles_per_second = 0.0;  ///< simulated cycles / wall second
  std::int64_t peak_rss_bytes = 0;  ///< process highwater (0 if unavailable)
};

struct RunResult {
  double offered_rate = 0.0;     ///< flits/node/cycle offered
  double throughput = 0.0;       ///< flits/node/cycle accepted in-window
  double avg_latency = 0.0;      ///< cycles, creation -> tail ejection
  double avg_net_latency = 0.0;  ///< cycles, injection -> tail ejection
  double p50_latency = 0.0;
  double p99_latency = 0.0;      ///< cycles (from the measured population)
  double max_latency = 0.0;
  double avg_hops = 0.0;
  std::int64_t measured_packets = 0;
  bool drained = false;    ///< all measured packets ejected in budget
  bool cancelled = false;  ///< run aborted by its cancellation token
  Cycle cycles_simulated = 0;  ///< engine cycles this point actually ran

  /// Latency distribution of the measured packets (total latency, cycles).
  Histogram latency_histogram{0.0, 4096.0, 128};

  /// Execution telemetry (wall time per phase, cycles/sec, peak RSS).
  RunProfile profile;
};

/// True when the SIMULATED fields of `a` and `b` are bit-identical —
/// everything except `profile`, which is wall-clock telemetry. This is the
/// reproducibility contract: tracing, counters, thread counts, and reruns
/// must not change any of these fields.
bool deterministic_eq(const RunResult& a, const RunResult& b);

/// In-flight progress of one load point, reported between simulation slices
/// (every few hundred cycles) so a caller can stream liveness to a client.
/// Observing progress is read-only and MUST NOT change the simulated result
/// — the callback fires at the same engine states whether or not anyone
/// listens (the slicing itself is behavior-neutral, see run_load_point).
struct RunProgress {
  const char* phase = "";   ///< "warmup" | "measure" | "drain"
  Cycle phase_cycles = 0;   ///< cycles completed within the current phase
  Cycle total_cycles = 0;   ///< cycles completed since the run started
};
using RunProgressFn = std::function<void(const RunProgress&)>;

/// Runs one load point. The injector must already be registered with the
/// network's engine (exactly once). When `token` fires mid-run the function
/// returns early with `cancelled = true` and otherwise meaningless fields.
/// `progress` (optional) is invoked between slices; the drain phase reports
/// only its entry and completion (it runs event-driven, not sliced).
RunResult run_load_point(Network& network, Injector& injector,
                         const RunPhases& phases,
                         exec::CancellationToken token = {},
                         const RunProgressFn* progress = nullptr);

}  // namespace ownsim

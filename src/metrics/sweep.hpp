// Load sweeps and saturation-point detection (Fig 7b,c methodology).
//
// A sweep builds a *fresh* network per load point (clean counters, clean
// queues), measures each point with `run_load_point`, and locates the
// saturation load: the first offered rate whose average latency exceeds
// `saturation_factor` x zero-load latency (or that fails to drain).
//
// Load points are independent simulations, so the sweep fans them out over
// an `exec::ThreadPool` (`SweepOptions::threads`). Determinism contract:
// every point derives its injector seed from `master_seed` + its point
// index (SplitMix64 stream scheme), so the `SweepResult` is bit-identical
// for any thread count, including 1. With `stop_after_saturation` the
// parallel sweep runs points past the knee speculatively and cancels them
// cooperatively once the first saturated point is confirmed; speculative
// results are discarded, preserving the serial stop-at-saturation result.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "metrics/runner.hpp"
#include "network/network.hpp"
#include "traffic/injector.hpp"

namespace ownsim {

/// Builds a fresh network instance for one load point. Must be callable
/// concurrently from several worker threads (factories built from
/// `build_topology` are: they share nothing mutable).
using NetworkFactory = std::function<std::unique_ptr<Network>()>;

struct SweepPoint {
  double rate = 0.0;
  RunResult result;
};

/// Execution telemetry of one sweep (not part of the deterministic result:
/// wall time varies run to run, the rest does not).
struct SweepTelemetry {
  unsigned threads = 1;
  int points_run = 0;        ///< simulated points incl. the zero-load probe
  int points_cancelled = 0;  ///< speculative points cancelled past the knee
  std::int64_t cycles_simulated = 0;  ///< engine cycles across all points
  double wall_seconds = 0.0;
};

/// Progress snapshot passed to `SweepOptions::progress` after each point.
struct SweepProgress {
  int completed = 0;   ///< points finished so far (incl. zero-load probe)
  int total = 0;       ///< points scheduled (rates + probe)
  double rate = 0.0;   ///< offered rate of the point that just finished;
                       ///< negative for the zero-load probe
  std::int64_t cycles_simulated = 0;  ///< cumulative engine cycles
  double wall_seconds = 0.0;          ///< wall time since the sweep started
};

struct SweepResult {
  std::vector<SweepPoint> points;
  double zero_load_latency = 0.0;
  /// Highest swept rate still under the saturation criterion; 0 when even
  /// the lowest rate saturates.
  double saturation_rate = 0.0;
  SweepTelemetry telemetry;
};

struct SweepOptions {
  std::vector<double> rates;          ///< offered loads to visit, ascending
  double zero_load_rate = 0.0005;     ///< probe load for zero-load latency
  double saturation_factor = 3.0;
  RunPhases phases;
  Injector::Params injector;          ///< .rate/.master_seed set per point
  PatternKind pattern = PatternKind::kUniform;
  bool stop_after_saturation = true;  ///< skip points beyond the first saturated one

  /// Master seed of the sweep. Point i derives its injector master seed as
  /// `derive_seed(master_seed, i + 1)` (the probe uses stream 0), so no two
  /// points correlate and the result is independent of `threads`.
  std::uint64_t master_seed = 1;
  /// Worker threads to fan load points across (clamped to >= 1).
  unsigned threads = 1;
  /// Optional per-point progress callback. Invoked serialized, but possibly
  /// from worker threads; must not touch the sweep's inputs.
  std::function<void(const SweepProgress&)> progress;
};

/// Runs the sweep. The factory is invoked once per load point plus once for
/// the zero-load probe, possibly concurrently.
SweepResult latency_sweep(const NetworkFactory& factory,
                          const SweepOptions& options);

/// Accepted throughput at a saturating offered load (Fig 7a / Fig 8a
/// methodology): drive the network at `offered` and report what it accepts.
RunResult saturation_throughput(const NetworkFactory& factory,
                                PatternKind pattern, double offered,
                                const RunPhases& phases,
                                Injector::Params injector);

}  // namespace ownsim

// Load sweeps and saturation-point detection (Fig 7b,c methodology).
//
// A sweep builds a *fresh* network per load point (clean counters, clean
// queues), measures each point with `run_load_point`, and locates the
// saturation load: the first offered rate whose average latency exceeds
// `saturation_factor` x zero-load latency (or that fails to drain).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "metrics/runner.hpp"
#include "network/network.hpp"
#include "traffic/injector.hpp"

namespace ownsim {

/// Builds a fresh network instance for one load point.
using NetworkFactory = std::function<std::unique_ptr<Network>()>;

struct SweepPoint {
  double rate = 0.0;
  RunResult result;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  double zero_load_latency = 0.0;
  /// Highest swept rate still under the saturation criterion; 0 when even
  /// the lowest rate saturates.
  double saturation_rate = 0.0;
};

struct SweepOptions {
  std::vector<double> rates;          ///< offered loads to visit, ascending
  double zero_load_rate = 0.0005;     ///< probe load for zero-load latency
  double saturation_factor = 3.0;
  RunPhases phases;
  Injector::Params injector;          ///< .rate is overridden per point
  PatternKind pattern = PatternKind::kUniform;
  bool stop_after_saturation = true;  ///< skip points beyond the first saturated one
};

/// Runs the sweep. The factory is invoked once per load point plus once for
/// the zero-load probe.
SweepResult latency_sweep(const NetworkFactory& factory,
                          const SweepOptions& options);

/// Accepted throughput at a saturating offered load (Fig 7a / Fig 8a
/// methodology): drive the network at `offered` and report what it accepts.
RunResult saturation_throughput(const NetworkFactory& factory,
                                PatternKind pattern, double offered,
                                const RunPhases& phases,
                                Injector::Params injector);

}  // namespace ownsim

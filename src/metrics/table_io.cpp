#include "metrics/table_io.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ownsim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto cell = [](const std::string& s) {
    if (s.find(',') == std::string::npos) return s;
    return '"' + s + '"';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << cell(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ownsim

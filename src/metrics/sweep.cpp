#include "metrics/sweep.hpp"

#include <chrono>
#include <cstddef>
#include <future>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "exec/cancellation.hpp"
#include "exec/thread_pool.hpp"

namespace ownsim {
namespace {

RunResult run_fresh(const NetworkFactory& factory, PatternKind pattern,
                    double rate, const RunPhases& phases,
                    Injector::Params params,
                    exec::CancellationToken token = {}) {
  std::unique_ptr<Network> network = factory();
  params.rate = rate;
  TrafficPattern traffic(pattern, network->spec().num_nodes);
  Injector injector(network.get(), traffic, params);
  network->engine().add(&injector);
  return run_load_point(*network, injector, phases, token);
}

/// Controller state shared by the sweep's worker tasks. Index 0 is the
/// zero-load probe; index i >= 1 is rates[i-1]. `cancels` is not guarded:
/// the vector is sized before any task starts and CancellationSource is
/// internally atomic, so request_cancel/token race benignly by design.
struct SweepState {
  Mutex mu;
  std::vector<std::optional<RunResult>> results OWNSIM_GUARDED_BY(mu);
  std::vector<char> settled OWNSIM_GUARDED_BY(mu);
  std::vector<exec::CancellationSource> cancels;
  bool cancel_issued OWNSIM_GUARDED_BY(mu) = false;
  int completed OWNSIM_GUARDED_BY(mu) = 0;
  int cancelled OWNSIM_GUARDED_BY(mu) = 0;
  std::int64_t cycles OWNSIM_GUARDED_BY(mu) = 0;
};

bool is_saturated(const RunResult& r, double zero_load_latency,
                  double saturation_factor) {
  return !r.drained ||
         r.avg_latency > saturation_factor * zero_load_latency;
}

/// With `stop_after_saturation`, once the settled results form a contiguous
/// prefix whose first saturated point is known, every later point is
/// speculative and gets cancelled. Points at or before the knee are never
/// cancelled, so the assembled result matches the serial stop-at-saturation
/// sweep exactly.
void maybe_cancel_tail(SweepState& state, const SweepOptions& options)
    OWNSIM_REQUIRES(state.mu) {
  if (!options.stop_after_saturation || state.cancel_issued) return;
  if (!state.settled[0]) return;  // zero-load latency not known yet
  const double zero = state.results[0]->avg_latency;
  for (std::size_t i = 1; i < state.results.size(); ++i) {
    if (!state.settled[i] || !state.results[i]) return;
    if (is_saturated(*state.results[i], zero, options.saturation_factor)) {
      for (std::size_t j = i + 1; j < state.cancels.size(); ++j) {
        state.cancels[j].request_cancel();
      }
      state.cancel_issued = true;
      return;
    }
  }
}

}  // namespace

SweepResult latency_sweep(const NetworkFactory& factory,
                          const SweepOptions& options) {
  if (options.rates.empty()) {
    throw std::invalid_argument("latency_sweep: no rates given");
  }
  const auto start = std::chrono::steady_clock::now();
  const std::size_t num_tasks = options.rates.size() + 1;  // + probe

  SweepState state;
  state.results.resize(num_tasks);
  state.settled.assign(num_tasks, 0);
  state.cancels.resize(num_tasks);

  const unsigned threads =
      std::min<unsigned>(std::max(1u, options.threads),
                         static_cast<unsigned>(num_tasks));
  exec::ThreadPool pool(threads);

  // Every load point is one pool task over its own fresh network; task i
  // derives injector stream i from the sweep's master seed, so the per-point
  // simulation is a pure function of (factory, options, i) — identical for
  // any thread count and any completion order.
  std::vector<std::future<void>> tasks;
  tasks.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    tasks.push_back(pool.submit([&, i] {
      const exec::CancellationToken token =
          i == 0 ? exec::CancellationToken{} : state.cancels[i].token();
      std::optional<RunResult> result;
      if (!token.cancelled()) {
        Injector::Params params = options.injector;
        params.master_seed = derive_seed(options.master_seed, i);
        const double rate =
            i == 0 ? options.zero_load_rate : options.rates[i - 1];
        RunResult r = run_fresh(factory, options.pattern, rate,
                                options.phases, params, token);
        if (!r.cancelled) result = std::move(r);
      }
      MutexLock lock(state.mu);
      state.settled[i] = 1;
      if (result) {
        ++state.completed;
        state.cycles += result->cycles_simulated;
        state.results[i] = std::move(result);
        if (options.progress) {
          SweepProgress progress;
          progress.completed = state.completed;
          progress.total = static_cast<int>(num_tasks);
          progress.rate =
              i == 0 ? -1.0 : options.rates[i - 1];
          progress.cycles_simulated = state.cycles;
          progress.wall_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
          options.progress(progress);
        }
      } else {
        ++state.cancelled;
      }
      maybe_cancel_tail(state, options);
    }));
  }
  // Rethrows the first task exception (factory failures etc.) in submission
  // order, after every task settled.
  for (std::future<void>& task : tasks) task.get();

  // Serial assembly, identical to the historical one-point-at-a-time loop:
  // visit rates ascending, stop at the first saturated point when asked.
  // Speculative results past the knee are discarded here. Every task has
  // settled, so the lock is uncontended — it is taken so the guarded reads
  // below stay inside a scope the thread-safety analysis can verify.
  MutexLock lock(state.mu);
  SweepResult sweep;
  sweep.zero_load_latency = state.results[0]->avg_latency;
  bool saturated = false;
  for (std::size_t i = 0; i < options.rates.size(); ++i) {
    if (saturated && options.stop_after_saturation) break;
    const std::optional<RunResult>& r = state.results[i + 1];
    if (!r) break;  // cancelled speculative tail
    sweep.points.push_back({options.rates[i], *r});
    if (!is_saturated(*r, sweep.zero_load_latency,
                      options.saturation_factor)) {
      sweep.saturation_rate = options.rates[i];
    } else {
      saturated = true;
    }
  }

  sweep.telemetry.threads = threads;
  sweep.telemetry.points_run = state.completed;
  sweep.telemetry.points_cancelled = state.cancelled;
  sweep.telemetry.cycles_simulated = state.cycles;
  sweep.telemetry.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return sweep;
}

RunResult saturation_throughput(const NetworkFactory& factory,
                                PatternKind pattern, double offered,
                                const RunPhases& phases,
                                Injector::Params injector) {
  return run_fresh(factory, pattern, offered, phases, injector);
}

}  // namespace ownsim

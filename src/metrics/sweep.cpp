#include "metrics/sweep.hpp"

#include <stdexcept>

namespace ownsim {
namespace {

RunResult run_fresh(const NetworkFactory& factory, PatternKind pattern,
                    double rate, const RunPhases& phases,
                    Injector::Params params) {
  std::unique_ptr<Network> network = factory();
  params.rate = rate;
  TrafficPattern traffic(pattern, network->spec().num_nodes);
  Injector injector(network.get(), traffic, params);
  network->engine().add(&injector);
  return run_load_point(*network, injector, phases);
}

}  // namespace

SweepResult latency_sweep(const NetworkFactory& factory,
                          const SweepOptions& options) {
  if (options.rates.empty()) {
    throw std::invalid_argument("latency_sweep: no rates given");
  }
  SweepResult sweep;

  const RunResult zero = run_fresh(factory, options.pattern,
                                   options.zero_load_rate, options.phases,
                                   options.injector);
  sweep.zero_load_latency = zero.avg_latency;

  bool saturated = false;
  for (const double rate : options.rates) {
    if (saturated && options.stop_after_saturation) break;
    const RunResult r =
        run_fresh(factory, options.pattern, rate, options.phases,
                  options.injector);
    sweep.points.push_back({rate, r});
    const bool is_saturated =
        !r.drained ||
        r.avg_latency > options.saturation_factor * sweep.zero_load_latency;
    if (!is_saturated) {
      sweep.saturation_rate = rate;
    } else {
      saturated = true;
    }
  }
  return sweep;
}

RunResult saturation_throughput(const NetworkFactory& factory,
                                PatternKind pattern, double offered,
                                const RunPhases& phases,
                                Injector::Params injector) {
  return run_fresh(factory, pattern, offered, phases, injector);
}

}  // namespace ownsim

#include "topology/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "topofile/topofile.hpp"
#include "topology/cmesh.hpp"
#include "topology/optxb.hpp"
#include "topology/own.hpp"
#include "topology/pclos.hpp"
#include "topology/wireless_cmesh.hpp"

namespace ownsim {

TopologyKind parse_topology(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "cmesh" || s == "mesh") return TopologyKind::kCMesh;
  if (s == "wcmesh" || s == "wireless-cmesh" || s == "wirelesscmesh") {
    return TopologyKind::kWirelessCMesh;
  }
  if (s == "optxb" || s == "crossbar") return TopologyKind::kOptXB;
  if (s == "pclos" || s == "p-clos" || s == "clos") return TopologyKind::kPClos;
  if (s == "own") return TopologyKind::kOwn;
  if (s == "file") return TopologyKind::kFile;
  throw std::invalid_argument("unknown topology: " + name);
}

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kCMesh: return "CMESH";
    case TopologyKind::kWirelessCMesh: return "wireless-CMESH";
    case TopologyKind::kOptXB: return "OptXB";
    case TopologyKind::kPClos: return "p-Clos";
    case TopologyKind::kOwn: return "OWN";
    case TopologyKind::kFile: return "file";
  }
  return "?";
}

std::vector<TopologyKind> paper_topologies() {
  return {TopologyKind::kCMesh, TopologyKind::kOwn, TopologyKind::kOptXB,
          TopologyKind::kPClos, TopologyKind::kWirelessCMesh};
}

NetworkSpec build_topology(TopologyKind kind, const TopologyOptions& options) {
  switch (kind) {
    case TopologyKind::kCMesh: return build_cmesh(options);
    case TopologyKind::kWirelessCMesh: return build_wireless_cmesh(options);
    case TopologyKind::kOptXB: return build_optxb(options);
    case TopologyKind::kPClos: return build_pclos(options);
    case TopologyKind::kOwn: return build_own(options);
    case TopologyKind::kFile: return topofile::build_topofile(options);
  }
  throw std::invalid_argument("build_topology: bad kind");
}

}  // namespace ownsim

// Shared sizing/technology options for all topology builders.
//
// The defaults reproduce the paper's setup: 256 or 1024 cores, concentration
// 4, 4 VCs x 8-flit buffers, 5-stage routers at a 2 GHz core/router clock and
// 128-bit flits (4-flit, 64 B packets).
#pragma once

#include <string>

namespace ownsim {

struct TopologyOptions {
  int num_cores = 256;   ///< 256 or 1024 in the paper; any 4*k^2 for CMesh
  int concentration = 4; ///< cores per router / per tile
  int num_vcs = 4;
  int buffer_depth = 8;
  int max_packet_flits = 8;  ///< shared-medium staging capacity

  double clock_ghz = 2.0;
  int flit_bits = 128;

  /// Serialization overrides in cycles/flit; 0 = derive from the
  /// equal-bisection rule (topology/bisection.*).
  int electrical_cpf = 0;
  int photonic_cpf = 0;
  int wireless_cpf = 0;

  /// Replace token-ring arbitration on shared media with zero-cost ideal
  /// arbitration (ablation isolating the token's latency overhead).
  bool ideal_arbitration = false;

  /// CMesh only: O1TURN routing (each packet flips between XY and YX, with
  /// the VC set split between the two) instead of plain XY DOR. Removes
  /// DOR's pathological behavior on transpose-like permutations.
  bool cmesh_o1turn = false;

  /// File topology (topology=file:PATH) only. `topofile_text` is the file
  /// body; when empty the builder reads `topofile_path`. The driver loads
  /// the text at config-parse time so the serve cache key and the simulated
  /// network always come from the same bytes.
  std::string topofile_path;
  std::string topofile_text;
};

}  // namespace ownsim

// Wireless-CMesh baseline (WCube-style, §V.A).
//
// Routers are grouped 4-per-cluster and joined by a full electrical crossbar
// (3 ports each); the first router of each cluster additionally carries a
// wireless transceiver with four directional channels (E/W/N/S), forming a
// sqrt(clusters) x sqrt(clusters) wireless grid routed with XY DOR. Radix:
// 3 electrical + 4 wireless + 4 cores = 11 for wireless routers (paper §V.A).
#pragma once

#include "network/spec.hpp"
#include "topology/options.hpp"

namespace ownsim {

NetworkSpec build_wireless_cmesh(const TopologyOptions& options);

}  // namespace ownsim

// Photonic Clos baseline (Joshi et al. [22], §V: "p-Clos").
//
// Folded 2-stage realization: `s` leaf switches each serving cores/s cores,
// `s` middle switches, point-to-point photonic links leaf->middle and
// middle->leaf. Every packet takes leaf -> middle -> leaf ("all concentrated
// nodes are connected to one level of switches before they are connected
// back", max 2 link hops); the middle is chosen deterministically as
// (src_leaf + dst_leaf) mod s, which balances load for symmetric patterns.
#pragma once

#include "network/spec.hpp"
#include "topology/options.hpp"

namespace ownsim {

NetworkSpec build_pclos(const TopologyOptions& options);

}  // namespace ownsim

#include "topology/own.hpp"

#include <array>
#include <stdexcept>
#include <string>

#include "topology/bisection.hpp"

namespace ownsim {
namespace {

// Port conventions on every OWN router:
//   in 0            photonic home-waveguide reader
//   in 1            wireless receiver        (gateway tiles only)
//   out 0..14       photonic writers to the 15 other home waveguides
//   out 15          wireless transmitter     (gateway tiles only)
constexpr PortId kPhotonicIn = 0;
constexpr PortId kWirelessIn = 1;
constexpr PortId kWirelessOut = 15;

// VC classes (see header).
constexpr std::int8_t kClsPhotonicPre = 0;
constexpr std::int8_t kClsPhotonicPost = 1;
constexpr std::int8_t kClsWireless256 = 2;     // OWN-256: VCs 2..3
constexpr std::int8_t kClsWirelessIntra = 2;   // OWN-1024: VC2
constexpr std::int8_t kClsWirelessInter = 3;   // OWN-1024: VC3

void add_cluster_waveguides(NetworkSpec& spec, int group, int cluster,
                            int cpf, int max_packet_flits,
                            ArbitrationKind arbitration) {
  for (int home = 0; home < kOwnTilesPerCluster; ++home) {
    MediumSpec wg;
    wg.medium = MediumType::kPhotonic;
    wg.arbitration = arbitration;
    for (int t = 0; t < kOwnTilesPerCluster; ++t) {
      if (t == home) continue;
      wg.writers.push_back(
          {own_router(group, cluster, t), own_writer_port(t, home)});
    }
    wg.readers = {{own_router(group, cluster, home), kPhotonicIn}};
    wg.latency = 2;  // ~25 mm snake at ~15 ps/mm plus O/E conversion
    wg.cycles_per_flit = cpf;
    wg.max_packet_flits = max_packet_flits;
    wg.distance = 25.0_mm;
    wg.name = "wg-g" + std::to_string(group) + "c" + std::to_string(cluster) +
              "t" + std::to_string(home);
    spec.media.push_back(std::move(wg));
  }
}

// Tile hosting each antenna (index = Antenna enum) for a placement. For the
// kCenter strawman every cluster puts its transceivers on the 2x2 tile block
// nearest the CHIP center ("all the wireless transceivers ... in close
// proximity", §III.A) — so the placement depends on which quadrant the
// cluster occupies.
std::array<int, 4> placement_tiles(AntennaPlacement placement, int cluster) {
  if (placement == AntennaPlacement::kCorners) {
    return {antenna_tile(Antenna::kA), antenna_tile(Antenna::kB),
            antenna_tile(Antenna::kC), antenna_tile(Antenna::kD)};
  }
  switch (cluster) {       // quadrants: 0=NW, 1=NE, 2=SE, 3=SW
    case 0: return {15, 11, 14, 10};  // its SE block touches the center
    case 1: return {12, 8, 13, 9};    // SW block
    case 2: return {0, 4, 1, 5};      // NW block
    default: return {3, 7, 2, 6};     // NE block
  }
}

}  // namespace

// Die coordinates: 2x2 clusters of 25 mm; tiles on a 4x4 grid per cluster.
void fill_own_positions(NetworkSpec& spec, int groups) {
  const Length cluster_edge = 25.0_mm;
  const Length tile_edge = cluster_edge / 4.0;
  spec.router_xy.resize(spec.routers.size());
  for (std::size_t r = 0; r < spec.routers.size(); ++r) {
    const int group = static_cast<int>(r) /
                      (kOwnTilesPerCluster * kOwnClustersPerGroup);
    const int cluster =
        (static_cast<int>(r) / kOwnTilesPerCluster) % kOwnClustersPerGroup;
    const int tile = static_cast<int>(r) % kOwnTilesPerCluster;
    // Quadrant layout 0=NW, 1=NE, 2=SE, 3=SW for clusters and groups alike.
    auto quadrant = [](int q) {
      switch (q) {
        case 0: return std::pair<int, int>{0, 0};
        case 1: return std::pair<int, int>{1, 0};
        case 2: return std::pair<int, int>{1, 1};
        default: return std::pair<int, int>{0, 1};
      }
    };
    const auto [gx, gy] = quadrant(group % 4);
    const auto [cx, cy] = quadrant(cluster);
    const Length group_edge = 2.0 * cluster_edge;
    const Length x = (groups > 1 ? gx * group_edge : Length{}) +
                     cx * cluster_edge + (tile % 4) * tile_edge +
                     tile_edge / 2.0;
    const Length y = (groups > 1 ? gy * group_edge : Length{}) +
                     cy * cluster_edge + (tile / 4) * tile_edge +
                     tile_edge / 2.0;
    spec.router_xy[r] = {x, y};
  }
}

namespace {

NetworkSpec build_own256_impl(const TopologyOptions& options,
                              AntennaPlacement placement) {
  const auto tile_of = [&](Antenna a, int cluster) {
    return placement_tiles(placement, cluster)[static_cast<int>(a)];
  };
  const auto is_gateway = [&](int tile, int cluster) {
    const auto tiles = placement_tiles(placement, cluster);
    return tile == tiles[0] || tile == tiles[1] || tile == tiles[2];
  };
  NetworkSpec spec;
  spec.name = placement == AntennaPlacement::kCorners ? "own-256"
                                                      : "own-256-center";
  spec.num_nodes = options.num_cores;
  spec.num_vcs = options.num_vcs;
  spec.buffer_depth = options.buffer_depth;
  // VC0: photonic toward gateways + non-corner local traffic; VC1: photonic
  // out of corner routers; VC2..3: wireless ("2 photonic + 2 wireless" VCs).
  spec.vc_classes = {{0, 1}, {1, 1}, {2, options.num_vcs - 2}};

  const int num_routers = 64;
  spec.routers.assign(num_routers, {1, 15});
  spec.nodes.resize(options.num_cores);
  for (NodeId n = 0; n < options.num_cores; ++n) {
    spec.nodes[n].router = n / options.concentration;
  }

  // Gateways (A, B, C antennas) carry one wireless TX + one RX each.
  for (int c = 0; c < kOwnClustersPerGroup; ++c) {
    for (Antenna a : {Antenna::kA, Antenna::kB, Antenna::kC}) {
      spec.routers[own_router(0, c, tile_of(a, c))] = {2, 16};
    }
  }

  // Intra-cluster photonic: each home waveguide carries an 8-lambda DWDM
  // slice at 8 Gb/s = 64 Gb/s. The gateway corners' home waveguides carry
  // both the pre-wireless funnel and terminal traffic, so anything slower
  // than ~2x the 32 Gb/s wireless channel rate would bottleneck the gateway
  // below the wireless bisection the evaluation normalizes against.
  const int photonic_cpf = options.photonic_cpf > 0 ? options.photonic_cpf : 4;
  for (int c = 0; c < kOwnClustersPerGroup; ++c) {
    add_cluster_waveguides(spec, 0, c, photonic_cpf, options.max_packet_flits,
                           options.ideal_arbitration
                               ? ArbitrationKind::kIdeal
                               : ArbitrationKind::kTokenRing);
  }

  // Inter-cluster wireless: Table I channels; 8 cross the bisection.
  const int wireless_cpf = resolve_cpf(options.wireless_cpf, 8.0, options);
  for (const OwnChannel& ch : own256_channels()) {
    LinkSpec link;
    link.src_router =
        own_router(0, ch.src_cluster, tile_of(ch.src_antenna, ch.src_cluster));
    link.src_port = kWirelessOut;
    link.dst_router =
        own_router(0, ch.dst_cluster, tile_of(ch.dst_antenna, ch.dst_cluster));
    link.dst_port = kWirelessIn;
    link.medium = MediumType::kWireless;
    link.latency = 2;  // OOK modulation + propagation (< 1 cycle at 60 mm)
    link.cycles_per_flit = wireless_cpf;
    link.distance = distance_of(ch.distance);
    link.wireless_channel = ch.id;
    link.name = "wl" + std::to_string(ch.id);
    spec.links.push_back(link);
  }

  // Routing.
  spec.route_table.assign(num_routers, std::vector<RouteEntry>(num_routers));
  for (int r = 0; r < num_routers; ++r) {
    const int rc = r / kOwnTilesPerCluster;
    const int rt = r % kOwnTilesPerCluster;
    for (int d = 0; d < num_routers; ++d) {
      if (d == r) continue;
      const int dc = d / kOwnTilesPerCluster;
      const int dt = d % kOwnTilesPerCluster;
      RouteEntry entry;
      if (dc == rc) {
        entry.out_port = own_writer_port(rt, dt);
        entry.vc_class =
            is_gateway(rt, rc) ? kClsPhotonicPost : kClsPhotonicPre;
      } else {
        const int gate = tile_of(own256_channel(rc, dc).src_antenna, rc);
        if (rt == gate) {
          entry.out_port = kWirelessOut;
          entry.vc_class = kClsWireless256;
        } else {
          entry.out_port = own_writer_port(rt, gate);
          entry.vc_class = kClsPhotonicPre;
        }
      }
      spec.route_table[r][d] = entry;
    }
  }
  // Parallel-kernel partition hint: one partition per physical cluster, so a
  // partition cut crosses only inter-cluster media (wireless / gateway hops).
  spec.partition_hint.resize(static_cast<std::size_t>(num_routers));
  for (int r = 0; r < num_routers; ++r) {
    spec.partition_hint[static_cast<std::size_t>(r)] = r / kOwnTilesPerCluster;
  }
  fill_own_positions(spec, 1);
  return spec;
}

NetworkSpec build_own256(const TopologyOptions& options) {
  return build_own256_impl(options, AntennaPlacement::kCorners);
}

NetworkSpec build_own1024(const TopologyOptions& options) {
  NetworkSpec spec;
  spec.name = "own-1024";
  spec.num_nodes = options.num_cores;
  spec.num_vcs = options.num_vcs;
  spec.buffer_depth = options.buffer_depth;
  if (options.num_vcs < 4) {
    throw std::invalid_argument("OWN-1024 needs >= 4 VCs (one per class)");
  }
  spec.vc_classes = {{0, 1}, {1, 1}, {2, 1}, {3, options.num_vcs - 3}};

  const int num_routers = 256;
  spec.routers.assign(num_routers, {1, 15});
  spec.nodes.resize(options.num_cores);
  for (NodeId n = 0; n < options.num_cores; ++n) {
    spec.nodes[n].router = n / options.concentration;
  }
  for (int g = 0; g < 4; ++g) {
    for (int c = 0; c < kOwnClustersPerGroup; ++c) {
      for (Antenna a : {Antenna::kA, Antenna::kB, Antenna::kC, Antenna::kD}) {
        spec.routers[own_router(g, c, antenna_tile(a))] = {2, 16};
      }
    }
  }

  // Same 8-lambda home-waveguide slices as OWN-256 (see build_own256).
  const int photonic_cpf = options.photonic_cpf > 0 ? options.photonic_cpf : 4;
  for (int g = 0; g < 4; ++g) {
    for (int c = 0; c < kOwnClustersPerGroup; ++c) {
      add_cluster_waveguides(spec, g, c, photonic_cpf, options.max_packet_flits,
                             options.ideal_arbitration
                                 ? ArbitrationKind::kIdeal
                                 : ArbitrationKind::kTokenRing);
    }
  }

  // SWMR wireless channels (Table II): 8 inter-group channels cross the
  // group-array bisection.
  const int wireless_cpf = resolve_cpf(options.wireless_cpf, 8.0, options);
  for (const OwnGroupChannel& ch : own1024_channels()) {
    MediumSpec medium;
    medium.medium = MediumType::kWireless;
    const int tile = antenna_tile(ch.antenna);
    for (int c = 0; c < kOwnClustersPerGroup; ++c) {
      medium.writers.push_back({own_router(ch.src_group, c, tile), kWirelessOut});
      medium.readers.push_back({own_router(ch.dst_group, c, tile), kWirelessIn});
    }
    medium.latency = 2;
    medium.cycles_per_flit = wireless_cpf;
    medium.max_packet_flits = options.max_packet_flits;
    medium.distance = distance_of(ch.distance);
    medium.multicast_rx = true;  // every listening cluster pays RX energy
    medium.wireless_channel = ch.id;
    medium.select_reader = [](NodeId, RouterId dst_router) {
      return (dst_router / kOwnTilesPerCluster) % kOwnClustersPerGroup;
    };
    medium.name = "swmr-g" + std::to_string(ch.src_group) + "g" +
                  std::to_string(ch.dst_group);
    spec.media.push_back(std::move(medium));
  }

  // Routing.
  spec.route_table.assign(num_routers, std::vector<RouteEntry>(num_routers));
  for (int r = 0; r < num_routers; ++r) {
    const int rg = r / (kOwnTilesPerCluster * kOwnClustersPerGroup);
    const int rc = (r / kOwnTilesPerCluster) % kOwnClustersPerGroup;
    const int rt = r % kOwnTilesPerCluster;
    for (int d = 0; d < num_routers; ++d) {
      if (d == r) continue;
      const int dg = d / (kOwnTilesPerCluster * kOwnClustersPerGroup);
      const int dc = (d / kOwnTilesPerCluster) % kOwnClustersPerGroup;
      const int dt = d % kOwnTilesPerCluster;
      RouteEntry entry;
      if (dg == rg && dc == rc) {
        entry.out_port = own_writer_port(rt, dt);
        entry.vc_class = own1024_is_gateway_tile(rt) ? kClsPhotonicPost
                                                     : kClsPhotonicPre;
      } else {
        const OwnGroupChannel& ch = own1024_channel(rg, dg);
        const int gate = antenna_tile(ch.antenna);
        if (rt == gate) {
          entry.out_port = kWirelessOut;
          entry.vc_class =
              ch.intra_group() ? kClsWirelessIntra : kClsWirelessInter;
        } else {
          entry.out_port = own_writer_port(rt, gate);
          entry.vc_class = kClsPhotonicPre;
        }
      }
      spec.route_table[r][d] = entry;
    }
  }
  // Parallel-kernel partition hint: one partition per physical cluster, so a
  // partition cut crosses only inter-cluster media (wireless / gateway hops).
  spec.partition_hint.resize(static_cast<std::size_t>(num_routers));
  for (int r = 0; r < num_routers; ++r) {
    spec.partition_hint[static_cast<std::size_t>(r)] = r / kOwnTilesPerCluster;
  }
  fill_own_positions(spec, 4);
  return spec;
}

}  // namespace

NetworkSpec build_own256_placed(const TopologyOptions& options,
                                AntennaPlacement placement) {
  if (options.num_cores != 256) {
    throw std::invalid_argument(
        "build_own256_placed: placement variants are 256-core only");
  }
  return build_own256_impl(options, placement);
}

bool own256_is_gateway_tile(int tile) {
  return tile == antenna_tile(Antenna::kA) ||
         tile == antenna_tile(Antenna::kB) ||
         tile == antenna_tile(Antenna::kC);
}

bool own1024_is_gateway_tile(int tile) {
  return own256_is_gateway_tile(tile) || tile == antenna_tile(Antenna::kD);
}

NetworkSpec build_own(const TopologyOptions& options) {
  if (options.concentration != 4) {
    throw std::invalid_argument("build_own: OWN requires concentration 4");
  }
  if (options.num_vcs < 3) {
    throw std::invalid_argument("build_own: OWN needs >= 3 VCs");
  }
  if (options.num_cores == 256) return build_own256(options);
  if (options.num_cores == 1024) return build_own1024(options);
  throw std::invalid_argument("build_own: OWN is defined for 256/1024 cores");
}

}  // namespace ownsim

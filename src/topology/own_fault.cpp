#include "topology/own_fault.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "topology/bisection.hpp"
#include "topology/own.hpp"
#include "wireless/channel_alloc.hpp"

namespace ownsim {
namespace {

constexpr PortId kPhotonicIn = 0;
constexpr PortId kWirelessIn = 1;
constexpr PortId kWirelessOut = 15;

// Degraded-mode VC classes (see header).
constexpr std::int8_t kClsPre = 0;       // photonic toward a rerouted flow's
                                         // first gateway
constexpr std::int8_t kClsMid = 1;       // photonic toward the final gateway
constexpr std::int8_t kClsPost = 2;      // photonic last hop
constexpr std::int8_t kClsWireless1 = 3; // first wireless hop of a reroute
constexpr std::int8_t kClsWireless2 = 4; // final wireless hop

}  // namespace

FaultSet::FaultSet(std::vector<std::pair<int, int>> failed)
    : failed_(std::move(failed)) {
  for (const auto& [src, dst] : failed_) {
    if (src < 0 || src > 3 || dst < 0 || dst > 3 || src == dst) {
      throw std::invalid_argument("FaultSet: bad cluster pair");
    }
  }
}

void FaultSet::fail(int src_cluster, int dst_cluster) {
  if (src_cluster < 0 || src_cluster > 3 || dst_cluster < 0 ||
      dst_cluster > 3 || src_cluster == dst_cluster) {
    throw std::invalid_argument("FaultSet::fail: bad cluster pair");
  }
  if (!is_failed(src_cluster, dst_cluster)) {
    failed_.emplace_back(src_cluster, dst_cluster);
  }
}

bool FaultSet::is_failed(int src_cluster, int dst_cluster) const {
  return std::find(failed_.begin(), failed_.end(),
                   std::make_pair(src_cluster, dst_cluster)) != failed_.end();
}

int FaultSet::transit_for(int src_cluster, int dst_cluster) const {
  for (int via = 0; via < 4; ++via) {
    if (via == src_cluster || via == dst_cluster) continue;
    if (!is_failed(src_cluster, via) && !is_failed(via, dst_cluster)) {
      return via;
    }
  }
  return -1;
}

RouteEntry own256_fault_route_entry(RouterId r, RouterId d,
                                    const FaultSet& faults) {
  const int rc = r / kOwnTilesPerCluster;
  const int rt = r % kOwnTilesPerCluster;
  const int dc = d / kOwnTilesPerCluster;
  const int dt = d % kOwnTilesPerCluster;
  RouteEntry entry;
  if (dc == rc) {
    entry.out_port = own_writer_port(rt, dt);
    entry.vc_class = own256_is_gateway_tile(rt) ? kClsPost : kClsMid;
  } else {
    const bool direct = !faults.is_failed(rc, dc);
    const int toward = direct ? dc : faults.transit_for(rc, dc);
    const int gate = antenna_tile(own256_channel(rc, toward).src_antenna);
    if (rt == gate) {
      entry.out_port = kWirelessOut;
      entry.vc_class = direct ? kClsWireless2 : kClsWireless1;
    } else {
      entry.out_port = own_writer_port(rt, gate);
      entry.vc_class = direct ? kClsMid : kClsPre;
    }
  }
  return entry;
}

NetworkSpec build_own256_faulted(const TopologyOptions& options,
                                 const FaultSet& faults) {
  if (options.num_cores != 256 || options.concentration != 4) {
    throw std::invalid_argument("build_own256_faulted: needs 256 cores");
  }
  if (options.num_vcs < 5) {
    throw std::invalid_argument(
        "build_own256_faulted: degraded mode needs >= 5 VCs");
  }
  // Every failed pair must have a transit.
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b || !faults.is_failed(a, b)) continue;
      if (faults.transit_for(a, b) < 0) {
        throw std::invalid_argument(
            "build_own256_faulted: cluster pair " + std::to_string(a) + "->" +
            std::to_string(b) + " is unrecoverable");
      }
    }
  }

  NetworkSpec spec;
  spec.name = "own-256-fault" + std::to_string(faults.size());
  spec.num_nodes = options.num_cores;
  spec.num_vcs = options.num_vcs;
  spec.buffer_depth = options.buffer_depth;
  spec.vc_classes = {{0, 1}, {1, 1}, {2, 1}, {3, 1},
                     {4, options.num_vcs - 4}};

  const int num_routers = 64;
  spec.routers.assign(num_routers, {1, 15});
  spec.nodes.resize(options.num_cores);
  for (NodeId n = 0; n < options.num_cores; ++n) {
    spec.nodes[n].router = n / options.concentration;
  }
  fill_own_positions(spec, /*groups=*/1);

  // Gateway ports exist only for alive channel directions.
  for (const OwnChannel& ch : own256_channels()) {
    if (faults.is_failed(ch.src_cluster, ch.dst_cluster)) continue;
    auto& src = spec.routers[own_router(
        0, ch.src_cluster, antenna_tile(ch.src_antenna))];
    src.num_net_out = 16;
    auto& dst = spec.routers[own_router(
        0, ch.dst_cluster, antenna_tile(ch.dst_antenna))];
    dst.num_net_in = 2;
  }

  const int photonic_cpf = options.photonic_cpf > 0 ? options.photonic_cpf : 4;
  for (int c = 0; c < kOwnClustersPerGroup; ++c) {
    for (int home = 0; home < kOwnTilesPerCluster; ++home) {
      MediumSpec wg;
      wg.medium = MediumType::kPhotonic;
      for (int t = 0; t < kOwnTilesPerCluster; ++t) {
        if (t == home) continue;
        wg.writers.push_back({own_router(0, c, t), own_writer_port(t, home)});
      }
      wg.readers = {{own_router(0, c, home), kPhotonicIn}};
      wg.latency = 2;
      wg.cycles_per_flit = photonic_cpf;
      wg.max_packet_flits = options.max_packet_flits;
      wg.distance = 25.0_mm;
      wg.name = "wg-c" + std::to_string(c) + "t" + std::to_string(home);
      spec.media.push_back(std::move(wg));
    }
  }

  const int wireless_cpf = resolve_cpf(options.wireless_cpf, 8.0, options);
  for (const OwnChannel& ch : own256_channels()) {
    if (faults.is_failed(ch.src_cluster, ch.dst_cluster)) continue;
    LinkSpec link;
    link.src_router =
        own_router(0, ch.src_cluster, antenna_tile(ch.src_antenna));
    link.src_port = kWirelessOut;
    link.dst_router =
        own_router(0, ch.dst_cluster, antenna_tile(ch.dst_antenna));
    link.dst_port = kWirelessIn;
    link.medium = MediumType::kWireless;
    link.latency = 2;
    link.cycles_per_flit = wireless_cpf;
    link.distance = distance_of(ch.distance);
    link.wireless_channel = ch.id;
    link.name = "wl" + std::to_string(ch.id);
    spec.links.push_back(link);
  }

  // Routing. For destination cluster dc from cluster rc:
  //   alive (rc,dc): photonic kClsMid toward the direct gateway, wireless
  //                  kClsWireless2 — transit clusters fall into this case
  //                  automatically for the second leg.
  //   failed (rc,dc): photonic kClsPre toward the gateway of (rc, via),
  //                  wireless kClsWireless1.
  spec.route_table.assign(num_routers, std::vector<RouteEntry>(num_routers));
  for (int r = 0; r < num_routers; ++r) {
    for (int d = 0; d < num_routers; ++d) {
      if (d == r) continue;
      spec.route_table[r][d] = own256_fault_route_entry(r, d, faults);
    }
  }
  return spec;
}

}  // namespace ownsim

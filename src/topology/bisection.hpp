// Equal-bisection-bandwidth normalization (§V.A: "we have kept the bisection
// bandwidth same for all the architectures by adding appropriate delay into
// the network").
//
// Reference point: OWN's wireless bisection. Cutting the 2x2 cluster (or
// group) array in half crosses 8 unidirectional wireless channels of
// 32 Gb/s = 256 Gb/s. Every other topology's bisection-crossing channels are
// then serialized (cycles/flit) so its bisection bandwidth matches:
//
//   channel_rate = target / effective_crossing_channels
//   cycles_per_flit = flit_bits * clock / channel_rate   (clamped to [1,64])
//
// "Effective" counts shared MWSR waveguides at half weight: a waveguide with
// its home on one side only carries cut-crossing traffic from the writers on
// the far side (about half of its writers under uniform traffic).
//
// The derived per-technology rates are physically coherent with the paper:
//   wireless channel          32 Gb/s  (Table III ideal scenario)
//   OWN intra-cluster wavegd. 32 Gb/s  (64 lambda split over 16 homes, 8 Gb/s/lambda)
//   OptXB / p-Clos photonics  ~8 Gb/s  (1 lambda per home of the same laser budget)
//   CMesh mesh link           16 Gb/s at 256 cores, 8 Gb/s at 1024
#pragma once

#include "network/flit.hpp"
#include "topology/options.hpp"

namespace ownsim {

/// Target bisection bandwidth in Gb/s (OWN's wireless bisection).
double bisection_target_gbps();

/// Serialization (cycles/flit) so `crossing_channels` channels of one type
/// jointly present `bisection_target_gbps()` across the cut.
/// `crossing_channels` may be fractional (effective counts).
int cycles_per_flit_for_bisection(double crossing_channels,
                                  const TopologyOptions& options);

/// Convenience: resolves an explicit override (>0) or derives from the rule.
int resolve_cpf(int override_cpf, double crossing_channels,
                const TopologyOptions& options);

}  // namespace ownsim

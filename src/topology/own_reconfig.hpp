// OWN-256 reconfiguration channels (paper §IV Table III: "links 13-16 are
// reserved for reconfiguration channels that could adaptively be utilized to
// improve performance"; §III.A: "The antennas (D0-D3) will be used for
// intra-cluster communication" — we use them, per Table III's note, as
// adaptive extra inter-cluster capacity).
//
// A `ReconfigPlan` assigns the four spare band-plan links to the four
// most-loaded directed cluster pairs of a traffic pattern (profiled
// analytically from the pattern's permutation). The reconfigured network
// adds a second wireless channel between those pairs, terminated on the D
// corners; tiles in the bottom half of a cluster (rows 2-3, nearest the D
// corner) route through the new channel, splitting the pair's load across
// two gateways. Everything else — VC classes, deadlock argument, energy
// accounting (channels 12-15 of the band plan) — is unchanged.
#pragma once

#include <array>
#include <utility>

#include "network/spec.hpp"
#include "topology/options.hpp"
#include "traffic/patterns.hpp"
#include "wireless/channel_alloc.hpp"

namespace ownsim {

struct ReconfigPlan {
  /// Directed cluster pairs receiving a second (D-antenna) channel.
  std::array<std::pair<int, int>, 4> pairs;
};

/// Profiles `pattern` analytically (deterministic permutations exactly,
/// stochastic patterns by their destination distribution) and picks the four
/// directed cluster pairs carrying the most traffic.
ReconfigPlan plan_reconfig(PatternKind pattern, int num_cores = 256);

/// Distance class of a reconfiguration channel serving `pair`.
DistanceClass reconfig_distance(const std::pair<int, int>& pair);

/// OWN-256 with the plan's four extra channels. Only defined for
/// options.num_cores == 256.
NetworkSpec build_own256_reconfig(const TopologyOptions& options,
                                  const ReconfigPlan& plan);

/// Per-channel distance classes for the 16-channel energy model of a
/// reconfigured OWN-256 (channels 0-11 = Table I, 12-15 = the plan).
std::vector<DistanceClass> reconfig_channel_distances(const ReconfigPlan& plan);

/// SDM reuse sets matching `reconfig_channel_distances` (the reconfiguration
/// channels get their own frequencies — conservatively no reuse).
std::vector<int> reconfig_sdm_groups();

}  // namespace ownsim

#include "topology/cmesh.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "topology/bisection.hpp"

namespace ownsim {
namespace {

enum Direction { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

}  // namespace

NetworkSpec build_cmesh(const TopologyOptions& options) {
  const int num_routers = options.num_cores / options.concentration;
  const int k = static_cast<int>(std::lround(std::sqrt(num_routers)));
  if (k * k != num_routers || options.num_cores % options.concentration != 0) {
    throw std::invalid_argument("build_cmesh: cores/concentration not square");
  }

  NetworkSpec spec;
  spec.name = "cmesh-" + std::to_string(options.num_cores) +
              (options.cmesh_o1turn ? "-o1turn" : "");
  spec.num_nodes = options.num_cores;
  spec.num_vcs = options.num_vcs;
  spec.buffer_depth = options.buffer_depth;
  if (options.cmesh_o1turn) {
    if (options.num_vcs < 2) {
      throw std::invalid_argument("build_cmesh: O1TURN needs >= 2 VCs");
    }
    // O1TURN deadlock freedom: XY packets in the lower VC half, YX in the
    // upper half (Seo et al.).
    const int half = options.num_vcs / 2;
    spec.vc_classes = {{0, half}, {half, options.num_vcs - half}};
  } else {
    spec.vc_classes = {{0, options.num_vcs}};  // XY DOR needs one class
  }

  spec.nodes.resize(options.num_cores);
  for (NodeId n = 0; n < options.num_cores; ++n) {
    spec.nodes[n].router = n / options.concentration;
  }

  // Border routers have fewer ports; assign a compact port id per existing
  // direction (same index on the input and output sides).
  auto router_at = [&](int x, int y) { return y * k + x; };
  std::vector<std::array<PortId, 4>> dir_port(
      static_cast<std::size_t>(num_routers), {-1, -1, -1, -1});
  spec.routers.assign(num_routers, {0, 0});
  for (int y = 0; y < k; ++y) {
    for (int x = 0; x < k; ++x) {
      const RouterId r = router_at(x, y);
      PortId next = 0;
      if (x + 1 < k) dir_port[r][kEast] = next++;
      if (x > 0) dir_port[r][kWest] = next++;
      if (y > 0) dir_port[r][kNorth] = next++;
      if (y + 1 < k) dir_port[r][kSouth] = next++;
      spec.routers[r] = {next, next};
    }
  }

  // Bisection: a vertical cut crosses k links per direction = 2k channels.
  const int cpf = resolve_cpf(options.electrical_cpf, 2.0 * k, options);
  // 50 mm die at 256 cores, 100 mm MCM at 1024; hop length = edge / k.
  const Length edge = options.num_cores <= 256 ? 50.0_mm : 100.0_mm;
  const Length hop = edge / static_cast<double>(k);

  auto add_link = [&](RouterId src, Direction sd, RouterId dst, Direction dd) {
    LinkSpec link;
    link.src_router = src;
    link.src_port = dir_port[src][sd];
    link.dst_router = dst;
    link.dst_port = dir_port[dst][dd];
    link.medium = MediumType::kElectrical;
    link.latency = 1;
    link.cycles_per_flit = cpf;
    link.distance = hop;
    link.name = "mesh" + std::to_string(src) + "-" + std::to_string(dst);
    spec.links.push_back(link);
  };

  for (int y = 0; y < k; ++y) {
    for (int x = 0; x < k; ++x) {
      const RouterId r = router_at(x, y);
      if (x + 1 < k) {
        add_link(r, kEast, router_at(x + 1, y), kWest);
        add_link(router_at(x + 1, y), kWest, r, kEast);
      }
      if (y + 1 < k) {
        add_link(r, kSouth, router_at(x, y + 1), kNorth);
        add_link(router_at(x, y + 1), kNorth, r, kSouth);
      }
    }
  }

  // Floorplan: routers at grid-cell centers.
  spec.router_xy.resize(static_cast<std::size_t>(num_routers));
  for (int r = 0; r < num_routers; ++r) {
    spec.router_xy[static_cast<std::size_t>(r)] = {(r % k + 0.5) * hop,
                                                   (r / k + 0.5) * hop};
  }

  // Dimension-order routing tables. Primary: XY. With O1TURN enabled a
  // second YX table carries the packets of the upper VC class.
  auto fill_dor = [&](std::vector<std::vector<RouteEntry>>& table,
                      bool x_first, std::int8_t vc_class) {
    table.assign(num_routers, std::vector<RouteEntry>(num_routers));
    for (int r = 0; r < num_routers; ++r) {
      const int rx = r % k;
      const int ry = r / k;
      for (int d = 0; d < num_routers; ++d) {
        if (d == r) continue;
        const int dx = d % k;
        const int dy = d / k;
        Direction dir;
        const bool need_x = dx != rx;
        const bool need_y = dy != ry;
        if ((x_first && need_x) || (!need_y && need_x)) {
          dir = dx > rx ? kEast : kWest;
        } else {
          dir = dy > ry ? kSouth : kNorth;
        }
        table[r][d] = {dir_port[r][dir], vc_class};
      }
    }
  };
  fill_dor(spec.route_table, /*x_first=*/true, 0);
  if (options.cmesh_o1turn) {
    fill_dor(spec.route_table_alt, /*x_first=*/false, 1);
    spec.alt_min_class = 1;
  }
  return spec;
}

}  // namespace ownsim

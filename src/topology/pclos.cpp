#include "topology/pclos.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "topology/bisection.hpp"

namespace ownsim {

NetworkSpec build_pclos(const TopologyOptions& options) {
  const int num_routers = options.num_cores / options.concentration;
  const int s = static_cast<int>(std::lround(std::sqrt(num_routers)));
  if (options.num_cores % options.concentration != 0 || s * s != num_routers) {
    throw std::invalid_argument("build_pclos: cores/concentration not square");
  }
  // s leaves (ids 0..s-1) + s middles (ids s..2s-1).
  const int cores_per_leaf = options.num_cores / s;

  NetworkSpec spec;
  spec.name = "pclos-" + std::to_string(options.num_cores);
  spec.num_nodes = options.num_cores;
  spec.num_vcs = options.num_vcs;
  spec.buffer_depth = options.buffer_depth;
  spec.vc_classes = {{0, options.num_vcs}};  // leaf->middle->leaf: acyclic

  spec.routers.assign(2 * s, {s, s});
  spec.nodes.resize(options.num_cores);
  for (NodeId n = 0; n < options.num_cores; ++n) {
    spec.nodes[n].router = n / cores_per_leaf;
  }

  // Effective bisection crossing ~ s^2/2 photonic stage links (half of all
  // leaf<->middle pairs straddle the cut).
  const int cpf = resolve_cpf(options.photonic_cpf,
                              0.5 * static_cast<double>(s) * s, options);
  const Length stage = options.num_cores <= 256 ? 30.0_mm : 60.0_mm;

  auto add_link = [&](RouterId src, PortId sp, RouterId dst, PortId dp,
                      const char* tag) {
    LinkSpec link;
    link.src_router = src;
    link.src_port = sp;
    link.dst_router = dst;
    link.dst_port = dp;
    link.medium = MediumType::kPhotonic;
    link.latency = 2;
    link.cycles_per_flit = cpf;
    link.distance = stage;
    link.name = std::string(tag) + std::to_string(src) + "-" +
                std::to_string(dst);
    spec.links.push_back(link);
  };

  for (int leaf = 0; leaf < s; ++leaf) {
    for (int mid = 0; mid < s; ++mid) {
      add_link(leaf, mid, s + mid, leaf, "up");    // leaf out port = middle id
      add_link(s + mid, leaf, leaf, mid, "down");  // middle out port = leaf id
    }
  }

  // Floorplan: leaves along the die bottom, middle switches along the top.
  {
    const Length die = options.num_cores <= 256 ? 50.0_mm : 100.0_mm;
    spec.router_xy.resize(static_cast<std::size_t>(2 * s));
    for (int i = 0; i < s; ++i) {
      const Length x = (i + 0.5) * die / static_cast<double>(s);
      spec.router_xy[static_cast<std::size_t>(i)] = {x, die * 0.25};
      spec.router_xy[static_cast<std::size_t>(s + i)] = {x, die * 0.75};
    }
  }

  spec.route_table.assign(2 * s, std::vector<RouteEntry>(2 * s));
  for (int r = 0; r < 2 * s; ++r) {
    for (int d = 0; d < 2 * s; ++d) {
      if (d == r) continue;
      RouteEntry entry{0, 0};
      if (r < s && d < s) {
        entry.out_port = (r + d) % s;  // deterministic middle choice
      } else if (r >= s && d < s) {
        entry.out_port = d;  // middle: straight down to the leaf
      }
      // Routes toward middle ids are structurally valid but never used
      // (nodes attach to leaves only); they keep port 0.
      spec.route_table[r][d] = entry;
    }
  }
  return spec;
}

}  // namespace ownsim

// OWN-256 wireless-channel fault tolerance.
//
// The paper positions OWN in a line of work on reconfigurable/fault-tolerant
// photonic NoCs ([12]) but does not evaluate failures. This extension models
// the natural recovery: when the direct channel c -> c' is down, traffic is
// rerouted through a transit cluster c'' whose channels c -> c'' and
// c'' -> c' are alive, giving a 2-wireless-hop degraded path
// (photonic -> wireless -> photonic -> wireless -> photonic, 5 hops).
//
// Deadlock freedom needs one more class level than the healthy network; the
// degraded build uses five classes over >= 5 VCs:
//   VC0  photonic toward the FIRST gateway of a rerouted flow
//   VC1  photonic toward the LAST-hop gateway (healthy flows start here too)
//   VC2  photonic last hop (out of a receiving gateway)
//   VC3  wireless hop 1 of rerouted flows
//   VC4+ wireless final hop (all healthy traffic and hop 2 of rerouted)
// Class digraph 0 -> w3 -> 1 -> w4 -> 2 -> ejection: acyclic. The scheme is
// uniform per (router, destination): routers in cluster c route toward a
// destination cluster c' in "one-more-wireless-hop" classes iff (c, c') is
// failed, which is exactly the transit position of rerouted packets.
#pragma once

#include <utility>
#include <vector>

#include "network/spec.hpp"
#include "topology/options.hpp"

namespace ownsim {

/// Set of failed unidirectional inter-cluster channels.
class FaultSet {
 public:
  FaultSet() = default;
  explicit FaultSet(std::vector<std::pair<int, int>> failed);

  void fail(int src_cluster, int dst_cluster);
  bool is_failed(int src_cluster, int dst_cluster) const;
  std::size_t size() const { return failed_.size(); }

  /// Transit cluster for a failed pair (lowest-id cluster with both legs
  /// alive), or -1 when the pair cannot be recovered.
  int transit_for(int src_cluster, int dst_cluster) const;

 private:
  std::vector<std::pair<int, int>> failed_;
};

/// OWN-256 with `faults` applied: failed channels are removed from the
/// floorplan (their gateway ports disappear) and affected traffic takes the
/// degraded 2-wireless-hop path. Requires options.num_vcs >= 5. Throws
/// std::invalid_argument when some pair has no alive transit.
NetworkSpec build_own256_faulted(const TopologyOptions& options,
                                 const FaultSet& faults);

/// Route entry at router `r` toward destination router `d` under `faults`,
/// using the degraded-mode class scheme above. This is the single source of
/// truth for OWN-256 fault routing: the builder fills its table with it, and
/// the runtime persistent-failure detector (fault/campaign.*) re-invokes it
/// to patch routes online after a mid-run channel death. Preconditions:
/// r != d, and the (r, d) cluster pair is alive or recoverable.
RouteEntry own256_fault_route_entry(RouterId r, RouterId d,
                                    const FaultSet& faults);

}  // namespace ownsim

// OWN: the paper's hybrid photonic-wireless NoC (§III).
//
// Cores are addressed (g, c, t, p): G groups x C=4 clusters x T=16 tiles x
// P=4 cores. Every cluster is a photonic MWSR crossbar: 16 home waveguides
// (one per tile, token-arbitrated), so any intra-cluster packet is one
// photonic hop. Inter-cluster communication is wireless:
//
//   OWN-256  (G=1): 12 dedicated point-to-point channels between cluster
//            corner transceivers (Table I, wireless/channel_alloc.*).
//   OWN-1024 (G=4): 16 SWMR channels (Table II): 12 inter-group multicast
//            channels (token among the 4 transmitting clusters; all 4
//            destination clusters listen, the intended one forwards) and 4
//            intra-group channels on the D antennas.
//
// Worst-case path is 3 hops: photonic to the gateway corner, one wireless
// hop, photonic to the destination tile.
//
// Deadlock freedom: VC0 carries photonic hops *toward* a gateway (and local
// traffic from non-corner tiles), VC1 carries photonic hops *out of* a
// corner router (the last hop), and the upper VCs carry wireless hops
// (VC2+VC3 in OWN-256; VC2 intra-group / VC3 inter-group in OWN-1024). The
// class digraph VC0 -> wireless -> VC1 -> ejection is acyclic. This realizes
// the paper's "2 VCs photonic + 2 VCs wireless" (256) and per-category VC
// restriction (1024) in a provably deadlock-free form (see DESIGN.md).
#pragma once

#include "network/spec.hpp"
#include "topology/options.hpp"
#include "wireless/channel_alloc.hpp"

namespace ownsim {

/// Builds OWN-256 (options.num_cores == 256) or OWN-1024 (== 1024).
NetworkSpec build_own(const TopologyOptions& options);

/// Wireless transceiver placement within each cluster (§III.A). The paper
/// argues for corners: "If all the wireless transceivers were located in
/// close proximity (center of the cluster), then all inter-cluster traffic
/// will be directed to the center which could lead to load and thermal
/// imbalance." `kCenter` builds that strawman so the claim can be measured
/// (see bench_thermal).
enum class AntennaPlacement { kCorners, kCenter };

/// OWN-256 with an explicit antenna placement; `kCorners` == build_own(256).
NetworkSpec build_own256_placed(const TopologyOptions& options,
                                AntennaPlacement placement);

/// Tiles per cluster / clusters per group in OWN.
inline constexpr int kOwnTilesPerCluster = 16;
inline constexpr int kOwnClustersPerGroup = 4;

/// Router id for (group, cluster, tile).
inline RouterId own_router(int group, int cluster, int tile) {
  return (group * kOwnClustersPerGroup + cluster) * kOwnTilesPerCluster + tile;
}

/// Photonic writer-port index on the router of tile `src` for the waveguide
/// whose home is tile `dst` (same cluster, src != dst).
inline PortId own_writer_port(int src_tile, int dst_tile) {
  return dst_tile < src_tile ? dst_tile : dst_tile - 1;
}

/// Fills `spec.router_xy` with the OWN die floorplan (2x2 clusters of 25 mm,
/// tiles on a 4x4 grid per cluster; `groups` > 1 tiles the group quadrants).
void fill_own_positions(NetworkSpec& spec, int groups);

/// True if `tile` hosts a wireless transceiver in OWN-256 (corners A, B, C).
bool own256_is_gateway_tile(int tile);

/// True if `tile` hosts a wireless transceiver in OWN-1024 (all 4 corners).
bool own1024_is_gateway_tile(int tile);

}  // namespace ownsim

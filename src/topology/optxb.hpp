// All-photonic optical crossbar baseline (Corona-style, §V: "OptXB").
//
// cores/4 concentrated routers on one chip-spanning MWSR crossbar: every
// router owns a "home" waveguide it reads, and writes the other R-1 homes
// through token arbitration. Network diameter is a single hop; the cost is
// O(R^2) writer endpoints and, physically, the millions of ring resonators
// the paper calls out as unbuildable (see photonic/ring_budget.*).
#pragma once

#include "network/spec.hpp"
#include "topology/options.hpp"

namespace ownsim {

NetworkSpec build_optxb(const TopologyOptions& options);

/// Output-port index on router `src` for the waveguide whose home is `dst`.
inline PortId optxb_writer_port(RouterId src, RouterId dst) {
  return dst < src ? dst : dst - 1;
}

}  // namespace ownsim

#include "topology/wireless_cmesh.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "topology/bisection.hpp"

namespace ownsim {
namespace {

constexpr int kClusterSize = 4;
// Local electrical crossbar: port index on router `lr` toward local `ld`.
PortId xbar_port(int lr, int ld) { return ld < lr ? ld : ld - 1; }

enum Direction { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

}  // namespace

NetworkSpec build_wireless_cmesh(const TopologyOptions& options) {
  const int num_routers = options.num_cores / options.concentration;
  const int num_clusters = num_routers / kClusterSize;
  const int kw = static_cast<int>(std::lround(std::sqrt(num_clusters)));
  if (options.num_cores % options.concentration != 0 ||
      num_routers % kClusterSize != 0 || kw * kw != num_clusters) {
    throw std::invalid_argument("build_wireless_cmesh: bad core count");
  }

  NetworkSpec spec;
  spec.name = "wcmesh-" + std::to_string(options.num_cores);
  spec.num_nodes = options.num_cores;
  spec.num_vcs = options.num_vcs;
  spec.buffer_depth = options.buffer_depth;
  spec.vc_classes = {{0, options.num_vcs}};  // XY DOR over clusters: acyclic

  spec.routers.assign(num_routers, {3, 3});
  spec.nodes.resize(options.num_cores);
  for (NodeId n = 0; n < options.num_cores; ++n) {
    spec.nodes[n].router = n / options.concentration;
  }

  // Wireless heads: the 3 electrical ports plus one port per grid neighbor.
  auto head = [&](int cx, int cy) { return (cy * kw + cx) * kClusterSize; };
  std::vector<std::array<PortId, 4>> dir_port(
      static_cast<std::size_t>(num_routers), {-1, -1, -1, -1});
  for (int cy = 0; cy < kw; ++cy) {
    for (int cx = 0; cx < kw; ++cx) {
      const RouterId r = head(cx, cy);
      PortId next = 3;
      if (cx + 1 < kw) dir_port[r][kEast] = next++;
      if (cx > 0) dir_port[r][kWest] = next++;
      if (cy > 0) dir_port[r][kNorth] = next++;
      if (cy + 1 < kw) dir_port[r][kSouth] = next++;
      spec.routers[r] = {next, next};
    }
  }

  // Local links don't cross the global bisection; 4 cycles/flit ~ 64 Gb/s
  // short wires, comparable to OWN's intra-cluster service rate.
  const int e_cpf = options.electrical_cpf > 0 ? options.electrical_cpf : 4;
  // A vertical cut crosses kw wireless rows in each direction.
  const int w_cpf = resolve_cpf(options.wireless_cpf, 2.0 * kw, options);
  const Length edge = options.num_cores <= 256 ? 50.0_mm : 100.0_mm;
  const Length whop = edge / static_cast<double>(kw);

  auto add_link = [&](RouterId src, PortId sp, RouterId dst, PortId dp,
                      MediumType medium, int cpf, Length distance,
                      int latency) {
    LinkSpec link;
    link.src_router = src;
    link.src_port = sp;
    link.dst_router = dst;
    link.dst_port = dp;
    link.medium = medium;
    link.latency = latency;
    link.cycles_per_flit = cpf;
    link.distance = distance;
    link.name = (medium == MediumType::kWireless ? "wl" : "el") +
                std::to_string(src) + "-" + std::to_string(dst);
    spec.links.push_back(link);
  };

  // Intra-cluster full crossbar.
  for (int c = 0; c < num_clusters; ++c) {
    for (int a = 0; a < kClusterSize; ++a) {
      for (int b = 0; b < kClusterSize; ++b) {
        if (a == b) continue;
        add_link(c * kClusterSize + a, xbar_port(a, b), c * kClusterSize + b,
                 xbar_port(b, a), MediumType::kElectrical, e_cpf, 6.0_mm, 1);
      }
    }
  }

  // Wireless XY grid between cluster heads.
  for (int cy = 0; cy < kw; ++cy) {
    for (int cx = 0; cx < kw; ++cx) {
      const RouterId r = head(cx, cy);
      if (cx + 1 < kw) {
        const RouterId e = head(cx + 1, cy);
        add_link(r, dir_port[r][kEast], e, dir_port[e][kWest],
                 MediumType::kWireless, w_cpf, whop, 2);
        add_link(e, dir_port[e][kWest], r, dir_port[r][kEast],
                 MediumType::kWireless, w_cpf, whop, 2);
      }
      if (cy + 1 < kw) {
        const RouterId s = head(cx, cy + 1);
        add_link(r, dir_port[r][kSouth], s, dir_port[s][kNorth],
                 MediumType::kWireless, w_cpf, whop, 2);
        add_link(s, dir_port[s][kNorth], r, dir_port[r][kSouth],
                 MediumType::kWireless, w_cpf, whop, 2);
      }
    }
  }

  // Floorplan: clusters on a kw x kw grid, the 4 routers of a cluster on a
  // small 2x2 inside their cell.
  spec.router_xy.resize(static_cast<std::size_t>(num_routers));
  for (int r = 0; r < num_routers; ++r) {
    const int cluster = r / kClusterSize;
    const int local = r % kClusterSize;
    const Length base_x = (cluster % kw) * whop;
    const Length base_y = (cluster / kw) * whop;
    spec.router_xy[static_cast<std::size_t>(r)] = {
        base_x + (local % 2 + 0.5) * whop / 2.0,
        base_y + (local / 2 + 0.5) * whop / 2.0};
  }

  // Routing: intra-cluster direct; otherwise local head -> wireless XY DOR ->
  // remote head -> local crossbar.
  spec.route_table.assign(num_routers, std::vector<RouteEntry>(num_routers));
  for (int r = 0; r < num_routers; ++r) {
    const int rc = r / kClusterSize;
    const int rl = r % kClusterSize;
    const int rcx = rc % kw;
    const int rcy = rc / kw;
    for (int d = 0; d < num_routers; ++d) {
      if (d == r) continue;
      const int dc = d / kClusterSize;
      const int dl = d % kClusterSize;
      RouteEntry entry{0, 0};
      if (dc == rc) {
        entry.out_port = xbar_port(rl, dl);
      } else if (rl != 0) {
        entry.out_port = xbar_port(rl, 0);  // go to the cluster head
      } else {
        const int dcx = dc % kw;
        const int dcy = dc / kw;
        Direction dir;
        if (dcx > rcx) {
          dir = kEast;
        } else if (dcx < rcx) {
          dir = kWest;
        } else if (dcy > rcy) {
          dir = kSouth;
        } else {
          dir = kNorth;
        }
        entry.out_port = dir_port[r][dir];
      }
      spec.route_table[r][d] = entry;
    }
  }
  return spec;
}

}  // namespace ownsim

#include "topology/bisection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ownsim {

double bisection_target_gbps() { return 256.0; }

int cycles_per_flit_for_bisection(double crossing_channels,
                                  const TopologyOptions& options) {
  if (crossing_channels <= 0.0) {
    throw std::invalid_argument("bisection: crossing_channels must be > 0");
  }
  const double channel_gbps = bisection_target_gbps() / crossing_channels;
  const double full_rate_gbps =
      static_cast<double>(options.flit_bits) * options.clock_ghz;
  const double cpf = full_rate_gbps / channel_gbps;
  return static_cast<int>(std::clamp(std::lround(cpf), 1L, 128L));
}

int resolve_cpf(int override_cpf, double crossing_channels,
                const TopologyOptions& options) {
  if (override_cpf > 0) return override_cpf;
  return cycles_per_flit_for_bisection(crossing_channels, options);
}

}  // namespace ownsim

// Name-based topology registry used by the driver, examples and benches.
#pragma once

#include <string>
#include <vector>

#include "network/spec.hpp"
#include "topology/options.hpp"

namespace ownsim {

enum class TopologyKind {
  kCMesh,
  kWirelessCMesh,
  kOptXB,
  kPClos,
  kOwn,
  kFile,  ///< declarative topology file (src/topofile/)
};

/// "cmesh", "wcmesh"/"wireless-cmesh", "optxb", "pclos"/"p-clos", "own",
/// "file". Throws std::invalid_argument on unknown names.
TopologyKind parse_topology(const std::string& name);

const char* to_string(TopologyKind kind);

/// All topologies compared in the paper's §V, in figure order.
std::vector<TopologyKind> paper_topologies();

/// Dispatches to the matching build_* function.
NetworkSpec build_topology(TopologyKind kind, const TopologyOptions& options);

}  // namespace ownsim

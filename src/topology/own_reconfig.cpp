#include "topology/own_reconfig.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "topology/bisection.hpp"
#include "topology/own.hpp"

namespace ownsim {
namespace {

constexpr PortId kPhotonicIn = 0;
constexpr PortId kWirelessIn = 1;
constexpr PortId kWirelessOut = 15;
constexpr std::int8_t kClsPhotonicPre = 0;
constexpr std::int8_t kClsPhotonicPost = 1;
constexpr std::int8_t kClsWireless = 2;

int cluster_of(NodeId node) { return node / (4 * kOwnTilesPerCluster); }

}  // namespace

ReconfigPlan plan_reconfig(PatternKind pattern, int num_cores) {
  if (num_cores != 256) {
    throw std::invalid_argument("plan_reconfig: reconfiguration is an "
                                "OWN-256 extension");
  }
  // Analytic profile: count inter-cluster traffic per directed pair. The
  // stochastic patterns spread uniformly, so we sample their distribution;
  // permutations are counted exactly.
  const TrafficPattern traffic(pattern, num_cores);
  Rng rng(1234);
  double counts[4][4] = {};
  if (pattern == PatternKind::kUniform) {
    // Exactly uniform across pairs — leave the decision to the tie-break
    // rather than sampling noise.
  } else {
    const int repeats = traffic.deterministic() ? 1 : 64;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      for (NodeId src = 0; src < num_cores; ++src) {
        const NodeId dst = traffic.dest(src, rng);
        const int cs = cluster_of(src);
        const int cd = cluster_of(dst);
        if (cs != cd) counts[cs][cd] += 1.0;
      }
    }
  }

  // Each D antenna provides one transmitter and one receiver, so the four
  // channels form a derangement of the clusters (every cluster sends on one
  // and receives on one). Pick the derangement carrying the most profiled
  // traffic; ties prefer more diagonal (C2C) channels — the largest
  // latency/energy relief — then lexicographic order for determinism.
  static constexpr int kDerangements[9][4] = {
      {1, 0, 3, 2}, {1, 2, 3, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}, {2, 3, 0, 1},
      {2, 3, 1, 0}, {3, 0, 1, 2}, {3, 2, 0, 1}, {3, 2, 1, 0}};
  int best = 0;
  double best_load = -1.0;
  int best_diagonals = -1;
  for (int k = 0; k < 9; ++k) {
    double load = 0.0;
    int diagonals = 0;
    for (int src = 0; src < 4; ++src) {
      load += counts[src][kDerangements[k][src]];
      diagonals += ((src ^ kDerangements[k][src]) == 2) ? 1 : 0;
    }
    if (load > best_load ||
        (load == best_load && diagonals > best_diagonals)) {
      best = k;
      best_load = load;
      best_diagonals = diagonals;
    }
  }
  ReconfigPlan plan;
  for (int src = 0; src < 4; ++src) {
    plan.pairs[src] = {src, kDerangements[best][src]};
  }
  return plan;
}

DistanceClass reconfig_distance(const std::pair<int, int>& pair) {
  switch (pair.first ^ pair.second) {
    case 1: return DistanceClass::kE2E;
    case 2: return DistanceClass::kC2C;
    case 3: return DistanceClass::kSR;
    default: throw std::invalid_argument("reconfig_distance: bad pair");
  }
}

std::vector<DistanceClass> reconfig_channel_distances(const ReconfigPlan& plan) {
  std::vector<DistanceClass> distances;
  distances.reserve(16);
  for (const OwnChannel& ch : own256_channels()) {
    distances.push_back(ch.distance);
  }
  for (const auto& pair : plan.pairs) {
    distances.push_back(reconfig_distance(pair));
  }
  return distances;
}

std::vector<int> reconfig_sdm_groups() {
  std::vector<int> groups = own256_sdm_groups();  // sets 0..7
  for (int k = 0; k < 4; ++k) groups.push_back(8 + k);
  return groups;
}

NetworkSpec build_own256_reconfig(const TopologyOptions& options,
                                  const ReconfigPlan& plan) {
  if (options.num_cores != 256 || options.concentration != 4) {
    throw std::invalid_argument(
        "build_own256_reconfig: requires 256 cores, concentration 4");
  }
  NetworkSpec spec;
  spec.name = "own-256-reconfig";
  spec.num_nodes = options.num_cores;
  spec.num_vcs = options.num_vcs;
  spec.buffer_depth = options.buffer_depth;
  spec.vc_classes = {{0, 1}, {1, 1}, {2, options.num_vcs - 2}};

  const int num_routers = 64;
  spec.routers.assign(num_routers, {1, 15});
  spec.nodes.resize(options.num_cores);
  for (NodeId n = 0; n < options.num_cores; ++n) {
    spec.nodes[n].router = n / options.concentration;
  }

  // Primary gateways as in OWN-256.
  for (int c = 0; c < kOwnClustersPerGroup; ++c) {
    for (Antenna a : {Antenna::kA, Antenna::kB, Antenna::kC}) {
      spec.routers[own_router(0, c, antenna_tile(a))] = {2, 16};
    }
  }
  // D corners gain ports where the plan lands channels.
  const int d_tile = antenna_tile(Antenna::kD);
  for (const auto& [src, dst] : plan.pairs) {
    auto& src_router = spec.routers[own_router(0, src, d_tile)];
    src_router.num_net_out = 16;
    if (src_router.num_net_in < 1) src_router.num_net_in = 1;
    auto& dst_router = spec.routers[own_router(0, dst, d_tile)];
    dst_router.num_net_in = 2;
    if (dst_router.num_net_out < 15) dst_router.num_net_out = 15;
  }

  const int photonic_cpf = options.photonic_cpf > 0 ? options.photonic_cpf : 4;
  for (int c = 0; c < kOwnClustersPerGroup; ++c) {
    for (int home = 0; home < kOwnTilesPerCluster; ++home) {
      MediumSpec wg;
      wg.medium = MediumType::kPhotonic;
      for (int t = 0; t < kOwnTilesPerCluster; ++t) {
        if (t == home) continue;
        wg.writers.push_back({own_router(0, c, t), own_writer_port(t, home)});
      }
      wg.readers = {{own_router(0, c, home), kPhotonicIn}};
      wg.latency = 2;
      wg.cycles_per_flit = photonic_cpf;
      wg.max_packet_flits = options.max_packet_flits;
      wg.distance = 25.0_mm;
      wg.name = "wg-c" + std::to_string(c) + "t" + std::to_string(home);
      spec.media.push_back(std::move(wg));
    }
  }

  const int wireless_cpf = resolve_cpf(options.wireless_cpf, 8.0, options);
  auto add_wireless = [&](RouterId src, RouterId dst, int channel,
                          DistanceClass distance) {
    LinkSpec link;
    link.src_router = src;
    link.src_port = kWirelessOut;
    link.dst_router = dst;
    link.dst_port = kWirelessIn;
    link.medium = MediumType::kWireless;
    link.latency = 2;
    link.cycles_per_flit = wireless_cpf;
    link.distance = distance_of(distance);
    link.wireless_channel = channel;
    link.name = "wl" + std::to_string(channel);
    spec.links.push_back(link);
  };
  for (const OwnChannel& ch : own256_channels()) {
    add_wireless(own_router(0, ch.src_cluster, antenna_tile(ch.src_antenna)),
                 own_router(0, ch.dst_cluster, antenna_tile(ch.dst_antenna)),
                 ch.id, ch.distance);
  }
  // Reconfiguration channels occupy band-plan links 12-15.
  bool has_channel[4][4] = {};
  for (std::size_t k = 0; k < plan.pairs.size(); ++k) {
    const auto& [src, dst] = plan.pairs[k];
    add_wireless(own_router(0, src, d_tile), own_router(0, dst, d_tile),
                 12 + static_cast<int>(k), reconfig_distance(plan.pairs[k]));
    has_channel[src][dst] = true;
  }

  // Routing: odd-column tiles use the reconfiguration channel when their
  // pair has one. Column parity is spatially interleaved and uncorrelated
  // with the address bits that choose the destination cluster in the
  // paper's permutation patterns (a row-based split would be perfectly
  // anti-correlated with perfect shuffle, whose destination cluster is the
  // row bit, and gain nothing).
  spec.route_table.assign(num_routers, std::vector<RouteEntry>(num_routers));
  for (int r = 0; r < num_routers; ++r) {
    const int rc = r / kOwnTilesPerCluster;
    const int rt = r % kOwnTilesPerCluster;
    for (int d = 0; d < num_routers; ++d) {
      if (d == r) continue;
      const int dc = d / kOwnTilesPerCluster;
      const int dt = d % kOwnTilesPerCluster;
      RouteEntry entry;
      if (dc == rc) {
        entry.out_port = own_writer_port(rt, dt);
        // All four corners may now receive wireless traffic: last-hop class.
        entry.vc_class = (own256_is_gateway_tile(rt) || rt == d_tile)
                             ? kClsPhotonicPost
                             : kClsPhotonicPre;
      } else {
        const int primary = antenna_tile(own256_channel(rc, dc).src_antenna);
        const bool pair_reconfig = has_channel[rc][dc];
        if (rt == primary || (pair_reconfig && rt == d_tile)) {
          // A gateway transmits on its own channel; the split below must
          // never bounce traffic that already reached a gateway (the route
          // table is per-hop, so a parity test here would re-route packets
          // arriving at an odd-numbered gateway tile).
          entry.out_port = kWirelessOut;
          entry.vc_class = kClsWireless;
        } else {
          const int gate =
              (pair_reconfig && (rt % 2) == 1) ? d_tile : primary;
          entry.out_port = own_writer_port(rt, gate);
          entry.vc_class = kClsPhotonicPre;
        }
      }
      spec.route_table[r][d] = entry;
    }
  }
  return spec;
}

}  // namespace ownsim

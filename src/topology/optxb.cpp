#include "topology/optxb.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "topology/bisection.hpp"

namespace ownsim {

NetworkSpec build_optxb(const TopologyOptions& options) {
  if (options.num_cores % options.concentration != 0) {
    throw std::invalid_argument("build_optxb: cores % concentration != 0");
  }
  const int num_routers = options.num_cores / options.concentration;

  NetworkSpec spec;
  spec.name = "optxb-" + std::to_string(options.num_cores);
  spec.num_nodes = options.num_cores;
  spec.num_vcs = options.num_vcs;
  spec.buffer_depth = options.buffer_depth;
  spec.vc_classes = {{0, options.num_vcs}};  // single hop: acyclic

  // Each router: 1 home-waveguide reader in, R-1 writers out.
  spec.routers.assign(num_routers, {1, num_routers - 1});
  spec.nodes.resize(options.num_cores);
  for (NodeId n = 0; n < options.num_cores; ++n) {
    spec.nodes[n].router = n / options.concentration;
  }

  // Effective bisection crossing: all R waveguides at half weight (only the
  // far-side writers of a waveguide carry cut-crossing traffic).
  const int cpf =
      resolve_cpf(options.photonic_cpf, 0.5 * num_routers, options);
  const Length snake = options.num_cores <= 256 ? 50.0_mm : 100.0_mm;

  spec.media.reserve(static_cast<std::size_t>(num_routers));
  for (RouterId home = 0; home < num_routers; ++home) {
    MediumSpec wg;
    wg.medium = MediumType::kPhotonic;
    wg.arbitration = options.ideal_arbitration ? ArbitrationKind::kIdeal
                                               : ArbitrationKind::kTokenRing;
    for (RouterId w = 0; w < num_routers; ++w) {
      if (w == home) continue;
      wg.writers.push_back({w, optxb_writer_port(w, home)});
    }
    wg.readers = {{home, 0}};
    wg.latency = 2;  // ~50 mm snake at ~15 ps/mm, plus O/E conversion
    wg.cycles_per_flit = cpf;
    wg.max_packet_flits = options.max_packet_flits;
    wg.distance = snake;
    wg.name = "optxb-wg" + std::to_string(home);
    spec.media.push_back(std::move(wg));
  }

  // Floorplan: concentrated routers on a square grid under the snake.
  {
    const int k = static_cast<int>(std::lround(std::sqrt(num_routers)));
    const Length cell = snake / static_cast<double>(std::max(1, k));
    spec.router_xy.resize(static_cast<std::size_t>(num_routers));
    for (int r = 0; r < num_routers; ++r) {
      spec.router_xy[static_cast<std::size_t>(r)] = {(r % k + 0.5) * cell,
                                                     (r / k + 0.5) * cell};
    }
  }

  spec.route_table.assign(num_routers, std::vector<RouteEntry>(num_routers));
  for (RouterId r = 0; r < num_routers; ++r) {
    for (RouterId d = 0; d < num_routers; ++d) {
      if (d == r) continue;
      spec.route_table[r][d] = {optxb_writer_port(r, d), 0};
    }
  }
  return spec;
}

}  // namespace ownsim

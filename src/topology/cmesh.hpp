// Concentrated Mesh baseline (§V.A).
//
// cores/4 routers on a sqrt(R) x sqrt(R) grid, 4 cores per router, XY
// dimension-order routing (deadlock-free with a single VC class), radix 8
// (4 mesh ports + 4 cores). Maximum diameter 2(sqrt(R)-1) hops.
#pragma once

#include "network/spec.hpp"
#include "topology/options.hpp"

namespace ownsim {

/// Builds the CMesh NetworkSpec. `num_cores / concentration` must be a
/// perfect square (64 routers at 256 cores, 256 at 1024).
NetworkSpec build_cmesh(const TopologyOptions& options);

}  // namespace ownsim

// OWN wireless channel allocation (paper Tables I and II).
//
// OWN-256 (Table I): the four clusters sit in a 2x2 array
//   0 = NW, 1 = NE, 2 = SE, 3 = SW
// and each cluster places four transceivers on its corner tiles, named
// A/B/C/D. Twelve unidirectional channels connect the cluster pairs:
//
//   diagonal C2C (~60 mm, LD 1.00):  A0->B2, B2->A0, A3->B1, B1->A3
//   edge     E2E (~30 mm, LD 0.50):  A1->B0, B0->A1, A2->B3, B3->A2
//   short    SR  (~10 mm, LD 0.15):  C0->C3, C3->C0, C1->C2, C2->C1
//
// The D antennas are reserved (intra-cluster / reconfiguration use).
//
// OWN-1024 (Table II): four OWN-256 groups in the same 2x2 arrangement.
// Sixteen SWMR channels: for each ordered group pair (g,g') one multicast
// channel written by antenna L of every cluster of g and heard by antenna L
// of every cluster of g' (L = A for edge pairs, B for diagonal, C for short),
// plus one intra-group channel per group on the D antennas. Group-pair
// distance classes mirror Table I; intra-group channels are short-range
// (the paper assumes 3D-stacked groups keep those distances small).
//
// Antenna-letter -> corner-tile placement and the exact letter pairings are
// reconstructions where the paper under-specifies; they change only labels,
// not distances or connectivity (see DESIGN.md §4.5).
#pragma once

#include <vector>

#include "common/quantity.hpp"
#include "common/types.hpp"

namespace ownsim {

/// Wireless link distance classes (Table I / Table III "LD factor").
enum class DistanceClass { kC2C, kE2E, kSR };

const char* to_string(DistanceClass distance);

/// Paper Table I / §IV: radiated-power scaling with link distance.
double ld_factor(DistanceClass distance);

/// Representative physical length of each class (60/30/10 mm).
Length distance_of(DistanceClass distance);

/// Antenna letters A..D map to the four corner tiles of a 4x4-tile cluster.
enum class Antenna : int { kA = 0, kB = 1, kC = 2, kD = 3 };

/// Tile index (0..15) hosting `antenna` within its cluster:
/// A=0 (NW), B=3 (NE), C=12 (SW), D=15 (SE).
int antenna_tile(Antenna antenna);

/// One unidirectional OWN-256 inter-cluster channel.
struct OwnChannel {
  int id = 0;  ///< 0..11; doubles as the Table III band-plan link index
  int src_cluster = 0;
  int dst_cluster = 0;
  Antenna src_antenna = Antenna::kA;
  Antenna dst_antenna = Antenna::kA;
  DistanceClass distance = DistanceClass::kC2C;
};

/// The 12 channels of Table I, in a fixed canonical order.
const std::vector<OwnChannel>& own256_channels();

/// Channel from cluster `src` to cluster `dst` (src != dst).
const OwnChannel& own256_channel(int src_cluster, int dst_cluster);

/// One OWN-1024 SWMR channel (inter-group or intra-group).
struct OwnGroupChannel {
  int id = 0;  ///< 0..15; band-plan link index
  int src_group = 0;
  int dst_group = 0;  ///< == src_group for intra-group channels
  Antenna antenna = Antenna::kA;
  DistanceClass distance = DistanceClass::kC2C;
  bool intra_group() const { return src_group == dst_group; }
};

/// The 16 channels of Table II (12 inter-group + 4 intra-group).
const std::vector<OwnGroupChannel>& own1024_channels();

/// Inter-group channel for ordered pair (src, dst), or the intra-group
/// channel when src == dst.
const OwnGroupChannel& own1024_channel(int src_group, int dst_group);

/// Space-division-multiplexing groups (§V.B): channels whose signals do not
/// intersect may reuse one frequency band. Returns, for each channel id, the
/// SDM reuse-set id; channels sharing a set can share a band-plan link.
std::vector<int> own256_sdm_groups();

/// SDM reuse sets for the 16 OWN-1024 channels: edge and short group-pair
/// channels on opposite sides of the package share frequencies, diagonals
/// cross the center and cannot, and the four intra-group channels are
/// confined to disjoint quadrants and share one band.
std::vector<int> own1024_sdm_groups();

}  // namespace ownsim

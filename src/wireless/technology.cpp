#include "wireless/technology.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace ownsim {

const char* to_string(WirelessTech tech) {
  switch (tech) {
    case WirelessTech::kCmos: return "CMOS";
    case WirelessTech::kBiCmos: return "BiCMOS";
    case WirelessTech::kSiGeHbt: return "SiGe";
  }
  return "?";
}

const char* to_string(Scenario scenario) {
  return scenario == Scenario::kIdeal ? "ideal" : "conservative";
}

WirelessTech parse_tech(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "cmos") return WirelessTech::kCmos;
  if (s == "bicmos") return WirelessTech::kBiCmos;
  if (s == "sige" || s == "hbt" || s == "sigehbt" || s == "sige-hbt") {
    return WirelessTech::kSiGeHbt;
  }
  throw std::invalid_argument("unknown wireless technology: " + name);
}

EnergyPerBit base_efficiency(WirelessTech tech) {
  switch (tech) {
    case WirelessTech::kCmos: return 0.1_pj_per_bit;
    case WirelessTech::kBiCmos: return 0.3_pj_per_bit;
    case WirelessTech::kSiGeHbt: return 0.5_pj_per_bit;
  }
  return EnergyPerBit{};
}

EnergyPerBit efficiency_ramp(WirelessTech tech, Scenario scenario) {
  if (scenario == Scenario::kIdeal) {
    switch (tech) {
      case WirelessTech::kCmos: return 0.05_pj_per_bit;
      case WirelessTech::kBiCmos: return 0.07_pj_per_bit;
      case WirelessTech::kSiGeHbt: return 0.10_pj_per_bit;
    }
  } else {
    switch (tech) {
      case WirelessTech::kCmos: return 0.05_pj_per_bit;
      case WirelessTech::kBiCmos: return 0.06_pj_per_bit;
      case WirelessTech::kSiGeHbt: return 0.07_pj_per_bit;
    }
  }
  return EnergyPerBit{};
}

EnergyPerBit energy_per_bit(WirelessTech tech, Scenario scenario,
                            Frequency freq) {
  // (f - 100 GHz) / 100 GHz is a dimensionless ramp position.
  const double ramp_position = (freq - 100.0_ghz) / 100.0_ghz;
  const double above_anchor = std::max(0.0, ramp_position);
  return base_efficiency(tech) + efficiency_ramp(tech, scenario) * above_anchor;
}

Frequency channel_bandwidth(Scenario scenario) {
  return scenario == Scenario::kIdeal ? 32.0_ghz : 16.0_ghz;
}

Frequency guard_band(Scenario scenario) {
  return scenario == Scenario::kIdeal ? 8.0_ghz : 4.0_ghz;
}

DataRate channel_rate(Scenario scenario) {
  return channel_bandwidth(scenario) * kBit;  // 1 bit/s/Hz OOK
}

}  // namespace ownsim

#include "wireless/technology.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace ownsim {

const char* to_string(WirelessTech tech) {
  switch (tech) {
    case WirelessTech::kCmos: return "CMOS";
    case WirelessTech::kBiCmos: return "BiCMOS";
    case WirelessTech::kSiGeHbt: return "SiGe";
  }
  return "?";
}

const char* to_string(Scenario scenario) {
  return scenario == Scenario::kIdeal ? "ideal" : "conservative";
}

WirelessTech parse_tech(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "cmos") return WirelessTech::kCmos;
  if (s == "bicmos") return WirelessTech::kBiCmos;
  if (s == "sige" || s == "hbt" || s == "sigehbt" || s == "sige-hbt") {
    return WirelessTech::kSiGeHbt;
  }
  throw std::invalid_argument("unknown wireless technology: " + name);
}

double base_efficiency_pj(WirelessTech tech) {
  switch (tech) {
    case WirelessTech::kCmos: return 0.1;
    case WirelessTech::kBiCmos: return 0.3;
    case WirelessTech::kSiGeHbt: return 0.5;
  }
  return 0.0;
}

double efficiency_ramp_pj(WirelessTech tech, Scenario scenario) {
  if (scenario == Scenario::kIdeal) {
    switch (tech) {
      case WirelessTech::kCmos: return 0.05;
      case WirelessTech::kBiCmos: return 0.07;
      case WirelessTech::kSiGeHbt: return 0.10;
    }
  } else {
    switch (tech) {
      case WirelessTech::kCmos: return 0.05;
      case WirelessTech::kBiCmos: return 0.06;
      case WirelessTech::kSiGeHbt: return 0.07;
    }
  }
  return 0.0;
}

double energy_per_bit_pj(WirelessTech tech, Scenario scenario,
                         double freq_ghz) {
  const double above_anchor_100ghz = std::max(0.0, freq_ghz - 100.0) / 100.0;
  return base_efficiency_pj(tech) +
         efficiency_ramp_pj(tech, scenario) * above_anchor_100ghz;
}

double channel_bandwidth_ghz(Scenario scenario) {
  return scenario == Scenario::kIdeal ? 32.0 : 16.0;
}

double guard_band_ghz(Scenario scenario) {
  return scenario == Scenario::kIdeal ? 8.0 : 4.0;
}

double channel_rate_gbps(Scenario scenario) {
  return channel_bandwidth_ghz(scenario);  // 1 bit/s/Hz OOK
}

}  // namespace ownsim

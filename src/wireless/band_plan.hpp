// Table III band-plan generator.
//
// Sixteen frequency-division-multiplexed links. Channel spacing is
// BW + guard (40 GHz ideal / 20 GHz conservative), starting at 100 GHz, so
// the plans span 100-700 GHz (ideal) and 100-400 GHz (conservative).
// Technology per link follows §IV.B:
//   - only the four lowest bands are CMOS-feasible,
//   - SiGe-HBT-only above ~300 GHz,
//   - BiCMOS in between.
// Links 0-11 serve the OWN inter-cluster channels; links 12-15 are reserved
// reconfiguration channels (Table III note).
#pragma once

#include <vector>

#include "common/quantity.hpp"
#include "wireless/technology.hpp"

namespace ownsim {

struct BandPlanLink {
  int index = 0;  ///< 0..15 (paper rows 1..16)
  Frequency center;
  Frequency bandwidth;
  WirelessTech tech = WirelessTech::kCmos;
  EnergyPerBit energy_per_bit;   ///< E(f) at this link's center frequency
  bool reconfiguration = false;  ///< links 13-16 in the paper's numbering
};

class BandPlan {
 public:
  explicit BandPlan(Scenario scenario);

  Scenario scenario() const { return scenario_; }
  const std::vector<BandPlanLink>& links() const { return links_; }
  const BandPlanLink& link(int index) const { return links_.at(static_cast<std::size_t>(index)); }

  /// Indices of the links built from `tech`, ascending frequency.
  std::vector<int> links_of(WirelessTech tech) const;

  /// `nth` allocation choice within a technology, wrapping when more
  /// channels are requested than exist (further SDM/TDM reuse, §V.B).
  /// CMOS/BiCMOS allocate from their lowest band upward (cheapest first);
  /// SiGe-HBT allocates from the top of the plan downward, keeping the
  /// lower-frequency bands free for the power-efficient technologies.
  const BandPlanLink& nth_link_of(WirelessTech tech, int nth) const;

  static constexpr int kNumLinks = 16;
  static constexpr int kNumDataLinks = 12;  ///< rest are reconfiguration

 private:
  Scenario scenario_;
  std::vector<BandPlanLink> links_;
};

}  // namespace ownsim

// Wireless transceiver technology model (paper §IV.B, Table III).
//
// Three device technologies implement the OWN transceivers:
//   CMOS     — lowest power, usable only at the lowest mm-wave bands
//   BiCMOS   — CMOS core with SiGe HBT PA/LNA, mid bands
//   SiGe HBT — full-HBT design, required above ~300 GHz, most power-hungry
//
// Energy per bit at a link's center frequency f is modeled as the paper's
// "base efficiency + efficiency ramp":
//
//   E(f) = base(tech) + ramp(tech, scenario) * (f - 100 GHz) / 100 GHz
//
// with base 0.1 pJ/bit (CMOS) and 0.5 pJ/bit (HBT) straight from §IV.B;
// BiCMOS takes the 0.3 pJ/bit midpoint (reconstruction, see DESIGN.md §4.3).
// Ramps: ideal scenario +0.05 / +0.07 / +0.10 pJ/bit per 100 GHz for
// CMOS / BiCMOS / HBT; conservative +0.05 / +0.06 / +0.07.
#pragma once

#include <string>

#include "common/quantity.hpp"

namespace ownsim {

enum class WirelessTech { kCmos, kBiCmos, kSiGeHbt };

/// Table III has two outlooks: ideal (32 GHz channels) and conservative
/// (16 GHz channels).
enum class Scenario { kIdeal, kConservative };

const char* to_string(WirelessTech tech);
const char* to_string(Scenario scenario);

/// Parses "cmos" / "bicmos" / "sige"/"hbt"; throws on unknown names.
WirelessTech parse_tech(const std::string& name);

/// Base efficiency at the 100 GHz anchor.
EnergyPerBit base_efficiency(WirelessTech tech);

/// Efficiency ramp per 100 GHz above the anchor.
EnergyPerBit efficiency_ramp(WirelessTech tech, Scenario scenario);

/// E(f): energy per bit for a transceiver of `tech` at `freq`.
EnergyPerBit energy_per_bit(WirelessTech tech, Scenario scenario,
                            Frequency freq);

/// Channel bandwidth per scenario: 32 GHz ideal / 16 GHz conservative.
Frequency channel_bandwidth(Scenario scenario);

/// Guard band between adjacent channels: 8 GHz ideal / 4 GHz conservative.
Frequency guard_band(Scenario scenario);

/// Channel data rate (1 bit/s/Hz OOK: 32 or 16 Gb/s).
DataRate channel_rate(Scenario scenario);

}  // namespace ownsim

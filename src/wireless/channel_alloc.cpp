#include "wireless/channel_alloc.hpp"

#include <stdexcept>

namespace ownsim {
namespace {

// Cluster/group 2x2 layout: 0=NW, 1=NE, 2=SE, 3=SW. XOR of two indices
// classifies the pair: ^1 = edge neighbors, ^2 = diagonal, ^3 = short side.
DistanceClass pair_distance(int a, int b) {
  switch (a ^ b) {
    case 1: return DistanceClass::kE2E;
    case 2: return DistanceClass::kC2C;
    case 3: return DistanceClass::kSR;
    default: throw std::invalid_argument("pair_distance: a == b");
  }
}

std::vector<OwnChannel> make_own256() {
  using A = Antenna;
  // Canonical order from Table I: diagonals, edges, then short-range.
  const struct {
    int src, dst;
    A sa, da;
  } rows[] = {
      {0, 2, A::kA, A::kB}, {2, 0, A::kB, A::kA},  // A0->B2, B2->A0
      {3, 1, A::kA, A::kB}, {1, 3, A::kB, A::kA},  // A3->B1, B1->A3
      {1, 0, A::kA, A::kB}, {0, 1, A::kB, A::kA},  // A1->B0, B0->A1
      {2, 3, A::kA, A::kB}, {3, 2, A::kB, A::kA},  // A2->B3, B3->A2
      {0, 3, A::kC, A::kC}, {3, 0, A::kC, A::kC},  // C0->C3, C3->C0
      {1, 2, A::kC, A::kC}, {2, 1, A::kC, A::kC},  // C1->C2, C2->C1
  };
  std::vector<OwnChannel> channels;
  int id = 0;
  for (const auto& row : rows) {
    OwnChannel ch;
    ch.id = id++;
    ch.src_cluster = row.src;
    ch.dst_cluster = row.dst;
    ch.src_antenna = row.sa;
    ch.dst_antenna = row.da;
    ch.distance = pair_distance(row.src, row.dst);
    channels.push_back(ch);
  }
  return channels;
}

std::vector<OwnGroupChannel> make_own1024() {
  std::vector<OwnGroupChannel> channels;
  int id = 0;
  for (int g = 0; g < 4; ++g) {
    for (int gd = 0; gd < 4; ++gd) {
      if (g == gd) continue;
      OwnGroupChannel ch;
      ch.id = id++;
      ch.src_group = g;
      ch.dst_group = gd;
      ch.distance = pair_distance(g, gd);
      switch (g ^ gd) {
        case 1: ch.antenna = Antenna::kA; break;  // edge pairs
        case 2: ch.antenna = Antenna::kB; break;  // diagonal pairs
        default: ch.antenna = Antenna::kC; break; // short pairs
      }
      channels.push_back(ch);
    }
  }
  for (int g = 0; g < 4; ++g) {
    OwnGroupChannel ch;
    ch.id = id++;
    ch.src_group = g;
    ch.dst_group = g;
    ch.antenna = Antenna::kD;
    // 3D-stacked groups keep intra-group transceiver spacing short (§III.B).
    ch.distance = DistanceClass::kSR;
    channels.push_back(ch);
  }
  return channels;
}

}  // namespace

const char* to_string(DistanceClass distance) {
  switch (distance) {
    case DistanceClass::kC2C: return "C2C";
    case DistanceClass::kE2E: return "E2E";
    case DistanceClass::kSR: return "SR";
  }
  return "?";
}

double ld_factor(DistanceClass distance) {
  switch (distance) {
    case DistanceClass::kC2C: return 1.0;
    case DistanceClass::kE2E: return 0.5;
    case DistanceClass::kSR: return 0.15;
  }
  return 1.0;
}

Length distance_of(DistanceClass distance) {
  switch (distance) {
    case DistanceClass::kC2C: return 60.0_mm;
    case DistanceClass::kE2E: return 30.0_mm;
    case DistanceClass::kSR: return 10.0_mm;
  }
  return Length{};
}

int antenna_tile(Antenna antenna) {
  switch (antenna) {
    case Antenna::kA: return 0;
    case Antenna::kB: return 3;
    case Antenna::kC: return 12;
    case Antenna::kD: return 15;
  }
  throw std::invalid_argument("antenna_tile: bad antenna");
}

const std::vector<OwnChannel>& own256_channels() {
  static const std::vector<OwnChannel> channels = make_own256();
  return channels;
}

const OwnChannel& own256_channel(int src_cluster, int dst_cluster) {
  for (const auto& ch : own256_channels()) {
    if (ch.src_cluster == src_cluster && ch.dst_cluster == dst_cluster) {
      return ch;
    }
  }
  throw std::invalid_argument("own256_channel: no such pair");
}

const std::vector<OwnGroupChannel>& own1024_channels() {
  static const std::vector<OwnGroupChannel> channels = make_own1024();
  return channels;
}

const OwnGroupChannel& own1024_channel(int src_group, int dst_group) {
  for (const auto& ch : own1024_channels()) {
    if (ch.src_group == src_group && ch.dst_group == dst_group) return ch;
  }
  throw std::invalid_argument("own1024_channel: no such pair");
}

std::vector<int> own256_sdm_groups() {
  // §V.B: edge channels on opposite sides of the die may share a frequency,
  // as may the two short-range sides; diagonals cross the die center and
  // cannot be reused. 12 channels -> 8 frequency needs.
  std::vector<int> groups(12);
  groups[0] = 0;   // A0->B2 (diag)
  groups[1] = 1;   // B2->A0
  groups[2] = 2;   // A3->B1
  groups[3] = 3;   // B1->A3
  groups[4] = 4;   // A1->B0 shares with A2->B3
  groups[5] = 5;   // B0->A1 shares with B3->A2
  groups[6] = 4;
  groups[7] = 5;
  groups[8] = 6;   // C0->C3 shares with C1->C2
  groups[9] = 7;   // C3->C0 shares with C2->C1
  groups[10] = 6;
  groups[11] = 7;
  return groups;
}

std::vector<int> own1024_sdm_groups() {
  // Channel ids follow own1024_channels() order: ordered inter-group pairs
  // (0,1)(0,2)(0,3)(1,0)(1,2)(1,3)(2,0)(2,1)(2,3)(3,0)(3,1)(3,2) = 0..11,
  // intra-group 12..15.
  std::vector<int> groups(16);
  groups[0] = 0;   // 0->1 shares with 2->3
  groups[8] = 0;
  groups[3] = 1;   // 1->0 shares with 3->2
  groups[11] = 1;
  groups[2] = 2;   // 0->3 shares with 1->2
  groups[4] = 2;
  groups[9] = 3;   // 3->0 shares with 2->1
  groups[7] = 3;
  groups[1] = 4;   // diagonals cross the package center: no reuse
  groups[6] = 5;
  groups[5] = 6;
  groups[10] = 7;
  for (int g = 0; g < 4; ++g) groups[12 + g] = 8;  // intra-group quadrants
  return groups;
}

}  // namespace ownsim

#include "wireless/configurations.hpp"

#include <map>
#include <stdexcept>

namespace ownsim {

const char* to_string(OwnConfig config) {
  switch (config) {
    case OwnConfig::kConfig1: return "config1";
    case OwnConfig::kConfig2: return "config2";
    case OwnConfig::kConfig3: return "config3";
    case OwnConfig::kConfig4: return "config4";
  }
  return "?";
}

std::vector<OwnConfig> all_configs() {
  return {OwnConfig::kConfig1, OwnConfig::kConfig2, OwnConfig::kConfig3,
          OwnConfig::kConfig4};
}

WirelessTech config_tech(OwnConfig config, DistanceClass distance) {
  switch (config) {
    case OwnConfig::kConfig1:
      switch (distance) {
        case DistanceClass::kC2C: return WirelessTech::kSiGeHbt;
        case DistanceClass::kE2E: return WirelessTech::kCmos;
        case DistanceClass::kSR: return WirelessTech::kCmos;
      }
      break;
    case OwnConfig::kConfig2:
      switch (distance) {
        case DistanceClass::kC2C: return WirelessTech::kCmos;
        case DistanceClass::kE2E: return WirelessTech::kBiCmos;
        case DistanceClass::kSR: return WirelessTech::kSiGeHbt;
      }
      break;
    case OwnConfig::kConfig3:
      switch (distance) {
        case DistanceClass::kC2C: return WirelessTech::kSiGeHbt;
        case DistanceClass::kE2E: return WirelessTech::kBiCmos;
        case DistanceClass::kSR: return WirelessTech::kCmos;
      }
      break;
    case OwnConfig::kConfig4:
      switch (distance) {
        case DistanceClass::kC2C: return WirelessTech::kCmos;
        case DistanceClass::kE2E: return WirelessTech::kCmos;
        case DistanceClass::kSR: return WirelessTech::kBiCmos;
      }
      break;
  }
  throw std::invalid_argument("config_tech: bad config/distance");
}

namespace {

std::vector<DistanceClass> default_distances(int num_channels) {
  if (num_channels != 12 && num_channels != 16) {
    throw std::invalid_argument(
        "ChannelEnergyModel: OWN uses 12 (256-core) or 16 (1024) channels");
  }
  std::vector<DistanceClass> distance(num_channels);
  if (num_channels == 12) {
    for (const OwnChannel& ch : own256_channels()) {
      distance[ch.id] = ch.distance;
    }
  } else {
    for (const OwnGroupChannel& ch : own1024_channels()) {
      distance[ch.id] = ch.distance;
    }
  }
  return distance;
}

}  // namespace

ChannelEnergyModel::ChannelEnergyModel(OwnConfig config, Scenario scenario,
                                       int num_channels)
    : ChannelEnergyModel(config, scenario, default_distances(num_channels),
                         num_channels == 12 ? own256_sdm_groups()
                                            : own1024_sdm_groups()) {}

ChannelEnergyModel::ChannelEnergyModel(OwnConfig config, Scenario scenario,
                                       const std::vector<DistanceClass>& distance,
                                       const std::vector<int>& sdm)
    : config_(config), scenario_(scenario), plan_(scenario) {
  if (distance.empty() || distance.size() != sdm.size()) {
    throw std::invalid_argument(
        "ChannelEnergyModel: distances/sdm size mismatch");
  }
  const int num_channels = static_cast<int>(distance.size());

  // Greedy frequency assignment: channels in one SDM set share one band-plan
  // link; otherwise take the lowest unused frequency of the required
  // technology (wrapping = additional spatial reuse, §V.B).
  std::map<int, int> set_link;                 // SDM set -> band link index
  std::map<WirelessTech, int> used_of_tech;    // links consumed per tech

  assignments_.reserve(static_cast<std::size_t>(num_channels));
  for (int id = 0; id < num_channels; ++id) {
    const DistanceClass dc = distance[static_cast<std::size_t>(id)];
    const WirelessTech tech = config_tech(config, dc);
    int band_index;
    const int set = sdm[static_cast<std::size_t>(id)];
    auto it = set_link.find(set);
    if (it != set_link.end() &&
        plan_.link(it->second).tech == tech) {
      band_index = it->second;
    } else {
      band_index = plan_.nth_link_of(tech, used_of_tech[tech]++).index;
      set_link[set] = band_index;
    }
    const BandPlanLink& link = plan_.link(band_index);

    Assignment a;
    a.channel_id = id;
    a.distance = dc;
    a.tech = tech;
    a.band_link = band_index;
    a.freq = link.center;
    a.tech_epb = link.energy_per_bit;
    a.tx_epb = kTxEnergyShare * a.tech_epb * ld_factor(dc);
    a.rx_epb = (1.0 - kTxEnergyShare) * a.tech_epb;
    assignments_.push_back(a);
  }
}

}  // namespace ownsim

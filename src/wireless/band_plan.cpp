#include "wireless/band_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace ownsim {

BandPlan::BandPlan(Scenario scenario) : scenario_(scenario) {
  const double bw = channel_bandwidth_ghz(scenario);
  const double spacing = bw + guard_band_ghz(scenario);
  links_.reserve(kNumLinks);
  for (int i = 0; i < kNumLinks; ++i) {
    BandPlanLink link;
    link.index = i;
    link.center_ghz = 100.0 + spacing * i;
    link.bandwidth_ghz = bw;
    // Technology feasibility: 4 CMOS channels at the bottom of the plan,
    // SiGe-HBT-only above ~300 GHz, BiCMOS between.
    if (i < 4) {
      link.tech = WirelessTech::kCmos;
    } else if (link.center_ghz <= 300.0) {
      link.tech = WirelessTech::kBiCmos;
    } else {
      link.tech = WirelessTech::kSiGeHbt;
    }
    link.energy_pj_per_bit =
        energy_per_bit_pj(link.tech, scenario, link.center_ghz);
    link.reconfiguration = i >= kNumDataLinks;
    links_.push_back(link);
  }
}

std::vector<int> BandPlan::links_of(WirelessTech tech) const {
  std::vector<int> out;
  for (const auto& link : links_) {
    if (link.tech == tech) out.push_back(link.index);
  }
  return out;
}

const BandPlanLink& BandPlan::nth_link_of(WirelessTech tech, int nth) const {
  std::vector<int> indices = links_of(tech);
  if (indices.empty()) {
    throw std::logic_error("BandPlan: no links of requested technology");
  }
  if (tech == WirelessTech::kSiGeHbt) {
    std::reverse(indices.begin(), indices.end());
  }
  return links_[indices[static_cast<std::size_t>(nth) % indices.size()]];
}

}  // namespace ownsim

#include "wireless/band_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace ownsim {

BandPlan::BandPlan(Scenario scenario) : scenario_(scenario) {
  const Frequency bw = channel_bandwidth(scenario);
  const Frequency spacing = bw + guard_band(scenario);
  links_.reserve(kNumLinks);
  for (int i = 0; i < kNumLinks; ++i) {
    BandPlanLink link;
    link.index = i;
    link.center = 100.0_ghz + spacing * static_cast<double>(i);
    link.bandwidth = bw;
    // Technology feasibility: 4 CMOS channels at the bottom of the plan,
    // SiGe-HBT-only above ~300 GHz, BiCMOS between.
    if (i < 4) {
      link.tech = WirelessTech::kCmos;
    } else if (link.center <= 300.0_ghz) {
      link.tech = WirelessTech::kBiCmos;
    } else {
      link.tech = WirelessTech::kSiGeHbt;
    }
    link.energy_per_bit = energy_per_bit(link.tech, scenario, link.center);
    link.reconfiguration = i >= kNumDataLinks;
    links_.push_back(link);
  }
}

std::vector<int> BandPlan::links_of(WirelessTech tech) const {
  std::vector<int> out;
  for (const auto& link : links_) {
    if (link.tech == tech) out.push_back(link.index);
  }
  return out;
}

const BandPlanLink& BandPlan::nth_link_of(WirelessTech tech, int nth) const {
  std::vector<int> indices = links_of(tech);
  if (indices.empty()) {
    throw std::logic_error("BandPlan: no links of requested technology");
  }
  if (tech == WirelessTech::kSiGeHbt) {
    std::reverse(indices.begin(), indices.end());
  }
  return links_[static_cast<std::size_t>(
      indices[static_cast<std::size_t>(nth) % indices.size()])];
}

}  // namespace ownsim

// Table IV architecture configurations and the per-channel energy model
// behind Figs. 5 and 6.
//
// A configuration maps each wireless distance class (Table I) to the device
// technology implementing its transceivers:
//
//   Config 1: SiGe long (C2C), CMOS medium (E2E), CMOS  short (SR)
//   Config 2: CMOS long,       BiCMOS medium,    SiGe   short
//   Config 3: SiGe long,       BiCMOS medium,    CMOS   short
//   Config 4: CMOS long,       CMOS medium,      BiCMOS short
//
// Given a configuration and a Table III scenario, each OWN channel is
// assigned the lowest-frequency band-plan link of the required technology;
// channels in the same SDM reuse set share one frequency (§V.B), and when a
// configuration needs more channels of a technology than the plan provides
// (config 4's eight CMOS channels vs. four CMOS bands) frequencies are
// reused across non-intersecting paths exactly as the paper proposes.
//
// Energy accounting: the technology energy/bit E(f) covers the transceiver
// pair at full C2C radiated power. The link-distance factor (LD: 1.0 / 0.5 /
// 0.15) scales only the transmit-side share (the PA dominates, ~60%); the
// receive share is distance-independent and is also what multicast listeners
// pay per discarded copy in OWN-1024.
#pragma once

#include <vector>

#include "wireless/band_plan.hpp"
#include "wireless/channel_alloc.hpp"
#include "wireless/technology.hpp"

namespace ownsim {

/// Table IV rows.
enum class OwnConfig : int { kConfig1 = 1, kConfig2 = 2, kConfig3 = 3, kConfig4 = 4 };

const char* to_string(OwnConfig config);
std::vector<OwnConfig> all_configs();

/// Technology serving `distance` under `config` (Table IV).
WirelessTech config_tech(OwnConfig config, DistanceClass distance);

/// Fraction of a link's energy/bit spent on the transmit side (PA et al.,
/// which dominates an OOK transceiver); the remainder is receive-side and
/// distance-independent. The transmit share scales with the LD factor.
inline constexpr double kTxEnergyShare = 0.8;

/// Resolved per-channel energy figures for one (config, scenario) point.
class ChannelEnergyModel {
 public:
  struct Assignment {
    int channel_id = 0;          ///< OWN channel (256: 0..11, 1024: 0..15)
    DistanceClass distance = DistanceClass::kC2C;
    WirelessTech tech = WirelessTech::kCmos;
    int band_link = 0;           ///< Table III link index used
    Frequency freq;
    EnergyPerBit tech_epb;       ///< E(f) before distance scaling
    EnergyPerBit tx_epb;         ///< transmit share x LD factor
    EnergyPerBit rx_epb;         ///< per-listener receive share
  };

  /// `num_channels`: 12 for OWN-256, 16 for OWN-1024 (the four extra
  /// intra-group channels take the reconfiguration links 12-15).
  ChannelEnergyModel(OwnConfig config, Scenario scenario, int num_channels = 12);

  /// Explicit layout (e.g. OWN-256 + reconfiguration channels): one distance
  /// class per channel and the SDM reuse-set id per channel.
  ChannelEnergyModel(OwnConfig config, Scenario scenario,
                     const std::vector<DistanceClass>& distances,
                     const std::vector<int>& sdm_groups);

  OwnConfig config() const { return config_; }
  Scenario scenario() const { return scenario_; }
  const std::vector<Assignment>& assignments() const { return assignments_; }
  const Assignment& channel(int id) const {
    return assignments_.at(static_cast<std::size_t>(id));
  }

  /// Total energy to move one bit over channel `id` (TX + one RX).
  EnergyPerBit epb(int id) const {
    const Assignment& a = channel(id);
    return a.tx_epb + a.rx_epb;
  }
  EnergyPerBit tx_epb(int id) const { return channel(id).tx_epb; }
  EnergyPerBit rx_epb(int id) const { return channel(id).rx_epb; }

 private:
  OwnConfig config_;
  Scenario scenario_;
  BandPlan plan_;
  std::vector<Assignment> assignments_;
};

}  // namespace ownsim

#include "topofile/topofile.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/json.hpp"
#include "topofile/routegen.hpp"
#include "topology/bisection.hpp"

namespace ownsim::topofile {
namespace {

using serve::Json;

constexpr int kFormatVersion = 1;

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("topofile: " + message);
}

/// Rejects keys outside `allowed` (strict schema: a topology file is a
/// cache-key input, so silent key drops would alias distinct topologies).
void check_keys(const Json::Object& object, const char* where,
                const std::set<std::string>& allowed) {
  for (const auto& [key, value] : object) {
    if (allowed.count(key) == 0) {
      fail(std::string(where) + ": unknown key '" + key + "'");
    }
  }
}

const Json& require(const Json::Object& object, const char* where,
                    const char* key) {
  const auto it = object.find(key);
  if (it == object.end()) {
    fail(std::string(where) + ": missing required key '" + key + "'");
  }
  return it->second;
}

int require_int(const Json::Object& object, const char* where,
                const char* key) {
  return static_cast<int>(require(object, where, key).as_int());
}

int optional_int(const Json::Object& object, const char* key, int fallback) {
  const auto it = object.find(key);
  return it == object.end() ? fallback : static_cast<int>(it->second.as_int());
}

std::string optional_string(const Json::Object& object, const char* key) {
  const auto it = object.find(key);
  return it == object.end() ? std::string() : it->second.as_string();
}

const char* medium_name(MediumType medium) {
  switch (medium) {
    case MediumType::kElectrical: return "electrical";
    case MediumType::kPhotonic: return "photonic";
    case MediumType::kWireless: return "wireless";
  }
  return "?";
}

MediumType parse_link_medium(const std::string& name) {
  if (name == "electrical") return MediumType::kElectrical;
  if (name == "photonic") return MediumType::kPhotonic;
  if (name == "wireless") return MediumType::kWireless;
  fail("bad link medium '" + name +
       "' (want electrical|photonic|wireless)");
}

MediumType parse_shared_medium_type(const std::string& name) {
  if (name == "photonic-mwsr") return MediumType::kPhotonic;
  if (name == "wireless-swmr") return MediumType::kWireless;
  fail("bad medium type '" + name + "' (want photonic-mwsr|wireless-swmr)");
}

/// A `[router, port]` endpoint.
std::pair<RouterId, PortId> parse_endpoint(const Json& json, const char* where,
                                           int num_routers) {
  const Json::Array& pair = json.as_array();
  if (pair.size() != 2) fail(std::string(where) + ": want [router, port]");
  const auto router = static_cast<RouterId>(pair[0].as_int());
  const auto port = static_cast<PortId>(pair[1].as_int());
  if (router < 0 || router >= num_routers) {
    fail(std::string(where) + ": router " + std::to_string(router) +
         " out of range [0, " + std::to_string(num_routers) + ")");
  }
  if (port < 0) fail(std::string(where) + ": negative port");
  return {router, port};
}

/// The per-medium-type cpf override from TopologyOptions.
int cpf_override(MediumType medium, const TopologyOptions& options) {
  switch (medium) {
    case MediumType::kElectrical: return options.electrical_cpf;
    case MediumType::kPhotonic: return options.photonic_cpf;
    case MediumType::kWireless: return options.wireless_cpf;
  }
  return 0;
}

/// Resolves a channel's `cpf` value: the literal "bisection" defers to the
/// equal-bisection rule using the file's crossing-channel count for this
/// medium; an integer is used verbatim. Either way an options override for
/// the medium type wins (same semantics as the hand builders).
int resolve_channel_cpf(const Json& value, MediumType medium,
                        const std::map<std::string, double>& bisection,
                        const TopologyOptions& options, const char* where) {
  if (value.is_string()) {
    if (value.as_string() != "bisection") {
      fail(std::string(where) + ": cpf must be an integer or \"bisection\"");
    }
    const auto it = bisection.find(medium_name(medium));
    if (it == bisection.end()) {
      fail(std::string(where) + ": cpf is \"bisection\" but the file's "
           "bisection object has no '" + medium_name(medium) + "' entry");
    }
    return resolve_cpf(cpf_override(medium, options), it->second, options);
  }
  const int cpf = static_cast<int>(value.as_int());
  if (cpf < 1) fail(std::string(where) + ": cpf must be >= 1");
  const int override_cpf = cpf_override(medium, options);
  return override_cpf > 0 ? override_cpf : cpf;
}

/// Millimetre value whose reload (`mm * 1.0_mm`) reproduces `distance`
/// bit-exactly; the naive quotient can be one ulp off, so nudge if needed.
double mm_for_roundtrip(Length distance) {
  double mm = distance.in(1.0_mm);
  for (int step = 0; step < 4; ++step) {
    if ((mm * 1.0_mm).value() == distance.value()) return mm;
    const double up = std::nextafter(mm, std::numeric_limits<double>::max());
    if ((up * 1.0_mm).value() == distance.value()) return up;
    mm = std::nextafter(mm, std::numeric_limits<double>::lowest());
  }
  throw std::logic_error("topofile: distance has no exact mm representation");
}

Length length_from_mm(double mm) { return mm * 1.0_mm; }

/// Parses the `routing.classes` array into VC class ranges over
/// `[0, num_vcs)`. The last count may be the string "rest".
std::vector<VcClassRange> parse_vc_classes(const Json& json, int num_vcs) {
  const Json::Array& ranges = json.as_array();
  if (ranges.empty()) fail("routing.classes: want at least one class");
  std::vector<VcClassRange> classes;
  int expect_first = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const Json::Array& pair = ranges[i].as_array();
    if (pair.size() != 2) fail("routing.classes: want [first, count] pairs");
    const int first = static_cast<int>(pair[0].as_int());
    int count = 0;
    if (pair[1].is_string()) {
      if (pair[1].as_string() != "rest" || i + 1 != ranges.size()) {
        fail("routing.classes: \"rest\" is only valid as the last count");
      }
      count = num_vcs - first;
    } else {
      count = static_cast<int>(pair[1].as_int());
    }
    if (first != expect_first || count < 1) {
      fail("routing.classes: ranges must partition a prefix of the VC space");
    }
    expect_first = first + count;
    classes.push_back({first, count});
  }
  if (expect_first > num_vcs) {
    fail("routing.classes: needs " + std::to_string(expect_first) +
         " VCs but only " + std::to_string(num_vcs) +
         " are configured (raise vcs=)");
  }
  // Hand builders give the last class all remaining VCs; table files say
  // "rest" for the same effect, so a plain prefix partition is also fine.
  return classes;
}

/// Parses a full route table (`[[port, class], ...]` per router row; the
/// diagonal must be [-1, 0]).
std::vector<std::vector<RouteEntry>> parse_route_table(const Json& json,
                                                       int num_routers,
                                                       int num_classes,
                                                       const char* where) {
  const Json::Array& rows = json.as_array();
  if (static_cast<int>(rows.size()) != num_routers) {
    fail(std::string(where) + ": want one row per router");
  }
  std::vector<std::vector<RouteEntry>> table(
      static_cast<std::size_t>(num_routers),
      std::vector<RouteEntry>(static_cast<std::size_t>(num_routers)));
  for (int r = 0; r < num_routers; ++r) {
    const Json::Array& row = rows[static_cast<std::size_t>(r)].as_array();
    if (static_cast<int>(row.size()) != num_routers) {
      fail(std::string(where) + ": row " + std::to_string(r) +
           " wants one entry per destination router");
    }
    for (int d = 0; d < num_routers; ++d) {
      const Json::Array& entry = row[static_cast<std::size_t>(d)].as_array();
      if (entry.size() != 2) {
        fail(std::string(where) + ": entries are [out_port, vc_class]");
      }
      const int port = static_cast<int>(entry[0].as_int());
      const int vc_class = static_cast<int>(entry[1].as_int());
      if (r == d) {
        if (port != -1 || vc_class != 0) {
          fail(std::string(where) + ": diagonal entries must be [-1, 0]");
        }
        continue;
      }
      if (port < 0) {
        fail(std::string(where) + ": entry [" + std::to_string(r) + "][" +
             std::to_string(d) + "] has no out port");
      }
      if (vc_class < 0 || vc_class >= num_classes) {
        fail(std::string(where) + ": entry [" + std::to_string(r) + "][" +
             std::to_string(d) + "] names vc_class " +
             std::to_string(vc_class) + " outside the declared classes");
      }
      table[static_cast<std::size_t>(r)][static_cast<std::size_t>(d)] = {
          static_cast<PortId>(port), static_cast<std::int8_t>(vc_class)};
    }
  }
  return table;
}

Json::Object parse_root(const std::string& text) {
  Json root;
  try {
    root = Json::parse(text);
  } catch (const std::exception& e) {
    fail(std::string("invalid JSON: ") + e.what());
  }
  if (!root.is_object()) fail("top level must be an object");
  const Json::Object& object = root.as_object();
  const auto version = object.find("topofile");
  if (version == object.end() ||
      version->second.as_int() != kFormatVersion) {
    fail("missing or unsupported format version (want \"topofile\": " +
         std::to_string(kFormatVersion) + ")");
  }
  return object;
}

}  // namespace

std::string read_topofile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("topofile: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TopofileInfo probe_topofile(const std::string& text) {
  const Json::Object root = parse_root(text);
  TopofileInfo info;
  info.name = require(root, "top level", "name").as_string();
  info.num_nodes = require_int(root, "top level", "nodes");
  info.emulates = optional_string(root, "emulates");
  return info;
}

TopologyKind topofile_reporting_kind(const TopologyOptions& options) {
  const std::string text = options.topofile_text.empty()
                               ? read_topofile(options.topofile_path)
                               : options.topofile_text;
  const TopofileInfo info = probe_topofile(text);
  if (info.emulates.empty()) return TopologyKind::kFile;
  return parse_topology(info.emulates);
}

NetworkSpec load_topofile(const std::string& text,
                          const TopologyOptions& options) {
  const Json::Object root = parse_root(text);
  check_keys(root, "top level",
             {"topofile", "name", "emulates", "nodes", "concentration",
              "attach", "min_vcs", "routers", "partitions", "positions_mm",
              "bisection", "links", "media", "routing"});

  NetworkSpec spec;
  spec.name = require(root, "top level", "name").as_string();
  spec.num_nodes = require_int(root, "top level", "nodes");
  if (spec.num_nodes < 1) fail("nodes: want >= 1");
  if (spec.num_nodes != options.num_cores) {
    fail("file describes " + std::to_string(spec.num_nodes) +
         " nodes but the run requests " + std::to_string(options.num_cores) +
         " cores (pass cores=" + std::to_string(spec.num_nodes) + ")");
  }
  spec.num_vcs = options.num_vcs;
  spec.buffer_depth = options.buffer_depth;

  const std::string emulates = optional_string(root, "emulates");
  if (!emulates.empty()) {
    const TopologyKind kind = parse_topology(emulates);  // throws on unknown
    if (kind == TopologyKind::kFile) fail("emulates: cannot emulate 'file'");
  }
  const int min_vcs = optional_int(root, "min_vcs", 1);
  if (options.num_vcs < min_vcs) {
    fail("file needs >= " + std::to_string(min_vcs) + " VCs (pass vcs=" +
         std::to_string(min_vcs) + " or more)");
  }

  // Routers: run-length groups of identical port shapes.
  for (const Json& group : require(root, "top level", "routers").as_array()) {
    const Json::Object& g = group.as_object();
    check_keys(g, "routers[]", {"count", "in", "out"});
    const int count = require_int(g, "routers[]", "count");
    const int num_in = require_int(g, "routers[]", "in");
    const int num_out = require_int(g, "routers[]", "out");
    if (count < 1 || num_in < 0 || num_out < 0) {
      fail("routers[]: bad count/in/out");
    }
    spec.routers.insert(spec.routers.end(), static_cast<std::size_t>(count),
                        {num_in, num_out});
  }
  const int num_routers = spec.num_routers();
  if (num_routers < 1) fail("routers: want at least one router");

  // Node attachment: uniform concentration or an explicit per-node map.
  const bool has_concentration = root.count("concentration") > 0;
  const bool has_attach = root.count("attach") > 0;
  if (has_concentration == has_attach) {
    fail("want exactly one of 'concentration' and 'attach'");
  }
  spec.nodes.resize(static_cast<std::size_t>(spec.num_nodes));
  if (has_concentration) {
    const int concentration = require_int(root, "top level", "concentration");
    if (concentration < 1 || spec.num_nodes != num_routers * concentration) {
      fail("concentration: want nodes == routers * concentration");
    }
    for (NodeId n = 0; n < spec.num_nodes; ++n) {
      spec.nodes[static_cast<std::size_t>(n)].router = n / concentration;
    }
  } else {
    const Json::Array& attach = root.at("attach").as_array();
    if (static_cast<int>(attach.size()) != spec.num_nodes) {
      fail("attach: want one router id per node");
    }
    for (NodeId n = 0; n < spec.num_nodes; ++n) {
      const auto router =
          static_cast<RouterId>(attach[static_cast<std::size_t>(n)].as_int());
      if (router < 0 || router >= num_routers) {
        fail("attach: node " + std::to_string(n) + " names router " +
             std::to_string(router) + " out of range");
      }
      spec.nodes[static_cast<std::size_t>(n)].router = router;
    }
  }

  // Optional parallel-kernel partition hint, RLE [count, label] pairs.
  if (const auto it = root.find("partitions"); it != root.end()) {
    for (const Json& pair : it->second.as_array()) {
      const Json::Array& rle = pair.as_array();
      if (rle.size() != 2) fail("partitions: want [count, label] pairs");
      const int count = static_cast<int>(rle[0].as_int());
      const int label = static_cast<int>(rle[1].as_int());
      if (count < 1) fail("partitions: bad count");
      spec.partition_hint.insert(spec.partition_hint.end(),
                                 static_cast<std::size_t>(count), label);
    }
    if (static_cast<int>(spec.partition_hint.size()) != num_routers) {
      fail("partitions: labels must cover every router exactly once");
    }
  }

  // Optional floorplan (thermal model input).
  if (const auto it = root.find("positions_mm"); it != root.end()) {
    const Json::Array& positions = it->second.as_array();
    if (static_cast<int>(positions.size()) != num_routers) {
      fail("positions_mm: want one [x, y] per router");
    }
    spec.router_xy.reserve(positions.size());
    for (const Json& xy : positions) {
      const Json::Array& pair = xy.as_array();
      if (pair.size() != 2) fail("positions_mm: want [x, y] pairs");
      spec.router_xy.push_back({length_from_mm(pair[0].as_double()),
                                length_from_mm(pair[1].as_double())});
    }
  }

  // Bisection crossing-channel counts for "cpf": "bisection" channels.
  std::map<std::string, double> bisection;
  if (const auto it = root.find("bisection"); it != root.end()) {
    for (const auto& [key, value] : it->second.as_object()) {
      if (key != "electrical" && key != "photonic" && key != "wireless") {
        fail("bisection: unknown medium '" + key + "'");
      }
      const double crossing = value.as_double();
      if (!(crossing > 0.0)) fail("bisection: crossing counts must be > 0");
      bisection[key] = crossing;
    }
  }

  // Point-to-point links.
  if (const auto it = root.find("links"); it != root.end()) {
    for (const Json& entry : it->second.as_array()) {
      const Json::Object& l = entry.as_object();
      check_keys(l, "links[]",
                 {"src", "dst", "medium", "latency", "cpf", "distance_mm",
                  "channel", "name"});
      LinkSpec link;
      std::tie(link.src_router, link.src_port) =
          parse_endpoint(require(l, "links[]", "src"), "links[].src",
                         num_routers);
      std::tie(link.dst_router, link.dst_port) =
          parse_endpoint(require(l, "links[]", "dst"), "links[].dst",
                         num_routers);
      link.medium =
          parse_link_medium(require(l, "links[]", "medium").as_string());
      link.latency = require_int(l, "links[]", "latency");
      if (link.latency < 1) fail("links[]: latency must be >= 1");
      link.cycles_per_flit =
          resolve_channel_cpf(require(l, "links[]", "cpf"), link.medium,
                              bisection, options, "links[]");
      if (const auto d = l.find("distance_mm"); d != l.end()) {
        link.distance = length_from_mm(d->second.as_double());
      }
      link.wireless_channel = optional_int(l, "channel", -1);
      link.name = optional_string(l, "name");
      spec.links.push_back(std::move(link));
    }
  }

  // Shared media.
  if (const auto it = root.find("media"); it != root.end()) {
    for (const Json& entry : it->second.as_array()) {
      const Json::Object& m = entry.as_object();
      check_keys(m, "media[]",
                 {"type", "arbitration", "writers", "readers", "latency",
                  "cpf", "max_packet_flits", "distance_mm", "multicast_rx",
                  "channel", "name"});
      MediumSpec medium;
      medium.medium =
          parse_shared_medium_type(require(m, "media[]", "type").as_string());
      const std::string arbitration = optional_string(m, "arbitration");
      if (arbitration.empty()) {
        medium.arbitration = options.ideal_arbitration
                                 ? ArbitrationKind::kIdeal
                                 : ArbitrationKind::kTokenRing;
      } else if (arbitration == "token") {
        medium.arbitration = ArbitrationKind::kTokenRing;
      } else if (arbitration == "ideal") {
        medium.arbitration = ArbitrationKind::kIdeal;
      } else {
        fail("media[]: bad arbitration '" + arbitration +
             "' (want token|ideal)");
      }
      for (const Json& w : require(m, "media[]", "writers").as_array()) {
        medium.writers.push_back(
            parse_endpoint(w, "media[].writers", num_routers));
      }
      for (const Json& r : require(m, "media[]", "readers").as_array()) {
        medium.readers.push_back(
            parse_endpoint(r, "media[].readers", num_routers));
      }
      if (medium.writers.empty() || medium.readers.empty()) {
        fail("media[]: want at least one writer and one reader");
      }
      if (medium.medium == MediumType::kPhotonic &&
          medium.readers.size() != 1) {
        fail("media[]: photonic-mwsr media have exactly one reader");
      }
      medium.latency = require_int(m, "media[]", "latency");
      if (medium.latency < 1) fail("media[]: latency must be >= 1");
      medium.cycles_per_flit =
          resolve_channel_cpf(require(m, "media[]", "cpf"), medium.medium,
                              bisection, options, "media[]");
      medium.max_packet_flits =
          optional_int(m, "max_packet_flits", options.max_packet_flits);
      if (const auto d = m.find("distance_mm"); d != m.end()) {
        medium.distance = length_from_mm(d->second.as_double());
      }
      if (const auto mc = m.find("multicast_rx"); mc != m.end()) {
        medium.multicast_rx = mc->second.as_bool();
      }
      medium.wireless_channel = optional_int(m, "channel", -1);
      medium.name = optional_string(m, "name");
      if (medium.readers.size() > 1) {
        // SWMR reader choice is structural, not serialized: the reader
        // nearest to the destination takes the flit (routegen).
        std::vector<int> reader_map =
            nearest_reader_map(spec, medium.readers);
        medium.select_reader = [map = std::move(reader_map)](
                                   NodeId, RouterId dst_router) {
          return map[static_cast<std::size_t>(dst_router)];
        };
      }
      spec.media.push_back(std::move(medium));
    }
  }

  // Routing: explicit tables or generated shortest paths.
  const Json::Object& routing =
      require(root, "top level", "routing").as_object();
  const std::string mode = require(routing, "routing", "mode").as_string();
  if (mode == "table") {
    check_keys(routing, "routing",
               {"mode", "classes", "table", "alt_table", "alt_min_class"});
    spec.vc_classes = parse_vc_classes(
        require(routing, "routing", "classes"), spec.num_vcs);
    const int num_classes = static_cast<int>(spec.vc_classes.size());
    spec.route_table =
        parse_route_table(require(routing, "routing", "table"), num_routers,
                          num_classes, "routing.table");
    const bool has_alt = routing.count("alt_table") > 0;
    if (has_alt != (routing.count("alt_min_class") > 0)) {
      fail("routing: alt_table and alt_min_class come together");
    }
    if (has_alt) {
      spec.route_table_alt =
          parse_route_table(routing.at("alt_table"), num_routers, num_classes,
                           "routing.alt_table");
      spec.alt_min_class =
          static_cast<int>(routing.at("alt_min_class").as_int());
      if (spec.alt_min_class < 0 || spec.alt_min_class >= num_classes) {
        fail("routing.alt_min_class: out of range");
      }
    }
  } else if (mode == "generated") {
    check_keys(routing, "routing", {"mode", "max_classes"});
    const int max_classes =
        optional_int(routing, "max_classes", spec.num_vcs);
    if (max_classes < 1) fail("routing.max_classes: want >= 1");
    generate_routes(spec, max_classes);
  } else {
    fail("routing.mode: want table|generated");
  }

  spec.validate();
  require_deadlock_free(spec);
  return spec;
}

NetworkSpec build_topofile(const TopologyOptions& options) {
  if (options.topofile_text.empty() && options.topofile_path.empty()) {
    throw std::invalid_argument(
        "topofile: file topology needs a path (topology=file:PATH)");
  }
  const std::string text = options.topofile_text.empty()
                               ? read_topofile(options.topofile_path)
                               : options.topofile_text;
  return load_topofile(text, options);
}

std::string export_topofile(const NetworkSpec& spec,
                            const TopologyOptions& options,
                            const ExportPolicy& policy) {
  Json::Object root;
  root["topofile"] = Json(kFormatVersion);
  root["name"] = Json(spec.name);
  if (!policy.emulates.empty()) root["emulates"] = Json(policy.emulates);
  root["nodes"] = Json(spec.num_nodes);

  const int num_routers = spec.num_routers();
  // Uniform concentration when every node n sits on router n / c.
  int concentration = 0;
  if (num_routers > 0 && spec.num_nodes % num_routers == 0) {
    concentration = spec.num_nodes / num_routers;
    for (NodeId n = 0; n < spec.num_nodes; ++n) {
      if (spec.nodes[static_cast<std::size_t>(n)].router !=
          n / concentration) {
        concentration = 0;
        break;
      }
    }
  }
  if (concentration > 0) {
    root["concentration"] = Json(concentration);
  } else {
    Json::Array attach;
    attach.reserve(spec.nodes.size());
    for (const NodeAttach& node : spec.nodes) {
      attach.push_back(Json(node.router));
    }
    root["attach"] = Json(std::move(attach));
  }

  Json::Array routers;
  for (int r = 0; r < num_routers;) {
    const RouterSpec& shape = spec.routers[static_cast<std::size_t>(r)];
    int count = 1;
    while (r + count < num_routers) {
      const RouterSpec& other =
          spec.routers[static_cast<std::size_t>(r + count)];
      if (other.num_net_in != shape.num_net_in ||
          other.num_net_out != shape.num_net_out) {
        break;
      }
      ++count;
    }
    Json::Object group;
    group["count"] = Json(count);
    group["in"] = Json(shape.num_net_in);
    group["out"] = Json(shape.num_net_out);
    routers.push_back(Json(std::move(group)));
    r += count;
  }
  root["routers"] = Json(std::move(routers));

  if (!spec.partition_hint.empty()) {
    Json::Array partitions;
    for (std::size_t r = 0; r < spec.partition_hint.size();) {
      std::size_t count = 1;
      while (r + count < spec.partition_hint.size() &&
             spec.partition_hint[r + count] == spec.partition_hint[r]) {
        ++count;
      }
      partitions.push_back(Json(Json::Array{
          Json(static_cast<int>(count)), Json(spec.partition_hint[r])}));
      r += count;
    }
    root["partitions"] = Json(std::move(partitions));
  }

  if (!spec.router_xy.empty()) {
    Json::Array positions;
    positions.reserve(spec.router_xy.size());
    for (const auto& [x, y] : spec.router_xy) {
      positions.push_back(Json(
          Json::Array{Json(mm_for_roundtrip(x)), Json(mm_for_roundtrip(y))}));
    }
    root["positions_mm"] = Json(std::move(positions));
  }

  if (!policy.bisection.empty()) {
    Json::Object bisection;
    for (const auto& [medium, crossing] : policy.bisection) {
      bisection[medium] = Json(crossing);
    }
    root["bisection"] = Json(std::move(bisection));
  }

  const auto cpf_json = [&policy](MediumType medium, int cpf) {
    return policy.bisection.count(medium_name(medium)) > 0
               ? Json("bisection")
               : Json(cpf);
  };

  if (!spec.links.empty()) {
    Json::Array links;
    links.reserve(spec.links.size());
    for (const LinkSpec& link : spec.links) {
      Json::Object l;
      l["src"] = Json(Json::Array{Json(link.src_router), Json(link.src_port)});
      l["dst"] = Json(Json::Array{Json(link.dst_router), Json(link.dst_port)});
      l["medium"] = Json(medium_name(link.medium));
      l["latency"] = Json(link.latency);
      l["cpf"] = cpf_json(link.medium, link.cycles_per_flit);
      if (link.distance.value() != 0.0) {
        l["distance_mm"] = Json(mm_for_roundtrip(link.distance));
      }
      if (link.wireless_channel >= 0) {
        l["channel"] = Json(link.wireless_channel);
      }
      if (!link.name.empty()) l["name"] = Json(link.name);
      links.push_back(Json(std::move(l)));
    }
    root["links"] = Json(std::move(links));
  }

  if (!spec.media.empty()) {
    Json::Array media;
    media.reserve(spec.media.size());
    const ArbitrationKind default_arbitration =
        options.ideal_arbitration ? ArbitrationKind::kIdeal
                                  : ArbitrationKind::kTokenRing;
    for (const MediumSpec& m : spec.media) {
      Json::Object entry;
      entry["type"] = Json(m.medium == MediumType::kPhotonic
                               ? "photonic-mwsr"
                               : "wireless-swmr");
      if (m.arbitration != default_arbitration) {
        entry["arbitration"] =
            Json(m.arbitration == ArbitrationKind::kIdeal ? "ideal" : "token");
      }
      Json::Array writers;
      writers.reserve(m.writers.size());
      for (const auto& [router, port] : m.writers) {
        writers.push_back(Json(Json::Array{Json(router), Json(port)}));
      }
      entry["writers"] = Json(std::move(writers));
      Json::Array readers;
      readers.reserve(m.readers.size());
      for (const auto& [router, port] : m.readers) {
        readers.push_back(Json(Json::Array{Json(router), Json(port)}));
      }
      entry["readers"] = Json(std::move(readers));
      entry["latency"] = Json(m.latency);
      entry["cpf"] = cpf_json(m.medium, m.cycles_per_flit);
      if (m.max_packet_flits != options.max_packet_flits) {
        entry["max_packet_flits"] = Json(m.max_packet_flits);
      }
      if (m.distance.value() != 0.0) {
        entry["distance_mm"] = Json(mm_for_roundtrip(m.distance));
      }
      if (m.multicast_rx) entry["multicast_rx"] = Json(true);
      if (m.wireless_channel >= 0) entry["channel"] = Json(m.wireless_channel);
      if (!m.name.empty()) entry["name"] = Json(m.name);
      media.push_back(Json(std::move(entry)));
    }
    root["media"] = Json(std::move(media));
  }

  Json::Object routing;
  if (policy.generated_routing) {
    routing["mode"] = Json("generated");
  } else {
    routing["mode"] = Json("table");
    Json::Array classes;
    for (std::size_t i = 0; i < spec.vc_classes.size(); ++i) {
      const VcClassRange& range = spec.vc_classes[i];
      const bool rest = i + 1 == spec.vc_classes.size() &&
                        range.first + range.count == spec.num_vcs;
      classes.push_back(Json(Json::Array{
          Json(range.first), rest ? Json("rest") : Json(range.count)}));
    }
    routing["classes"] = Json(std::move(classes));
    const auto table_json =
        [num_routers](const std::vector<std::vector<RouteEntry>>& table) {
          Json::Array rows;
          rows.reserve(static_cast<std::size_t>(num_routers));
          for (int r = 0; r < num_routers; ++r) {
            Json::Array row;
            row.reserve(static_cast<std::size_t>(num_routers));
            for (int d = 0; d < num_routers; ++d) {
              if (r == d) {
                row.push_back(Json(Json::Array{Json(-1), Json(0)}));
                continue;
              }
              const RouteEntry& entry =
                  table[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(d)];
              row.push_back(Json(Json::Array{
                  Json(entry.out_port), Json(static_cast<int>(entry.vc_class))}));
            }
            rows.push_back(Json(std::move(row)));
          }
          return Json(std::move(rows));
        };
    routing["table"] = table_json(spec.route_table);
    if (spec.has_alt_routing()) {
      routing["alt_table"] = table_json(spec.route_table_alt);
      routing["alt_min_class"] = Json(spec.alt_min_class);
    }
    // A table file pins its class structure; record the VC floor it implies.
    const int min_vcs = spec.vc_classes.back().first + 1;
    if (min_vcs > 1) root["min_vcs"] = Json(min_vcs);
  }
  root["routing"] = Json(std::move(routing));

  return Json(std::move(root)).dump() + "\n";
}

}  // namespace ownsim::topofile

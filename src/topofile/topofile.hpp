// Declarative topology files (docs/TOPOLOGY_FORMAT.md).
//
// A `.topo.json` file describes a network structurally — routers, node
// attachment, point-to-point links (electrical/photonic/wireless), shared
// MWSR/SWMR media, cluster/partition hints, a floorplan — plus a routing
// section that is either an explicit table or `"mode": "generated"`, in
// which case `routegen` derives shortest-path routes with escape VC
// classes. Technology knobs (VC count, buffer depth, clock, flit width,
// cpf overrides) stay in TopologyOptions so one file sweeps across
// operating points; `"cpf": "bisection"` defers a channel's serialization
// to the equal-bisection rule (topology/bisection.*).
//
// Loading is strict (unknown keys are errors — a topology file is a
// cache-key input) and every loaded spec passes spec.validate() plus the
// channel-dependency deadlock check before it reaches a kernel.
#pragma once

#include <map>
#include <string>

#include "network/spec.hpp"
#include "topology/options.hpp"
#include "topology/registry.hpp"

namespace ownsim::topofile {

/// Version tag of the route generator + loader semantics. Part of the serve
/// cache key for file topologies: a generator change re-keys every cached
/// file-topology result even when the file bytes did not change.
inline constexpr char kTopofileGeneratorVersion[] = "topogen-1";

/// Parses `text` and builds the full NetworkSpec: structure from the file,
/// technology from `options` (options.num_cores must equal the file's node
/// count), routes copied or generated, then validate() + deadlock check.
/// Throws std::invalid_argument / std::runtime_error with "topofile:"
/// messages.
NetworkSpec load_topofile(const std::string& text,
                          const TopologyOptions& options);

/// Registry entry point for TopologyKind::kFile: loads from
/// options.topofile_text when set, else reads options.topofile_path.
NetworkSpec build_topofile(const TopologyOptions& options);

/// Reads a topology file into a string; throws std::runtime_error when the
/// file cannot be opened.
std::string read_topofile(const std::string& path);

/// Cheap header probe (no structural validation): name, node count and the
/// optional `emulates` topology name ("" when absent).
struct TopofileInfo {
  std::string name;
  int num_nodes = 0;
  std::string emulates;
};
TopofileInfo probe_topofile(const std::string& text);

/// Kind used for result naming and the per-channel energy model: the file's
/// `emulates` target when present, kFile otherwise. Reads the file when
/// options.topofile_text is empty.
TopologyKind topofile_reporting_kind(const TopologyOptions& options);

/// Export policy: which structural extras to emit alongside the spec.
struct ExportPolicy {
  /// Optional `emulates` topology name (e.g. "own") for reporting/energy.
  std::string emulates;
  /// Emit `"routing": {"mode": "generated"}` instead of the spec's tables.
  bool generated_routing = false;
  /// Crossing-channel counts per medium name ("electrical"/"photonic"/
  /// "wireless"): channels of a listed medium get `"cpf": "bisection"` and
  /// the count lands in the file's `bisection` object.
  std::map<std::string, double> bisection;
};

/// Serializes `spec` to canonical topology-file JSON (sorted keys, numfmt
/// numbers, trailing newline). `options` supplies the defaults that are
/// omitted when matched (arbitration, max_packet_flits). Multi-reader media
/// lose their select_reader: the loader re-derives the nearest-reader
/// policy, which need not match a hand-written lambda.
std::string export_topofile(const NetworkSpec& spec,
                            const TopologyOptions& options,
                            const ExportPolicy& policy);

}  // namespace ownsim::topofile

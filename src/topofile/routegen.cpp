#include "topofile/routegen.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace ownsim::topofile {
namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 2;

/// One outgoing channel of a router. `resource` ids: links first
/// ([0, num_links)), then media (num_links + medium index).
struct OutEdge {
  PortId port = kInvalidId;
  int resource = -1;
  bool is_medium = false;
  int index = -1;  ///< into spec.links or spec.media
  int weight = 1;  ///< channel latency (>= 1)
};

struct ChannelGraph {
  const NetworkSpec* spec = nullptr;
  std::vector<std::vector<OutEdge>> out;  ///< per router, sorted by port
  /// First node attached to each router (kInvalidId when none); passed to
  /// select_reader, which may ignore it.
  std::vector<NodeId> first_node;
  /// True for routers with at least one attached node — the only valid
  /// traffic destinations.
  std::vector<bool> attached;
};

ChannelGraph make_channel_graph(const NetworkSpec& spec) {
  ChannelGraph g;
  g.spec = &spec;
  const std::size_t num_routers = spec.routers.size();
  g.out.resize(num_routers);
  g.first_node.assign(num_routers, kInvalidId);
  g.attached.assign(num_routers, false);
  for (NodeId n = 0; n < spec.num_nodes; ++n) {
    const auto r = static_cast<std::size_t>(spec.nodes[n].router);
    if (!g.attached[r]) {
      g.attached[r] = true;
      g.first_node[r] = n;
    }
  }
  const int num_links = static_cast<int>(spec.links.size());
  for (int i = 0; i < num_links; ++i) {
    const LinkSpec& link = spec.links[static_cast<std::size_t>(i)];
    g.out[static_cast<std::size_t>(link.src_router)].push_back(
        {link.src_port, i, false, i, std::max(1, link.latency)});
  }
  for (int m = 0; m < static_cast<int>(spec.media.size()); ++m) {
    const MediumSpec& medium = spec.media[static_cast<std::size_t>(m)];
    for (const auto& [router, port] : medium.writers) {
      g.out[static_cast<std::size_t>(router)].push_back(
          {port, num_links + m, true, m, std::max(1, medium.latency)});
    }
  }
  for (auto& edges : g.out) {
    std::sort(edges.begin(), edges.end(),
              [](const OutEdge& a, const OutEdge& b) { return a.port < b.port; });
  }
  return g;
}

/// Router a packet arrives at after traversing `edge` toward `dst_router`.
RouterId edge_target(const ChannelGraph& g, const OutEdge& edge,
                     RouterId dst_router) {
  if (!edge.is_medium) {
    return g.spec->links[static_cast<std::size_t>(edge.index)].dst_router;
  }
  const MediumSpec& medium = g.spec->media[static_cast<std::size_t>(edge.index)];
  int reader = 0;
  if (medium.readers.size() > 1) {
    if (!medium.select_reader) {
      throw std::runtime_error("topofile: medium '" + medium.name +
                               "' has several readers but no select_reader");
    }
    const NodeId node = g.first_node[static_cast<std::size_t>(dst_router)];
    reader = medium.select_reader(node == kInvalidId ? 0 : node, dst_router);
    if (reader < 0 || reader >= static_cast<int>(medium.readers.size())) {
      throw std::runtime_error("topofile: select_reader of medium '" +
                               medium.name + "' returned a bad index");
    }
  }
  return medium.readers[static_cast<std::size_t>(reader)].first;
}

/// The outgoing channel of `router` on `port` (every network output port is
/// wired to exactly one link or medium writer; spec.validate enforces it).
const OutEdge& edge_on_port(const ChannelGraph& g, RouterId router,
                            PortId port) {
  for (const OutEdge& edge : g.out[static_cast<std::size_t>(router)]) {
    if (edge.port == port) return edge;
  }
  throw std::runtime_error(
      "topofile: route table uses unwired output port " + std::to_string(port) +
      " on router " + std::to_string(router));
}

std::string resource_label(const NetworkSpec& spec, int resource) {
  const int num_links = static_cast<int>(spec.links.size());
  if (resource < num_links) {
    const std::string& name = spec.links[static_cast<std::size_t>(resource)].name;
    return name.empty() ? "link#" + std::to_string(resource) : name;
  }
  const int m = resource - num_links;
  const std::string& name = spec.media[static_cast<std::size_t>(m)].name;
  return name.empty() ? "medium#" + std::to_string(m) : name;
}

/// Shortest latency from every router to `dst` (kInf when unreachable):
/// Dijkstra over the reversed channel graph. Media edges point at the
/// reader selected for `dst`, so the result matches the path a real packet
/// takes.
std::vector<int> distance_to(const ChannelGraph& g, RouterId dst) {
  const std::size_t num_routers = g.out.size();
  // Reversed adjacency: target router -> (source router, weight).
  std::vector<std::vector<std::pair<RouterId, int>>> rev(num_routers);
  for (std::size_t r = 0; r < num_routers; ++r) {
    for (const OutEdge& edge : g.out[r]) {
      const RouterId target = edge_target(g, edge, dst);
      rev[static_cast<std::size_t>(target)].push_back(
          {static_cast<RouterId>(r), edge.weight});
    }
  }
  std::vector<int> dist(num_routers, kInf);
  dist[static_cast<std::size_t>(dst)] = 0;
  using HeapItem = std::pair<int, RouterId>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  heap.push({0, dst});
  while (!heap.empty()) {
    const auto [d, r] = heap.top();
    heap.pop();
    if (d != dist[static_cast<std::size_t>(r)]) continue;
    for (const auto& [src, weight] : rev[static_cast<std::size_t>(r)]) {
      if (d + weight < dist[static_cast<std::size_t>(src)]) {
        dist[static_cast<std::size_t>(src)] = d + weight;
        heap.push({d + weight, src});
      }
    }
  }
  return dist;
}

/// Directed graph on a small integer node space with sorted adjacency.
struct Digraph {
  explicit Digraph(int nodes) : adj(static_cast<std::size_t>(nodes)) {}
  void finalize() {
    for (auto& edges : adj) {
      std::sort(edges.begin(), edges.end());
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
  }
  std::vector<std::vector<int>> adj;
};

/// Finds one directed cycle (as a node sequence, first == repeated node
/// excluded) among nodes where `alive` is true; empty when acyclic.
/// Iterative 3-color DFS in ascending node order — deterministic.
std::vector<int> find_cycle(const Digraph& graph,
                            const std::vector<bool>& alive) {
  const int n = static_cast<int>(graph.adj.size());
  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0 new 1 open 2 done
  std::vector<int> stack;
  std::vector<std::size_t> next_child;
  for (int start = 0; start < n; ++start) {
    if (color[static_cast<std::size_t>(start)] != 0 ||
        !alive[static_cast<std::size_t>(start)]) {
      continue;
    }
    stack.assign(1, start);
    next_child.assign(1, 0);
    color[static_cast<std::size_t>(start)] = 1;
    while (!stack.empty()) {
      const int node = stack.back();
      const auto& edges = graph.adj[static_cast<std::size_t>(node)];
      bool descended = false;
      while (next_child.back() < edges.size()) {
        const int child = edges[next_child.back()++];
        if (!alive[static_cast<std::size_t>(child)]) continue;
        if (color[static_cast<std::size_t>(child)] == 1) {
          // Back edge: the cycle is the stack suffix from `child`.
          const auto it = std::find(stack.begin(), stack.end(), child);
          return {it, stack.end()};
        }
        if (color[static_cast<std::size_t>(child)] == 0) {
          color[static_cast<std::size_t>(child)] = 1;
          stack.push_back(child);
          next_child.push_back(0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[static_cast<std::size_t>(node)] = 2;
        stack.pop_back();
        next_child.pop_back();
      }
    }
  }
  return {};
}

/// Deterministic feedback vertex set: repeatedly find a cycle among the
/// still-alive nodes and mark the cycle member with the highest live degree
/// (ties: lowest node id). Small graphs, few iterations.
std::vector<bool> feedback_set(const Digraph& graph) {
  const std::size_t n = graph.adj.size();
  std::vector<bool> marked(n, false);
  std::vector<bool> alive(n, true);
  std::vector<int> degree(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (const int v : graph.adj[u]) {
      ++degree[u];
      ++degree[static_cast<std::size_t>(v)];
    }
  }
  while (true) {
    const std::vector<int> cycle = find_cycle(graph, alive);
    if (cycle.empty()) break;
    int pick = cycle.front();
    for (const int node : cycle) {
      if (degree[static_cast<std::size_t>(node)] >
          degree[static_cast<std::size_t>(pick)]) {
        pick = node;
      }
    }
    marked[static_cast<std::size_t>(pick)] = true;
    alive[static_cast<std::size_t>(pick)] = false;
  }
  return marked;
}

/// The resource used when leaving `r` toward `d` per `table`.
const OutEdge& route_edge(const ChannelGraph& g,
                          const std::vector<std::vector<RouteEntry>>& table,
                          RouterId r, RouterId d) {
  const RouteEntry& entry =
      table[static_cast<std::size_t>(r)][static_cast<std::size_t>(d)];
  return edge_on_port(g, r, entry.out_port);
}

/// Adds the channel-dependency edges of one route table to `cdg`, whose
/// node space is resource * num_classes + vc_class. Destinations without
/// attached nodes carry no traffic and are skipped.
void add_table_dependencies(const ChannelGraph& g,
                            const std::vector<std::vector<RouteEntry>>& table,
                            int num_classes, Digraph& cdg) {
  const NetworkSpec& spec = *g.spec;
  const int num_routers = spec.num_routers();
  for (RouterId d = 0; d < num_routers; ++d) {
    if (!g.attached[static_cast<std::size_t>(d)]) continue;
    for (RouterId r = 0; r < num_routers; ++r) {
      if (r == d) continue;
      const OutEdge& e1 = route_edge(g, table, r, d);
      const RouterId next = edge_target(g, e1, d);
      if (next == d) continue;  // next hop ejects: no further dependency
      const OutEdge& e2 = route_edge(g, table, next, d);
      const int c1 =
          table[static_cast<std::size_t>(r)][static_cast<std::size_t>(d)]
              .vc_class;
      const int c2 =
          table[static_cast<std::size_t>(next)][static_cast<std::size_t>(d)]
              .vc_class;
      if (c1 < 0 || c1 >= num_classes || c2 < 0 || c2 >= num_classes) {
        throw std::runtime_error("topofile: route vc_class out of range");
      }
      cdg.adj[static_cast<std::size_t>(e1.resource * num_classes + c1)]
          .push_back(e2.resource * num_classes + c2);
    }
  }
}

}  // namespace

std::vector<int> nearest_reader_map(
    const NetworkSpec& spec,
    const std::vector<std::pair<RouterId, PortId>>& readers) {
  const ChannelGraph g = make_channel_graph(spec);
  const std::size_t num_routers = g.out.size();
  // Forward router adjacency with optimistic medium edges (writer -> every
  // reader): good enough for a reachability-aware tie-break, and well
  // defined before any select_reader exists.
  std::vector<std::vector<std::pair<RouterId, int>>> fwd(num_routers);
  for (std::size_t r = 0; r < num_routers; ++r) {
    for (const OutEdge& edge : g.out[r]) {
      if (!edge.is_medium) {
        fwd[r].push_back(
            {spec.links[static_cast<std::size_t>(edge.index)].dst_router,
             edge.weight});
        continue;
      }
      const MediumSpec& medium =
          spec.media[static_cast<std::size_t>(edge.index)];
      for (const auto& reader : medium.readers) {
        fwd[r].push_back({reader.first, edge.weight});
      }
    }
  }
  std::vector<int> best_reader(num_routers, 0);
  std::vector<int> best_dist(num_routers, kInf);
  for (int i = 0; i < static_cast<int>(readers.size()); ++i) {
    std::vector<int> dist(num_routers, kInf);
    const RouterId source = readers[static_cast<std::size_t>(i)].first;
    dist[static_cast<std::size_t>(source)] = 0;
    using HeapItem = std::pair<int, RouterId>;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    heap.push({0, source});
    while (!heap.empty()) {
      const auto [d, r] = heap.top();
      heap.pop();
      if (d != dist[static_cast<std::size_t>(r)]) continue;
      for (const auto& [target, weight] : fwd[static_cast<std::size_t>(r)]) {
        if (d + weight < dist[static_cast<std::size_t>(target)]) {
          dist[static_cast<std::size_t>(target)] = d + weight;
          heap.push({d + weight, target});
        }
      }
    }
    for (std::size_t r = 0; r < num_routers; ++r) {
      if (dist[r] < best_dist[r]) {  // strict: ties keep the lowest index
        best_dist[r] = dist[r];
        best_reader[r] = i;
      }
    }
  }
  return best_reader;
}

void generate_routes(NetworkSpec& spec, int max_classes) {
  const ChannelGraph g = make_channel_graph(spec);
  const int num_routers = spec.num_routers();
  const int num_resources =
      static_cast<int>(spec.links.size() + spec.media.size());
  spec.route_table.assign(
      static_cast<std::size_t>(num_routers),
      std::vector<RouteEntry>(static_cast<std::size_t>(num_routers)));

  // Shortest paths, one Dijkstra per destination. Tie-break: the out-edge
  // list is port-sorted and only strictly better candidates win, so equal
  // cost goes to the lowest out port.
  for (RouterId d = 0; d < num_routers; ++d) {
    const std::vector<int> dist = distance_to(g, d);
    for (RouterId r = 0; r < num_routers; ++r) {
      if (r == d) continue;
      PortId best_port = kInvalidId;
      int best_cost = kInf;
      for (const OutEdge& edge : g.out[static_cast<std::size_t>(r)]) {
        const RouterId target = edge_target(g, edge, d);
        const int through = dist[static_cast<std::size_t>(target)];
        if (through >= kInf) continue;
        const int cost = edge.weight + through;
        if (cost < best_cost) {
          best_cost = cost;
          best_port = edge.port;
        }
      }
      if (best_port == kInvalidId) {
        throw std::runtime_error(
            "topofile: router " + std::to_string(r) + " cannot reach router " +
            std::to_string(d) + " (disconnected topology)");
      }
      spec.route_table[static_cast<std::size_t>(r)]
                      [static_cast<std::size_t>(d)] = {best_port, 0};
    }
  }

  // Resource-level dependency graph of the generated routes. Acyclic means
  // the whole table is deadlock-free in a single VC class.
  Digraph resource_deps(num_resources);
  add_table_dependencies(g, spec.route_table, 1, resource_deps);
  resource_deps.finalize();
  if (find_cycle(resource_deps,
                 std::vector<bool>(static_cast<std::size_t>(num_resources),
                                   true))
          .empty()) {
    spec.vc_classes = {{0, spec.num_vcs}};
    return;
  }

  // Cyclic: break every cycle with a feedback set, then stretch each route
  // over ascending classes — the class steps up exactly when the path
  // crosses a marked resource. Same-class dependencies therefore only
  // involve unmarked resources, which are acyclic by construction, and
  // cross-class dependencies always ascend: the (resource, class) CDG is
  // acyclic (DESIGN.md §5j).
  const std::vector<bool> marked = feedback_set(resource_deps);

  // marks_remaining[r] (per destination) = marked resources left on the
  // path r -> d; class = (num_classes - 1) - marks_remaining.
  std::vector<std::vector<int>> remaining(
      static_cast<std::size_t>(num_routers),
      std::vector<int>(static_cast<std::size_t>(num_routers), 0));
  int max_remaining = 0;
  std::vector<int> chain;
  for (RouterId d = 0; d < num_routers; ++d) {
    std::vector<int> memo(static_cast<std::size_t>(num_routers), -1);
    memo[static_cast<std::size_t>(d)] = 0;
    for (RouterId r = 0; r < num_routers; ++r) {
      if (memo[static_cast<std::size_t>(r)] >= 0) continue;
      chain.clear();
      RouterId at = r;
      while (memo[static_cast<std::size_t>(at)] < 0) {
        memo[static_cast<std::size_t>(at)] = -2;  // on the current chain
        chain.push_back(at);
        at = edge_target(g, route_edge(g, spec.route_table, at, d), d);
        if (memo[static_cast<std::size_t>(at)] == -2) {
          throw std::runtime_error("topofile: generated routing loop via router " +
                                   std::to_string(at));
        }
      }
      int acc = memo[static_cast<std::size_t>(at)];
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const OutEdge& edge = route_edge(g, spec.route_table, *it, d);
        acc += marked[static_cast<std::size_t>(edge.resource)] ? 1 : 0;
        memo[static_cast<std::size_t>(*it)] = acc;
      }
    }
    for (RouterId r = 0; r < num_routers; ++r) {
      if (r == d) continue;
      remaining[static_cast<std::size_t>(r)][static_cast<std::size_t>(d)] =
          memo[static_cast<std::size_t>(r)];
      max_remaining = std::max(max_remaining, memo[static_cast<std::size_t>(r)]);
    }
  }

  const int num_classes = max_remaining + 1;
  const int budget = std::min(max_classes, spec.num_vcs);
  if (num_classes > budget) {
    const std::vector<int> cycle = find_cycle(
        resource_deps,
        std::vector<bool>(static_cast<std::size_t>(num_resources), true));
    std::string label;
    for (const int resource : cycle) {
      if (!label.empty()) label += " -> ";
      label += resource_label(spec, resource);
    }
    throw std::runtime_error(
        "topofile: breaking routing cycles needs " +
        std::to_string(num_classes) + " VC classes but only " +
        std::to_string(budget) + " are available; offending cycle: " + label);
  }
  for (RouterId r = 0; r < num_routers; ++r) {
    for (RouterId d = 0; d < num_routers; ++d) {
      if (r == d) continue;
      auto& entry = spec.route_table[static_cast<std::size_t>(r)]
                                    [static_cast<std::size_t>(d)];
      entry.vc_class = static_cast<std::int8_t>(
          (num_classes - 1) -
          remaining[static_cast<std::size_t>(r)][static_cast<std::size_t>(d)]);
    }
  }
  spec.vc_classes.clear();
  for (int c = 0; c < num_classes - 1; ++c) {
    spec.vc_classes.push_back({c, 1});
  }
  spec.vc_classes.push_back(
      {num_classes - 1, spec.num_vcs - (num_classes - 1)});
}

DeadlockReport check_deadlock(const NetworkSpec& spec) {
  const ChannelGraph g = make_channel_graph(spec);
  const int num_classes = static_cast<int>(spec.vc_classes.size());
  const int num_resources =
      static_cast<int>(spec.links.size() + spec.media.size());
  Digraph cdg(num_resources * num_classes);
  add_table_dependencies(g, spec.route_table, num_classes, cdg);
  if (spec.has_alt_routing()) {
    add_table_dependencies(g, spec.route_table_alt, num_classes, cdg);
  }
  cdg.finalize();
  const std::vector<int> cycle = find_cycle(
      cdg, std::vector<bool>(
               static_cast<std::size_t>(num_resources * num_classes), true));
  DeadlockReport report;
  if (cycle.empty()) return report;
  report.deadlock_free = false;
  for (const int node : cycle) {
    report.cycle.push_back(resource_label(spec, node / num_classes) + "[class " +
                           std::to_string(node % num_classes) + "]");
  }
  return report;
}

void require_deadlock_free(const NetworkSpec& spec) {
  const DeadlockReport report = check_deadlock(spec);
  if (report.deadlock_free) return;
  std::string label;
  for (const std::string& hop : report.cycle) {
    if (!label.empty()) label += " -> ";
    label += hop;
  }
  throw std::runtime_error("topofile: routing is not deadlock-free in '" +
                           spec.name + "'; channel-dependency cycle: " + label);
}

}  // namespace ownsim::topofile

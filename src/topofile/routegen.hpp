// Route-table generation and deadlock checking over a NetworkSpec.
//
// Both operate on the spec's channel graph: one node per router, one edge
// per point-to-point link and per shared-medium writer. The *resource* a
// packet holds while traversing an edge is the link (dst-side input buffer)
// or the whole shared medium (staging + reader buffer; all readers of one
// medium are conservatively folded into a single resource).
//
// `generate_routes` fills the spec's primary route table with shortest
// paths (Dijkstra over link latency, deterministic lowest-out-port
// tie-break — on a CMesh with ports assigned E,W,N,S this reproduces XY
// DOR exactly) and assigns escape VC classes: routes start in one class;
// only when the route-induced channel-dependency graph is cyclic does the
// generator compute a deterministic feedback set and stretch the routes
// over ascending classes so every dependency cycle is broken (DESIGN.md
// §5j has the proof sketch). Generation fails loudly when the class budget
// cannot cover the cycles.
//
// `check_deadlock` is the independent verifier: it rebuilds the
// channel-dependency graph from the *final* tables — hand-written or
// generated, primary and alternate — over (resource, vc_class) nodes and
// reports any cycle by channel name. Every topology loaded from a file
// passes through it; the hand-built topologies are regression-tested
// against it too.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "network/spec.hpp"

namespace ownsim::topofile {

/// Fills `spec.route_table` and `spec.vc_classes` (see file comment).
/// Requires routers/nodes/links/media populated and `select_reader` set on
/// every multi-reader medium. `max_classes` caps the escape-class count
/// (clamped to `spec.num_vcs`; each class needs at least one VC).
/// Throws std::runtime_error when a router cannot reach another or when
/// breaking all dependency cycles needs more than `max_classes` classes.
void generate_routes(NetworkSpec& spec, int max_classes);

struct DeadlockReport {
  bool deadlock_free = true;
  /// One offending cycle, innermost first, as "channel-name[class N]"
  /// labels; empty when deadlock_free.
  std::vector<std::string> cycle;
};

/// Channel-dependency-graph cycle detection over the spec's route tables
/// (primary and alternate). Only traffic-carrying pairs are walked: any
/// source router toward destinations with attached nodes.
DeadlockReport check_deadlock(const NetworkSpec& spec);

/// Throws std::runtime_error naming the cycle unless `check_deadlock`
/// passes.
void require_deadlock_free(const NetworkSpec& spec);

/// Reader choice for a multi-reader (SWMR) medium: for every destination
/// router, the reader whose router is nearest by shortest-path latency
/// (ties: lowest reader index). Index by destination router id.
std::vector<int> nearest_reader_map(
    const NetworkSpec& spec,
    const std::vector<std::pair<RouterId, PortId>>& readers);

}  // namespace ownsim::topofile

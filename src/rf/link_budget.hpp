// Wireless link-budget model (paper Fig. 3).
//
// Free-space Friis path loss between on-chip antennas plus an OOK receiver
// sensitivity model:
//
//   sensitivity(dBm) = -174 dBm/Hz + 10 log10(data_rate) + NF + SNR_req
//   required_tx(dBm) = sensitivity + FSPL(d) - G_tx - G_rx + margin
//
// With the defaults (NF 8 dB, OOK SNR 17 dB for BER 1e-12, 2.5 dB
// implementation margin) this reproduces the paper's anchor: a 32 Gb/s link
// at 90 GHz over 50 mm with isotropic antennas needs >= 4 dBm of transmit
// power (§IV.A).
#pragma once

namespace ownsim {

class LinkBudget {
 public:
  struct Params {
    double freq_hz = 90e9;
    double data_rate_bps = 32e9;
    double noise_figure_db = 8.0;
    double snr_required_db = 17.0;  ///< OOK at BER 1e-12 (Q ~= 7)
    double margin_db = 2.5;         ///< implementation losses
  };

  LinkBudget() : LinkBudget(Params{}) {}
  explicit LinkBudget(Params params);

  /// Free-space path loss over `distance_m`, dB.
  double fspl_db(double distance_m) const;

  /// Receiver sensitivity, dBm.
  double sensitivity_dbm() const;

  /// Transmit power required to close the link, dBm. Directivities in dBi.
  double required_tx_dbm(double distance_m, double tx_directivity_dbi = 0.0,
                         double rx_directivity_dbi = 0.0) const;

  /// Received power for a given transmit power, dBm.
  double received_dbm(double tx_dbm, double distance_m,
                      double tx_directivity_dbi = 0.0,
                      double rx_directivity_dbi = 0.0) const;

  /// Link margin (received - sensitivity), dB.
  double margin_db(double tx_dbm, double distance_m,
                   double tx_directivity_dbi = 0.0,
                   double rx_directivity_dbi = 0.0) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace ownsim

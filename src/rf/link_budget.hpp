// Wireless link-budget model (paper Fig. 3).
//
// Free-space Friis path loss between on-chip antennas plus an OOK receiver
// sensitivity model:
//
//   sensitivity(dBm) = -174 dBm/Hz + 10 log10(data_rate) + NF + SNR_req
//   required_tx(dBm) = sensitivity + FSPL(d) - G_tx - G_rx + margin
//
// With the defaults (NF 8 dB, OOK SNR 17 dB for BER 1e-12, 2.5 dB
// implementation margin) this reproduces the paper's anchor: a 32 Gb/s link
// at 90 GHz over 50 mm with isotropic antennas needs >= 4 dBm of transmit
// power (§IV.A).
//
// All interfaces are dimensionally typed (common/quantity.hpp): distances
// are `Length`, absolute powers `DbmPower`, gains/losses `Decibels` — mixing
// them up is a compile error.
#pragma once

#include "common/quantity.hpp"

namespace ownsim {

class LinkBudget {
 public:
  struct Params {
    Frequency freq = 90.0_ghz;
    DataRate data_rate = 32.0_gbps;
    Decibels noise_figure{8.0};
    Decibels snr_required{17.0};  ///< OOK at BER 1e-12 (Q ~= 7)
    Decibels margin{2.5};         ///< implementation losses
  };

  LinkBudget() : LinkBudget(Params{}) {}
  explicit LinkBudget(Params params);

  /// Free-space path loss over `distance`.
  Decibels fspl(Length distance) const;

  /// Receiver sensitivity.
  DbmPower sensitivity() const;

  /// Transmit power required to close the link. Directivities in dBi.
  DbmPower required_tx(Length distance, Decibels tx_directivity = Decibels{},
                       Decibels rx_directivity = Decibels{}) const;

  /// Received power for a given transmit power.
  DbmPower received(DbmPower tx, Length distance,
                    Decibels tx_directivity = Decibels{},
                    Decibels rx_directivity = Decibels{}) const;

  /// Link margin (received - sensitivity).
  Decibels margin(DbmPower tx, Length distance,
                  Decibels tx_directivity = Decibels{},
                  Decibels rx_directivity = Decibels{}) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace ownsim

// Bit-error-rate analysis for the OOK links (§IV.A).
//
// Non-coherent OOK with an envelope detector: for a received SNR (ratio of
// average signal power to noise power in the detection bandwidth), the
// error probability is approximated by the standard Q-function expression
//
//   BER = Q(sqrt(SNR))            (equal-probable marks/spaces, optimal
//                                  threshold; SNR = average-power based)
//
// The inverse problem — the SNR required for a target BER — is what the
// link budget's `snr_required` encodes; `required_snr(1e-12)` ~= 17 dB
// reproduces the constant used there. SNRs and margins are log-domain
// `Decibels`; BERs are plain probabilities.
#pragma once

#include "common/quantity.hpp"

namespace ownsim {

/// Gaussian tail probability Q(x) = P(N(0,1) > x). Uses the complementary
/// error function; accurate over the range relevant to BER work (x in 0..10).
double q_function(double x);

/// OOK bit-error rate at `snr` (average-power SNR).
double ook_ber(Decibels snr);

/// Smallest SNR achieving `target_ber` (bisection on the monotone BER
/// curve). Throws std::invalid_argument for target_ber outside (0, 0.5).
Decibels required_snr(double target_ber);

/// BER of a link budget operating point: margin over sensitivity translates
/// into SNR above the required minimum.
double ber_at_margin(Decibels snr_required, Decibels margin);

}  // namespace ownsim

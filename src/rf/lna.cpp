#include "rf/lna.hpp"

#include <cmath>
#include <stdexcept>

namespace ownsim {

WidebandLna::WidebandLna(Params params) : params_(params) {
  if (params_.center_freq.value() <= 0 || params_.gain_bw.value() <= 0) {
    throw std::invalid_argument("WidebandLna: bad parameters");
  }
}

Decibels WidebandLna::gain(Frequency freq) const {
  // Parabolic band-pass calibrated for -3 dB at +-BW/2.
  const double x = (freq - params_.center_freq) / (params_.gain_bw / 2.0);
  return params_.peak_gain - Decibels{3.0 * x * x};
}

}  // namespace ownsim

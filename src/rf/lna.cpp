#include "rf/lna.hpp"

#include <cmath>
#include <stdexcept>

namespace ownsim {

WidebandLna::WidebandLna(Params params) : params_(params) {
  if (params_.center_freq_hz <= 0 || params_.gain_bw_hz <= 0) {
    throw std::invalid_argument("WidebandLna: bad parameters");
  }
}

double WidebandLna::gain_db(double freq_hz) const {
  // Parabolic band-pass calibrated for -3 dB at +-BW/2.
  const double x =
      (freq_hz - params_.center_freq_hz) / (params_.gain_bw_hz / 2.0);
  return params_.peak_gain_db - 3.0 * x * x;
}

}  // namespace ownsim

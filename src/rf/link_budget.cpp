#include "rf/link_budget.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

LinkBudget::LinkBudget(Params params) : params_(params) {
  if (params_.freq.value() <= 0 || params_.data_rate.value() <= 0) {
    throw std::invalid_argument("LinkBudget: bad frequency/data rate");
  }
}

Decibels LinkBudget::fspl(Length distance) const {
  if (distance.value() <= 0) {
    throw std::invalid_argument("LinkBudget: distance must be > 0");
  }
  // Friis: (4 pi d / lambda)^2, with lambda = c / f. The Quantity division
  // proves the argument of log10 is dimensionless.
  const double ratio =
      4.0 * units::kPi * (distance / units::wavelength(params_.freq));
  return Decibels{20.0 * std::log10(ratio)};
}

DbmPower LinkBudget::sensitivity() const {
  // Thermal noise floor kTB expressed per Hz is -174 dBm/Hz at 290 K.
  const DbmPower noise_floor{-174.0 +
                             10.0 * std::log10(params_.data_rate.value())};
  return noise_floor + params_.noise_figure + params_.snr_required;
}

DbmPower LinkBudget::required_tx(Length distance, Decibels tx_directivity,
                                 Decibels rx_directivity) const {
  return sensitivity() + fspl(distance) - tx_directivity - rx_directivity +
         params_.margin;
}

DbmPower LinkBudget::received(DbmPower tx, Length distance,
                              Decibels tx_directivity,
                              Decibels rx_directivity) const {
  return tx + tx_directivity + rx_directivity - fspl(distance) -
         params_.margin;
}

Decibels LinkBudget::margin(DbmPower tx, Length distance,
                            Decibels tx_directivity,
                            Decibels rx_directivity) const {
  return received(tx, distance, tx_directivity, rx_directivity) -
         sensitivity();
}

}  // namespace ownsim

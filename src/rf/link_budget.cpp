#include "rf/link_budget.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

LinkBudget::LinkBudget(Params params) : params_(params) {
  if (params_.freq_hz <= 0 || params_.data_rate_bps <= 0) {
    throw std::invalid_argument("LinkBudget: bad frequency/data rate");
  }
}

double LinkBudget::fspl_db(double distance_m) const {
  if (distance_m <= 0) {
    throw std::invalid_argument("LinkBudget: distance must be > 0");
  }
  const double ratio =
      4.0 * units::kPi * distance_m * params_.freq_hz / units::kSpeedOfLight;
  return 20.0 * std::log10(ratio);
}

double LinkBudget::sensitivity_dbm() const {
  // Thermal noise floor kTB expressed per Hz is -174 dBm/Hz at 290 K.
  const double noise_floor_dbm =
      -174.0 + 10.0 * std::log10(params_.data_rate_bps);
  return noise_floor_dbm + params_.noise_figure_db + params_.snr_required_db;
}

double LinkBudget::required_tx_dbm(double distance_m, double tx_directivity_dbi,
                                   double rx_directivity_dbi) const {
  return sensitivity_dbm() + fspl_db(distance_m) - tx_directivity_dbi -
         rx_directivity_dbi + params_.margin_db;
}

double LinkBudget::received_dbm(double tx_dbm, double distance_m,
                                double tx_directivity_dbi,
                                double rx_directivity_dbi) const {
  return tx_dbm + tx_directivity_dbi + rx_directivity_dbi -
         fspl_db(distance_m) - params_.margin_db;
}

double LinkBudget::margin_db(double tx_dbm, double distance_m,
                             double tx_directivity_dbi,
                             double rx_directivity_dbi) const {
  return received_dbm(tx_dbm, distance_m, tx_directivity_dbi,
                      rx_directivity_dbi) -
         sensitivity_dbm();
}

}  // namespace ownsim

#include "rf/ber.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

double q_function(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double ook_ber(Decibels snr) {
  // Guard the extremes: a degenerate operating point (-inf dB ratio
  // underflowing to 0, or a NaN from upstream arithmetic) must still land in
  // the probability range, and huge SNRs must underflow cleanly to 0 —
  // callers feed the result straight into flit-error draws.
  const double ratio = units::to_ratio(snr);
  if (!(ratio > 0.0)) return 0.5;
  return std::clamp(q_function(std::sqrt(ratio)), 0.0, 0.5);
}

Decibels required_snr(double target_ber) {
  if (!(target_ber > 0.0) || !(target_ber < 0.5)) {
    throw std::invalid_argument("required_snr: target must be in (0, 0.5)");
  }
  Decibels lo{-10.0};
  Decibels hi{40.0};
  for (int i = 0; i < 200; ++i) {
    const Decibels mid = (lo + hi) * 0.5;
    if (ook_ber(mid) > target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double ber_at_margin(Decibels snr_required, Decibels margin) {
  return ook_ber(snr_required + margin);
}

}  // namespace ownsim

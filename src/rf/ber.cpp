#include "rf/ber.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

double q_function(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double ook_ber(double snr_db) {
  const double snr = units::db_to_ratio(snr_db);
  return q_function(std::sqrt(snr));
}

double required_snr_db(double target_ber) {
  if (!(target_ber > 0.0) || !(target_ber < 0.5)) {
    throw std::invalid_argument("required_snr_db: target must be in (0, 0.5)");
  }
  double lo = -10.0;
  double hi = 40.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (ook_ber(mid) > target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double ber_at_margin(double snr_required_db, double margin_db) {
  return ook_ber(snr_required_db + margin_db);
}

}  // namespace ownsim

#include "rf/ber.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

double q_function(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double ook_ber(Decibels snr) {
  return q_function(std::sqrt(units::to_ratio(snr)));
}

Decibels required_snr(double target_ber) {
  if (!(target_ber > 0.0) || !(target_ber < 0.5)) {
    throw std::invalid_argument("required_snr: target must be in (0, 0.5)");
  }
  Decibels lo{-10.0};
  Decibels hi{40.0};
  for (int i = 0; i < 200; ++i) {
    const Decibels mid = (lo + hi) * 0.5;
    if (ook_ber(mid) > target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double ber_at_margin(Decibels snr_required, Decibels margin) {
  return ook_ber(snr_required + margin);
}

}  // namespace ownsim

// Behavioral Colpitts oscillator model (paper Fig. 4a).
//
// The paper's 65-nm carrier source is a Colpitts oscillator whose external
// capacitors are replaced by the gate-source / gate-drain capacitances of
// M1; those resonate in series with the tank inductor:
//
//   C_eff = Cgs * Cgd / (Cgs + Cgd),   f_osc = 1 / (2 pi sqrt(L * C_eff))
//
// Phase noise follows Leeson's model around the carrier and is used to
// synthesize the PSD plot. Defaults are tuned to the published anchors:
// 90 GHz oscillation at 1 V and about -86 dBc/Hz at 1 MHz offset.
//
// Phase-noise figures are dBc/Hz — decibels relative to the carrier in a
// 1 Hz bin — typed as the relative `Decibels`.
#pragma once

#include <utility>
#include <vector>

#include "common/quantity.hpp"

namespace ownsim {

class ColpittsOscillator {
 public:
  struct Params {
    Inductance inductance = 100.0_ph;  ///< tank inductor L
    Capacitance cgs = 75.0_ff;         ///< gate-source capacitance of M1
    Capacitance cgd = 53.5_ff;         ///< gate-drain capacitance of M1
    double loaded_q = 3.5;             ///< on-chip LC tank quality factor
    double noise_factor = 2.0;         ///< Leeson excess-noise factor F
    Power signal_power = 1.0_mw;       ///< carrier power at 1 V supply
    Voltage supply = 1.0_v;
    Current bias_current = 4.0_ma;
  };

  ColpittsOscillator() : ColpittsOscillator(Params{}) {}
  explicit ColpittsOscillator(Params params);

  /// Effective series tank capacitance.
  Capacitance effective_capacitance() const;

  /// Oscillation frequency.
  Frequency frequency() const;

  /// Leeson phase noise at `offset` from the carrier, dBc/Hz.
  Decibels phase_noise_dbc(Frequency offset) const;

  /// DC power drawn from the supply.
  Power dc_power() const;

  /// One PSD sample at absolute frequency `freq`, dBc/Hz relative to the
  /// carrier (carrier modeled as a narrow Lorentzian line).
  Decibels psd_dbc(Frequency freq) const;

  /// PSD sweep across [f_lo, f_hi] with `points` samples (for Fig 4a).
  std::vector<std::pair<Frequency, Decibels>> psd_sweep(Frequency f_lo,
                                                        Frequency f_hi,
                                                        int points) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace ownsim

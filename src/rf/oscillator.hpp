// Behavioral Colpitts oscillator model (paper Fig. 4a).
//
// The paper's 65-nm carrier source is a Colpitts oscillator whose external
// capacitors are replaced by the gate-source / gate-drain capacitances of
// M1; those resonate in series with the tank inductor:
//
//   C_eff = Cgs * Cgd / (Cgs + Cgd),   f_osc = 1 / (2 pi sqrt(L * C_eff))
//
// Phase noise follows Leeson's model around the carrier and is used to
// synthesize the PSD plot. Defaults are tuned to the published anchors:
// 90 GHz oscillation at 1 V and about -86 dBc/Hz at 1 MHz offset.
#pragma once

#include <vector>

namespace ownsim {

class ColpittsOscillator {
 public:
  struct Params {
    double inductance_h = 100e-12;  ///< tank inductor L
    double cgs_f = 75e-15;          ///< gate-source capacitance of M1
    double cgd_f = 53.5e-15;        ///< gate-drain capacitance of M1
    double loaded_q = 3.5;          ///< on-chip LC tank quality factor
    double noise_factor = 2.0;      ///< Leeson excess-noise factor F
    double signal_power_w = 1e-3;   ///< carrier power at 1 V supply
    double supply_v = 1.0;
    double bias_current_a = 4e-3;
  };

  ColpittsOscillator() : ColpittsOscillator(Params{}) {}
  explicit ColpittsOscillator(Params params);

  /// Effective series tank capacitance (F).
  double effective_capacitance_f() const;

  /// Oscillation frequency (Hz).
  double frequency_hz() const;

  /// Leeson phase noise at `offset_hz` from the carrier, dBc/Hz.
  double phase_noise_dbc_hz(double offset_hz) const;

  /// DC power drawn from the supply (W).
  double dc_power_w() const;

  /// One PSD sample at absolute frequency `freq_hz`, dBc/Hz relative to the
  /// carrier (carrier modeled as a narrow Lorentzian line).
  double psd_dbc_hz(double freq_hz) const;

  /// PSD sweep across [f_lo, f_hi] with `points` samples (for Fig 4a).
  std::vector<std::pair<double, double>> psd_sweep(double f_lo, double f_hi,
                                                   int points) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace ownsim

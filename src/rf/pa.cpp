#include "rf/pa.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

ClassAbPa::ClassAbPa(Params params) : params_(params) {
  if (params_.center_freq.value() <= 0 || params_.gain_bw.value() <= 0 ||
      params_.rapp_p <= 0 || params_.dc_power.value() <= 0) {
    throw std::invalid_argument("ClassAbPa: bad parameters");
  }
}

Decibels ClassAbPa::gain(Frequency freq) const {
  // Parabolic roll-off calibrated so gain is (peak - 2 dB) at +-BW/2.
  const double x = (freq - params_.center_freq) / (params_.gain_bw / 2.0);
  return params_.peak_gain - Decibels{2.0 * x * x};
}

DbmPower ClassAbPa::output(DbmPower input, Frequency freq) const {
  const double gain_ratio = units::to_ratio(gain(freq));
  const Power pin = units::to_watts(input);
  const Power psat = units::to_watts(params_.psat);
  const Power linear = gain_ratio * pin;
  const double p = params_.rapp_p;
  const Power out =
      linear / std::pow(1.0 + std::pow(linear / psat, 2.0 * p),
                        1.0 / (2.0 * p));
  return units::to_dbm(out);
}

DbmPower ClassAbPa::p1db() const {
  // Scan input power for the point where gain has dropped by exactly 1 dB.
  const Frequency f0 = params_.center_freq;
  for (double pin_dbm = -30.0; pin_dbm < 30.0; pin_dbm += 0.01) {
    const DbmPower pin{pin_dbm};
    const DbmPower pout = output(pin, f0);
    if ((pin + gain(f0)) - pout >= Decibels{1.0}) return pout;
  }
  return params_.psat;
}

double ClassAbPa::efficiency(DbmPower output) const {
  return units::to_watts(output) / params_.dc_power;
}

Frequency ClassAbPa::bandwidth(Decibels drop) const {
  // gain drops by `drop` at x = sqrt(drop/2) band-halves.
  return params_.gain_bw * std::sqrt(drop.db() / 2.0);
}

}  // namespace ownsim

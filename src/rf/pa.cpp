#include "rf/pa.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

ClassAbPa::ClassAbPa(Params params) : params_(params) {
  if (params_.center_freq_hz <= 0 || params_.gain_bw_hz <= 0 ||
      params_.rapp_p <= 0 || params_.dc_power_w <= 0) {
    throw std::invalid_argument("ClassAbPa: bad parameters");
  }
}

double ClassAbPa::gain_db(double freq_hz) const {
  // Parabolic roll-off calibrated so gain is (peak - 2 dB) at +-BW/2.
  const double x = (freq_hz - params_.center_freq_hz) / (params_.gain_bw_hz / 2.0);
  return params_.peak_gain_db - 2.0 * x * x;
}

double ClassAbPa::output_dbm(double input_dbm, double freq_hz) const {
  const double gain = units::db_to_ratio(gain_db(freq_hz));
  const double pin_w = units::dbm_to_watts(input_dbm);
  const double psat_w = units::dbm_to_watts(params_.psat_dbm);
  const double linear_w = gain * pin_w;
  const double p = params_.rapp_p;
  const double out_w =
      linear_w / std::pow(1.0 + std::pow(linear_w / psat_w, 2.0 * p),
                          1.0 / (2.0 * p));
  return units::watts_to_dbm(out_w);
}

double ClassAbPa::p1db_dbm() const {
  // Scan input power for the point where gain has dropped by exactly 1 dB.
  const double f0 = params_.center_freq_hz;
  for (double pin = -30.0; pin < 30.0; pin += 0.01) {
    const double pout = output_dbm(pin, f0);
    if ((pin + gain_db(f0)) - pout >= 1.0) return pout;
  }
  return params_.psat_dbm;
}

double ClassAbPa::efficiency(double output_dbm_value) const {
  return units::dbm_to_watts(output_dbm_value) / params_.dc_power_w;
}

double ClassAbPa::bandwidth_hz(double drop_db) const {
  // gain_db drops by `drop_db` at x = sqrt(drop/2) band-halves.
  return params_.gain_bw_hz * std::sqrt(drop_db / 2.0);
}

}  // namespace ownsim

// Behavioral wideband LNA model (paper Fig. 4c).
//
// The paper's receiver front-end is a common-source-degenerated
// cascade-cascode LNA with ~10 dB of gain around 90 GHz, enough for 50 mm
// operation. Modeled as a band-pass gain curve plus a noise figure used by
// the link budget.
#pragma once

namespace ownsim {

class WidebandLna {
 public:
  struct Params {
    double center_freq_hz = 90e9;
    double peak_gain_db = 10.0;
    double gain_bw_hz = 30e9;      ///< 3-dB bandwidth
    double noise_figure_db = 6.0;
    double dc_power_w = 9e-3;
  };

  WidebandLna() : WidebandLna(Params{}) {}
  explicit WidebandLna(Params params);

  /// Gain at `freq_hz`, dB (second-order band-pass).
  double gain_db(double freq_hz) const;

  double noise_figure_db() const { return params_.noise_figure_db; }
  double dc_power_w() const { return params_.dc_power_w; }

  /// Width of the band where gain >= peak - 3 dB, Hz.
  double bandwidth_3db_hz() const { return params_.gain_bw_hz; }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace ownsim

// Behavioral wideband LNA model (paper Fig. 4c).
//
// The paper's receiver front-end is a common-source-degenerated
// cascade-cascode LNA with ~10 dB of gain around 90 GHz, enough for 50 mm
// operation. Modeled as a band-pass gain curve plus a noise figure used by
// the link budget.
#pragma once

#include "common/quantity.hpp"

namespace ownsim {

class WidebandLna {
 public:
  struct Params {
    Frequency center_freq = 90.0_ghz;
    Decibels peak_gain{10.0};
    Frequency gain_bw = 30.0_ghz;  ///< 3-dB bandwidth
    Decibels noise_figure{6.0};
    Power dc_power = 9.0_mw;
  };

  WidebandLna() : WidebandLna(Params{}) {}
  explicit WidebandLna(Params params);

  /// Gain at `freq` (second-order band-pass).
  Decibels gain(Frequency freq) const;

  Decibels noise_figure() const { return params_.noise_figure; }
  Power dc_power() const { return params_.dc_power; }

  /// Width of the band where gain >= peak - 3 dB.
  Frequency bandwidth_3db() const { return params_.gain_bw; }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace ownsim

// Behavioral class-AB power-amplifier model (paper Fig. 4b).
//
// Frequency response: a second-order band-pass around 90 GHz whose width is
// set so the gain stays within 2 dB of the 3.5 dB peak over about 20 GHz
// (the paper's published bandwidth). Compression: Rapp's soft-limiter
//
//   P_out = G * P_in / (1 + (G * P_in / P_sat)^(2p))^(1/p)      (linear W)
//
// anchored so the output 1-dB compression point lands at ~5 dBm and the
// saturated output can deliver the >= 4 mW (7 dBm P_RF) the link budget
// requires, at 14 mW DC dissipation from a 1 V supply.
#pragma once

#include "common/quantity.hpp"

namespace ownsim {

class ClassAbPa {
 public:
  struct Params {
    Frequency center_freq = 90.0_ghz;
    Decibels peak_gain{3.5};
    Frequency gain_bw = 20.0_ghz;  ///< width of the 2-dB-down band
    DbmPower psat{6.5};            ///< saturated output power (>= 4 mW target)
    double rapp_p = 2.0;           ///< Rapp knee sharpness
    Power dc_power = 14.0_mw;      ///< class-AB bias at 1 V
  };

  ClassAbPa() : ClassAbPa(Params{}) {}
  explicit ClassAbPa(Params params);

  /// Small-signal gain at `freq`.
  Decibels gain(Frequency freq) const;

  /// Output power for `input` at `freq` (Rapp compression).
  DbmPower output(DbmPower input, Frequency freq) const;

  /// Output-referred 1-dB compression point at the center frequency
  /// (found numerically).
  DbmPower p1db() const;

  /// Drain efficiency when delivering `output` of RF power.
  double efficiency(DbmPower output) const;

  /// Width of the band where gain >= peak - `drop`.
  Frequency bandwidth(Decibels drop) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace ownsim

// Behavioral class-AB power-amplifier model (paper Fig. 4b).
//
// Frequency response: a second-order band-pass around 90 GHz whose width is
// set so the gain stays within 2 dB of the 3.5 dB peak over about 20 GHz
// (the paper's published bandwidth). Compression: Rapp's soft-limiter
//
//   P_out = G * P_in / (1 + (G * P_in / P_sat)^(2p))^(1/p)      (linear W)
//
// anchored so the output 1-dB compression point lands at ~5 dBm and the
// saturated output can deliver the >= 4 mW (7 dBm P_RF) the link budget
// requires, at 14 mW DC dissipation from a 1 V supply.
#pragma once

namespace ownsim {

class ClassAbPa {
 public:
  struct Params {
    double center_freq_hz = 90e9;
    double peak_gain_db = 3.5;
    double gain_bw_hz = 20e9;    ///< width of the 2-dB-down band
    double psat_dbm = 6.5;       ///< saturated output power (>= 4 mW target)
    double rapp_p = 2.0;         ///< Rapp knee sharpness
    double dc_power_w = 14e-3;   ///< class-AB bias at 1 V
  };

  ClassAbPa() : ClassAbPa(Params{}) {}
  explicit ClassAbPa(Params params);

  /// Small-signal gain at `freq_hz`, dB.
  double gain_db(double freq_hz) const;

  /// Output power for `input_dbm` at `freq_hz`, dBm (Rapp compression).
  double output_dbm(double input_dbm, double freq_hz) const;

  /// Output-referred 1-dB compression point at the center frequency, dBm
  /// (found numerically).
  double p1db_dbm() const;

  /// Drain efficiency when delivering `output_dbm` of RF power.
  double efficiency(double output_dbm) const;

  /// Width of the band where gain >= peak - `drop_db`, Hz.
  double bandwidth_hz(double drop_db) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace ownsim

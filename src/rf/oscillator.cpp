#include "rf/oscillator.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

ColpittsOscillator::ColpittsOscillator(Params params) : params_(params) {
  if (params_.inductance_h <= 0 || params_.cgs_f <= 0 || params_.cgd_f <= 0 ||
      params_.loaded_q <= 0) {
    throw std::invalid_argument("ColpittsOscillator: bad tank parameters");
  }
}

double ColpittsOscillator::effective_capacitance_f() const {
  return params_.cgs_f * params_.cgd_f / (params_.cgs_f + params_.cgd_f);
}

double ColpittsOscillator::frequency_hz() const {
  return 1.0 /
         (2.0 * units::kPi *
          std::sqrt(params_.inductance_h * effective_capacitance_f()));
}

double ColpittsOscillator::phase_noise_dbc_hz(double offset_hz) const {
  if (offset_hz <= 0) {
    throw std::invalid_argument("phase_noise: offset must be > 0");
  }
  const double f0 = frequency_hz();
  const double leeson =
      2.0 * params_.noise_factor * units::kBoltzmann * units::kRoomTempK /
      params_.signal_power_w *
      (1.0 + std::pow(f0 / (2.0 * params_.loaded_q * offset_hz), 2));
  return 10.0 * std::log10(leeson);
}

double ColpittsOscillator::dc_power_w() const {
  return params_.supply_v * params_.bias_current_a;
}

double ColpittsOscillator::psd_dbc_hz(double freq_hz) const {
  const double f0 = frequency_hz();
  const double offset = std::abs(freq_hz - f0);
  // Inside the (synthetic) 100 kHz carrier linewidth, clamp to the peak so
  // the plot shows a finite carrier line.
  const double kLinewidth = 1e5;
  return phase_noise_dbc_hz(std::max(offset, kLinewidth));
}

std::vector<std::pair<double, double>> ColpittsOscillator::psd_sweep(
    double f_lo, double f_hi, int points) const {
  if (points < 2 || f_hi <= f_lo) {
    throw std::invalid_argument("psd_sweep: bad range");
  }
  std::vector<std::pair<double, double>> sweep;
  sweep.reserve(static_cast<std::size_t>(points));
  const double step = (f_hi - f_lo) / (points - 1);
  for (int i = 0; i < points; ++i) {
    const double f = f_lo + step * i;
    sweep.emplace_back(f, psd_dbc_hz(f));
  }
  return sweep;
}

}  // namespace ownsim

#include "rf/oscillator.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

ColpittsOscillator::ColpittsOscillator(Params params) : params_(params) {
  if (params_.inductance.value() <= 0 || params_.cgs.value() <= 0 ||
      params_.cgd.value() <= 0 || params_.loaded_q <= 0) {
    throw std::invalid_argument("ColpittsOscillator: bad tank parameters");
  }
}

Capacitance ColpittsOscillator::effective_capacitance() const {
  return params_.cgs * params_.cgd / (params_.cgs + params_.cgd);
}

Frequency ColpittsOscillator::frequency() const {
  // sqrt(L * C) carries dimension sqrt(H * F) = s; 1 / (2 pi s) is Hz.
  return 1.0 /
         (2.0 * units::kPi *
          ownsim::sqrt(params_.inductance * effective_capacitance()));
}

Decibels ColpittsOscillator::phase_noise_dbc(Frequency offset) const {
  if (offset.value() <= 0) {
    throw std::invalid_argument("phase_noise: offset must be > 0");
  }
  const Frequency f0 = frequency();
  const double carrier_ratio = f0 / (2.0 * params_.loaded_q * offset);
  const double leeson = 2.0 * params_.noise_factor * units::kBoltzmann *
                        units::kRoomTempK / params_.signal_power.value() *
                        (1.0 + carrier_ratio * carrier_ratio);
  return Decibels{10.0 * std::log10(leeson)};
}

Power ColpittsOscillator::dc_power() const {
  return params_.supply * params_.bias_current;  // V * A = W, by dimension
}

Decibels ColpittsOscillator::psd_dbc(Frequency freq) const {
  const Frequency f0 = frequency();
  const Frequency offset{std::abs((freq - f0).value())};
  // Inside the (synthetic) 100 kHz carrier linewidth, clamp to the peak so
  // the plot shows a finite carrier line.
  const Frequency linewidth = 100.0_khz;
  return phase_noise_dbc(std::max(offset, linewidth));
}

std::vector<std::pair<Frequency, Decibels>> ColpittsOscillator::psd_sweep(
    Frequency f_lo, Frequency f_hi, int points) const {
  if (points < 2 || f_hi <= f_lo) {
    throw std::invalid_argument("psd_sweep: bad range");
  }
  std::vector<std::pair<Frequency, Decibels>> sweep;
  sweep.reserve(static_cast<std::size_t>(points));
  const Frequency step = (f_hi - f_lo) / (points - 1);
  for (int i = 0; i < points; ++i) {
    const Frequency f = f_lo + step * static_cast<double>(i);
    sweep.emplace_back(f, psd_dbc(f));
  }
  return sweep;
}

}  // namespace ownsim

#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ownsim {
namespace {

std::string trim(const std::string& s) {
  auto begin = s.begin();
  auto end = s.end();
  while (begin != end && std::isspace(static_cast<unsigned char>(*begin))) ++begin;
  while (end != begin && std::isspace(static_cast<unsigned char>(*(end - 1)))) --end;
  return {begin, end};
}

void parse_assignment(Config& config, const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) {
    throw std::runtime_error("Config: token missing '=': " + token);
  }
  const std::string key = trim(token.substr(0, eq));
  const std::string value = trim(token.substr(eq + 1));
  if (key.empty()) throw std::runtime_error("Config: empty key in: " + token);
  config.set(key, value);
}

}  // namespace

Config Config::from_string(const std::string& text) {
  // Normalize "key = value" to "key=value" so whitespace can act as a
  // separator between assignments.
  std::string normalized;
  normalized.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      std::size_t j = i;
      while (j < text.size() &&
             std::isspace(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      const bool eq_after = j < text.size() && text[j] == '=';
      const bool eq_before = !normalized.empty() && normalized.back() == '=';
      if (!eq_after && !eq_before) normalized.push_back(' ');
      i = j - 1;
    } else {
      normalized.push_back(text[i]);
    }
  }

  Config config;
  std::string token;
  for (char c : normalized + " ") {
    if (c == ',' || c == ';' || std::isspace(static_cast<unsigned char>(c))) {
      if (!trim(token).empty()) parse_assignment(config, token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  return config;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  Config config;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    parse_assignment(config, line);
  }
  return config;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Config::set_int(const std::string& key, std::int64_t value) {
  set(key, std::to_string(value));
}

void Config::set_double(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  set(key, os.str());
}

void Config::set_bool(const std::string& key, bool value) {
  set(key, value ? "true" : "false");
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Config::find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return find(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  auto v = find(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key '" + key + "' is not an int: " + *v);
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = find(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key '" + key + "' is not a double: " + *v);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = find(key);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw std::runtime_error("Config: key '" + key + "' is not a bool: " + *v);
}

std::string Config::require_string(const std::string& key) const {
  auto v = find(key);
  if (!v) throw std::runtime_error("Config: missing required key '" + key + "'");
  return *v;
}

std::int64_t Config::require_int(const std::string& key) const {
  if (!contains(key)) {
    throw std::runtime_error("Config: missing required key '" + key + "'");
  }
  return get_int(key, 0);
}

double Config::require_double(const std::string& key) const {
  if (!contains(key)) {
    throw std::runtime_error("Config: missing required key '" + key + "'");
  }
  return get_double(key, 0.0);
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : values_) {
    if (!first) os << ' ';
    os << k << '=' << v;
    first = false;
  }
  return os.str();
}

}  // namespace ownsim

// Compile-time dimensional analysis for the physical models.
//
// Every analytic model in the repro (RF link budget, wireless technology
// energies, photonic loss budget) used to pass raw `double`s for GHz, mm,
// pJ/bit, dB and dBm; a GHz-vs-Hz or dB-vs-linear mix-up silently corrupted
// the power numbers instead of failing to build. `Quantity<Dim>` makes unit
// errors *statically impossible*:
//
//   - `Quantity<Dim<L,M,T,I,B>>` wraps a double holding the value in SI base
//     units and tracks exponents of length, mass, time, current and data
//     (bits) in the type. Addition requires identical dimensions;
//     multiplication and division add/subtract exponents at compile time.
//     Zero overhead: one double, everything constexpr and inlined.
//   - User-defined literals (`100.0_ghz`, `60.0_mm`, `0.1_pj`, `32.0_gbps`)
//     construct typed quantities; `q.in(1.0_mm)` reads one back out in a
//     chosen unit.
//   - `Decibels` and `DbmPower` are distinct log-domain types. They cannot be
//     mixed with linear ratios or with each other except through the legal
//     operations (dBm + dB = dBm, dBm - dBm = dB, ...); dBm + dBm is deleted.
//     Conversions to/from the linear domain live in common/units.hpp.
//
// The dimension algebra is deliberately small (no ratios/π-radians, no
// affine temperatures): it covers exactly what the paper's models need.
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace ownsim {

// ---- dimension ------------------------------------------------------------

/// Exponents of the SI base dimensions used by the models: length (m),
/// mass (kg), time (s), electric current (A), plus "data" (bits) so that
/// J/bit and bit/s are first-class dimensions (J/bit x bit/s = W).
template <int LengthExp, int MassExp, int TimeExp, int CurrentExp, int DataExp>
struct Dim {
  static constexpr int length = LengthExp;
  static constexpr int mass = MassExp;
  static constexpr int time = TimeExp;
  static constexpr int current = CurrentExp;
  static constexpr int data = DataExp;
};

template <typename A, typename B>
using DimMultiply = Dim<A::length + B::length, A::mass + B::mass,
                        A::time + B::time, A::current + B::current,
                        A::data + B::data>;

template <typename A, typename B>
using DimDivide = Dim<A::length - B::length, A::mass - B::mass,
                      A::time - B::time, A::current - B::current,
                      A::data - B::data>;

using DimensionlessDim = Dim<0, 0, 0, 0, 0>;

// ---- quantity ----------------------------------------------------------------

/// A double tagged with a compile-time dimension. The stored value is always
/// in SI base units (Hz, m, s, J, W, ...); literals and `in()` do the scaling.
template <typename D>
class Quantity {
 public:
  using Dimension = D;

  constexpr Quantity() = default;
  // NB: not named `si_value` — that is a <signal.h> macro on glibc.
  constexpr explicit Quantity(double raw_si) : value_(raw_si) {}

  /// Raw value in SI base units.
  constexpr double value() const { return value_; }

  /// Value expressed in `unit`, e.g. `distance.in(1.0_mm)` or
  /// `freq.in(1.0_ghz)`. The dimensions must match (enforced by the type).
  constexpr double in(Quantity unit) const { return value_ / unit.value_; }

  /// Dimensionless quantities convert back to plain double implicitly
  /// (ratios fall out of divisions all the time).
  constexpr operator double() const
    requires(D::length == 0 && D::mass == 0 && D::time == 0 &&
             D::current == 0 && D::data == 0)
  {
    return value_;
  }

  constexpr Quantity operator-() const { return Quantity{-value_}; }
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double scale) {
    value_ *= scale;
    return *this;
  }
  constexpr Quantity& operator/=(double scale) {
    value_ /= scale;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator*(Quantity q, double scale) {
    return Quantity{q.value_ * scale};
  }
  friend constexpr Quantity operator*(double scale, Quantity q) {
    return Quantity{scale * q.value_};
  }
  friend constexpr Quantity operator/(Quantity q, double scale) {
    return Quantity{q.value_ / scale};
  }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << q.value_;  // SI base units
  }

 private:
  double value_ = 0.0;
};

template <typename DA, typename DB>
constexpr Quantity<DimMultiply<DA, DB>> operator*(Quantity<DA> a,
                                                  Quantity<DB> b) {
  return Quantity<DimMultiply<DA, DB>>{a.value() * b.value()};
}

template <typename DA, typename DB>
constexpr Quantity<DimDivide<DA, DB>> operator/(Quantity<DA> a,
                                                Quantity<DB> b) {
  return Quantity<DimDivide<DA, DB>>{a.value() / b.value()};
}

template <typename D>
constexpr Quantity<DimDivide<DimensionlessDim, D>> operator/(double scale,
                                                             Quantity<D> q) {
  return Quantity<DimDivide<DimensionlessDim, D>>{scale / q.value()};
}

/// Dimension-aware square root: halves every exponent (so sqrt(L * C) is a
/// Duration). Only defined for quantities whose exponents are all even.
template <typename D>
inline Quantity<Dim<D::length / 2, D::mass / 2, D::time / 2, D::current / 2,
                    D::data / 2>>
sqrt(Quantity<D> q) {
  static_assert(D::length % 2 == 0 && D::mass % 2 == 0 && D::time % 2 == 0 &&
                    D::current % 2 == 0 && D::data % 2 == 0,
                "sqrt of a quantity with odd dimension exponents");
  return Quantity<Dim<D::length / 2, D::mass / 2, D::time / 2, D::current / 2,
                      D::data / 2>>{std::sqrt(q.value())};
}

// ---- named dimensions -----------------------------------------------------------

using Dimensionless = Quantity<DimensionlessDim>;
using Length = Quantity<Dim<1, 0, 0, 0, 0>>;          // m
using Duration = Quantity<Dim<0, 0, 1, 0, 0>>;        // s
using Frequency = Quantity<Dim<0, 0, -1, 0, 0>>;      // Hz
using Speed = Quantity<Dim<1, 0, -1, 0, 0>>;          // m/s
using Energy = Quantity<Dim<2, 1, -2, 0, 0>>;         // J
using Power = Quantity<Dim<2, 1, -3, 0, 0>>;          // W
using Voltage = Quantity<Dim<2, 1, -3, -1, 0>>;       // V
using Current = Quantity<Dim<0, 0, 0, 1, 0>>;         // A
using Capacitance = Quantity<Dim<-2, -1, 4, 2, 0>>;   // F
using Inductance = Quantity<Dim<2, 1, -2, -2, 0>>;    // H
using BitCount = Quantity<Dim<0, 0, 0, 0, 1>>;        // bit
using DataRate = Quantity<Dim<0, 0, -1, 0, 1>>;       // bit/s
using EnergyPerBit = Quantity<Dim<2, 1, -2, 0, -1>>;  // J/bit

// ---- log-domain types --------------------------------------------------------------

/// A *relative* power level in dB (also used for dBi directivity and dBc/Hz
/// phase-noise densities, which are dB relative to a carrier). Deliberately
/// not a `Quantity`: adding dB multiplies linear ratios, so the linear
/// operators must not apply. Convert with units::to_db / units::to_ratio.
class Decibels {
 public:
  constexpr Decibels() = default;
  constexpr explicit Decibels(double db) : db_(db) {}

  constexpr double db() const { return db_; }

  constexpr Decibels operator-() const { return Decibels{-db_}; }
  constexpr Decibels& operator+=(Decibels other) {
    db_ += other.db_;
    return *this;
  }
  constexpr Decibels& operator-=(Decibels other) {
    db_ -= other.db_;
    return *this;
  }

  /// Gains cascade: dB values add.
  friend constexpr Decibels operator+(Decibels a, Decibels b) {
    return Decibels{a.db_ + b.db_};
  }
  friend constexpr Decibels operator-(Decibels a, Decibels b) {
    return Decibels{a.db_ - b.db_};
  }
  /// Scaling a dB figure (e.g. N identical stages) is legal.
  friend constexpr Decibels operator*(Decibels d, double n) {
    return Decibels{d.db_ * n};
  }
  friend constexpr Decibels operator*(double n, Decibels d) {
    return Decibels{n * d.db_};
  }

  friend constexpr auto operator<=>(Decibels a, Decibels b) = default;

  friend std::ostream& operator<<(std::ostream& os, Decibels d) {
    return os << d.db_ << " dB";
  }

 private:
  double db_ = 0.0;
};

/// An *absolute* power level in dBm. Distinct from `Decibels`: absolute
/// levels do not add (dBm + dBm is meaningless and deleted), but gains and
/// losses apply (dBm +- dB = dBm) and two levels differ by a gain
/// (dBm - dBm = dB). Convert with units::to_dbm / units::to_watts.
class DbmPower {
 public:
  constexpr DbmPower() = default;
  constexpr explicit DbmPower(double dbm) : dbm_(dbm) {}

  constexpr double dbm() const { return dbm_; }

  constexpr DbmPower operator-() const { return DbmPower{-dbm_}; }

  /// Applying a gain or loss to an absolute level.
  friend constexpr DbmPower operator+(DbmPower p, Decibels gain) {
    return DbmPower{p.dbm_ + gain.db()};
  }
  friend constexpr DbmPower operator+(Decibels gain, DbmPower p) {
    return DbmPower{p.dbm_ + gain.db()};
  }
  friend constexpr DbmPower operator-(DbmPower p, Decibels loss) {
    return DbmPower{p.dbm_ - loss.db()};
  }
  /// The gain between two absolute levels.
  friend constexpr Decibels operator-(DbmPower a, DbmPower b) {
    return Decibels{a.dbm_ - b.dbm_};
  }
  /// Absolute levels do not add.
  friend DbmPower operator+(DbmPower, DbmPower) = delete;

  friend constexpr auto operator<=>(DbmPower a, DbmPower b) = default;

  friend std::ostream& operator<<(std::ostream& os, DbmPower p) {
    return os << p.dbm_ << " dBm";
  }

 private:
  double dbm_ = 0.0;
};

/// Distributed loss (dB per unit length), e.g. waveguide propagation loss.
/// Built by dividing a `Decibels` figure by the length it applies to;
/// multiplying by a length yields the accumulated loss in dB.
class DecibelsPerLength {
 public:
  constexpr DecibelsPerLength() = default;
  /// Prefer building these as `Decibels{0.5} / 1.0_cm`.
  constexpr explicit DecibelsPerLength(double db_per_m)
      : db_per_m_(db_per_m) {}

  friend constexpr Decibels operator*(DecibelsPerLength rate, Length length) {
    return Decibels{rate.db_per_m_ * length.value()};
  }
  friend constexpr Decibels operator*(Length length, DecibelsPerLength rate) {
    return Decibels{rate.db_per_m_ * length.value()};
  }

  constexpr double db_per_m() const { return db_per_m_; }

  friend constexpr auto operator<=>(DecibelsPerLength a,
                                    DecibelsPerLength b) = default;

 private:
  double db_per_m_ = 0.0;
};

/// Namespace-scope (not a hidden friend): neither operand is a
/// DecibelsPerLength, so ADL would never find it inside the class.
constexpr DecibelsPerLength operator/(Decibels db, Length per) {
  return DecibelsPerLength{db.db() / per.value()};
}

// ---- literals -----------------------------------------------------------------------

/// `inline` so every file in namespace ownsim sees the literals without a
/// using-declaration; external consumers say `using namespace
/// ownsim::literals`.
inline namespace literals {

// NOLINTBEGIN(readability-identifier-naming) — UDL suffixes are lower_case.
#define OWNSIM_LITERAL(suffix, type, scale)                            \
  constexpr type operator""_##suffix(long double v) {                  \
    return type{static_cast<double>(v) * (scale)};                     \
  }                                                                    \
  constexpr type operator""_##suffix(unsigned long long v) {           \
    return type{static_cast<double>(v) * (scale)};                     \
  }

OWNSIM_LITERAL(hz, Frequency, 1.0)
OWNSIM_LITERAL(khz, Frequency, 1e3)
OWNSIM_LITERAL(mhz, Frequency, 1e6)
OWNSIM_LITERAL(ghz, Frequency, 1e9)
OWNSIM_LITERAL(thz, Frequency, 1e12)

OWNSIM_LITERAL(m, Length, 1.0)
OWNSIM_LITERAL(cm, Length, 1e-2)
OWNSIM_LITERAL(mm, Length, 1e-3)
OWNSIM_LITERAL(um, Length, 1e-6)

OWNSIM_LITERAL(s, Duration, 1.0)
OWNSIM_LITERAL(ms, Duration, 1e-3)
OWNSIM_LITERAL(us, Duration, 1e-6)
OWNSIM_LITERAL(ns, Duration, 1e-9)
OWNSIM_LITERAL(ps, Duration, 1e-12)

OWNSIM_LITERAL(j, Energy, 1.0)
OWNSIM_LITERAL(nj, Energy, 1e-9)
OWNSIM_LITERAL(pj, Energy, 1e-12)
OWNSIM_LITERAL(fj, Energy, 1e-15)

OWNSIM_LITERAL(w, Power, 1.0)
OWNSIM_LITERAL(mw, Power, 1e-3)
OWNSIM_LITERAL(uw, Power, 1e-6)
OWNSIM_LITERAL(nw, Power, 1e-9)

OWNSIM_LITERAL(v, Voltage, 1.0)
OWNSIM_LITERAL(a, Current, 1.0)
OWNSIM_LITERAL(ma, Current, 1e-3)

OWNSIM_LITERAL(pf, Capacitance, 1e-12)
OWNSIM_LITERAL(ff, Capacitance, 1e-15)
OWNSIM_LITERAL(nh, Inductance, 1e-9)
OWNSIM_LITERAL(ph, Inductance, 1e-12)

OWNSIM_LITERAL(bit, BitCount, 1.0)
OWNSIM_LITERAL(bps, DataRate, 1.0)
OWNSIM_LITERAL(mbps, DataRate, 1e6)
OWNSIM_LITERAL(gbps, DataRate, 1e9)

OWNSIM_LITERAL(pj_per_bit, EnergyPerBit, 1e-12)

#undef OWNSIM_LITERAL

constexpr Decibels operator""_db(long double v) {
  return Decibels{static_cast<double>(v)};
}
constexpr Decibels operator""_db(unsigned long long v) {
  return Decibels{static_cast<double>(v)};
}
/// Antenna directivity (dBi) is a gain relative to isotropic: plain dB.
constexpr Decibels operator""_dbi(long double v) {
  return Decibels{static_cast<double>(v)};
}
constexpr Decibels operator""_dbi(unsigned long long v) {
  return Decibels{static_cast<double>(v)};
}
constexpr DbmPower operator""_dbm(long double v) {
  return DbmPower{static_cast<double>(v)};
}
constexpr DbmPower operator""_dbm(unsigned long long v) {
  return DbmPower{static_cast<double>(v)};
}
// NOLINTEND(readability-identifier-naming)

}  // namespace literals

/// One bit, for crossing between Energy and EnergyPerBit (E / kBit) or
/// Frequency and DataRate (BW * kBitPerHz for 1 bit/s/Hz OOK).
inline constexpr BitCount kBit{1.0};

}  // namespace ownsim

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ownsim {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);  // guard fp edge at hi_
    ++counts_[idx];
  }
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), std::int64_t{0});
  underflow_ = overflow_ = total_ = 0;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0) {
      const double frac = (target - cum) / c;
      return bin_lo(i) + frac * width_;
    }
    cum += c;
  }
  return hi_;
}

}  // namespace ownsim

// Core identifier and scalar types shared across the simulator.
//
// The simulator is cycle-driven; `Cycle` is the global time unit. Entities
// (cores, tiles, routers, ports, virtual channels, wireless channels,
// waveguides) are identified with small integer ids. We keep these as plain
// aliases rather than wrapper classes for hot-loop efficiency, but give each
// a distinct name so signatures document intent.
#pragma once

#include <cstdint>
#include <limits>

namespace ownsim {

/// Simulation time in router clock cycles.
using Cycle = std::int64_t;

/// Identifies a processing core (0 .. num_cores-1).
using NodeId = std::int32_t;

/// Identifies a router (0 .. num_routers-1).
using RouterId = std::int32_t;

/// Identifies a port on a router (0 .. radix-1).
using PortId = std::int32_t;

/// Identifies a virtual channel within a port (0 .. num_vcs-1).
using VcId = std::int32_t;

/// Identifies a packet (unique per simulation run).
using PacketId = std::int64_t;

/// Identifies a shared medium (photonic waveguide or wireless channel).
using MediumId = std::int32_t;

/// Sentinel for "no id".
inline constexpr std::int32_t kInvalidId = -1;

/// Sentinel for "never" / "not yet".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

}  // namespace ownsim

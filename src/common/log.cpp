#include "common/log.hpp"

#include <atomic>
#include <iostream>

#include "common/thread_annotations.hpp"

namespace ownsim {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// Serializes line emission so concurrent workers (exec::ThreadPool jobs)
// never interleave characters of different lines. The `enabled()` fast path
// stays lock-free: disabled levels still cost only the atomic load.
Mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Log::level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Log::write(LogLevel level, const std::string& msg) {
  if (!enabled(level)) return;
  // Compose outside the lock; hold it only for the single emission.
  std::string line;
  line.reserve(msg.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  MutexLock lock(g_write_mutex);
  std::cerr << line;
}

}  // namespace ownsim

// Physical unit helpers and constants.
//
// All analytic models (RF link budget, photonic loss budget, power model)
// work in SI internally; these helpers make call sites read like the paper
// ("32_gbps", "60 mm", "0.1 pJ/bit") and centralize dB conversions.
//
// The raw double conversions remain for the innards of formulas; model
// *interfaces* use the typed quantities from common/quantity.hpp and the
// typed bridges (`to_dbm`, `to_watts`, `to_db`, `to_ratio`, `wavelength`)
// at the bottom of this header.
#pragma once

#include <cmath>

#include "common/quantity.hpp"

namespace ownsim::units {

// ---- scalar constants ------------------------------------------------------
inline constexpr double kSpeedOfLight = 2.99792458e8;  // m/s
inline constexpr double kBoltzmann = 1.380649e-23;     // J/K
inline constexpr double kRoomTempK = 290.0;            // K (standard noise temp)
inline constexpr double kPi = 3.14159265358979323846;

// ---- multipliers -----------------------------------------------------------
inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;

// ---- conversions -----------------------------------------------------------

/// Watts -> dBm.
inline double watts_to_dbm(double watts) { return 10.0 * std::log10(watts / kMilli); }

/// dBm -> Watts.
inline double dbm_to_watts(double dbm) { return kMilli * std::pow(10.0, dbm / 10.0); }

/// Linear power ratio -> dB.
inline double ratio_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// dB -> linear power ratio.
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Frequency (Hz) -> free-space wavelength (m).
inline double wavelength_m(double freq_hz) { return kSpeedOfLight / freq_hz; }

/// Energy-per-bit (J/bit) at a given data rate (bit/s) -> average power (W).
inline double epb_to_power_w(double joules_per_bit, double bits_per_s) {
  return joules_per_bit * bits_per_s;
}

// ---- typed bridges ---------------------------------------------------------
//
// The only sanctioned crossings between the linear domain (Quantity) and the
// log domain (Decibels / DbmPower). Everything else is a compile error.

/// Speed of light as a typed quantity (m/s).
inline constexpr Speed kC{kSpeedOfLight};

/// Linear power -> absolute level in dBm.
inline DbmPower to_dbm(Power power) {
  return DbmPower{watts_to_dbm(power.value())};
}

/// Absolute level in dBm -> linear power.
inline Power to_watts(DbmPower level) { return Power{dbm_to_watts(level.dbm())}; }

/// Linear power ratio -> relative gain/loss in dB.
inline Decibels to_db(double ratio) { return Decibels{ratio_to_db(ratio)}; }

/// Relative gain/loss in dB -> linear power ratio.
inline double to_ratio(Decibels db) { return db_to_ratio(db.db()); }

/// Free-space wavelength of a carrier.
inline constexpr Length wavelength(Frequency freq) { return kC / freq; }

}  // namespace ownsim::units

// Physical unit helpers and constants.
//
// All analytic models (RF link budget, photonic loss budget, power model)
// work in SI internally; these helpers make call sites read like the paper
// ("32_gbps", "60 mm", "0.1 pJ/bit") and centralize dB conversions.
#pragma once

#include <cmath>

namespace ownsim::units {

// ---- scalar constants ------------------------------------------------------
inline constexpr double kSpeedOfLight = 2.99792458e8;  // m/s
inline constexpr double kBoltzmann = 1.380649e-23;     // J/K
inline constexpr double kRoomTempK = 290.0;            // K (standard noise temp)
inline constexpr double kPi = 3.14159265358979323846;

// ---- multipliers -----------------------------------------------------------
inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;

// ---- conversions -----------------------------------------------------------

/// Watts -> dBm.
inline double watts_to_dbm(double watts) { return 10.0 * std::log10(watts / kMilli); }

/// dBm -> Watts.
inline double dbm_to_watts(double dbm) { return kMilli * std::pow(10.0, dbm / 10.0); }

/// Linear power ratio -> dB.
inline double ratio_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// dB -> linear power ratio.
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Frequency (Hz) -> free-space wavelength (m).
inline double wavelength_m(double freq_hz) { return kSpeedOfLight / freq_hz; }

/// Energy-per-bit (J/bit) at a given data rate (bit/s) -> average power (W).
inline double epb_to_power_w(double joules_per_bit, double bits_per_s) {
  return joules_per_bit * bits_per_s;
}

}  // namespace ownsim::units

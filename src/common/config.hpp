// Key-value configuration store.
//
// Experiments are parameterized by flat `key = value` settings (BookSim
// style). `Config` holds string values with typed, defaulted getters and can
// be populated programmatically, from "k=v,k2=v2" strings, or from a simple
// config file (one `key = value` per line, `#` comments).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ownsim {

class Config {
 public:
  Config() = default;

  /// Parses "k=v k2=v2" / "k=v,k2=v2" (spaces, commas or semicolons separate).
  static Config from_string(const std::string& text);

  /// Parses a file of `key = value` lines; '#' starts a comment.
  /// Throws std::runtime_error if the file cannot be opened.
  static Config from_file(const std::string& path);

  void set(const std::string& key, const std::string& value);
  void set_int(const std::string& key, std::int64_t value);
  void set_double(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);

  bool contains(const std::string& key) const;

  /// Typed getters; return `fallback` when the key is absent and throw
  /// std::runtime_error when present but malformed.
  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Required getters; throw std::runtime_error when the key is absent.
  std::string require_string(const std::string& key) const;
  std::int64_t require_int(const std::string& key) const;
  double require_double(const std::string& key) const;

  /// Merges `other` into this, overwriting duplicates.
  void merge(const Config& other);

  /// Keys in sorted order (deterministic dumps).
  std::vector<std::string> keys() const;

  /// "k1=v1 k2=v2 ..." in key-sorted order.
  std::string to_string() const;

 private:
  std::optional<std::string> find(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace ownsim

// SHA-256 (FIPS 180-4), self-contained — the content-address of the result
// cache (serve/result_store) and the experiment cache key are both SHA-256
// digests, so cache exactness rests on a collision-resistant hash rather
// than a 64-bit mixer. No external crypto dependency: ~100 lines, byte-exact
// on any platform.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace ownsim {

class Sha256 {
 public:
  Sha256();

  /// Streams `size` bytes into the digest state.
  void update(const void* data, std::size_t size);
  void update(std::string_view text) { update(text.data(), text.size()); }

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated afterwards (one-shot; construct a fresh one per message).
  std::array<std::uint8_t, 32> digest();

  /// Digest as 64 lowercase hex characters.
  std::string hex_digest();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// One-shot convenience: lowercase-hex SHA-256 of `text`.
std::string sha256_hex(std::string_view text);

}  // namespace ownsim

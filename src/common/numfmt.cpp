#include "common/numfmt.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <system_error>

namespace ownsim {

std::string format_double(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument(
        "format_double: non-finite values have no JSON form");
  }
  // Shortest round-trip form; to_chars never writes a locale separator.
  char buf[64];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), value);
  if (r.ec != std::errc{}) {
    throw std::runtime_error("format_double: to_chars failed");
  }
  return std::string(buf, r.ptr);
}

std::string format_int(std::int64_t value) {
  char buf[24];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, r.ptr);
}

std::string format_uint(std::uint64_t value) {
  char buf[24];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, r.ptr);
}

}  // namespace ownsim

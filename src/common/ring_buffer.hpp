// Fixed-capacity FIFO ring buffer.
//
// Used for router VC buffers and injection queues, where the capacity is a
// hardware parameter fixed at construction and push/pop sit on the hot path.
// No allocation after construction.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace ownsim {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity > 0 ? capacity : 1) {}

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == slots_.size(); }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  std::size_t free_slots() const { return slots_.size() - size_; }

  /// Appends `v`; caller must check !full().
  void push(T v) {
    assert(!full());
    slots_[tail_] = std::move(v);
    tail_ = next(tail_);
    ++size_;
  }

  /// Removes and returns the oldest element; caller must check !empty().
  T pop() {
    assert(!empty());
    T v = std::move(slots_[head_]);
    head_ = next(head_);
    --size_;
    return v;
  }

  /// Oldest element; caller must check !empty().
  const T& front() const {
    assert(!empty());
    return slots_[head_];
  }
  T& front() {
    assert(!empty());
    return slots_[head_];
  }

  /// Element `i` positions behind the front (0 == front).
  const T& at(std::size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  std::size_t next(std::size_t i) const {
    return (i + 1 == slots_.size()) ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ownsim

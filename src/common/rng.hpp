// Deterministic pseudo-random number generation.
//
// The simulator must be reproducible run-to-run: every stochastic component
// (traffic injectors, allocator tie-breakers, pattern generators) owns its own
// `Rng` seeded from a master seed + a stream id, so adding a component never
// perturbs the streams of existing ones.
//
// Generator: xoshiro256** (Blackman & Vigna), seeded via SplitMix64. Fast,
// high quality, and trivially header-only.
#pragma once

#include <cstdint>
#include <limits>

namespace ownsim {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives a decorrelated child seed from a master seed and a stream id
/// (the same mix the `Rng` constructor applies before SplitMix64). Used to
/// give every parallel job — e.g. each load point of a sweep — its own
/// injector seed so no two jobs share a stream.
constexpr std::uint64_t derive_seed(std::uint64_t master_seed,
                                    std::uint64_t stream) {
  std::uint64_t sm = master_seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return splitmix64(sm);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from `seed` and a `stream` id; distinct streams are decorrelated.
  explicit constexpr Rng(std::uint64_t seed = 0x5DEECE66DULL,
                         std::uint64_t stream = 0) {
    std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability `p`.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ownsim

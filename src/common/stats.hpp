// Streaming statistics accumulators.
//
// `RunningStat` keeps count/mean/variance/min/max in O(1) memory (Welford's
// update). `Histogram` keeps a fixed-width binned distribution with overflow
// tracking so latency distributions can be reported without storing samples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ownsim {

/// Single-pass mean/variance/min/max accumulator (Welford).
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset();

  std::int64_t count() const { return count_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets; samples outside
/// the range land in underflow/overflow counters. Percentiles are estimated
/// by linear interpolation within the containing bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void reset();

  std::int64_t total() const { return total_; }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  const std::vector<std::int64_t>& counts() const { return counts_; }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_width() const { return width_; }

  /// Approximate p-quantile (q in [0,1]); returns range edges when the mass
  /// sits in under/overflow.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace ownsim

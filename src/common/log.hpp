// Minimal leveled logger.
//
// The simulator is a library first: logging defaults to warnings-and-above on
// stderr and is globally adjustable. Hot paths guard with `Log::enabled()`
// so disabled levels cost one branch. `write` is thread-safe: each line is
// emitted atomically, so output from parallel sweep workers never
// interleaves mid-line; `enabled()` remains lock-free.
#pragma once

#include <sstream>
#include <string>

namespace ownsim {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level) { return level >= Log::level(); }

  /// Writes one line "[LEVEL] msg" to stderr if `level` is enabled.
  static void write(LogLevel level, const std::string& msg);

  static void debug(const std::string& msg) { write(LogLevel::kDebug, msg); }
  static void info(const std::string& msg) { write(LogLevel::kInfo, msg); }
  static void warn(const std::string& msg) { write(LogLevel::kWarn, msg); }
  static void error(const std::string& msg) { write(LogLevel::kError, msg); }
};

}  // namespace ownsim

// Canonical number formatting for byte-stable serialization.
//
// Everything that feeds a cache key or a byte-compared artifact (canonical
// config JSON, the stored result payload) formats floating-point values
// through here: std::to_chars shortest round-trip form, which is fully
// specified by the standard — the same double produces the same bytes on
// every conforming platform, and parsing the bytes back recovers the exact
// double. iostream formatting (locale- and precision-dependent) must not be
// used on those paths.
#pragma once

#include <cstdint>
#include <string>

namespace ownsim {

/// Shortest round-trip decimal form, e.g. 2.0 -> "2", 0.004 -> "0.004",
/// 1e30 -> "1e+30". NaN/inf are not representable in JSON and throw
/// std::invalid_argument.
std::string format_double(double value);

/// Exact decimal forms (no locale, no sign surprises).
std::string format_int(std::int64_t value);
std::string format_uint(std::uint64_t value);

}  // namespace ownsim

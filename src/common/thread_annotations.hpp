// Capability-based thread-safety annotations + annotated mutex wrappers.
//
// Clang's `-Wthread-safety` analysis proves lock discipline at compile time:
// a field marked OWNSIM_GUARDED_BY(mu_) may only be touched while `mu_` is
// held, a function marked OWNSIM_REQUIRES(mu_) may only be called with `mu_`
// held, and every acquire must be matched by a release on all paths. The
// repo's concurrent subsystems (exec pool, metrics sweeps, the serve daemon,
// the Log sink) carry these annotations, and the clang CI legs compile with
// `-Wthread-safety -Wthread-safety-beta` escalated to errors — a lock
// violation is a build break, not a latent race (DESIGN.md §5h).
//
// GCC (the default local toolchain) does not implement the analysis; the
// macros expand to nothing there and the wrappers cost exactly what
// std::mutex / std::lock_guard cost. Semantics are identical either way —
// the annotations are assertions about the code, never behavior.
//
// libstdc++'s std::mutex is not capability-annotated, so the analysis cannot
// see through std::lock_guard<std::mutex>. First-party concurrent code uses
// the annotated wrappers below instead:
//
//   ownsim::Mutex      — a capability; declare fields OWNSIM_GUARDED_BY(mu_)
//   ownsim::MutexLock  — RAII scoped acquire (the analysis tracks its scope)
//   ownsim::CondVar    — condition variable waiting on a MutexLock; waits
//                        keep the capability held from the caller's view
//                        (the transient unlock inside wait() re-establishes
//                        the lock before returning, so the post-condition
//                        the analysis assumes is the one that holds)
//
// Wait loops are written explicitly so guarded reads stay inside annotated
// scopes the analysis can check:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(lock);    // not: cv_.wait(lock, [&]{...})
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OWNSIM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef OWNSIM_THREAD_ANNOTATION
#define OWNSIM_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Marks a type as a lockable capability (named in diagnostics).
#define OWNSIM_CAPABILITY(x) OWNSIM_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define OWNSIM_SCOPED_CAPABILITY OWNSIM_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read or written while holding `x`.
#define OWNSIM_GUARDED_BY(x) OWNSIM_THREAD_ANNOTATION(guarded_by(x))
/// Pointee (not the pointer) is guarded by `x`.
#define OWNSIM_PT_GUARDED_BY(x) OWNSIM_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function may only be called while holding the listed capabilities.
#define OWNSIM_REQUIRES(...) \
  OWNSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on return).
#define OWNSIM_ACQUIRE(...) \
  OWNSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define OWNSIM_RELEASE(...) \
  OWNSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability when it returns `value`.
#define OWNSIM_TRY_ACQUIRE(value, ...) \
  OWNSIM_THREAD_ANNOTATION(try_acquire_capability(value, __VA_ARGS__))
/// Function must NOT be called while holding the listed capabilities
/// (deadlock prevention; e.g. callback dispatch that re-enters the lock).
#define OWNSIM_EXCLUDES(...) OWNSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the capability guarding its result.
#define OWNSIM_RETURN_CAPABILITY(x) OWNSIM_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: function body is exempt from the analysis. Every use needs
/// a comment saying why the analysis cannot express the invariant.
#define OWNSIM_NO_THREAD_SAFETY_ANALYSIS \
  OWNSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ownsim {

class CondVar;

/// std::mutex annotated as a capability. Prefer MutexLock over manual
/// lock()/unlock() pairs — the analysis checks RAII scopes for free.
class OWNSIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OWNSIM_ACQUIRE() { mu_.lock(); }
  void unlock() OWNSIM_RELEASE() { mu_.unlock(); }
  bool try_lock() OWNSIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped acquire of a Mutex (std::unique_lock underneath, so CondVar
/// can wait on it).
class OWNSIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OWNSIM_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() OWNSIM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable for Mutex/MutexLock. `wait` atomically releases and
/// re-acquires the lock internally; from the annotated caller's view the
/// capability stays held across the call (which is the state on return).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ownsim

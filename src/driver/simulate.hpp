// High-level experiment driver: one call builds a topology, drives synthetic
// traffic through the warmup/measure/drain protocol, and reports latency,
// throughput and the power breakdown. This is the API the examples and the
// bench harness are written against.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adapt/config.hpp"
#include "fault/campaign.hpp"
#include "metrics/runner.hpp"
#include "metrics/sweep.hpp"
#include "sim/engine.hpp"
#include "power/energy_model.hpp"
#include "topology/registry.hpp"
#include "traffic/patterns.hpp"
#include "wireless/configurations.hpp"

namespace ownsim {

struct ExperimentConfig {
  TopologyKind topology = TopologyKind::kOwn;
  PatternKind pattern = PatternKind::kUniform;
  double rate = 0.004;  ///< offered load, flits/node/cycle

  TopologyOptions options;           ///< num_cores etc.
  OwnConfig own_config = OwnConfig::kConfig4;  ///< Table IV row (OWN only)
  Scenario scenario = Scenario::kIdeal;        ///< Table III outlook

  RunPhases phases;
  Injector::Params injector;  ///< .rate overridden by `rate`
  PowerParams power;

  /// Simulation kernel override. Unset: the engine default (activity-driven;
  /// lockstep when OWNSIM_LOCKSTEP=1, parallel when OWNSIM_PDES=1). All
  /// three kernels are bit-identical (DESIGN.md §5e/§5i); lockstep is the
  /// slow baseline kept for differential testing and A/B timing, parallel
  /// the partitioned multi-threaded kernel.
  std::optional<KernelMode> kernel;

  /// Parallel-kernel worker threads; 0 = exec::default_threads() (which
  /// honors OWNSIM_THREADS). Ignored by the other kernels. Excluded from
  /// the canonical config JSON: thread count never changes a result.
  int threads = 0;
  /// Parallel-kernel partition-count override; 0 = the topology's hint (or
  /// the contiguous fallback). Also result-neutral, also excluded.
  int partitions = 0;

  /// Runtime fault campaign (fault/campaign.hpp). When enabled on OWN-256
  /// the topology is built campaign-capable: the healthy floorplan with the
  /// 5-class degraded route scheme, so mid-run deaths can reroute online.
  fault::CampaignConfig fault;

  /// Thermal/variation-driven adaptive link layer (adapt/, DESIGN.md §5k).
  /// Enabling it on OWN-256 also builds the campaign-capable topology so the
  /// controller's wireless re-allocation can patch routes online.
  adapt::AdaptConfig adapt;

  /// File topologies only: SHA-256 of the file body, carried so a config
  /// reconstructed from canonical JSON (options.topofile_text unavailable)
  /// still produces the same cache key as the original parse.
  std::string topofile_sha256;
};

struct ExperimentResult {
  std::string name;
  RunResult run;
  PowerBreakdown power;
  double energy_per_packet_pj = 0.0;
  fault::Totals fault{};           ///< zero when no campaign ran
  adapt::Totals adapt{};           ///< zero/disabled when the loop was off
  bool watchdog_tripped = false;   ///< run was aborted by the watchdog

  /// Snapshot of the network's obs counter registry after the run
  /// (name-sorted; empty when OWNSIM_OBS=OFF). Counters are simulated
  /// quantities — part of the deterministic result, cached with it.
  std::vector<std::pair<std::string, std::int64_t>> counters;
};

/// Optional instrumentation around `run_experiment` — everything the serve
/// daemon (and the CLI's reporting modes) need from the run without owning
/// the Network themselves. All members may be empty; none of them may
/// change the simulated result (the progress/report hooks are read-only by
/// contract, and cancellation only truncates).
struct RunHooks {
  /// External cancel (merged with the watchdog's token when a campaign
  /// arms one): the run returns early with `run.cancelled = true`.
  exec::CancellationToken cancel;

  /// Streamed between simulation slices (see metrics/runner.hpp).
  RunProgressFn progress;

  /// Called after the network is built and all components are registered,
  /// before the first cycle — attach tracing, inspect the spec, etc.
  std::function<void(Network&)> before_run;

  /// Called after the run with the network still alive — utilization
  /// reports, trace flushing, counter dumps.
  std::function<void(Network&, const ExperimentResult&)> after_run;
};

/// The OWN per-channel energy model for a given size/config/scenario;
/// nullopt for non-OWN topologies.
std::optional<ChannelEnergyModel> own_channel_energy(
    TopologyKind topology, int num_cores, OwnConfig config, Scenario scenario);

/// Factory building fresh networks of this experiment's topology (used by
/// the sweep machinery; each load point gets clean counters).
NetworkFactory make_network_factory(TopologyKind topology,
                                    TopologyOptions options);

/// Spec for `config`, honoring the fault campaign and the adaptation loop
/// (campaign-capable OWN-256 build when `config.fault.enabled` or
/// `config.adapt.enabled`; the plain topology otherwise).
NetworkSpec build_experiment_spec(const ExperimentConfig& config);

/// Campaign for `config`, validated against `network`; null when disabled.
/// The caller attaches it after registering all other components.
std::unique_ptr<fault::FaultCampaign> make_campaign(
    Network& network, const ExperimentConfig& config);

/// Runs one load point end to end (build, warm, measure, drain, aggregate).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// As above, with instrumentation hooks (progress, external cancel, pre/post
/// network access). `run_experiment(config)` is `run_experiment(config, {})`.
ExperimentResult run_experiment(const ExperimentConfig& config,
                                const RunHooks& hooks);

/// Canonical, byte-stable JSON of the deterministic experiment result:
/// sorted keys, shortest-round-trip number forms (common/numfmt), wall-clock
/// profile EXCLUDED. This is the payload the serve result cache stores; a
/// cache hit is byte-identical to a fresh run because every field serialized
/// here is covered by the determinism contract (DESIGN.md §5g).
std::string experiment_result_json(const ExperimentResult& result);

}  // namespace ownsim
